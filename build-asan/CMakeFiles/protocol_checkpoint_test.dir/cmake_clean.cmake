file(REMOVE_RECURSE
  "CMakeFiles/protocol_checkpoint_test.dir/tests/protocol_checkpoint_test.cpp.o"
  "CMakeFiles/protocol_checkpoint_test.dir/tests/protocol_checkpoint_test.cpp.o.d"
  "protocol_checkpoint_test"
  "protocol_checkpoint_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocol_checkpoint_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
