# Empty compiler generated dependencies file for protocol_checkpoint_test.
# This may be replaced when dependencies are built.
