# Empty dependencies file for vcl_protocol_test.
# This may be replaced when dependencies are built.
