file(REMOVE_RECURSE
  "CMakeFiles/vcl_protocol_test.dir/tests/vcl_protocol_test.cpp.o"
  "CMakeFiles/vcl_protocol_test.dir/tests/vcl_protocol_test.cpp.o.d"
  "vcl_protocol_test"
  "vcl_protocol_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vcl_protocol_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
