file(REMOVE_RECURSE
  "CMakeFiles/protocol_failure_test.dir/tests/protocol_failure_test.cpp.o"
  "CMakeFiles/protocol_failure_test.dir/tests/protocol_failure_test.cpp.o.d"
  "protocol_failure_test"
  "protocol_failure_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocol_failure_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
