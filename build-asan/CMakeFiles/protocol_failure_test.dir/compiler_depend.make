# Empty compiler generated dependencies file for protocol_failure_test.
# This may be replaced when dependencies are built.
