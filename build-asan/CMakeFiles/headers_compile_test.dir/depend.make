# Empty dependencies file for headers_compile_test.
# This may be replaced when dependencies are built.
