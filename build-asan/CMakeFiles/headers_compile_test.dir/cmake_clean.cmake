file(REMOVE_RECURSE
  "CMakeFiles/headers_compile_test.dir/tests/headers_compile_test.cpp.o"
  "CMakeFiles/headers_compile_test.dir/tests/headers_compile_test.cpp.o.d"
  "headers_compile_test"
  "headers_compile_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/headers_compile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
