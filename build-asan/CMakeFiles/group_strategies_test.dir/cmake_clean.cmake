file(REMOVE_RECURSE
  "CMakeFiles/group_strategies_test.dir/tests/group_strategies_test.cpp.o"
  "CMakeFiles/group_strategies_test.dir/tests/group_strategies_test.cpp.o.d"
  "group_strategies_test"
  "group_strategies_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/group_strategies_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
