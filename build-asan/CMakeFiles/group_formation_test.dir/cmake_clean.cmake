file(REMOVE_RECURSE
  "CMakeFiles/group_formation_test.dir/tests/group_formation_test.cpp.o"
  "CMakeFiles/group_formation_test.dir/tests/group_formation_test.cpp.o.d"
  "group_formation_test"
  "group_formation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/group_formation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
