# Empty dependencies file for group_formation_test.
# This may be replaced when dependencies are built.
