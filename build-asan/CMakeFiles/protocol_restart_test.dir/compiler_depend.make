# Empty compiler generated dependencies file for protocol_restart_test.
# This may be replaced when dependencies are built.
