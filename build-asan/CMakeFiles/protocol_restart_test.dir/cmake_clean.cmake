file(REMOVE_RECURSE
  "CMakeFiles/protocol_restart_test.dir/tests/protocol_restart_test.cpp.o"
  "CMakeFiles/protocol_restart_test.dir/tests/protocol_restart_test.cpp.o.d"
  "protocol_restart_test"
  "protocol_restart_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocol_restart_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
