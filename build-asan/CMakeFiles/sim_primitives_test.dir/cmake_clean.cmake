file(REMOVE_RECURSE
  "CMakeFiles/sim_primitives_test.dir/tests/sim_primitives_test.cpp.o"
  "CMakeFiles/sim_primitives_test.dir/tests/sim_primitives_test.cpp.o.d"
  "sim_primitives_test"
  "sim_primitives_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_primitives_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
