# Empty dependencies file for ckpt_metrics_test.
# This may be replaced when dependencies are built.
