file(REMOVE_RECURSE
  "CMakeFiles/ckpt_metrics_test.dir/tests/ckpt_metrics_test.cpp.o"
  "CMakeFiles/ckpt_metrics_test.dir/tests/ckpt_metrics_test.cpp.o.d"
  "ckpt_metrics_test"
  "ckpt_metrics_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ckpt_metrics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
