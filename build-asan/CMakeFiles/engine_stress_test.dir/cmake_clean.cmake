file(REMOVE_RECURSE
  "CMakeFiles/engine_stress_test.dir/tests/engine_stress_test.cpp.o"
  "CMakeFiles/engine_stress_test.dir/tests/engine_stress_test.cpp.o.d"
  "engine_stress_test"
  "engine_stress_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_stress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
