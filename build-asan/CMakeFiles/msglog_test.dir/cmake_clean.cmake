file(REMOVE_RECURSE
  "CMakeFiles/msglog_test.dir/tests/msglog_test.cpp.o"
  "CMakeFiles/msglog_test.dir/tests/msglog_test.cpp.o.d"
  "msglog_test"
  "msglog_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msglog_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
