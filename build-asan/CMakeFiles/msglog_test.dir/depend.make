# Empty dependencies file for msglog_test.
# This may be replaced when dependencies are built.
