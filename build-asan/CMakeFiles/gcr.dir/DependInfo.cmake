
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/cg.cpp" "CMakeFiles/gcr.dir/src/apps/cg.cpp.o" "gcc" "CMakeFiles/gcr.dir/src/apps/cg.cpp.o.d"
  "/root/repo/src/apps/hpl.cpp" "CMakeFiles/gcr.dir/src/apps/hpl.cpp.o" "gcc" "CMakeFiles/gcr.dir/src/apps/hpl.cpp.o.d"
  "/root/repo/src/apps/patterns.cpp" "CMakeFiles/gcr.dir/src/apps/patterns.cpp.o" "gcc" "CMakeFiles/gcr.dir/src/apps/patterns.cpp.o.d"
  "/root/repo/src/apps/simple.cpp" "CMakeFiles/gcr.dir/src/apps/simple.cpp.o" "gcc" "CMakeFiles/gcr.dir/src/apps/simple.cpp.o.d"
  "/root/repo/src/apps/sp.cpp" "CMakeFiles/gcr.dir/src/apps/sp.cpp.o" "gcc" "CMakeFiles/gcr.dir/src/apps/sp.cpp.o.d"
  "/root/repo/src/core/group_protocol.cpp" "CMakeFiles/gcr.dir/src/core/group_protocol.cpp.o" "gcc" "CMakeFiles/gcr.dir/src/core/group_protocol.cpp.o.d"
  "/root/repo/src/core/interval.cpp" "CMakeFiles/gcr.dir/src/core/interval.cpp.o" "gcc" "CMakeFiles/gcr.dir/src/core/interval.cpp.o.d"
  "/root/repo/src/core/metrics.cpp" "CMakeFiles/gcr.dir/src/core/metrics.cpp.o" "gcc" "CMakeFiles/gcr.dir/src/core/metrics.cpp.o.d"
  "/root/repo/src/core/msglog.cpp" "CMakeFiles/gcr.dir/src/core/msglog.cpp.o" "gcc" "CMakeFiles/gcr.dir/src/core/msglog.cpp.o.d"
  "/root/repo/src/core/recovery.cpp" "CMakeFiles/gcr.dir/src/core/recovery.cpp.o" "gcc" "CMakeFiles/gcr.dir/src/core/recovery.cpp.o.d"
  "/root/repo/src/core/scheduler.cpp" "CMakeFiles/gcr.dir/src/core/scheduler.cpp.o" "gcc" "CMakeFiles/gcr.dir/src/core/scheduler.cpp.o.d"
  "/root/repo/src/core/vcl_protocol.cpp" "CMakeFiles/gcr.dir/src/core/vcl_protocol.cpp.o" "gcc" "CMakeFiles/gcr.dir/src/core/vcl_protocol.cpp.o.d"
  "/root/repo/src/exp/campaign.cpp" "CMakeFiles/gcr.dir/src/exp/campaign.cpp.o" "gcc" "CMakeFiles/gcr.dir/src/exp/campaign.cpp.o.d"
  "/root/repo/src/exp/experiment.cpp" "CMakeFiles/gcr.dir/src/exp/experiment.cpp.o" "gcc" "CMakeFiles/gcr.dir/src/exp/experiment.cpp.o.d"
  "/root/repo/src/exp/scenario.cpp" "CMakeFiles/gcr.dir/src/exp/scenario.cpp.o" "gcc" "CMakeFiles/gcr.dir/src/exp/scenario.cpp.o.d"
  "/root/repo/src/group/dynamic.cpp" "CMakeFiles/gcr.dir/src/group/dynamic.cpp.o" "gcc" "CMakeFiles/gcr.dir/src/group/dynamic.cpp.o.d"
  "/root/repo/src/group/formation.cpp" "CMakeFiles/gcr.dir/src/group/formation.cpp.o" "gcc" "CMakeFiles/gcr.dir/src/group/formation.cpp.o.d"
  "/root/repo/src/group/group.cpp" "CMakeFiles/gcr.dir/src/group/group.cpp.o" "gcc" "CMakeFiles/gcr.dir/src/group/group.cpp.o.d"
  "/root/repo/src/group/groupfile.cpp" "CMakeFiles/gcr.dir/src/group/groupfile.cpp.o" "gcc" "CMakeFiles/gcr.dir/src/group/groupfile.cpp.o.d"
  "/root/repo/src/group/strategies.cpp" "CMakeFiles/gcr.dir/src/group/strategies.cpp.o" "gcc" "CMakeFiles/gcr.dir/src/group/strategies.cpp.o.d"
  "/root/repo/src/mpi/runtime.cpp" "CMakeFiles/gcr.dir/src/mpi/runtime.cpp.o" "gcc" "CMakeFiles/gcr.dir/src/mpi/runtime.cpp.o.d"
  "/root/repo/src/sim/engine.cpp" "CMakeFiles/gcr.dir/src/sim/engine.cpp.o" "gcc" "CMakeFiles/gcr.dir/src/sim/engine.cpp.o.d"
  "/root/repo/src/sim/network.cpp" "CMakeFiles/gcr.dir/src/sim/network.cpp.o" "gcc" "CMakeFiles/gcr.dir/src/sim/network.cpp.o.d"
  "/root/repo/src/sim/storage.cpp" "CMakeFiles/gcr.dir/src/sim/storage.cpp.o" "gcc" "CMakeFiles/gcr.dir/src/sim/storage.cpp.o.d"
  "/root/repo/src/trace/analysis.cpp" "CMakeFiles/gcr.dir/src/trace/analysis.cpp.o" "gcc" "CMakeFiles/gcr.dir/src/trace/analysis.cpp.o.d"
  "/root/repo/src/trace/io.cpp" "CMakeFiles/gcr.dir/src/trace/io.cpp.o" "gcc" "CMakeFiles/gcr.dir/src/trace/io.cpp.o.d"
  "/root/repo/src/trace/timeline.cpp" "CMakeFiles/gcr.dir/src/trace/timeline.cpp.o" "gcc" "CMakeFiles/gcr.dir/src/trace/timeline.cpp.o.d"
  "/root/repo/src/util/cli.cpp" "CMakeFiles/gcr.dir/src/util/cli.cpp.o" "gcc" "CMakeFiles/gcr.dir/src/util/cli.cpp.o.d"
  "/root/repo/src/util/log.cpp" "CMakeFiles/gcr.dir/src/util/log.cpp.o" "gcc" "CMakeFiles/gcr.dir/src/util/log.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "CMakeFiles/gcr.dir/src/util/stats.cpp.o" "gcc" "CMakeFiles/gcr.dir/src/util/stats.cpp.o.d"
  "/root/repo/src/util/table.cpp" "CMakeFiles/gcr.dir/src/util/table.cpp.o" "gcc" "CMakeFiles/gcr.dir/src/util/table.cpp.o.d"
  "/root/repo/src/util/units.cpp" "CMakeFiles/gcr.dir/src/util/units.cpp.o" "gcc" "CMakeFiles/gcr.dir/src/util/units.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
