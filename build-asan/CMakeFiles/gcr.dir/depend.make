# Empty dependencies file for gcr.
# This may be replaced when dependencies are built.
