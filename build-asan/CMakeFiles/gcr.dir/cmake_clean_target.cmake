file(REMOVE_RECURSE
  "libgcr.a"
)
