file(REMOVE_RECURSE
  "CMakeFiles/mpi_runtime_test.dir/tests/mpi_runtime_test.cpp.o"
  "CMakeFiles/mpi_runtime_test.dir/tests/mpi_runtime_test.cpp.o.d"
  "mpi_runtime_test"
  "mpi_runtime_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpi_runtime_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
