// End-to-end harness tests: whole-stack runs under every protocol/grouping,
// determinism, failure recovery, and the paper's restart experiment.
#include <gtest/gtest.h>

#include "apps/hpl.hpp"
#include "apps/simple.hpp"
#include "exp/experiment.hpp"
#include "group/strategies.hpp"

namespace gcr::exp {
namespace {

AppFactory ring_app(std::uint64_t iters = 30) {
  return [iters](int n) {
    apps::RingParams p;
    p.iterations = iters;
    p.compute_s = 0.02;
    return apps::make_ring(n, p);
  };
}

AppFactory stencil_app(int cluster_width, std::uint64_t iters = 40) {
  return [cluster_width, iters](int n) {
    apps::Stencil1dParams p;
    p.iterations = iters;
    p.cluster_width = cluster_width;
    p.compute_s = 0.015;
    return apps::make_stencil1d(n, p);
  };
}

TEST(Experiment, RingRunsToCompletionWithoutCheckpoints) {
  ExperimentConfig cfg;
  cfg.app = ring_app();
  cfg.nranks = 8;
  cfg.groups = group::make_norm(8);
  ExperimentResult res = run_experiment(cfg);
  EXPECT_TRUE(res.finished);
  EXPECT_GT(res.exec_time_s, 0.5);  // 30 iters x 20ms compute
  EXPECT_GT(res.app_messages, 0);
  EXPECT_EQ(res.checkpoints_completed, 0);
}

TEST(Experiment, DeterministicAcrossRuns) {
  auto run = [] {
    ExperimentConfig cfg;
    cfg.app = ring_app();
    cfg.nranks = 8;
    cfg.groups = group::make_round_robin(8, 2);
    cfg.checkpoints = true;
    cfg.schedule.first_at_s = 0.1;
    cfg.schedule.interval_s = 0.2;
    return run_experiment(cfg);
  };
  ExperimentResult a = run();
  ExperimentResult b = run();
  EXPECT_DOUBLE_EQ(a.exec_time_s, b.exec_time_s);
  EXPECT_EQ(a.app_messages, b.app_messages);
  EXPECT_EQ(a.metrics.logged_bytes, b.metrics.logged_bytes);
  EXPECT_EQ(a.checkpoints_completed, b.checkpoints_completed);
}

TEST(Experiment, SeedChangesJitterButFinishes) {
  auto run = [](std::uint64_t seed) {
    ExperimentConfig cfg;
    cfg.app = ring_app();
    cfg.nranks = 8;
    cfg.seed = seed;
    cfg.groups = group::make_norm(8);
    cfg.checkpoints = true;
    cfg.schedule.first_at_s = 0.1;
    return run_experiment(cfg);
  };
  ExperimentResult a = run(1);
  ExperimentResult b = run(99);
  EXPECT_TRUE(a.finished);
  EXPECT_TRUE(b.finished);
  EXPECT_NE(a.exec_time_s, b.exec_time_s);  // jitter differs
}

class GroupingParamTest : public ::testing::TestWithParam<int> {};

// One checkpoint under every grouping completes and produces one image per
// rank, regardless of group shape (NORM, GP4-ish, GP1).
TEST_P(GroupingParamTest, OneCheckpointCompletesUnderAnyGrouping) {
  const int ngroups = GetParam();
  const int n = 12;
  ExperimentConfig cfg;
  cfg.app = ring_app();
  cfg.nranks = n;
  cfg.groups = group::make_round_robin(n, ngroups);
  cfg.checkpoints = true;
  cfg.schedule.first_at_s = 0.1;  // one-shot
  ExperimentResult res = run_experiment(cfg);
  ASSERT_TRUE(res.finished);
  EXPECT_EQ(res.checkpoints_completed, 1);
  EXPECT_EQ(res.metrics.ckpts.size(), static_cast<std::size_t>(n));
  // Inter-group logging only: with one group nothing is logged.
  if (ngroups == 1) {
    EXPECT_EQ(res.metrics.logged_bytes, 0);
  } else {
    EXPECT_GT(res.metrics.logged_bytes, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Groupings, GroupingParamTest,
                         ::testing::Values(1, 2, 3, 4, 6, 12));

TEST(Experiment, FailureWithoutCheckpointRestartsFromScratch) {
  ExperimentConfig cfg;
  cfg.app = ring_app(25);
  cfg.nranks = 6;
  cfg.groups = group::make_round_robin(6, 3);
  cfg.failures = {{1, 0.2}};
  ExperimentResult res = run_experiment(cfg);
  ASSERT_TRUE(res.finished);
  EXPECT_EQ(res.failures_injected, 1);
  // Restarted ranks re-ran from iteration 0 and everything still completed
  // with per-pair FIFO verification enabled (no loss/dup/reorder).
  EXPECT_EQ(res.metrics.restarts.size(), 2u);  // group of 2
}

TEST(Experiment, FailureAfterCheckpointRestartsFromImage) {
  ExperimentConfig cfg;
  cfg.app = ring_app(25);
  cfg.nranks = 6;
  cfg.groups = group::make_round_robin(6, 3);
  cfg.checkpoints = true;
  cfg.schedule.first_at_s = 0.1;
  cfg.failures = {{1, 0.35}};
  ExperimentResult res = run_experiment(cfg);
  ASSERT_TRUE(res.finished);
  EXPECT_EQ(res.failures_injected, 1);
  EXPECT_GE(res.checkpoints_completed, 1);
  ASSERT_EQ(res.metrics.restarts.size(), 2u);
  for (const auto& r : res.metrics.restarts) {
    EXPECT_GT(r.image_read_s, 0.0);
  }
}

TEST(Experiment, ClusteredStencilSurvivesEveryGroupFailingInTurn) {
  // Groups match the app's natural blocks; fail each group once.
  const int n = 8;
  ExperimentConfig cfg;
  cfg.app = stencil_app(/*cluster_width=*/4, /*iters=*/60);
  cfg.nranks = n;
  cfg.groups = group::make_blocks(n, 4);
  cfg.checkpoints = true;
  cfg.schedule.first_at_s = 0.1;
  cfg.schedule.interval_s = 0.3;
  cfg.failures = {{0, 0.25}, {1, 0.8}};
  ExperimentResult res = run_experiment(cfg);
  ASSERT_TRUE(res.finished);
  EXPECT_EQ(res.failures_injected, 2);
}

TEST(Experiment, ResidentShardsExecuteRankEventsAndMatchUnsharded) {
  // The tentpole's two proof obligations in one run: resident outputs are
  // byte-identical to the single-threaded engine, AND the peer shard
  // actually dispatched rank events (the equivalence is not vacuous).
  auto run = [](int shards) {
    ExperimentConfig cfg;
    cfg.app = stencil_app(/*cluster_width=*/4, /*iters=*/60);
    cfg.nranks = 8;
    cfg.groups = group::make_blocks(8, 4);
    cfg.checkpoints = true;
    cfg.schedule.first_at_s = 0.1;
    cfg.schedule.interval_s = 0.3;
    cfg.shards = shards;
    return run_experiment(cfg);
  };
  const ExperimentResult base = run(1);
  const ExperimentResult sharded = run(2);
  ASSERT_TRUE(base.finished);
  ASSERT_TRUE(sharded.finished);
  EXPECT_EQ(base.exec_time_s, sharded.exec_time_s);
  EXPECT_EQ(base.app_messages, sharded.app_messages);
  EXPECT_EQ(base.app_bytes, sharded.app_bytes);
  EXPECT_EQ(base.metrics.ckpts.size(), sharded.metrics.ckpts.size());
  EXPECT_EQ(base.metrics.aggregate_ckpt_time_s(),
            sharded.metrics.aggregate_ckpt_time_s());
  ASSERT_EQ(sharded.shard_events.size(), 2u);
  EXPECT_GT(sharded.shard_events[0], 0u);
  EXPECT_GT(sharded.shard_events[1], 0u);  // the peer did rank work
}

TEST(Experiment, ResidentFaultInjectionMatchesUnsharded) {
  // Kill/restore crosses the home<->shard edge in resident runs (recovery
  // state machine home, members on their shard); outputs must still match
  // the unsharded engine exactly, at a shard count that spreads the groups.
  auto run = [](int shards) {
    ExperimentConfig cfg;
    cfg.app = stencil_app(/*cluster_width=*/4, /*iters=*/60);
    cfg.nranks = 16;
    cfg.groups = group::make_blocks(16, 4);
    cfg.checkpoints = true;
    cfg.schedule.first_at_s = 0.1;
    cfg.schedule.interval_s = 0.3;
    cfg.failures = {{0, 0.25}, {2, 0.8}};
    cfg.shards = shards;
    return run_experiment(cfg);
  };
  const ExperimentResult base = run(1);
  const ExperimentResult sharded = run(4);
  ASSERT_TRUE(base.finished);
  ASSERT_TRUE(sharded.finished);
  EXPECT_EQ(base.failures_injected, 2);
  EXPECT_EQ(sharded.failures_injected, 2);
  EXPECT_EQ(base.exec_time_s, sharded.exec_time_s);
  EXPECT_EQ(base.app_messages, sharded.app_messages);
  EXPECT_EQ(base.recoveries_completed, sharded.recoveries_completed);
  EXPECT_EQ(base.metrics.restarts.size(), sharded.metrics.restarts.size());
  EXPECT_EQ(base.metrics.aggregate_restart_time_s(),
            sharded.metrics.aggregate_restart_time_s());
  ASSERT_EQ(sharded.shard_events.size(), 4u);
  for (const std::uint64_t ev : sharded.shard_events) EXPECT_GT(ev, 0u);
}

// --- Widened residency gate (DESIGN.md §15.3) ---------------------------
// Routed fabrics, tiered storage and tracing all pass the gate now; each
// equivalence test runs S=4 against the single-threaded engine and demands
// byte-identical outputs plus non-vacuous shard dispatch, with a mid-run
// fault so the kill/restore paths cross the shard edges too.

ExperimentConfig resident_cfg(int shards) {
  ExperimentConfig cfg;
  cfg.app = stencil_app(/*cluster_width=*/4, /*iters=*/60);
  cfg.nranks = 16;
  cfg.groups = group::make_blocks(16, 4);
  cfg.checkpoints = true;
  cfg.schedule.first_at_s = 0.1;
  cfg.schedule.interval_s = 0.3;
  cfg.failures = {{0, 0.25}, {2, 0.8}};
  cfg.shards = shards;
  return cfg;
}

void expect_equal_outputs(const ExperimentResult& base,
                          const ExperimentResult& sharded) {
  ASSERT_TRUE(base.finished);
  ASSERT_TRUE(sharded.finished);
  EXPECT_EQ(base.exec_time_s, sharded.exec_time_s);
  EXPECT_EQ(base.app_messages, sharded.app_messages);
  EXPECT_EQ(base.app_bytes, sharded.app_bytes);
  EXPECT_EQ(base.failures_injected, sharded.failures_injected);
  EXPECT_EQ(base.recoveries_completed, sharded.recoveries_completed);
  EXPECT_EQ(base.metrics.ckpts.size(), sharded.metrics.ckpts.size());
  EXPECT_EQ(base.metrics.aggregate_ckpt_time_s(),
            sharded.metrics.aggregate_ckpt_time_s());
  EXPECT_EQ(base.metrics.restarts.size(), sharded.metrics.restarts.size());
  EXPECT_EQ(base.metrics.aggregate_restart_time_s(),
            sharded.metrics.aggregate_restart_time_s());
  EXPECT_FALSE(base.resident);
  EXPECT_TRUE(sharded.resident);
  EXPECT_TRUE(sharded.denial_reason.empty()) << sharded.denial_reason;
  ASSERT_EQ(sharded.shard_events.size(),
            static_cast<std::size_t>(sharded.effective_shards));
  for (const std::uint64_t ev : sharded.shard_events) EXPECT_GT(ev, 0u);
}

class ResidentFabricTest : public ::testing::TestWithParam<int> {};

TEST_P(ResidentFabricTest, RoutedFabricMatchesUnsharded) {
  // Routed transfers allocate slots on the sender's shard and cross the
  // injection edge to the fabric home; admission order must be the
  // canonical (src node, seq) order at every shard count.
  auto run = [&](int shards) {
    ExperimentConfig cfg = resident_cfg(shards);
    cfg.topology.kind = static_cast<sim::TopologyKind>(GetParam());
    cfg.topology.fattree_routing = sim::FatTreeRouting::kAdaptive;
    return run_experiment(cfg);
  };
  expect_equal_outputs(run(1), run(4));
}

INSTANTIATE_TEST_SUITE_P(
    Fabrics, ResidentFabricTest,
    ::testing::Values(static_cast<int>(sim::TopologyKind::kFatTree),
                      static_cast<int>(sim::TopologyKind::kDragonfly)));

class ResidentTierTest : public ::testing::TestWithParam<int> {};

TEST_P(ResidentTierTest, TieredStorageMatchesUnsharded) {
  // Stage/commit/read requests cross the ±L control edge to the home
  // arbiter; group commits must stay atomic at the leader and post-failure
  // restores must fall back to the shared tiers identically at every S.
  auto run = [&](int shards) {
    ExperimentConfig cfg = resident_cfg(shards);
    cfg.storage.mode = static_cast<ckpt::StorageMode>(GetParam());
    return run_experiment(cfg);
  };
  const ExperimentResult base = run(1);
  const ExperimentResult sharded = run(4);
  expect_equal_outputs(base, sharded);
  EXPECT_GT(base.tier_stats.images_staged, 0);
  EXPECT_EQ(base.tier_stats.images_staged, sharded.tier_stats.images_staged);
  EXPECT_EQ(base.tier_stats.reads_local, sharded.tier_stats.reads_local);
  EXPECT_EQ(base.tier_stats.reads_bb, sharded.tier_stats.reads_bb);
  EXPECT_EQ(base.tier_stats.reads_pfs, sharded.tier_stats.reads_pfs);
  EXPECT_EQ(base.tier_stats.drains_completed,
            sharded.tier_stats.drains_completed);
  EXPECT_EQ(base.tier_stats.bb_bytes_peak, sharded.tier_stats.bb_bytes_peak);
}

INSTANTIATE_TEST_SUITE_P(
    Tiers, ResidentTierTest,
    ::testing::Values(static_cast<int>(ckpt::StorageMode::kBurstBuffer),
                      static_cast<int>(ckpt::StorageMode::kDrain)));

TEST(Experiment, ResidentTraceMergeIsDeterministic) {
  // Per-rank buffers merge in canonical (time, rank, append) order; the
  // merged byte stream must be identical to the unsharded tracer's.
  auto run = [](int shards) {
    ExperimentConfig cfg = resident_cfg(shards);
    cfg.collect_trace = true;
    return run_experiment(cfg);
  };
  const ExperimentResult base = run(1);
  const ExperimentResult sharded = run(4);
  expect_equal_outputs(base, sharded);
  ASSERT_FALSE(base.trace.empty());
  ASSERT_EQ(base.trace.size(), sharded.trace.size());
  for (std::size_t i = 0; i < base.trace.size(); ++i) {
    const trace::TraceRecord& a = base.trace[i];
    const trace::TraceRecord& b = sharded.trace[i];
    ASSERT_EQ(a.time, b.time) << "record " << i;
    ASSERT_EQ(a.kind, b.kind) << "record " << i;
    ASSERT_EQ(a.rank, b.rank) << "record " << i;
    ASSERT_EQ(a.peer, b.peer) << "record " << i;
    ASSERT_EQ(a.tag, b.tag) << "record " << i;
    ASSERT_EQ(a.bytes, b.bytes) << "record " << i;
  }
}

TEST(Experiment, DeniedResidencyIsSurfacedNotSilent) {
  // Direct-mode remote storage stays home-bound: the request is demoted to
  // one shard and the result says so — no silent fallback.
  ExperimentConfig cfg = resident_cfg(4);
  cfg.failures.clear();
  cfg.remote_storage = true;
  const ExperimentResult res = run_experiment(cfg);
  ASSERT_TRUE(res.finished);
  EXPECT_FALSE(res.resident);
  EXPECT_EQ(res.effective_shards, 1);
  EXPECT_FALSE(res.denial_reason.empty());
  EXPECT_NE(res.denial_reason.find("remote"), std::string::npos);
  ASSERT_EQ(res.shard_events.size(), 1u);
}

TEST(Experiment, ShardsClampToOccupiedGroups) {
  // 16 ranks in 4 groups cannot occupy 8 shards: the group-aligned plan
  // never splits a group, so the run clamps to 4 and every shard works.
  ExperimentConfig cfg = resident_cfg(8);
  const ExperimentResult res = run_experiment(cfg);
  ASSERT_TRUE(res.finished);
  EXPECT_TRUE(res.resident);
  EXPECT_EQ(res.effective_shards, 4);
  ASSERT_EQ(res.shard_events.size(), 4u);
  for (const std::uint64_t ev : res.shard_events) EXPECT_GT(ev, 0u);
}

TEST(Experiment, WholeAppRestartMeasuresPreparation) {
  ExperimentConfig cfg;
  cfg.app = ring_app(20);
  cfg.nranks = 8;
  cfg.groups = group::make_round_robin(8, 4);
  cfg.checkpoints = true;
  cfg.schedule.first_at_s = 0.1;
  cfg.restart_after_finish = true;
  ExperimentResult res = run_experiment(cfg);
  ASSERT_TRUE(res.finished);
  EXPECT_EQ(res.restart_records.size(), 8u);
  EXPECT_GT(res.restart_aggregate_s, 0.0);
}

TEST(Experiment, NormRestartIsCheapestNoResends) {
  auto run = [](int ngroups) {
    ExperimentConfig cfg;
    cfg.app = ring_app(20);
    cfg.nranks = 8;
    cfg.groups = group::make_round_robin(8, ngroups);
    cfg.checkpoints = true;
    cfg.schedule.first_at_s = 0.1;
    cfg.restart_after_finish = true;
    return run_experiment(cfg);
  };
  ExperimentResult norm = run(1);
  ExperimentResult gp1 = run(8);
  // Global coordinated restart resends nothing (paper §5.1).
  EXPECT_EQ(norm.metrics.resend_bytes, 0);
  EXPECT_GT(gp1.metrics.resend_bytes, 0);
}

TEST(Experiment, ProfileProducesTraceAndGroups) {
  const trace::Trace trace = profile_app(ring_app(10), 6);
  EXPECT_FALSE(trace.empty());
  const group::GroupSet groups = derive_groups(stencil_app(3, 10), 6, 3);
  EXPECT_EQ(groups.nranks(), 6);
  // The stencil's disjoint 3-wide blocks are the obvious grouping.
  EXPECT_EQ(groups.num_groups(), 2);
  EXPECT_TRUE(groups.same_group(0, 2));
  EXPECT_FALSE(groups.same_group(2, 3));
}

}  // namespace
}  // namespace gcr::exp
