// Algorithm 2 (trace-assisted group formation): merging rules, size bound,
// and property-style sweeps over random traces.
#include <gtest/gtest.h>

#include "group/formation.hpp"
#include "trace/analysis.hpp"
#include "util/rng.hpp"

namespace gcr::group {
namespace {

trace::TraceRecord send_rec(mpi::RankId src, mpi::RankId dst,
                            std::int64_t bytes) {
  return trace::TraceRecord{0, trace::EventKind::kSend, src, dst, 0, bytes};
}

TEST(Formation, DefaultMaxGroupSizeIsSqrtN) {
  EXPECT_EQ(default_max_group_size(4), 2);
  EXPECT_EQ(default_max_group_size(16), 4);
  EXPECT_EQ(default_max_group_size(32), 5);  // floor(sqrt(32))
  EXPECT_EQ(default_max_group_size(128), 11);
  EXPECT_EQ(default_max_group_size(2), 2);  // floor is 1, clamped to 2
}

TEST(Formation, PairsFormTwoProcessGroups) {
  trace::Trace t{send_rec(0, 1, 100), send_rec(2, 3, 100)};
  GroupSet g = form_groups_from_trace(4, t);
  EXPECT_EQ(g.num_groups(), 2);
  EXPECT_TRUE(g.same_group(0, 1));
  EXPECT_TRUE(g.same_group(2, 3));
  EXPECT_FALSE(g.same_group(1, 2));
}

TEST(Formation, SilentRanksStaySingleton) {
  trace::Trace t{send_rec(0, 1, 100)};
  GroupSet g = form_groups_from_trace(5, t);
  EXPECT_EQ(g.num_groups(), 4);  // {0,1} {2} {3} {4}
  EXPECT_TRUE(g.same_group(0, 1));
  EXPECT_FALSE(g.same_group(2, 3));
}

TEST(Formation, HeaviestPairsMergeFirst) {
  // Chain 0-1-2 where (1,2) is heavier: with G=2 only (1,2) can merge.
  trace::Trace t{send_rec(0, 1, 100), send_rec(1, 2, 900)};
  FormationOptions opts;
  opts.max_group_size = 2;
  GroupSet g = form_groups_from_trace(3, t, opts);
  EXPECT_TRUE(g.same_group(1, 2));
  EXPECT_FALSE(g.same_group(0, 1));
}

TEST(Formation, CountBreaksSizeTies) {
  // Same bytes; (2,3) has more messages, wins the only slot with 0.
  trace::Trace t{send_rec(0, 1, 100), send_rec(0, 2, 50), send_rec(0, 2, 50)};
  FormationOptions opts;
  opts.max_group_size = 2;
  GroupSet g = form_groups_from_trace(3, t, opts);
  EXPECT_TRUE(g.same_group(0, 2));
  EXPECT_FALSE(g.same_group(0, 1));
}

TEST(Formation, GroupGrowsByAttachment) {
  // (0,1) heavy, then (1,2) attaches, then (2,3) attaches, bound 3 stops 3.
  trace::Trace t{send_rec(0, 1, 1000), send_rec(1, 2, 500),
                 send_rec(2, 3, 200)};
  FormationOptions opts;
  opts.max_group_size = 3;
  GroupSet g = form_groups_from_trace(4, t, opts);
  EXPECT_TRUE(g.same_group(0, 1));
  EXPECT_TRUE(g.same_group(1, 2));
  EXPECT_FALSE(g.same_group(2, 3));  // would exceed the bound
  EXPECT_EQ(g.largest_group_size(), 3u);
}

TEST(Formation, TwoGroupsMergeWhenBoundAllows) {
  trace::Trace t{send_rec(0, 1, 1000), send_rec(2, 3, 900),
                 send_rec(1, 2, 800)};
  FormationOptions opts;
  opts.max_group_size = 4;
  GroupSet g = form_groups_from_trace(4, t, opts);
  EXPECT_EQ(g.num_groups(), 1);
  opts.max_group_size = 3;
  GroupSet g3 = form_groups_from_trace(4, t, opts);
  EXPECT_EQ(g3.num_groups(), 2);  // merge of {0,1} and {2,3} refused
}

TEST(Formation, IntraGroupTrafficDoesNotGrowGroup) {
  trace::Trace t{send_rec(0, 1, 1000), send_rec(1, 0, 900),
                 send_rec(0, 1, 800)};
  GroupSet g = form_groups_from_trace(2, t);
  EXPECT_EQ(g.num_groups(), 1);
  EXPECT_EQ(g.largest_group_size(), 2u);
}

TEST(Formation, SelfSendsIgnored) {
  trace::Trace t{send_rec(0, 0, 1000), send_rec(0, 1, 10)};
  GroupSet g = form_groups_from_trace(2, t);
  EXPECT_TRUE(g.same_group(0, 1));
}

class FormationPropertyTest : public ::testing::TestWithParam<int> {};

// Property sweep: for random traces, the result is always a partition and
// never exceeds the size bound; singletons only for silent ranks.
TEST_P(FormationPropertyTest, PartitionAndBoundInvariants) {
  const int seed = GetParam();
  gcr::Rng rng(static_cast<std::uint64_t>(seed));
  const int n = 4 + static_cast<int>(rng.next_below(60));
  const int msgs = 10 + static_cast<int>(rng.next_below(500));
  trace::Trace t;
  for (int i = 0; i < msgs; ++i) {
    const auto a = static_cast<mpi::RankId>(rng.next_below(n));
    const auto b = static_cast<mpi::RankId>(rng.next_below(n));
    t.push_back(send_rec(a, b, 1 + static_cast<std::int64_t>(
                                       rng.next_below(100000))));
  }
  for (int bound : {0, 2, 3, 5, n}) {
    FormationOptions opts;
    opts.max_group_size = bound;
    const GroupSet g = form_groups_from_trace(n, t, opts);
    // Partition: every rank in exactly one group (GroupSet ctor asserts it;
    // verify via group_of consistency).
    EXPECT_EQ(g.nranks(), n);
    int covered = 0;
    for (int gi = 0; gi < g.num_groups(); ++gi) {
      covered += static_cast<int>(g.members(gi).size());
      for (mpi::RankId r : g.members(gi)) EXPECT_EQ(g.group_of(r), gi);
    }
    EXPECT_EQ(covered, n);
    const int eff = bound > 0 ? bound : default_max_group_size(n);
    EXPECT_LE(g.largest_group_size(), static_cast<std::size_t>(eff));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FormationPropertyTest,
                         ::testing::Range(1, 21));

TEST(Formation, DeterministicForIdenticalTrace) {
  gcr::Rng rng(99);
  trace::Trace t;
  for (int i = 0; i < 300; ++i) {
    t.push_back(send_rec(static_cast<mpi::RankId>(rng.next_below(20)),
                         static_cast<mpi::RankId>(rng.next_below(20)),
                         1 + static_cast<std::int64_t>(rng.next_below(5000))));
  }
  EXPECT_EQ(form_groups_from_trace(20, t), form_groups_from_trace(20, t));
}

}  // namespace
}  // namespace gcr::group
