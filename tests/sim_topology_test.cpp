// Topology conformance: analytic checks of route shapes and of the routed
// fabric's fair-share arithmetic against closed forms.
//
// This TU replaces the global allocator with a counting shim (the
// engine_stress_test idiom) so the fabric's "allocation-free steady path"
// claim is enforced by a test, not a comment.
#include <gtest/gtest.h>

#include <cstdlib>
#include <new>
#include <vector>

#include "sim/network.hpp"
#include "sim/topology.hpp"
#include "util/rng.hpp"

namespace {
std::size_t g_allocs = 0;
}

void* operator new(std::size_t n) {
  ++g_allocs;
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) {
  ++g_allocs;
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace gcr::sim {
namespace {

/// 16-host k=4 fat-tree over 10 MB/s links with zero per-message and
/// per-hop costs, so completion times are pure bandwidth arithmetic
/// (plus the fabric's 1-tick delivery floor).
NetParams fattree_params(FatTreeRouting routing = FatTreeRouting::kDeterministic) {
  NetParams p;
  p.bandwidth_Bps = 10e6;
  p.per_message_s = 0;
  p.topology.kind = TopologyKind::kFatTree;
  p.topology.fattree_k = 4;
  p.topology.fattree_routing = routing;
  p.topology.hop_latency_s = 0;
  return p;
}

TEST(Topology, FatTreeMinHopClosedForm) {
  FatTreeTopology t(16, 4, FatTreeRouting::kDeterministic, 10e6, 10e6, 10e6);
  EXPECT_EQ(t.min_hops(0, 1), 2);   // same edge switch
  EXPECT_EQ(t.min_hops(0, 2), 4);   // same pod, different edge
  EXPECT_EQ(t.min_hops(0, 4), 6);   // different pod (via core)
  EXPECT_EQ(t.min_hops(5, 5), 0);
  // Every resolved route is minimal and stays inside the link id space.
  Rng rng(1);
  std::vector<std::int32_t> load(static_cast<std::size_t>(t.num_links()), 0);
  for (int s = 0; s < t.hosts(); ++s) {
    for (int d = 0; d < t.hosts(); ++d) {
      if (s == d) continue;
      Route r;
      t.resolve(s, d, load, rng, r);
      ASSERT_EQ(r.nhops, t.min_hops(s, d)) << s << "->" << d;
      ASSERT_EQ(r.links[0], t.host_up(s));
      ASSERT_EQ(r.links[static_cast<std::size_t>(r.nhops - 1)],
                t.host_down(d));
      for (int i = 0; i < r.nhops; ++i) {
        ASSERT_GE(r.links[static_cast<std::size_t>(i)], 0);
        ASSERT_LT(r.links[static_cast<std::size_t>(i)], t.num_links());
      }
    }
  }
}

TEST(Topology, DragonflyMinHopClosedForm) {
  // a=4, p=2, h=2 -> g = a*h+1 = 9 groups, 72 hosts.
  DragonflyTopology t(72, 4, 2, 2, DragonflyRouting::kMinimal, 10e6, 10e6,
                      10e6);
  ASSERT_EQ(t.groups(), 9);
  ASSERT_EQ(t.num_nodes(), 72);
  EXPECT_EQ(t.min_hops(0, 1), 2);  // same router: up, down
  EXPECT_EQ(t.min_hops(0, 2), 3);  // same group: up, local, down
  Rng rng(1);
  std::vector<std::int32_t> load(static_cast<std::size_t>(t.num_links()), 0);
  for (int s = 0; s < t.num_nodes(); ++s) {
    for (int d = 0; d < t.num_nodes(); ++d) {
      if (s == d) continue;
      Route r;
      t.resolve(s, d, load, rng, r);
      ASSERT_EQ(r.nhops, t.min_hops(s, d)) << s << "->" << d;
      // Minimal cross-group: 3 hops when the source router owns the direct
      // channel AND it lands on the destination router, 5 at most.
      if (t.group_of(s) != t.group_of(d)) {
        ASSERT_GE(r.nhops, 3);
        ASSERT_LE(r.nhops, 5);
      }
      for (int i = 0; i < r.nhops; ++i) {
        ASSERT_GE(r.links[static_cast<std::size_t>(i)], 0);
        ASSERT_LT(r.links[static_cast<std::size_t>(i)], t.num_links());
      }
    }
  }
}

TEST(Topology, DragonflyValiantStaysInBounds) {
  DragonflyTopology t(72, 4, 2, 2, DragonflyRouting::kValiant, 10e6, 10e6,
                      10e6);
  Rng rng(7);
  std::vector<std::int32_t> load(static_cast<std::size_t>(t.num_links()), 0);
  for (int s = 0; s < t.num_nodes(); s += 3) {
    for (int d = 0; d < t.num_nodes(); d += 5) {
      if (s == d) continue;
      Route r;
      t.resolve(s, d, load, rng, r);
      // A detour can beat the *direct* route's hop count (both global
      // segments may skip their local hop), so the only lower bound is the
      // terminal pair; the upper bound is the Route capacity.
      ASSERT_GE(r.nhops, 2);
      ASSERT_LE(r.nhops, Route::kMaxHops);
      ASSERT_EQ(r.links[0], t.terminal_up(s));
      ASSERT_EQ(r.links[static_cast<std::size_t>(r.nhops - 1)],
                t.terminal_down(d));
    }
  }
}

TEST(Topology, DeterministicPoliciesIgnoreRngAndLoad) {
  FatTreeTopology t(16, 4, FatTreeRouting::kDeterministic, 10e6, 10e6, 10e6);
  std::vector<std::int32_t> idle(static_cast<std::size_t>(t.num_links()), 0);
  std::vector<std::int32_t> busy(static_cast<std::size_t>(t.num_links()), 9);
  Rng r1(1), r2(999);
  Route a, b;
  t.resolve(0, 13, idle, r1, a);
  t.resolve(0, 13, busy, r2, b);
  ASSERT_EQ(a.nhops, b.nhops);
  for (int i = 0; i < a.nhops; ++i) {
    EXPECT_EQ(a.links[static_cast<std::size_t>(i)],
              b.links[static_cast<std::size_t>(i)]);
  }
  EXPECT_EQ(r1.next_u64(), Rng(1).next_u64());  // stream untouched
}

// ---------------------------------------------------------------- fabric

TEST(Fabric, TwoFlowsSharingOneUplinkSeeHalfBandwidth) {
  Engine eng;
  Network net(eng, 16, fattree_params());
  // Hosts 0 and 1 hang off the same edge switch; destinations 4 and 6 both
  // hash to aggregation uplink a=0 (dst % 2) but to different cores, so the
  // two routes share exactly one link: edge_agg_up(0, 0, 0).
  Time a1 = -1, a2 = -1;
  net.send(0, 4, 1'000'000, [&] { a1 = eng.now(); });
  net.send(1, 6, 1'000'000, [&] { a2 = eng.now(); });
  const auto& ft = dynamic_cast<const FatTreeTopology&>(net.topology());
  eng.run(net.inject_latency());  // cross the NIC injection edge
  ASSERT_EQ(net.link_active(ft.edge_agg_up(0, 0, 0)), 2);
  eng.run();
  // Each flow's bottleneck share is 10/2 = 5 MB/s: 1 MB completes at 0.2 s.
  EXPECT_NEAR(to_seconds(a1), 0.2, 1e-6);
  EXPECT_NEAR(to_seconds(a2), 0.2, 1e-6);
}

TEST(Fabric, DisjointRoutesDoNotInterfere) {
  Engine eng;
  Network net(eng, 16, fattree_params());
  // Pods 0->1 and 2->3: no shared link anywhere, both run at full rate.
  Time a1 = -1, a2 = -1;
  net.send(0, 4, 1'000'000, [&] { a1 = eng.now(); });
  net.send(8, 12, 1'000'000, [&] { a2 = eng.now(); });
  eng.run();
  EXPECT_NEAR(to_seconds(a1), 0.1, 1e-6);
  EXPECT_EQ(a1, a2);
}

TEST(Fabric, AdaptiveRoutingPicksLeastLoadedUplink) {
  Engine eng;
  Network net(eng, 16, fattree_params(FatTreeRouting::kAdaptive));
  const auto& ft = dynamic_cast<const FatTreeTopology&>(net.topology());
  // First flow takes the (tie -> lowest index) a=0 uplink; the second —
  // issued only after the first is admitted — sees its load and must route
  // via a=1, leaving both flows uncontended.
  net.send(0, 4, 1'000'000, [] {});
  eng.run(net.inject_latency());  // admit the first flow
  ASSERT_EQ(net.link_active(ft.edge_agg_up(0, 0, 0)), 1);
  net.send(1, 6, 1'000'000, [] {});
  eng.run(eng.now() + net.inject_latency());  // admit the second flow
  EXPECT_EQ(net.link_active(ft.edge_agg_up(0, 0, 0)), 1);
  EXPECT_EQ(net.link_active(ft.edge_agg_up(0, 0, 1)), 1);
  eng.run();
}

TEST(Fabric, AbortedSenderReturnsBandwidthToSurvivor) {
  Engine eng;
  Network net(eng, 16, fattree_params());
  Time survivor = -1;
  bool victim_delivered = false;
  net.send(0, 4, 1'000'000, [&] { survivor = eng.now(); });
  net.send(1, 6, 1'000'000, [&] { victim_delivered = true; });
  eng.call_at(50_ms, [&] { net.abort_transfers_from(1); });
  eng.run();
  // Shared uplink at 5 MB/s each until 50 ms (250 KB done), then the
  // survivor gets the full 10 MB/s for the remaining 750 KB: 125 ms total.
  EXPECT_NEAR(to_seconds(survivor), 0.125, 1e-6);
  EXPECT_FALSE(victim_delivered);
  EXPECT_EQ(net.fabric_bytes_dropped(), 1'000'000);
  EXPECT_EQ(net.fabric_bytes_delivered(), 1'000'000);
  EXPECT_EQ(net.active_transfers(), 0);
}

TEST(Fabric, NicAdmissionQueuesFifoPerSender) {
  Engine eng;
  NetParams p = fattree_params();
  p.topology.nic_concurrency = 1;
  Network net(eng, 16, p);
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    net.send(0, 4, 100'000, [&order, i] { order.push_back(i); });
  }
  eng.run(net.inject_latency());  // cross the NIC injection edge
  EXPECT_EQ(net.active_transfers(), 1);
  EXPECT_EQ(net.queued_transfers(), 3);
  eng.run();
  ASSERT_EQ(order.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Fabric, SixtyFourKHostFabricIsSlim) {
  // 64k-rank claim: construction cost is flat arrays only. k=64 fat-tree
  // is exactly 65536 hosts / 393216 directed links; the derived dragonfly
  // rounds up past the node count.
  TopologyParams ft;
  ft.kind = TopologyKind::kFatTree;
  auto t1 = make_topology(ft, 65536, 10e6);
  EXPECT_EQ(t1->num_nodes(), 65536);
  EXPECT_EQ(t1->num_links(), 6 * 65536);

  TopologyParams df;
  df.kind = TopologyKind::kDragonfly;
  auto t2 = make_topology(df, 65536, 10e6);
  EXPECT_GE(t2->num_nodes(), 65536);

  Engine eng;
  NetParams p = fattree_params();
  p.topology.fattree_k = 0;  // derive: k=64
  Network net(eng, 65536, p);
  Time arrived = -1;
  net.send(0, 65535, 1'000'000, [&] { arrived = eng.now(); });
  eng.run();
  EXPECT_NEAR(to_seconds(arrived), 0.1, 1e-6);
}

TEST(Fabric, SteadyStatePathIsAllocationFree) {
  Engine eng;
  Network net(eng, 16, fattree_params());
  // Every host streams to its cross-fabric peer, back to back: the steady
  // state recycles pooled transfers and intrusive link members only.
  struct Stream {
    Engine* eng;
    Network* net;
    int src, dst, left;
    void operator()() {
      if (left > 0) {
        net->send(src, dst, 64 * 1024, Stream{eng, net, src, dst, left - 1});
      }
    }
  };
  for (int s = 0; s < 16; ++s) {
    const int d = (s + 8) % 16;
    net.send(s, d, 64 * 1024, Stream{&eng, &net, s, d, 499});
  }
  eng.run(5_s);  // warm-up: pool, heap, and due-ring at steady capacity
  const std::size_t before = g_allocs;
  eng.run(40_s);
  EXPECT_EQ(g_allocs - before, 0u);
  eng.run();
}

}  // namespace
}  // namespace gcr::sim
