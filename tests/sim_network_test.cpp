// Network, storage, jitter, and cluster models.
#include <gtest/gtest.h>

#include <vector>

#include "sim/cluster.hpp"
#include "sim/network.hpp"
#include "sim/storage.hpp"

namespace gcr::sim {
namespace {

NetParams fast_params() {
  NetParams p;
  p.latency_s = 100e-6;
  p.bandwidth_Bps = 10e6;
  p.per_message_s = 0;
  return p;
}

TEST(Network, LatencyPlusBandwidth) {
  Engine eng;
  Network net(eng, 2, fast_params());
  Time arrived = -1;
  net.send(0, 1, 1'000'000, [&] { arrived = eng.now(); });
  eng.run();
  // 1 MB @ 10 MB/s = 100 ms + 100 us latency.
  EXPECT_EQ(arrived, 100_ms + 100_us);
}

TEST(Network, EgressSerializesSameSender) {
  Engine eng;
  Network net(eng, 3, fast_params());
  std::vector<Time> arrivals;
  net.send(0, 1, 1'000'000, [&] { arrivals.push_back(eng.now()); });
  net.send(0, 2, 1'000'000, [&] { arrivals.push_back(eng.now()); });
  eng.run();
  ASSERT_EQ(arrivals.size(), 2u);
  // Second message waits for the first to clear the NIC.
  EXPECT_EQ(arrivals[0], 100_ms + 100_us);
  EXPECT_EQ(arrivals[1], 200_ms + 100_us);
}

TEST(Network, DifferentSendersDoNotContend) {
  Engine eng;
  Network net(eng, 3, fast_params());
  std::vector<Time> arrivals;
  net.send(0, 2, 1'000'000, [&] { arrivals.push_back(eng.now()); });
  net.send(1, 2, 1'000'000, [&] { arrivals.push_back(eng.now()); });
  eng.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[0], arrivals[1]);  // parallel NICs
}

TEST(Network, LoopbackBypassesNic) {
  Engine eng;
  NetParams p = fast_params();
  p.loopback_Bps = 1e9;
  p.loopback_latency_s = 1e-6;
  Network net(eng, 2, p);
  Time arrived = -1;
  auto times = net.send(0, 0, 1'000'000, [&] { arrived = eng.now(); });
  eng.run();
  EXPECT_EQ(arrived, 1_ms + 1_us);
  EXPECT_EQ(times.egress_done, arrived);
}

TEST(Network, FifoPerSenderPair) {
  // Arrivals from one sender must preserve send order (runtime relies on it).
  Engine eng;
  Network net(eng, 2, fast_params());
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    net.send(0, 1, 1000 * (10 - i), [&order, i] { order.push_back(i); });
  }
  eng.run();
  for (int i = 0; i < 10; ++i) ASSERT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Network, ZeroByteMessageStillPaysLatency) {
  // A zero-payload message (pure control, e.g. an empty bookmark) occupies
  // the NIC for per_message only but must still cross the wire: arrival is
  // one latency after egress, never "now".
  Engine eng;
  Network net(eng, 2, fast_params());
  Time arrived = -1;
  const auto times = net.send(0, 1, 0, [&] { arrived = eng.now(); });
  eng.run();
  EXPECT_EQ(arrived, 100_us);
  EXPECT_EQ(times.arrival, arrived);
  EXPECT_EQ(times.egress_done, 0);  // per_message_s == 0 in fast_params
  EXPECT_EQ(times.ticket, 0u);      // flat sends carry no egress ticket
}

TEST(Network, ZeroByteSelfSendDeliversStrictlyLater) {
  Engine eng;
  NetParams p = fast_params();
  p.loopback_latency_s = 0;  // adversarial: all costs zero
  Network net(eng, 2, p);
  Time arrived = -1;
  net.send(0, 0, 0, [&] { arrived = eng.now(); });
  eng.run();
  EXPECT_EQ(arrived, 1);  // 1-tick floor: delivery is never synchronous
}

TEST(Network, RoutedZeroBytePaysPerHopLatency) {
  Engine eng;
  NetParams p = fast_params();
  p.topology.kind = TopologyKind::kFatTree;
  p.topology.fattree_k = 4;
  p.topology.hop_latency_s = 10e-6;
  Network net(eng, 16, p);
  Time arrived = -1;
  net.send(0, 4, 0, [&] { arrived = eng.now(); });  // cross-pod: 6 hops
  eng.run();
  EXPECT_GE(arrived, from_seconds(6 * 10e-6));
}

TEST(Network, RoutedSendTimesAreEstimatesWithTicket) {
  Engine eng;
  NetParams p = fast_params();
  p.topology.kind = TopologyKind::kFatTree;
  p.topology.fattree_k = 4;
  p.topology.hop_latency_s = 0;
  Network net(eng, 16, p);
  ASSERT_TRUE(net.routed());
  Time arrived = -1;
  const auto times = net.send(0, 4, 1'000'000, [&] { arrived = eng.now(); });
  ASSERT_NE(times.ticket, 0u);
  EXPECT_TRUE(net.egress_pending(times.ticket));
  eng.run();
  // Uncontended, the estimate is exact (modulo the 1-tick delivery floor).
  EXPECT_NEAR(to_seconds(arrived), to_seconds(times.arrival), 1e-6);
  EXPECT_FALSE(net.egress_pending(times.ticket));
  // Clearing a completed ticket's trigger is a harmless no-op.
  net.clear_egress_trigger(times.ticket);
}

TEST(Network, InFlightTransferKilledMidHopNeverDelivers) {
  Engine eng;
  NetParams p = fast_params();
  p.topology.kind = TopologyKind::kFatTree;
  p.topology.fattree_k = 4;
  p.topology.hop_latency_s = 0;
  Network net(eng, 16, p);
  bool delivered = false;
  net.send(0, 4, 1'000'000, [&] { delivered = true; });  // 100 ms transfer
  eng.call_at(50_ms, [&] { net.abort_transfers_from(0); });
  eng.run();
  EXPECT_FALSE(delivered);
  EXPECT_EQ(net.fabric_bytes_dropped(), 1'000'000);
  EXPECT_EQ(net.fabric_bytes_offered(),
            net.fabric_bytes_delivered() + net.fabric_bytes_dropped());
  EXPECT_EQ(net.active_transfers(), 0);
}

TEST(Network, CountsTraffic) {
  Engine eng;
  Network net(eng, 2, fast_params());
  net.send(0, 1, 100, [] {});
  net.send(1, 0, 200, [] {});
  eng.run();
  EXPECT_EQ(net.total_messages(), 2);
  EXPECT_EQ(net.total_bytes(), 300);
}

Co<void> do_write(StorageDevice& dev, std::int64_t bytes, Time* done,
                  Engine& eng) {
  co_await dev.write(bytes);
  *done = eng.now();
}

TEST(Storage, WriteTimeIsLatencyPlusBandwidth) {
  Engine eng;
  StorageParams p{/*bandwidth_Bps=*/50e6, /*latency_s=*/5e-3};
  StorageDevice dev(eng, "d", p);
  Time done = -1;
  eng.spawn("w", do_write(dev, 50'000'000, &done, eng));
  eng.run();
  EXPECT_EQ(done, 1_s + 5_ms);
  EXPECT_EQ(dev.bytes_written(), 50'000'000);
}

TEST(Storage, RequestsSerializeFifo) {
  Engine eng;
  StorageParams p{/*bandwidth_Bps=*/50e6, /*latency_s=*/0};
  StorageDevice dev(eng, "d", p);
  Time d1 = -1, d2 = -1;
  eng.spawn("w1", do_write(dev, 50'000'000, &d1, eng));
  eng.spawn("w2", do_write(dev, 50'000'000, &d2, eng));
  eng.run();
  EXPECT_EQ(d1, 1_s);
  EXPECT_EQ(d2, 2_s);  // queued behind the first
}

TEST(Jitter, DisabledIsZero) {
  JitterParams p;
  p.enabled = false;
  JitterModel model(p);
  Rng rng(1);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(model.draw(rng), 0);
}

TEST(Jitter, SamplesPositiveAndDeterministic) {
  JitterModel model{JitterParams{}};
  Rng a(5), b(5);
  for (int i = 0; i < 100; ++i) {
    const Time va = model.draw(a);
    EXPECT_GT(va, 0);
    EXPECT_EQ(va, model.draw(b));
  }
}

TEST(Jitter, SpikesObeyBounds) {
  JitterParams p;
  p.spike_prob = 1.0;  // always spike
  JitterModel model(p);
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    const double s = to_seconds(model.draw(rng));
    EXPECT_GE(s, p.spike_min_s);
    EXPECT_LE(s, p.spike_max_s + 1.0);  // + lognormal body
  }
}

TEST(Cluster, RemoteServerRoundRobin) {
  ClusterParams p;
  p.num_nodes = 8;
  p.num_remote_servers = 4;
  Cluster cluster(p);
  ASSERT_TRUE(cluster.has_remote_storage());
  EXPECT_EQ(&cluster.remote_server_for(0), &cluster.remote_server_for(4));
  EXPECT_NE(&cluster.remote_server_for(0), &cluster.remote_server_for(1));
}

TEST(Cluster, SubstreamsIndependentOfEachOther) {
  ClusterParams p;
  p.seed = 77;
  Cluster cluster(p);
  Rng a = cluster.make_rng(1);
  Rng b = cluster.make_rng(2);
  Rng a2 = cluster.make_rng(1);
  EXPECT_NE(a.next_u64(), b.next_u64());
  Rng a3 = cluster.make_rng(1);
  EXPECT_EQ(a2.next_u64(), a3.next_u64());
}

}  // namespace
}  // namespace gcr::sim
