// Utility layer: CLI validation, RNG determinism/distributions, statistics,
// tables, units.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <vector>

#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace gcr {
namespace {

Cli make_cli(std::vector<const char*> argv) {
  return Cli(static_cast<int>(argv.size()),
             const_cast<char**>(argv.data()));
}

TEST(Cli, ShardsAndJobsParseInRange) {
  Cli cli = make_cli({"prog", "--shards", "4", "--jobs", "8"});
  EXPECT_EQ(cli.get_shards(), 4);
  EXPECT_EQ(cli.get_jobs(), 8);
}

TEST(Cli, ShardsDefaultToSingleEngineAndJobsToAllThreads) {
  Cli cli = make_cli({"prog"});
  EXPECT_EQ(cli.get_shards(), 1);
  EXPECT_EQ(cli.get_jobs(), 0);  // 0 = all hardware threads
}

// Campaigns run jobs simulations concurrently and each simulation spins up
// `shards` engine threads, so both knobs reject nonsense values loudly —
// the error text spells out the jobs x shards multiplication.
TEST(CliDeathTest, RejectsZeroShards) {
  Cli cli = make_cli({"prog", "--shards=0"});
  EXPECT_EXIT(cli.get_shards(), testing::ExitedWithCode(2),
              "--shards must be in 1..64");
}

TEST(CliDeathTest, RejectsNegativeShards) {
  Cli cli = make_cli({"prog", "--shards=-2"});
  EXPECT_EXIT(cli.get_shards(), testing::ExitedWithCode(2),
              "threads PER simulation");
}

TEST(CliDeathTest, RejectsOversizedShards) {
  Cli cli = make_cli({"prog", "--shards=65"});
  EXPECT_EXIT(cli.get_shards(), testing::ExitedWithCode(2),
              "jobs x shards");
}

TEST(CliDeathTest, RejectsNegativeJobs) {
  Cli cli = make_cli({"prog", "--jobs=-1"});
  EXPECT_EXIT(cli.get_jobs(), testing::ExitedWithCode(2),
              "--jobs must be in 0..65536");
}

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_EQ(same, 0);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = r.next_double();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
  }
}

TEST(Rng, NextBelowRespectsBound) {
  Rng r(9);
  for (std::uint64_t bound : {1ull, 2ull, 7ull, 1000ull}) {
    for (int i = 0; i < 1000; ++i) ASSERT_LT(r.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowCoversAllResidues) {
  Rng r(11);
  bool seen[5] = {};
  for (int i = 0; i < 1000; ++i) seen[r.next_below(5)] = true;
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(Rng, NormalHasApproxUnitMoments) {
  Rng r(13);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(r.next_normal());
  EXPECT_NEAR(stats.mean(), 0.0, 0.02);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.02);
}

TEST(Rng, LognormalMedianMatches) {
  Rng r(17);
  std::vector<double> samples;
  for (int i = 0; i < 20001; ++i) samples.push_back(r.next_lognormal(std::log(0.002), 0.8));
  EXPECT_NEAR(percentile(samples, 50.0), 0.002, 0.0002);
}

TEST(Rng, ExponentialMeanMatches) {
  Rng r(19);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(r.next_exponential(3.0));
  EXPECT_NEAR(stats.mean(), 3.0, 0.1);
}

TEST(Rng, MixSeedSeparatesStreams) {
  EXPECT_NE(mix_seed(1, 2), mix_seed(2, 1));
  EXPECT_NE(mix_seed(1, 2), mix_seed(1, 3));
}

TEST(Stats, BasicMoments) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.001);  // sample stddev
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(Stats, MergeEqualsCombined) {
  RunningStats a, b, all;
  Rng r(23);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.next_double();
    (i % 2 ? a : b).add(v);
    all.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-12);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
  EXPECT_NEAR(a.sum(), all.sum(), 1e-12);
}

TEST(Stats, MergeWithEmptyIsIdentity) {
  RunningStats full, empty;
  for (double v : {3.0, -1.0, 7.5}) full.add(v);

  RunningStats lhs = full;
  lhs.merge(empty);  // merging an empty accumulator changes nothing
  EXPECT_EQ(lhs.count(), 3u);
  EXPECT_DOUBLE_EQ(lhs.mean(), full.mean());
  EXPECT_DOUBLE_EQ(lhs.variance(), full.variance());
  EXPECT_DOUBLE_EQ(lhs.min(), -1.0);
  EXPECT_DOUBLE_EQ(lhs.max(), 7.5);

  RunningStats into_empty;
  into_empty.merge(full);  // merging into an empty one copies
  EXPECT_EQ(into_empty.count(), 3u);
  EXPECT_DOUBLE_EQ(into_empty.mean(), full.mean());
  EXPECT_DOUBLE_EQ(into_empty.variance(), full.variance());
  EXPECT_DOUBLE_EQ(into_empty.min(), -1.0);
  EXPECT_DOUBLE_EQ(into_empty.max(), 7.5);
}

TEST(Stats, MergeManyPartitionsMatchesSingleStream) {
  // Parallel-shape check: one accumulator per "worker", folded in order,
  // must equal the single-stream accumulation the serial benches did.
  Rng r(29);
  std::vector<RunningStats> parts(4);
  RunningStats all;
  for (int i = 0; i < 400; ++i) {
    const double v = r.next_lognormal(0.0, 1.0);
    parts[static_cast<std::size_t>(i) % parts.size()].add(v);
    all.add(v);
  }
  RunningStats folded;
  for (const RunningStats& p : parts) folded.merge(p);
  EXPECT_EQ(folded.count(), all.count());
  EXPECT_NEAR(folded.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(folded.variance(), all.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(folded.min(), all.min());
  EXPECT_DOUBLE_EQ(folded.max(), all.max());
}

TEST(Stats, PercentileInterpolates) {
  std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 25), 2.0);
  EXPECT_DOUBLE_EQ(percentile({}, 50), 0.0);
}

TEST(Table, AlignedAsciiAndCsv) {
  Table t({"name", "value"});
  t.add_row({"alpha", Table::num(1.5, 1)});
  t.add_row({"b", Table::num(static_cast<std::int64_t>(42))});
  std::ostringstream ascii, csv;
  t.print(ascii);
  t.print_csv(csv);
  EXPECT_NE(ascii.str().find("| alpha |"), std::string::npos);
  EXPECT_NE(ascii.str().find("1.5"), std::string::npos);
  EXPECT_EQ(csv.str(), "name,value\nalpha,1.5\nb,42\n");
}

TEST(Table, CsvQuoting) {
  Table t({"a"});
  t.add_row({"x,y\"z"});
  std::ostringstream csv;
  t.print_csv(csv);
  EXPECT_EQ(csv.str(), "a\n\"x,y\"\"z\"\n");
}

TEST(Units, FormatBytes) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(2048), "2.00 KiB");
  EXPECT_EQ(format_bytes(3 * kMiB), "3.00 MiB");
  EXPECT_EQ(format_bytes(5 * kGiB), "5.00 GiB");
}

TEST(Units, FormatDuration) {
  EXPECT_EQ(format_duration_ns(500), "500 ns");
  EXPECT_EQ(format_duration_ns(1500), "1.500 us");
  EXPECT_EQ(format_duration_ns(2'500'000), "2.500 ms");
  EXPECT_EQ(format_duration_ns(3'000'000'000LL), "3.000 s");
}

}  // namespace
}  // namespace gcr
