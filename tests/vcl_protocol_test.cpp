// VCL (non-blocking Chandy-Lamport) protocol: send-block windows, markers,
// channel recording, and the blocking cascade the paper observes at scale.
#include <gtest/gtest.h>

#include "apps/cg.hpp"
#include "apps/simple.hpp"
#include "exp/experiment.hpp"
#include "trace/timeline.hpp"

namespace gcr::exp {
namespace {

AppFactory small_cg(int outer = 10) {
  return [outer](int n) {
    apps::CgParams p;
    p.outer_iters = outer;
    p.inner_steps = 5;
    p.na = 15000;
    return apps::make_cg(n, p);
  };
}

ExperimentConfig vcl_config(int nranks) {
  ExperimentConfig cfg;
  cfg.app = small_cg();
  cfg.nranks = nranks;
  cfg.protocol = ProtocolKind::kVcl;
  cfg.remote_storage = true;  // VCL stores on checkpoint servers
  cfg.checkpoints = true;
  cfg.schedule.first_at_s = 0.05;
  cfg.jitter = false;
  return cfg;
}

TEST(Vcl, RoundProducesRecordPerRank) {
  ExperimentConfig cfg = vcl_config(8);
  ExperimentResult res = run_experiment(cfg);
  ASSERT_TRUE(res.finished);
  EXPECT_EQ(res.checkpoints_completed, 1);
  ASSERT_EQ(res.metrics.ckpts.size(), 8u);
  for (const auto& rec : res.metrics.ckpts) {
    EXPECT_GT(rec.phases.checkpoint, 0.0);  // upload happened
    EXPECT_GT(rec.end, rec.begin);
  }
}

TEST(Vcl, PeriodicRoundsAccumulate) {
  ExperimentConfig cfg = vcl_config(4);
  cfg.app = small_cg(60);
  cfg.schedule.first_at_s = 0.2;
  cfg.schedule.interval_s = 0.5;
  ExperimentResult res = run_experiment(cfg);
  ASSERT_TRUE(res.finished);
  EXPECT_GE(res.checkpoints_completed, 2);
}

TEST(Vcl, AppKeepsReceivingDuringCheckpoint) {
  // Non-blocking: the run must finish even with a checkpoint mid-stream;
  // only sends are gated.
  ExperimentConfig cfg = vcl_config(8);
  ExperimentResult res = run_experiment(cfg);
  EXPECT_TRUE(res.finished);
}

TEST(Vcl, UploadContentionGrowsWithScale) {
  // 4 shared servers: per-checkpoint time grows with rank count (paper
  // Figure 14's VCL curve).
  auto mean_time = [](int n) {
    ExperimentConfig cfg = vcl_config(n);
    cfg.app = small_cg(40);
    ExperimentResult res = run_experiment(cfg);
    EXPECT_TRUE(res.finished);
    return res.metrics.mean_ckpt_time_s();
  };
  const double t8 = mean_time(8);
  const double t32 = mean_time(32);
  EXPECT_GT(t32, 1.5 * t8);
}

TEST(Vcl, CheckpointShareOfExecutionGrowsWithScale) {
  // Figure 2's phenomenon quantified: with 4 fixed servers the upload wave
  // grows with scale, so checkpointing consumes a growing share of the
  // execution (the paper: >50% at 128 procs), and the windows are gappy.
  auto share_and_gap = [](int n) {
    ExperimentConfig cfg = vcl_config(n);
    cfg.app = small_cg(40);
    cfg.schedule.interval_s = 8.0;  // periodic, as in the paper (every 30 s)
    cfg.collect_trace = true;
    ExperimentResult res = run_experiment(cfg);
    EXPECT_TRUE(res.finished);
    double window_s = 0;
    for (const auto& rec : res.metrics.ckpts) {
      window_s += sim::to_seconds(rec.end - rec.begin);
    }
    const double share = window_s / (n * res.exec_time_s);
    const double gap =
        trace::gap_fraction(res.trace, res.metrics.ckpt_windows(), 20.0);
    return std::pair<double, double>(share, gap);
  };
  const auto [share8, gap8] = share_and_gap(8);
  const auto [share32, gap32] = share_and_gap(32);
  EXPECT_GT(share32, share8 * 1.3);
  EXPECT_GT(gap32, 0.5);  // large scale: windows are mostly gaps
  (void)gap8;
}

TEST(Vcl, ChannelRecordingCapturesInFlightTraffic) {
  ExperimentConfig cfg = vcl_config(16);
  cfg.app = small_cg(30);
  ExperimentResult res = run_experiment(cfg);
  ASSERT_TRUE(res.finished);
  // CG never stops sending, so some messages always land inside snapshots.
  // (Accessor exercised via the protocol's aggregate; see VclProtocol.)
  EXPECT_GE(res.metrics.ckpts.size(), 16u);
}

TEST(VclDeathTest, RestartRefused) {
  ExperimentConfig cfg = vcl_config(4);
  cfg.restart_after_finish = true;
  EXPECT_DEATH((void)run_experiment(cfg), "not supported");
}

}  // namespace
}  // namespace gcr::exp
