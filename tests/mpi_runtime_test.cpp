// MiniMPI runtime: p2p matching, FIFO invariants, volume accounting,
// snapshot/restore, and kill behavior during communication.
#include <gtest/gtest.h>

#include <vector>

#include "mpi/runtime.hpp"
#include "sim/cluster.hpp"

namespace gcr::mpi {
namespace {

using sim::operator""_s;

sim::Co<void> second_recv(Runtime* rt, Rank* rank) {
  (void)co_await rt->recv(*rank, 0, 1);
}

sim::ClusterParams cluster_params(int nranks) {
  sim::ClusterParams p;
  p.num_nodes = nranks + 1;
  p.jitter.enabled = false;
  return p;
}

struct Fixture {
  explicit Fixture(int nranks)
      : cluster(cluster_params(nranks)), rt(cluster, nranks) {}
  sim::Cluster cluster;
  Runtime rt;
};

TEST(Runtime, PingPongVolumesAndSeqs) {
  Fixture f(2);
  f.rt.start_app([](AppHandle h) -> sim::Co<void> {
    co_await h.safepoint(0);
    if (h.id() == 0) {
      co_await h.send(1, 5, 1000);
      Message m = co_await h.recv(1, 6);
      EXPECT_EQ(m.bytes, 2000);
      EXPECT_EQ(m.seq, 1u);
    } else {
      Message m = co_await h.recv(0, 5);
      EXPECT_EQ(m.bytes, 1000);
      co_await h.send(0, 6, 2000);
    }
    co_await h.safepoint(1);
  });
  f.cluster.engine().run();
  ASSERT_TRUE(f.rt.job_finished());
  EXPECT_EQ(f.rt.rank(0).sent_to(1).bytes, 1000);
  EXPECT_EQ(f.rt.rank(0).recvd_from(1).bytes, 2000);
  EXPECT_EQ(f.rt.rank(1).sent_to(0).count, 1u);
  EXPECT_EQ(f.rt.app_messages_sent(), 2);
  EXPECT_EQ(f.rt.app_bytes_sent(), 3000);
}

TEST(Runtime, TagsMatchedViaSeqOrder) {
  // Sender sends tag A then tag B; receiver consumes in the same order.
  Fixture f(2);
  std::vector<int> tags;
  f.rt.start_app([&tags](AppHandle h) -> sim::Co<void> {
    co_await h.safepoint(0);
    if (h.id() == 0) {
      co_await h.send(1, 1, 10);
      co_await h.send(1, 2, 20);
    } else {
      tags.push_back((co_await h.recv(0, 1)).tag);
      tags.push_back((co_await h.recv(0, 2)).tag);
    }
    co_await h.safepoint(1);
  });
  f.cluster.engine().run();
  EXPECT_EQ(tags, (std::vector<int>{1, 2}));
}

TEST(Runtime, AnyTagMatches) {
  Fixture f(2);
  int got_tag = -1;
  f.rt.start_app([&got_tag](AppHandle h) -> sim::Co<void> {
    co_await h.safepoint(0);
    if (h.id() == 0) {
      co_await h.send(1, 77, 10);
    } else {
      got_tag = (co_await h.recv(0, kAnyTag)).tag;
    }
    co_await h.safepoint(1);
  });
  f.cluster.engine().run();
  EXPECT_EQ(got_tag, 77);
}

TEST(Runtime, SendrecvPairwiseExchangeNoDeadlock) {
  Fixture f(2);
  f.rt.start_app([](AppHandle h) -> sim::Co<void> {
    co_await h.safepoint(0);
    const RankId peer = 1 - h.id();
    for (int i = 0; i < 20; ++i) {
      Message m = co_await h.sendrecv(peer, 3, 500000, peer, 3);
      EXPECT_EQ(m.bytes, 500000);
    }
    co_await h.safepoint(1);
  });
  f.cluster.engine().run();
  EXPECT_TRUE(f.rt.job_finished());
}

TEST(Runtime, EarlyArrivalsBufferUntilMatched) {
  Fixture f(2);
  f.rt.start_app([](AppHandle h) -> sim::Co<void> {
    co_await h.safepoint(0);
    if (h.id() == 0) {
      for (int i = 0; i < 5; ++i) co_await h.send(1, 9, 100);
    } else {
      co_await h.compute(0.5);  // messages pile up in pending
      EXPECT_GE(h.rank().pending_count(), 0u);
      for (int i = 0; i < 5; ++i) {
        Message m = co_await h.recv(0, 9);
        EXPECT_EQ(m.seq, static_cast<std::uint64_t>(i + 1));
      }
    }
    co_await h.safepoint(1);
  });
  f.cluster.engine().run();
  EXPECT_TRUE(f.rt.job_finished());
}

TEST(Runtime, ComputeAdvancesClock) {
  Fixture f(1);
  f.rt.start_app([](AppHandle h) -> sim::Co<void> {
    co_await h.safepoint(0);
    co_await h.compute(2.5);
    co_await h.safepoint(1);
  });
  f.cluster.engine().run();
  EXPECT_DOUBLE_EQ(sim::to_seconds(f.cluster.engine().now()), 2.5);
}

TEST(Runtime, SnapshotCapturesCountersAndPending) {
  Fixture f(2);
  RankSnapshot snap;
  f.rt.start_app([&](AppHandle h) -> sim::Co<void> {
    co_await h.safepoint(0);
    if (h.id() == 0) {
      co_await h.send(1, 1, 100);
      co_await h.send(1, 1, 200);
    } else {
      (void)co_await h.recv(0, 1);
      co_await h.compute(0.2);  // second message arrives, stays pending
      snap = f.rt.snapshot_rank(h.rank());
      (void)co_await h.recv(0, 1);
    }
    co_await h.safepoint(1);
  });
  f.cluster.engine().run();
  EXPECT_EQ(snap.recvd[0].bytes, 300);   // both delivered
  EXPECT_EQ(snap.consumed[0], 1u);       // one consumed
  ASSERT_EQ(snap.pending.size(), 1u);
  EXPECT_EQ(snap.pending.front().bytes, 200);
}

TEST(Runtime, KillDuringRecvUnblocksCleanly) {
  Fixture f(2);
  f.rt.start_app([](AppHandle h) -> sim::Co<void> {
    co_await h.safepoint(0);
    if (h.id() == 1) {
      (void)co_await h.recv(0, 1);  // never satisfied
      ADD_FAILURE() << "rank 1 should have been killed";
    }
    co_await h.safepoint(1);
  });
  f.cluster.engine().call_at(1_s, [&] { f.rt.kill_rank(f.rt.rank(1)); });
  f.cluster.engine().run();
  EXPECT_FALSE(f.rt.rank(1).alive());
  EXPECT_FALSE(f.rt.job_finished());
}

TEST(Runtime, StaleIncarnationTrafficDropped) {
  // A message sent to incarnation 0 must not reach incarnation 1.
  Fixture f(2);
  f.rt.start_app([](AppHandle h) -> sim::Co<void> {
    co_await h.safepoint(0);
    if (h.id() == 0) {
      co_await h.send(1, 1, 100);  // in flight when rank 1 dies
    }
    co_await h.safepoint(1);
  });
  // Kill rank 1 immediately so the message is in flight across the bump.
  f.cluster.engine().post([&] { f.rt.kill_rank(f.rt.rank(1)); });
  f.cluster.engine().call_at(1_s, [&] {
    f.rt.begin_restart(f.rt.rank(1));
    f.rt.respawn_rank(f.rt.rank(1));
    f.rt.rank(1).resume_gate().fire();
  });
  f.cluster.engine().run();
  EXPECT_EQ(f.rt.rank(1).recvd_from(0).bytes, 0);
  EXPECT_EQ(f.rt.rank(1).pending_count(), 0u);
}

TEST(Runtime, BeginRestartResetsState) {
  Fixture f(2);
  f.rt.start_app([](AppHandle h) -> sim::Co<void> {
    co_await h.safepoint(0);
    if (h.id() == 0) co_await h.send(1, 1, 100);
    if (h.id() == 1) (void)co_await h.recv(0, 1);
    co_await h.safepoint(1);
  });
  f.cluster.engine().run();
  Rank& r1 = f.rt.rank(1);
  f.rt.kill_rank(r1);
  f.cluster.engine().run();
  const std::uint32_t inc_before = r1.incarnation();
  f.rt.begin_restart(r1);
  EXPECT_EQ(r1.incarnation(), inc_before + 1);
  EXPECT_EQ(r1.recvd_from(0).bytes, 0);
  EXPECT_FALSE(r1.finished());
  EXPECT_EQ(r1.iteration(), 0u);
}

TEST(Runtime, RestoreRankReinstallsSnapshot) {
  Fixture f(2);
  RankSnapshot snap;
  snap.iteration = 7;
  snap.sent.resize(2);
  snap.recvd.resize(2);
  snap.consumed.resize(2);
  snap.sent[0].bytes = 123;
  snap.recvd[0].bytes = 45;
  snap.consumed[0] = 2;
  Message pend;
  pend.src = 0;
  pend.dst = 1;
  pend.bytes = 9;
  snap.pending.push_back(pend);

  Rank& r1 = f.rt.rank(1);
  f.rt.start_app([](AppHandle h) -> sim::Co<void> {
    co_await h.safepoint(0);
  });
  f.cluster.engine().run();
  f.rt.kill_rank(r1);
  f.cluster.engine().run();
  f.rt.begin_restart(r1);
  f.rt.restore_rank(r1, snap);
  EXPECT_EQ(r1.start_iteration(), 7u);
  EXPECT_EQ(r1.sent_to(0).bytes, 123);
  EXPECT_EQ(r1.recvd_from(0).bytes, 45);
  EXPECT_EQ(r1.pending_count(), 1u);
}

TEST(RuntimeDeathTest, TwoOutstandingRecvsForbidden) {
  // The runtime supports exactly one blocking recv per rank; protocol code
  // must never recv concurrently with the app. Simulated via direct call.
  Fixture f(2);
  f.rt.start_app([&](AppHandle h) -> sim::Co<void> {
    co_await h.safepoint(0);
    if (h.id() == 1) {
      // Spawn a second coroutine on the same rank doing a recv.
      f.cluster.engine().spawn("second", second_recv(&f.rt, &h.rank()));
      (void)co_await h.recv(0, 2);
    }
    co_await h.safepoint(1);
  });
  EXPECT_DEATH(f.cluster.engine().run(), "one outstanding");
}

}  // namespace
}  // namespace gcr::mpi
