// Collectives built on p2p: completion, message accounting, and semantics
// across rank counts (parameterized).
#include <gtest/gtest.h>

#include <vector>

#include "mpi/runtime.hpp"
#include "sim/cluster.hpp"

namespace gcr::mpi {
namespace {

sim::ClusterParams cluster_params(int nranks) {
  sim::ClusterParams p;
  p.num_nodes = nranks + 1;
  p.jitter.enabled = false;
  return p;
}

class CollectivesTest : public ::testing::TestWithParam<int> {};

TEST_P(CollectivesTest, BarrierCompletesForAll) {
  const int n = GetParam();
  sim::Cluster cluster(cluster_params(n));
  Runtime rt(cluster, n);
  int done = 0;
  rt.start_app([&done](AppHandle h) -> sim::Co<void> {
    co_await h.safepoint(0);
    co_await h.barrier();
    ++done;
    co_await h.safepoint(1);
  });
  cluster.engine().run();
  EXPECT_EQ(done, n);
  EXPECT_TRUE(rt.job_finished());
}

TEST_P(CollectivesTest, BcastReachesEveryoneOnce) {
  const int n = GetParam();
  sim::Cluster cluster(cluster_params(n));
  Runtime rt(cluster, n);
  rt.start_app([](AppHandle h) -> sim::Co<void> {
    co_await h.safepoint(0);
    // Roots 0 and a non-zero root to exercise the rotation.
    co_await h.bcast(0, 1 << 16);
    co_await h.bcast(h.nranks() - 1, 1 << 10);
    co_await h.safepoint(1);
  });
  cluster.engine().run();
  ASSERT_TRUE(rt.job_finished());
  // A binomial bcast sends exactly n-1 messages per operation.
  EXPECT_EQ(rt.app_messages_sent(), 2 * (n - 1));
}

TEST_P(CollectivesTest, ReduceSendsExactlyNMinus1) {
  const int n = GetParam();
  sim::Cluster cluster(cluster_params(n));
  Runtime rt(cluster, n);
  rt.start_app([](AppHandle h) -> sim::Co<void> {
    co_await h.safepoint(0);
    co_await h.reduce(0, 4096);
    co_await h.safepoint(1);
  });
  cluster.engine().run();
  ASSERT_TRUE(rt.job_finished());
  EXPECT_EQ(rt.app_messages_sent(), n - 1);
}

TEST_P(CollectivesTest, AllreduceAndGatherComplete) {
  const int n = GetParam();
  sim::Cluster cluster(cluster_params(n));
  Runtime rt(cluster, n);
  rt.start_app([](AppHandle h) -> sim::Co<void> {
    co_await h.safepoint(0);
    co_await h.allreduce(8);
    co_await h.gather(0, 1024);
    co_await h.alltoall(512);
    co_await h.safepoint(1);
  });
  cluster.engine().run();
  EXPECT_TRUE(rt.job_finished());
}

INSTANTIATE_TEST_SUITE_P(RankCounts, CollectivesTest,
                         ::testing::Values(1, 2, 3, 4, 5, 8, 13, 16, 32));

TEST(Collectives, GatherPayloadGrowsTowardsRoot) {
  // Total gathered bytes at the root equal n * bytes_per_rank; the binomial
  // tree forwards growing subtree payloads, so total traffic exceeds that.
  const int n = 8;
  sim::Cluster cluster(cluster_params(n));
  Runtime rt(cluster, n);
  rt.start_app([](AppHandle h) -> sim::Co<void> {
    co_await h.safepoint(0);
    co_await h.gather(0, 1000);
    co_await h.safepoint(1);
  });
  cluster.engine().run();
  ASSERT_TRUE(rt.job_finished());
  // Root receives all 7000 bytes from subtrees; intermediate hops add more.
  EXPECT_EQ(rt.rank(0).recvd_from(4).bytes +
                rt.rank(0).recvd_from(2).bytes +
                rt.rank(0).recvd_from(1).bytes,
            7000);
}

TEST(Collectives, ConsecutiveBarriersDoNotCrosstalk) {
  const int n = 6;
  sim::Cluster cluster(cluster_params(n));
  Runtime rt(cluster, n);
  rt.start_app([](AppHandle h) -> sim::Co<void> {
    co_await h.safepoint(0);
    for (int i = 0; i < 10; ++i) co_await h.barrier();
    co_await h.safepoint(1);
  });
  cluster.engine().run();
  EXPECT_TRUE(rt.job_finished());  // FIFO seq matching keeps rounds straight
}

}  // namespace
}  // namespace gcr::mpi
