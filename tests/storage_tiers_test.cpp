// Tier-hierarchy subsystem tests (ckpt/tiers.hpp, DESIGN.md §13): commit
// at burst-buffer durability, background drain to the PFS, capacity-bound
// eviction, and restore-tier selection under faults vs voluntary restarts.
#include <gtest/gtest.h>

#include "apps/simple.hpp"
#include "exp/experiment.hpp"
#include "group/strategies.hpp"

namespace gcr::exp {
namespace {

constexpr std::int64_t kMB = 1'000'000;

/// Ring with 48 MB images (same shape as recovery_concurrent_test): the
/// one-shot checkpoint at 0.1 s commits by ~5 s, leaving room to land a
/// failure while background drains are still in flight.
AppFactory big_image_ring_app() {
  return [](int n) {
    apps::RingParams p;
    p.iterations = 80;
    p.compute_s = 0.012;
    p.mem_bytes = 48 * 1024 * 1024;
    return apps::make_ring(n, p);
  };
}

ExperimentConfig tier_config(ckpt::StorageMode mode) {
  ExperimentConfig cfg;
  cfg.app = big_image_ring_app();
  cfg.nranks = 8;
  cfg.groups = group::make_blocks(8, 4);  // {0..3}, {4..7}
  cfg.checkpoints = true;
  cfg.schedule.first_at_s = 0.1;
  cfg.recovery.detect_s = 0.2;
  cfg.recovery.relaunch_s = 0.2;
  cfg.storage.mode = mode;
  return cfg;
}

TEST(StorageTiers, DrainModeCommitsAtBurstBufferAndDrainsToPfs) {
  ExperimentConfig cfg = tier_config(ckpt::StorageMode::kDrain);
  // Fast PFS so every write-behind lands before the (short) job ends —
  // the engine stops at job completion, abandoning still-queued drains.
  cfg.storage.pfs_Bps = 2e9;
  ExperimentResult res = run_experiment(cfg);
  ASSERT_TRUE(res.finished);
  // Every rank staged once; every committed image drained in background.
  EXPECT_EQ(res.tier_stats.images_staged, 8);
  EXPECT_EQ(res.tier_stats.drains_started, 8);
  EXPECT_EQ(res.tier_stats.drains_completed, 8);
  EXPECT_EQ(res.tier_stats.evictions, 0);
  // Committed images stay resident: 8 × 48 MiB accounted on the buffer.
  EXPECT_EQ(res.tier_stats.bb_bytes_used, 8 * 48 * 1024 * 1024);
  EXPECT_LE(res.tier_stats.bb_bytes_peak,
            static_cast<std::int64_t>(cfg.storage.burst_buffer_capacity_bytes));
}

TEST(StorageTiers, BurstBufferModeNeverDrains) {
  ExperimentConfig cfg = tier_config(ckpt::StorageMode::kBurstBuffer);
  ExperimentResult res = run_experiment(cfg);
  ASSERT_TRUE(res.finished);
  EXPECT_EQ(res.tier_stats.images_staged, 8);
  EXPECT_EQ(res.tier_stats.drains_started, 0);
  EXPECT_EQ(res.tier_stats.reads_pfs, 0);
}

// The drain-interrupted-by-fault case: the PFS is so slow that the fault
// lands while every image's write-behind is still in flight. The committed
// cut must restore correctly from burst-buffer durability alone.
TEST(StorageTiers, FaultDuringDrainRestoresFromBurstBuffer) {
  ExperimentConfig cfg = tier_config(ckpt::StorageMode::kDrain);
  cfg.storage.pfs_Bps = 1e6;  // 48 s per image: drains outlive the job
  cfg.failures = {{0, 5.5}};
  ExperimentResult res = run_experiment(cfg);
  ASSERT_TRUE(res.finished);
  EXPECT_EQ(res.failures_injected, 1);
  EXPECT_EQ(res.recoveries_completed, 1);
  EXPECT_EQ(res.tier_stats.drains_started, 8);
  EXPECT_EQ(res.tier_stats.drains_completed, 0);
  // The killed nodes lost their staging buffers; the restore read the
  // whole group's images from the burst buffer, not the (unfinished) PFS.
  EXPECT_EQ(res.tier_stats.reads_local, 0);
  EXPECT_EQ(res.tier_stats.reads_bb, 4);
  EXPECT_EQ(res.tier_stats.reads_pfs, 0);
  EXPECT_EQ(res.metrics.restarts.size(), 4u);
  // Deterministic: the same config replays to the same simulated end time.
  ExperimentResult res2 = run_experiment(cfg);
  EXPECT_EQ(res.exec_time_s, res2.exec_time_s);
}

// A voluntary whole-application restart relaunches on healthy nodes: the
// staging buffers are warm, so images reload at node-buffer speed.
TEST(StorageTiers, VoluntaryRestartReadsWarmNodeBuffer) {
  ExperimentConfig cfg = tier_config(ckpt::StorageMode::kDrain);
  cfg.restart_after_finish = true;
  ExperimentResult res = run_experiment(cfg);
  ASSERT_TRUE(res.finished);
  EXPECT_EQ(res.tier_stats.reads_local, 8);
  EXPECT_EQ(res.tier_stats.reads_bb, 0);
  EXPECT_EQ(res.tier_stats.reads_pfs, 0);
}

// kBurstBuffer mode never drains, so an exhausted pool can never become
// evictable and waiting could deadlock the job into a watchdog trip —
// undersizing the capacity is a fail-fast configuration error.
TEST(StorageTiersDeathTest, BurstBufferModeAssertsOnExhaustedCapacity) {
  ExperimentConfig cfg = tier_config(ckpt::StorageMode::kBurstBuffer);
  cfg.storage.burst_buffer_capacity_bytes = 100.0 * kMB;  // < 8 × 48 MiB
  EXPECT_DEATH(run_experiment(cfg), "burst-buffer capacity exhausted");
}

// Tier-eviction bounds: a burst buffer smaller than the per-epoch working
// set forces drained images out; occupancy must never exceed capacity and
// the job must still make progress (stalled writers resume on eviction).
TEST(StorageTiers, EvictionKeepsOccupancyWithinCapacity) {
  ExperimentConfig cfg = tier_config(ckpt::StorageMode::kDrain);
  cfg.groups = group::make_gp1(8);        // uncoordinated: fast rounds
  cfg.schedule.interval_s = 1.0;          // several epochs per run
  cfg.storage.pfs_Bps = 400e6;            // drains keep up with ingest
  cfg.storage.burst_buffer_capacity_bytes = 120.0 * kMB;  // < 2 images + 1
  ExperimentResult res = run_experiment(cfg);
  ASSERT_TRUE(res.finished);
  EXPECT_GT(res.tier_stats.images_staged, 8);  // more than one epoch ran
  EXPECT_GT(res.tier_stats.evictions, 0);
  EXPECT_LE(res.tier_stats.bb_bytes_peak, 120 * kMB);
  EXPECT_GE(res.tier_stats.bb_bytes_used, 0);
}

// After an image was evicted from the burst buffer (drained to the PFS),
// a fault-driven restore falls back to the slowest tier and still works.
TEST(StorageTiers, RestoreFallsBackToPfsAfterEviction) {
  ExperimentConfig cfg = tier_config(ckpt::StorageMode::kDrain);
  cfg.groups = group::make_gp1(8);
  cfg.schedule.interval_s = 1.0;
  cfg.storage.pfs_Bps = 400e6;
  cfg.storage.burst_buffer_capacity_bytes = 120.0 * kMB;
  cfg.failures = {{0, 5.5}};
  ExperimentResult res = run_experiment(cfg);
  ASSERT_TRUE(res.finished);
  EXPECT_EQ(res.recoveries_completed, 1);
  // The single-rank group restored from wherever its latest committed
  // image survived — a shared tier, never the dead node's buffer.
  EXPECT_EQ(res.tier_stats.reads_local, 0);
  EXPECT_EQ(res.tier_stats.reads_bb + res.tier_stats.reads_pfs, 1);
}

}  // namespace
}  // namespace gcr::exp
