// Fair-share contention model of sim::StorageDevice (DESIGN.md §13).
//
// concurrency K admits K transfers that share bandwidth equally, with
// progress resettled on every arrival/departure; requests beyond K queue
// FIFO; K=1 is the legacy strict-FIFO device (its exact-formula tests live
// in sim_network_test.cpp and still pass unchanged). Completion times here
// are checked against hand-computed piecewise-linear progress.
#include <gtest/gtest.h>

#include "sim/awaitables.hpp"
#include "sim/storage.hpp"

namespace gcr::sim {
namespace {

constexpr std::int64_t kMB = 1'000'000;

Co<void> write_at(Engine& eng, StorageDevice& dev, Time start,
                  std::int64_t bytes, Time* done) {
  if (start > 0) co_await delay(eng, start);
  co_await dev.write(bytes);
  *done = eng.now();
}

/// Completion timestamps carry at most a few ns of integer-rounding from
/// the resettle timers; the analytic expectations are exact seconds.
void expect_time_near(Time actual, Time expected) {
  EXPECT_GE(actual, expected - 4);
  EXPECT_LE(actual, expected + 4);
}

TEST(StorageFairShare, EqualTransfersSplitBandwidthAndFinishTogether) {
  Engine eng;
  StorageParams p{/*bandwidth_Bps=*/100e6, /*latency_s=*/0, /*concurrency=*/2};
  StorageDevice dev(eng, "d", p);
  Time d1 = -1, d2 = -1;
  eng.spawn("w1", write_at(eng, dev, 0, 100 * kMB, &d1));
  eng.spawn("w2", write_at(eng, dev, 0, 100 * kMB, &d2));
  eng.run();
  // Each proceeds at 50 MB/s; both complete at 2 s (one alone: 1 s).
  expect_time_near(d1, 2_s);
  expect_time_near(d2, 2_s);
  EXPECT_EQ(dev.bytes_written(), 200 * kMB);
  EXPECT_EQ(dev.peak_active_transfers(), 2);
}

TEST(StorageFairShare, ConvergenceAtFullWidth) {
  Engine eng;
  StorageParams p{/*bandwidth_Bps=*/100e6, /*latency_s=*/0, /*concurrency=*/8};
  StorageDevice dev(eng, "d", p);
  Time done[8];
  for (int i = 0; i < 8; ++i) {
    done[i] = -1;
    eng.spawn("w", write_at(eng, dev, 0, 50 * kMB, &done[i]));
  }
  eng.run();
  // 8 × 50 MB fair-shared over 100 MB/s: every transfer ends at 4 s —
  // aggregate throughput equals device bandwidth, no one starves.
  for (int i = 0; i < 8; ++i) expect_time_near(done[i], 4_s);
}

TEST(StorageFairShare, ArrivalResettlesProgress) {
  Engine eng;
  StorageParams p{/*bandwidth_Bps=*/100e6, /*latency_s=*/0, /*concurrency=*/2};
  StorageDevice dev(eng, "d", p);
  Time dA = -1, dB = -1;
  eng.spawn("A", write_at(eng, dev, 0, 200 * kMB, &dA));
  eng.spawn("B", write_at(eng, dev, 1_s, 100 * kMB, &dB));
  eng.run();
  // A alone 0..1 s moves 100 MB; from 1 s both run at 50 MB/s and each has
  // 100 MB left, so both complete at 3 s.
  expect_time_near(dA, 3_s);
  expect_time_near(dB, 3_s);
}

TEST(StorageFairShare, QueueBeyondWidthStaysFifo) {
  Engine eng;
  StorageParams p{/*bandwidth_Bps=*/100e6, /*latency_s=*/0, /*concurrency=*/2};
  StorageDevice dev(eng, "d", p);
  Time d1 = -1, d2 = -1, d3 = -1;
  eng.spawn("w1", write_at(eng, dev, 0, 100 * kMB, &d1));
  eng.spawn("w2", write_at(eng, dev, 0, 100 * kMB, &d2));
  eng.spawn("w3", write_at(eng, dev, 0, 100 * kMB, &d3));
  eng.run();
  // Two admitted (done at 2 s); the third waits for a slot, then runs the
  // full bandwidth alone: 2 s + 1 s.
  expect_time_near(d1, 2_s);
  expect_time_near(d2, 2_s);
  expect_time_near(d3, 3_s);
  EXPECT_EQ(dev.peak_active_transfers(), 2);
}

TEST(StorageFairShare, LatencyIsSerialPerRequest) {
  Engine eng;
  StorageParams p{/*bandwidth_Bps=*/100e6, /*latency_s=*/0.5,
                  /*concurrency=*/2};
  StorageDevice dev(eng, "d", p);
  Time d1 = -1;
  eng.spawn("w1", write_at(eng, dev, 0, 100 * kMB, &d1));
  eng.run();
  // Setup happens after admission, before joining the byte stream.
  expect_time_near(d1, 1_s + 500_ms);
}

Co<void> run_then_die(Engine& eng, StorageDevice& dev, std::int64_t bytes) {
  co_await dev.write(bytes);
}

TEST(StorageFairShare, KilledTransferFreesItsShare) {
  Engine eng;
  StorageParams p{/*bandwidth_Bps=*/100e6, /*latency_s=*/0, /*concurrency=*/2};
  StorageDevice dev(eng, "d", p);
  Time dA = -1;
  eng.spawn("A", write_at(eng, dev, 0, 400 * kMB, &dA));
  ProcPtr victim = eng.spawn("B", run_then_die(eng, dev, 200 * kMB));
  eng.call_at(1_s, [&eng, victim] { eng.kill(*victim); });
  eng.run();
  // Shared until 1 s (A moved 50 MB); B dies, A gets the full pipe for its
  // remaining 350 MB: done at 1 s + 3.5 s. B's bytes never count.
  expect_time_near(dA, 4_s + 500_ms);
  EXPECT_EQ(dev.bytes_written(), 400 * kMB);
  EXPECT_EQ(dev.active_transfers(), 0);
}

TEST(StorageFairShare, KilledWhileQueuedReleasesNothing) {
  Engine eng;
  StorageParams p{/*bandwidth_Bps=*/100e6, /*latency_s=*/0, /*concurrency=*/1};
  StorageDevice dev(eng, "d", p);
  Time d1 = -1, d3 = -1;
  eng.spawn("w1", write_at(eng, dev, 0, 100 * kMB, &d1));
  ProcPtr queued = eng.spawn("w2", run_then_die(eng, dev, 100 * kMB));
  eng.spawn("w3", write_at(eng, dev, 0, 100 * kMB, &d3));
  eng.call_at(500_ms, [&eng, queued] { eng.kill(*queued); });
  eng.run();
  // The killed waiter's admission slot passes to the next in line.
  expect_time_near(d1, 1_s);
  expect_time_near(d3, 2_s);
}

}  // namespace
}  // namespace gcr::sim
