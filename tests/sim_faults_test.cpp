// Unit tests for the pluggable fault models (sim/faults.hpp): stream
// determinism, nondecreasing event order, distribution sanity, burst
// adjacency, and the trace parser.
#include <gtest/gtest.h>

#include <map>
#include <sstream>

#include "sim/faults.hpp"
#include "util/rng.hpp"

namespace gcr::sim {
namespace {

std::function<Rng(std::uint64_t)> rng_factory(std::uint64_t seed) {
  return [seed](std::uint64_t stream) { return Rng(mix_seed(seed, stream)); };
}

std::vector<FaultEvent> draw(FaultModel& model, int count) {
  std::vector<FaultEvent> events;
  for (int i = 0; i < count; ++i) {
    auto ev = model.next();
    if (!ev.has_value()) break;
    events.push_back(*ev);
  }
  return events;
}

TEST(FaultModels, EventsAreDeterministicAndNondecreasing) {
  for (FaultModelKind kind :
       {FaultModelKind::kExponential, FaultModelKind::kWeibull,
        FaultModelKind::kBurst}) {
    FaultModelParams params;
    params.kind = kind;
    params.mtbf_s = 50.0;
    params.burst_mtbf_s = 50.0;
    auto a = make_fault_model(params);
    auto b = make_fault_model(params);
    a->bind(8, rng_factory(7));
    b->bind(8, rng_factory(7));
    const auto ea = draw(*a, 200);
    const auto eb = draw(*b, 200);
    ASSERT_EQ(ea.size(), 200u);
    for (std::size_t i = 0; i < ea.size(); ++i) {
      EXPECT_EQ(ea[i].at_s, eb[i].at_s) << fault_model_name(kind);
      EXPECT_EQ(ea[i].node, eb[i].node) << fault_model_name(kind);
      if (i > 0) EXPECT_GE(ea[i].at_s, ea[i - 1].at_s);
    }
    // A different seed gives a different history.
    auto c = make_fault_model(params);
    c->bind(8, rng_factory(8));
    EXPECT_NE(draw(*c, 200).front().at_s, ea.front().at_s);
  }
}

TEST(FaultModels, WeibullShapeOneMatchesExponentialBitForBit) {
  FaultModelParams exp_p;
  exp_p.kind = FaultModelKind::kExponential;
  exp_p.mtbf_s = 120.0;
  FaultModelParams wei_p;
  wei_p.kind = FaultModelKind::kWeibull;
  wei_p.mtbf_s = 120.0;
  wei_p.weibull_shape = 1.0;
  auto e = make_fault_model(exp_p);
  auto w = make_fault_model(wei_p);
  e->bind(4, rng_factory(42));
  w->bind(4, rng_factory(42));
  const auto ee = draw(*e, 100);
  const auto ww = draw(*w, 100);
  for (std::size_t i = 0; i < ee.size(); ++i) {
    EXPECT_EQ(ee[i].at_s, ww[i].at_s);
    EXPECT_EQ(ee[i].node, ww[i].node);
  }
}

TEST(FaultModels, ExponentialMeanIsRoughlyMtbf) {
  FaultModelParams params;
  params.kind = FaultModelKind::kExponential;
  params.mtbf_s = 100.0;
  auto m = make_fault_model(params);
  const int nodes = 4;
  m->bind(nodes, rng_factory(3));
  // Per-node renewal with mean 100 => cluster rate nodes/100; over N events
  // the last timestamp is ~ N * 100 / nodes.
  const auto events = draw(*m, 4000);
  const double horizon = events.back().at_s;
  EXPECT_NEAR(horizon, 4000.0 * 100.0 / nodes, 0.1 * 4000.0 * 100.0 / nodes);
  // All nodes participate.
  std::map<int, int> per_node;
  for (const auto& ev : events) ++per_node[ev.node];
  EXPECT_EQ(per_node.size(), static_cast<std::size_t>(nodes));
}

TEST(FaultModels, BurstKillsAdjacentNodesWithinSpread) {
  FaultModelParams params;
  params.kind = FaultModelKind::kBurst;
  params.burst_mtbf_s = 100.0;
  params.burst_max_nodes = 4;
  params.burst_spread_s = 0.5;
  auto m = make_fault_model(params);
  m->bind(16, rng_factory(11));
  const auto events = draw(*m, 400);
  // Group events into bursts by time gaps larger than the spread window.
  bool saw_multi_node_burst = false;
  std::vector<FaultEvent> burst;
  auto check_burst = [&] {
    if (burst.size() < 2) return;
    saw_multi_node_burst = true;
    int lo = burst.front().node, hi = lo;
    for (const auto& ev : burst) {
      lo = std::min(lo, ev.node);
      hi = std::max(hi, ev.node);
      EXPECT_LE(ev.at_s - burst.front().at_s, params.burst_spread_s + 1e-12);
    }
    EXPECT_LT(hi - lo, params.burst_max_nodes);  // adjacent run
  };
  for (const auto& ev : events) {
    if (!burst.empty() &&
        ev.at_s - burst.front().at_s > params.burst_spread_s) {
      check_burst();
      burst.clear();
    }
    burst.push_back(ev);
  }
  EXPECT_TRUE(saw_multi_node_burst);
  for (const auto& ev : events) {
    EXPECT_GE(ev.node, 0);
    EXPECT_LT(ev.node, 16);
  }
}

TEST(FaultModels, TraceParsesSortsAndClampsToMachine) {
  std::istringstream in(
      "# failure log\n"
      "12.5 3\n"
      "\n"
      "2.0 1   # early bird\n"
      "2.0 9\n"
      "7.25 0\n");
  auto schedule = parse_fault_trace(in);
  ASSERT_EQ(schedule.size(), 4u);

  FaultModelParams params;
  params.kind = FaultModelKind::kTrace;
  params.schedule = schedule;
  auto m = make_fault_model(params);
  m->bind(4, rng_factory(1));  // node 9 is outside the machine: dropped
  const auto events = draw(*m, 10);
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].at_s, 2.0);
  EXPECT_EQ(events[0].node, 1);
  EXPECT_EQ(events[1].at_s, 7.25);
  EXPECT_EQ(events[1].node, 0);
  EXPECT_EQ(events[2].at_s, 12.5);
  EXPECT_EQ(events[2].node, 3);
  EXPECT_FALSE(m->next().has_value());  // exhausts
}

TEST(FaultModels, NoneKindMakesNoModel) {
  EXPECT_EQ(make_fault_model(FaultModelParams{}), nullptr);
}

TEST(FaultModelsDeathTest, TraceAbortsOnMalformedLine) {
  // A typo'd line must abort, not be silently dropped — a dropped event
  // would make the run use a different fault history than the file says.
  EXPECT_DEATH(
      {
        std::istringstream in("O12.5 3\n");
        parse_fault_trace(in);
      },
      "fault trace line 1");
  EXPECT_DEATH(
      {
        std::istringstream in("7.5 2\n3.0 1 extra\n");
        parse_fault_trace(in);
      },
      "fault trace line 2");
}

}  // namespace
}  // namespace gcr::sim
