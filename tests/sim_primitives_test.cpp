// Awaitable primitives: Trigger, Semaphore, CountBarrier, Channel edge cases.
#include <gtest/gtest.h>

#include <vector>

#include "sim/awaitables.hpp"
#include "sim/channel.hpp"
#include "sim/engine.hpp"

namespace gcr::sim {
namespace {

Co<void> delay_then_mark(Engine& eng, Time dt, std::vector<int>* log,
                         int mark) {
  co_await delay(eng, dt);
  log->push_back(mark);
}

TEST(Delay, ZeroStillYieldsThroughQueue) {
  // dt == 0 is a fairness point: the resumption goes through the event
  // queue, so same-time work scheduled earlier runs first.
  Engine eng;
  std::vector<int> log;
  eng.spawn("z", delay_then_mark(eng, 0, &log, 1));
  eng.call_at(0, [&] { log.push_back(0); });
  eng.run();
  // The spawn's start event runs, suspends on delay(0); the callback
  // (scheduled before the zero-delay resume) runs next; the mark last.
  EXPECT_EQ(log, (std::vector<int>{0, 1}));
  EXPECT_EQ(eng.now(), 0);
}

TEST(Delay, OneTickBoundaryOrdersAfterZero) {
  Engine eng;
  std::vector<int> log;
  eng.spawn("one", delay_then_mark(eng, 1, &log, 1));
  eng.spawn("zero", delay_then_mark(eng, 0, &log, 0));
  eng.run();
  EXPECT_EQ(log, (std::vector<int>{0, 1}));  // 0-tick before 1-tick
  EXPECT_EQ(eng.now(), 1);
}

TEST(DelayDeathTest, NegativeDurationAborts) {
  Engine eng;
  EXPECT_DEATH({ Delay bad(eng, -1); }, "negative Delay duration");
}

Co<void> wait_trigger(Trigger& t, int* out) {
  co_await t.wait();
  *out += 1;
}

TEST(Trigger, BroadcastsToAllWaiters) {
  Engine eng;
  Trigger t(eng);
  int woken = 0;
  for (int i = 0; i < 5; ++i) eng.spawn("w", wait_trigger(t, &woken));
  eng.call_at(1_ms, [&] { t.fire(); });
  eng.run();
  EXPECT_EQ(woken, 5);
}

TEST(Trigger, AlreadyFiredReturnsImmediately) {
  Engine eng;
  Trigger t(eng);
  t.fire();
  int woken = 0;
  eng.spawn("w", wait_trigger(t, &woken));
  eng.run();
  EXPECT_EQ(woken, 1);
}

TEST(Trigger, ResetReArms) {
  Engine eng;
  Trigger t(eng);
  t.fire();
  t.reset();
  int woken = 0;
  eng.spawn("w", wait_trigger(t, &woken));
  eng.run();
  EXPECT_EQ(woken, 0);  // still suspended
  t.fire();
  eng.run();
  EXPECT_EQ(woken, 1);
}

Co<void> hold_resource(Engine& eng, Semaphore& sem, Time hold,
                       std::vector<int>* order, int id) {
  co_await sem.acquire();
  ScopedPermit permit(sem);
  order->push_back(id);
  co_await delay(eng, hold);
}

TEST(Semaphore, SerializesFifo) {
  Engine eng;
  Semaphore sem(eng, 1);
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    eng.spawn("h", hold_resource(eng, sem, 10_ms, &order, i));
  }
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(eng.now(), 40_ms);  // fully serialized
  EXPECT_EQ(sem.available(), 1);
}

TEST(Semaphore, MultiplePermitsOverlap) {
  Engine eng;
  Semaphore sem(eng, 2);
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    eng.spawn("h", hold_resource(eng, sem, 10_ms, &order, i));
  }
  eng.run();
  EXPECT_EQ(eng.now(), 20_ms);  // two at a time
  EXPECT_EQ(sem.available(), 2);
}

TEST(Semaphore, KilledHolderReleasesPermit) {
  Engine eng;
  Semaphore sem(eng, 1);
  std::vector<int> order;
  auto victim = eng.spawn("v", hold_resource(eng, sem, 1000_s, &order, 0));
  eng.spawn("h", hold_resource(eng, sem, 10_ms, &order, 1));
  eng.call_at(5_ms, [&] { eng.kill(*victim); });
  eng.run(1_s);
  EXPECT_EQ(order, (std::vector<int>{0, 1}));  // 1 ran after the kill
  EXPECT_EQ(sem.available(), 1);
}

TEST(Semaphore, KilledQueuedWaiterSkipped) {
  Engine eng;
  Semaphore sem(eng, 1);
  std::vector<int> order;
  eng.spawn("a", hold_resource(eng, sem, 10_ms, &order, 0));
  auto queued = eng.spawn("q", hold_resource(eng, sem, 10_ms, &order, 1));
  eng.spawn("b", hold_resource(eng, sem, 10_ms, &order, 2));
  eng.call_at(1_ms, [&] { eng.kill(*queued); });
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{0, 2}));
  EXPECT_EQ(sem.available(), 1);
}

Co<void> barrier_party(Engine& eng, CountBarrier& bar, Time arrive_at,
                       std::vector<Time>* done) {
  co_await delay(eng, arrive_at);
  co_await bar.arrive_and_wait();
  done->push_back(eng.now());
}

TEST(CountBarrier, ReleasesTogetherAtLastArrival) {
  Engine eng;
  CountBarrier bar(eng, 3);
  std::vector<Time> done;
  eng.spawn("a", barrier_party(eng, bar, 1_ms, &done));
  eng.spawn("b", barrier_party(eng, bar, 5_ms, &done));
  eng.spawn("c", barrier_party(eng, bar, 9_ms, &done));
  eng.run();
  ASSERT_EQ(done.size(), 3u);
  for (Time t : done) EXPECT_EQ(t, 9_ms);
}

TEST(CountBarrier, ReusableAcrossGenerations) {
  Engine eng;
  CountBarrier bar(eng, 2);
  std::vector<Time> done;
  auto party = [](Engine& e, CountBarrier& b, std::vector<Time>* d,
                  Time stagger) -> Co<void> {
    for (int round = 0; round < 3; ++round) {
      co_await delay(e, stagger);
      co_await b.arrive_and_wait();
      d->push_back(e.now());
    }
  };
  eng.spawn("a", party(eng, bar, &done, 1_ms));
  eng.spawn("b", party(eng, bar, &done, 2_ms));
  eng.run();
  EXPECT_EQ(done.size(), 6u);  // three rounds, both released each time
}

Co<void> pop_n(Channel<int>& ch, int n, std::vector<int>* out) {
  for (int i = 0; i < n; ++i) out->push_back(co_await ch.pop());
}

TEST(Channel, BufferedValuesFifo) {
  Engine eng;
  Channel<int> ch(eng);
  for (int i = 0; i < 5; ++i) ch.push(i);
  std::vector<int> out;
  eng.spawn("c", pop_n(ch, 5, &out));
  eng.run();
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Channel, WaitersServedFifo) {
  Engine eng;
  Channel<int> ch(eng);
  std::vector<int> a, b;
  eng.spawn("a", pop_n(ch, 1, &a));
  eng.spawn("b", pop_n(ch, 1, &b));
  eng.call_at(1_ms, [&] {
    ch.push(10);
    ch.push(20);
  });
  eng.run();
  EXPECT_EQ(a, (std::vector<int>{10}));
  EXPECT_EQ(b, (std::vector<int>{20}));
}

TEST(Channel, ClearDropsBuffered) {
  Engine eng;
  Channel<int> ch(eng);
  ch.push(1);
  ch.push(2);
  ch.clear();
  EXPECT_TRUE(ch.empty());
}

}  // namespace
}  // namespace gcr::sim
