// Tracer, trace IO round-trips, pair aggregation, and timeline rendering.
#include <gtest/gtest.h>

#include <sstream>

#include "mpi/runtime.hpp"
#include "sim/cluster.hpp"
#include "trace/analysis.hpp"
#include "trace/io.hpp"
#include "trace/timeline.hpp"
#include "trace/tracer.hpp"

namespace gcr::trace {
namespace {

TraceRecord send_rec(sim::Time t, mpi::RankId src, mpi::RankId dst,
                     std::int64_t bytes) {
  return TraceRecord{t, EventKind::kSend, src, dst, 0, bytes};
}

TEST(Tracer, CapturesSendsFromLiveRun) {
  sim::ClusterParams cp;
  cp.num_nodes = 3;
  cp.jitter.enabled = false;
  sim::Cluster cluster(cp);
  mpi::Runtime rt(cluster, 2);
  Tracer tracer;
  tracer.prepare(rt.nranks());
  rt.add_observer(&tracer);
  rt.start_app([](mpi::AppHandle h) -> sim::Co<void> {
    co_await h.safepoint(0);
    if (h.id() == 0) {
      co_await h.send(1, 7, 4096);
    } else {
      (void)co_await h.recv(0, 7);
    }
    co_await h.safepoint(1);
  });
  cluster.engine().run();
  int sends = 0, delivers = 0, consumes = 0;
  for (const auto& r : tracer.records()) {
    if (r.kind == EventKind::kSend) ++sends;
    if (r.kind == EventKind::kDeliver) ++delivers;
    if (r.kind == EventKind::kConsume) ++consumes;
  }
  EXPECT_EQ(sends, 1);
  EXPECT_EQ(delivers, 1);
  EXPECT_EQ(consumes, 1);
}

TEST(TraceIo, RoundTripPreservesRecords) {
  Trace trace;
  trace.push_back(send_rec(1000, 0, 1, 512));
  trace.push_back(TraceRecord{2000, EventKind::kDeliver, 1, 0, 9, 512});
  trace.push_back(TraceRecord{3000, EventKind::kConsume, 1, 0, 9, 512});
  std::stringstream ss;
  write_trace(ss, trace);
  const Trace back = read_trace(ss);
  ASSERT_EQ(back.size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(back[i].time, trace[i].time);
    EXPECT_EQ(back[i].kind, trace[i].kind);
    EXPECT_EQ(back[i].rank, trace[i].rank);
    EXPECT_EQ(back[i].peer, trace[i].peer);
    EXPECT_EQ(back[i].tag, trace[i].tag);
    EXPECT_EQ(back[i].bytes, trace[i].bytes);
  }
}

TEST(TraceIo, SkipsMalformedLines) {
  std::stringstream ss("# comment\ngarbage here\n100 S 0 1 2 300\n");
  const Trace t = read_trace(ss);
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t[0].bytes, 300);
}

TEST(Analysis, AggregatesUnorderedPairs) {
  Trace trace;
  trace.push_back(send_rec(0, 0, 1, 100));
  trace.push_back(send_rec(1, 1, 0, 50));   // same unordered pair
  trace.push_back(send_rec(2, 2, 3, 500));
  const auto pairs = aggregate_pairs(trace);
  ASSERT_EQ(pairs.size(), 2u);
  // Sorted by size desc: (2,3) first.
  EXPECT_EQ(pairs[0].a, 2);
  EXPECT_EQ(pairs[0].b, 3);
  EXPECT_EQ(pairs[0].bytes, 500);
  EXPECT_EQ(pairs[1].bytes, 150);
  EXPECT_EQ(pairs[1].count, 2u);
}

TEST(Analysis, SortBreaksTiesByCountThenPair) {
  Trace trace;
  trace.push_back(send_rec(0, 4, 5, 100));
  trace.push_back(send_rec(0, 0, 1, 50));
  trace.push_back(send_rec(0, 0, 1, 50));
  trace.push_back(send_rec(0, 2, 3, 100));
  const auto pairs = aggregate_pairs(trace);
  ASSERT_EQ(pairs.size(), 3u);
  EXPECT_EQ(pairs[0].count, 2u);           // 100 bytes, 2 msgs wins
  EXPECT_EQ(pairs[1].a, 2);                // then pair order
  EXPECT_EQ(pairs[2].a, 4);
}

TEST(Analysis, CommMatrixAndTotals) {
  Trace trace;
  trace.push_back(send_rec(0, 0, 1, 100));
  trace.push_back(send_rec(1, 0, 1, 100));
  trace.push_back(send_rec(2, 1, 0, 70));
  const auto m = comm_matrix(trace, 2);
  EXPECT_EQ(m[0][1], 200);
  EXPECT_EQ(m[1][0], 70);
  EXPECT_EQ(m[0][0], 0);
  EXPECT_EQ(total_send_bytes(trace), 270);
}

TEST(Timeline, RendersActivityAndCkptGlyphs) {
  Trace trace;
  trace.push_back(send_rec(sim::from_seconds(0.5), 0, 1, 10));
  trace.push_back(send_rec(sim::from_seconds(2.5), 0, 1, 10));
  std::vector<CkptWindow> windows{
      {0, sim::from_seconds(2.0), sim::from_seconds(4.0)}};
  TimelineOptions opts;
  opts.begin = 0;
  opts.end = sim::from_seconds(10.0);
  opts.columns = 10;
  opts.ranks = {0};
  const std::string art = render_timeline(trace, windows, opts);
  // Column 0 has activity; column 2 is ckpt+activity; column 3 is a gap.
  EXPECT_NE(art.find('#'), std::string::npos);
  EXPECT_NE(art.find('C'), std::string::npos);
  EXPECT_NE(art.find('-'), std::string::npos);
}

TEST(Timeline, GapFractionFullWhenIdle) {
  Trace trace;  // no activity at all
  std::vector<CkptWindow> windows{{0, 0, sim::from_seconds(1.0)}};
  EXPECT_DOUBLE_EQ(gap_fraction(trace, windows), 1.0);
}

TEST(Timeline, GapFractionZeroWhenBusyEveryBin) {
  Trace trace;
  for (int i = 0; i < 100; ++i) {
    trace.push_back(send_rec(sim::from_seconds(0.01 * i), 0, 1, 10));
  }
  std::vector<CkptWindow> windows{{0, 0, sim::from_seconds(0.99)}};
  EXPECT_DOUBLE_EQ(gap_fraction(trace, windows, 10.0), 0.0);
}

TEST(Timeline, GapFractionPartial) {
  Trace trace;
  // Active only in the first half of a 2 s window.
  for (int i = 0; i < 10; ++i) {
    trace.push_back(send_rec(sim::from_seconds(0.1 * i), 0, 1, 10));
  }
  std::vector<CkptWindow> windows{{0, 0, sim::from_seconds(2.0)}};
  const double g = gap_fraction(trace, windows, 10.0);
  EXPECT_GT(g, 0.4);
  EXPECT_LT(g, 0.6);
}

}  // namespace
}  // namespace gcr::trace
