// Service workload accounting (DESIGN.md §16): open-loop SLO/latency
// stats are deterministic, checkpoints land between requests under load,
// faults charge the outage to the requests that sat through it, and the
// service app passes the shard-residency gate (unless churn is armed,
// which denies residency loudly).
#include <gtest/gtest.h>

#include <cstdint>

#include "apps/service.hpp"
#include "exp/experiment.hpp"
#include "group/strategies.hpp"
#include "sim/churn.hpp"

namespace gcr::exp {
namespace {

ExperimentConfig base_config(apps::ServiceParams sp, int nranks) {
  ExperimentConfig cfg;
  cfg.app = [sp](int n) { return apps::make_service(n, sp); };
  cfg.nranks = nranks;
  cfg.seed = sp.seed;
  cfg.groups = group::make_norm(nranks);
  cfg.max_sim_s = 300.0;
  return cfg;
}

apps::ServiceParams quick_params() {
  apps::ServiceParams sp;
  sp.requests = 200;
  sp.arrival_rate_hz = 25.0;
  sp.service_s = 0.004;
  sp.slo_s = 0.1;
  sp.mem_bytes = 8ll << 20;
  return sp;
}

void expect_stats_equal(const apps::ServiceStats& a,
                        const apps::ServiceStats& b) {
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.slo_misses, b.slo_misses);
  EXPECT_EQ(a.slo_miss_rate, b.slo_miss_rate);
  EXPECT_EQ(a.mean_latency_s, b.mean_latency_s);
  EXPECT_EQ(a.p50_latency_s, b.p50_latency_s);
  EXPECT_EQ(a.p99_latency_s, b.p99_latency_s);
  EXPECT_EQ(a.p999_latency_s, b.p999_latency_s);
  EXPECT_EQ(a.max_latency_s, b.max_latency_s);
}

TEST(ServiceApp, LatencyAccountingIsDeterministic) {
  const ExperimentConfig cfg = base_config(quick_params(), 8);
  const ExperimentResult a = run_experiment(cfg);
  const ExperimentResult b = run_experiment(cfg);
  ASSERT_TRUE(a.finished);
  ASSERT_TRUE(b.finished);
  EXPECT_EQ(a.exec_time_s, b.exec_time_s);
  ASSERT_TRUE(a.service.has_value());
  ASSERT_TRUE(b.service.has_value());
  expect_stats_equal(*a.service, *b.service);
  // Fault-free run: every request completes, quantiles are ordered.
  EXPECT_EQ(a.service->completed, a.service->requests);
  EXPECT_EQ(a.service->requests, 8u * quick_params().requests);
  EXPECT_LE(a.service->p50_latency_s, a.service->p99_latency_s);
  EXPECT_LE(a.service->p99_latency_s, a.service->p999_latency_s);
  EXPECT_LE(a.service->p999_latency_s, a.service->max_latency_s);
  EXPECT_EQ(a.availability, 1.0);
}

TEST(ServiceApp, DifferentSeedsGiveDifferentArrivals) {
  apps::ServiceParams sp = quick_params();
  const ExperimentResult a = run_experiment(base_config(sp, 8));
  sp.seed = 2;
  ExperimentConfig cfg = base_config(sp, 8);
  const ExperimentResult b = run_experiment(cfg);
  ASSERT_TRUE(a.finished && b.finished);
  EXPECT_NE(a.exec_time_s, b.exec_time_s);
}

TEST(ServiceApp, CheckpointsLandBetweenRequestsUnderLoad) {
  ExperimentConfig cfg = base_config(quick_params(), 8);
  cfg.checkpoints = true;
  cfg.schedule.first_at_s = 0.5;
  cfg.schedule.interval_s = 1.0;
  const ExperimentResult res = run_experiment(cfg);
  ASSERT_TRUE(res.finished);
  EXPECT_GE(res.checkpoints_completed, 2);
  ASSERT_TRUE(res.service.has_value());
  // Checkpoint stalls delay requests but lose none of them.
  EXPECT_EQ(res.service->completed, res.service->requests);
  EXPECT_EQ(res.service->slo_miss_rate,
            static_cast<double>(res.service->slo_misses) /
                static_cast<double>(res.service->requests));
}

TEST(ServiceApp, FaultAndRestoreChargeTheOutageToSloMisses) {
  ExperimentConfig cfg = base_config(quick_params(), 8);
  cfg.checkpoints = true;
  cfg.schedule.first_at_s = 0.5;
  cfg.schedule.interval_s = 1.0;
  cfg.recovery.detect_s = 0.2;
  cfg.recovery.relaunch_s = 0.2;
  const ExperimentResult baseline = run_experiment(cfg);
  cfg.failures = {{0, 2.0}};  // kill rank 0's group mid-stream
  const ExperimentResult faulted = run_experiment(cfg);
  ASSERT_TRUE(baseline.finished);
  ASSERT_TRUE(faulted.finished);
  EXPECT_EQ(faulted.failures_injected, 1);
  EXPECT_EQ(faulted.recoveries_completed, 1);
  ASSERT_TRUE(baseline.service.has_value());
  ASSERT_TRUE(faulted.service.has_value());
  // The open-loop stream kept arriving through the outage; after the
  // restore the backlog drained, so every request still completed — but
  // the ones that sat through detect + relaunch + restore + replay missed
  // the SLO, and the downtime shows up in availability. (Total execution
  // time is NOT compared: the outage also suppresses checkpoint rounds,
  // which can outweigh the restore delay.)
  EXPECT_EQ(faulted.service->completed, faulted.service->requests);
  EXPECT_GT(faulted.service->slo_misses, baseline.service->slo_misses);
  EXPECT_LT(faulted.availability, 1.0);
  EXPECT_GT(baseline.availability, faulted.availability);
}

TEST(ServiceApp, ShardResidentRunMatchesUnsharded) {
  // 16 ranks, 4 groups of 4, replica blocks aligned with the groups; the
  // rare cross-block consults plus a mid-run fault cross the shard edges.
  apps::ServiceParams sp = quick_params();
  sp.cluster_width = 4;
  auto run = [&](int shards) {
    ExperimentConfig cfg = base_config(sp, 16);
    cfg.groups = group::make_blocks(16, 4);
    cfg.checkpoints = true;
    cfg.schedule.first_at_s = 0.5;
    cfg.schedule.interval_s = 1.0;
    cfg.recovery.detect_s = 0.2;
    cfg.recovery.relaunch_s = 0.2;
    cfg.failures = {{0, 2.0}};
    cfg.shards = shards;
    return run_experiment(cfg);
  };
  const ExperimentResult base = run(1);
  const ExperimentResult sharded = run(4);
  ASSERT_TRUE(base.finished);
  ASSERT_TRUE(sharded.finished);
  EXPECT_FALSE(base.resident);
  EXPECT_TRUE(sharded.resident);
  EXPECT_TRUE(sharded.denial_reason.empty()) << sharded.denial_reason;
  EXPECT_EQ(base.exec_time_s, sharded.exec_time_s);
  EXPECT_EQ(base.app_messages, sharded.app_messages);
  EXPECT_EQ(base.app_bytes, sharded.app_bytes);
  EXPECT_EQ(base.failures_injected, sharded.failures_injected);
  EXPECT_EQ(base.recoveries_completed, sharded.recoveries_completed);
  EXPECT_EQ(base.availability, sharded.availability);
  ASSERT_TRUE(base.service.has_value());
  ASSERT_TRUE(sharded.service.has_value());
  expect_stats_equal(*base.service, *sharded.service);
}

TEST(ServiceApp, ChurnDeniesShardResidencyLoudly) {
  apps::ServiceParams sp = quick_params();
  sp.cluster_width = 4;
  ExperimentConfig cfg = base_config(sp, 16);
  cfg.groups = group::make_blocks(16, 4);
  cfg.checkpoints = true;
  cfg.schedule.first_at_s = 0.5;
  cfg.schedule.interval_s = 1.0;
  cfg.churn.kind = sim::ChurnModelKind::kDrains;
  cfg.churn.drain_mtbd_s = 30.0;
  cfg.churn.outage_s = 1.0;
  cfg.shards = 4;
  const ExperimentResult res = run_experiment(cfg);
  ASSERT_TRUE(res.finished);
  EXPECT_FALSE(res.resident);
  EXPECT_EQ(res.effective_shards, 1);
  EXPECT_FALSE(res.denial_reason.empty());
  EXPECT_NE(res.denial_reason.find("churn"), std::string::npos);
}

}  // namespace
}  // namespace gcr::exp
