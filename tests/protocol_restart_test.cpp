// Restart correctness: the runtime asserts the central invariant on every
// consume (per-pair seq continuity + checksums), so a finishing run IS the
// proof that replay/skip reconstructed the exact failure-free delivery
// sequence. These tests exercise the restart paths and the quantities the
// paper reports (resend data/ops, restart phases).
#include <gtest/gtest.h>

#include "apps/simple.hpp"
#include "exp/experiment.hpp"
#include "group/strategies.hpp"

namespace gcr::exp {
namespace {

AppFactory ring_app(std::uint64_t iters, double compute_s = 0.015) {
  return [iters, compute_s](int n) {
    apps::RingParams p;
    p.iterations = iters;
    p.compute_s = compute_s;
    p.bytes = 32 * 1024;
    return apps::make_ring(n, p);
  };
}

AppFactory pairs_app(std::uint64_t iters) {
  return [iters](int n) {
    apps::RandomPairsParams p;
    p.iterations = iters;
    return apps::make_random_pairs(n, p);
  };
}

TEST(Restart, WholeAppRestartHasRecordPerRank) {
  ExperimentConfig cfg;
  cfg.app = ring_app(25);
  cfg.nranks = 9;
  cfg.groups = group::make_round_robin(9, 3);
  cfg.checkpoints = true;
  cfg.schedule.first_at_s = 0.1;
  cfg.restart_after_finish = true;
  ExperimentResult res = run_experiment(cfg);
  ASSERT_TRUE(res.finished);
  ASSERT_EQ(res.restart_records.size(), 9u);
  for (const auto& r : res.restart_records) {
    EXPECT_GT(r.end, r.begin);
    EXPECT_GT(r.image_read_s, 0.0);
    EXPECT_GE(r.exchange_s, 0.0);
  }
}

TEST(Restart, ExchangeCountMatchesOutOfGroupPeers) {
  // NORM: no out-of-group peers, so restart has no exchange resends at all
  // and the exchange phase is just the group barrier.
  ExperimentConfig cfg;
  cfg.app = ring_app(20);
  cfg.nranks = 8;
  cfg.groups = group::make_norm(8);
  cfg.checkpoints = true;
  cfg.schedule.first_at_s = 0.1;
  cfg.restart_after_finish = true;
  ExperimentResult res = run_experiment(cfg);
  ASSERT_TRUE(res.finished);
  EXPECT_EQ(res.metrics.resend_ops, 0);
  EXPECT_EQ(res.metrics.resend_messages, 0);
}

TEST(Restart, Gp1ResendsMoreThanGroupedRestart) {
  // Cut skew is randomized per group per seed; compare totals over seeds.
  auto run_total = [](int ngroups) {
    std::int64_t total_bytes = 0;
    std::int64_t total_ops = 0;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      ExperimentConfig cfg;
      cfg.app = ring_app(40);
      cfg.nranks = 12;
      cfg.seed = seed;
      cfg.groups = ngroups == 12 ? group::make_gp1(12)
                                 : group::make_blocks(12, 12 / ngroups);
      cfg.checkpoints = true;
      cfg.schedule.first_at_s = 0.1;
      cfg.restart_after_finish = true;
      ExperimentResult res = run_experiment(cfg);
      EXPECT_TRUE(res.finished);
      total_bytes += res.metrics.resend_bytes;
      total_ops += res.metrics.resend_ops;
    }
    return std::pair<std::int64_t, std::int64_t>(total_bytes, total_ops);
  };
  const auto [gp1_bytes, gp1_ops] = run_total(12);
  const auto [blk_bytes, blk_ops] = run_total(3);  // blocks of 4
  EXPECT_GT(gp1_ops, 0);
  // GP1 logs every ring edge (12 directed cross edges); blocks of 4 log only
  // the 3 block-boundary edges, so GP1's replay dominates in aggregate.
  EXPECT_GE(gp1_bytes, blk_bytes);
  EXPECT_GE(gp1_ops, blk_ops);
}

TEST(Restart, MixedEpochCutsReconcile) {
  // Different groups checkpoint at different times (periodic + skew); a
  // whole-app restart from mixed-epoch images must still satisfy the seq
  // invariant (verified by the runtime) and complete.
  ExperimentConfig cfg;
  cfg.app = pairs_app(50);  // unstructured traffic crosses all groups
  cfg.nranks = 10;
  cfg.groups = group::make_round_robin(10, 5);
  cfg.checkpoints = true;
  cfg.schedule.first_at_s = 0.05;
  cfg.schedule.interval_s = 0.1;
  cfg.schedule.round_spread_s = 0.05;
  cfg.restart_after_finish = true;
  ExperimentResult res = run_experiment(cfg);
  ASSERT_TRUE(res.finished);
  EXPECT_GE(res.checkpoints_completed, 1);
  EXPECT_EQ(res.restart_records.size(), 10u);
}

TEST(Restart, RestartWithoutAnyCheckpointStartsFromScratch) {
  ExperimentConfig cfg;
  cfg.app = ring_app(15);
  cfg.nranks = 6;
  cfg.groups = group::make_round_robin(6, 2);
  cfg.checkpoints = false;  // no images exist
  cfg.restart_after_finish = true;
  ExperimentResult res = run_experiment(cfg);
  ASSERT_TRUE(res.finished);
  ASSERT_EQ(res.restart_records.size(), 6u);
  for (const auto& r : res.restart_records) {
    EXPECT_LT(r.image_read_s, 0.01);  // only relaunch handling, no image
  }
}

TEST(Restart, ResendOpsCountDirectedPairsWithData) {
  ExperimentConfig cfg;
  cfg.app = ring_app(40);
  cfg.nranks = 8;
  cfg.groups = group::make_gp1(8);
  cfg.checkpoints = true;
  cfg.schedule.first_at_s = 0.1;
  cfg.restart_after_finish = true;
  ExperimentResult res = run_experiment(cfg);
  ASSERT_TRUE(res.finished);
  // Ring traffic: at most one outgoing neighbor per rank ever gets data, so
  // resend_ops is bounded by the directed edges of the ring.
  EXPECT_LE(res.metrics.resend_ops, 8);
  if (res.metrics.resend_ops > 0) {
    EXPECT_GT(res.metrics.resend_messages, 0);
    EXPECT_GT(res.metrics.resend_bytes, 0);
  }
}

TEST(Restart, DeterministicRestartMetrics) {
  auto run = [] {
    ExperimentConfig cfg;
    cfg.app = ring_app(30);
    cfg.nranks = 8;
    cfg.groups = group::make_round_robin(8, 4);
    cfg.checkpoints = true;
    cfg.schedule.first_at_s = 0.1;
    cfg.restart_after_finish = true;
    return run_experiment(cfg);
  };
  ExperimentResult a = run();
  ExperimentResult b = run();
  EXPECT_DOUBLE_EQ(a.restart_aggregate_s, b.restart_aggregate_s);
  EXPECT_EQ(a.metrics.resend_bytes, b.metrics.resend_bytes);
  EXPECT_EQ(a.metrics.resend_ops, b.metrics.resend_ops);
}

}  // namespace
}  // namespace gcr::exp
