// Build-surface lock: every public header must be self-contained (compile
// from a single include, in any order). This TU includes all of them once;
// if a header silently depends on another being included first, this file
// breaks at compile time.
#include "apps/app.hpp"
#include "apps/cg.hpp"
#include "apps/hpl.hpp"
#include "apps/patterns.hpp"
#include "apps/simple.hpp"
#include "apps/sp.hpp"
#include "ckpt/checkpointer.hpp"
#include "ckpt/image.hpp"
#include "core/group_protocol.hpp"
#include "core/interval.hpp"
#include "core/metrics.hpp"
#include "core/msglog.hpp"
#include "core/recovery.hpp"
#include "core/scheduler.hpp"
#include "core/vcl_protocol.hpp"
#include "exp/campaign.hpp"
#include "exp/experiment.hpp"
#include "exp/scenario.hpp"
#include "group/dynamic.hpp"
#include "group/formation.hpp"
#include "group/group.hpp"
#include "group/groupfile.hpp"
#include "group/strategies.hpp"
#include "mpi/hooks.hpp"
#include "mpi/message.hpp"
#include "mpi/rank.hpp"
#include "mpi/runtime.hpp"
#include "sim/awaitables.hpp"
#include "sim/channel.hpp"
#include "sim/cluster.hpp"
#include "sim/co.hpp"
#include "sim/engine.hpp"
#include "sim/faults.hpp"
#include "sim/jitter.hpp"
#include "sim/network.hpp"
#include "sim/smallfn.hpp"
#include "sim/storage.hpp"
#include "sim/time.hpp"
#include "trace/analysis.hpp"
#include "trace/io.hpp"
#include "trace/record.hpp"
#include "trace/timeline.hpp"
#include "trace/tracer.hpp"
#include "util/assert.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

#include <gtest/gtest.h>

namespace gcr {
namespace {

TEST(Headers, AllPublicHeadersAreSelfContained) {
  // The assertion is the successful compilation of this TU; instantiate a
  // couple of cheap types to keep the linker honest about inline symbols.
  sim::Engine engine;
  EXPECT_EQ(engine.now(), 0);
  EXPECT_EQ(group::make_norm(4).num_groups(), 1);
}

}  // namespace
}  // namespace gcr
