// Engine fundamentals: event ordering, coroutine scheduling, process
// lifecycle, and kill semantics.
#include <gtest/gtest.h>

#include <vector>

#include "sim/awaitables.hpp"
#include "sim/channel.hpp"
#include "sim/co.hpp"
#include "sim/engine.hpp"

namespace gcr::sim {
namespace {

TEST(Engine, CallbacksRunInTimeOrder) {
  Engine eng;
  std::vector<int> order;
  eng.call_at(30_ms, [&] { order.push_back(3); });
  eng.call_at(10_ms, [&] { order.push_back(1); });
  eng.call_at(20_ms, [&] { order.push_back(2); });
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(eng.now(), 30_ms);
}

TEST(Engine, SameTimeCallbacksRunFifo) {
  Engine eng;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    eng.call_at(5_ms, [&order, i] { order.push_back(i); });
  }
  eng.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Engine, RunUntilStopsAtBoundary) {
  Engine eng;
  int fired = 0;
  eng.call_at(10_ms, [&] { ++fired; });
  eng.call_at(20_ms, [&] { ++fired; });
  eng.run(10_ms);
  EXPECT_EQ(fired, 1);
  eng.run();
  EXPECT_EQ(fired, 2);
}

// Clock-advance rule regression (see Engine::run): `until` landing exactly
// on a queued event's timestamp executes every event at that timestamp and
// leaves the clock there; a finite `until` past the last event advances the
// clock to `until`; bare run() never advances past the last event.
TEST(Engine, RunUntilLandsExactlyOnEventTimestamp) {
  Engine eng;
  std::vector<int> fired;
  eng.call_at(10_ms, [&] { fired.push_back(1); });
  eng.call_at(10_ms, [&] { fired.push_back(2); });
  eng.call_at(20_ms, [&] { fired.push_back(3); });
  eng.run(10_ms);
  EXPECT_EQ(fired, (std::vector<int>{1, 2}));  // both events AT the boundary
  EXPECT_EQ(eng.now(), 10_ms);                 // clock sits on the boundary
  EXPECT_FALSE(eng.idle());                    // the 20ms event remains
  eng.run(15_ms);                              // no events in (10, 15]
  EXPECT_EQ(eng.now(), 10_ms);  // events remain -> clock does not advance
  eng.run(20_ms);
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(eng.now(), 20_ms);
  eng.run(30_ms);  // queue drained + finite until -> clock advances
  EXPECT_EQ(eng.now(), 30_ms);
  eng.run();  // bare run() on an empty queue leaves the clock alone
  EXPECT_EQ(eng.now(), 30_ms);
}

TEST(Engine, RunWhilePredicateStops) {
  Engine eng;
  int fired = 0;
  for (int i = 1; i <= 5; ++i) {
    eng.call_at(i * 1_ms, [&] { ++fired; });
  }
  eng.run_while([&] { return fired < 3; });
  EXPECT_EQ(fired, 3);
}

Co<void> delayer(Engine& eng, Time dt, int* out) {
  co_await delay(eng, dt);
  *out = 1;
}

TEST(Engine, SpawnedProcessRunsAndFinishes) {
  Engine eng;
  int done = 0;
  bool exit_seen = false;
  eng.spawn("p", delayer(eng, 5_ms, &done), [&](Proc&, ExitKind k) {
    exit_seen = k == ExitKind::kFinished;
  });
  EXPECT_EQ(eng.live_process_count(), 1u);
  eng.run();
  EXPECT_EQ(done, 1);
  EXPECT_TRUE(exit_seen);
  EXPECT_EQ(eng.live_process_count(), 0u);
  EXPECT_EQ(eng.now(), 5_ms);
}

Co<void> nested_inner(Engine& eng, std::vector<int>* log) {
  log->push_back(1);
  co_await delay(eng, 1_ms);
  log->push_back(2);
}

Co<void> nested_outer(Engine& eng, std::vector<int>* log) {
  log->push_back(0);
  co_await nested_inner(eng, log);
  log->push_back(3);
  co_await delay(eng, 1_ms);
  log->push_back(4);
}

TEST(Engine, NestedCoroutinesPropagate) {
  Engine eng;
  std::vector<int> log;
  eng.spawn("outer", nested_outer(eng, &log));
  eng.run();
  EXPECT_EQ(log, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(eng.now(), 2_ms);
}

struct RaiiProbe {
  bool* flag;
  explicit RaiiProbe(bool* f) : flag(f) {}
  ~RaiiProbe() { *flag = true; }
};

Co<void> sleeper_with_raii(Engine& eng, bool* destroyed) {
  RaiiProbe probe(destroyed);
  co_await delay(eng, 1000_s);
  ADD_FAILURE() << "should have been killed";
}

TEST(Engine, KillUnwindsRaiiAndReportsKilled) {
  Engine eng;
  bool destroyed = false;
  bool killed_seen = false;
  auto p = eng.spawn("victim", sleeper_with_raii(eng, &destroyed),
                     [&](Proc&, ExitKind k) {
                       killed_seen = k == ExitKind::kKilled;
                     });
  eng.call_at(3_ms, [&] { eng.kill(*p); });
  eng.run(10_ms);
  EXPECT_TRUE(destroyed);
  EXPECT_TRUE(killed_seen);
  EXPECT_EQ(eng.live_process_count(), 0u);
}

TEST(Engine, KillBeforeStartNeverRunsBody) {
  Engine eng;
  int ran = 0;
  bool killed_seen = false;
  auto body = [](Engine& e, int* r) -> Co<void> {
    *r = 1;
    co_await delay(e, 1_ms);
  };
  // Spawn and kill within the same callback, before the start event runs.
  eng.call_at(1_ms, [&] {
    auto p = eng.spawn("never", body(eng, &ran), [&](Proc&, ExitKind k) {
      killed_seen = k == ExitKind::kKilled;
    });
    eng.kill(*p);
  });
  eng.run();
  EXPECT_EQ(ran, 0);
  EXPECT_TRUE(killed_seen);
}

TEST(Engine, KillIsIdempotent) {
  Engine eng;
  bool destroyed = false;
  int exits = 0;
  auto p = eng.spawn("victim", sleeper_with_raii(eng, &destroyed),
                     [&](Proc&, ExitKind) { ++exits; });
  eng.call_at(1_ms, [&] {
    eng.kill(*p);
    eng.kill(*p);
  });
  eng.call_at(2_ms, [&] { eng.kill(*p); });
  eng.run(10_ms);
  EXPECT_TRUE(destroyed);
  EXPECT_EQ(exits, 1);
}

Co<void> chan_consumer(Engine& eng, Channel<int>& ch, std::vector<int>* got,
                       int count) {
  (void)eng;
  for (int i = 0; i < count; ++i) {
    got->push_back(co_await ch.pop());
  }
}

TEST(Engine, KilledChannelWaiterDoesNotConsume) {
  Engine eng;
  Channel<int> ch(eng);
  std::vector<int> got_a;
  std::vector<int> got_b;
  auto a = eng.spawn("a", chan_consumer(eng, ch, &got_a, 1));
  eng.call_at(1_ms, [&] { eng.kill(*a); });
  eng.call_at(2_ms, [&] {
    eng.spawn("b", chan_consumer(eng, ch, &got_b, 1));
  });
  eng.call_at(3_ms, [&] { ch.push(42); });
  eng.run();
  EXPECT_TRUE(got_a.empty());
  EXPECT_EQ(got_b, (std::vector<int>{42}));
}

TEST(Engine, DeterministicEventCounts) {
  auto run_once = [] {
    Engine eng;
    Channel<int> ch(eng);
    std::vector<int> got;
    eng.spawn("c", chan_consumer(eng, ch, &got, 3));
    for (int i = 0; i < 3; ++i) {
      eng.call_at((i + 1) * 1_ms, [&ch, i] { ch.push(i); });
    }
    eng.run();
    return eng.events_processed();
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace gcr::sim
