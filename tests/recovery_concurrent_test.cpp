// Directed tests for the concurrent-failure recovery paths
// (core/recovery.hpp): failures are never deferred — a group dies the
// instant its fault fires — and recoveries queue. Covers: a failure during
// another group's restart (queued restore, deferred volume exchange), a
// re-failure of a restoring group (aborted restore, requeued), a failure
// during a checkpoint window (staged-image rollback), same-timestamp
// failures of two groups, and absorption of faults hitting an
// already-down group. Every run that finishes has passed the runtime's
// per-consume sequence/checksum verification, so loss, duplication, or
// reordering anywhere in the deferred-exchange/replay machinery aborts.
#include <gtest/gtest.h>

#include <algorithm>

#include "apps/simple.hpp"
#include "exp/experiment.hpp"
#include "group/strategies.hpp"

namespace gcr::exp {
namespace {

AppFactory ring_app(std::uint64_t iters) {
  return [iters](int n) {
    apps::RingParams p;
    p.iterations = iters;
    p.compute_s = 0.012;
    return apps::make_ring(n, p);
  };
}

/// Ring with 48 MB images: restores spend ~0.56 s reading the image, which
/// opens a wide deterministic restore window to land a second failure in.
/// (The one-shot checkpoint at 0.1 s commits by ~4.8 s — ring traffic
/// couples the groups, so the round stretches far beyond the raw write.)
AppFactory big_image_ring_app() {
  return [](int n) {
    apps::RingParams p;
    p.iterations = 80;
    p.compute_s = 0.012;
    p.mem_bytes = 48 * 1024 * 1024;
    return apps::make_ring(n, p);
  };
}

/// [min begin, max end] over the restart records of one rank range.
struct Window {
  double begin = 1e300;
  double end = -1e300;
};
Window restore_window(const ExperimentResult& res, mpi::RankId lo,
                      mpi::RankId hi) {
  Window w;
  for (const auto& r : res.metrics.restarts) {
    if (r.rank < lo || r.rank > hi) continue;
    w.begin = std::min(w.begin, sim::to_seconds(r.begin));
    w.end = std::max(w.end, sim::to_seconds(r.end));
  }
  return w;
}

// A failure of group 1 while group 0 is mid-restore is accepted (killed
// now), queued, and restored only after group 0's restore window closes.
// Group 0's exchange toward the dead group 1 defers and converges later.
TEST(ConcurrentRecovery, FailureDuringAnotherGroupsRestartQueues) {
  ExperimentConfig cfg;
  cfg.app = big_image_ring_app();
  cfg.nranks = 8;
  cfg.groups = group::make_blocks(8, 4);  // {0..3}, {4..7}
  cfg.checkpoints = true;
  cfg.schedule.first_at_s = 0.1;  // one-shot, committed by ~4.8 s
  cfg.recovery.detect_s = 0.2;
  cfg.recovery.relaunch_s = 0.2;
  // Group 0 dies at 5.5 (after its commit), restores 5.9..~6.46 (image
  // read); group 1 dies at 6.1, inside that restore window.
  cfg.failures = {{0, 5.5}, {1, 6.1}};
  ExperimentResult res = run_experiment(cfg);
  ASSERT_TRUE(res.finished);
  EXPECT_EQ(res.failures_injected, 2);
  EXPECT_EQ(res.failures_absorbed, 0);
  EXPECT_EQ(res.recoveries_completed, 2);
  EXPECT_EQ(res.recoveries_aborted, 0);
  EXPECT_EQ(res.metrics.restarts.size(), 8u);
  const Window g0 = restore_window(res, 0, 3);
  const Window g1 = restore_window(res, 4, 7);
  // Group 0 really restored from its image (wide window)...
  EXPECT_GT(g0.end - g0.begin, 0.3);
  for (const auto& r : res.metrics.restarts) EXPECT_GT(r.image_read_s, 0.3);
  // ...and group 1's restore queued behind it (one restore slot).
  EXPECT_GE(g1.begin, g0.end - 1e-9);
}

// A second failure of the SAME group while it is restoring aborts the
// in-flight restore (its restore coroutine dies with the ranks) and queues
// a fresh recovery; the job still completes.
TEST(ConcurrentRecovery, RefailureDuringRestoreAbortsAndRequeues) {
  ExperimentConfig cfg;
  cfg.app = big_image_ring_app();
  cfg.nranks = 8;
  cfg.groups = group::make_blocks(8, 4);
  cfg.checkpoints = true;
  cfg.schedule.first_at_s = 0.1;
  cfg.recovery.detect_s = 0.2;
  cfg.recovery.relaunch_s = 0.2;
  // First failure at 5.5 -> restoring 5.9..~6.46; the re-failure at 6.1
  // lands mid-image-read and kills the restore coroutine with the ranks.
  cfg.failures = {{0, 5.5}, {0, 6.1}};
  ExperimentResult res = run_experiment(cfg);
  ASSERT_TRUE(res.finished);
  EXPECT_EQ(res.failures_injected, 2);
  EXPECT_EQ(res.recoveries_aborted, 1);
  EXPECT_EQ(res.recoveries_completed, 1);
  EXPECT_EQ(res.failures_absorbed, 0);
  // Only the second (completed) restore produced records.
  EXPECT_EQ(res.metrics.restarts.size(), 4u);
}

// A fault arriving while its group is dead and waiting for a restore slot
// is absorbed: a node cannot die twice.
TEST(ConcurrentRecovery, FaultOnDownGroupIsAbsorbed) {
  ExperimentConfig cfg;
  cfg.app = ring_app(40);
  cfg.nranks = 4;
  cfg.groups = group::make_round_robin(4, 2);
  cfg.checkpoints = true;
  cfg.schedule.first_at_s = 0.05;
  // Detection+relaunch 2 s (defaults): the 0.5 s fault hits a dead group.
  cfg.failures = {{0, 0.3}, {0, 0.5}};
  ExperimentResult res = run_experiment(cfg);
  ASSERT_TRUE(res.finished);
  EXPECT_EQ(res.failures_injected, 1);
  EXPECT_EQ(res.failures_absorbed, 1);
  EXPECT_EQ(res.recoveries_completed, 1);
}

// A failure inside the group's own checkpoint window kills the round and
// discards the group's staged (never-committed) images: the restore runs
// from scratch, never from a torn image.
TEST(ConcurrentRecovery, FailureDuringCheckpointRollsBackStagedImage) {
  ExperimentConfig cfg;
  cfg.app = ring_app(60);
  cfg.nranks = 4;
  cfg.groups = group::make_round_robin(4, 2);
  cfg.checkpoints = true;
  cfg.schedule.first_at_s = 0.1;  // one-shot
  cfg.disk_bandwidth_Bps = 1e6;   // 8 MB images: an 8 s write window
  cfg.recovery.detect_s = 0.2;
  cfg.recovery.relaunch_s = 0.2;
  cfg.failures = {{0, 2.0}};  // deep inside the image write
  ExperimentResult res = run_experiment(cfg);
  ASSERT_TRUE(res.finished);
  EXPECT_EQ(res.failures_injected, 1);
  EXPECT_EQ(res.recoveries_completed, 1);
  // The round never completed on the failed group.
  EXPECT_EQ(res.checkpoints_completed, 0);
  // Every member restarted from scratch: the half-written image was staged
  // but never group-committed, so restore must not read it.
  int restarted = 0;
  for (const auto& r : res.metrics.restarts) {
    EXPECT_LT(r.image_read_s, 0.01);
    ++restarted;
  }
  EXPECT_EQ(restarted, 2);
}

// Two groups failing at the same simulated instant: both kills are
// accepted at that instant, recoveries queue in failure order, and both
// complete. The first group to restore exchanges volumes with a fully dead
// peer group — the deferred-exchange path — and the run still passes the
// per-consume seq/checksum verification.
TEST(ConcurrentRecovery, SimultaneousTwoGroupFailure) {
  ExperimentConfig cfg;
  cfg.app = ring_app(60);
  cfg.nranks = 8;
  cfg.groups = group::make_blocks(8, 4);
  cfg.checkpoints = true;
  cfg.schedule.first_at_s = 0.1;
  cfg.schedule.interval_s = 0.2;
  cfg.recovery.detect_s = 0.2;
  cfg.recovery.relaunch_s = 0.2;
  cfg.failures = {{0, 0.7}, {1, 0.7}};
  ExperimentResult res = run_experiment(cfg);
  ASSERT_TRUE(res.finished);
  EXPECT_EQ(res.failures_injected, 2);
  EXPECT_EQ(res.failures_absorbed, 0);
  EXPECT_EQ(res.recoveries_completed, 2);
  EXPECT_EQ(res.metrics.restarts.size(), 8u);
  const Window g0 = restore_window(res, 0, 3);
  const Window g1 = restore_window(res, 4, 7);
  EXPECT_GE(g1.begin, g0.end - 1e-9);  // one restore slot, failure order
}

// With two restore slots, simultaneous failures restore CONCURRENTLY:
// both groups' windows overlap, both exchanges defer against each other,
// and the run still converges.
TEST(ConcurrentRecovery, TwoRestoreSlotsOverlapWindows) {
  ExperimentConfig cfg;
  cfg.app = big_image_ring_app();
  cfg.nranks = 8;
  cfg.groups = group::make_blocks(8, 4);
  cfg.checkpoints = true;
  cfg.schedule.first_at_s = 0.1;  // one-shot, committed by ~4.8 s
  cfg.recovery.detect_s = 0.2;
  cfg.recovery.relaunch_s = 0.2;
  cfg.recovery.max_concurrent_restores = 2;
  cfg.failures = {{0, 5.5}, {1, 5.5}};
  ExperimentResult res = run_experiment(cfg);
  ASSERT_TRUE(res.finished);
  EXPECT_EQ(res.failures_injected, 2);
  EXPECT_EQ(res.recoveries_completed, 2);
  const Window g0 = restore_window(res, 0, 3);
  const Window g1 = restore_window(res, 4, 7);
  EXPECT_LT(g1.begin, g0.end);  // windows genuinely overlap
  EXPECT_LT(g0.begin, g1.end);
}

}  // namespace
}  // namespace gcr::exp
