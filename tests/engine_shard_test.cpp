// Sharded engine + hierarchical timing wheel: cross-shard merge ordering,
// lookahead clamping, byte-identical replay across shard counts, kill of a
// waiter with a cross-shard resume already mailboxed, wheel cascade
// boundaries (level edges and beyond-span overflow), cancel-after-cascade,
// and the group-aligned rank->shard placement plan.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "exp/experiment.hpp"
#include "group/dynamic.hpp"
#include "group/group.hpp"
#include "sim/awaitables.hpp"
#include "sim/engine.hpp"
#include "sim/shard.hpp"

namespace gcr::sim {
namespace {

// ---------------------------------------------------------------------------
// Hierarchical timing wheel (single engine)
// ---------------------------------------------------------------------------

TEST(TimingWheel, CascadeBoundaryOffsets) {
  // Offsets straddling every level edge (6 bits per level): the last slot
  // of a level, the first slot of the next, and one past it — scheduled in
  // scrambled order so dispatch order is purely the wheel's doing.
  const std::vector<Time> offsets = {
      4096, 1,      63,     64,    65,     4095,   4097,   262143,
      262144, 262145, 16777215, 16777216, 2, 100000, 524288, 3};
  Engine eng;
  std::vector<Time> fired;
  for (const Time t : offsets) {
    eng.call_at(t, [&eng, &fired] { fired.push_back(eng.now()); });
  }
  eng.run();
  std::vector<Time> want = offsets;
  std::sort(want.begin(), want.end());
  EXPECT_EQ(fired, want);
}

TEST(TimingWheel, SameSlotPreservesInsertionOrder) {
  // Two callbacks at the same instant dispatch in scheduling order (seq),
  // including after the slot's chain has cascaded down a level.
  Engine eng;
  std::vector<int> order;
  eng.call_at(70'000, [&order] { order.push_back(1); });
  eng.call_at(70'000, [&order] { order.push_back(2); });
  eng.call_at(69'000, [&order] { order.push_back(0); });  // forces a cascade
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(TimingWheel, FarFutureOverflowBeyondWheelSpan) {
  // Anything past the wheel's 2^48 ns span lands in the overflow heap and
  // still dispatches in exact (time, seq) order.
  Engine eng;
  const Time beyond = (Time{1} << 48) + 12'345;
  std::vector<Time> fired;
  eng.call_at(beyond, [&eng, &fired] { fired.push_back(eng.now()); });
  eng.call_at(500, [&eng, &fired] { fired.push_back(eng.now()); });
  eng.call_at(beyond + 1, [&eng, &fired] { fired.push_back(eng.now()); });
  eng.run();
  EXPECT_EQ(fired, (std::vector<Time>{500, beyond, beyond + 1}));
}

TEST(TimingWheel, NextEventTimeIsExactWithoutDispatch) {
  Engine eng;
  EXPECT_EQ(eng.next_event_time(), kTimeMax);
  eng.call_at(123'456, [] {});
  EXPECT_EQ(eng.next_event_time(), 123'456);
  EXPECT_EQ(eng.now(), 0u);  // the query never advances the clock
  eng.call_at(99, [] {});
  EXPECT_EQ(eng.next_event_time(), 99);
  eng.run();
  EXPECT_EQ(eng.next_event_time(), kTimeMax);
}

TEST(TimingWheel, CancelAfterCascade) {
  // A far-future timer whose node has already cascaded toward level 0 is
  // abandoned when its process is killed first: the stale wheel entry must
  // dispatch as a no-op instead of resuming the dead coroutine.
  Engine eng;
  bool resumed_normally = false;
  ExitKind exit = ExitKind::kFinished;
  auto body = [](Engine& e, bool* flag) -> Co<void> {
    co_await delay(e, 70'000);
    *flag = true;
  };
  ProcPtr proc = eng.spawn("sleeper", body(eng, &resumed_normally),
                           [&exit](Proc&, ExitKind k) { exit = k; });
  // 69'000 sits one cascade short of the timer's slot: dispatching it drags
  // the cursor (and the 70'000 node) down a level before the kill lands.
  eng.call_at(69'000, [&eng, proc] { eng.kill(*proc); });
  eng.run();
  EXPECT_FALSE(resumed_normally);
  EXPECT_EQ(exit, ExitKind::kKilled);
  EXPECT_FALSE(proc->alive());
  EXPECT_TRUE(eng.idle());
}

// ---------------------------------------------------------------------------
// Sharded engine
// ---------------------------------------------------------------------------

TEST(ShardedEngine, LookaheadIsClampedToOneNanosecond) {
  // Zero lookahead cannot order sender against receiver; the constructor
  // clamps instead of letting the window protocol deadlock.
  ShardedEngine se(2, /*lookahead=*/0);
  EXPECT_EQ(se.lookahead(), 1u);
}

TEST(ShardedEngine, CrossShardArrivalsMergeByTimeSourceSendOrder) {
  ShardedEngine se(3, /*lookahead=*/10);
  std::vector<std::string> log;
  // Posted in an order unrelated to the required (time, src, idx) merge.
  se.post_at(2, 0, 100, [&log] { log.push_back("t100/src2/#0"); });
  se.post_at(1, 0, 100, [&log] { log.push_back("t100/src1/#0"); });
  se.post_at(1, 0, 100, [&log] { log.push_back("t100/src1/#1"); });
  se.post_at(2, 0, 50, [&log] { log.push_back("t50/src2/#0"); });
  se.run();
  EXPECT_EQ(log, (std::vector<std::string>{"t50/src2/#0", "t100/src1/#0",
                                           "t100/src1/#1", "t100/src2/#0"}));
  EXPECT_TRUE(se.idle());
}

TEST(ShardedEngine, SingleShardMatchesBareEngine) {
  auto load = [](Engine& eng, std::vector<Time>& fired) {
    for (int i = 1; i <= 200; ++i) {
      eng.call_at(static_cast<Time>(i) * 37, [&eng, &fired] {
        fired.push_back(eng.now());
      });
    }
  };
  Engine bare;
  std::vector<Time> bare_fired;
  load(bare, bare_fired);
  const std::uint64_t bare_n = bare.run(5'000);

  ShardedEngine se(1);
  std::vector<Time> sharded_fired;
  load(se.home(), sharded_fired);
  const std::uint64_t sharded_n = se.run(5'000);

  EXPECT_EQ(bare_fired, sharded_fired);
  EXPECT_EQ(bare_n, sharded_n);
  EXPECT_EQ(bare.now(), se.home().now());
}

/// Token ring over K logical parties pinned to shards round-robin, plus
/// per-party local timer noise — the partitioned workload used for the
/// cross-shard determinism checks. Every hop carries a fixed arrival time
/// (DELTA >= lookahead), so its trace must not depend on the shard count.
struct TokenRing {
  static constexpr int kParties = 4;
  static constexpr Time kDelta = 1'009;

  ShardedEngine* se;
  int hops_left;
  std::array<std::vector<Time>, kParties> arrivals;

  int shard_of(int party) const { return party % se->num_shards(); }

  void launch(int hops) {
    hops_left = hops;
    for (int p = 0; p < kParties; ++p) {
      Engine& eng = se->shard(shard_of(p));
      for (int i = 1; i <= 150; ++i) {
        eng.call_at(static_cast<Time>(i) * 777 + 13 * p + 7, [] {});
      }
    }
    se->post_at(0, 0, 1'000, [this] { arrive(0); });
  }

  void arrive(int party) {
    const Time t = se->shard(shard_of(party)).now();
    arrivals[static_cast<std::size_t>(party)].push_back(t);
    if (--hops_left <= 0) return;
    const int next = (party + 1) % kParties;
    se->post_at(shard_of(party), shard_of(next), t + kDelta,
                [this, next] { arrive(next); });
  }
};

TEST(ShardedEngine, TokenRingIsIdenticalAcrossShardCounts) {
  std::array<std::vector<Time>, TokenRing::kParties> golden;
  std::uint64_t golden_events = 0;
  for (const int shards : {1, 2, 4}) {
    ShardedEngine se(shards, /*lookahead=*/100);
    TokenRing ring{&se, 0, {}};
    ring.launch(/*hops=*/60);
    se.run();
    EXPECT_TRUE(se.idle());
    if (shards == 1) {
      golden = ring.arrivals;
      golden_events = se.events_processed();
      continue;
    }
    EXPECT_EQ(ring.arrivals, golden) << "shards=" << shards;
    EXPECT_EQ(se.events_processed(), golden_events) << "shards=" << shards;
  }
}

TEST(ShardedEngine, ThreadedRerunIsDeterministic) {
  std::array<std::vector<Time>, TokenRing::kParties> first;
  for (int rep = 0; rep < 2; ++rep) {
    ShardedEngine se(4, /*lookahead=*/100);
    TokenRing ring{&se, 0, {}};
    ring.launch(/*hops=*/60);
    se.run();
    if (rep == 0) {
      first = ring.arrivals;
    } else {
      EXPECT_EQ(ring.arrivals, first);
    }
  }
}

TEST(ShardedEngine, KillWhileCrossShardResumeIsMailboxed) {
  // A peer shard mails a trigger-fire for t=200, but the waiter is killed
  // at t=50 on its home shard. The mailboxed fire must dispatch as a no-op
  // against the recycled waiter slot (generation check), not resume the
  // dead coroutine.
  ShardedEngine se(2, /*lookahead=*/100);
  Engine& home = se.home();
  Trigger tr(home);
  bool resumed_normally = false;
  ExitKind exit = ExitKind::kFinished;
  auto body = [](Trigger& t, bool* flag) -> Co<void> {
    co_await t.wait();
    *flag = true;
  };
  ProcPtr proc = home.spawn("waiter", body(tr, &resumed_normally),
                            [&exit](Proc&, ExitKind k) { exit = k; });
  home.call_at(50, [&home, proc] { home.kill(*proc); });
  se.post_at(1, 0, 200, [&tr] { tr.fire(); });
  se.run();
  EXPECT_FALSE(resumed_normally);
  EXPECT_EQ(exit, ExitKind::kKilled);
  EXPECT_TRUE(tr.fired());
  EXPECT_TRUE(se.idle());
}

TEST(ShardedEngine, IdlePeerStillBoundsTheWindow) {
  // Regression test for a causality violation in the resident-rank world:
  // shard 1 starts with an empty queue (its ranks are blocked on mail this
  // round is about to send) while shard 0 holds both a near event that
  // mails shard 1 and a far-future timer. Treating the idle peer as
  // unconstraining let shard 0 run ahead to the far timer and take shard
  // 1's reply in its past; the window must instead stop at the globally
  // earliest event plus two lookaheads.
  ShardedEngine se(2, /*lookahead=*/100);
  std::vector<int> order;
  se.shard(0).call_at(10, [&se, &order] {
    se.post_at(0, 1, 110, [&se, &order] {
      order.push_back(1);  // shard 1 wakes on the mail
      se.post_at(1, 0, 210, [&order] { order.push_back(2); });  // reply
    });
  });
  se.shard(0).call_at(100'000, [&order] { order.push_back(3); });  // far timer
  se.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(se.shard(0).now(), Time{100'000});
}

TEST(ShardedEngine, RunWhileStopsOnShardZeroPredicate) {
  ShardedEngine se(2, /*lookahead=*/100);
  for (int s = 0; s < 2; ++s) {
    for (int i = 1; i <= 1'000; ++i) {
      se.shard(s).call_at(static_cast<Time>(i) * 10, [] {});
    }
  }
  int home_fired = 0;
  se.home().call_at(5'000, [&home_fired] { ++home_fired; });
  const std::uint64_t n =
      se.run_while([&home_fired] { return home_fired == 0; });
  EXPECT_GT(home_fired, 0);
  EXPECT_FALSE(se.idle());  // stopped early, future events remain
  EXPECT_GT(n, 0u);
}

}  // namespace
}  // namespace gcr::sim

namespace gcr::exp {
namespace {

group::GroupSet make_groups(int nranks,
                            std::vector<std::vector<mpi::RankId>> members) {
  return group::GroupSet(nranks, std::move(members));
}

TEST(RankShardPlan, GroupsStayWholeAndLoadsBalance) {
  const group::GroupSet groups =
      make_groups(12, {{0, 1, 2, 3}, {4, 5, 6}, {7, 8, 9}, {10, 11}});
  const std::vector<int> plan = plan_rank_shards(groups, 2);
  ASSERT_EQ(plan.size(), 12u);
  std::vector<int> load(2, 0);
  for (int g = 0; g < groups.num_groups(); ++g) {
    const int shard = plan[static_cast<std::size_t>(groups.members(g)[0])];
    for (const mpi::RankId r : groups.members(g)) {
      EXPECT_EQ(plan[static_cast<std::size_t>(r)], shard)
          << "group " << g << " split across shards";
    }
    load[static_cast<std::size_t>(shard)] +=
        static_cast<int>(groups.members(g).size());
  }
  EXPECT_EQ(load[0], 6);  // greedy largest-first: {4,2} vs {3,3}
  EXPECT_EQ(load[1], 6);
  EXPECT_EQ(plan_rank_shards(groups, 2), plan);  // deterministic
}

TEST(RankShardPlan, SingleShardPlanIsAllZero) {
  const group::GroupSet groups = make_groups(6, {{0, 1}, {2, 3}, {4, 5}});
  EXPECT_EQ(plan_rank_shards(groups, 1), std::vector<int>(6, 0));
}

TEST(RankShardPlan, MoreShardsThanGroupsLeavesShardsIdle) {
  const group::GroupSet groups = make_groups(4, {{0, 1}, {2, 3}});
  const std::vector<int> plan = plan_rank_shards(groups, 4);
  for (const int s : plan) EXPECT_LT(s, 2);  // only 2 shards get ranks
}

TEST(RankShardPlan, DynamicRegroupingStaysConsistentWithoutMovingRanks) {
  // Placement is fixed before the protocol is constructed and never
  // re-applied (Runtime::set_shard_plan rejects late installs), so when a
  // dynamic-grouping analysis merges groups after failures the plan is
  // deliberately NOT recomputed. Two properties keep that consistent:
  // recomputing for the merged grouping would still keep each merged group
  // whole (the planner never splits), and the merged plan is a coarsening —
  // any two ranks sharing an original group still share a shard, so the
  // original placement remains a valid refinement of the new grouping.
  const group::GroupSet initial =
      make_groups(8, {{0, 1}, {2, 3}, {4, 5}, {6, 7}});
  const std::vector<int> plan = plan_rank_shards(initial, 2);

  group::DynamicGrouper grouper(8);
  for (int g = 0; g < initial.num_groups(); ++g) {
    for (const mpi::RankId r : initial.members(g)) {
      grouper.on_message(initial.members(g).front(), r);
    }
  }
  // Post-failure rerouted traffic links the pairs up (the paper's collapse
  // criticism): {0,1}+{2,3} merge, then {4,5}+{6,7}.
  grouper.on_message(1, 2);
  grouper.on_message(5, 6);
  const group::GroupSet merged = grouper.current();
  ASSERT_EQ(merged.num_groups(), 2);

  const std::vector<int> replanned = plan_rank_shards(merged, 2);
  for (int g = 0; g < merged.num_groups(); ++g) {
    const int shard =
        replanned[static_cast<std::size_t>(merged.members(g).front())];
    for (const mpi::RankId r : merged.members(g)) {
      EXPECT_EQ(replanned[static_cast<std::size_t>(r)], shard);
    }
  }
  // The original plan never splits an original group either, so keeping it
  // is safe: every rank keeps a same-shard path to its old group.
  for (int g = 0; g < initial.num_groups(); ++g) {
    const int shard =
        plan[static_cast<std::size_t>(initial.members(g).front())];
    for (const mpi::RankId r : initial.members(g)) {
      EXPECT_EQ(plan[static_cast<std::size_t>(r)], shard);
    }
  }
  EXPECT_EQ(plan_rank_shards(merged, 2), replanned);  // still deterministic
}

}  // namespace
}  // namespace gcr::exp
