// Checkpoint substrate (image model, registry), metrics aggregation, and the
// CLI parser used by the bench/example binaries.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "ckpt/checkpointer.hpp"
#include "ckpt/image.hpp"
#include "core/metrics.hpp"
#include "util/cli.hpp"

namespace gcr {
namespace {

sim::ClusterParams small_cluster(int nodes, int servers) {
  sim::ClusterParams p;
  p.num_nodes = nodes;
  p.num_remote_servers = servers;
  p.local_disk = sim::StorageParams{100e6, 0.0};
  p.remote_server = sim::StorageParams{12.5e6, 0.0};
  p.jitter.enabled = false;
  return p;
}

sim::Co<void> timed_write(ckpt::Checkpointer& ck, int node, std::int64_t bytes,
                          sim::Time* done, sim::Engine& eng) {
  co_await ck.write_image(node, bytes);
  *done = eng.now();
}

TEST(Checkpointer, LocalImageTimeIsSetupPlusBandwidth) {
  sim::Cluster cluster(small_cluster(2, 0));
  ckpt::Checkpointer ck(cluster, {/*remote_storage=*/false, /*setup_s=*/0.05});
  sim::Time done = 0;
  cluster.engine().spawn(
      "w", timed_write(ck, 0, 100'000'000, &done, cluster.engine()));
  cluster.engine().run();
  EXPECT_NEAR(sim::to_seconds(done), 0.05 + 1.0, 1e-6);  // 100MB @ 100MB/s
}

TEST(Checkpointer, RemoteImagesContendOnSharedServers) {
  // 4 nodes, 2 servers: nodes 0,2 share server 0 and serialize; 1,3 share
  // server 1. Each 12.5MB image takes 1s of server time.
  sim::Cluster cluster(small_cluster(4, 2));
  ckpt::Checkpointer ck(cluster, {/*remote_storage=*/true, /*setup_s=*/0.0});
  std::vector<sim::Time> done(4, 0);
  for (int node = 0; node < 4; ++node) {
    cluster.engine().spawn("w", timed_write(ck, node, 12'500'000, &done[node],
                                            cluster.engine()));
  }
  cluster.engine().run();
  EXPECT_NEAR(sim::to_seconds(done[0]), 1.0, 1e-6);
  EXPECT_NEAR(sim::to_seconds(done[1]), 1.0, 1e-6);
  EXPECT_NEAR(sim::to_seconds(done[2]), 2.0, 1e-6);  // queued behind node 0
  EXPECT_NEAR(sim::to_seconds(done[3]), 2.0, 1e-6);
}

sim::Co<void> flush_zero(ckpt::Checkpointer* ck, sim::Time* done,
                         sim::Engine* eng) {
  co_await ck->flush_log(0, 0);
  *done = eng->now();
}

TEST(Checkpointer, FlushLogSkipsZeroBytes) {
  sim::Cluster cluster(small_cluster(2, 0));
  ckpt::Checkpointer ck(cluster);
  sim::Time done = 1;
  cluster.engine().spawn("f", flush_zero(&ck, &done, &cluster.engine()));
  cluster.engine().run();
  EXPECT_EQ(done, 0);  // no time passed
}

TEST(ImageRegistry, LatestWinsPerRank) {
  ckpt::ImageRegistry reg;
  EXPECT_EQ(reg.latest(0), nullptr);
  ckpt::StoredCheckpoint a;
  a.meta.rank = 0;
  a.meta.epoch = 1;
  reg.put(std::move(a));
  ckpt::StoredCheckpoint b;
  b.meta.rank = 0;
  b.meta.epoch = 2;
  reg.put(std::move(b));
  ASSERT_NE(reg.latest(0), nullptr);
  EXPECT_EQ(reg.latest(0)->meta.epoch, 2u);
  EXPECT_EQ(reg.count(), 1u);
  reg.clear();
  EXPECT_EQ(reg.latest(0), nullptr);
}

TEST(ImageRegistry, StagedImagesInvisibleUntilGroupCommit) {
  ckpt::ImageRegistry reg;
  auto staged = [](mpi::RankId rank, std::uint64_t epoch) {
    ckpt::StoredCheckpoint img;
    img.meta.rank = rank;
    img.meta.epoch = epoch;
    return img;
  };
  reg.put(staged(0, 1));  // a committed earlier epoch
  reg.stage(staged(0, 2));
  reg.stage(staged(1, 2));
  EXPECT_TRUE(reg.has_staged(0));
  EXPECT_TRUE(reg.has_staged(1));
  // Staged images are invisible to restore until the group commits.
  EXPECT_EQ(reg.latest(0)->meta.epoch, 1u);
  EXPECT_EQ(reg.latest(1), nullptr);
  reg.commit_group({0, 1}, 2);
  EXPECT_FALSE(reg.has_staged(0));
  EXPECT_EQ(reg.latest(0)->meta.epoch, 2u);
  EXPECT_EQ(reg.latest(1)->meta.epoch, 2u);
}

TEST(ImageRegistry, DiscardStagedRollsBackToPreviousEpoch) {
  ckpt::ImageRegistry reg;
  ckpt::StoredCheckpoint committed;
  committed.meta.rank = 3;
  committed.meta.epoch = 5;
  reg.put(std::move(committed));
  ckpt::StoredCheckpoint next;
  next.meta.rank = 3;
  next.meta.epoch = 6;
  reg.stage(std::move(next));
  // A failure before commit discards the stage (Interposer::rank_killed);
  // restore sees the previous epoch, never the torn image.
  reg.discard_staged(3);
  EXPECT_FALSE(reg.has_staged(3));
  EXPECT_EQ(reg.latest(3)->meta.epoch, 5u);
  reg.discard_staged(3);  // idempotent
}

TEST(Metrics, AggregatesSumPhases) {
  core::Metrics m;
  core::CkptRecord r;
  r.rank = 0;
  r.phases = {0.1, 0.2, 0.3, 0.4};
  m.ckpts.push_back(r);
  r.rank = 1;
  r.phases = {0.1, 0.2, 0.3, 0.0};
  m.ckpts.push_back(r);
  EXPECT_NEAR(m.aggregate_ckpt_time_s(), 1.6, 1e-12);
  EXPECT_NEAR(m.aggregate_coordination_time_s(), 1.0, 1e-12);  // excl. image
  EXPECT_NEAR(m.mean_ckpt_time_s(), 0.8, 1e-12);
  const auto mean = m.mean_phases();
  EXPECT_NEAR(mean.checkpoint, 0.3, 1e-12);
  EXPECT_NEAR(mean.finalize, 0.2, 1e-12);
  EXPECT_EQ(m.completed_rounds(2), 1);
  EXPECT_EQ(m.completed_rounds(3), 0);
}

TEST(Metrics, RestartAggregation) {
  core::Metrics m;
  core::RestartRecord r;
  r.begin = sim::from_seconds(1.0);
  r.end = sim::from_seconds(3.5);
  m.restarts.push_back(r);
  EXPECT_NEAR(m.aggregate_restart_time_s(), 2.5, 1e-9);
}

TEST(Metrics, CkptWindowsMatchRecords) {
  core::Metrics m;
  core::CkptRecord r;
  r.rank = 5;
  r.begin = 100;
  r.end = 200;
  m.ckpts.push_back(r);
  const auto windows = m.ckpt_windows();
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_EQ(windows[0].rank, 5);
  EXPECT_EQ(windows[0].begin, 100);
  EXPECT_EQ(windows[0].end, 200);
}

std::vector<char*> argv_of(std::vector<std::string>& args) {
  std::vector<char*> out;
  for (auto& a : args) out.push_back(a.data());
  return out;
}

TEST(Cli, ParsesAllForms) {
  std::vector<std::string> args{"prog", "--alpha=5", "--beta", "2.5",
                                "--flag", "--list=1,2,3"};
  auto argv = argv_of(args);
  Cli cli(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(cli.get_int("alpha", 0, ""), 5);
  EXPECT_DOUBLE_EQ(cli.get_double("beta", 0, ""), 2.5);
  EXPECT_TRUE(cli.get_bool("flag", false, ""));
  EXPECT_EQ(cli.get_int_list("list", {}, ""),
            (std::vector<std::int64_t>{1, 2, 3}));
  cli.finish();
}

TEST(Cli, DefaultsWhenAbsent) {
  std::vector<std::string> args{"prog"};
  auto argv = argv_of(args);
  Cli cli(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(cli.get_int("n", 42, ""), 42);
  EXPECT_EQ(cli.get_string("s", "dflt", ""), "dflt");
  EXPECT_FALSE(cli.get_bool("b", false, ""));
  EXPECT_EQ(cli.get_int_list("l", {7, 8}, ""),
            (std::vector<std::int64_t>{7, 8}));
  cli.finish();
}

TEST(CliDeathTest, RejectsUnknownAndMalformed) {
  {
    std::vector<std::string> args{"prog", "--nope=1"};
    auto argv = argv_of(args);
    Cli cli(static_cast<int>(argv.size()), argv.data());
    (void)cli.get_int("known", 0, "");
    EXPECT_EXIT(cli.finish(), ::testing::ExitedWithCode(2), "unknown flag");
  }
  {
    std::vector<std::string> args{"prog", "--n=abc"};
    auto argv = argv_of(args);
    Cli cli(static_cast<int>(argv.size()), argv.data());
    EXPECT_EXIT((void)cli.get_int("n", 0, ""), ::testing::ExitedWithCode(2),
                "expects an integer");
  }
}

}  // namespace
}  // namespace gcr
