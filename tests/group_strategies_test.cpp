// Canned grouping strategies, group definition files, GroupSet invariants,
// and the Gopalan-Nagarajan dynamic grouping baseline.
#include <gtest/gtest.h>

#include <sstream>

#include "group/dynamic.hpp"
#include "group/groupfile.hpp"
#include "group/strategies.hpp"

namespace gcr::group {
namespace {

TEST(Strategies, NormIsOneGlobalGroup) {
  GroupSet g = make_norm(8);
  EXPECT_EQ(g.num_groups(), 1);
  EXPECT_EQ(g.largest_group_size(), 8u);
  EXPECT_TRUE(g.same_group(0, 7));
}

TEST(Strategies, Gp1IsAllSingletons) {
  GroupSet g = make_gp1(5);
  EXPECT_EQ(g.num_groups(), 5);
  EXPECT_EQ(g.largest_group_size(), 1u);
  EXPECT_FALSE(g.same_group(0, 1));
}

TEST(Strategies, SequentialSplitsEvenly) {
  GroupSet g = make_sequential(10, 4);  // sizes 3,3,2,2
  EXPECT_EQ(g.num_groups(), 4);
  EXPECT_EQ(g.largest_group_size(), 3u);
  EXPECT_EQ(g.smallest_group_size(), 2u);
  EXPECT_TRUE(g.same_group(0, 2));
  EXPECT_FALSE(g.same_group(2, 3));
}

TEST(Strategies, RoundRobinModAssignment) {
  GroupSet g = make_round_robin(32, 4);  // the paper's Table 1 shape
  EXPECT_EQ(g.num_groups(), 4);
  for (int r = 0; r < 32; ++r) {
    EXPECT_TRUE(g.same_group(r, r % 4));
  }
  EXPECT_EQ(g.members(0), (std::vector<mpi::RankId>{0, 4, 8, 12, 16, 20, 24, 28}));
}

TEST(Strategies, BlocksOfWidth) {
  GroupSet g = make_blocks(10, 4);  // {0..3} {4..7} {8,9}
  EXPECT_EQ(g.num_groups(), 3);
  EXPECT_TRUE(g.same_group(0, 3));
  EXPECT_FALSE(g.same_group(3, 4));
  EXPECT_EQ(g.smallest_group_size(), 2u);
}

TEST(GroupSet, ToStringReadable) {
  GroupSet g = make_round_robin(4, 2);
  EXPECT_EQ(g.to_string(), "{0,2} {1,3}");
}

TEST(GroupSetDeathTest, RejectsNonPartition) {
  EXPECT_DEATH(GroupSet(3, {{0, 1}}), "cover");
  EXPECT_DEATH(GroupSet(2, {{0, 1}, {1}}), "two groups");
  EXPECT_DEATH(GroupSet(2, {{0, 5}}), "out of range");
}

TEST(GroupFile, RoundTrip) {
  GroupSet g = make_round_robin(12, 3);
  std::stringstream ss;
  write_groupfile(ss, g);
  auto back = read_groupfile(ss);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, g);
}

TEST(GroupFile, RejectsMalformed) {
  {
    std::stringstream ss("group 0 1\n");  // missing nranks
    EXPECT_FALSE(read_groupfile(ss).has_value());
  }
  {
    std::stringstream ss("nranks 4\ngroup 0 1\n");  // 2,3 uncovered
    EXPECT_FALSE(read_groupfile(ss).has_value());
  }
  {
    std::stringstream ss("nranks 2\ngroup 0 1\ngroup 1\n");  // duplicate
    EXPECT_FALSE(read_groupfile(ss).has_value());
  }
  {
    std::stringstream ss("nranks 2\nbanana 0 1\n");
    EXPECT_FALSE(read_groupfile(ss).has_value());
  }
}

TEST(Dynamic, MergesOnCommunication) {
  DynamicGrouper d(4);
  EXPECT_EQ(d.num_groups(), 4);
  d.on_message(0, 1);
  EXPECT_EQ(d.num_groups(), 3);
  d.on_message(0, 1);  // repeat: no change
  EXPECT_EQ(d.num_groups(), 3);
  d.on_message(2, 3);
  d.on_message(1, 2);  // links everything
  EXPECT_EQ(d.num_groups(), 1);
  EXPECT_TRUE(d.current().same_group(0, 3));
}

TEST(Dynamic, ReplayDetectsCollapse) {
  // A chain of messages linking all processes collapses the grouping to a
  // single global group — the paper's criticism of the dynamic scheme (§6).
  trace::Trace t;
  for (int i = 0; i + 1 < 8; ++i) {
    t.push_back(trace::TraceRecord{0, trace::EventKind::kSend, i, i + 1, 0, 1});
  }
  auto result = replay_dynamic(8, t);
  EXPECT_EQ(result.final_groups.num_groups(), 1);
  EXPECT_EQ(result.messages_until_collapse, 7);
}

TEST(Dynamic, DisjointTrafficNeverCollapses) {
  trace::Trace t;
  t.push_back(trace::TraceRecord{0, trace::EventKind::kSend, 0, 1, 0, 1});
  t.push_back(trace::TraceRecord{0, trace::EventKind::kSend, 2, 3, 0, 1});
  auto result = replay_dynamic(4, t);
  EXPECT_EQ(result.final_groups.num_groups(), 2);
  EXPECT_EQ(result.messages_until_collapse, -1);
}

}  // namespace
}  // namespace gcr::group
