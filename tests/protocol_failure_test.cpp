// Failure injection and recovery: group restarts mid-run under many
// schedules. Every run that finishes has passed the runtime's per-consume
// sequence/checksum verification — loss, duplication, or reordering anywhere
// in the replay/skip machinery would abort.
#include <gtest/gtest.h>

#include "apps/simple.hpp"
#include "exp/experiment.hpp"
#include "group/strategies.hpp"

namespace gcr::exp {
namespace {

AppFactory stencil_app(int width, std::uint64_t iters) {
  return [width, iters](int n) {
    apps::Stencil1dParams p;
    p.iterations = iters;
    p.cluster_width = width;
    p.compute_s = 0.01;
    return apps::make_stencil1d(n, p);
  };
}

AppFactory ring_app(std::uint64_t iters) {
  return [iters](int n) {
    apps::RingParams p;
    p.iterations = iters;
    p.compute_s = 0.012;
    return apps::make_ring(n, p);
  };
}

TEST(Failure, GroupFailureMidRunRecovers) {
  ExperimentConfig cfg;
  cfg.app = ring_app(30);
  cfg.nranks = 8;
  cfg.groups = group::make_round_robin(8, 4);
  cfg.checkpoints = true;
  cfg.schedule.first_at_s = 0.1;
  cfg.failures = {{2, 0.3}};
  ExperimentResult res = run_experiment(cfg);
  ASSERT_TRUE(res.finished);
  EXPECT_EQ(res.failures_injected, 1);
  EXPECT_EQ(res.metrics.restarts.size(), 2u);
  // The failure costs wall time: detection + relaunch + re-execution.
  EXPECT_GT(res.exec_time_s, 30 * 0.012);
}

TEST(Failure, RestartUsesLatestOfMultipleCheckpoints) {
  ExperimentConfig cfg;
  cfg.app = ring_app(60);
  cfg.nranks = 6;
  cfg.groups = group::make_round_robin(6, 3);
  cfg.checkpoints = true;
  cfg.schedule.first_at_s = 0.1;
  cfg.schedule.interval_s = 0.15;
  cfg.failures = {{0, 0.62}};
  ExperimentResult res = run_experiment(cfg);
  ASSERT_TRUE(res.finished);
  EXPECT_EQ(res.failures_injected, 1);
  EXPECT_GE(res.checkpoints_completed, 2);
}

TEST(Failure, SequentialFailuresOfDifferentGroups) {
  ExperimentConfig cfg;
  cfg.app = stencil_app(4, 60);
  cfg.nranks = 8;
  cfg.groups = group::make_blocks(8, 4);
  cfg.checkpoints = true;
  cfg.schedule.first_at_s = 0.1;
  cfg.schedule.interval_s = 0.2;
  // Spaced beyond detect+relaunch so every failure hits a live group and
  // runs a full recovery (overlapping schedules are covered by
  // recovery_concurrent_test.cpp and the torture harness).
  cfg.recovery.detect_s = 0.2;
  cfg.recovery.relaunch_s = 0.2;
  cfg.failures = {{0, 0.3}, {1, 1.2}, {0, 2.1}};
  ExperimentResult res = run_experiment(cfg);
  ASSERT_TRUE(res.finished);
  EXPECT_EQ(res.failures_injected, 3);
  EXPECT_EQ(res.recoveries_completed, 3);
  EXPECT_EQ(res.metrics.restarts.size(), 12u);  // 3 failures x 4 ranks
}

TEST(Failure, RepeatedFailureOfSameGroup) {
  ExperimentConfig cfg;
  cfg.app = ring_app(40);
  cfg.nranks = 4;
  cfg.groups = group::make_round_robin(4, 2);
  cfg.checkpoints = true;
  cfg.schedule.first_at_s = 0.05;
  cfg.schedule.interval_s = 0.1;
  cfg.failures = {{1, 0.2}, {1, 0.5}, {1, 0.8}};
  // Fast detection/relaunch so all three failures fit inside the run.
  cfg.recovery.detect_s = 0.1;
  cfg.recovery.relaunch_s = 0.1;
  ExperimentResult res = run_experiment(cfg);
  ASSERT_TRUE(res.finished);
  EXPECT_EQ(res.failures_injected, 3);
}

TEST(Failure, FailureBeforeFirstCheckpointReExecutesFromZero) {
  ExperimentConfig cfg;
  cfg.app = ring_app(20);
  cfg.nranks = 4;
  cfg.groups = group::make_round_robin(4, 2);
  cfg.checkpoints = true;
  cfg.schedule.first_at_s = 5.0;  // after the failure
  cfg.failures = {{0, 0.1}};
  ExperimentResult res = run_experiment(cfg);
  ASSERT_TRUE(res.finished);
  for (const auto& r : res.metrics.restarts) {
    EXPECT_LT(r.image_read_s, 0.01);  // restarted from scratch, no image
  }
}

TEST(Failure, Gp1SingleRankFailureOnlyRestartsThatRank) {
  ExperimentConfig cfg;
  cfg.app = ring_app(30);
  cfg.nranks = 6;
  cfg.groups = group::make_gp1(6);
  cfg.checkpoints = true;
  cfg.schedule.first_at_s = 0.1;
  cfg.failures = {{3, 0.3}};  // group 3 == rank 3
  ExperimentResult res = run_experiment(cfg);
  ASSERT_TRUE(res.finished);
  ASSERT_EQ(res.metrics.restarts.size(), 1u);
  EXPECT_EQ(res.metrics.restarts[0].rank, 3);
}

TEST(Failure, NormFailureRestartsEverything) {
  ExperimentConfig cfg;
  cfg.app = ring_app(60);
  cfg.nranks = 6;
  cfg.groups = group::make_norm(6);
  cfg.checkpoints = true;
  cfg.schedule.first_at_s = 0.1;
  cfg.failures = {{0, 0.3}};
  ExperimentResult res = run_experiment(cfg);
  ASSERT_TRUE(res.finished);
  EXPECT_EQ(res.metrics.restarts.size(), 6u);  // global rollback
}

class FailureSweepTest : public ::testing::TestWithParam<int> {};

// Property sweep: random failure times and grouping; every run must finish
// (the seq/checksum invariant is enforced on every consume).
TEST_P(FailureSweepTest, AlwaysRecoversAndFinishes) {
  const int seed = GetParam();
  gcr::Rng rng(static_cast<std::uint64_t>(seed) * 977 + 13);
  ExperimentConfig cfg;
  cfg.app = ring_app(35);
  cfg.nranks = 8;
  cfg.seed = static_cast<std::uint64_t>(seed);
  const int ngroups = 1 << rng.next_below(4);  // 1,2,4,8
  cfg.groups = group::make_round_robin(8, ngroups);
  cfg.checkpoints = true;
  cfg.schedule.first_at_s = 0.05 + rng.next_double() * 0.2;
  cfg.schedule.interval_s = 0.1 + rng.next_double() * 0.2;
  const int nfailures = 1 + static_cast<int>(rng.next_below(3));
  for (int i = 0; i < nfailures; ++i) {
    cfg.failures.push_back(
        {static_cast<int>(rng.next_below(static_cast<std::uint64_t>(ngroups))),
         0.15 + rng.next_double() * 1.2});
  }
  ExperimentResult res = run_experiment(cfg);
  EXPECT_TRUE(res.finished);
  // Failures deferred past job completion are skipped, never lost mid-way.
  EXPECT_LE(res.failures_injected, nfailures);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FailureSweepTest, ::testing::Range(1, 16));

}  // namespace
}  // namespace gcr::exp
