// Randomized protocol-torture harness (ISSUE 4): N seeds x random fault
// schedules from every fault-model family against small CG/SP runs.
//
// Each seed draws a random grouping, checkpoint schedule, recovery options
// (including the concurrent-restore-slot count), and fault model, then
// asserts the protocol-level invariants:
//   * the job completes (no rank left suspended: job_finished requires
//     every app coroutine to return, and the run would otherwise hit the
//     watchdog and report finished == false);
//   * recovery bookkeeping settles: failures_injected ==
//     recoveries_completed + recoveries_aborted (nothing dropped mid-way),
//     and restart records are consistent with the group sizes;
//   * reruns with the same seed are byte-identical (every double compared
//     exactly, not approximately).
// On top of that, every consume inside the run passes the runtime's
// sequence/checksum verification, so loss, duplication, or reordering
// anywhere in the kill/queue/defer/replay machinery aborts the test.
#include <gtest/gtest.h>

#include <cstdint>

#include "apps/cg.hpp"
#include "apps/service.hpp"
#include "apps/sp.hpp"
#include "exp/experiment.hpp"
#include "group/strategies.hpp"
#include "sim/churn.hpp"
#include "sim/faults.hpp"
#include "util/rng.hpp"

namespace gcr::exp {
namespace {

struct RunSummary {
  double exec_time_s;
  int failures_injected;
  int failures_absorbed;
  int recoveries_completed;
  int recoveries_aborted;
  int checkpoints_completed;
  std::size_t restart_records;
  std::size_t ckpt_records;
  std::int64_t app_messages;
  std::int64_t app_bytes;
  std::int64_t logged_bytes;
  std::int64_t resend_messages;
  std::int64_t resend_bytes;
  double last_restart_end;

  bool operator==(const RunSummary&) const = default;
};

RunSummary summarize(const ExperimentResult& res) {
  RunSummary s{};
  s.exec_time_s = res.exec_time_s;
  s.failures_injected = res.failures_injected;
  s.failures_absorbed = res.failures_absorbed;
  s.recoveries_completed = res.recoveries_completed;
  s.recoveries_aborted = res.recoveries_aborted;
  s.checkpoints_completed = res.checkpoints_completed;
  s.restart_records = res.metrics.restarts.size();
  s.ckpt_records = res.metrics.ckpts.size();
  s.app_messages = res.app_messages;
  s.app_bytes = res.app_bytes;
  s.logged_bytes = res.metrics.logged_bytes;
  s.resend_messages = res.metrics.resend_messages;
  s.resend_bytes = res.metrics.resend_bytes;
  s.last_restart_end = res.metrics.restarts.empty()
                           ? 0.0
                           : sim::to_seconds(res.metrics.restarts.back().end);
  return s;
}

/// Small CG (8 ranks, ~1 s fault-free) or SP (9 ranks, ~1.6 s fault-free).
ExperimentConfig torture_config(std::uint64_t seed) {
  gcr::Rng rng(mix_seed(0x70127053, seed));
  ExperimentConfig cfg;
  cfg.seed = seed;
  if (seed % 2 == 0) {
    apps::CgParams p;
    p.na = 8000;
    p.nonzer = 4;
    p.outer_iters = 8;
    p.inner_steps = 6;
    cfg.app = [p](int n) { return apps::make_cg(n, p); };
    cfg.nranks = 8;  // power of two (NPB)
    const int choices[] = {1, 2, 4, 8};
    cfg.groups = group::make_round_robin(
        8, choices[rng.next_below(4)]);
  } else {
    apps::SpParams p;
    p.grid_points = 40;
    p.niter = 24;
    p.modeled_iters = 12;
    cfg.app = [p](int n) { return apps::make_sp(n, p); };
    cfg.nranks = 9;  // perfect square (NPB)
    const int choices[] = {1, 3, 9};
    cfg.groups = group::make_round_robin(9, choices[rng.next_below(3)]);
  }

  cfg.checkpoints = true;
  cfg.schedule.first_at_s = 0.05 + rng.next_double() * 0.15;
  cfg.schedule.interval_s = 0.2 + rng.next_double() * 0.3;
  cfg.schedule.round_spread_s = rng.next_double() * 0.08;

  cfg.recovery.detect_s = 0.05 + rng.next_double() * 0.15;
  cfg.recovery.relaunch_s = 0.05 + rng.next_double() * 0.15;
  cfg.recovery.max_concurrent_restores =
      1 + static_cast<int>(rng.next_below(2));

  // Aggressive fault pressure: several expected failures per run, with
  // bursts/traces engineered to overlap recovery and checkpoint windows.
  const int n = cfg.nranks;
  switch (rng.next_below(4)) {
    case 0:
      cfg.fault_model.kind = sim::FaultModelKind::kExponential;
      cfg.fault_model.mtbf_s = 6.0 + rng.next_double() * 8.0;
      break;
    case 1:
      cfg.fault_model.kind = sim::FaultModelKind::kWeibull;
      cfg.fault_model.mtbf_s = 6.0 + rng.next_double() * 8.0;
      cfg.fault_model.weibull_shape = 0.5 + rng.next_double();
      break;
    case 2:
      cfg.fault_model.kind = sim::FaultModelKind::kBurst;
      cfg.fault_model.burst_mtbf_s = 1.5 + rng.next_double() * 2.0;
      cfg.fault_model.burst_max_nodes =
          1 + static_cast<int>(rng.next_below(4));
      cfg.fault_model.burst_spread_s = 0.05 + rng.next_double() * 0.3;
      break;
    default: {
      cfg.fault_model.kind = sim::FaultModelKind::kTrace;
      const int k = 2 + static_cast<int>(rng.next_below(4));
      for (int i = 0; i < k; ++i) {
        const double at = 0.2 + rng.next_double() * 2.5;
        const int node = static_cast<int>(
            rng.next_below(static_cast<std::uint64_t>(n)));
        cfg.fault_model.schedule.push_back({at, node});
        if (rng.next_below(3) == 0) {
          // Same-instant second fault on another node.
          cfg.fault_model.schedule.push_back(
              {at, static_cast<int>(
                       rng.next_below(static_cast<std::uint64_t>(n)))});
        }
      }
      break;
    }
  }
  cfg.max_sim_s = 300.0;  // a stuck run fails fast instead of at 50000 s
  return cfg;
}

class FaultTortureTest : public ::testing::TestWithParam<int> {};

TEST_P(FaultTortureTest, InvariantsHoldAndRerunsAreIdentical) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const ExperimentConfig cfg = torture_config(seed);
  const ExperimentResult res = run_experiment(cfg);

  ASSERT_TRUE(res.finished)
      << "seed " << seed << " hit the watchdog; injected="
      << res.failures_injected << " completed=" << res.recoveries_completed
      << " aborted=" << res.recoveries_aborted;

  // Every accepted failure's recovery settled one way or the other.
  EXPECT_EQ(res.failures_injected,
            res.recoveries_completed + res.recoveries_aborted)
      << "seed " << seed;
  EXPECT_GE(res.failures_absorbed, 0);

  // Restart records: every completed recovery restarted a whole group; an
  // aborted one contributes at most a group's worth.
  const int gsize =
      cfg.nranks / cfg.groups->num_groups();  // round-robin: equal sizes
  const auto lo = static_cast<std::size_t>(res.recoveries_completed) *
                  static_cast<std::size_t>(gsize);
  const auto hi = static_cast<std::size_t>(res.recoveries_completed +
                                           res.recoveries_aborted) *
                  static_cast<std::size_t>(gsize);
  EXPECT_GE(res.metrics.restarts.size(), lo) << "seed " << seed;
  EXPECT_LE(res.metrics.restarts.size(), hi) << "seed " << seed;
  for (const auto& r : res.metrics.restarts) {
    EXPECT_GE(sim::to_seconds(r.end), sim::to_seconds(r.begin));
  }

  // Byte-identical rerun: same seed, same config => same history, compared
  // field-exact (doubles included).
  const ExperimentResult res2 = run_experiment(cfg);
  EXPECT_TRUE(summarize(res) == summarize(res2))
      << "seed " << seed << " is not deterministic: exec " << res.exec_time_s
      << " vs " << res2.exec_time_s << ", failures "
      << res.failures_injected << " vs " << res2.failures_injected;
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultTortureTest, ::testing::Range(1, 9));

// ---------------------------------------------------------------------------
// Churn torture (ISSUE 10): the same randomized-invariant harness, but with
// a churn model (drains / spot reclaims / rolling restarts / random traces)
// layered on top of random faults against the continuous-load service app.
// Every departure eventually rejoins, so job completion also proves that
// drains, reclaim kills, splits, merges and rejoin restores all unwound.

struct ChurnSummary {
  RunSummary base;
  int drains_completed;
  int reclaims_clean;
  int reclaims_forced;
  int joins_completed;
  int joins_aborted;
  int splits_installed;
  int merges_installed;
  int final_num_groups;
  double availability;
  std::uint64_t service_completed;
  std::uint64_t slo_misses;
  double p999_latency_s;

  bool operator==(const ChurnSummary&) const = default;
};

ChurnSummary churn_summarize(const ExperimentResult& res) {
  ChurnSummary s{};
  s.base = summarize(res);
  s.drains_completed = res.drains_completed;
  s.reclaims_clean = res.reclaims_clean;
  s.reclaims_forced = res.reclaims_forced;
  s.joins_completed = res.joins_completed;
  s.joins_aborted = res.joins_aborted;
  s.splits_installed = res.splits_installed;
  s.merges_installed = res.merges_installed;
  s.final_num_groups = res.final_num_groups;
  s.availability = res.availability;
  s.service_completed = res.service ? res.service->completed : 0;
  s.slo_misses = res.service ? res.service->slo_misses : 0;
  s.p999_latency_s = res.service ? res.service->p999_latency_s : 0.0;
  return s;
}

/// Service app (8 ranks, ~6-12 s of arrivals) under a random churn model
/// plus optional random faults.
ExperimentConfig churn_torture_config(std::uint64_t seed) {
  gcr::Rng rng(mix_seed(0xC4021E70, seed));
  apps::ServiceParams sp;
  sp.requests = 120 + 30 * rng.next_below(4);
  sp.arrival_rate_hz = 20.0;
  sp.service_s = 0.003 + rng.next_double() * 0.004;
  sp.slo_s = 0.1;
  sp.mem_bytes = 4ll << 20;
  sp.seed = seed;
  const double horizon =
      static_cast<double>(sp.requests) / sp.arrival_rate_hz;

  ExperimentConfig cfg;
  cfg.app = [sp](int n) { return apps::make_service(n, sp); };
  cfg.nranks = 8;
  cfg.seed = seed;
  const int choices[] = {1, 2, 4, 8};
  cfg.groups = group::make_round_robin(8, choices[rng.next_below(4)]);

  cfg.checkpoints = true;
  cfg.schedule.first_at_s = 0.1 + rng.next_double() * 0.2;
  cfg.schedule.interval_s = 0.4 + rng.next_double() * 0.4;
  cfg.schedule.round_spread_s = rng.next_double() * 0.08;
  cfg.recovery.detect_s = 0.05 + rng.next_double() * 0.1;
  cfg.recovery.relaunch_s = 0.05 + rng.next_double() * 0.1;
  cfg.churn_options.poll_s = 0.05;
  cfg.churn_options.retry_s = 0.25;

  switch (rng.next_below(4)) {
    case 0:
      cfg.churn.kind = sim::ChurnModelKind::kDrains;
      cfg.churn.drain_mtbd_s = 2.0 + rng.next_double() * 2.0;
      cfg.churn.outage_s = 0.5 + rng.next_double() * 0.5;
      break;
    case 1:
      // Warning windows straddling the commit time: some reclaims exit
      // clean, some expire into forced group failures.
      cfg.churn.kind = sim::ChurnModelKind::kSpot;
      cfg.churn.drain_mtbd_s = 2.5 + rng.next_double() * 2.0;
      cfg.churn.outage_s = 0.5 + rng.next_double() * 0.5;
      cfg.churn.warning_s = 0.2 + rng.next_double() * 1.3;
      break;
    case 2:
      cfg.churn.kind = sim::ChurnModelKind::kRolling;
      cfg.churn.rolling_start_s = 0.5;
      cfg.churn.rolling_step_s = 0.8 * horizon / 8.0;
      cfg.churn.outage_s = 0.3 + rng.next_double() * 0.3;
      break;
    default: {
      cfg.churn.kind = sim::ChurnModelKind::kTrace;
      const int k = 2 + static_cast<int>(rng.next_below(3));
      for (int i = 0; i < k; ++i) {
        sim::ChurnEvent ev;
        ev.at_s = 0.3 + rng.next_double() * 0.7 * horizon;
        ev.node = static_cast<int>(rng.next_below(8));
        double down_at = ev.at_s;
        if (rng.next_below(2) == 0) {
          ev.kind = sim::ChurnEventKind::kReclaim;
          ev.warning_s = 0.2 + rng.next_double() * 1.0;
          down_at += ev.warning_s;
        } else {
          ev.kind = sim::ChurnEventKind::kDrain;
        }
        cfg.churn.schedule.push_back(ev);
        cfg.churn.schedule.push_back({down_at + 0.4 + rng.next_double() * 0.8,
                                      ev.node, sim::ChurnEventKind::kJoin,
                                      0.0});
      }
      break;
    }
  }

  // Surprise faults on top of the planned churn, on a third of the seeds.
  switch (rng.next_below(3)) {
    case 0:
      cfg.fault_model.kind = sim::FaultModelKind::kExponential;
      cfg.fault_model.mtbf_s = 8.0 + rng.next_double() * 8.0;
      break;
    case 1: {
      cfg.fault_model.kind = sim::FaultModelKind::kTrace;
      const int k = 1 + static_cast<int>(rng.next_below(2));
      for (int i = 0; i < k; ++i) {
        cfg.fault_model.schedule.push_back(
            {0.3 + rng.next_double() * 0.7 * horizon,
             static_cast<int>(rng.next_below(8))});
      }
      break;
    }
    default:
      break;  // churn only
  }

  cfg.max_sim_s = 300.0;
  return cfg;
}

class ChurnTortureTest : public ::testing::TestWithParam<int> {};

TEST_P(ChurnTortureTest, InvariantsHoldAndRerunsAreIdentical) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const ExperimentConfig cfg = churn_torture_config(seed);
  const ExperimentResult res = run_experiment(cfg);

  ASSERT_TRUE(res.finished)
      << "seed " << seed << " hit the watchdog; injected="
      << res.failures_injected << " completed=" << res.recoveries_completed
      << " aborted=" << res.recoveries_aborted << " drains="
      << res.drains_completed << " reclaims=" << res.reclaims_clean << "+"
      << res.reclaims_forced << " joins=" << res.joins_completed;

  // The failure books settle exactly as without churn: planned departures
  // never enter them, forced reclaims enter as ordinary failures.
  EXPECT_EQ(res.failures_injected,
            res.recoveries_completed + res.recoveries_aborted)
      << "seed " << seed;

  // Every join the recovery layer admitted targeted a clean departure
  // (forced reclaims re-enter through the failure path instead).
  EXPECT_LE(res.joins_completed + res.joins_aborted,
            res.drains_completed + res.reclaims_clean)
      << "seed " << seed;
  EXPECT_GE(res.availability, 0.0);
  EXPECT_LE(res.availability, 1.0);

  // job_finished requires every rank's coroutine to return, so a finished
  // run served the entire open-loop stream despite churn + faults.
  ASSERT_TRUE(res.service.has_value());
  EXPECT_EQ(res.service->completed, res.service->requests) << "seed " << seed;

  const ExperimentResult res2 = run_experiment(cfg);
  EXPECT_TRUE(churn_summarize(res) == churn_summarize(res2))
      << "seed " << seed << " is not deterministic: exec " << res.exec_time_s
      << " vs " << res2.exec_time_s << ", drains " << res.drains_completed
      << " vs " << res2.drains_completed << ", avail " << res.availability
      << " vs " << res2.availability;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChurnTortureTest, ::testing::Range(1, 9));

}  // namespace
}  // namespace gcr::exp
