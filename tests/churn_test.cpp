// Elastic churn semantics (DESIGN.md §16): drains are not failures,
// reclaim warnings convert to checkpoint-on-warning exits, rolling
// upgrades visit every node exactly once, and rejoined nodes are admitted
// back into a group by the traffic-affinity planner.
#include <gtest/gtest.h>

#include <cstdint>

#include "apps/service.hpp"
#include "exp/experiment.hpp"
#include "group/strategies.hpp"
#include "sim/churn.hpp"

namespace gcr::exp {
namespace {

constexpr int kRanks = 8;

/// Continuous-load service app sized so churn completes well before the
/// request stream ends (~12 s of arrivals).
ExperimentConfig service_config(std::uint64_t seed = 1) {
  apps::ServiceParams sp;
  sp.requests = 240;
  sp.arrival_rate_hz = 20.0;
  sp.service_s = 0.005;
  sp.slo_s = 0.1;
  sp.mem_bytes = 8ll << 20;
  sp.seed = seed;
  ExperimentConfig cfg;
  cfg.app = [sp](int n) { return apps::make_service(n, sp); };
  cfg.nranks = kRanks;
  cfg.seed = seed;
  cfg.groups = group::make_norm(kRanks);
  cfg.checkpoints = true;
  cfg.schedule.first_at_s = 0.5;
  cfg.schedule.interval_s = 1.5;
  cfg.schedule.round_spread_s = 0.1;
  cfg.recovery.detect_s = 0.2;
  cfg.recovery.relaunch_s = 0.2;
  cfg.churn_options.poll_s = 0.05;
  cfg.max_sim_s = 300.0;
  return cfg;
}

TEST(ChurnTest, DrainIsNotAFailureAndRejoinsThroughMerge) {
  ExperimentConfig cfg = service_config();
  cfg.churn.kind = sim::ChurnModelKind::kTrace;
  cfg.churn.schedule = {
      {2.0, 3, sim::ChurnEventKind::kDrain, 0.0},
      {5.0, 3, sim::ChurnEventKind::kJoin, 0.0},
  };
  const ExperimentResult res = run_experiment(cfg);
  ASSERT_TRUE(res.finished);
  // A planned drain is not a failure; nothing enters the recovery books.
  EXPECT_EQ(res.failures_injected, 0);
  EXPECT_EQ(res.recoveries_completed, 0);
  EXPECT_EQ(res.recoveries_aborted, 0);
  EXPECT_EQ(res.drains_completed, 1);
  // NORM: the departing rank is split out of the global group first...
  EXPECT_EQ(res.splits_installed, 1);
  // ...and after the rejoin the planner merges it back (service traffic
  // links every rank), restoring the single global group.
  EXPECT_EQ(res.joins_completed, 1);
  EXPECT_EQ(res.merges_installed, 1);
  EXPECT_EQ(res.final_num_groups, 1);
  // The outage (departure -> rejoin completion) is charged to availability.
  EXPECT_LT(res.availability, 1.0);
  EXPECT_GT(res.availability, 0.5);
  // The open-loop stream still completed every request.
  ASSERT_TRUE(res.service.has_value());
  EXPECT_EQ(res.service->completed, res.service->requests);
}

TEST(ChurnTest, ReclaimWarningTriggersCheckpointBeforeKill) {
  ExperimentConfig cfg = service_config();
  // No periodic schedule: the ONLY way an image can exist is the
  // checkpoint-on-warning the reclaim path demands before the kill.
  cfg.checkpoints = false;
  cfg.churn.kind = sim::ChurnModelKind::kTrace;
  cfg.churn.schedule = {
      {2.0, 5, sim::ChurnEventKind::kReclaim, 5.0},
      {9.0, 5, sim::ChurnEventKind::kJoin, 0.0},
  };
  const ExperimentResult res = run_experiment(cfg);
  ASSERT_TRUE(res.finished);
  EXPECT_EQ(res.reclaims_clean, 1);
  EXPECT_EQ(res.reclaims_forced, 0);
  EXPECT_EQ(res.failures_injected, 0);
  // The warning window produced a committed checkpoint before the node
  // was taken.
  EXPECT_GE(res.checkpoints_completed, 1);
  EXPECT_EQ(res.joins_completed, 1);
}

TEST(ChurnTest, ExpiredReclaimWarningForcesGroupFailure) {
  ExperimentConfig cfg = service_config();
  cfg.churn.kind = sim::ChurnModelKind::kTrace;
  // 1 ms of notice cannot fit quiescence + commit: the node is lost and
  // the whole group fails through the ordinary failure path.
  cfg.churn.schedule = {
      {2.0, 5, sim::ChurnEventKind::kReclaim, 0.001},
  };
  const ExperimentResult res = run_experiment(cfg);
  ASSERT_TRUE(res.finished);
  EXPECT_EQ(res.reclaims_forced, 1);
  EXPECT_EQ(res.reclaims_clean, 0);
  EXPECT_EQ(res.failures_injected, 1);
  EXPECT_EQ(res.recoveries_completed + res.recoveries_aborted, 1);
  EXPECT_EQ(res.drains_completed, 0);
}

TEST(ChurnTest, RollingUpgradeVisitsEveryNodeExactlyOnce) {
  ExperimentConfig cfg = service_config();
  // GP1: every rank is already a singleton, so a rolling upgrade needs no
  // splits and (cap 1) no merges — pure drain/join cycling.
  cfg.groups = group::make_gp1(kRanks);
  cfg.churn.kind = sim::ChurnModelKind::kRolling;
  cfg.churn.rolling_start_s = 1.0;
  cfg.churn.rolling_step_s = 1.0;
  cfg.churn.outage_s = 0.5;
  const ExperimentResult res = run_experiment(cfg);
  ASSERT_TRUE(res.finished);
  EXPECT_EQ(res.drains_completed, kRanks);
  EXPECT_EQ(res.joins_completed, kRanks);
  EXPECT_EQ(res.failures_injected, 0);
  EXPECT_EQ(res.splits_installed, 0);
  EXPECT_EQ(res.merges_installed, 0);
  EXPECT_EQ(res.final_num_groups, kRanks);
  ASSERT_TRUE(res.service.has_value());
  EXPECT_EQ(res.service->completed, res.service->requests);
}

TEST(ChurnTest, JoinProducesALiveRankAdmittedIntoAGroup) {
  ExperimentConfig cfg = service_config();
  // Two sequential groups of four; rank 2 drains out of group 0 and must
  // be merged back into it (its ring partners are all in group 0).
  cfg.groups = group::make_sequential(kRanks, 2);
  apps::ServiceParams sp;
  sp.requests = 240;
  sp.arrival_rate_hz = 20.0;
  sp.service_s = 0.005;
  sp.slo_s = 0.1;
  sp.mem_bytes = 8ll << 20;
  sp.cluster_width = 4;  // partner ring stays inside each group of 4
  cfg.app = [sp](int n) { return apps::make_service(n, sp); };
  cfg.churn.kind = sim::ChurnModelKind::kTrace;
  cfg.churn.schedule = {
      {2.0, 2, sim::ChurnEventKind::kDrain, 0.0},
      {5.0, 2, sim::ChurnEventKind::kJoin, 0.0},
  };
  const ExperimentResult res = run_experiment(cfg);
  ASSERT_TRUE(res.finished);
  EXPECT_EQ(res.drains_completed, 1);
  EXPECT_EQ(res.joins_completed, 1);
  EXPECT_EQ(res.splits_installed, 1);
  EXPECT_EQ(res.merges_installed, 1);
  // Back to the configured partition: two groups of four.
  EXPECT_EQ(res.final_num_groups, 2);
  EXPECT_EQ(res.failures_injected, 0);
}

TEST(ChurnTest, ChurnRunsAreDeterministic) {
  ExperimentConfig cfg = service_config();
  cfg.churn.kind = sim::ChurnModelKind::kSpot;
  cfg.churn.drain_mtbd_s = 3.0;
  cfg.churn.outage_s = 1.0;
  cfg.churn.warning_s = 2.0;
  const ExperimentResult a = run_experiment(cfg);
  const ExperimentResult b = run_experiment(cfg);
  ASSERT_TRUE(a.finished);
  ASSERT_TRUE(b.finished);
  EXPECT_EQ(a.exec_time_s, b.exec_time_s);
  EXPECT_EQ(a.availability, b.availability);
  EXPECT_EQ(a.drains_completed, b.drains_completed);
  EXPECT_EQ(a.reclaims_clean, b.reclaims_clean);
  EXPECT_EQ(a.reclaims_forced, b.reclaims_forced);
  EXPECT_EQ(a.joins_completed, b.joins_completed);
  EXPECT_EQ(a.merges_installed, b.merges_installed);
  EXPECT_EQ(a.failures_injected, b.failures_injected);
  ASSERT_TRUE(a.service.has_value() && b.service.has_value());
  EXPECT_EQ(a.service->p999_latency_s, b.service->p999_latency_s);
  EXPECT_EQ(a.service->slo_miss_rate, b.service->slo_miss_rate);
}

}  // namespace
}  // namespace gcr::exp
