// Stress and invariants for the typed-event engine core: interleaved timer
// storms, same-timestamp bursts, kill-while-queued, pooled waiter-slot
// recycling, allocation-free steady state, and run-to-run determinism.
//
// This TU replaces the global allocator with a counting shim so the
// zero-allocation acceptance criterion ("no heap traffic per steady-state
// timer event or suspension") is enforced by a test, not a claim.
#include <gtest/gtest.h>

#include <cstdlib>
#include <new>
#include <vector>

#include "apps/simple.hpp"
#include "exp/experiment.hpp"
#include "sim/awaitables.hpp"
#include "sim/channel.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"

namespace {
std::size_t g_allocs = 0;
}

void* operator new(std::size_t n) {
  ++g_allocs;
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) {
  ++g_allocs;
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace gcr::sim {
namespace {

Co<void> periodic(Engine& eng, Time dt, int rounds, std::vector<Time>* log) {
  for (int i = 0; i < rounds; ++i) {
    co_await delay(eng, dt);
    if (log) log->push_back(eng.now());
  }
}

TEST(EngineStress, TenThousandInterleavedTimers) {
  Engine eng;
  // 10k timers from two sources — callbacks and coroutine delays — with
  // colliding periods, so the queue constantly interleaves kinds and times.
  std::vector<Time> cb_times;
  int cb_fired = 0;
  for (int i = 0; i < 5000; ++i) {
    eng.call_at((i % 97) * 1'000 + i / 97, [&, i] {
      ++cb_fired;
      cb_times.push_back(eng.now());
      (void)i;
    });
  }
  std::vector<Time> co_times;
  for (int p = 0; p < 50; ++p) {
    eng.spawn("p", periodic(eng, 1 + p % 7, 100, &co_times));
  }
  eng.run();
  EXPECT_EQ(cb_fired, 5000);
  EXPECT_EQ(co_times.size(), 5000u);
  // Dispatch must be time-monotone within each observer.
  for (std::size_t i = 1; i < cb_times.size(); ++i) {
    EXPECT_LE(cb_times[i - 1], cb_times[i]);
  }
  for (std::size_t i = 1; i < co_times.size(); ++i) {
    EXPECT_LE(co_times[i - 1], co_times[i]);
  }
  EXPECT_TRUE(eng.idle());
  EXPECT_EQ(eng.live_process_count(), 0u);
}

TEST(EngineStress, SameTimestampStormIsFifo) {
  Engine eng;
  // 2000 callbacks at one timestamp interleaved with trigger resumes that
  // were armed earlier — everything lands at 5ms and must run in insertion
  // sequence order.
  std::vector<int> order;
  Trigger t(eng);
  auto waiterproc = [](Trigger& tr, std::vector<int>* ord, int id) -> Co<void> {
    co_await tr.wait();
    ord->push_back(id);
  };
  for (int i = 0; i < 1000; ++i) eng.spawn("w", waiterproc(t, &order, i));
  eng.call_at(5_ms, [&] { t.fire(); });  // resumes enqueue FIFO at 5ms
  for (int i = 1000; i < 2000; ++i) {
    eng.call_at(5_ms, [&order, i] { order.push_back(i); });
  }
  eng.run();
  ASSERT_EQ(order.size(), 2000u);
  // The trigger fires first (earlier seq), releasing waiters 0..999 in
  // registration order; the plain callbacks 1000..1999 follow — but the
  // waiter resumes were enqueued AFTER the callbacks were inserted, so the
  // callbacks run first, then the resumes.
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], 1000 + i);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(1000 + i)], i);
  }
}

TEST(EngineStress, KillWhileQueuedRecyclesCleanly) {
  Engine eng;
  // Waves of processes sleeping on armed timers; every other one is killed
  // while its timer event is still queued. Survivors must be unaffected and
  // the cancelled waiter slots must be reused, not abandoned.
  int finished = 0;
  int killed = 0;
  for (int wave = 0; wave < 100; ++wave) {
    eng.call_at(wave * 1_ms, [&] {
      std::vector<ProcPtr> procs;
      for (int i = 0; i < 20; ++i) {
        procs.push_back(eng.spawn(
            "v", periodic(eng, 10_us, 5, nullptr), [&](Proc&, ExitKind k) {
              (k == ExitKind::kKilled ? killed : finished) += 1;
            }));
      }
      for (std::size_t i = 0; i < procs.size(); i += 2) eng.kill(*procs[i]);
    });
  }
  eng.run();
  EXPECT_EQ(finished, 1000);
  EXPECT_EQ(killed, 1000);
  EXPECT_EQ(eng.live_process_count(), 0u);
  // 20 concurrent procs per wave (plus bookkeeping slack) bound the pool:
  // cancelled slots from wave N must be recycled by wave N+1.
  EXPECT_LE(eng.waiter_pool_size(), 64u);
}

TEST(EngineStress, CancelledWaitersReusePooledSlots) {
  Engine eng;
  // One process repeatedly arms a trigger wait that a callback claims, so
  // every round cancels nothing but recycles the slot; pool stays flat.
  Trigger t(eng);
  auto loop = [](Engine& e, Trigger& tr, int rounds) -> Co<void> {
    for (int i = 0; i < rounds; ++i) {
      co_await tr.wait();
      tr.reset();
      co_await delay(e, 1_us);
    }
  };
  eng.spawn("looper", loop(eng, t, 10000));
  for (int i = 0; i < 10000; ++i) {
    eng.call_at(i * 2_us, [&t] { t.fire(); });
  }
  eng.run();
  EXPECT_LE(eng.waiter_pool_size(), 8u);
}

Co<void> await_trigger(Trigger& t, int* woken) {
  co_await t.wait();
  ++*woken;
}

// The acceptance criterion for the typed-event refactor: once pools and the
// heap are warm (Engine::reserve), a steady-state timer tick (suspend +
// fire_at + dispatch + resume) performs zero heap allocations — including
// a same-timestamp broadcast burst wider than the due ring's initial size,
// which must come out of the reserve()d ring, not a mid-run regrow.
TEST(EngineStress, SteadyStateTimerPathIsAllocationFree) {
  Engine eng;
  eng.reserve(4096, 512);
  for (int p = 0; p < 100; ++p) {
    eng.spawn("t", periodic(eng, 1 + p % 7, 2000, nullptr));
  }
  Trigger gate(eng);
  int woken = 0;
  for (int p = 0; p < 200; ++p) {
    eng.spawn("g", await_trigger(gate, &woken));
  }
  eng.call_at(2000, [&gate] { gate.fire(); });  // 200 same-time resumes
  eng.run(500);  // warm-up: pools sized, vectors at steady capacity
  const std::uint64_t before_events = eng.events_processed();
  const std::size_t before_allocs = g_allocs;
  eng.run(4000);  // steady state: tens of thousands of timer events
  const std::size_t delta_allocs = g_allocs - before_allocs;
  const std::uint64_t delta_events = eng.events_processed() - before_events;
  EXPECT_GT(delta_events, 10000u);
  EXPECT_EQ(delta_allocs, 0u);
  EXPECT_EQ(woken, 200);
  eng.run();
}

Co<void> chatter(Engine& eng, Channel<int>& in, Channel<int>& out, Rng* rng,
                 int rounds) {
  for (int i = 0; i < rounds; ++i) {
    out.push(i);
    (void)co_await in.pop();
    co_await delay(eng, 1 + static_cast<Time>(rng->next_below(50)));
  }
}

std::uint64_t stress_run(std::vector<std::pair<Time, std::uint64_t>>* log) {
  Engine eng;
  Rng rng(1234);
  Channel<int> a(eng), b(eng);
  eng.spawn("x", chatter(eng, a, b, &rng, 500));
  eng.spawn("y", chatter(eng, b, a, &rng, 500));
  std::vector<ProcPtr> victims;
  for (int i = 0; i < 50; ++i) {
    victims.push_back(eng.spawn("v", periodic(eng, 3, 1000, nullptr)));
  }
  for (int i = 0; i < 50; ++i) {
    eng.call_at(10 + i * 7, [&eng, &victims, i] { eng.kill(*victims[static_cast<size_t>(i)]); });
  }
  eng.call_at(100, [&] {
    if (log) log->push_back({eng.now(), eng.events_processed()});
  });
  eng.run();
  if (log) log->push_back({eng.now(), eng.events_processed()});
  return eng.events_processed();
}

TEST(EngineStress, DeterministicAcrossRuns) {
  std::vector<std::pair<Time, std::uint64_t>> log1, log2;
  const std::uint64_t e1 = stress_run(&log1);
  const std::uint64_t e2 = stress_run(&log2);
  EXPECT_EQ(e1, e2);
  EXPECT_EQ(log1, log2);
}

}  // namespace
}  // namespace gcr::sim

namespace gcr {
namespace {

// Full-stack determinism: the same seed must produce an identical
// communication trace through the MPI runtime, network, and jitter models.
TEST(EngineStress, TraceOutputDeterministicAcrossRuns) {
  auto app = [](int nr) {
    apps::RingParams p;
    p.iterations = 10;
    p.compute_s = 0.0005;
    return apps::make_ring(nr, p);
  };
  const trace::Trace t1 = exp::profile_app(app, 8, /*seed=*/7);
  const trace::Trace t2 = exp::profile_app(app, 8, /*seed=*/7);
  ASSERT_EQ(t1.size(), t2.size());
  EXPECT_GT(t1.size(), 0u);
  for (std::size_t i = 0; i < t1.size(); ++i) {
    EXPECT_EQ(t1[i].time, t2[i].time);
    EXPECT_EQ(t1[i].kind, t2[i].kind);
    EXPECT_EQ(t1[i].rank, t2[i].rank);
    EXPECT_EQ(t1[i].peer, t2[i].peer);
    EXPECT_EQ(t1[i].tag, t2[i].tag);
    EXPECT_EQ(t1[i].bytes, t2[i].bytes);
  }
}

}  // namespace
}  // namespace gcr
