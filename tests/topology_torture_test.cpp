// Randomized topology-torture harness: multi-seed random fabrics x random
// traffic x random sender kills, asserting the fabric's conservation and
// lifetime invariants; plus end-to-end experiment runs over every topology
// kind with fault injection.
//
// Fabric invariants, per seed:
//   * conservation: every offered byte is eventually delivered or dropped
//     (offered == delivered + dropped once the fabric drains);
//   * no transfer outlives its killed sender: after abort_transfers_from(s)
//     at time T, a delivery from s can only be a transfer that had already
//     cleared its bottleneck, so it lands no later than T plus the
//     per-message + max-hop delivery delay;
//   * reruns with the same seed reproduce the exact delivery log
//     (times, endpoints, sizes — integer-exact).
// The CI ASan/UBSan matrix runs this TU, so lifetime bugs in the pooled
// transfer/intrusive-list machinery fail loudly rather than silently.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <map>
#include <vector>

#include "apps/simple.hpp"
#include "exp/experiment.hpp"
#include "group/strategies.hpp"
#include "sim/network.hpp"
#include "util/rng.hpp"

namespace gcr::sim {
namespace {

struct Delivery {
  Time at;
  Time issued;  ///< when send() was called (kills only affect prior sends)
  int src, dst;
  std::int64_t bytes;
  bool operator==(const Delivery&) const = default;
};

struct FabricLog {
  std::vector<Delivery> deliveries;
  std::map<int, Time> aborted_at;
  std::int64_t offered = 0, delivered = 0, dropped = 0;
  int active_left = 0, queued_left = 0;

  bool operator==(const FabricLog&) const = default;
};

NetParams random_fabric(gcr::Rng& rng, int* nodes_out) {
  NetParams p;
  p.bandwidth_Bps = 10e6;
  p.per_message_s = 5e-6;
  p.topology.hop_latency_s = 10e-6;
  p.topology.nic_concurrency = 1 + static_cast<int>(rng.next_below(3));
  if (rng.next_below(2) == 0) {
    p.topology.kind = TopologyKind::kFatTree;
    p.topology.fattree_k = 4 + 2 * static_cast<int>(rng.next_below(2));
    p.topology.fattree_routing = rng.next_below(2) == 0
                                     ? FatTreeRouting::kDeterministic
                                     : FatTreeRouting::kAdaptive;
  } else {
    p.topology.kind = TopologyKind::kDragonfly;
    p.topology.df_routers_per_group = 4;
    p.topology.df_nodes_per_router = 2;
    p.topology.df_global_per_router = 2;
    p.topology.df_routing = rng.next_below(2) == 0
                                ? DragonflyRouting::kMinimal
                                : DragonflyRouting::kValiant;
  }
  // Use a node count below the fabric's host capacity so surplus hosts are
  // exercised as permanently idle endpoints.
  *nodes_out = p.topology.kind == TopologyKind::kFatTree
                   ? (p.topology.fattree_k == 4 ? 14 : 50)
                   : 70;
  return p;
}

FabricLog run_fabric_torture(std::uint64_t seed) {
  gcr::Rng rng(mix_seed(0x746f7274, seed));
  int nodes = 0;
  const NetParams params = random_fabric(rng, &nodes);

  Engine eng;
  Network net(eng, nodes, params);
  FabricLog log;

  // Random traffic: bursts of sends at random times, sizes spanning four
  // orders of magnitude (zero-byte control messages included).
  const int sends = 300 + static_cast<int>(rng.next_below(300));
  for (int i = 0; i < sends; ++i) {
    const auto src = static_cast<int>(
        rng.next_below(static_cast<std::uint64_t>(nodes)));
    auto dst = static_cast<int>(
        rng.next_below(static_cast<std::uint64_t>(nodes)));
    if (dst == src) dst = (dst + 1) % nodes;  // loopback is not fabric
    const std::int64_t bytes =
        rng.next_below(5) == 0 ? 0
                               : static_cast<std::int64_t>(
                                     rng.next_below(400'000));
    const Time at = static_cast<Time>(rng.next_below(400'000'000));  // 400 ms
    eng.call_at(at, [&net, &log, &eng, src, dst, bytes] {
      const Time issued = eng.now();
      net.send(src, dst, bytes, [&log, &eng, issued, src, dst, bytes] {
        log.deliveries.push_back({eng.now(), issued, src, dst, bytes});
      });
    });
  }

  // Random kills: a handful of senders lose everything queued or in flight.
  const int kills = 2 + static_cast<int>(rng.next_below(4));
  for (int i = 0; i < kills; ++i) {
    const auto node = static_cast<int>(
        rng.next_below(static_cast<std::uint64_t>(nodes)));
    const Time at = static_cast<Time>(100'000'000 + rng.next_below(300'000'000));
    eng.call_at(at, [&net, &log, node, at] {
      net.abort_transfers_from(node);
      log.aborted_at.emplace(node, at);  // first abort wins
    });
  }

  eng.run();
  log.offered = net.fabric_bytes_offered();
  log.delivered = net.fabric_bytes_delivered();
  log.dropped = net.fabric_bytes_dropped();
  log.active_left = net.active_transfers();
  log.queued_left = net.queued_transfers();
  return log;
}

class TopologyTortureTest : public ::testing::TestWithParam<int> {};

TEST_P(TopologyTortureTest, ConservationLifetimeAndDeterminism) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const FabricLog log = run_fabric_torture(seed);

  // Conservation: the engine drained, so nothing is still in flight and
  // every offered byte is accounted for exactly once.
  EXPECT_EQ(log.active_left, 0) << "seed " << seed;
  EXPECT_EQ(log.queued_left, 0) << "seed " << seed;
  EXPECT_EQ(log.offered, log.delivered + log.dropped) << "seed " << seed;
  std::int64_t delivered_sum = 0;
  for (const Delivery& d : log.deliveries) delivered_sum += d.bytes;
  EXPECT_EQ(delivered_sum, log.delivered) << "seed " << seed;

  // Lifetime: a transfer issued before its sender's abort either died with
  // it or had already cleared its bottleneck — in which case it lands
  // within the fixed delivery delay (per-message + at most kMaxHops hop
  // latencies) of the abort. Sends issued *after* the abort are ordinary
  // traffic (abort drops state, it does not disable the NIC).
  const Time max_delivery =
      from_seconds(5e-6 + Route::kMaxHops * 10e-6) + 1;
  for (const Delivery& d : log.deliveries) {
    const auto it = log.aborted_at.find(d.src);
    // >= : a same-tick send may be ordered after the abort callback.
    if (it == log.aborted_at.end() || d.issued >= it->second) continue;
    EXPECT_LE(d.at, it->second + max_delivery)
        << "seed " << seed << ": delivery from killed sender " << d.src
        << " outlived the abort";
  }

  // Determinism: the rerun's delivery log is integer-exact.
  const FabricLog rerun = run_fabric_torture(seed);
  EXPECT_TRUE(log == rerun) << "seed " << seed << " is not deterministic ("
                            << log.deliveries.size() << " vs "
                            << rerun.deliveries.size() << " deliveries)";
}

INSTANTIATE_TEST_SUITE_P(Seeds, TopologyTortureTest, ::testing::Range(1, 13));

}  // namespace
}  // namespace gcr::sim

namespace gcr::exp {
namespace {

/// End-to-end: the full protocol stack (checkpoints + faults + recovery)
/// over each fabric kind. The routed egress-wait path replaces the flat
/// model's exact NIC timestamps, so this exercises ticket registration,
/// kill-time cleanup, and replay pacing under contention.
ExperimentConfig e2e_config(std::uint64_t seed, sim::TopologyKind kind) {
  ExperimentConfig cfg;
  cfg.seed = seed;
  cfg.nranks = 16;
  apps::Stencil1dParams p;
  p.iterations = 20;
  p.halo_bytes = 24 * 1024;
  p.compute_s = 0.004;
  p.mem_bytes = 512 * 1024;
  cfg.app = [p](int n) { return apps::make_stencil1d(n, p); };
  cfg.groups = group::make_blocks(16, 4);
  cfg.topology.kind = kind;
  cfg.topology.fattree_routing = sim::FatTreeRouting::kAdaptive;
  cfg.checkpoints = true;
  cfg.schedule.first_at_s = 0.03;
  cfg.schedule.interval_s = 0.1;
  // Aggressive per-node hazard with fast detection: several faults per
  // run, so kills land inside checkpoint rounds, replay, and in-flight
  // fabric transfers — while staying ahead of the fault rate.
  cfg.recovery.detect_s = 0.05;
  cfg.recovery.relaunch_s = 0.05;
  cfg.fault_model.kind = sim::FaultModelKind::kExponential;
  cfg.fault_model.mtbf_s = 2.0;
  cfg.max_sim_s = 300.0;
  // CI's ThreadSanitizer job reruns this suite with GCR_SHARDS=4: the same
  // runs driven through the windowed multi-thread coordinator
  // (sim/shard.hpp), whose barrier/mailbox handoffs TSan then vets.
  if (const char* s = std::getenv("GCR_SHARDS")) cfg.shards = std::atoi(s);
  return cfg;
}

class TopologyE2eTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(TopologyE2eTest, ProtocolsSurviveFaultsOnEveryFabric) {
  const auto seed = static_cast<std::uint64_t>(std::get<0>(GetParam()));
  const auto kind = static_cast<sim::TopologyKind>(std::get<1>(GetParam()));
  const ExperimentConfig cfg = e2e_config(seed, kind);
  const ExperimentResult res = run_experiment(cfg);
  ASSERT_TRUE(res.finished)
      << "seed " << seed << " kind " << static_cast<int>(kind)
      << " hit the watchdog";
  EXPECT_EQ(res.failures_injected,
            res.recoveries_completed + res.recoveries_aborted);

  const ExperimentResult rerun = run_experiment(cfg);
  EXPECT_EQ(res.exec_time_s, rerun.exec_time_s) << "not deterministic";
  EXPECT_EQ(res.failures_injected, rerun.failures_injected);
  EXPECT_EQ(res.checkpoints_completed, rerun.checkpoints_completed);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsByFabric, TopologyE2eTest,
    ::testing::Combine(::testing::Range(1, 4), ::testing::Values(0, 1, 2)));

}  // namespace
}  // namespace gcr::exp
