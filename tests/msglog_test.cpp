// Sender-based message log: append, GC by RR, replay ranges, flush tracking.
#include <gtest/gtest.h>

#include "core/msglog.hpp"

namespace gcr::core {
namespace {

mpi::Message msg(mpi::RankId dst, std::int64_t bytes, std::int64_t cum,
                 std::uint64_t seq) {
  mpi::Message m;
  m.src = 0;
  m.dst = dst;
  m.bytes = bytes;
  m.cum_bytes = cum;
  m.seq = seq;
  return m;
}

TEST(MessageLog, AppendAccumulates) {
  MessageLog log;
  log.append(msg(1, 100, 100, 1));
  log.append(msg(1, 50, 150, 2));
  log.append(msg(2, 10, 10, 1));
  EXPECT_EQ(log.total_bytes(), 160);
  EXPECT_EQ(log.total_messages(), 3);
  EXPECT_EQ(log.entries_towards(1), 2u);
  EXPECT_EQ(log.entries_towards(2), 1u);
  EXPECT_EQ(log.entries_towards(3), 0u);
}

TEST(MessageLog, GcDropsPrefixOnly) {
  MessageLog log;
  log.append(msg(1, 100, 100, 1));
  log.append(msg(1, 100, 200, 2));
  log.append(msg(1, 100, 300, 3));
  EXPECT_EQ(log.gc(1, 200), 2u);  // entries with cum <= 200
  EXPECT_EQ(log.entries_towards(1), 1u);
  EXPECT_EQ(log.total_bytes(), 100);
  // GC below the remaining entry drops nothing.
  EXPECT_EQ(log.gc(1, 250), 0u);
  EXPECT_EQ(log.gc(1, 300), 1u);
  EXPECT_EQ(log.entries_towards(1), 0u);
}

TEST(MessageLog, GcUnknownPeerIsNoop) {
  MessageLog log;
  EXPECT_EQ(log.gc(9, 1000), 0u);
}

TEST(MessageLog, EntriesAfterReturnsReplaySet) {
  MessageLog log;
  for (int i = 1; i <= 5; ++i) {
    log.append(msg(1, 100, 100 * i, static_cast<std::uint64_t>(i)));
  }
  const auto replay = log.entries_after(1, 250);
  ASSERT_EQ(replay.size(), 3u);
  EXPECT_EQ(replay[0].cum_bytes, 300);
  EXPECT_EQ(replay[2].cum_bytes, 500);
  EXPECT_TRUE(log.entries_after(1, 500).empty());
  EXPECT_EQ(log.entries_after(1, 0).size(), 5u);
  EXPECT_TRUE(log.entries_after(7, 0).empty());
}

TEST(MessageLog, ReplayAfterGcStillCoversUncoveredRange) {
  // Invariant: GC is driven by the receiver's RR (volume covered by its
  // checkpoint), so entries_after(R) with R >= RR never hits a GC'd hole.
  MessageLog log;
  for (int i = 1; i <= 10; ++i) {
    log.append(msg(1, 10, 10 * i, static_cast<std::uint64_t>(i)));
  }
  log.gc(1, 40);  // receiver checkpointed at RR=40
  for (std::int64_t r = 40; r <= 100; r += 10) {
    const auto replay = log.entries_after(1, r);
    EXPECT_EQ(replay.size(), static_cast<std::size_t>((100 - r) / 10));
    if (!replay.empty()) {
      EXPECT_EQ(replay.front().cum_bytes, r + 10);
    }
  }
}

TEST(MessageLog, FlushTracking) {
  MessageLog log;
  log.append(msg(1, 100, 100, 1));
  EXPECT_EQ(log.unflushed_bytes(), 100);
  log.mark_flushed();
  EXPECT_EQ(log.unflushed_bytes(), 0);
  log.append(msg(1, 30, 130, 2));
  EXPECT_EQ(log.unflushed_bytes(), 30);
  EXPECT_EQ(log.total_bytes(), 130);  // flush does not drop entries
}

TEST(MessageLog, CopySemanticsForSnapshot) {
  MessageLog log;
  log.append(msg(1, 100, 100, 1));
  MessageLog snapshot = log;  // checkpoint copy
  log.append(msg(1, 100, 200, 2));
  EXPECT_EQ(snapshot.entries_towards(1), 1u);
  EXPECT_EQ(log.entries_towards(1), 2u);
}

TEST(MessageLog, ClearResetsEverything) {
  MessageLog log;
  log.append(msg(1, 100, 100, 1));
  log.clear();
  EXPECT_EQ(log.total_bytes(), 0);
  EXPECT_EQ(log.total_messages(), 0);
  EXPECT_EQ(log.unflushed_bytes(), 0);
}

TEST(MessageLogDeathTest, NonMonotonicCumAborts) {
  MessageLog log;
  log.append(msg(1, 100, 100, 1));
  EXPECT_DEATH(log.append(msg(1, 100, 50, 2)), "cumulative");
}

}  // namespace
}  // namespace gcr::core
