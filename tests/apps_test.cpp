// Application skeletons: geometry, completion, determinism, memory models,
// and — crucially — that trace-driven formation discovers each app's natural
// structure (HPL's grid columns = the paper's Table 1).
#include <gtest/gtest.h>

#include "apps/cg.hpp"
#include "apps/hpl.hpp"
#include "apps/simple.hpp"
#include "apps/sp.hpp"
#include "exp/experiment.hpp"
#include "group/formation.hpp"
#include "group/strategies.hpp"

namespace gcr::apps {
namespace {

TEST(HplApp, GridChoosesLargestDivisorUpTo8) {
  EXPECT_EQ(hpl_grid(32, 8).p, 8);
  EXPECT_EQ(hpl_grid(32, 8).q, 4);
  EXPECT_EQ(hpl_grid(12, 8).p, 6);
  EXPECT_EQ(hpl_grid(12, 8).q, 2);
  EXPECT_EQ(hpl_grid(7, 8).p, 7);
  EXPECT_EQ(hpl_grid(7, 8).q, 1);
}

TEST(HplApp, GridMappingRowMajor) {
  HplGrid g{8, 4};
  EXPECT_EQ(g.row_of(0), 0);
  EXPECT_EQ(g.col_of(0), 0);
  EXPECT_EQ(g.col_of(5), 1);
  EXPECT_EQ(g.row_of(5), 1);
  EXPECT_EQ(g.at(1, 1), 5);
}

TEST(HplApp, MemoryModelScalesInverselyWithRanks) {
  HplParams p;
  AppSpec s16 = make_hpl(16, p);
  AppSpec s64 = make_hpl(64, p);
  const std::int64_t m16 = s16.image_bytes(0);
  const std::int64_t m64 = s64.image_bytes(0);
  EXPECT_GT(m16, m64);
  EXPECT_NEAR(static_cast<double>(m16 - p.base_mem_bytes) /
                  static_cast<double>(m64 - p.base_mem_bytes),
              4.0, 0.01);
}

TEST(HplApp, RunsToCompletionAndIsDeterministic) {
  auto run = [] {
    exp::ExperimentConfig cfg;
    HplParams p;
    p.n = 2400;  // small: 20 iterations
    cfg.app = [p](int n) { return make_hpl(n, p); };
    cfg.nranks = 8;
    cfg.groups = gcr::group::make_norm(8);
    cfg.jitter = false;
    return exp::run_experiment(cfg);
  };
  auto a = run();
  auto b = run();
  ASSERT_TRUE(a.finished);
  EXPECT_DOUBLE_EQ(a.exec_time_s, b.exec_time_s);
  EXPECT_EQ(a.app_messages, b.app_messages);
}

TEST(HplApp, FormationDiscoversGridColumns) {
  // The paper's Table 1: HPL on 32 procs (8x4) groups into the 4 grid
  // columns {r : r mod 4 == c}, i.e. round-robin by Q.
  HplParams p;
  p.n = 4800;
  exp::AppFactory app = [p](int n) { return make_hpl(n, p); };
  gcr::group::GroupSet groups =
      exp::derive_groups(app, 32, /*max_group_size=*/8);
  EXPECT_EQ(groups, gcr::group::make_round_robin(32, 4));
}

TEST(HplApp, FormationTable1ExactRanks) {
  HplParams p;
  p.n = 4800;
  exp::AppFactory app = [p](int n) { return make_hpl(n, p); };
  gcr::group::GroupSet groups = exp::derive_groups(app, 32, 8);
  ASSERT_EQ(groups.num_groups(), 4);
  EXPECT_EQ(groups.members(0),
            (std::vector<mpi::RankId>{0, 4, 8, 12, 16, 20, 24, 28}));
  EXPECT_EQ(groups.members(1),
            (std::vector<mpi::RankId>{1, 5, 9, 13, 17, 21, 25, 29}));
}

TEST(CgApp, RequiresPowerOfTwo) {
  CgParams p;
  EXPECT_DEATH((void)make_cg(12, p), "power-of-two");
}

TEST(CgApp, RunsAcrossScalesAndTrafficIsContinuous) {
  for (int n : {4, 16}) {
    exp::ExperimentConfig cfg;
    CgParams p;
    p.outer_iters = 5;
    p.inner_steps = 4;
    p.na = 20000;
    cfg.app = [p](int nr) { return make_cg(nr, p); };
    cfg.nranks = n;
    cfg.groups = gcr::group::make_norm(n);
    cfg.jitter = false;
    cfg.collect_trace = true;
    auto res = exp::run_experiment(cfg);
    ASSERT_TRUE(res.finished);
    // Non-stop transfers: messages in every safepoint step.
    EXPECT_GT(res.app_messages, n * 5 * 4);
  }
}

TEST(SpApp, RequiresSquareCount) {
  SpParams p;
  EXPECT_DEATH((void)make_sp(8, p), "square");
}

TEST(SpApp, RunsOnSquareCounts) {
  for (int n : {4, 9, 16}) {
    exp::ExperimentConfig cfg;
    SpParams p;
    p.modeled_iters = 6;
    cfg.app = [p](int nr) { return make_sp(nr, p); };
    cfg.nranks = n;
    cfg.groups = gcr::group::make_norm(n);
    cfg.jitter = false;
    auto res = exp::run_experiment(cfg);
    ASSERT_TRUE(res.finished) << "n=" << n;
    EXPECT_GT(res.app_messages, 0);
  }
}

TEST(SpApp, FormationGroupsGridRows) {
  // X-direction traffic dominates, so rows of the process grid form groups.
  SpParams p;
  p.modeled_iters = 8;
  exp::AppFactory app = [p](int n) { return make_sp(n, p); };
  gcr::group::GroupSet groups = exp::derive_groups(app, 16, 4);
  EXPECT_EQ(groups.num_groups(), 4);
  EXPECT_TRUE(groups.same_group(0, 3));   // row 0
  EXPECT_FALSE(groups.same_group(3, 4));  // row boundary
}

TEST(SimpleApps, StencilClusterWidthConfinesTraffic) {
  exp::ExperimentConfig cfg;
  Stencil1dParams p;
  p.iterations = 10;
  p.cluster_width = 3;
  cfg.app = [p](int n) { return make_stencil1d(n, p); };
  cfg.nranks = 9;
  cfg.groups = gcr::group::make_blocks(9, 3);
  cfg.jitter = false;
  cfg.collect_trace = true;
  auto res = exp::run_experiment(cfg);
  ASSERT_TRUE(res.finished);
  for (const auto& rec : res.trace) {
    if (rec.kind != trace::EventKind::kSend) continue;
    EXPECT_EQ(rec.rank / 3, rec.peer / 3) << "traffic crossed a block";
  }
  // Confined traffic means nothing is ever logged under block grouping.
  EXPECT_EQ(res.metrics.logged_messages, 0);
}

TEST(SimpleApps, RandomPairsIsDeterministicPerSeed) {
  auto run = [](std::uint64_t app_seed) {
    exp::ExperimentConfig cfg;
    RandomPairsParams p;
    p.iterations = 10;
    p.seed = app_seed;
    cfg.app = [p](int n) { return make_random_pairs(n, p); };
    cfg.nranks = 7;  // odd: one idle rank per iteration
    cfg.groups = gcr::group::make_norm(7);
    cfg.jitter = false;
    return exp::run_experiment(cfg);
  };
  auto a1 = run(1);
  auto a2 = run(1);
  auto b = run(2);
  ASSERT_TRUE(a1.finished);
  EXPECT_EQ(a1.app_messages, a2.app_messages);
  EXPECT_DOUBLE_EQ(a1.exec_time_s, a2.exec_time_s);
  ASSERT_TRUE(b.finished);
}

}  // namespace
}  // namespace gcr::apps
