// Campaign layer (DESIGN.md §12): scenario expansion, deterministic
// parallel execution, and watchdog surfacing.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "apps/simple.hpp"
#include "exp/campaign.hpp"
#include "exp/scenario.hpp"
#include "group/strategies.hpp"
#include "util/table.hpp"

namespace {

using namespace gcr;

// A fast real sweep: tiny ring app, two process counts x two groupings,
// with a checkpoint early enough to exercise the protocol.
exp::Scenario tiny_scenario(int reps) {
  exp::Scenario sc;
  sc.name = "test/tiny";
  sc.axes = {exp::SweepAxis::ints("procs", {4, 6}),
             exp::SweepAxis::ints("mode", {0, 1})};
  sc.reps = reps;
  sc.config = [](const exp::SweepPoint& point) {
    apps::RingParams rp;
    rp.iterations = 30;
    rp.compute_s = 0.02;
    exp::ExperimentConfig cfg;
    cfg.app = [rp](int nr) { return apps::make_ring(nr, rp); };
    cfg.nranks = static_cast<int>(point.get_int("procs"));
    cfg.seed = point.seed;
    cfg.groups = point.get_int("mode") == 0 ? group::make_norm(cfg.nranks)
                                            : group::make_gp1(cfg.nranks);
    cfg.checkpoints = true;
    cfg.schedule.first_at_s = 0.2;
    return cfg;
  };
  sc.collect = [](const exp::SweepPoint&, const exp::ExperimentResult& res,
                  exp::Collector& col) {
    col.add("exec", res.exec_time_s);
    col.add("bytes", static_cast<double>(res.app_bytes));
  };
  return sc;
}

// Renders every cell's aggregates at full precision; byte-equality of two
// renderings is the determinism contract the benches rely on.
std::string render(const exp::Scenario& sc, const exp::CampaignResult& camp) {
  std::ostringstream os;
  os.precision(17);
  for (std::size_t cell = 0; cell < camp.cells.size(); ++cell) {
    os << "cell " << cell << " runs=" << camp.cells[cell].runs
       << " unfinished=" << camp.cells[cell].unfinished_runs << "\n";
    for (const auto& [metric, stats] : camp.cells[cell].metrics) {
      os << "  " << metric << " n=" << stats.count() << " mean=" << stats.mean()
         << " var=" << stats.variance() << " min=" << stats.min()
         << " max=" << stats.max() << " sum=" << stats.sum() << "\n";
    }
    for (const std::string& text : camp.cells[cell].texts) {
      os << "  text: " << text << "\n";
    }
  }
  os << "jobs=" << camp.jobs_run << " unfinished=" << camp.unfinished_runs
     << " name=" << sc.name << "\n";
  return os.str();
}

TEST(Scenario, ExpandsRowMajorWithSeedsInnermost) {
  exp::Scenario sc = tiny_scenario(/*reps=*/3);
  EXPECT_EQ(sc.num_cells(), 4u);
  EXPECT_EQ(sc.num_jobs(), 12u);

  const std::vector<exp::SweepPoint> jobs = sc.expand();
  ASSERT_EQ(jobs.size(), 12u);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(jobs[i].job, i);
    EXPECT_EQ(jobs[i].cell, i / 3);
    EXPECT_EQ(jobs[i].seed, i % 3 + 1);  // seeds 1..reps innermost
  }
  // Row-major: axis 0 (procs) outermost, axis 1 (mode) fastest.
  EXPECT_EQ(jobs[0].get_int("procs"), 4);
  EXPECT_EQ(jobs[0].get_int("mode"), 0);
  EXPECT_EQ(jobs[3].get_int("procs"), 4);
  EXPECT_EQ(jobs[3].get_int("mode"), 1);
  EXPECT_EQ(jobs[6].get_int("procs"), 6);
  EXPECT_EQ(jobs[6].get_int("mode"), 0);

  EXPECT_EQ(sc.cell_index({0, 0}), 0u);
  EXPECT_EQ(sc.cell_index({0, 1}), 1u);
  EXPECT_EQ(sc.cell_index({1, 0}), 2u);
  EXPECT_EQ(sc.cell_index({1, 1}), 3u);
}

TEST(Scenario, NoAxesMeansOneCell) {
  exp::Scenario sc;
  sc.name = "test/single";
  sc.reps = 2;
  sc.job = [](const exp::SweepPoint& point, exp::Collector& col) {
    col.add("seed", static_cast<double>(point.seed));
  };
  EXPECT_EQ(sc.num_cells(), 1u);
  const exp::CampaignResult camp = exp::run_campaign(sc, {1});
  EXPECT_EQ(camp.stat(0, "seed").count(), 2u);
  EXPECT_EQ(camp.stat(0, "seed").sum(), 3.0);  // seeds 1 + 2
}

TEST(Campaign, ParallelAggregatesAreByteIdenticalToSerial) {
  const exp::Scenario sc = tiny_scenario(/*reps=*/3);
  const std::string serial = render(sc, exp::run_campaign(sc, {1}));
  const std::string parallel = render(sc, exp::run_campaign(sc, {4}));
  EXPECT_EQ(serial, parallel);
}

TEST(Campaign, OversubscribedPoolIsStillDeterministic) {
  const exp::Scenario sc = tiny_scenario(/*reps=*/2);  // 8 jobs
  const std::string serial = render(sc, exp::run_campaign(sc, {1}));
  const std::string oversubscribed = render(sc, exp::run_campaign(sc, {16}));
  EXPECT_EQ(serial, oversubscribed);
}

TEST(Campaign, WatchdogRunsAreCountedNotAveraged) {
  exp::Scenario sc = tiny_scenario(/*reps=*/2);
  // Mode 1's cells get an impossible deadline: every run trips the watchdog.
  auto base_config = sc.config;
  sc.config = [base_config](const exp::SweepPoint& point) {
    exp::ExperimentConfig cfg = base_config(point);
    if (point.get_int("mode") == 1) cfg.max_sim_s = 1e-6;
    return cfg;
  };
  const exp::CampaignResult camp = exp::run_campaign(sc, {2});

  // 2 procs values x 1 tripped mode x 2 reps.
  EXPECT_EQ(camp.unfinished_runs, 4);
  for (std::size_t procs_i = 0; procs_i < 2; ++procs_i) {
    const std::size_t ok = sc.cell_index({procs_i, 0});
    const std::size_t tripped = sc.cell_index({procs_i, 1});
    EXPECT_EQ(camp.cells[ok].unfinished_runs, 0);
    EXPECT_EQ(camp.stat(ok, "exec").count(), 2u);
    // Tripped runs contribute NO samples — their truncated exec time must
    // not be averaged into the figure.
    EXPECT_EQ(camp.cells[tripped].unfinished_runs, 2);
    EXPECT_EQ(camp.stat(tripped, "exec").count(), 0u);
    EXPECT_EQ(camp.cells[tripped].runs, 2);
  }
}

TEST(Campaign, TextsKeepJobOrder) {
  exp::Scenario sc;
  sc.name = "test/texts";
  sc.axes = {exp::SweepAxis::ints("x", {0, 1})};
  sc.reps = 3;
  sc.job = [](const exp::SweepPoint& point, exp::Collector& col) {
    col.add_text("job" + std::to_string(point.job));
  };
  const exp::CampaignResult camp = exp::run_campaign(sc, {4});
  ASSERT_EQ(camp.cells.size(), 2u);
  EXPECT_EQ(camp.cells[0].texts,
            (std::vector<std::string>{"job0", "job1", "job2"}));
  EXPECT_EQ(camp.cells[1].texts,
            (std::vector<std::string>{"job3", "job4", "job5"}));
}

TEST(Campaign, UnknownMetricIsEmptyStats) {
  const exp::Scenario sc = tiny_scenario(/*reps=*/1);
  const exp::CampaignResult camp = exp::run_campaign(sc, {1});
  EXPECT_EQ(camp.stat(0, "no-such-metric").count(), 0u);
  EXPECT_EQ(camp.stat(999, "exec").count(), 0u);  // out-of-range cell
}

}  // namespace
