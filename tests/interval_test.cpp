// Checkpoint-interval planning (Young/Daly), the expected-waste model,
// per-group schedules, and random failure injection.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/simple.hpp"
#include "core/interval.hpp"
#include "exp/experiment.hpp"
#include "group/strategies.hpp"

namespace gcr::core {
namespace {

TEST(Interval, YoungFormula) {
  EXPECT_DOUBLE_EQ(young_interval(2.0, 3600.0), std::sqrt(2 * 2.0 * 3600.0));
  EXPECT_DOUBLE_EQ(young_interval(0.0, 100.0), 0.0);
}

TEST(Interval, YoungGrowsWithCostAndMtbf) {
  EXPECT_LT(young_interval(1.0, 1000.0), young_interval(4.0, 1000.0));
  EXPECT_LT(young_interval(1.0, 1000.0), young_interval(1.0, 4000.0));
  // Quadrupling the C*M product doubles T.
  EXPECT_NEAR(young_interval(2.0, 2000.0), 2 * young_interval(1.0, 1000.0),
              1e-9);
}

TEST(Interval, DalyCloseToYoungForSmallCost) {
  const double c = 1.0, m = 36000.0;
  EXPECT_NEAR(daly_interval(c, m), young_interval(c, m),
              0.05 * young_interval(c, m));
}

TEST(Interval, DalyFallsBackToMtbfForHugeCost) {
  EXPECT_DOUBLE_EQ(daly_interval(600.0, 1000.0), 1000.0);
}

TEST(Interval, WasteMinimizedNearYoung) {
  const double c = 2.0, r = 5.0, m = 3600.0;
  const double t_opt = young_interval(c, m);
  const double w_opt = expected_waste_fraction(t_opt, c, r, m);
  EXPECT_LT(w_opt, expected_waste_fraction(t_opt / 4, c, r, m));
  EXPECT_LT(w_opt, expected_waste_fraction(t_opt * 4, c, r, m));
}

TEST(Interval, WasteIsCappedAtOne) {
  EXPECT_DOUBLE_EQ(expected_waste_fraction(1.0, 100.0, 1000.0, 1.0), 1.0);
}

TEST(Interval, MeasuredCostsPerGroup) {
  group::GroupSet groups = group::make_round_robin(4, 2);
  Metrics m;
  CkptRecord rec;
  rec.rank = 0;  // group 0
  rec.phases.checkpoint = 2.0;
  m.ckpts.push_back(rec);
  rec.rank = 1;  // group 1
  rec.phases.checkpoint = 4.0;
  m.ckpts.push_back(rec);
  rec.rank = 2;  // group 0
  rec.phases.checkpoint = 6.0;
  m.ckpts.push_back(rec);
  const auto cost = measured_group_ckpt_cost(m, groups);
  ASSERT_EQ(cost.size(), 2u);
  EXPECT_DOUBLE_EQ(cost[0], 4.0);  // (2+6)/2
  EXPECT_DOUBLE_EQ(cost[1], 4.0);  // single record
}

TEST(Interval, MissingGroupFallsBackToGlobalMean) {
  group::GroupSet groups = group::make_round_robin(4, 2);
  Metrics m;
  CkptRecord rec;
  rec.rank = 0;
  rec.phases.checkpoint = 3.0;
  m.ckpts.push_back(rec);
  const auto cost = measured_group_ckpt_cost(m, groups);
  EXPECT_DOUBLE_EQ(cost[1], 3.0);  // group 1 has no records
}

TEST(Interval, PlanGivesFlakyGroupsShorterIntervals) {
  const std::vector<double> cost{1.0, 1.0, 1.0};
  const std::vector<GroupReliability> rel{{36000.0}, {3600.0}, {360.0}};
  const GroupIntervalPlan plan = plan_group_intervals(cost, rel);
  ASSERT_EQ(plan.interval_s.size(), 3u);
  EXPECT_GT(plan.interval_s[0], plan.interval_s[1]);
  EXPECT_GT(plan.interval_s[1], plan.interval_s[2]);
  // The uniform schedule must cope with the combined failure rate, so it is
  // shorter than the most reliable group's own interval.
  EXPECT_LT(plan.uniform_interval_s, plan.interval_s[0]);
}

exp::AppFactory ring_app(std::uint64_t iters) {
  return [iters](int n) {
    apps::RingParams p;
    p.iterations = iters;
    p.compute_s = 0.012;
    return apps::make_ring(n, p);
  };
}

TEST(Interval, PerGroupSchedulesFireAtDifferentRates) {
  exp::ExperimentConfig cfg;
  cfg.app = ring_app(60);
  cfg.nranks = 6;
  cfg.groups = group::make_round_robin(6, 3);
  cfg.jitter = false;
  // Group 0 checkpoints 4x as often as group 2; group 1 opts out.
  cfg.per_group_intervals = {0.1, 0.0, 0.4};
  exp::ExperimentResult res = exp::run_experiment(cfg);
  ASSERT_TRUE(res.finished);
  int per_group[3] = {0, 0, 0};
  for (const auto& rec : res.metrics.ckpts) {
    ++per_group[rec.rank % 3];
  }
  EXPECT_GT(per_group[0], per_group[2]);
  EXPECT_EQ(per_group[1], 0);
  EXPECT_GT(per_group[2], 0);
}

TEST(Interval, RandomFailuresAreDeterministicPerSeed) {
  auto run = [](std::uint64_t seed) {
    exp::ExperimentConfig cfg;
    cfg.app = ring_app(50);
    cfg.nranks = 6;
    cfg.seed = seed;
    cfg.groups = group::make_round_robin(6, 3);
    cfg.checkpoints = true;
    cfg.schedule.first_at_s = 0.1;
    cfg.schedule.interval_s = 0.2;
    cfg.random_failure_mtbf_s = {1.5, 0.0, 0.0};  // only group 0 is flaky
    cfg.recovery.detect_s = 0.1;
    cfg.recovery.relaunch_s = 0.1;
    return exp::run_experiment(cfg);
  };
  exp::ExperimentResult a = run(3);
  exp::ExperimentResult b = run(3);
  ASSERT_TRUE(a.finished);
  EXPECT_EQ(a.failures_injected, b.failures_injected);
  EXPECT_DOUBLE_EQ(a.exec_time_s, b.exec_time_s);
  // Only group 0's ranks ever restarted.
  for (const auto& r : a.metrics.restarts) {
    EXPECT_EQ(r.rank % 3, 0);
  }
}

TEST(Interval, FlakyGroupSurvivesRandomStorm) {
  exp::ExperimentConfig cfg;
  cfg.app = ring_app(80);
  cfg.nranks = 8;
  cfg.seed = 7;
  cfg.groups = group::make_round_robin(8, 4);
  cfg.checkpoints = true;
  cfg.schedule.first_at_s = 0.1;
  cfg.schedule.interval_s = 0.15;
  cfg.random_failure_mtbf_s = {1.0, 2.0, 0.0, 0.0};
  cfg.recovery.detect_s = 0.1;
  cfg.recovery.relaunch_s = 0.1;
  exp::ExperimentResult res = exp::run_experiment(cfg);
  EXPECT_TRUE(res.finished);
  EXPECT_GT(res.failures_injected, 0);
}

}  // namespace
}  // namespace gcr::core
