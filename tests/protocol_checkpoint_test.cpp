// Group protocol checkpoint behavior: Algorithm 1's logging/piggyback/GC,
// coordination phases, drain, and abort-at-job-end handling.
#include <gtest/gtest.h>

#include "apps/simple.hpp"
#include "exp/experiment.hpp"
#include "group/strategies.hpp"

namespace gcr::exp {
namespace {

AppFactory ring_app(std::uint64_t iters = 30, double compute_s = 0.02) {
  return [iters, compute_s](int n) {
    apps::RingParams p;
    p.iterations = iters;
    p.compute_s = compute_s;
    return apps::make_ring(n, p);
  };
}

ExperimentConfig base_config(int nranks, int ngroups) {
  ExperimentConfig cfg;
  cfg.app = ring_app();
  cfg.nranks = nranks;
  cfg.groups = group::make_round_robin(nranks, ngroups);
  cfg.checkpoints = true;
  cfg.schedule.first_at_s = 0.1;
  cfg.jitter = false;
  return cfg;
}

TEST(GroupCkpt, OnlyInterGroupMessagesLogged) {
  // Ring on blocks of 2: rank pairs (0,1),(2,3),... Ring neighbors cross
  // blocks for half the edges.
  ExperimentConfig cfg = base_config(8, 1);
  cfg.groups = group::make_blocks(8, 2);
  cfg.checkpoints = false;
  ExperimentResult res = run_experiment(cfg);
  ASSERT_TRUE(res.finished);
  // Ring: each rank sends to (r+1)%8. Cross-block sends: 1->2, 3->4, 5->6,
  // 7->0 — exactly half of the traffic.
  EXPECT_EQ(res.metrics.logged_messages, res.app_messages / 2);
}

TEST(GroupCkpt, NormLogsNothingGp1LogsEverything) {
  ExperimentConfig norm = base_config(6, 1);
  norm.checkpoints = false;
  ExperimentResult rn = run_experiment(norm);
  EXPECT_EQ(rn.metrics.logged_messages, 0);

  ExperimentConfig gp1 = base_config(6, 6);
  gp1.checkpoints = false;
  ExperimentResult r1 = run_experiment(gp1);
  EXPECT_EQ(r1.metrics.logged_messages, r1.app_messages);
}

TEST(GroupCkpt, PhasesArePositiveAndOrdered) {
  ExperimentConfig cfg = base_config(8, 2);
  ExperimentResult res = run_experiment(cfg);
  ASSERT_TRUE(res.finished);
  ASSERT_EQ(res.metrics.ckpts.size(), 8u);
  for (const auto& rec : res.metrics.ckpts) {
    EXPECT_GE(rec.begin, rec.signal_at);
    EXPECT_GT(rec.end, rec.begin);
    EXPECT_GT(rec.phases.lock_mpi, 0.0);
    EXPECT_GE(rec.phases.coordination, 0.0);
    EXPECT_GT(rec.phases.checkpoint, 0.0);  // image write
    EXPECT_GE(rec.phases.finalize, 0.0);
    EXPECT_NEAR(rec.phases.total(), sim::to_seconds(rec.end - rec.begin),
                1e-6);
  }
}

TEST(GroupCkpt, GroupMembersShareEpochAndFinishTogether) {
  ExperimentConfig cfg = base_config(8, 2);
  ExperimentResult res = run_experiment(cfg);
  ASSERT_TRUE(res.finished);
  // Within a group, the finalize barrier aligns completion times.
  std::map<std::uint64_t, std::vector<const core::CkptRecord*>> by_group;
  for (const auto& rec : res.metrics.ckpts) {
    by_group[static_cast<std::uint64_t>(rec.rank % 2)].push_back(&rec);
  }
  for (auto& [g, recs] : by_group) {
    ASSERT_EQ(recs.size(), 4u);
    for (const auto* r : recs) {
      EXPECT_EQ(r->epoch, recs.front()->epoch);
      EXPECT_NEAR(sim::to_seconds(r->end - recs.front()->end), 0.0, 0.05);
    }
  }
}

TEST(GroupCkpt, PeriodicCheckpointsAccumulate) {
  ExperimentConfig cfg = base_config(6, 3);
  cfg.schedule.interval_s = 0.15;
  ExperimentResult res = run_experiment(cfg);
  ASSERT_TRUE(res.finished);
  EXPECT_GE(res.checkpoints_completed, 2);
  // Epochs increase monotonically per group.
  std::map<int, std::uint64_t> last_epoch;
  for (const auto& rec : res.metrics.ckpts) {
    const int g = rec.rank % 3;
    EXPECT_GE(rec.epoch, last_epoch[g]);
    last_epoch[g] = rec.epoch;
  }
}

TEST(GroupCkpt, RequestNearJobEndAbortsCleanly) {
  // The request lands so close to the end of the job that the commit target
  // (current iteration + margin + skew) lies beyond the final safe point:
  // the round must abort without hanging and the job must still finish.
  ExperimentConfig cfg = base_config(6, 2);
  cfg.app = ring_app(3, 0.02);          // ends at ~0.07 s
  cfg.schedule.first_at_s = 0.055;      // commit target > 3 guaranteed
  ExperimentResult res = run_experiment(cfg);
  ASSERT_TRUE(res.finished);
  EXPECT_GT(res.metrics.aborted_rounds, 0);
  EXPECT_EQ(res.checkpoints_completed, 0);
}

TEST(GroupCkpt, GcShrinksLogsAfterCheckpoint) {
  // With periodic checkpoints, RR piggybacking garbage-collects sender logs:
  // total retained log bytes stay bounded instead of growing with run length.
  auto run = [](std::uint64_t iters) {
    ExperimentConfig cfg;
    cfg.app = ring_app(iters, 0.01);
    cfg.nranks = 4;
    cfg.groups = group::make_gp1(4);
    cfg.jitter = false;
    cfg.checkpoints = true;
    cfg.schedule.first_at_s = 0.05;
    cfg.schedule.interval_s = 0.05;
    cfg.restart_after_finish = true;  // exposes final log via resend counts
    return run_experiment(cfg);
  };
  ExperimentResult short_run = run(20);
  ExperimentResult long_run = run(60);
  // Replay volume on restart reflects retained (non-GC'd) log entries; with
  // GC it must not scale with total run length.
  EXPECT_LT(long_run.metrics.resend_bytes,
            3 * short_run.metrics.resend_bytes + 1000000);
}

TEST(GroupCkpt, ImageBytesFollowMemoryModel) {
  ExperimentConfig cfg = base_config(4, 2);
  cfg.app = [](int n) {
    apps::RingParams p;
    p.iterations = 20;
    p.mem_bytes = 64 * 1024 * 1024;
    return apps::make_ring(n, p);
  };
  ExperimentResult res = run_experiment(cfg);
  ASSERT_TRUE(res.finished);
  // 64 MiB at the 100 MB/s effective local write rate is ~0.7s per process.
  for (const auto& rec : res.metrics.ckpts) {
    EXPECT_GT(rec.phases.checkpoint, 0.6);
    EXPECT_LT(rec.phases.checkpoint, 1.2);
  }
}

TEST(GroupCkpt, CoordinationScalesWithGroupSizeNotSystemSize) {
  // The paper's core claim: coordination cost tracks the group, not n.
  auto mean_coord = [](int nranks, int ngroups) {
    ExperimentConfig cfg;
    cfg.app = [](int n) {
      apps::RingParams p;
      p.iterations = 25;
      p.compute_s = 0.02;
      return apps::make_ring(n, p);
    };
    cfg.nranks = nranks;
    cfg.groups = group::make_round_robin(nranks, ngroups);
    cfg.checkpoints = true;
    cfg.jitter = false;
    cfg.schedule.first_at_s = 0.1;
    ExperimentResult res = run_experiment(cfg);
    return res.metrics.mean_phases().coordination +
           res.metrics.mean_phases().finalize;
  };
  const double norm16 = mean_coord(16, 1);
  const double norm32 = mean_coord(32, 1);
  const double gp32 = mean_coord(32, 8);  // groups of 4
  EXPECT_GT(norm32, norm16 * 0.8);  // global cost does not shrink
  EXPECT_LT(gp32, norm32);          // grouping cuts coordination
}

}  // namespace
}  // namespace gcr::exp
