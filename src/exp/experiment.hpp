// Experiment harness: one config in, one simulated run out.
//
// Wires cluster + runtime + protocol + checkpointer + scheduler + recovery
// together the same way for every bench/test, so figures differ only in the
// parameters the paper varies.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "apps/app.hpp"
#include "ckpt/checkpointer.hpp"
#include "core/group_protocol.hpp"
#include "core/metrics.hpp"
#include "core/recovery.hpp"
#include "core/scheduler.hpp"
#include "core/vcl_protocol.hpp"
#include "group/group.hpp"
#include "sim/cluster.hpp"
#include "trace/record.hpp"

namespace gcr::exp {

enum class ProtocolKind {
  kGroup,  ///< Algorithm 1 (NORM/GP1/GPk/GP are groupings of this)
  kVcl,    ///< MPICH-VCL-style non-blocking coordinated
};

/// Checkpoint storage subsystem (DESIGN.md §13). The default — direct mode
/// with concurrency 1 — is the pre-tier single-slot FIFO device and keeps
/// historical campaign outputs byte-identical.
struct StorageConfig {
  ckpt::StorageMode mode = ckpt::StorageMode::kDirect;
  /// Fair-share width of the DIRECT devices (local disk / NFS server): K
  /// admitted transfers share the bandwidth, 1 = strict FIFO (legacy).
  int direct_concurrency = 1;
  // --- tier hierarchy (modes kBurstBuffer / kDrain) ---
  int burst_buffers = 1;               ///< shared burst-buffer servers
  double node_buffer_Bps = 2e9;        ///< per-node staging copy rate
  double burst_buffer_Bps = 400e6;     ///< per-server ingest bandwidth
  int burst_buffer_concurrency = 4;    ///< fair-share width per server
  double burst_buffer_capacity_bytes = 8e9;  ///< aggregate image capacity
  double pfs_Bps = 50e6;               ///< parallel-file-system bandwidth
  int pfs_concurrency = 8;             ///< PFS stripe width (fair-share)
};

using AppFactory = std::function<apps::AppSpec(int nranks)>;

struct FailurePlan {
  int group = 0;
  double at_s = 0;
};

struct ExperimentConfig {
  AppFactory app;
  int nranks = 16;
  std::uint64_t seed = 1;

  // Cluster model (Gideon-300 defaults; see DESIGN.md §6).
  double net_latency_s = 70e-6;
  double net_bandwidth_Bps = 12.5e6;
  // Fabric topology (DESIGN.md §14). kFlat (default) is the paper's
  // non-blocking switch and reproduces historical outputs byte-identically;
  // kFatTree/kDragonfly route every message over per-link fair-share
  // contention for the scale-extrapolation campaigns. Link bandwidths of 0
  // inherit net_bandwidth_Bps.
  sim::TopologyParams topology;
  // Engine shards (sim/shard.hpp). 1 (default) is the literal single-
  // threaded engine; N > 1 requests the conservative-lookahead window
  // coordinator with rank-resident shards. The residency gate (group
  // protocol, no direct-mode remote storage, no whole-app restart — see
  // run_experiment) covers every fabric topology, the tiered storage modes
  // and tracing; a denied request is demoted to the single home engine
  // with a warning and the reason surfaced in ExperimentResult. The count
  // actually used is clamped to the number of checkpoint groups (the plan
  // never splits a group). Outputs are byte-identical across shard counts
  // either way (DESIGN.md §15.3).
  int shards = 1;
  // Local image writes land in the page cache first (512 MB nodes); the
  // effective rate seen by the checkpointer is memory-copy-bound, not raw
  // IDE-disk-bound. Calibrated against the paper's Figure 9 image phases.
  double disk_bandwidth_Bps = 100e6;
  bool remote_storage = false;  ///< images go to 4 shared NFS servers
  int remote_servers = 4;
  double remote_bandwidth_Bps = 12.5e6;
  // Storage subsystem: tier modes route images through burst buffers with
  // write-behind draining; direct mode (default) is the paper's setup.
  StorageConfig storage;
  bool jitter = true;

  // Protocol.
  ProtocolKind protocol = ProtocolKind::kGroup;
  std::optional<group::GroupSet> groups;  ///< required for kGroup
  // Group-protocol cost-model knobs. Defaults reproduce the paper's
  // cluster; scale campaigns raise commit_margin so the leader's commit
  // fan-out (O(group) control messages over a contended fabric) cannot
  // outrun the agreed target iteration.
  core::GroupProtocolOptions protocol_options{};

  // Checkpoint schedule (enable with first_at_s/interval via `schedule`).
  bool checkpoints = false;
  core::SchedulerOptions schedule{};
  // Non-empty: per-group periodic intervals (seconds; one per group,
  // 0 = that group never checkpoints). Overrides `schedule` for the group
  // protocol — the paper's "flaky groups checkpoint more often" feature.
  std::vector<double> per_group_intervals;

  // Failure injection (group protocol only).
  std::vector<FailurePlan> failures;
  // Non-empty: random failures, one MTBF per group (seconds; <=0 = group
  // never fails), exponential arrivals until the job completes. (Legacy
  // group-level model; prefer `fault_model`.)
  std::vector<double> random_failure_mtbf_s;
  // kind != kNone: pluggable node-fault model (sim/faults.hpp) — node
  // faults map to the group hosting that node's rank; concurrent failures
  // queue recoveries (core/recovery.hpp). Composable with `failures`.
  sim::FaultModelParams fault_model;
  core::RecoveryOptions recovery{};
  // kind != kNone: planned churn (sim/churn.hpp) — drains, spot reclaims
  // and rejoins drive the elastic regrouping state machines in
  // core/recovery.hpp, with merge targets picked by a traffic-affinity
  // RegroupPlanner. Group protocol only; composable with faults. Churn
  // configs are denied shard residency (departures and merges move ranks
  // across group — and therefore shard — boundaries).
  sim::ChurnModelParams churn;
  core::ChurnOptions churn_options{};

  // The paper's restart experiment: after the job finishes, restart the
  // whole application from the stored images and measure restart prep.
  bool restart_after_finish = false;

  // Collect a full communication trace (profiling mode).
  bool collect_trace = false;

  // Watchdog: abort the run if simulated time exceeds this.
  double max_sim_s = 50000.0;
};

struct ExperimentResult {
  double exec_time_s = 0;  ///< job completion (simulated)
  core::Metrics metrics;
  trace::Trace trace;
  std::int64_t app_messages = 0;
  std::int64_t app_bytes = 0;
  int checkpoints_completed = 0;
  int failures_injected = 0;
  int failures_absorbed = 0;     ///< arrivals while the group was already down
  int recoveries_completed = 0;  ///< restores that ran to completion
  int recoveries_aborted = 0;    ///< restores re-killed mid-flight
  /// Tier counters (all zero in direct mode — see StorageConfig).
  ckpt::TierStats tier_stats;
  bool finished = false;  ///< false if the watchdog tripped

  /// Service-app aggregates (set when the app publishes service_stats —
  /// apps/service.hpp).
  std::optional<apps::ServiceStats> service;
  /// Fraction of rank-time the ranks were up over [0, exec_time]: faults
  /// accrue downtime from kill to restore completion, churn from departure
  /// to rejoin completion. 1.0 when nothing went down.
  double availability = 1.0;
  // Churn books (all zero unless config.churn is armed).
  int drains_completed = 0;
  int reclaims_clean = 0;   ///< warning window sufficed: committed + departed
  int reclaims_forced = 0;  ///< warning expired: the group failed instead
  int joins_completed = 0;
  int joins_aborted = 0;    ///< join restores cut down by a fault
  int splits_installed = 0;
  int merges_installed = 0;
  /// Group count at the end of the run (== the configured partition's
  /// count unless churn re-derived it).
  int final_num_groups = 0;

  /// Restart-experiment aggregates (valid when restart_after_finish).
  double restart_aggregate_s = 0;
  std::vector<core::RestartRecord> restart_records;

  /// Shard-residency outcome (DESIGN.md §15.3). `resident` says whether the
  /// run actually executed rank-resident; `effective_shards` is the count
  /// used (config.shards clamped to occupied checkpoint groups, or 1 after
  /// a denial); `denial_reason` is empty unless a multi-shard request was
  /// demoted — the gate never falls back silently.
  bool resident = false;
  int effective_shards = 1;
  std::string denial_reason;

  /// Events dispatched per engine shard (size == effective_shards). In a
  /// resident run every shard shows nonzero dispatch — the plan is clamped
  /// so no shard is left without ranks — the "peer shards actually execute
  /// model work" proof the shard-equivalence gate pairs with.
  std::vector<std::uint64_t> shard_events;
};

/// Group-aligned rank -> engine-shard placement. Checkpoint groups are the
/// natural partition cut: intra-group traffic is dense and uncoordinated
/// while cross-group traffic is logged and latency-padded, so every member
/// of a group lands on one shard. Greedy balance — groups walk largest
/// first, each landing on the currently least-loaded shard (ties to the
/// lowest shard index, so the plan is deterministic). With shards == 1 the
/// plan is all-zero. run_experiment installs this on the Runtime when
/// config.shards > 1 (Runtime::shard_of); under the residency gate the plan
/// decides which engine owns each rank's coroutines, channels and local
/// disk, so it is fixed before the protocol is constructed and never
/// recomputed mid-run — groups reformed by dynamic regrouping analyses do
/// not move ranks (DESIGN.md §15.3).
std::vector<int> plan_rank_shards(const group::GroupSet& groups, int shards);

ExperimentResult run_experiment(const ExperimentConfig& config);

/// Profiling helper: runs the app once with the tracer linked in (no
/// checkpoints) and returns the trace — the paper's group-formation input.
trace::Trace profile_app(const AppFactory& app, int nranks,
                         std::uint64_t seed = 1);

/// Full trace-assisted workflow: profile, then run Algorithm 2.
group::GroupSet derive_groups(const AppFactory& app, int nranks,
                              int max_group_size = 0, std::uint64_t seed = 1);

}  // namespace gcr::exp
