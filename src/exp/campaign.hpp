// Campaign runner: executes a Scenario's jobs on a worker pool and merges
// the results deterministically (DESIGN.md §12).
//
// Every job is an independent simulated run (its own Engine/Cluster — the
// simulator shares no mutable state between runs), so jobs fan out across
// threads freely. Aggregation happens *after* all jobs complete, folding
// each job's Collector into its cell in job-index order; the output is
// therefore bit-identical for `--jobs 1` and `--jobs N`.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "exp/scenario.hpp"
#include "util/stats.hpp"

namespace gcr::exp {

struct CampaignOptions {
  /// Worker threads; 0 = one per hardware thread. The pool is work-stealing
  /// over a shared job counter, so oversubscription (more workers than
  /// jobs) is harmless.
  int jobs = 0;
};

/// Aggregates for one cell of the sweep grid (one axis combination, all
/// seeds merged).
struct CellAggregate {
  std::map<std::string, RunningStats> metrics;
  std::vector<std::string> texts;  ///< job order, then add order within a job
  int runs = 0;
  int unfinished_runs = 0;  ///< watchdog-tripped runs (excluded from metrics)
};

struct CampaignResult {
  std::vector<CellAggregate> cells;  ///< indexed by SweepPoint::cell
  std::size_t jobs_run = 0;
  int unfinished_runs = 0;  ///< total across cells

  /// Stats of a metric in a cell; an empty accumulator if never collected.
  const RunningStats& stat(std::size_t cell, const std::string& metric) const;
};

/// Expands the scenario and runs every job. Exactly one of scenario.job or
/// scenario.config (+ scenario.collect) must be set; aborts otherwise.
CampaignResult run_campaign(const Scenario& scenario,
                            const CampaignOptions& options = {});

}  // namespace gcr::exp
