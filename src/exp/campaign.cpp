#include "exp/campaign.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>

#include "util/assert.hpp"

namespace gcr::exp {
namespace {

void run_job(const Scenario& scenario, const SweepPoint& point,
             Collector& out) {
  if (scenario.job) {
    scenario.job(point, out);
    return;
  }
  const ExperimentResult result = out.run(scenario.config(point));
  // A watchdog-tripped run's exec_time_s is the abort horizon, not an
  // execution time; collecting it would silently poison the averages.
  if (result.finished) scenario.collect(point, result, out);
}

}  // namespace

const RunningStats& CampaignResult::stat(std::size_t cell,
                                         const std::string& metric) const {
  static const RunningStats kEmpty;
  if (cell >= cells.size()) return kEmpty;
  const auto it = cells[cell].metrics.find(metric);
  return it == cells[cell].metrics.end() ? kEmpty : it->second;
}

CampaignResult run_campaign(const Scenario& scenario,
                            const CampaignOptions& options) {
  GCR_CHECK_MSG(
      scenario.job ? (!scenario.config && !scenario.collect)
                   : (scenario.config != nullptr &&
                      scenario.collect != nullptr),
      "Scenario needs exactly one of `job` or `config` + `collect`");

  const std::vector<SweepPoint> jobs = scenario.expand();
  std::vector<Collector> collected(jobs.size());

  std::size_t workers = options.jobs > 0
                            ? static_cast<std::size_t>(options.jobs)
                            : std::max(1u, std::thread::hardware_concurrency());
  workers = std::min(workers, jobs.size());

  if (workers <= 1) {
    for (const SweepPoint& point : jobs) {
      run_job(scenario, point, collected[point.job]);
    }
  } else {
    std::atomic<std::size_t> next{0};
    std::mutex error_mu;
    std::exception_ptr first_error;
    auto worker = [&] {
      for (std::size_t i = next.fetch_add(1); i < jobs.size();
           i = next.fetch_add(1)) {
        try {
          run_job(scenario, jobs[i], collected[i]);
        } catch (...) {
          std::lock_guard<std::mutex> lock(error_mu);
          if (!first_error) first_error = std::current_exception();
        }
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
    if (first_error) std::rethrow_exception(first_error);
  }

  // Deterministic merge: fold collectors in job-index order, single-threaded.
  CampaignResult result;
  result.cells.resize(scenario.num_cells());
  result.jobs_run = jobs.size();
  for (const SweepPoint& point : jobs) {
    Collector& col = collected[point.job];
    CellAggregate& cell = result.cells[point.cell];
    for (const auto& [metric, value] : col.samples) {
      cell.metrics[metric].add(value);
    }
    for (std::string& text : col.texts) cell.texts.push_back(std::move(text));
    cell.runs += col.runs;
    cell.unfinished_runs += col.unfinished;
    result.unfinished_runs += col.unfinished;
  }
  return result;
}

}  // namespace gcr::exp
