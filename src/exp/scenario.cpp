#include "exp/scenario.hpp"

#include "util/assert.hpp"

namespace gcr::exp {

SweepAxis SweepAxis::ints(std::string name,
                          const std::vector<std::int64_t>& values) {
  SweepAxis axis;
  axis.name = std::move(name);
  axis.values.reserve(values.size());
  for (std::int64_t v : values) axis.values.push_back(static_cast<double>(v));
  return axis;
}

SweepAxis SweepAxis::reals(std::string name, std::vector<double> values) {
  return SweepAxis{std::move(name), std::move(values)};
}

SweepAxis SweepAxis::indices(std::string name, std::size_t count) {
  SweepAxis axis;
  axis.name = std::move(name);
  axis.values.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    axis.values.push_back(static_cast<double>(i));
  }
  return axis;
}

SweepAxis fault_kind_axis(const std::vector<sim::FaultModelKind>& kinds) {
  SweepAxis axis;
  axis.name = "fault_kind";
  axis.values.reserve(kinds.size());
  for (sim::FaultModelKind k : kinds) {
    axis.values.push_back(static_cast<double>(static_cast<int>(k)));
  }
  return axis;
}

sim::FaultModelKind fault_kind_at(const SweepPoint& point) {
  return static_cast<sim::FaultModelKind>(point.get_int("fault_kind"));
}

SweepAxis churn_kind_axis(const std::vector<sim::ChurnModelKind>& kinds) {
  SweepAxis axis;
  axis.name = "churn";
  axis.values.reserve(kinds.size());
  for (sim::ChurnModelKind k : kinds) {
    axis.values.push_back(static_cast<double>(static_cast<int>(k)));
  }
  return axis;
}

sim::ChurnModelKind churn_kind_at(const SweepPoint& point) {
  return static_cast<sim::ChurnModelKind>(point.get_int("churn"));
}

SweepAxis storage_mode_axis(const std::vector<ckpt::StorageMode>& modes) {
  SweepAxis axis;
  axis.name = "storage";
  axis.values.reserve(modes.size());
  for (ckpt::StorageMode m : modes) {
    axis.values.push_back(static_cast<double>(static_cast<int>(m)));
  }
  return axis;
}

ckpt::StorageMode storage_mode_at(const SweepPoint& point) {
  return static_cast<ckpt::StorageMode>(point.get_int("storage"));
}

SweepAxis topology_axis(const std::vector<sim::TopologyKind>& kinds) {
  SweepAxis axis;
  axis.name = "topology";
  axis.values.reserve(kinds.size());
  for (sim::TopologyKind k : kinds) {
    axis.values.push_back(static_cast<double>(static_cast<int>(k)));
  }
  return axis;
}

sim::TopologyKind topology_kind_at(const SweepPoint& point) {
  return static_cast<sim::TopologyKind>(point.get_int("topology"));
}

double SweepPoint::get(const std::string& axis) const {
  for (const auto& [name, value] : values) {
    if (name == axis) return value;
  }
  GCR_CHECK_MSG(false, ("unknown sweep axis: " + axis).c_str());
  return 0;  // unreachable
}

std::int64_t SweepPoint::get_int(const std::string& axis) const {
  return static_cast<std::int64_t>(get(axis));
}

void Collector::add(const std::string& metric, double value) {
  samples.emplace_back(metric, value);
}

void Collector::add_text(std::string text) {
  texts.push_back(std::move(text));
}

ExperimentResult Collector::run(const ExperimentConfig& config) {
  ExperimentResult result = run_experiment(config);
  ++runs;
  if (!result.finished) ++unfinished;
  return result;
}

std::size_t Scenario::num_cells() const {
  std::size_t n = 1;
  for (const SweepAxis& axis : axes) n *= axis.values.size();
  return n;
}

std::size_t Scenario::num_jobs() const {
  GCR_CHECK(reps >= 1);
  return num_cells() * static_cast<std::size_t>(reps);
}

std::size_t Scenario::cell_index(
    const std::vector<std::size_t>& value_index) const {
  GCR_CHECK(value_index.size() == axes.size());
  std::size_t cell = 0;
  for (std::size_t a = 0; a < axes.size(); ++a) {
    GCR_CHECK(value_index[a] < axes[a].values.size());
    cell = cell * axes[a].values.size() + value_index[a];
  }
  return cell;
}

std::vector<SweepPoint> Scenario::expand() const {
  GCR_CHECK(reps >= 1);
  std::vector<SweepPoint> jobs;
  jobs.reserve(num_jobs());
  std::vector<std::size_t> idx(axes.size(), 0);
  for (std::size_t cell = 0; cell < num_cells(); ++cell) {
    SweepPoint base;
    base.cell = cell;
    for (std::size_t a = 0; a < axes.size(); ++a) {
      base.values.emplace_back(axes[a].name, axes[a].values[idx[a]]);
    }
    for (int rep = 1; rep <= reps; ++rep) {
      SweepPoint point = base;
      point.seed = static_cast<std::uint64_t>(rep);
      point.job = jobs.size();
      jobs.push_back(std::move(point));
    }
    // Row-major increment: last axis fastest.
    for (std::size_t a = axes.size(); a-- > 0;) {
      if (++idx[a] < axes[a].values.size()) break;
      idx[a] = 0;
    }
  }
  return jobs;
}

}  // namespace gcr::exp
