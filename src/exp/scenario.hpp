// Declarative experiment sweeps (DESIGN.md §12).
//
// A Scenario names a sweep grid — axes × seeds — and how one point of that
// grid becomes an ExperimentConfig and which metrics its result contributes.
// `expand()` flattens the grid into independent jobs (seed innermost) that
// the campaign runner (exp/campaign.hpp) executes on a worker pool and
// merges back in job-index order, so aggregates never depend on how many
// workers ran.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "exp/experiment.hpp"

namespace gcr::exp {

/// One sweep dimension: a name plus the values it takes. Values are doubles
/// (exact for the integer parameters the benches sweep, up to 2^53).
struct SweepAxis {
  std::string name;
  std::vector<double> values;

  static SweepAxis ints(std::string name,
                        const std::vector<std::int64_t>& values);
  static SweepAxis reals(std::string name, std::vector<double> values);
  /// 0..count-1 — for axes that index a caller-side table (workloads,
  /// schedules), so the axis can never drift from the table's size.
  static SweepAxis indices(std::string name, std::size_t count);
};

/// One point of the expanded grid: a value per axis plus the seed.
struct SweepPoint {
  std::vector<std::pair<std::string, double>> values;  ///< axis order
  std::uint64_t seed = 1;
  std::size_t cell = 0;  ///< flat axis-combination index (seed excluded)
  std::size_t job = 0;   ///< flat job index: cell * reps + (seed - 1)

  /// Value of a named axis; aborts on an unknown name so a typo in a bench
  /// fails loudly instead of sweeping the wrong parameter.
  double get(const std::string& axis) const;
  std::int64_t get_int(const std::string& axis) const;
};

/// Axis named "fault_kind" over fault models (values are the enum, so
/// points round-trip through `fault_kind_at`). Model shape parameters
/// (weibull shape, burst size, MTBF) sweep as ordinary `reals`/`ints` axes
/// that the bench folds into its FaultModelParams.
SweepAxis fault_kind_axis(const std::vector<sim::FaultModelKind>& kinds);
sim::FaultModelKind fault_kind_at(const SweepPoint& point);

/// Axis named "churn" over churn models (none vs drains vs spot vs rolling
/// — sim/churn.hpp); values are the enum, so points round-trip through
/// `churn_kind_at`. Rates, outages and warning windows sweep as ordinary
/// `reals` axes the bench folds into its ChurnModelParams.
SweepAxis churn_kind_axis(const std::vector<sim::ChurnModelKind>& kinds);
sim::ChurnModelKind churn_kind_at(const SweepPoint& point);

/// Axis named "storage" over checkpoint storage modes (direct device vs
/// burst buffer vs burst buffer + async drain — DESIGN.md §13); values are
/// the enum, so points round-trip through `storage_mode_at`. Bandwidths
/// and capacities sweep as ordinary `reals` axes the bench folds into its
/// StorageConfig.
SweepAxis storage_mode_axis(const std::vector<ckpt::StorageMode>& modes);
ckpt::StorageMode storage_mode_at(const SweepPoint& point);

/// Axis named "topology" over fabric shapes (flat switch vs fat-tree vs
/// dragonfly — DESIGN.md §14); values are the enum, so points round-trip
/// through `topology_kind_at`. Routing policies and link bandwidths sweep
/// as ordinary axes the bench folds into its TopologyParams.
SweepAxis topology_axis(const std::vector<sim::TopologyKind>& kinds);
sim::TopologyKind topology_kind_at(const SweepPoint& point);

/// What one job contributes to its cell's aggregates. The campaign runner
/// folds collectors cell-by-cell in job-index order, which keeps every
/// aggregate bit-identical for any worker count.
class Collector {
 public:
  /// Adds one sample of a named metric to the job's cell.
  void add(const std::string& metric, double value);

  /// Adds a preformatted text block (timelines, group listings); texts are
  /// surfaced per cell in job order.
  void add_text(std::string text);

  /// Runs one experiment with watchdog accounting: a run whose watchdog
  /// tripped (`finished == false`) is counted so the campaign can report it
  /// instead of silently averaging a truncated execution time. Job hooks
  /// should call this rather than run_experiment directly.
  ExperimentResult run(const ExperimentConfig& config);

  int runs = 0;        ///< experiments executed by this job
  int unfinished = 0;  ///< of those, watchdog-tripped ones
  std::vector<std::pair<std::string, double>> samples;
  std::vector<std::string> texts;
};

/// A declarative sweep: name, axes, repetitions, and the per-point hooks.
/// Exactly one of the two execution paths must be set:
///  * `config` (+ `collect`): the runner executes the built config once per
///    point; watchdog-tripped runs are counted and NOT passed to `collect`.
///  * `job`: full control for points that need several chained runs (e.g.
///    Figure 13's probe + fairness chain) or no run_experiment at all.
struct Scenario {
  std::string name;
  std::vector<SweepAxis> axes;
  int reps = 1;  ///< seeds 1..reps per cell

  std::function<ExperimentConfig(const SweepPoint&)> config;
  std::function<void(const SweepPoint&, const ExperimentResult&, Collector&)>
      collect;
  std::function<void(const SweepPoint&, Collector&)> job;

  std::size_t num_cells() const;
  std::size_t num_jobs() const;

  /// Flat cell index from per-axis value indices (row-major: axis 0
  /// outermost), matching the nested-loop order the benches print in.
  std::size_t cell_index(const std::vector<std::size_t>& value_index) const;

  /// Flattens the grid into jobs: cells in row-major axis order, seeds
  /// 1..reps innermost within each cell.
  std::vector<SweepPoint> expand() const;
};

}  // namespace gcr::exp
