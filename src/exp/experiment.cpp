#include "exp/experiment.hpp"

#include <algorithm>
#include <memory>
#include <string>
#include <utility>

#include "group/formation.hpp"
#include "group/strategies.hpp"
#include "mpi/runtime.hpp"
#include "trace/tracer.hpp"
#include "util/assert.hpp"
#include "util/log.hpp"

namespace gcr::exp {
namespace {

sim::ClusterParams make_cluster_params(const ExperimentConfig& config,
                                       int effective_shards) {
  sim::ClusterParams cp;
  cp.num_nodes = config.nranks + 1;  // + driver (mpirun) node
  cp.seed = config.seed;
  cp.net.latency_s = config.net_latency_s;
  cp.net.bandwidth_Bps = config.net_bandwidth_Bps;
  cp.net.topology = config.topology;
  cp.num_shards = effective_shards;
  cp.local_disk.bandwidth_Bps = config.disk_bandwidth_Bps;
  cp.local_disk.concurrency = config.storage.direct_concurrency;
  cp.num_remote_servers = config.remote_storage ? config.remote_servers : 0;
  cp.remote_server.bandwidth_Bps = config.remote_bandwidth_Bps;
  cp.remote_server.concurrency = config.storage.direct_concurrency;
  if (config.storage.mode != ckpt::StorageMode::kDirect) {
    const StorageConfig& s = config.storage;
    cp.tiers.num_burst_buffers = s.burst_buffers;
    cp.tiers.node_buffer.bandwidth_Bps = s.node_buffer_Bps;
    cp.tiers.burst_buffer.bandwidth_Bps = s.burst_buffer_Bps;
    cp.tiers.burst_buffer.concurrency = s.burst_buffer_concurrency;
    cp.tiers.pfs.bandwidth_Bps = s.pfs_Bps;
    cp.tiers.pfs.concurrency = s.pfs_concurrency;
  }
  cp.jitter.enabled = config.jitter;
  return cp;
}

}  // namespace

std::vector<int> plan_rank_shards(const group::GroupSet& groups, int shards) {
  GCR_CHECK(shards >= 1);
  std::vector<int> plan(static_cast<std::size_t>(groups.nranks()), 0);
  if (shards == 1) return plan;
  std::vector<int> order(static_cast<std::size_t>(groups.num_groups()));
  for (std::size_t g = 0; g < order.size(); ++g) {
    order[g] = static_cast<int>(g);
  }
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return groups.members(a).size() > groups.members(b).size();
  });
  std::vector<std::size_t> load(static_cast<std::size_t>(shards), 0);
  for (const int g : order) {
    std::size_t best = 0;
    for (std::size_t s = 1; s < load.size(); ++s) {
      if (load[s] < load[best]) best = s;
    }
    for (const mpi::RankId r : groups.members(g)) {
      plan[static_cast<std::size_t>(r)] = static_cast<int>(best);
    }
    load[best] += groups.members(g).size();
  }
  return plan;
}

ExperimentResult run_experiment(const ExperimentConfig& config) {
  GCR_CHECK(config.app != nullptr);
  GCR_CHECK(config.nranks > 0);

  // Shard residency (DESIGN.md §15.3): rank coroutines and their protocol
  // state live on the shard the placement plan assigns them, so peer shards
  // execute model work instead of idling. The gate covers every fabric
  // (routed injection edges are shard-invariant), tiered storage (the
  // home arbiter is reached over the ±L control edge) and tracing (per-rank
  // buffers, canonical merge); what remains denied is shared state only
  // reachable on the home engine: VCL's home-driven protocol, direct-mode
  // remote NFS devices, and the whole-application restart replay. Denial is
  // never silent — it is warned here and surfaced in ExperimentResult.
  // Decided before the cluster exists because the effective shard count
  // (clamped to occupied groups) shapes the cluster itself.
  std::string denial;
  if (config.shards > 1) {
    if (config.protocol != ProtocolKind::kGroup) {
      denial = "only the group protocol has a rank->shard placement plan";
    } else if (config.remote_storage) {
      denial = "direct-mode remote storage serializes through home-bound "
               "NFS servers";
    } else if (config.restart_after_finish) {
      denial = "whole-application restart replays on the home engine";
    } else if (config.churn.kind != sim::ChurnModelKind::kNone) {
      denial = "elastic churn regroups ranks across group (and shard) "
               "boundaries; the placement plan is fixed at construction";
    }
  }
  bool resident = config.shards > 1 && denial.empty();
  int effective_shards = 1;
  if (resident) {
    // More shards than checkpoint groups would leave shards with no ranks
    // to run: the group-aligned plan never splits a group. Clamp to the
    // occupied count so every shard that exists does model work.
    const int occupied = config.groups ? config.groups->num_groups() : 1;
    effective_shards = std::min(config.shards, occupied);
    if (effective_shards < config.shards) {
      GCR_INFO("--shards %d clamped to %d occupied checkpoint group(s)",
               config.shards, effective_shards);
    }
    if (effective_shards <= 1) {
      resident = false;
      denial = "clamped to one shard (single checkpoint group)";
      effective_shards = 1;
    }
  } else if (config.shards > 1) {
    GCR_WARN("--shards %d demoted to the single home engine: %s",
             config.shards, denial.c_str());
  }

  sim::Cluster cluster(make_cluster_params(config, effective_shards));
  mpi::Runtime runtime(cluster, config.nranks);
  apps::AppSpec spec = config.app(config.nranks);

  ckpt::CheckpointerOptions ckpt_opts;
  ckpt_opts.remote_storage = config.remote_storage;
  ckpt_opts.mode = config.storage.mode;
  ckpt_opts.bb_capacity_bytes =
      static_cast<std::int64_t>(config.storage.burst_buffer_capacity_bytes);
  ckpt::Checkpointer checkpointer(cluster, ckpt_opts);
  ckpt::ImageRegistry registry;
  registry.reserve_ranks(config.nranks);
  core::Metrics metrics;

  trace::Tracer tracer;
  if (config.collect_trace) {
    tracer.prepare(config.nranks);
    runtime.add_observer(&tracer);
  }

  std::unique_ptr<core::GroupProtocol> group_protocol;
  std::unique_ptr<core::VclProtocol> vcl_protocol;
  std::unique_ptr<core::CheckpointScheduler> scheduler;
  std::unique_ptr<core::RecoveryManager> recovery;
  std::unique_ptr<core::TrafficMatrix> traffic;
  std::unique_ptr<core::RegroupPlanner> planner;

  if (config.protocol == ProtocolKind::kGroup) {
    GCR_CHECK_MSG(config.groups.has_value(),
                  "group protocol requires a GroupSet");
    if (resident) {
      // Before the protocol exists: resident plans rebuild the Rank objects
      // (their channels bind to the owning shard's engine) and rebind the
      // per-node storage devices to their shards.
      runtime.set_shard_plan(
          plan_rank_shards(*config.groups, effective_shards), true);
    }
    group_protocol = std::make_unique<core::GroupProtocol>(
        runtime, *config.groups, checkpointer, registry, spec.image_bytes,
        metrics, config.protocol_options);
    runtime.set_protocol(group_protocol.get());
    if (!config.per_group_intervals.empty()) {
      core::CheckpointScheduler::start_per_group(runtime, *group_protocol,
                                                 config.per_group_intervals);
    } else if (config.checkpoints) {
      scheduler = std::make_unique<core::CheckpointScheduler>(
          core::CheckpointScheduler::for_groups(runtime, *group_protocol,
                                                config.schedule));
    }
    recovery = std::make_unique<core::RecoveryManager>(
        runtime, *group_protocol, registry, checkpointer, config.recovery);
    for (const FailurePlan& f : config.failures) {
      recovery->fail_group_at(f.group, sim::from_seconds(f.at_s));
    }
    if (!config.random_failure_mtbf_s.empty()) {
      recovery->arm_random_failures(config.random_failure_mtbf_s);
    }
    if (config.fault_model.kind != sim::FaultModelKind::kNone) {
      recovery->arm_fault_model(sim::make_fault_model(config.fault_model));
    }
    if (config.churn.kind != sim::ChurnModelKind::kNone) {
      GCR_CHECK_MSG(config.per_group_intervals.empty(),
                    "per-group intervals are indexed into a static "
                    "partition; churn re-derives the partition — use the "
                    "uniform schedule");
      traffic = std::make_unique<core::TrafficMatrix>(config.nranks);
      runtime.add_observer(traffic.get());
      planner = std::make_unique<core::RegroupPlanner>(traffic.get());
      recovery->arm_churn_model(sim::make_churn_model(config.churn),
                                planner.get(), config.churn_options);
    }
  } else {
    GCR_CHECK_MSG(config.failures.empty() && !config.restart_after_finish &&
                      config.fault_model.kind == sim::FaultModelKind::kNone,
                  "VCL restart/failures are not supported (see DESIGN.md §8)");
    vcl_protocol = std::make_unique<core::VclProtocol>(
        runtime, checkpointer, spec.image_bytes, metrics);
    runtime.set_protocol(vcl_protocol.get());
    if (config.checkpoints) {
      scheduler = std::make_unique<core::CheckpointScheduler>(
          core::CheckpointScheduler::for_vcl(runtime, *vcl_protocol,
                                             config.schedule));
    }
  }
  if (scheduler) scheduler->start();

  runtime.start_app(spec.body);

  const sim::Time deadline = sim::from_seconds(config.max_sim_s);
  cluster.shards().run_while([&] {
    // virtual_now() tracks the global window plan; the home clock freezes
    // while the remaining activity lives on peer shards, which would make a
    // home-clock deadline never fire in resident runs.
    const sim::Time now = runtime.resident() ? cluster.shards().virtual_now()
                                             : cluster.engine().now();
    return !runtime.job_finished() && now < deadline;
  });
  if (group_protocol) group_protocol->finalize_metrics();

  ExperimentResult result;
  result.finished = runtime.job_finished();
  // Resident runs end on whichever shard hosted the last rank to finish;
  // finish_time() records that instant exactly (the home clock may trail by
  // up to one lookahead fence).
  const sim::Time end_time =
      runtime.resident()
          ? (result.finished ? runtime.finish_time()
                             : cluster.shards().max_now())
          : cluster.engine().now();
  result.exec_time_s = sim::to_seconds(end_time);
  result.app_messages = runtime.app_messages_sent();
  result.app_bytes = runtime.app_bytes_sent();
  result.failures_injected = recovery ? recovery->failures_injected() : 0;
  result.failures_absorbed = recovery ? recovery->failures_absorbed() : 0;
  result.recoveries_completed = recovery ? recovery->recoveries_completed() : 0;
  result.recoveries_aborted = recovery ? recovery->recoveries_aborted() : 0;
  result.availability = recovery ? recovery->availability(end_time) : 1.0;
  if (recovery) {
    result.drains_completed = recovery->drains_completed();
    result.reclaims_clean = recovery->reclaims_clean();
    result.reclaims_forced = recovery->reclaims_forced();
    result.joins_completed = recovery->joins_completed();
    result.joins_aborted = recovery->joins_aborted();
    result.splits_installed = recovery->splits_installed();
    result.merges_installed = recovery->merges_installed();
  }
  result.final_num_groups =
      group_protocol ? group_protocol->groups().num_groups() : 0;
  if (spec.service_stats) result.service = spec.service_stats();

  if (result.finished && config.restart_after_finish && recovery) {
    const std::size_t before = metrics.restarts.size();
    recovery->restart_all_at(cluster.engine().now() + sim::from_seconds(1.0));
    const std::size_t want = before + static_cast<std::size_t>(config.nranks);
    cluster.shards().run_while([&] {
      return metrics.restarts.size() < want &&
             cluster.engine().now() < deadline + sim::from_seconds(5000);
    });
    GCR_CHECK_MSG(metrics.restarts.size() >= want,
                  "whole-application restart did not complete");
    for (std::size_t i = before; i < metrics.restarts.size(); ++i) {
      const auto& r = metrics.restarts[i];
      result.restart_aggregate_s += sim::to_seconds(r.end - r.begin);
      result.restart_records.push_back(r);
    }
  }

  result.resident = resident;
  result.effective_shards = effective_shards;
  result.denial_reason = std::move(denial);
  for (int s = 0; s < effective_shards; ++s) {
    result.shard_events.push_back(cluster.shards().shard_events(s));
  }
  result.checkpoints_completed = metrics.completed_rounds(config.nranks);
  if (const ckpt::TierStats* ts = checkpointer.tier_stats()) {
    result.tier_stats = *ts;
  }
  result.metrics = std::move(metrics);
  if (config.collect_trace) result.trace = tracer.take();
  return result;
}

trace::Trace profile_app(const AppFactory& app, int nranks,
                         std::uint64_t seed) {
  ExperimentConfig config;
  config.app = app;
  config.nranks = nranks;
  config.seed = seed;
  config.collect_trace = true;
  config.protocol = ProtocolKind::kGroup;
  config.groups = group::make_norm(nranks);
  config.checkpoints = false;
  ExperimentResult result = run_experiment(config);
  GCR_CHECK_MSG(result.finished, "profiling run did not finish");
  return std::move(result.trace);
}

group::GroupSet derive_groups(const AppFactory& app, int nranks,
                              int max_group_size, std::uint64_t seed) {
  const trace::Trace trace = profile_app(app, nranks, seed);
  group::FormationOptions options;
  options.max_group_size = max_group_size;
  return group::form_groups_from_trace(nranks, trace, options);
}

}  // namespace gcr::exp
