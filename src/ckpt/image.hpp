// Checkpoint image metadata and the in-memory image registry.
//
// The *timing* of image IO is modeled through sim::StorageDevice; the
// *content* that must survive a restart (runtime snapshot + protocol state)
// is held here, keyed by rank. This is the modeled equivalent of BLCR
// context files plus the protocol's flushed message logs.
#pragma once

#include <any>
#include <cstdint>
#include <map>
#include <optional>

#include "mpi/rank.hpp"
#include "sim/time.hpp"

namespace gcr::ckpt {

struct ImageMeta {
  mpi::RankId rank = 0;
  std::uint64_t epoch = 0;       ///< per-group checkpoint counter
  std::int64_t bytes = 0;        ///< modeled image size (drives IO timing)
  sim::Time written_at = 0;
};

/// One durable per-rank checkpoint: what a restart reads back.
struct StoredCheckpoint {
  ImageMeta meta;
  mpi::RankSnapshot runtime_state;
  std::any protocol_state;  ///< protocol-private snapshot (message logs, RR)
};

/// Latest-image registry. The paper keeps one checkpoint per group (each
/// successful checkpoint "comes with a correct set of message logs" and
/// supersedes the previous); we keep the latest per rank.
class ImageRegistry {
 public:
  void put(StoredCheckpoint image) {
    images_[image.meta.rank] = std::move(image);
  }

  /// nullptr if the rank never checkpointed (restart from scratch).
  const StoredCheckpoint* latest(mpi::RankId rank) const {
    auto it = images_.find(rank);
    return it == images_.end() ? nullptr : &it->second;
  }

  std::size_t count() const { return images_.size(); }
  void clear() { images_.clear(); }

 private:
  std::map<mpi::RankId, StoredCheckpoint> images_;
};

}  // namespace gcr::ckpt
