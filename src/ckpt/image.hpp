// Checkpoint image metadata and the in-memory image registry.
//
// The *timing* of image IO is modeled through sim::StorageDevice (and, in
// tiered modes, ckpt::TierStore, whose stage/commit/discard transitions
// mirror this registry's visibility protocol byte-for-byte); the *content*
// that must survive a restart (runtime snapshot + protocol state) is held
// here, keyed by rank. This is the modeled equivalent of BLCR
// context files plus the protocol's flushed message logs.
#pragma once

#include <any>
#include <atomic>
#include <cstdint>
#include <optional>
#include <vector>

#include "mpi/rank.hpp"
#include "sim/time.hpp"
#include "util/assert.hpp"

namespace gcr::ckpt {

struct ImageMeta {
  mpi::RankId rank = 0;
  std::uint64_t epoch = 0;       ///< per-group checkpoint counter
  std::int64_t bytes = 0;        ///< modeled image size (drives IO timing)
  sim::Time written_at = 0;
  /// Registry-global commit identity: every commit_group (and put) call
  /// stamps one fresh cut id on the images it promotes. Two images share a
  /// cut_seq iff they were committed by the same group commit — i.e. they
  /// belong to one consistent coordinated cut. Restore uses this to decide
  /// which peers a restored rank must exchange/replay with when elastic
  /// regrouping has mixed cuts inside one group (DESIGN.md §16).
  std::uint64_t cut_seq = 0;
};

/// One durable per-rank checkpoint: what a restart reads back.
struct StoredCheckpoint {
  ImageMeta meta;
  mpi::RankSnapshot runtime_state;
  std::any protocol_state;  ///< protocol-private snapshot (message logs, RR)
};

/// Latest-image registry. The paper keeps one checkpoint per group (each
/// successful checkpoint "comes with a correct set of message logs" and
/// supersedes the previous); we keep the latest per rank.
///
/// Storage is a flat per-rank slot array so that, in shard-resident runs,
/// every access for rank r (stage/commit by r's group — one shard, since
/// groups are placed whole — and restore reads posted to r's shard) touches
/// only r's slots: distinct ranks' operations from different shard threads
/// never share memory. Slots grow lazily only in single-threaded use;
/// `reserve_ranks` pre-sizes them before a parallel run.
///
/// Image visibility is two-phase so a failure mid-checkpoint never exposes
/// a torn or mixed-epoch group cut: each member stages its image at the
/// consistent cut, and once every member's write has finished (the group's
/// finalize barrier acks are all in) the leader commits the whole group's
/// staged images at one simulated instant with `commit_group`. A failure
/// before the commit discards the stage (`discard_staged`, called when a
/// rank is killed), so restore either sees the complete new epoch for every
/// member or the previous epoch for every member — never a mixture.
class ImageRegistry {
 public:
  /// Pre-sizes the slot arrays for ranks [0, n). Must be called before a
  /// shard-resident run so no slot access ever reallocates.
  void reserve_ranks(int n) {
    const auto s = static_cast<std::size_t>(n);
    if (images_.size() < s) images_.resize(s);
    if (staged_.size() < s) staged_.resize(s);
  }

  /// Immediate visibility; used by protocols whose commit point needs no
  /// group agreement (VCL's global rounds) and by tests.
  void put(StoredCheckpoint image) {
    const mpi::RankId r = image.meta.rank;
    ensure(r);
    image.meta.cut_seq = next_cut();
    images_[static_cast<std::size_t>(r)] = std::move(image);
  }

  /// Stages a rank's image pending group commit (replaces any prior stage).
  void stage(StoredCheckpoint image) {
    const mpi::RankId r = image.meta.rank;
    ensure(r);
    staged_[static_cast<std::size_t>(r)] = std::move(image);
  }

  /// Drops a rank's staged image, if any (failure before commit).
  void discard_staged(mpi::RankId rank) {
    if (static_cast<std::size_t>(rank) < staged_.size()) {
      staged_[static_cast<std::size_t>(rank)].reset();
    }
  }

  /// True while a staged image awaits its group's commit.
  bool has_staged(mpi::RankId rank) const {
    return static_cast<std::size_t>(rank) < staged_.size() &&
           staged_[static_cast<std::size_t>(rank)].has_value();
  }

  /// Atomically promotes every member's staged image of `epoch` to latest.
  /// All members must have staged that epoch (protocol invariant: the
  /// finalize barrier only passes once every member wrote its image).
  void commit_group(const std::vector<mpi::RankId>& members,
                    std::uint64_t epoch) {
    const std::uint64_t cut = next_cut();
    for (mpi::RankId r : members) {
      ensure(r);
      std::optional<StoredCheckpoint>& st = staged_[static_cast<std::size_t>(r)];
      GCR_CHECK_MSG(st.has_value() && st->meta.epoch == epoch,
                    "commit_group: a member has no staged image for this "
                    "epoch (finalize barrier passed without a write?)");
      st->meta.cut_seq = cut;
      images_[static_cast<std::size_t>(r)] = std::move(*st);
      st.reset();
    }
  }

  /// nullptr if the rank never checkpointed (restart from scratch).
  const StoredCheckpoint* latest(mpi::RankId rank) const {
    if (static_cast<std::size_t>(rank) >= images_.size()) return nullptr;
    const std::optional<StoredCheckpoint>& img =
        images_[static_cast<std::size_t>(rank)];
    return img.has_value() ? &*img : nullptr;
  }

  /// Ranks with a committed (restore-visible) image.
  std::size_t count() const {
    std::size_t n = 0;
    for (const std::optional<StoredCheckpoint>& img : images_) {
      if (img.has_value()) ++n;
    }
    return n;
  }
  /// Drops every committed and staged image (test teardown).
  void clear() {
    images_.clear();
    staged_.clear();
  }

 private:
  void ensure(mpi::RankId r) {
    GCR_ASSERT(r >= 0);
    if (static_cast<std::size_t>(r) >= images_.size()) {
      reserve_ranks(r + 1);
    }
  }

  std::uint64_t next_cut() {
    // Relaxed is enough: in resident runs distinct groups may commit from
    // different shard threads concurrently, but cut_seq is only ever
    // COMPARED between images of one group, which are stamped by one call.
    return cuts_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  std::vector<std::optional<StoredCheckpoint>> images_;
  std::vector<std::optional<StoredCheckpoint>> staged_;
  std::atomic<std::uint64_t> cuts_{0};
};

}  // namespace gcr::ckpt
