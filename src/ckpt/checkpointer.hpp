// BLCR-like per-process checkpointer model.
//
// The protocol treats the system-level checkpointer as a black box that
// dumps/loads a process image of a given size; what matters for every
// experiment is the duration, which is dominated by the storage device
// (local disk, or a shared NFS checkpoint server with heavy contention at
// scale — paper §5.3). A fixed per-image setup cost models BLCR's
// quiesce/fork work.
#pragma once

#include <cstdint>
#include <functional>

#include "sim/cluster.hpp"
#include "sim/co.hpp"

namespace gcr::ckpt {

struct CheckpointerOptions {
  bool remote_storage = false;   ///< write to shared checkpoint servers
  double setup_s = 0.05;         ///< BLCR quiesce + metadata per image
};

class Checkpointer {
 public:
  Checkpointer(sim::Cluster& cluster, CheckpointerOptions options = {})
      : cluster_(&cluster), options_(options) {
    if (options_.remote_storage) {
      GCR_CHECK_MSG(cluster.has_remote_storage(),
                    "remote_storage requires cluster remote servers");
    }
  }

  const CheckpointerOptions& options() const { return options_; }

  /// Dumps an image of `bytes` from the process on `node`.
  sim::Co<void> write_image(int node, std::int64_t bytes) {
    co_await sim::delay(cluster_->engine(),
                        sim::from_seconds(options_.setup_s));
    co_await device_for(node).write(bytes);
  }

  /// Dumps an image, invoking `on_transfer_start` once the storage device
  /// begins the physical transfer (after queueing behind other images).
  sim::Co<void> write_image(int node, std::int64_t bytes,
                            std::function<void()> on_transfer_start) {
    co_await sim::delay(cluster_->engine(),
                        sim::from_seconds(options_.setup_s));
    co_await device_for(node).write(bytes, std::move(on_transfer_start));
  }

  /// Loads an image of `bytes` back into a process on `node`.
  sim::Co<void> read_image(int node, std::int64_t bytes) {
    co_await sim::delay(cluster_->engine(),
                        sim::from_seconds(options_.setup_s));
    co_await device_for(node).read(bytes);
  }

  /// Appends `bytes` of message-log data to stable storage (Algorithm 1's
  /// "synchronize message logs" flush before a checkpoint).
  sim::Co<void> flush_log(int node, std::int64_t bytes) {
    if (bytes <= 0) co_return;
    co_await device_for(node).write(bytes);
  }

  sim::StorageDevice& device_for(int node) {
    return options_.remote_storage ? cluster_->remote_server_for(node)
                                   : cluster_->local_disk(node);
  }

 private:
  sim::Cluster* cluster_;
  CheckpointerOptions options_;
};

}  // namespace gcr::ckpt
