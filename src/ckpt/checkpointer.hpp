// BLCR-like per-process checkpointer model over pluggable storage paths.
//
// The protocol treats the system-level checkpointer as a black box that
// dumps/loads a process image of a given size; what matters for every
// experiment is the duration, which is dominated by storage (local disk, a
// shared NFS checkpoint server with heavy contention at scale — paper §5.3
// — or the burst-buffer/PFS tier hierarchy of DESIGN.md §13). A fixed
// per-image setup cost models BLCR's quiesce/fork work.
//
// Image IO is two-phase to mirror ImageRegistry's visibility protocol:
// stage_image makes the bytes durable at the mode's commit tier,
// commit_image makes them the restore source, discard_staged throws them
// away on failure. In StorageMode::kDirect the stage/commit calls reduce to
// exactly the legacy single-device write (commit is a no-op), which keeps
// pre-tier campaign outputs bit-identical.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "ckpt/tiers.hpp"
#include "sim/cluster.hpp"
#include "sim/co.hpp"

namespace gcr::ckpt {

struct CheckpointerOptions {
  bool remote_storage = false;   ///< direct mode: write to shared NFS servers
  double setup_s = 0.05;         ///< BLCR quiesce + metadata per image (s)
  /// Storage path for images. Non-direct modes require the cluster's tier
  /// hierarchy (ClusterParams::tiers) and exclude `remote_storage`.
  StorageMode mode = StorageMode::kDirect;
  /// Aggregate burst-buffer capacity (non-direct modes only).
  std::int64_t bb_capacity_bytes = std::int64_t{8} << 30;
};

class Checkpointer {
 public:
  /// `cluster` must outlive the checkpointer. Asserts that the cluster has
  /// the devices the configured mode needs.
  Checkpointer(sim::Cluster& cluster, CheckpointerOptions options = {})
      : cluster_(&cluster), options_(options) {
    if (options_.mode == StorageMode::kDirect) {
      if (options_.remote_storage) {
        GCR_CHECK_MSG(cluster.has_remote_storage(),
                      "remote_storage requires cluster remote servers");
      }
    } else {
      GCR_CHECK_MSG(!options_.remote_storage,
                    "remote_storage is a direct-mode path; tiered modes "
                    "write through the burst buffer");
      tiers_.emplace(cluster,
                     TierStoreOptions{options_.mode,
                                      options_.bb_capacity_bytes});
    }
  }

  const CheckpointerOptions& options() const { return options_; }

  /// Dumps an image of `bytes` from the process on `node` for `rank` at
  /// checkpoint `epoch`. Blocks the caller until the image is durable at
  /// the mode's commit tier (direct device / burst buffer); the image
  /// stays STAGED until commit_image or discard_staged. Kill-safe: a
  /// failure mid-write strands no device slot or tier capacity.
  sim::Co<void> stage_image(int node, mpi::RankId rank, std::uint64_t epoch,
                            std::int64_t bytes) {
    co_await sim::delay(io_engine(node), sim::from_seconds(options_.setup_s));
    if (tiers_) {
      co_await tiers_->stage_image(node, rank, epoch, bytes);
    } else {
      co_await device_for(node).write(bytes);
    }
  }

  /// Promotes one rank's staged image to the restore source and starts the
  /// write-behind drain in kDrain mode. Synchronous (no suspension), so a
  /// leader can commit a whole group at one simulated instant; pair with
  /// ImageRegistry::commit_group. No-op in direct mode.
  void commit_image(mpi::RankId rank) {
    if (tiers_) tiers_->commit_image(rank);
  }

  /// commit_image for every group member, in member order.
  void commit_images(const std::vector<mpi::RankId>& ranks) {
    for (mpi::RankId r : ranks) commit_image(r);
  }

  /// Drops a rank's staged image bytes, if any (failure before the group's
  /// commit point). Synchronous; pair with ImageRegistry::discard_staged.
  void discard_staged(mpi::RankId rank) {
    if (tiers_) tiers_->discard_staged(rank);
  }

  /// Node fault: the rank's stage dies with it AND its committed image
  /// loses node-buffer residency, so the coming restore reads from a
  /// shared tier (burst buffer / PFS). Voluntary restarts skip this — a
  /// relaunch on a healthy node reads back at staging-buffer speed.
  /// Synchronous. (The recovery manager's failure path calls this; the
  /// protocol's kill hook calls only discard_staged.)
  void on_node_failed(mpi::RankId rank) {
    if (tiers_) tiers_->on_node_failed(rank);
  }

  /// Loads `rank`'s image of `bytes` back into a process on `node`,
  /// reading from the fastest tier holding the committed image (direct
  /// mode: the node's device). Blocks until the data is in memory.
  sim::Co<void> read_image(int node, mpi::RankId rank, std::int64_t bytes) {
    co_await sim::delay(io_engine(node), sim::from_seconds(options_.setup_s));
    if (tiers_) {
      co_await tiers_->read_image(node, rank, bytes);
    } else {
      co_await device_for(node).read(bytes);
    }
  }

  /// Direct-mode anonymous image write (analytic tests and callers with no
  /// commit protocol): setup + device write, durable on completion.
  sim::Co<void> write_image(int node, std::int64_t bytes) {
    GCR_CHECK_MSG(!tiers_, "tiered modes stage images per rank; use "
                           "stage_image/commit_image");
    co_await sim::delay(io_engine(node), sim::from_seconds(options_.setup_s));
    co_await device_for(node).write(bytes);
  }

  /// Appends `bytes` of message-log data to stable storage (Algorithm 1's
  /// "synchronize message logs" flush before a checkpoint). No setup cost;
  /// zero bytes complete without suspending.
  sim::Co<void> flush_log(int node, std::int64_t bytes) {
    if (bytes <= 0) co_return;
    if (tiers_) {
      co_await tiers_->flush_log(node, bytes);
    } else {
      co_await device_for(node).write(bytes);
    }
  }

  /// The direct-mode device a given node writes images to.
  sim::StorageDevice& device_for(int node) {
    return options_.remote_storage ? cluster_->remote_server_for(node)
                                   : cluster_->local_disk(node);
  }

  /// The engine a node's image IO begins on: its direct device's engine
  /// (the node's shard when local disks are shard-bound, the home shard
  /// for shared NFS), or the node's staging buffer's engine for the tier
  /// hierarchy (the node's shard when a resident plan rebound buffers —
  /// the BLCR quiesce runs on the node, not at the arbiter). Identical to
  /// cluster().engine() outside shard-resident runs.
  sim::Engine& io_engine(int node) {
    return tiers_ ? cluster_->node_buffer(node).engine()
                  : device_for(node).engine();
  }

  /// Tier counters, or nullptr in direct mode.
  const TierStats* tier_stats() const {
    return tiers_ ? &tiers_->stats() : nullptr;
  }

 private:
  sim::Cluster* cluster_;
  CheckpointerOptions options_;
  std::optional<TierStore> tiers_;
};

}  // namespace gcr::ckpt
