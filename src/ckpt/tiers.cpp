#include "ckpt/tiers.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "sim/awaitables.hpp"
#include "util/assert.hpp"

namespace gcr::ckpt {

const char* storage_mode_name(StorageMode mode) {
  switch (mode) {
    case StorageMode::kDirect: return "direct";
    case StorageMode::kBurstBuffer: return "bb";
    case StorageMode::kDrain: return "drain";
  }
  return "?";
}

TierStore::TierStore(sim::Cluster& cluster, const TierStoreOptions& options)
    : cluster_(&cluster), options_(options), space_freed_(cluster.engine()),
      node_seq_(static_cast<std::size_t>(cluster.num_nodes()), 0),
      replies_(static_cast<std::size_t>(cluster.shards().num_shards())) {
  GCR_CHECK_MSG(cluster.has_tiered_storage(),
                "TierStore requires cluster burst buffers (num_burst_buffers)");
  GCR_CHECK_MSG(options_.mode != StorageMode::kDirect,
                "direct mode bypasses the tier store");
  GCR_CHECK(options_.bb_capacity_bytes > 0);
}

// --------------------------------------------------------- control edge
//
// Same-tick arrivals at the home arbiter are batched and executed in
// (subject node, per-node seq) order. Every op lands as its own posted
// event, so by the time the first one executes, all of the tick's ops are
// already queued; the flush is scheduled via call_at(now) — inserted after
// them — and therefore sees the complete batch. The sort key is assigned
// on the subject's shard in its deterministic execution order, so the
// admission order is a pure function of model state, not of --shards.

void TierStore::post_op(TierOp op) {
  sim::ShardedEngine& sh = cluster_->shards();
  const int from = cluster_->node_shard(op.node);
  const sim::Time at = sh.shard(from).now() + rpc_latency();
  sh.post_at(from, /*to=*/0, at,
             sim::SmallFn([this, op]() mutable { enqueue_op(op); }));
}

void TierStore::enqueue_op(TierOp op) {
  pending_ops_.push_back(op);
  if (!flush_scheduled_) {
    flush_scheduled_ = true;
    home().post(sim::SmallFn([this] { flush_ops(); }));
  }
}

void TierStore::flush_ops() {
  flush_scheduled_ = false;
  std::sort(pending_ops_.begin(), pending_ops_.end(),
            [](const TierOp& a, const TierOp& b) {
              if (a.node != b.node) return a.node < b.node;
              return a.seq < b.seq;
            });
  for (TierOp& op : pending_ops_) run_op(op);
  pending_ops_.clear();
}

void TierStore::post_reply(int node, std::uint64_t seq, int result) {
  sim::ShardedEngine& sh = cluster_->shards();
  const int to = cluster_->node_shard(node);
  sh.post_at(/*from=*/0, to, home().now() + rpc_latency(),
             sim::SmallFn([this, to, node, seq, result] {
               auto& waiters = replies_[static_cast<std::size_t>(to)];
               auto it = waiters.find(ReplyKey{node, seq});
               if (it == waiters.end()) return;  // caller killed mid-wait
               *it->second.result = result;
               it->second.trigger->fire();
             }));
}

sim::Co<void> TierStore::await_reply(int node, std::uint64_t seq,
                                     int* result) {
  auto& waiters = replies_[static_cast<std::size_t>(
      cluster_->node_shard(node))];
  sim::Trigger reply(node_engine(node));
  const ReplyKey key{node, seq};
  waiters[key] = ReplyWaiter{&reply, result};
  // RAII unregistration: a kill mid-wait must not leave a trigger pointer
  // into a dead stack frame (mirrors Runtime::await_egress).
  struct Guard {
    std::map<ReplyKey, ReplyWaiter>* waiters;
    ReplyKey key;
    ~Guard() { waiters->erase(key); }
  } guard{&waiters, key};
  co_await reply.wait();
}

void TierStore::kill_pipeline(sim::ProcPtr& proc) {
  if (proc && proc->alive()) home().kill(*proc);
  proc.reset();
}

// ------------------------------------------------------- capacity arbiter

void TierStore::release_bb(std::int64_t bytes) {
  stats_.bb_bytes_used -= bytes;
  GCR_CHECK(stats_.bb_bytes_used >= 0);
  space_freed_.fire();
}

bool TierStore::evict_for(std::int64_t bytes) {
  while (stats_.bb_bytes_used + bytes > options_.bb_capacity_bytes) {
    // Oldest-commit-first over images that already drained to the PFS —
    // the only residents whose eviction keeps `committed => resident`.
    RankImages* victim = nullptr;
    for (auto& [rank, ri] : ranks_) {
      if (ri.committed && ri.committed->in_bb && ri.committed->in_pfs &&
          (victim == nullptr || ri.commit_seq < victim->commit_seq)) {
        victim = &ri;
      }
    }
    if (victim == nullptr) return false;
    victim->committed->in_bb = false;
    ++stats_.evictions;
    release_bb(victim->committed->bytes);
  }
  return true;
}

sim::Co<void> TierStore::reserve_bb(std::int64_t bytes) {
  GCR_CHECK_MSG(bytes <= options_.bb_capacity_bytes,
                "one image exceeds the whole burst-buffer capacity");
  for (;;) {
    if (stats_.bb_bytes_used + bytes <= options_.bb_capacity_bytes) break;
    if (evict_for(bytes)) break;
    // Pool exhausted and nothing evictable. In kDrain mode progress is
    // guaranteed — every committed image eventually drains and becomes
    // evictable — so the writer parks until a drain/discard/supersede
    // frees space. In kBurstBuffer mode nothing ever drains, and a
    // group's commit cannot free space before ALL its members staged, so
    // waiting here can deadlock the job into a watchdog trip; fail fast
    // with the sizing rule instead.
    GCR_CHECK_MSG(
        options_.mode == StorageMode::kDrain,
        "burst-buffer capacity exhausted in kBurstBuffer mode (nothing "
        "drains, so nothing is evictable): size bb_capacity_bytes to at "
        "least the committed images plus one full group's stage");
    ++stats_.writer_stalls;
    space_freed_.reset();
    co_await space_freed_.wait();
  }
  stats_.bb_bytes_used += bytes;
  stats_.bb_bytes_peak = std::max(stats_.bb_bytes_peak, stats_.bb_bytes_used);
}

// ------------------------------------------------------------- write path

sim::Co<void> TierStore::stage_image(int node, mpi::RankId rank,
                                     std::uint64_t epoch, std::int64_t bytes) {
  GCR_CHECK(bytes >= 0);
  // Memory-speed copy out of the application's address space into the
  // node's staging buffer (the process resumes only after the full image
  // left its memory — same blocking contract as a direct device write).
  // Runs on the node's own shard; only then does the request cross home.
  co_await cluster_->node_buffer(node).write(bytes);
  const std::uint64_t seq = node_seq_[static_cast<std::size_t>(node)]++;
  post_op(TierOp{TierOp::Kind::kStage, node, rank, seq, epoch, bytes});
  int result = 0;
  co_await await_reply(node, seq, &result);
}

sim::Co<void> TierStore::stage_body(mpi::RankId rank, int node,
                                    std::uint64_t epoch, std::int64_t bytes,
                                    std::uint64_t seq) {
  co_await reserve_bb(bytes);
  // From here the reservation must survive a mid-transfer kill (the
  // failure notice kills this pipeline): the guard returns it unless the
  // bytes are handed off to the staged image below.
  struct ReserveGuard {
    TierStore* ts;
    std::int64_t bytes;
    bool handed_off = false;
    ~ReserveGuard() {
      if (!handed_off) ts->release_bb(bytes);
    }
  } guard{this, bytes};
  co_await cluster_->burst_buffer_for(node).write(bytes);

  RankImages& ri = ranks_[rank];
  if (ri.staged) release_bb(ri.staged->bytes);  // replaced prior stage
  Image img;
  img.epoch = epoch;
  img.bytes = bytes;
  img.in_local = true;
  img.in_bb = true;
  ri.staged = std::move(img);
  guard.handed_off = true;
  ++stats_.images_staged;
  ri.stage_pipeline.reset();  // done; self-release like drain_body
  post_reply(node, seq, kReplyDone);
}

void TierStore::drop_committed(RankImages& ri) {
  if (!ri.committed) return;
  if (ri.committed->drain && ri.committed->drain->alive()) {
    // Write-behind of a superseded epoch: abandon it (the PFS stops
    // spending bandwidth on an image no restore will ever pick).
    cluster_->engine().kill(*ri.committed->drain);
    ++stats_.drains_abandoned;
  }
  if (ri.committed->in_bb) release_bb(ri.committed->bytes);
  ri.committed.reset();
}

void TierStore::commit_image(mpi::RankId rank) {
  const int node = rank;  // mpi::Runtime hosts rank r on node r
  const std::uint64_t seq = node_seq_[static_cast<std::size_t>(node)]++;
  post_op(TierOp{TierOp::Kind::kCommit, node, rank, seq, 0, 0});
}

void TierStore::do_commit(mpi::RankId rank) {
  RankImages& ri = ranks_[rank];
  GCR_CHECK_MSG(ri.staged.has_value(),
                "commit_image without a staged image (finalize barrier "
                "passed without a write?)");
  drop_committed(ri);
  ri.committed = std::move(ri.staged);
  ri.staged.reset();
  ri.commit_seq = next_commit_seq_++;
  if (options_.mode == StorageMode::kDrain) {
    ++stats_.drains_started;
    ri.committed->drain = cluster_->engine().spawn(
        "drain" + std::to_string(rank),
        drain_body(rank, ri.committed->epoch, ri.committed->bytes));
  }
}

void TierStore::discard_staged(mpi::RankId rank) {
  const int node = rank;
  const std::uint64_t seq = node_seq_[static_cast<std::size_t>(node)]++;
  post_op(TierOp{TierOp::Kind::kDiscard, node, rank, seq, 0, 0});
}

void TierStore::do_discard(mpi::RankId rank) {
  auto it = ranks_.find(rank);
  if (it == ranks_.end() || !it->second.staged) return;
  release_bb(it->second.staged->bytes);
  it->second.staged.reset();
}

void TierStore::on_node_failed(mpi::RankId rank) {
  const int node = rank;
  const std::uint64_t seq = node_seq_[static_cast<std::size_t>(node)]++;
  post_op(TierOp{TierOp::Kind::kNodeFailed, node, rank, seq, 0, 0});
}

void TierStore::do_node_failed(mpi::RankId rank) {
  // The dead process's home-side pipelines stop acting for it: a killed
  // stage returns its reservation through the guard; a killed read frees
  // the device (its caller died with the node, so no reply is owed).
  auto it = ranks_.find(rank);
  if (it != ranks_.end()) {
    kill_pipeline(it->second.stage_pipeline);
    kill_pipeline(it->second.read_pipeline);
  }
  do_discard(rank);
  it = ranks_.find(rank);
  if (it != ranks_.end() && it->second.committed) {
    // The node's staging buffer dies with the process; the committed image
    // survives on the shared tiers (burst buffer and/or PFS).
    it->second.committed->in_local = false;
  }
}

sim::Co<void> TierStore::drain_body(mpi::RankId rank, std::uint64_t epoch,
                                    std::int64_t bytes) {
  // The burst buffer's outbound pipe is separate from its ingest pipe;
  // the drain is charged as the PFS write alone (PFS writers fair-share).
  co_await cluster_->pfs().write(bytes);
  RankImages& ri = ranks_[rank];
  if (ri.committed && ri.committed->epoch == epoch) {
    ri.committed->in_pfs = true;
    ri.committed->drain.reset();
    ++stats_.drains_completed;
    // Nothing freed yet, but drained images are evictable: wake writers
    // stalled on capacity so they can run the eviction pass.
    space_freed_.fire();
  }
}

// -------------------------------------------------------------- read path

sim::Co<void> TierStore::read_image(int node, mpi::RankId rank,
                                    std::int64_t bytes) {
  const std::uint64_t seq = node_seq_[static_cast<std::size_t>(node)]++;
  post_op(TierOp{TierOp::Kind::kRead, node, rank, seq, 0, bytes});
  int result = 0;
  co_await await_reply(node, seq, &result);
  if (result == kReplyReadLocal) {
    // Warm restart: the committed image never left the node's staging
    // buffer, so the read runs at memory speed on the node's own shard.
    co_await cluster_->node_buffer(node).read(bytes);
  }
}

sim::Co<void> TierStore::read_body(mpi::RankId rank, int node,
                                   std::int64_t bytes, std::uint64_t seq,
                                   bool from_bb) {
  if (from_bb) {
    co_await cluster_->burst_buffer_for(node).read(bytes);
  } else {
    co_await cluster_->pfs().read(bytes);
  }
  auto it = ranks_.find(rank);
  if (it != ranks_.end()) it->second.read_pipeline.reset();
  post_reply(node, seq, kReplyDone);
}

// ---------------------------------------------------------------- log path

sim::Co<void> TierStore::flush_log(int node, std::int64_t bytes) {
  if (bytes <= 0) co_return;
  const std::uint64_t seq = node_seq_[static_cast<std::size_t>(node)]++;
  post_op(TierOp{TierOp::Kind::kFlushLog, node, /*rank=*/node, seq, 0,
                 bytes});
  int result = 0;
  co_await await_reply(node, seq, &result);
}

sim::Co<void> TierStore::flush_body(int node, std::int64_t bytes,
                                    std::uint64_t seq) {
  // Log appends stream through the burst buffer without occupying image
  // capacity (they are consumed by the next checkpoint, not restored).
  co_await cluster_->burst_buffer_for(node).write(bytes);
  post_reply(node, seq, kReplyDone);
}

// ---------------------------------------------------------------- dispatch

void TierStore::run_op(TierOp& op) {
  switch (op.kind) {
    case TierOp::Kind::kStage: {
      RankImages& ri = ranks_[op.rank];
      // A still-live prior pipeline means the rank died mid-stage and its
      // restart is staging again before the failure notice landed; the
      // replacement supersedes it.
      kill_pipeline(ri.stage_pipeline);
      ri.stage_pipeline = home().spawn(
          "stage" + std::to_string(op.rank),
          stage_body(op.rank, op.node, op.epoch, op.bytes, op.seq));
      break;
    }
    case TierOp::Kind::kCommit:
      do_commit(op.rank);
      break;
    case TierOp::Kind::kDiscard:
      do_discard(op.rank);
      break;
    case TierOp::Kind::kNodeFailed:
      do_node_failed(op.rank);
      break;
    case TierOp::Kind::kRead: {
      auto it = ranks_.find(op.rank);
      GCR_CHECK_MSG(it != ranks_.end() && it->second.committed.has_value(),
                    "tier read for a rank with no committed image");
      const Image& img = *it->second.committed;
      if (img.in_local) {
        ++stats_.reads_local;
        post_reply(op.node, op.seq, kReplyReadLocal);
      } else if (img.in_bb) {
        ++stats_.reads_bb;
        it->second.read_pipeline = home().spawn(
            "tread" + std::to_string(op.rank),
            read_body(op.rank, op.node, op.bytes, op.seq, /*from_bb=*/true));
      } else {
        GCR_CHECK_MSG(img.in_pfs, "committed image resident in no tier");
        ++stats_.reads_pfs;
        it->second.read_pipeline = home().spawn(
            "tread" + std::to_string(op.rank),
            read_body(op.rank, op.node, op.bytes, op.seq, /*from_bb=*/false));
      }
      break;
    }
    case TierOp::Kind::kFlushLog:
      home().spawn("tflush" + std::to_string(op.node),
                   flush_body(op.node, op.bytes, op.seq));
      break;
  }
}

}  // namespace gcr::ckpt
