#include "ckpt/tiers.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "sim/awaitables.hpp"
#include "util/assert.hpp"

namespace gcr::ckpt {

const char* storage_mode_name(StorageMode mode) {
  switch (mode) {
    case StorageMode::kDirect: return "direct";
    case StorageMode::kBurstBuffer: return "bb";
    case StorageMode::kDrain: return "drain";
  }
  return "?";
}

TierStore::TierStore(sim::Cluster& cluster, const TierStoreOptions& options)
    : cluster_(&cluster), options_(options), space_freed_(cluster.engine()) {
  GCR_CHECK_MSG(cluster.has_tiered_storage(),
                "TierStore requires cluster burst buffers (num_burst_buffers)");
  GCR_CHECK_MSG(options_.mode != StorageMode::kDirect,
                "direct mode bypasses the tier store");
  GCR_CHECK(options_.bb_capacity_bytes > 0);
}

void TierStore::release_bb(std::int64_t bytes) {
  stats_.bb_bytes_used -= bytes;
  GCR_CHECK(stats_.bb_bytes_used >= 0);
  space_freed_.fire();
}

bool TierStore::evict_for(std::int64_t bytes) {
  while (stats_.bb_bytes_used + bytes > options_.bb_capacity_bytes) {
    // Oldest-commit-first over images that already drained to the PFS —
    // the only residents whose eviction keeps `committed => resident`.
    RankImages* victim = nullptr;
    for (auto& [rank, ri] : ranks_) {
      if (ri.committed && ri.committed->in_bb && ri.committed->in_pfs &&
          (victim == nullptr || ri.commit_seq < victim->commit_seq)) {
        victim = &ri;
      }
    }
    if (victim == nullptr) return false;
    victim->committed->in_bb = false;
    ++stats_.evictions;
    release_bb(victim->committed->bytes);
  }
  return true;
}

sim::Co<void> TierStore::reserve_bb(std::int64_t bytes) {
  GCR_CHECK_MSG(bytes <= options_.bb_capacity_bytes,
                "one image exceeds the whole burst-buffer capacity");
  for (;;) {
    if (stats_.bb_bytes_used + bytes <= options_.bb_capacity_bytes) break;
    if (evict_for(bytes)) break;
    // Pool exhausted and nothing evictable. In kDrain mode progress is
    // guaranteed — every committed image eventually drains and becomes
    // evictable — so the writer parks until a drain/discard/supersede
    // frees space. In kBurstBuffer mode nothing ever drains, and a
    // group's commit cannot free space before ALL its members staged, so
    // waiting here can deadlock the job into a watchdog trip; fail fast
    // with the sizing rule instead.
    GCR_CHECK_MSG(
        options_.mode == StorageMode::kDrain,
        "burst-buffer capacity exhausted in kBurstBuffer mode (nothing "
        "drains, so nothing is evictable): size bb_capacity_bytes to at "
        "least the committed images plus one full group's stage");
    ++stats_.writer_stalls;
    space_freed_.reset();
    co_await space_freed_.wait();
  }
  stats_.bb_bytes_used += bytes;
  stats_.bb_bytes_peak = std::max(stats_.bb_bytes_peak, stats_.bb_bytes_used);
}

sim::Co<void> TierStore::stage_image(int node, mpi::RankId rank,
                                     std::uint64_t epoch, std::int64_t bytes) {
  GCR_CHECK(bytes >= 0);
  // Memory-speed copy out of the application's address space into the
  // node's staging buffer (the process resumes only after the full image
  // left its memory — same blocking contract as a direct device write).
  co_await cluster_->node_buffer(node).write(bytes);
  co_await reserve_bb(bytes);
  // From here the reservation must survive a mid-transfer kill: the guard
  // returns it unless the bytes are handed off to the staged image below.
  struct ReserveGuard {
    TierStore* ts;
    std::int64_t bytes;
    bool handed_off = false;
    ~ReserveGuard() {
      if (!handed_off) ts->release_bb(bytes);
    }
  } guard{this, bytes};
  co_await cluster_->burst_buffer_for(node).write(bytes);

  RankImages& ri = ranks_[rank];
  if (ri.staged) release_bb(ri.staged->bytes);  // replaced prior stage
  Image img;
  img.epoch = epoch;
  img.bytes = bytes;
  img.in_local = true;
  img.in_bb = true;
  ri.staged = std::move(img);
  guard.handed_off = true;
  ++stats_.images_staged;
}

void TierStore::drop_committed(RankImages& ri) {
  if (!ri.committed) return;
  if (ri.committed->drain && ri.committed->drain->alive()) {
    // Write-behind of a superseded epoch: abandon it (the PFS stops
    // spending bandwidth on an image no restore will ever pick).
    cluster_->engine().kill(*ri.committed->drain);
    ++stats_.drains_abandoned;
  }
  if (ri.committed->in_bb) release_bb(ri.committed->bytes);
  ri.committed.reset();
}

void TierStore::commit_image(mpi::RankId rank) {
  RankImages& ri = ranks_[rank];
  GCR_CHECK_MSG(ri.staged.has_value(),
                "commit_image without a staged image (finalize barrier "
                "passed without a write?)");
  drop_committed(ri);
  ri.committed = std::move(ri.staged);
  ri.staged.reset();
  ri.commit_seq = next_commit_seq_++;
  if (options_.mode == StorageMode::kDrain) {
    ++stats_.drains_started;
    ri.committed->drain = cluster_->engine().spawn(
        "drain" + std::to_string(rank),
        drain_body(rank, ri.committed->epoch, ri.committed->bytes));
  }
}

void TierStore::discard_staged(mpi::RankId rank) {
  auto it = ranks_.find(rank);
  if (it == ranks_.end() || !it->second.staged) return;
  release_bb(it->second.staged->bytes);
  it->second.staged.reset();
}

void TierStore::on_node_failed(mpi::RankId rank) {
  discard_staged(rank);
  auto it = ranks_.find(rank);
  if (it != ranks_.end() && it->second.committed) {
    // The node's staging buffer dies with the process; the committed image
    // survives on the shared tiers (burst buffer and/or PFS).
    it->second.committed->in_local = false;
  }
}

sim::Co<void> TierStore::drain_body(mpi::RankId rank, std::uint64_t epoch,
                                    std::int64_t bytes) {
  // The burst buffer's outbound pipe is separate from its ingest pipe;
  // the drain is charged as the PFS write alone (PFS writers fair-share).
  co_await cluster_->pfs().write(bytes);
  RankImages& ri = ranks_[rank];
  if (ri.committed && ri.committed->epoch == epoch) {
    ri.committed->in_pfs = true;
    ri.committed->drain.reset();
    ++stats_.drains_completed;
    // Nothing freed yet, but drained images are evictable: wake writers
    // stalled on capacity so they can run the eviction pass.
    space_freed_.fire();
  }
}

sim::Co<void> TierStore::read_image(int node, mpi::RankId rank,
                                    std::int64_t bytes) {
  auto it = ranks_.find(rank);
  GCR_CHECK_MSG(it != ranks_.end() && it->second.committed.has_value(),
                "tier read for a rank with no committed image");
  const Image& img = *it->second.committed;
  if (img.in_local) {
    ++stats_.reads_local;
    co_await cluster_->node_buffer(node).read(bytes);
  } else if (img.in_bb) {
    ++stats_.reads_bb;
    co_await cluster_->burst_buffer_for(node).read(bytes);
  } else {
    GCR_CHECK_MSG(img.in_pfs, "committed image resident in no tier");
    ++stats_.reads_pfs;
    co_await cluster_->pfs().read(bytes);
  }
}

sim::Co<void> TierStore::flush_log(int node, std::int64_t bytes) {
  if (bytes <= 0) co_return;
  // Log appends stream through the burst buffer without occupying image
  // capacity (they are consumed by the next checkpoint, not restored).
  co_await cluster_->burst_buffer_for(node).write(bytes);
}

}  // namespace gcr::ckpt
