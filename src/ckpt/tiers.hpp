// Multi-tier checkpoint storage: residency, write-behind drain, eviction.
//
// The cluster (sim/cluster.hpp) owns the tier DEVICES — per-node staging
// buffer, shared burst buffers, parallel file system. This module owns the
// tier POLICY: which tiers hold which rank's image, when a group's commit
// is durable, when the burst buffer drains to the PFS, and what a restart
// reads. See DESIGN.md §13.
//
// Write path (stage_image): setup is charged by the Checkpointer; the image
// is copied through the node's staging buffer, reserves burst-buffer
// capacity (stalling for evictions/drains under pressure), and lands on a
// burst-buffer server. It is then STAGED: the group protocol's finalize
// barrier decides whether it becomes visible (commit_image) or is thrown
// away (discard_staged) — mirroring ImageRegistry's two-phase visibility,
// with byte accounting attached.
//
// Commit semantics by mode:
//   * kBurstBuffer — the commit point is burst-buffer durability; images
//     stay resident there forever (nothing is evictable), so the capacity
//     must cover the committed working set plus one group's stage —
//     exhausting it is asserted as a configuration error, never a stall.
//   * kDrain — the commit point is still burst-buffer durability, but a
//     background write-behind drains each committed image to the PFS
//     through the burst buffer's outbound pipe (modeled as the PFS write
//     alone). Drained images become evictable under capacity pressure; a
//     superseding commit abandons an in-flight drain.
//
// Restart reads from the FASTEST tier holding the committed image: the
// node staging buffer if the rank never died since the commit, else a
// burst buffer, else the PFS. A node fault (PR-4 fault models) loses that
// rank's staging-buffer residency, so post-failure restores fall back to
// the shared tiers — the invariant `committed => resident somewhere` is
// asserted, never silently violated.
//
// Kill-safety: stage_image may be killed at any suspension (ProcessKilled
// unwind); reserved-but-unstaged capacity is returned by an RAII guard, so
// burst-buffer bytes are never stranded by a failure mid-checkpoint.
//
// Shard residency (DESIGN.md §15.3): tier POLICY state (residency maps,
// capacity accounting, drains) lives on the home shard; the per-node
// staging buffers live on their nodes' shards (Cluster::
// rebind_node_buffers). A caller runs its node-buffer leg on its own
// shard, then crosses to the home arbiter through a fixed-latency control
// edge: every request is stamped (subject node, per-node seq) on the
// owning shard, lands home one lookahead later, and same-tick arrivals
// are batched and executed in (node, seq) order — a canonical admission
// order that no shard count can perturb (same construction as
// sim::Network's routed injection edge). Replies cross back at +L and
// fire a caller-shard trigger. The veneer is always on — a single-shard
// run takes the identical ±L event structure — so tier-mode outputs are
// byte-identical across --shards. Commit/discard/failure notices are
// fire-and-forget ops through the same queue; a whole group's commits are
// posted at one caller instant and land at one home instant, keeping the
// leader's atomic-commit contract. Callers must invoke every method from
// the subject node's shard (rank coroutines, same-shard group leaders,
// and the recovery kill path dispatched to the group's shard all do).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "mpi/message.hpp"
#include "sim/cluster.hpp"
#include "sim/co.hpp"

namespace gcr::ckpt {

/// Where checkpoint images go and what "durable" means for a commit.
enum class StorageMode {
  kDirect,       ///< legacy: straight to local disk / NFS (bit-reproducible)
  kBurstBuffer,  ///< commit at burst-buffer durability; no PFS copy
  kDrain,        ///< commit at burst-buffer durability + async PFS drain
};

/// Stable lowercase name (config parsing, table headers).
const char* storage_mode_name(StorageMode mode);

struct TierStoreOptions {
  StorageMode mode = StorageMode::kBurstBuffer;
  /// Aggregate burst-buffer capacity across all servers (logical pool).
  std::int64_t bb_capacity_bytes = std::int64_t{8} << 30;
};

/// Counters exposed through ExperimentResult. All are monotone over a
/// run except `bb_bytes_used`, a current-occupancy gauge.
struct TierStats {
  std::int64_t images_staged = 0;    ///< stage_image completions
  std::int64_t drains_started = 0;   ///< write-behind coroutines spawned
  std::int64_t drains_completed = 0; ///< drains that marked PFS residency
  std::int64_t drains_abandoned = 0; ///< drains killed by a superseding epoch
  std::int64_t evictions = 0;        ///< drained images dropped for capacity
  std::int64_t writer_stalls = 0;    ///< stage waits for burst-buffer space
  std::int64_t bb_bytes_used = 0;    ///< current burst-buffer occupancy
  std::int64_t bb_bytes_peak = 0;    ///< high-water occupancy (bound: capacity)
  std::int64_t reads_local = 0;      ///< restores served from the node buffer
  std::int64_t reads_bb = 0;         ///< restores served from a burst buffer
  std::int64_t reads_pfs = 0;        ///< restores served from the PFS
};

/// Tier residency and drain orchestration for checkpoint images, keyed by
/// rank with ImageRegistry-style stage/commit/discard two-phase visibility.
/// Requires cluster.has_tiered_storage(); one instance per experiment.
class TierStore {
 public:
  TierStore(sim::Cluster& cluster, const TierStoreOptions& options);

  const TierStoreOptions& options() const { return options_; }
  const TierStats& stats() const { return stats_; }

  /// Stages `bytes` for `rank` (hosted on `node`) at checkpoint `epoch`:
  /// node-buffer copy, capacity reservation (may stall under pressure),
  /// burst-buffer write. Completes at burst-buffer durability. Replaces
  /// any prior stage for the rank. Kill-safe (see header comment).
  sim::Co<void> stage_image(int node, mpi::RankId rank, std::uint64_t epoch,
                            std::int64_t bytes);

  /// Promotes the rank's staged image to committed (restore-visible),
  /// superseding — and freeing — the previous committed image, and starts
  /// the write-behind drain in kDrain mode. Fire-and-forget: the caller
  /// never suspends, and a whole group's commits posted at one caller
  /// instant land at one home instant (atomic at the leader).
  void commit_image(mpi::RankId rank);

  /// Drops the rank's staged image, if any, returning its burst-buffer
  /// bytes (failure before the group's commit point).
  void discard_staged(mpi::RankId rank);

  /// Node fault: the rank's staged image dies with the process, its
  /// committed image loses node-buffer residency (restores fall back to
  /// the shared tiers), and any home-side pipeline still acting for the
  /// dead process is killed. NOT invoked for voluntary restarts — a
  /// relaunch on a healthy node reloads from the warm staging buffer.
  /// Fire-and-forget; must be called from the rank's shard (the recovery
  /// kill path is dispatched there).
  void on_node_failed(mpi::RankId rank);

  /// Restart read: `bytes` from the fastest tier holding the rank's
  /// committed image (node buffer > burst buffer > PFS). Asserts that a
  /// committed image exists — callers gate on ImageRegistry::latest.
  sim::Co<void> read_image(int node, mpi::RankId rank, std::int64_t bytes);

  /// Log-flush traffic (Algorithm 1 "synchronize message logs") lands on
  /// the rank's burst-buffer server.
  sim::Co<void> flush_log(int node, std::int64_t bytes);

 private:
  /// One image's tier residency. `in_local` refers to the staging buffer
  /// of the node the image was written from.
  struct Image {
    std::uint64_t epoch = 0;
    std::int64_t bytes = 0;
    bool in_local = false;
    bool in_bb = false;
    bool in_pfs = false;
    sim::ProcPtr drain;  ///< in-flight write-behind, if any
  };
  struct RankImages {
    std::optional<Image> staged;
    std::optional<Image> committed;
    std::uint64_t commit_seq = 0;  ///< for oldest-first eviction
    /// Home-side pipelines acting for the rank. Unlike the pre-resident
    /// code, these do NOT die with the rank's coroutines (they live on the
    /// home engine); the failure notice kills them instead.
    sim::ProcPtr stage_pipeline;
    sim::ProcPtr read_pipeline;
  };

  /// One control-edge request awaiting the canonical per-tick flush.
  struct TierOp {
    enum class Kind : std::uint8_t {
      kStage,       ///< reserve + burst-buffer write -> staged (replies)
      kCommit,      ///< staged -> committed (+ drain in kDrain mode)
      kDiscard,     ///< drop the staged image
      kNodeFailed,  ///< discard + drop node-buffer residency + kill pipelines
      kRead,        ///< pick the restore tier; read shared tiers (replies)
      kFlushLog,    ///< burst-buffer log append (replies)
    };
    Kind kind;
    std::int32_t node;       ///< subject node (== rank for hosted ranks)
    mpi::RankId rank;
    std::uint64_t seq;       ///< per-subject-node request order
    std::uint64_t epoch;
    std::int64_t bytes;
  };

  /// Reply codes carried home -> caller.
  static constexpr int kReplyDone = 0;
  static constexpr int kReplyReadLocal = 1;  ///< read the node buffer locally

  /// Caller-shard trigger registry, partitioned by shard so registration,
  /// firing, and RAII unregistration all stay on the waiter's own shard.
  struct ReplyWaiter {
    sim::Trigger* trigger;
    int* result;
  };
  using ReplyKey = std::pair<std::int32_t, std::uint64_t>;  ///< (node, seq)

  sim::Engine& home() { return cluster_->engine(); }
  sim::Time rpc_latency() const { return cluster_->shards().lookahead(); }
  sim::Engine& node_engine(int node) {
    return cluster_->shards().shard(cluster_->node_shard(node));
  }
  /// Stamps (node, seq) on the subject's shard and posts the op home at
  /// +lookahead. Must run on the subject node's shard.
  void post_op(TierOp op);
  void enqueue_op(TierOp op);  ///< home side: batch + schedule the flush
  void flush_ops();            ///< home side: canonical (node, seq) order
  void run_op(TierOp& op);
  /// Posts the reply to the subject node's shard at +lookahead (home side).
  void post_reply(int node, std::uint64_t seq, int result);
  /// Parks the caller until the (node, seq) reply lands on its shard.
  /// Kill-safe: the registration is erased on unwind and a reply for an
  /// unregistered key is dropped.
  sim::Co<void> await_reply(int node, std::uint64_t seq, int* result);
  void kill_pipeline(sim::ProcPtr& proc);

  sim::Co<void> stage_body(mpi::RankId rank, int node, std::uint64_t epoch,
                           std::int64_t bytes, std::uint64_t seq);
  sim::Co<void> read_body(mpi::RankId rank, int node, std::int64_t bytes,
                          std::uint64_t seq, bool from_bb);
  sim::Co<void> flush_body(int node, std::int64_t bytes, std::uint64_t seq);
  void do_commit(mpi::RankId rank);
  void do_discard(mpi::RankId rank);
  void do_node_failed(mpi::RankId rank);

  /// Grants `bytes` of burst-buffer capacity, evicting drained images or
  /// (kDrain only) stalling while the pool is exhausted; in kBurstBuffer
  /// mode an exhausted pool is asserted as a configuration error.
  sim::Co<void> reserve_bb(std::int64_t bytes);
  /// Evicts oldest drained committed images until `bytes` fit or nothing
  /// is evictable; returns true if the reservation now fits.
  bool evict_for(std::int64_t bytes);
  void release_bb(std::int64_t bytes);
  void drop_committed(RankImages& ri);
  sim::Co<void> drain_body(mpi::RankId rank, std::uint64_t epoch,
                           std::int64_t bytes);

  sim::Cluster* cluster_;
  TierStoreOptions options_;
  TierStats stats_;
  std::map<mpi::RankId, RankImages> ranks_;
  std::uint64_t next_commit_seq_ = 1;
  sim::Trigger space_freed_;

  /// Per-subject-node request counters, each owned by the node's shard.
  std::vector<std::uint64_t> node_seq_;
  /// Same-tick arrivals awaiting the canonical flush (home shard only).
  std::vector<TierOp> pending_ops_;
  bool flush_scheduled_ = false;
  /// Reply waiters, one map per shard (each touched only by its shard).
  std::vector<std::map<ReplyKey, ReplyWaiter>> replies_;
};

}  // namespace gcr::ckpt
