// Multi-tier checkpoint storage: residency, write-behind drain, eviction.
//
// The cluster (sim/cluster.hpp) owns the tier DEVICES — per-node staging
// buffer, shared burst buffers, parallel file system. This module owns the
// tier POLICY: which tiers hold which rank's image, when a group's commit
// is durable, when the burst buffer drains to the PFS, and what a restart
// reads. See DESIGN.md §13.
//
// Write path (stage_image): setup is charged by the Checkpointer; the image
// is copied through the node's staging buffer, reserves burst-buffer
// capacity (stalling for evictions/drains under pressure), and lands on a
// burst-buffer server. It is then STAGED: the group protocol's finalize
// barrier decides whether it becomes visible (commit_image) or is thrown
// away (discard_staged) — mirroring ImageRegistry's two-phase visibility,
// with byte accounting attached.
//
// Commit semantics by mode:
//   * kBurstBuffer — the commit point is burst-buffer durability; images
//     stay resident there forever (nothing is evictable), so the capacity
//     must cover the committed working set plus one group's stage —
//     exhausting it is asserted as a configuration error, never a stall.
//   * kDrain — the commit point is still burst-buffer durability, but a
//     background write-behind drains each committed image to the PFS
//     through the burst buffer's outbound pipe (modeled as the PFS write
//     alone). Drained images become evictable under capacity pressure; a
//     superseding commit abandons an in-flight drain.
//
// Restart reads from the FASTEST tier holding the committed image: the
// node staging buffer if the rank never died since the commit, else a
// burst buffer, else the PFS. A node fault (PR-4 fault models) loses that
// rank's staging-buffer residency, so post-failure restores fall back to
// the shared tiers — the invariant `committed => resident somewhere` is
// asserted, never silently violated.
//
// Kill-safety: stage_image may be killed at any suspension (ProcessKilled
// unwind); reserved-but-unstaged capacity is returned by an RAII guard, so
// burst-buffer bytes are never stranded by a failure mid-checkpoint.
#pragma once

#include <cstdint>
#include <map>
#include <optional>

#include "mpi/message.hpp"
#include "sim/cluster.hpp"
#include "sim/co.hpp"

namespace gcr::ckpt {

/// Where checkpoint images go and what "durable" means for a commit.
enum class StorageMode {
  kDirect,       ///< legacy: straight to local disk / NFS (bit-reproducible)
  kBurstBuffer,  ///< commit at burst-buffer durability; no PFS copy
  kDrain,        ///< commit at burst-buffer durability + async PFS drain
};

/// Stable lowercase name (config parsing, table headers).
const char* storage_mode_name(StorageMode mode);

struct TierStoreOptions {
  StorageMode mode = StorageMode::kBurstBuffer;
  /// Aggregate burst-buffer capacity across all servers (logical pool).
  std::int64_t bb_capacity_bytes = std::int64_t{8} << 30;
};

/// Counters exposed through ExperimentResult. All are monotone over a
/// run except `bb_bytes_used`, a current-occupancy gauge.
struct TierStats {
  std::int64_t images_staged = 0;    ///< stage_image completions
  std::int64_t drains_started = 0;   ///< write-behind coroutines spawned
  std::int64_t drains_completed = 0; ///< drains that marked PFS residency
  std::int64_t drains_abandoned = 0; ///< drains killed by a superseding epoch
  std::int64_t evictions = 0;        ///< drained images dropped for capacity
  std::int64_t writer_stalls = 0;    ///< stage waits for burst-buffer space
  std::int64_t bb_bytes_used = 0;    ///< current burst-buffer occupancy
  std::int64_t bb_bytes_peak = 0;    ///< high-water occupancy (bound: capacity)
  std::int64_t reads_local = 0;      ///< restores served from the node buffer
  std::int64_t reads_bb = 0;         ///< restores served from a burst buffer
  std::int64_t reads_pfs = 0;        ///< restores served from the PFS
};

/// Tier residency and drain orchestration for checkpoint images, keyed by
/// rank with ImageRegistry-style stage/commit/discard two-phase visibility.
/// Requires cluster.has_tiered_storage(); one instance per experiment.
class TierStore {
 public:
  TierStore(sim::Cluster& cluster, const TierStoreOptions& options);

  const TierStoreOptions& options() const { return options_; }
  const TierStats& stats() const { return stats_; }

  /// Stages `bytes` for `rank` (hosted on `node`) at checkpoint `epoch`:
  /// node-buffer copy, capacity reservation (may stall under pressure),
  /// burst-buffer write. Completes at burst-buffer durability. Replaces
  /// any prior stage for the rank. Kill-safe (see header comment).
  sim::Co<void> stage_image(int node, mpi::RankId rank, std::uint64_t epoch,
                            std::int64_t bytes);

  /// Promotes the rank's staged image to committed (restore-visible),
  /// superseding — and freeing — the previous committed image, and starts
  /// the write-behind drain in kDrain mode. Synchronous: posts no events
  /// the caller waits on, so a whole group can commit at one instant.
  void commit_image(mpi::RankId rank);

  /// Drops the rank's staged image, if any, returning its burst-buffer
  /// bytes (failure before the group's commit point).
  void discard_staged(mpi::RankId rank);

  /// Node fault: the rank's staged image dies with the process and its
  /// committed image loses node-buffer residency (restores fall back to
  /// the shared tiers). NOT invoked for voluntary restarts — a relaunch on
  /// a healthy node reloads from the warm staging buffer. Synchronous.
  void on_node_failed(mpi::RankId rank);

  /// Restart read: `bytes` from the fastest tier holding the rank's
  /// committed image (node buffer > burst buffer > PFS). Asserts that a
  /// committed image exists — callers gate on ImageRegistry::latest.
  sim::Co<void> read_image(int node, mpi::RankId rank, std::int64_t bytes);

  /// Log-flush traffic (Algorithm 1 "synchronize message logs") lands on
  /// the rank's burst-buffer server.
  sim::Co<void> flush_log(int node, std::int64_t bytes);

 private:
  /// One image's tier residency. `in_local` refers to the staging buffer
  /// of the node the image was written from.
  struct Image {
    std::uint64_t epoch = 0;
    std::int64_t bytes = 0;
    bool in_local = false;
    bool in_bb = false;
    bool in_pfs = false;
    sim::ProcPtr drain;  ///< in-flight write-behind, if any
  };
  struct RankImages {
    std::optional<Image> staged;
    std::optional<Image> committed;
    std::uint64_t commit_seq = 0;  ///< for oldest-first eviction
  };

  /// Grants `bytes` of burst-buffer capacity, evicting drained images or
  /// (kDrain only) stalling while the pool is exhausted; in kBurstBuffer
  /// mode an exhausted pool is asserted as a configuration error.
  sim::Co<void> reserve_bb(std::int64_t bytes);
  /// Evicts oldest drained committed images until `bytes` fit or nothing
  /// is evictable; returns true if the reservation now fits.
  bool evict_for(std::int64_t bytes);
  void release_bb(std::int64_t bytes);
  void drop_committed(RankImages& ri);
  sim::Co<void> drain_body(mpi::RankId rank, std::uint64_t epoch,
                           std::int64_t bytes);

  sim::Cluster* cluster_;
  TierStoreOptions options_;
  TierStats stats_;
  std::map<mpi::RankId, RankImages> ranks_;
  std::uint64_t next_commit_seq_ = 1;
  sim::Trigger space_freed_;
};

}  // namespace gcr::ckpt
