#include "core/elastic.hpp"

#include "group/dynamic.hpp"
#include "mpi/message.hpp"
#include "util/assert.hpp"

namespace gcr::core {

TrafficMatrix::TrafficMatrix(int nranks) : nranks_(nranks) {
  GCR_CHECK(nranks > 0);
  counts_.assign(static_cast<std::size_t>(nranks) *
                     static_cast<std::size_t>(nranks),
                 0);
}

void TrafficMatrix::on_send(const mpi::Rank& rank, const mpi::Message& msg,
                            bool transmitted) {
  (void)rank;
  (void)transmitted;
  if (msg.src < 0 || msg.src >= nranks_ || msg.dst < 0 || msg.dst >= nranks_) {
    return;
  }
  ++counts_[static_cast<std::size_t>(msg.src) *
                static_cast<std::size_t>(nranks_) +
            static_cast<std::size_t>(msg.dst)];
  ++total_;
}

std::uint64_t TrafficMatrix::pair_count(mpi::RankId a, mpi::RankId b) const {
  const auto n = static_cast<std::size_t>(nranks_);
  return counts_[static_cast<std::size_t>(a) * n + static_cast<std::size_t>(b)] +
         counts_[static_cast<std::size_t>(b) * n + static_cast<std::size_t>(a)];
}

RegroupPlanner::RegroupPlanner(const TrafficMatrix* traffic)
    : traffic_(traffic) {
  GCR_CHECK(traffic != nullptr);
}

std::optional<int> RegroupPlanner::choose_merge_target(
    mpi::RankId rank, const group::GroupSet& gs, int max_group_size) const {
  const int nranks = traffic_->nranks();
  GCR_CHECK(gs.nranks() == nranks);
  const int from = gs.group_of(rank);

  // The rank's transitive communication component under dynamic grouping.
  group::DynamicGrouper dyn(nranks);
  for (int a = 0; a < nranks; ++a) {
    for (int b = a + 1; b < nranks; ++b) {
      if (traffic_->pair_count(a, b) > 0) dyn.on_message(a, b);
    }
  }
  const group::GroupSet dyn_groups = dyn.current();
  const int component = dyn_groups.group_of(rank);

  int best = -1;
  std::uint64_t best_direct = 0;
  std::size_t best_overlap = 0;
  for (int g = 0; g < gs.num_groups(); ++g) {
    if (g == from) continue;
    const auto& members = gs.members(g);
    if (max_group_size > 0 &&
        static_cast<int>(members.size()) + 1 > max_group_size) {
      continue;
    }
    std::uint64_t direct = 0;
    std::size_t overlap = 0;
    for (mpi::RankId m : members) {
      direct += traffic_->pair_count(rank, m);
      if (dyn_groups.group_of(m) == component) ++overlap;
    }
    if (direct == 0 && overlap == 0) continue;
    // Lexicographic (direct, overlap) preference; strict > keeps the
    // lowest-index winner on ties.
    if (best < 0 || direct > best_direct ||
        (direct == best_direct && overlap > best_overlap)) {
      best = g;
      best_direct = direct;
      best_overlap = overlap;
    }
  }
  if (best < 0) return std::nullopt;
  return best;
}

}  // namespace gcr::core
