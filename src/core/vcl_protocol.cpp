#include "core/vcl_protocol.hpp"

#include "util/assert.hpp"

namespace gcr::core {

VclProtocol::VclProtocol(mpi::Runtime& rt, ckpt::Checkpointer& checkpointer,
                         ImageSizeFn image_bytes, Metrics& metrics,
                         VclProtocolOptions options)
    : rt_(&rt), checkpointer_(&checkpointer),
      image_bytes_(std::move(image_bytes)), metrics_(&metrics),
      options_(options) {
  const int n = rt.nranks();
  states_.reserve(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    auto st = std::make_unique<RankState>();
    st->gate = std::make_unique<sim::Trigger>(rt.engine());
    st->event = std::make_unique<sim::Trigger>(rt.engine());
    st->jitter_rng = rt.cluster().make_rng(0x7C00 + static_cast<std::uint64_t>(r));
    states_.push_back(std::move(st));
  }
  latest_uploaded_.assign(static_cast<std::size_t>(n), 0);
  commit_event_ = std::make_unique<sim::Trigger>(rt.engine());
}

sim::Co<bool> VclProtocol::before_send(mpi::Rank& rank, mpi::Message& msg) {
  (void)msg;
  RankState& st = state(rank);
  while (st.send_blocked) {
    st.gate->reset();
    co_await st.gate->wait();
  }
  co_return true;
}

void VclProtocol::on_deliver(mpi::Rank& rank, const mpi::Message& msg) {
  RankState& st = state(rank);
  // Channel recording: messages arriving during the snapshot from peers
  // whose marker for this round has not yet been seen belong to the
  // channel state.
  if (st.in_checkpoint) {
    auto it = st.marker_round.find(msg.src);
    if (it == st.marker_round.end() || it->second < st.epoch) {
      st.recorded_bytes += msg.bytes;
      recorded_total_ += msg.bytes;
    }
  }
}

sim::Co<void> VclProtocol::at_safepoint(mpi::Rank& rank) {
  (void)rank;
  co_return;  // VCL interrupts anywhere; no safe-point work
}

void VclProtocol::rank_started(mpi::Rank& rank) {
  auto proc = rt_->engine().spawn("vcldaemon" + std::to_string(rank.id()),
                                  daemon_loop(rank));
  rt_->set_daemon_proc(rank, std::move(proc));
  // VCL restart is unsupported; ranks always start fresh.
  GCR_CHECK(!rank.resume_gate().fired() || rank.incarnation() == 0);
}

sim::Co<void> VclProtocol::daemon_loop(mpi::Rank& rank) {
  for (;;) {
    mpi::Message msg = co_await rank.ctrl_in().pop();
    RankState& st = state(rank);
    switch (msg.ctrl) {
      case mpi::CtrlKind::kVclRequest:
      case mpi::CtrlKind::kVclMarker: {
        const auto round = static_cast<std::uint64_t>(msg.ctrl_data.at(0));
        if (msg.ctrl == mpi::CtrlKind::kVclMarker) {
          auto& latest = st.marker_round[msg.src];
          if (round > latest) latest = round;
          st.event->fire();
        }
        // Chandy-Lamport initiation rule: a request OR the first marker of a
        // newer round triggers the local snapshot. A round arriving while a
        // snapshot is still in progress (interval shorter than the upload
        // wave) is deferred and executed right after — never concurrently.
        if (round > st.epoch) {
          if (st.in_checkpoint) {
            if (round > st.pending_round) st.pending_round = round;
          } else {
            st.epoch = round;
            rt_->engine().spawn("vclckpt" + std::to_string(rank.id()),
                                run_checkpoint(rank));
          }
        }
        break;
      }
      default:
        break;  // other protocols' traffic
    }
  }
}

sim::Co<void> VclProtocol::run_checkpoint(mpi::Rank& rank) {
  RankState& st = state(rank);
  sim::Engine& eng = rt_->engine();
  const sim::Time t_signal = eng.now();
  st.in_checkpoint = true;
  st.send_blocked = true;

  co_await sim::delay(eng, sim::from_seconds(options_.request_handling_s) +
                               rt_->cluster().draw_jitter(st.jitter_rng));
  const sim::Time t_begin = eng.now();

  // Flush markers on every channel.
  mpi::Message marker;
  marker.ctrl = mpi::CtrlKind::kVclMarker;
  marker.ctrl_data = {static_cast<std::int64_t>(st.epoch)};
  for (int q = 0; q < rt_->nranks(); ++q) {
    if (q == rank.id()) continue;
    rt_->send_ctrl(rank.id(), q, marker);
  }

  // Upload the image (plus recorded channel state) to the remote server.
  // Receives and computation continue (the protocol is "non-blocking"),
  // but sends stay forbidden until the round completes — the paper's §2.2
  // observation is precisely that this window spans nearly the whole
  // checkpoint at scale, turning non-blocking into blocking (Figure 2b).
  const sim::Time t_upload_begin = eng.now();
  co_await checkpointer_->stage_image(
      rank.node(), rank.id(), st.epoch,
      image_bytes_(rank.id()) + st.recorded_bytes);
  // VCL's commit point needs no group agreement (global rounds): the
  // upload is the restore source the moment it is durable.
  checkpointer_->commit_image(rank.id());
  const double upload_s = sim::to_seconds(eng.now() - t_upload_begin);

  // Wait for a marker of this round (or any later one — the peer's later
  // snapshot implies it passed this cut) from every peer.
  const int needed = rt_->nranks() - 1;
  auto markers_seen = [this, &st, &rank] {
    int count = 0;
    for (int q = 0; q < rt_->nranks(); ++q) {
      if (q == rank.id()) continue;
      auto it = st.marker_round.find(q);
      if (it != st.marker_round.end() && it->second >= st.epoch) ++count;
    }
    return count;
  };
  while (markers_seen() < needed) {
    st.event->reset();
    co_await st.event->wait();
  }

  // Record channel-recording cost.
  co_await sim::delay(
      eng, sim::from_seconds(static_cast<double>(st.recorded_bytes) /
                             options_.channel_record_Bps));

  // Global commit: the snapshot is only usable once EVERY rank's piece is
  // on the servers; sends stay blocked until then (paper Figure 2's windows
  // span the whole round).
  latest_uploaded_[static_cast<std::size_t>(rank.id())] = st.epoch;
  commit_event_->fire();
  auto all_uploaded = [this, &st] {
    for (std::uint64_t r : latest_uploaded_) {
      if (r < st.epoch) return false;
    }
    return true;
  };
  while (!all_uploaded()) {
    commit_event_->reset();
    co_await commit_event_->wait();
  }
  st.send_blocked = false;
  st.gate->fire();
  const sim::Time t_end = eng.now();

  CkptRecord rec;
  rec.rank = rank.id();
  rec.epoch = st.epoch;
  rec.signal_at = t_signal;
  rec.begin = t_begin;
  rec.end = t_end;
  rec.phases.lock_mpi = sim::to_seconds(t_begin - t_signal);
  rec.phases.checkpoint = upload_s;
  rec.phases.coordination =
      sim::to_seconds(t_end - t_begin) - upload_s;
  rec.phases.finalize = 0;
  metrics_->ckpts.push_back(rec);

  st.recorded_bytes = 0;
  st.in_checkpoint = false;

  // A round that arrived mid-snapshot runs now.
  if (st.pending_round > st.epoch && !rt_->job_finished()) {
    st.epoch = st.pending_round;
    rt_->engine().spawn("vclckpt" + std::to_string(rank.id()),
                        run_checkpoint(rank));
  }
}

void VclProtocol::request_round() {
  ++round_;
  mpi::Message req;
  req.ctrl = mpi::CtrlKind::kVclRequest;
  req.ctrl_data = {static_cast<std::int64_t>(round_)};
  for (int q = 0; q < rt_->nranks(); ++q) {
    rt_->send_ctrl_from_driver(q, req);
  }
}

bool VclProtocol::any_in_checkpoint() const {
  for (const auto& st : states_) {
    if (st->in_checkpoint) return true;
  }
  return false;
}

}  // namespace gcr::core
