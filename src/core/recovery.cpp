#include "core/recovery.hpp"

#include <algorithm>
#include <utility>

#include "util/log.hpp"

namespace gcr::core {
namespace {

/// Stream-id namespace for FaultModel substreams, disjoint from the other
/// cluster seed consumers (0x6A00+r protocol jitter, 0xFA11+g legacy
/// failure streams) because it passes through mix_seed a second time.
constexpr std::uint64_t kFaultModelStreamBase = 0xFA17A11ULL;

}  // namespace

RecoveryManager::RecoveryManager(mpi::Runtime& rt, GroupProtocol& protocol,
                                 ckpt::ImageRegistry& registry,
                                 ckpt::Checkpointer& checkpointer,
                                 RecoveryOptions options)
    : rt_(&rt), protocol_(&protocol), registry_(&registry),
      checkpointer_(&checkpointer), options_(options) {
  GCR_CHECK(options_.max_concurrent_restores >= 1);
  const std::size_t ngroups =
      static_cast<std::size_t>(protocol.groups().num_groups());
  gstate_.assign(ngroups, GroupState::kAlive);
  // The protocol fires this from the restoring group's shard; the recovery
  // state machine lives on the home shard, so the completion goes home
  // through the cross-shard edge. The edge is ALWAYS ON — a single-shard
  // run forwards the post to a same-engine call_at(+L) — so the recovery
  // timeline is identical at every shard count (same construction as the
  // tier store's control edge).
  protocol_->set_restore_done_callback([this](int group) {
    sim::ShardedEngine& sh = rt_->cluster().shards();
    const int sg = shard_of_group(group);
    sh.post_at(sg, 0, sh.shard(sg).now() + sh.lookahead(),
               [this, group] { on_restore_done(group); });
  });
}

int RecoveryManager::shard_of_group(int group) const {
  return rt_->shard_of(protocol_->groups().members(group).front());
}

void RecoveryManager::dispatch_kill(int group) {
  // Always-on ±L edge (see the constructor comment): the kill lands on the
  // group's shard one lookahead after the home-side decision at every
  // shard count, single-shard runs included.
  sim::ShardedEngine& sh = rt_->cluster().shards();
  sh.post_at(0, shard_of_group(group), sh.home().now() + sh.lookahead(),
             [this, group] { kill_members(group); });
}

void RecoveryManager::fail_group_at(int group, sim::Time t) {
  rt_->engine().call_at(t, [this, group] { fail_group_now(group); });
}

void RecoveryManager::fail_rank_at(mpi::RankId rank, sim::Time t) {
  fail_group_at(protocol_->groups().group_of(rank), t);
}

void RecoveryManager::fail_node_at(int node, sim::Time t) {
  rt_->engine().call_at(t, [this, node] { fail_node_now(node); });
}

void RecoveryManager::fail_node_now(int node) {
  // One rank per node (mpi::Runtime's placement); nodes beyond the rank
  // range (the driver node) have nothing to kill.
  if (node < 0 || node >= rt_->nranks()) return;
  fail_group_now(protocol_->groups().group_of(node));
}

void RecoveryManager::kill_members(int group) {
  const auto& members = protocol_->groups().members(group);
  GCR_INFO("injecting failure of group %d (%zu ranks) at t=%.3fs", group,
           members.size(),
           sim::to_seconds(rt_->engine_of(members.front()).now()));
  for (mpi::RankId r : members) {
    rt_->kill_rank(rt_->rank(r));
    // A FAULT takes the node's staging buffer with it; the member's next
    // restore falls back to the shared tiers. (restart_all_at kills ranks
    // too, but voluntarily — healthy nodes keep their buffers warm.)
    checkpointer_->on_node_failed(r);
  }
}

void RecoveryManager::fail_group_now(int group) {
  if (rt_->job_finished()) return;
  auto& st = gstate_[static_cast<std::size_t>(group)];
  switch (st) {
    case GroupState::kDown:
      // The group is already dead and queued; a node cannot die twice.
      ++absorbed_;
      return;
    case GroupState::kRestoring:
      // Re-failure mid-restart: abort the restore in flight (the restore
      // and exchange-server coroutines die via Interposer::rank_killed, so
      // its completion callback never fires) and queue a fresh recovery.
      ++failures_;
      ++aborted_;
      --restores_in_flight_;
      dispatch_kill(group);
      st = GroupState::kDown;
      enqueue_restore(group);
      maybe_start_restores();  // the aborted restore freed a slot
      return;
    case GroupState::kAlive: {
      // A fault on nodes whose processes have ALL already exited does not
      // affect the job (a run is complete once every rank ran to the end);
      // there is nothing to kill or recover. A partially finished group is
      // still killed whole — its finished members roll back and re-execute
      // with the rest of the group. The alive/finished checks read member
      // state owned by the group's shard, so the whole decision runs there
      // and the bookkeeping posts back home — over the always-on ±L edges,
      // so the kill (decision + L) and the recovery bookkeeping (decision
      // + 2L) land at the same instants at every shard count. gstate_
      // stays kAlive for the ~2L round trip; a second fault in that window
      // finds the members already dead on the shard and is absorbed there.
      // The kill itself is immediate even if the group is mid-checkpoint —
      // the round dies with the processes and the group's staged images
      // are discarded (rank_killed), so restore sees the previous epoch.
      sim::ShardedEngine& sh = rt_->cluster().shards();
      const int sg = shard_of_group(group);
      sh.post_at(0, sg, sh.home().now() + sh.lookahead(), [this, group] {
        const auto& members = protocol_->groups().members(group);
        sim::ShardedEngine& sh = rt_->cluster().shards();
        const int sg = shard_of_group(group);
        const sim::Time back = sh.shard(sg).now() + sh.lookahead();
        if (!rt_->rank(members.front()).alive()) {
          sh.post_at(sg, 0, back, [this] { ++absorbed_; });
          return;
        }
        bool all_finished = true;
        for (mpi::RankId r : members) {
          if (!rt_->rank(r).finished()) {
            all_finished = false;
            break;
          }
        }
        if (all_finished) return;
        kill_members(group);
        sh.post_at(sg, 0, back, [this, group] {
          ++failures_;
          gstate_[static_cast<std::size_t>(group)] = GroupState::kDown;
          enqueue_restore(group);
          maybe_start_restores();
        });
      });
      return;
    }
  }
}

void RecoveryManager::enqueue_restore(int group) {
  const sim::Time ready =
      rt_->engine().now() +
      sim::from_seconds(options_.detect_s + options_.relaunch_s);
  queue_.push_back({ready, group});
}

void RecoveryManager::maybe_start_restores() {
  while (restores_in_flight_ < options_.max_concurrent_restores &&
         !queue_.empty()) {
    const PendingRestore next = queue_.front();
    if (next.ready_at > rt_->engine().now()) {
      // Head not ready: try again when it is. Spurious wakeups (several
      // timers armed over time) are harmless — the conditions re-check.
      rt_->engine().call_at(next.ready_at, [this] { maybe_start_restores(); });
      return;
    }
    queue_.pop_front();
    start_restore(next.group);
  }
}

void RecoveryManager::start_restore(int group) {
  gstate_[static_cast<std::size_t>(group)] = GroupState::kRestoring;
  ++restores_in_flight_;
  // The restore touches rank/protocol/registry state owned by the group's
  // shard; the always-on ±L edge carries it there. Posted after any
  // in-flight kill for this group (home posts both in order; the mailbox
  // preserves send order at equal timestamps).
  sim::ShardedEngine& sh = rt_->cluster().shards();
  sh.post_at(0, shard_of_group(group), sh.home().now() + sh.lookahead(),
             [this, group] {
               restore_ranks(protocol_->groups().members(group));
             });
}

void RecoveryManager::on_restore_done(int group) {
  // Whole-application restarts (restart_all_at) also run the restore path
  // but never enter the queue; ignore their completions.
  if (gstate_[static_cast<std::size_t>(group)] != GroupState::kRestoring) {
    return;
  }
  gstate_[static_cast<std::size_t>(group)] = GroupState::kAlive;
  ++completed_;
  --restores_in_flight_;
  maybe_start_restores();
}

void RecoveryManager::arm_random_failures(const std::vector<double>& mtbf_s) {
  GCR_CHECK(static_cast<int>(mtbf_s.size()) ==
            protocol_->groups().num_groups());
  failure_rngs_.clear();
  for (std::size_t g = 0; g < mtbf_s.size(); ++g) {
    failure_rngs_.push_back(rt_->cluster().make_rng(
        0xFA11 + static_cast<std::uint64_t>(g)));
  }
  for (std::size_t g = 0; g < mtbf_s.size(); ++g) {
    if (mtbf_s[g] > 0) {
      schedule_next_random_failure(static_cast<int>(g), mtbf_s[g]);
    }
  }
}

void RecoveryManager::schedule_next_random_failure(int group, double mtbf_s) {
  const double wait =
      failure_rngs_[static_cast<std::size_t>(group)].next_exponential(mtbf_s);
  rt_->engine().call_after(sim::from_seconds(wait), [this, group, mtbf_s] {
    if (rt_->job_finished()) return;
    fail_group_now(group);
    schedule_next_random_failure(group, mtbf_s);
  });
}

void RecoveryManager::arm_fault_model(std::unique_ptr<sim::FaultModel> model) {
  GCR_CHECK(model != nullptr);
  GCR_CHECK_MSG(fault_model_ == nullptr, "a fault model is already armed");
  fault_model_ = std::move(model);
  const sim::Cluster* cluster = &rt_->cluster();
  fault_model_->bind(rt_->nranks(), [cluster](std::uint64_t stream) {
    return cluster->make_rng(mix_seed(kFaultModelStreamBase, stream));
  });
  schedule_next_model_event();
}

void RecoveryManager::schedule_next_model_event() {
  const std::optional<sim::FaultEvent> ev = fault_model_->next();
  if (!ev.has_value()) return;
  GCR_CHECK(ev->at_s >= 0);
  // Clamp to now: a schedule may start before the arming time.
  const sim::Time at =
      std::max(sim::from_seconds(ev->at_s), rt_->engine().now());
  rt_->engine().call_at(at, [this, node = ev->node] {
    if (rt_->job_finished()) return;
    fail_node_now(node);
    schedule_next_model_event();
  });
}

void RecoveryManager::restart_all_at(sim::Time t) {
  GCR_CHECK_MSG(!rt_->resident(),
                "whole-application restarts cross every shard; the residency "
                "gate keeps such configs on the unsharded path");
  rt_->engine().call_at(t, [this] {
    std::vector<mpi::RankId> all;
    for (int r = 0; r < rt_->nranks(); ++r) {
      all.push_back(r);
      if (rt_->rank(r).alive()) rt_->kill_rank(rt_->rank(r));
    }
    rt_->engine().call_after(sim::from_seconds(options_.relaunch_s),
                             [this, all] { restore_ranks(all); });
  });
}

void RecoveryManager::restore_ranks(const std::vector<mpi::RankId>& ranks) {
  // Two passes: install every rank's state first, then respawn, so daemons
  // never see a peer in a half-reset state.
  for (mpi::RankId r : ranks) {
    mpi::Rank& rank = rt_->rank(r);
    rt_->begin_restart(rank);
    const ckpt::StoredCheckpoint* image = registry_->latest(r);
    if (image != nullptr) {
      rt_->restore_rank(rank, image->runtime_state);
    }
    protocol_->stage_restore(rank, image);
  }
  for (mpi::RankId r : ranks) {
    rt_->respawn_rank(rt_->rank(r));
  }
}

}  // namespace gcr::core
