#include "core/recovery.hpp"

#include "util/log.hpp"

namespace gcr::core {

RecoveryManager::RecoveryManager(mpi::Runtime& rt, GroupProtocol& protocol,
                                 ckpt::ImageRegistry& registry,
                                 RecoveryOptions options)
    : rt_(&rt), protocol_(&protocol), registry_(&registry), options_(options) {}

void RecoveryManager::fail_group_at(int group, sim::Time t) {
  rt_->engine().call_at(t, [this, group] { fail_group_now(group); });
}

void RecoveryManager::fail_rank_at(mpi::RankId rank, sim::Time t) {
  fail_group_at(protocol_->groups().group_of(rank), t);
}

bool RecoveryManager::anything_busy() const {
  if (recoveries_in_flight_ > 0) return true;
  for (int g = 0; g < protocol_->groups().num_groups(); ++g) {
    if (protocol_->group_restarting(g)) return true;
  }
  return false;
}

void RecoveryManager::fail_group_now(int group) {
  if (rt_->job_finished()) return;
  if (anything_busy() || protocol_->group_in_checkpoint(group)) {
    // Failures overlapping the target group's own checkpoint or another
    // recovery are deferred (serialized recovery; see header). Killing a
    // rank while a peer's restorer is mid-exchange with it would strand the
    // peer (dropped control traffic), so the whole kill->resume window is
    // exclusive.
    rt_->engine().call_after(sim::from_seconds(options_.busy_retry_s),
                             [this, group] { fail_group_now(group); });
    return;
  }
  ++failures_;
  ++recoveries_in_flight_;
  const auto members = protocol_->groups().members(group);
  GCR_INFO("injecting failure of group %d (%zu ranks) at t=%.3fs", group,
           members.size(), sim::to_seconds(rt_->engine().now()));
  for (mpi::RankId r : members) {
    rt_->kill_rank(rt_->rank(r));
  }
  const sim::Time delay =
      sim::from_seconds(options_.detect_s + options_.relaunch_s);
  rt_->engine().call_after(delay, [this, members, group] {
    restore_ranks(members);
    poll_recovery_done(group);
  });
}

void RecoveryManager::poll_recovery_done(int group) {
  if (protocol_->group_restarting(group)) {
    rt_->engine().call_after(sim::from_seconds(options_.busy_retry_s),
                             [this, group] { poll_recovery_done(group); });
    return;
  }
  --recoveries_in_flight_;
}

void RecoveryManager::arm_random_failures(const std::vector<double>& mtbf_s) {
  GCR_CHECK(static_cast<int>(mtbf_s.size()) ==
            protocol_->groups().num_groups());
  failure_rngs_.clear();
  for (std::size_t g = 0; g < mtbf_s.size(); ++g) {
    failure_rngs_.push_back(rt_->cluster().make_rng(
        0xFA11 + static_cast<std::uint64_t>(g)));
  }
  for (std::size_t g = 0; g < mtbf_s.size(); ++g) {
    if (mtbf_s[g] > 0) {
      schedule_next_random_failure(static_cast<int>(g), mtbf_s[g]);
    }
  }
}

void RecoveryManager::schedule_next_random_failure(int group, double mtbf_s) {
  const double wait =
      failure_rngs_[static_cast<std::size_t>(group)].next_exponential(mtbf_s);
  rt_->engine().call_after(sim::from_seconds(wait), [this, group, mtbf_s] {
    if (rt_->job_finished()) return;
    fail_group_now(group);
    schedule_next_random_failure(group, mtbf_s);
  });
}

void RecoveryManager::restart_all_at(sim::Time t) {
  rt_->engine().call_at(t, [this] {
    std::vector<mpi::RankId> all;
    for (int r = 0; r < rt_->nranks(); ++r) {
      all.push_back(r);
      if (rt_->rank(r).alive()) rt_->kill_rank(rt_->rank(r));
    }
    rt_->engine().call_after(sim::from_seconds(options_.relaunch_s),
                             [this, all] { restore_ranks(all); });
  });
}

void RecoveryManager::restore_ranks(const std::vector<mpi::RankId>& ranks) {
  // Two passes: install every rank's state first, then respawn, so daemons
  // never see a peer in a half-reset state.
  for (mpi::RankId r : ranks) {
    mpi::Rank& rank = rt_->rank(r);
    rt_->begin_restart(rank);
    const ckpt::StoredCheckpoint* image = registry_->latest(r);
    if (image != nullptr) {
      rt_->restore_rank(rank, image->runtime_state);
    }
    protocol_->stage_restore(rank, image);
  }
  for (mpi::RankId r : ranks) {
    rt_->respawn_rank(rt_->rank(r));
  }
}

}  // namespace gcr::core
