#include "core/recovery.hpp"

#include <algorithm>
#include <map>
#include <string>
#include <utility>

#include "group/strategies.hpp"
#include "sim/awaitables.hpp"
#include "util/log.hpp"

namespace gcr::core {
namespace {

/// Stream-id namespace for FaultModel substreams, disjoint from the other
/// cluster seed consumers (0x6A00+r protocol jitter, 0xFA11+g legacy
/// failure streams) because it passes through mix_seed a second time.
constexpr std::uint64_t kFaultModelStreamBase = 0xFA17A11ULL;
/// Same construction for ChurnModel substreams; the base differs so a run
/// arming both models draws from disjoint streams.
constexpr std::uint64_t kChurnModelStreamBase = 0xC4021EULL;

}  // namespace

RecoveryManager::RecoveryManager(mpi::Runtime& rt, GroupProtocol& protocol,
                                 ckpt::ImageRegistry& registry,
                                 ckpt::Checkpointer& checkpointer,
                                 RecoveryOptions options)
    : rt_(&rt), protocol_(&protocol), registry_(&registry),
      checkpointer_(&checkpointer), options_(options) {
  GCR_CHECK(options_.max_concurrent_restores >= 1);
  const std::size_t ngroups =
      static_cast<std::size_t>(protocol.groups().num_groups());
  gstate_.assign(ngroups, GroupState::kAlive);
  down_since_.assign(static_cast<std::size_t>(rt.nranks()), sim::Time{-1});
  // The protocol fires this from the restoring group's shard; the recovery
  // state machine lives on the home shard, so the completion goes home
  // through the cross-shard edge. The edge is ALWAYS ON — a single-shard
  // run forwards the post to a same-engine call_at(+L) — so the recovery
  // timeline is identical at every shard count (same construction as the
  // tier store's control edge). The group INDEX is only valid at the firing
  // instant; it is pinned to the representative rank before the hop.
  protocol_->set_restore_done_callback([this](int group) {
    const mpi::RankId rep = protocol_->groups().members(group).front();
    sim::ShardedEngine& sh = rt_->cluster().shards();
    const int sg = shard_of_group(group);
    sh.post_at(sg, 0, sh.shard(sg).now() + sh.lookahead(),
               [this, rep] { on_restore_done(rep); });
  });
}

int RecoveryManager::shard_of_group(int group) const {
  return rt_->shard_of(protocol_->groups().members(group).front());
}

void RecoveryManager::dispatch_kill(mpi::RankId rep) {
  // Always-on ±L edge (see the constructor comment): the kill lands on the
  // group's shard one lookahead after the home-side decision at every
  // shard count, single-shard runs included.
  sim::ShardedEngine& sh = rt_->cluster().shards();
  const int group = protocol_->groups().group_of(rep);
  sh.post_at(0, shard_of_group(group), sh.home().now() + sh.lookahead(),
             [this, rep] {
               kill_members(protocol_->groups().group_of(rep));
             });
}

void RecoveryManager::fail_group_at(int group, sim::Time t) {
  // Pin the group to its representative rank NOW: churn may renumber the
  // partition before t arrives; in static runs the resolution is identity.
  const mpi::RankId rep = protocol_->groups().members(group).front();
  rt_->engine().call_at(t, [this, rep] {
    fail_group_now(protocol_->groups().group_of(rep));
  });
}

void RecoveryManager::fail_rank_at(mpi::RankId rank, sim::Time t) {
  rt_->engine().call_at(t, [this, rank] {
    fail_group_now(protocol_->groups().group_of(rank));
  });
}

void RecoveryManager::fail_node_at(int node, sim::Time t) {
  rt_->engine().call_at(t, [this, node] { fail_node_now(node); });
}

void RecoveryManager::fail_node_now(int node) {
  // One rank per node (mpi::Runtime's placement); nodes beyond the rank
  // range (the driver node) have nothing to kill.
  if (node < 0 || node >= rt_->nranks()) return;
  fail_group_now(protocol_->groups().group_of(node));
}

void RecoveryManager::kill_members(int group) {
  const auto& members = protocol_->groups().members(group);
  GCR_INFO("injecting failure of group %d (%zu ranks) at t=%.3fs", group,
           members.size(),
           sim::to_seconds(rt_->engine_of(members.front()).now()));
  for (mpi::RankId r : members) {
    rt_->kill_rank(rt_->rank(r));
    // A FAULT takes the node's staging buffer with it; the member's next
    // restore falls back to the shared tiers. (restart_all_at kills ranks
    // too, but voluntarily — healthy nodes keep their buffers warm.)
    checkpointer_->on_node_failed(r);
  }
}

void RecoveryManager::fail_group_now(int group) {
  if (rt_->job_finished()) return;
  auto& st = gstate_[static_cast<std::size_t>(group)];
  switch (st) {
    case GroupState::kDown:
      // The group is already dead and queued; a node cannot die twice.
      // (Covers a node mid-rejoin-relaunch too: it is not up yet.)
      ++absorbed_;
      return;
    case GroupState::kDeparted:
      // The node left the cluster; there is nothing there to fail.
      ++absorbed_;
      return;
    case GroupState::kRestoring: {
      // Re-failure mid-restart: abort the restore in flight (the restore
      // and exchange-server coroutines die via Interposer::rank_killed, so
      // its completion callback never fires) and queue a fresh recovery.
      // If the restore was a REJOIN, the join is the casualty — the fresh
      // recovery is an ordinary one, so the failure books stay balanced.
      const mpi::RankId rep = protocol_->groups().members(group).front();
      ++failures_;
      if (rejoining_.erase(rep) > 0) {
        ++joins_aborted_;
      } else {
        ++aborted_;
      }
      --restores_in_flight_;
      dispatch_kill(rep);
      st = GroupState::kDown;
      enqueue_restore(rep);
      maybe_start_restores();  // the aborted restore freed a slot
      return;
    }
    case GroupState::kAlive: {
      // A fault on nodes whose processes have ALL already exited does not
      // affect the job (a run is complete once every rank ran to the end);
      // there is nothing to kill or recover. A partially finished group is
      // still killed whole — its finished members roll back and re-execute
      // with the rest of the group. The alive/finished checks read member
      // state owned by the group's shard, so the whole decision runs there
      // and the bookkeeping posts back home — over the always-on ±L edges,
      // so the kill (decision + L) and the recovery bookkeeping (decision
      // + 2L) land at the same instants at every shard count. gstate_
      // stays kAlive for the ~2L round trip; a second fault in that window
      // finds the members already dead on the shard and is absorbed there.
      // The kill itself is immediate even if the group is mid-checkpoint —
      // the round dies with the processes and the group's staged images
      // are discarded (rank_killed), so restore sees the previous epoch.
      const mpi::RankId rep = protocol_->groups().members(group).front();
      sim::ShardedEngine& sh = rt_->cluster().shards();
      const int sg = shard_of_group(group);
      sh.post_at(0, sg, sh.home().now() + sh.lookahead(), [this, rep] {
        const int group = protocol_->groups().group_of(rep);
        const auto& members = protocol_->groups().members(group);
        sim::ShardedEngine& sh = rt_->cluster().shards();
        const int sg = shard_of_group(group);
        const sim::Time back = sh.shard(sg).now() + sh.lookahead();
        if (!rt_->rank(rep).alive()) {
          sh.post_at(sg, 0, back, [this] { ++absorbed_; });
          return;
        }
        bool all_finished = true;
        for (mpi::RankId r : members) {
          if (!rt_->rank(r).finished()) {
            all_finished = false;
            break;
          }
        }
        if (all_finished) return;
        kill_members(group);
        sh.post_at(sg, 0, back, [this, rep] {
          const int group = protocol_->groups().group_of(rep);
          ++failures_;
          gstate_[static_cast<std::size_t>(group)] = GroupState::kDown;
          mark_down(protocol_->groups().members(group), rt_->engine().now());
          enqueue_restore(rep);
          maybe_start_restores();
        });
      });
      return;
    }
  }
}

void RecoveryManager::enqueue_restore(mpi::RankId rep) {
  const sim::Time ready =
      rt_->engine().now() +
      sim::from_seconds(options_.detect_s + options_.relaunch_s);
  queue_.push_back({ready, rep});
}

void RecoveryManager::maybe_start_restores() {
  while (restores_in_flight_ < options_.max_concurrent_restores &&
         !queue_.empty()) {
    const PendingRestore next = queue_.front();
    if (next.ready_at > rt_->engine().now()) {
      // Head not ready: try again when it is. Spurious wakeups (several
      // timers armed over time) are harmless — the conditions re-check.
      rt_->engine().call_at(next.ready_at, [this] { maybe_start_restores(); });
      return;
    }
    queue_.pop_front();
    start_restore(next.rep);
  }
}

void RecoveryManager::start_restore(mpi::RankId rep) {
  const int group = protocol_->groups().group_of(rep);
  gstate_[static_cast<std::size_t>(group)] = GroupState::kRestoring;
  ++restores_in_flight_;
  // The restore touches rank/protocol/registry state owned by the group's
  // shard; the always-on ±L edge carries it there. Posted after any
  // in-flight kill for this group (home posts both in order; the mailbox
  // preserves send order at equal timestamps).
  sim::ShardedEngine& sh = rt_->cluster().shards();
  sh.post_at(0, shard_of_group(group), sh.home().now() + sh.lookahead(),
             [this, rep] {
               restore_ranks(protocol_->groups().members(
                   protocol_->groups().group_of(rep)));
             });
}

void RecoveryManager::on_restore_done(mpi::RankId rep) {
  const int group = protocol_->groups().group_of(rep);
  // Whole-application restarts (restart_all_at) also run the restore path
  // but never enter the queue; ignore their completions.
  if (gstate_[static_cast<std::size_t>(group)] != GroupState::kRestoring) {
    return;
  }
  gstate_[static_cast<std::size_t>(group)] = GroupState::kAlive;
  mark_up(protocol_->groups().members(group), rt_->engine().now());
  --restores_in_flight_;
  if (rejoining_.erase(rep) > 0) {
    ++joins_completed_;
    GCR_INFO("churn: rank %d rejoined at t=%.3fs", rep,
             sim::to_seconds(rt_->engine().now()));
    if (churn_options_.merge_on_join && planner_ != nullptr) {
      enqueue_churn_op({ChurnOp::Kind::kMerge, rep, 0});
    }
  } else {
    ++completed_;
  }
  maybe_start_restores();
}

void RecoveryManager::arm_random_failures(const std::vector<double>& mtbf_s) {
  GCR_CHECK(static_cast<int>(mtbf_s.size()) ==
            protocol_->groups().num_groups());
  failure_rngs_.clear();
  for (std::size_t g = 0; g < mtbf_s.size(); ++g) {
    failure_rngs_.push_back(rt_->cluster().make_rng(
        0xFA11 + static_cast<std::uint64_t>(g)));
  }
  for (std::size_t g = 0; g < mtbf_s.size(); ++g) {
    if (mtbf_s[g] > 0) {
      // The arrival STREAM stays keyed to the arming-time group index (so
      // the legacy timeline is bit-identical); the TARGET is pinned to the
      // representative rank, which stays meaningful across churn installs.
      schedule_next_random_failure(
          static_cast<int>(g),
          protocol_->groups().members(static_cast<int>(g)).front(),
          mtbf_s[g]);
    }
  }
}

void RecoveryManager::schedule_next_random_failure(int stream, mpi::RankId rep,
                                                   double mtbf_s) {
  const double wait =
      failure_rngs_[static_cast<std::size_t>(stream)].next_exponential(mtbf_s);
  rt_->engine().call_after(sim::from_seconds(wait),
                           [this, stream, rep, mtbf_s] {
    if (rt_->job_finished()) return;
    fail_group_now(protocol_->groups().group_of(rep));
    schedule_next_random_failure(stream, rep, mtbf_s);
  });
}

void RecoveryManager::arm_fault_model(std::unique_ptr<sim::FaultModel> model) {
  GCR_CHECK(model != nullptr);
  GCR_CHECK_MSG(fault_model_ == nullptr, "a fault model is already armed");
  fault_model_ = std::move(model);
  const sim::Cluster* cluster = &rt_->cluster();
  fault_model_->bind(rt_->nranks(), [cluster](std::uint64_t stream) {
    return cluster->make_rng(mix_seed(kFaultModelStreamBase, stream));
  });
  schedule_next_model_event();
}

void RecoveryManager::schedule_next_model_event() {
  const std::optional<sim::FaultEvent> ev = fault_model_->next();
  if (!ev.has_value()) return;
  GCR_CHECK(ev->at_s >= 0);
  // Clamp to now: a schedule may start before the arming time.
  const sim::Time at =
      std::max(sim::from_seconds(ev->at_s), rt_->engine().now());
  rt_->engine().call_at(at, [this, node = ev->node] {
    if (rt_->job_finished()) return;
    fail_node_now(node);
    schedule_next_model_event();
  });
}

void RecoveryManager::restart_all_at(sim::Time t) {
  GCR_CHECK_MSG(!rt_->resident(),
                "whole-application restarts cross every shard; the residency "
                "gate keeps such configs on the unsharded path");
  rt_->engine().call_at(t, [this] {
    std::vector<mpi::RankId> all;
    for (int r = 0; r < rt_->nranks(); ++r) {
      all.push_back(r);
      if (rt_->rank(r).alive()) rt_->kill_rank(rt_->rank(r));
    }
    rt_->engine().call_after(sim::from_seconds(options_.relaunch_s),
                             [this, all] { restore_ranks(all); });
  });
}

void RecoveryManager::restore_ranks(const std::vector<mpi::RankId>& ranks) {
  // One token per restore operation: every member of this restore keys its
  // restart barrier on it. (Keying on per-rank incarnations would deadlock
  // once elastic merges put ranks with different kill histories in one
  // group.)
  const std::uint64_t token = ++restore_tokens_;
  // Two passes: install every rank's state first, then respawn, so daemons
  // never see a peer in a half-reset state.
  for (mpi::RankId r : ranks) {
    mpi::Rank& rank = rt_->rank(r);
    rt_->begin_restart(rank);
    const ckpt::StoredCheckpoint* image = registry_->latest(r);
    if (image != nullptr) {
      rt_->restore_rank(rank, image->runtime_state);
    }
    protocol_->stage_restore(rank, image, token);
  }
  for (mpi::RankId r : ranks) {
    rt_->respawn_rank(rt_->rank(r));
  }
}

// --- availability -----------------------------------------------------------

void RecoveryManager::mark_down(const std::vector<mpi::RankId>& ranks,
                                sim::Time at) {
  for (mpi::RankId r : ranks) {
    sim::Time& since = down_since_[static_cast<std::size_t>(r)];
    if (since < 0) since = at;
  }
}

void RecoveryManager::mark_up(const std::vector<mpi::RankId>& ranks,
                              sim::Time at) {
  for (mpi::RankId r : ranks) {
    sim::Time& since = down_since_[static_cast<std::size_t>(r)];
    if (since >= 0) {
      downtime_ += at - since;
      since = -1;
    }
  }
}

double RecoveryManager::availability(sim::Time end) const {
  if (end <= 0) return 1.0;
  sim::Time down = downtime_;
  for (sim::Time since : down_since_) {
    if (since >= 0 && since < end) down += end - since;
  }
  const double total =
      sim::to_seconds(end) * static_cast<double>(rt_->nranks());
  return std::max(0.0, 1.0 - sim::to_seconds(down) / total);
}

// --- churn ------------------------------------------------------------------

void RecoveryManager::arm_churn_model(std::unique_ptr<sim::ChurnModel> model,
                                      const RegroupPlanner* planner,
                                      ChurnOptions options) {
  GCR_CHECK(model != nullptr);
  GCR_CHECK_MSG(churn_model_ == nullptr, "a churn model is already armed");
  GCR_CHECK_MSG(!rt_->resident(),
                "churn regroups and departures move ranks across group (and "
                "so shard) boundaries; the residency gate keeps churn "
                "configs on the unsharded path");
  GCR_CHECK(options.poll_s > 0 && options.retry_s > 0);
  churn_model_ = std::move(model);
  planner_ = planner;
  churn_options_ = options;
  churn_cap_ = options.max_group_size;
  if (churn_cap_ <= 0) {
    // Default: churn may refill groups to the configured partition's grain
    // but never grow one past it (GP1 stays fully uncoordinated: cap 1
    // means no merge target ever qualifies).
    for (int g = 0; g < protocol_->groups().num_groups(); ++g) {
      churn_cap_ = std::max(
          churn_cap_, static_cast<int>(protocol_->groups().members(g).size()));
    }
  }
  const sim::Cluster* cluster = &rt_->cluster();
  churn_model_->bind(rt_->nranks(), [cluster](std::uint64_t stream) {
    return cluster->make_rng(mix_seed(kChurnModelStreamBase, stream));
  });
  schedule_next_churn_event();
}

void RecoveryManager::schedule_next_churn_event() {
  const std::optional<sim::ChurnEvent> ev = churn_model_->next();
  if (!ev.has_value()) return;
  GCR_CHECK(ev->at_s >= 0);
  const sim::Time at =
      std::max(sim::from_seconds(ev->at_s), rt_->engine().now());
  rt_->engine().call_at(at, [this, e = *ev] {
    if (rt_->job_finished()) return;
    on_churn_event(e);
    schedule_next_churn_event();
  });
}

void RecoveryManager::on_churn_event(const sim::ChurnEvent& ev) {
  const mpi::RankId rank = ev.node;  // one rank per node
  if (rank < 0 || rank >= rt_->nranks()) return;
  switch (ev.kind) {
    case sim::ChurnEventKind::kDrain:
      pending_departures_.insert(rank);
      enqueue_churn_op({ChurnOp::Kind::kDrain, rank, 0});
      return;
    case sim::ChurnEventKind::kReclaim: {
      // The warning clock starts at the EVENT, not when the op reaches the
      // head of the regroup queue — a busy queue genuinely eats notice.
      const std::uint64_t token = ++next_reclaim_token_;
      reclaim_pending_.insert(token);
      rt_->engine().call_after(
          sim::from_seconds(ev.warning_s),
          [this, rank, token] { reclaim_deadline(rank, token); });
      pending_departures_.insert(rank);
      enqueue_churn_op({ChurnOp::Kind::kReclaim, rank, token});
      return;
    }
    case sim::ChurnEventKind::kJoin:
      start_join(rank);
      return;
  }
}

void RecoveryManager::enqueue_churn_op(ChurnOp op) {
  churn_ops_.push_back(op);
  pump_churn_ops();
}

void RecoveryManager::pump_churn_ops() {
  if (churn_op_active_ || churn_ops_.empty()) return;
  const ChurnOp op = churn_ops_.front();
  churn_ops_.pop_front();
  churn_op_active_ = true;
  std::erase_if(churn_procs_, [](const sim::ProcPtr& p) {
    return p == nullptr || !p->alive();
  });
  sim::Engine& eng = rt_->engine();
  switch (op.kind) {
    case ChurnOp::Kind::kDrain:
      churn_procs_.push_back(eng.spawn("drain" + std::to_string(op.rank),
                                       run_drain_op(op.rank, true, 0)));
      return;
    case ChurnOp::Kind::kReclaim:
      churn_procs_.push_back(eng.spawn("reclaim" + std::to_string(op.rank),
                                       run_drain_op(op.rank, false, op.token)));
      return;
    case ChurnOp::Kind::kMerge:
      churn_procs_.push_back(eng.spawn("merge" + std::to_string(op.rank),
                                       run_merge_op(op.rank)));
      return;
  }
}

void RecoveryManager::finish_churn_op() {
  churn_op_active_ = false;
  // Start the next op from a fresh event, after the current coroutine has
  // fully unwound.
  rt_->engine().post([this] { pump_churn_ops(); });
}

sim::Co<void> RecoveryManager::run_drain_op(mpi::RankId rank, bool voluntary,
                                            std::uint64_t token) {
  sim::Engine& eng = rt_->engine();
  const sim::Time poll = sim::from_seconds(churn_options_.poll_s);
  const sim::Time retry = sim::from_seconds(churn_options_.retry_s);
  bool done = false;
  while (!done) {
    if (rt_->job_finished() ||
        (token != 0 && churn_cancelled_.count(token) != 0)) {
      break;
    }
    const group::GroupSet& gs = protocol_->groups();
    const int g = gs.group_of(rank);
    // A group with a finished member cannot checkpoint again (rounds abort
    // on finished ranks); the node lingers until the job ends.
    bool finished = false;
    for (mpi::RankId m : gs.members(g)) {
      if (rt_->rank(m).finished()) {
        finished = true;
        break;
      }
    }
    if (finished) {
      ++churn_absorbed_;
      break;
    }
    if (gstate_[static_cast<std::size_t>(g)] != GroupState::kAlive) {
      if (gstate_[static_cast<std::size_t>(g)] == GroupState::kDeparted) {
        ++churn_absorbed_;  // already gone (duplicate drain)
        break;
      }
      // Down or restoring: a clean exit may still be possible later (for a
      // reclaim, the deadline decides independently).
      co_await sim::delay(eng, retry);
      continue;
    }
    if (!protocol_->quiescent_for_regroup(gs.members(g))) {
      co_await sim::delay(eng, poll);
      continue;
    }
    // Quiescent and alive. Open the transition toward the post-departure
    // partition (conservative logging across BOTH cuts from here on), then
    // demand a checkpoint commit strictly newer than the rank's current
    // image — that committed cut is what the departed rank will rejoin
    // from, and what its group survives on without it.
    group::GroupSet pending = group::split_rank(gs, rank);
    const bool structural = pending.num_groups() != gs.num_groups();
    if (structural) protocol_->begin_transition(pending);
    const ckpt::StoredCheckpoint* img = registry_->latest(rank);
    const std::uint64_t baseline = img != nullptr ? img->meta.cut_seq : 0;
    protocol_->request_group_checkpoint(g);
    bool committed = false;
    bool collided = false;
    while (!committed && !collided) {
      co_await sim::delay(eng, poll);
      if (rt_->job_finished() ||
          (token != 0 && churn_cancelled_.count(token) != 0)) {
        collided = true;
        done = true;  // the deadline (or the end of the run) took over
        break;
      }
      if (gstate_[static_cast<std::size_t>(g)] != GroupState::kAlive) {
        collided = true;  // a fault got the group mid-drain
        break;
      }
      const ckpt::StoredCheckpoint* latest = registry_->latest(rank);
      const std::uint64_t cut = latest != nullptr ? latest->meta.cut_seq : 0;
      const bool quiet = protocol_->quiescent_for_regroup(gs.members(g));
      if (cut > baseline && quiet) {
        committed = true;
      } else if (cut <= baseline && quiet) {
        // The request was dropped (leader busy) or the round aborted; ask
        // again from a quiescent state.
        protocol_->request_group_checkpoint(g);
      }
    }
    if (!committed) {
      if (structural) protocol_->end_transition();
      if (!done) co_await sim::delay(eng, retry);
      continue;
    }
    // Committed cut in hand and the group is quiescent again: install the
    // split and depart. Everything from here runs in one synchronous
    // instant, so nothing can slip between install and kill.
    if (structural) {
      install_grouping(std::move(pending));
      ++splits_installed_;
    }
    const int gd = protocol_->groups().group_of(rank);
    GCR_CHECK(protocol_->groups().members(gd).size() == 1);
    gstate_[static_cast<std::size_t>(gd)] = GroupState::kDeparted;
    GCR_INFO("churn: %s departs rank %d at t=%.3fs",
             voluntary ? "drain" : "reclaim", rank,
             sim::to_seconds(eng.now()));
    rt_->kill_rank(rt_->rank(rank));
    if (voluntary) {
      ++drains_completed_;
    } else {
      // The provider takes the node: its staging buffer goes with it.
      checkpointer_->on_node_failed(rank);
      ++reclaims_clean_;
      reclaim_pending_.erase(token);
    }
    mark_down(protocol_->groups().members(gd), eng.now());
    done = true;
  }
  // This departure op has resolved (departed, absorbed, cancelled, or the
  // job ended); a join that arrived meanwhile can now be admitted — or
  // absorbed, if the op did not actually depart the node.
  const auto dep = pending_departures_.find(rank);
  if (dep != pending_departures_.end()) pending_departures_.erase(dep);
  if (deferred_joins_.erase(rank) != 0) start_join(rank);
  finish_churn_op();
}

void RecoveryManager::reclaim_deadline(mpi::RankId rank, std::uint64_t token) {
  if (reclaim_pending_.erase(token) == 0) return;  // the clean drain won
  churn_cancelled_.insert(token);
  if (rt_->job_finished()) return;
  ++reclaims_forced_;
  GCR_INFO("churn: reclaim warning for rank %d expired at t=%.3fs; forcing "
           "failure",
           rank, sim::to_seconds(rt_->engine().now()));
  fail_group_now(protocol_->groups().group_of(rank));
}

void RecoveryManager::start_join(mpi::RankId rank) {
  if (rt_->job_finished()) return;
  const int g = protocol_->groups().group_of(rank);
  if (gstate_[static_cast<std::size_t>(g)] != GroupState::kDeparted) {
    if (pending_departures_.count(rank) != 0) {
      // The model schedules joins on the wall clock (departure-event time
      // + outage), but the departure op may still be waiting for
      // quiescence or a committed cut. Park the join; the op re-issues it
      // when it resolves.
      deferred_joins_.insert(rank);
      return;
    }
    // The node never departed (its drain was absorbed, or a forced reclaim
    // turned the departure into a failure — which recovers through the
    // ordinary queue); there is nothing to rejoin.
    ++churn_absorbed_;
    return;
  }
  // A departed group is always the singleton the departure installed.
  GCR_CHECK(protocol_->groups().members(g).size() == 1);
  gstate_[static_cast<std::size_t>(g)] = GroupState::kDown;
  rejoining_.insert(rank);
  GCR_INFO("churn: rank %d joining at t=%.3fs", rank,
           sim::to_seconds(rt_->engine().now()));
  // Joins ride the ordinary restore queue: detect_s stands in for the
  // scheduler noticing the node, relaunch_s for process creation, and the
  // restore-slot limit applies.
  enqueue_restore(rank);
  maybe_start_restores();
}

sim::Co<void> RecoveryManager::run_merge_op(mpi::RankId rank) {
  sim::Engine& eng = rt_->engine();
  const sim::Time poll = sim::from_seconds(churn_options_.poll_s);
  const sim::Time retry = sim::from_seconds(churn_options_.retry_s);
  for (;;) {
    if (rt_->job_finished() || planner_ == nullptr) break;
    const group::GroupSet& gs = protocol_->groups();
    const int from = gs.group_of(rank);
    // A fault mid-wait, a finished rank, or a lost singleton ends the
    // attempt; the rank stays where it is.
    if (gstate_[static_cast<std::size_t>(from)] != GroupState::kAlive ||
        gs.members(from).size() != 1 || rt_->rank(rank).finished()) {
      break;
    }
    const std::optional<int> target =
        planner_->choose_merge_target(rank, gs, churn_cap_);
    if (!target.has_value()) break;  // no affinity: stay a singleton
    const int tg = *target;
    if (gstate_[static_cast<std::size_t>(tg)] != GroupState::kAlive) {
      co_await sim::delay(eng, retry);
      continue;
    }
    bool finished = false;
    for (mpi::RankId m : gs.members(tg)) {
      if (rt_->rank(m).finished()) {
        finished = true;
        break;
      }
    }
    if (finished) break;
    if (!protocol_->quiescent_for_regroup(gs.members(from)) ||
        !protocol_->quiescent_for_regroup(gs.members(tg))) {
      co_await sim::delay(eng, poll);
      continue;
    }
    // Both sides alive and quiescent. In ONE synchronous instant: open
    // transitional double-logging across the old cut (it persists until
    // the merged group's first joint commit clears it), then install the
    // merged partition.
    protocol_->add_transitional_logging({rank}, gs.members(tg));
    group::GroupSet next = group::merge_rank(gs, rank, tg);
    GCR_INFO("churn: merging rank %d into group %d at t=%.3fs", rank, tg,
             sim::to_seconds(eng.now()));
    install_grouping(std::move(next));
    ++merges_installed_;
    break;
  }
  finish_churn_op();
}

void RecoveryManager::install_grouping(group::GroupSet next) {
  const group::GroupSet& cur = protocol_->groups();
  std::map<std::vector<mpi::RankId>, GroupState> carry;
  for (int g = 0; g < cur.num_groups(); ++g) {
    carry.emplace(cur.members(g), gstate_[static_cast<std::size_t>(g)]);
  }
  protocol_->install_groups(std::move(next));
  const group::GroupSet& now = protocol_->groups();
  // Unchanged member sets keep their state; changed groups start kAlive
  // (the transition machinery only installs over alive, quiescent ranks).
  gstate_.assign(static_cast<std::size_t>(now.num_groups()),
                 GroupState::kAlive);
  for (int g = 0; g < now.num_groups(); ++g) {
    const auto it = carry.find(now.members(g));
    if (it != carry.end()) gstate_[static_cast<std::size_t>(g)] = it->second;
  }
}

}  // namespace gcr::core
