#include "core/msglog.hpp"

#include "util/assert.hpp"

namespace gcr::core {

void MessageLog::append(const mpi::Message& msg) {
  auto& q = by_dst_[msg.dst];
  GCR_CHECK_MSG(q.empty() || q.back().cum_bytes < msg.cum_bytes ||
                    (q.back().cum_bytes == msg.cum_bytes && msg.bytes == 0),
                "log entries must have non-decreasing cumulative volume");
  q.push_back(msg);
  unflushed_bytes_ += msg.bytes;
  total_bytes_ += msg.bytes;
  ++total_messages_;
}

std::size_t MessageLog::gc(mpi::RankId dst, std::int64_t upto) {
  auto it = by_dst_.find(dst);
  if (it == by_dst_.end()) return 0;
  std::size_t dropped = 0;
  auto& q = it->second;
  while (!q.empty() && q.front().cum_bytes <= upto) {
    total_bytes_ -= q.front().bytes;
    --total_messages_;
    q.pop_front();
    ++dropped;
  }
  if (q.empty()) by_dst_.erase(it);
  return dropped;
}

std::vector<mpi::Message> MessageLog::entries_after(mpi::RankId dst,
                                                    std::int64_t after) const {
  std::vector<mpi::Message> out;
  auto it = by_dst_.find(dst);
  if (it == by_dst_.end()) return out;
  for (const mpi::Message& m : it->second) {
    if (m.cum_bytes > after) out.push_back(m);
  }
  return out;
}

std::size_t MessageLog::entries_towards(mpi::RankId dst) const {
  auto it = by_dst_.find(dst);
  return it == by_dst_.end() ? 0 : it->second.size();
}

void MessageLog::clear() {
  by_dst_.clear();
  unflushed_bytes_ = 0;
  total_bytes_ = 0;
  total_messages_ = 0;
}

}  // namespace gcr::core
