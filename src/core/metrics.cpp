#include "core/metrics.hpp"

namespace gcr::core {

double Metrics::aggregate_ckpt_time_s() const {
  double total = 0;
  for (const CkptRecord& r : ckpts) total += r.phases.total();
  return total;
}

double Metrics::aggregate_coordination_time_s() const {
  double total = 0;
  for (const CkptRecord& r : ckpts) {
    total += r.phases.lock_mpi + r.phases.coordination + r.phases.finalize;
  }
  return total;
}

double Metrics::aggregate_restart_time_s() const {
  double total = 0;
  for (const RestartRecord& r : restarts) {
    total += sim::to_seconds(r.end - r.begin);
  }
  return total;
}

PhaseTimes Metrics::mean_phases() const {
  PhaseTimes sum;
  if (ckpts.empty()) return sum;
  for (const CkptRecord& r : ckpts) sum += r.phases;
  const double n = static_cast<double>(ckpts.size());
  sum.lock_mpi /= n;
  sum.coordination /= n;
  sum.checkpoint /= n;
  sum.finalize /= n;
  return sum;
}

int Metrics::completed_rounds(int nranks) const {
  if (nranks <= 0) return 0;
  return static_cast<int>(ckpts.size()) / nranks;
}

double Metrics::mean_ckpt_time_s() const {
  if (ckpts.empty()) return 0;
  double total = 0;
  for (const CkptRecord& r : ckpts) total += r.phases.total();
  return total / static_cast<double>(ckpts.size());
}

std::vector<trace::CkptWindow> Metrics::ckpt_windows() const {
  std::vector<trace::CkptWindow> out;
  out.reserve(ckpts.size());
  for (const CkptRecord& r : ckpts) {
    out.push_back(trace::CkptWindow{r.rank, r.begin, r.end});
  }
  return out;
}

}  // namespace gcr::core
