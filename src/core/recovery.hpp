// Failure injection and restart orchestration (DESIGN.md §9).
//
// Failures take down whole groups (the paper's recovery unit): the group's
// processes are killed, in-flight traffic to/from them is lost, and after a
// detection+relaunch delay each member is restored from its latest image
// (or from scratch) and re-enters execution through the protocol's restart
// procedure (volume exchange + replay). Non-failed groups keep running.
//
// Failures are injected either directly (fail_group_at / fail_node_at,
// whole-app restart via restart_all_at), through the legacy per-group
// exponential streams (arm_random_failures), or through a pluggable
// node-level FaultModel (sim/faults.hpp) whose node faults map to the
// group hosting that node's rank.
//
// Concurrent failures are handled with a recovery QUEUE, not rejection:
// a failure always kills its group immediately (the physical event is never
// deferred — a fault mid-checkpoint aborts the round and discards the
// group's staged images; a fault mid-restart aborts that restart). The
// group then becomes ready to restore after detect+relaunch, and restores
// run at most `max_concurrent_restores` at a time in failure order. The
// protocol's deferred-exchange path (core/group_protocol.cpp) keeps a
// restoring group from blocking on a peer group that is itself down, so
// queued recoveries never deadlock.
//
// Bookkeeping invariant (asserted by tests/fault_torture_test.cpp): once a
// run completes, failures_injected == recoveries_completed +
// recoveries_aborted, and recoveries_outstanding() == 0.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "ckpt/image.hpp"
#include "core/group_protocol.hpp"
#include "mpi/runtime.hpp"
#include "sim/faults.hpp"

namespace gcr::core {

struct RecoveryOptions {
  double detect_s = 1.0;    ///< failure detection latency
  double relaunch_s = 1.0;  ///< process recreation (fork/exec, rejoin)
  /// Restore windows running at once. 1 (default, the paper's setting)
  /// serializes the restore phase itself; kills are never serialized.
  int max_concurrent_restores = 1;
};

class RecoveryManager {
 public:
  /// `checkpointer` is notified of node faults so tier residency tracks
  /// physical loss: a fault wipes the failed nodes' staging buffers (their
  /// restores fall back to burst buffer / PFS — DESIGN.md §13), while the
  /// voluntary whole-application restart (restart_all_at) relaunches on
  /// healthy nodes and keeps staging-buffer residency warm.
  RecoveryManager(mpi::Runtime& rt, GroupProtocol& protocol,
                  ckpt::ImageRegistry& registry,
                  ckpt::Checkpointer& checkpointer,
                  RecoveryOptions options = {});

  /// Schedules a failure of one group at simulated time `t`.
  void fail_group_at(int group, sim::Time t);

  /// Schedules a failure of the group containing `rank`.
  void fail_rank_at(mpi::RankId rank, sim::Time t);

  /// Schedules a node fault at time `t`: kills the group containing the
  /// rank hosted on `node` (one rank per node). Faults on rankless nodes
  /// (the driver) are ignored.
  void fail_node_at(int node, sim::Time t);

  /// Schedules a whole-application restart (kill everything, restore from
  /// the stored images) at time `t`.
  void restart_all_at(sim::Time t);

  /// Arms random failures: group g fails with exponential inter-arrival
  /// times of mean `mtbf_s[g]` (0 or negative = that group never fails),
  /// drawn from a deterministic per-group substream of the cluster seed.
  /// Arrivals continue until the job finishes. (Legacy group-level model;
  /// kept bit-compatible. New work should use arm_fault_model.)
  void arm_random_failures(const std::vector<double>& mtbf_s);

  /// Arms a pluggable node-fault model: events are pulled one at a time
  /// (so infinite renewal models are fine) and injected via the node→group
  /// mapping until the job finishes or the model is exhausted. The model
  /// is bound to this runtime's rank-bearing nodes and to substreams of
  /// the cluster seed.
  void arm_fault_model(std::unique_ptr<sim::FaultModel> model);

  /// Failures that killed a live (or restoring) group.
  int failures_injected() const { return failures_; }
  /// Fault arrivals absorbed because the target group was already down.
  int failures_absorbed() const { return absorbed_; }
  /// Restores that ran to completion (group back in normal execution).
  int recoveries_completed() const { return completed_; }
  /// Restores aborted by a re-failure of the restoring group.
  int recoveries_aborted() const { return aborted_; }
  /// Groups currently down or restoring.
  int recoveries_outstanding() const {
    return failures_ - completed_ - aborted_;
  }

 private:
  enum class GroupState : std::uint8_t { kAlive, kDown, kRestoring };

  struct PendingRestore {
    sim::Time ready_at;  ///< kill time + detect + relaunch
    int group;
  };

  void fail_group_now(int group);
  void fail_node_now(int node);
  void kill_members(int group);
  /// kill_members on the shard that owns the group's ranks: synchronous in
  /// unsharded runs, posted one lookahead out in shard-resident runs (the
  /// recovery state machine stays on the home shard; only the member-
  /// touching work crosses).
  void dispatch_kill(int group);
  /// The shard hosting a group's ranks (groups are placed whole).
  int shard_of_group(int group) const;
  void enqueue_restore(int group);
  /// Starts queued restores while slots are free and heads are ready;
  /// re-arms itself for a not-yet-ready head. Idempotent.
  void maybe_start_restores();
  void start_restore(int group);
  void restore_ranks(const std::vector<mpi::RankId>& ranks);
  /// Protocol callback: the group's restart preparation completed.
  void on_restore_done(int group);
  void schedule_next_random_failure(int group, double mtbf_s);
  void schedule_next_model_event();

  mpi::Runtime* rt_;
  GroupProtocol* protocol_;
  ckpt::ImageRegistry* registry_;
  ckpt::Checkpointer* checkpointer_;
  RecoveryOptions options_;

  int failures_ = 0;
  int absorbed_ = 0;
  int completed_ = 0;
  int aborted_ = 0;

  std::vector<GroupState> gstate_;
  /// FIFO of groups awaiting a restore slot. detect+relaunch is constant,
  /// so failure order == ready order and a deque suffices.
  std::deque<PendingRestore> queue_;
  int restores_in_flight_ = 0;

  std::vector<gcr::Rng> failure_rngs_;  ///< legacy per-group arrival streams
  std::unique_ptr<sim::FaultModel> fault_model_;
};

}  // namespace gcr::core
