// Failure injection and restart orchestration (DESIGN.md §9).
//
// Failures take down whole groups (the paper's recovery unit): the group's
// processes are killed, in-flight traffic to/from them is lost, and after a
// detection+relaunch delay each member is restored from its latest image
// (or from scratch) and re-enters execution through the protocol's restart
// procedure (volume exchange + replay). Non-failed groups keep running.
//
// `restart_all_at` implements the paper's restart experiment: the entire
// application is brought down and restarted from the stored images, and the
// per-process restart-preparation time is measured.
//
// Restarts are serialized: a failure arriving while another group is
// checkpointing or restarting is retried shortly after (documented
// limitation; the paper evaluates single-failure scenarios).
#pragma once

#include <cstdint>

#include "ckpt/image.hpp"
#include "core/group_protocol.hpp"
#include "mpi/runtime.hpp"

namespace gcr::core {

struct RecoveryOptions {
  double detect_s = 1.0;         ///< failure detection latency
  double relaunch_s = 1.0;       ///< process recreation (fork/exec, rejoin)
  double busy_retry_s = 0.5;     ///< retry delay when a restart must wait
};

class RecoveryManager {
 public:
  RecoveryManager(mpi::Runtime& rt, GroupProtocol& protocol,
                  ckpt::ImageRegistry& registry, RecoveryOptions options = {});

  /// Schedules a failure of one group at simulated time `t`.
  void fail_group_at(int group, sim::Time t);

  /// Schedules a failure of the group containing `rank`.
  void fail_rank_at(mpi::RankId rank, sim::Time t);

  /// Schedules a whole-application restart (kill everything, restore from
  /// the stored images) at time `t`.
  void restart_all_at(sim::Time t);

  /// Arms random failures: group g fails with exponential inter-arrival
  /// times of mean `mtbf_s[g]` (0 or negative = that group never fails),
  /// drawn from a deterministic per-group substream of the cluster seed.
  /// Arrivals continue until the job finishes.
  void arm_random_failures(const std::vector<double>& mtbf_s);

  int failures_injected() const { return failures_; }

 private:
  void fail_group_now(int group);
  void restore_ranks(const std::vector<mpi::RankId>& ranks);
  void poll_recovery_done(int group);
  void schedule_next_random_failure(int group, double mtbf_s);
  bool anything_busy() const;

  mpi::Runtime* rt_;
  GroupProtocol* protocol_;
  ckpt::ImageRegistry* registry_;
  RecoveryOptions options_;
  int failures_ = 0;
  // One recovery at a time: covers the whole kill -> restore -> resume
  // window so exchange partners are never dead when contacted.
  int recoveries_in_flight_ = 0;
  std::vector<gcr::Rng> failure_rngs_;  ///< per-group arrival streams
};

}  // namespace gcr::core
