// Failure injection, restart orchestration, and elastic churn
// (DESIGN.md §9, §16).
//
// Failures take down whole groups (the paper's recovery unit): the group's
// processes are killed, in-flight traffic to/from them is lost, and after a
// detection+relaunch delay each member is restored from its latest image
// (or from scratch) and re-enters execution through the protocol's restart
// procedure (volume exchange + replay). Non-failed groups keep running.
//
// Failures are injected either directly (fail_group_at / fail_node_at,
// whole-app restart via restart_all_at), through the legacy per-group
// exponential streams (arm_random_failures), or through a pluggable
// node-level FaultModel (sim/faults.hpp) whose node faults map to the
// group hosting that node's rank.
//
// Concurrent failures are handled with a recovery QUEUE, not rejection:
// a failure always kills its group immediately (the physical event is never
// deferred — a fault mid-checkpoint aborts the round and discards the
// group's staged images; a fault mid-restart aborts that restart). The
// group then becomes ready to restore after detect+relaunch, and restores
// run at most `max_concurrent_restores` at a time in failure order. The
// protocol's deferred-exchange path (core/group_protocol.cpp) keeps a
// restoring group from blocking on a peer group that is itself down, so
// queued recoveries never deadlock.
//
// CHURN (arm_churn_model) adds planned membership change on top:
//   drain    — voluntary departure. The manager waits for the departing
//              rank's group to quiesce, splits the rank into a singleton
//              (GroupProtocol::begin_transition opens conservative logging
//              across the pending cut first), takes one more committed
//              group checkpoint, installs the new partition, and only then
//              kills the rank. Nothing counts as a failure; the node's
//              staging residency stays warm.
//   reclaim  — a drain against a deadline (spot preemption with a warning
//              window). The same clean path runs; if no checkpoint commits
//              before the warning expires, the node is simply lost: the
//              whole group fails through the normal failure path and the
//              event is tallied under reclaims_forced().
//   join     — a departed node comes back. Its singleton group is restored
//              through the ordinary restore queue (so joins respect the
//              restore-slot limit and the deferred-exchange rules), then
//              optionally merged into the group the RegroupPlanner picks
//              from observed traffic. Transitional double-logging
//              (add_transitional_logging) covers the merged pair until
//              their first joint commit.
// Regroup operations are serialized through one FIFO so at most one
// partition transition is open at a time; fault injection stays fully
// concurrent with them. Churn requires the unsharded path (the residency
// gate in core/experiment.cpp denies shard residency to churn configs).
//
// Bookkeeping invariant (asserted by tests/fault_torture_test.cpp): once a
// run completes, failures_injected == recoveries_completed +
// recoveries_aborted, and recoveries_outstanding() == 0. Joins ride the
// restore queue but keep their own books (joins_completed/joins_aborted),
// so churn never perturbs the failure identity.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <set>
#include <vector>

#include "ckpt/image.hpp"
#include "core/elastic.hpp"
#include "core/group_protocol.hpp"
#include "mpi/runtime.hpp"
#include "sim/churn.hpp"
#include "sim/faults.hpp"

namespace gcr::core {

struct RecoveryOptions {
  double detect_s = 1.0;    ///< failure detection latency
  double relaunch_s = 1.0;  ///< process recreation (fork/exec, rejoin)
  /// Restore windows running at once. 1 (default, the paper's setting)
  /// serializes the restore phase itself; kills are never serialized.
  int max_concurrent_restores = 1;
};

struct ChurnOptions {
  double poll_s = 0.25;   ///< quiescence / commit-poll cadence
  double retry_s = 1.0;   ///< backoff after a fault collides with a regroup
  /// Merge a rejoined rank into the planner's pick; false = rejoined ranks
  /// stay singletons (isolation policy).
  bool merge_on_join = true;
  /// Cap for planner merges. 0 = the largest group size at arming time, so
  /// churn cannot grow groups beyond the configured partition's grain.
  int max_group_size = 0;
};

class RecoveryManager {
 public:
  /// `checkpointer` is notified of node faults so tier residency tracks
  /// physical loss: a fault wipes the failed nodes' staging buffers (their
  /// restores fall back to burst buffer / PFS — DESIGN.md §13), while the
  /// voluntary whole-application restart (restart_all_at) relaunches on
  /// healthy nodes and keeps staging-buffer residency warm.
  RecoveryManager(mpi::Runtime& rt, GroupProtocol& protocol,
                  ckpt::ImageRegistry& registry,
                  ckpt::Checkpointer& checkpointer,
                  RecoveryOptions options = {});

  /// Schedules a failure of one group at simulated time `t`.
  void fail_group_at(int group, sim::Time t);

  /// Schedules a failure of the group containing `rank`.
  void fail_rank_at(mpi::RankId rank, sim::Time t);

  /// Schedules a node fault at time `t`: kills the group containing the
  /// rank hosted on `node` (one rank per node). Faults on rankless nodes
  /// (the driver) are ignored.
  void fail_node_at(int node, sim::Time t);

  /// Schedules a whole-application restart (kill everything, restore from
  /// the stored images) at time `t`.
  void restart_all_at(sim::Time t);

  /// Arms random failures: group g fails with exponential inter-arrival
  /// times of mean `mtbf_s[g]` (0 or negative = that group never fails),
  /// drawn from a deterministic per-group substream of the cluster seed.
  /// Arrivals continue until the job finishes. (Legacy group-level model;
  /// kept bit-compatible. New work should use arm_fault_model.)
  void arm_random_failures(const std::vector<double>& mtbf_s);

  /// Arms a pluggable node-fault model: events are pulled one at a time
  /// (so infinite renewal models are fine) and injected via the node→group
  /// mapping until the job finishes or the model is exhausted. The model
  /// is bound to this runtime's rank-bearing nodes and to substreams of
  /// the cluster seed.
  void arm_fault_model(std::unique_ptr<sim::FaultModel> model);

  /// Arms a churn model (sim/churn.hpp): drains, spot reclaims and joins
  /// are pulled and dispatched until the job finishes. `planner` (may be
  /// null) picks merge targets for rejoining ranks; it must outlive the
  /// run. Requires the unsharded path.
  void arm_churn_model(std::unique_ptr<sim::ChurnModel> model,
                       const RegroupPlanner* planner, ChurnOptions options);

  /// Failures that killed a live (or restoring) group.
  int failures_injected() const { return failures_; }
  /// Fault arrivals absorbed because the target group was already down,
  /// departed, or finished.
  int failures_absorbed() const { return absorbed_; }
  /// Restores that ran to completion (group back in normal execution).
  int recoveries_completed() const { return completed_; }
  /// Restores aborted by a re-failure of the restoring group.
  int recoveries_aborted() const { return aborted_; }
  /// Groups currently down or restoring.
  int recoveries_outstanding() const {
    return failures_ - completed_ - aborted_;
  }

  // Churn books (all zero without arm_churn_model).
  int drains_completed() const { return drains_completed_; }
  /// Reclaims whose warning window sufficed for a committed checkpoint.
  int reclaims_clean() const { return reclaims_clean_; }
  /// Reclaims that expired without a commit; the group failed instead.
  int reclaims_forced() const { return reclaims_forced_; }
  int joins_completed() const { return joins_completed_; }
  /// Join restores cut down by a fault mid-restore (the fault is counted
  /// under failures_injected and recovers through the normal queue).
  int joins_aborted() const { return joins_aborted_; }
  /// Churn arrivals that found nothing to do (node already down/departed/
  /// present, or its group finished).
  int churn_absorbed() const { return churn_absorbed_; }
  int splits_installed() const { return splits_installed_; }
  int merges_installed() const { return merges_installed_; }

  /// Fraction of rank-time the service had its ranks up, over [0, end].
  /// Down-time accrues from the kill bookkeeping instant to restore
  /// completion (faults) and from departure to rejoin completion (churn);
  /// ranks still down at `end` accrue until `end`.
  double availability(sim::Time end) const;

 private:
  enum class GroupState : std::uint8_t { kAlive, kDown, kRestoring,
                                         kDeparted };

  struct PendingRestore {
    sim::Time ready_at;  ///< kill time + detect + relaunch
    mpi::RankId rep;     ///< representative member (front at enqueue time)
  };

  /// Churn operations are serialized so at most one partition transition
  /// is open at a time. Joins are NOT ops: a join opens no transition (it
  /// only enqueues a restore), and queueing it would deadlock — an
  /// unrelated drain at the FIFO head can be waiting for quiescence that
  /// only this node's rejoin can provide. A join whose own node's
  /// departure op is still pending is deferred until that op resolves
  /// (the model emits "join" at departure-event time + outage, which the
  /// drain op may not have reached yet).
  struct ChurnOp {
    enum class Kind : std::uint8_t { kDrain, kReclaim, kMerge };
    Kind kind;
    mpi::RankId rank;
    std::uint64_t token;  ///< reclaim deadline token (kReclaim only)
  };

  // Groups are identified by a REPRESENTATIVE RANK (members.front() at
  // decision time) everywhere a decision outlives the instant it was made:
  // queue entries, cross-shard posts, timer callbacks. Group INDICES shift
  // when churn installs a new partition; a rank's group membership is
  // re-resolved via group_of(rep) at execution. In static runs rep↔index
  // resolution is the identity, so the legacy timeline is bit-identical.
  void fail_group_now(int group);
  void fail_node_now(int node);
  void kill_members(int group);
  /// kill_members on the shard that owns the group's ranks: synchronous in
  /// unsharded runs, posted one lookahead out in shard-resident runs (the
  /// recovery state machine stays on the home shard; only the member-
  /// touching work crosses).
  void dispatch_kill(mpi::RankId rep);
  /// The shard hosting a group's ranks (groups are placed whole).
  int shard_of_group(int group) const;
  void enqueue_restore(mpi::RankId rep);
  /// Starts queued restores while slots are free and heads are ready;
  /// re-arms itself for a not-yet-ready head. Idempotent.
  void maybe_start_restores();
  void start_restore(mpi::RankId rep);
  void restore_ranks(const std::vector<mpi::RankId>& ranks);
  /// Protocol callback: the group's restart preparation completed.
  void on_restore_done(mpi::RankId rep);
  void schedule_next_random_failure(int stream, mpi::RankId rep,
                                    double mtbf_s);
  void schedule_next_model_event();

  // --- churn driver (home shard only) ---
  void schedule_next_churn_event();
  void on_churn_event(const sim::ChurnEvent& ev);
  void enqueue_churn_op(ChurnOp op);
  void pump_churn_ops();
  void finish_churn_op();
  /// Drain/reclaim state machine: quiesce → split → committed checkpoint →
  /// install → depart.
  sim::Co<void> run_drain_op(mpi::RankId rank, bool voluntary,
                             std::uint64_t token);
  sim::Co<void> run_merge_op(mpi::RankId rank);
  void start_join(mpi::RankId rank);
  void reclaim_deadline(mpi::RankId rank, std::uint64_t token);
  /// Installs `next` and rebuilds per-group state: groups with an
  /// unchanged member set carry their state over; changed groups restart
  /// at kAlive (the transition machinery only installs over alive,
  /// quiescent changed groups).
  void install_grouping(group::GroupSet next);

  void mark_down(const std::vector<mpi::RankId>& ranks, sim::Time at);
  void mark_up(const std::vector<mpi::RankId>& ranks, sim::Time at);

  mpi::Runtime* rt_;
  GroupProtocol* protocol_;
  ckpt::ImageRegistry* registry_;
  ckpt::Checkpointer* checkpointer_;
  RecoveryOptions options_;

  int failures_ = 0;
  int absorbed_ = 0;
  int completed_ = 0;
  int aborted_ = 0;

  int drains_completed_ = 0;
  int reclaims_clean_ = 0;
  int reclaims_forced_ = 0;
  int joins_completed_ = 0;
  int joins_aborted_ = 0;
  int churn_absorbed_ = 0;
  int splits_installed_ = 0;
  int merges_installed_ = 0;

  std::vector<GroupState> gstate_;
  /// FIFO of groups awaiting a restore slot. detect+relaunch is constant,
  /// so failure order == ready order and a deque suffices.
  std::deque<PendingRestore> queue_;
  int restores_in_flight_ = 0;
  /// Fresh token per restore_ranks call; members of one restore operation
  /// share it (the protocol keys the restart barrier on it, which must not
  /// depend on per-rank kill history once churn mixes histories in one
  /// group).
  std::uint64_t restore_tokens_ = 0;

  std::vector<gcr::Rng> failure_rngs_;  ///< legacy per-group arrival streams
  std::unique_ptr<sim::FaultModel> fault_model_;

  std::unique_ptr<sim::ChurnModel> churn_model_;
  const RegroupPlanner* planner_ = nullptr;
  ChurnOptions churn_options_;
  int churn_cap_ = 0;  ///< resolved max_group_size
  std::deque<ChurnOp> churn_ops_;
  bool churn_op_active_ = false;
  std::vector<sim::ProcPtr> churn_procs_;
  /// Ranks whose current restore is a rejoin, not a failure recovery.
  std::set<mpi::RankId> rejoining_;
  /// Ranks with a queued-or-running drain/reclaim op (multiset: the model
  /// may drain a node again before its earlier cycle resolved).
  std::multiset<mpi::RankId> pending_departures_;
  /// Joins that arrived while their node's departure op was still pending;
  /// admitted (or absorbed) when that op resolves.
  std::set<mpi::RankId> deferred_joins_;
  /// Reclaim tokens whose deadline has not fired and whose clean drain has
  /// not completed. Erased by whichever side wins.
  std::set<std::uint64_t> reclaim_pending_;
  /// Tokens whose deadline forced the node out; the op coroutine abandons
  /// the clean path when it sees its token here.
  std::set<std::uint64_t> churn_cancelled_;
  std::uint64_t next_reclaim_token_ = 0;

  /// Availability accounting (home-shard timestamps). -1 = rank is up.
  std::vector<sim::Time> down_since_;
  sim::Time downtime_ = 0;
};

}  // namespace gcr::core
