// Sender-based message log (Algorithm 1; DESIGN.md §4).
//
// Each rank keeps, per out-of-group destination, the ordered list of
// app-plane messages it sent. Entries are garbage-collected when the
// destination piggybacks its recorded received-volume RR (everything at or
// below RR is covered by the peer's checkpoint). The log is "flushed" to
// stable storage right before each checkpoint; the flush cost is charged by
// the protocol, this class only tracks the unflushed byte count.
//
// Logs are value types: a checkpoint snapshots the whole log into the image
// (the disk copy), and a restart restores from that copy.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "mpi/message.hpp"

namespace gcr::core {

class MessageLog {
 public:
  /// Appends a sent message (msg.cum_bytes must be assigned). Entries per
  /// destination must arrive with strictly increasing cum_bytes.
  void append(const mpi::Message& msg);

  /// Drops entries towards `dst` with cum_bytes <= upto (RR-based GC).
  /// Returns the number of entries dropped.
  std::size_t gc(mpi::RankId dst, std::int64_t upto);

  /// Replay set towards `dst`: every entry with cum_bytes > after, in order.
  std::vector<mpi::Message> entries_after(mpi::RankId dst,
                                          std::int64_t after) const;

  /// Bytes appended since the last mark_flushed() (log-sync cost basis).
  std::int64_t unflushed_bytes() const { return unflushed_bytes_; }
  void mark_flushed() { unflushed_bytes_ = 0; }

  std::int64_t total_bytes() const { return total_bytes_; }
  std::int64_t total_messages() const { return total_messages_; }
  std::size_t entries_towards(mpi::RankId dst) const;

  void clear();

 private:
  std::map<mpi::RankId, std::deque<mpi::Message>> by_dst_;
  std::int64_t unflushed_bytes_ = 0;
  std::int64_t total_bytes_ = 0;
  std::int64_t total_messages_ = 0;
};

}  // namespace gcr::core
