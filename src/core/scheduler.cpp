#include "core/scheduler.hpp"

#include "util/assert.hpp"

namespace gcr::core {

CheckpointScheduler CheckpointScheduler::for_groups(mpi::Runtime& rt,
                                                    GroupProtocol& protocol,
                                                    SchedulerOptions options) {
  GroupProtocol* p = &protocol;
  mpi::Runtime* r = &rt;
  const double spread = options.round_spread_s;
  return CheckpointScheduler(
      rt,
      [p, r, spread] {
        const int ngroups = p->groups().num_groups();
        for (int g = 0; g < ngroups; ++g) {
          if (spread <= 0) {
            p->request_group_checkpoint(g);
          } else {
            const double offset = spread * g / ngroups;
            r->engine().call_after(sim::from_seconds(offset),
                                   [p, g] { p->request_group_checkpoint(g); });
          }
        }
      },
      options);
}

CheckpointScheduler CheckpointScheduler::for_vcl(mpi::Runtime& rt,
                                                 VclProtocol& protocol,
                                                 SchedulerOptions options) {
  VclProtocol* p = &protocol;
  return CheckpointScheduler(rt, [p] { p->request_round(); }, options);
}

void CheckpointScheduler::start() {
  rt_->engine().call_after(sim::from_seconds(options_.first_at_s),
                           [this] { tick(); });
}

void CheckpointScheduler::start_per_group(
    mpi::Runtime& rt, GroupProtocol& protocol,
    const std::vector<double>& interval_s) {
  GCR_CHECK(static_cast<int>(interval_s.size()) ==
            protocol.groups().num_groups());
  for (int g = 0; g < protocol.groups().num_groups(); ++g) {
    const double period = interval_s[static_cast<std::size_t>(g)];
    if (period <= 0) continue;  // group opted out of checkpointing
    rt.engine().call_after(sim::from_seconds(period), [&rt, &protocol, g,
                                                       period] {
      group_tick(&rt, &protocol, g, period);
    });
  }
}

void CheckpointScheduler::group_tick(mpi::Runtime* rt, GroupProtocol* protocol,
                                     int group, double interval_s) {
  if (rt->job_finished()) return;
  protocol->request_group_checkpoint(group);
  rt->engine().call_after(sim::from_seconds(interval_s),
                          [rt, protocol, group, interval_s] {
                            group_tick(rt, protocol, group, interval_s);
                          });
}

void CheckpointScheduler::tick() {
  if (rt_->job_finished()) return;
  if (options_.max_rounds > 0 && rounds_ >= options_.max_rounds) return;
  issue_round_();
  ++rounds_;
  if (options_.interval_s > 0) {
    rt_->engine().call_after(sim::from_seconds(options_.interval_s),
                             [this] { tick(); });
  }
}

}  // namespace gcr::core
