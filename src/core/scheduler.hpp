// Checkpoint scheduler — the mpirun side of the workflow (paper Figure 4;
// DESIGN.md §9):
// receives checkpoint requests "from the system or the user" and propagates
// them. Here it issues rounds at a fixed first time and optional interval,
// stopping once the job has finished.
//
// For the group protocol a round optionally staggers per-group requests
// (mpirun spawns one child per group; propagation is serialized), which also
// spreads checkpoint-server load across groups.
#pragma once

#include <functional>

#include "core/group_protocol.hpp"
#include "core/vcl_protocol.hpp"
#include "mpi/runtime.hpp"

namespace gcr::core {

struct SchedulerOptions {
  double first_at_s = 60.0;  ///< time of the first checkpoint round
  double interval_s = 0.0;   ///< repeat period; 0 = one-shot
  /// Window over which one round's per-group requests are spread (group g
  /// is requested at offset spread·g/ngroups). Models mpirun spawning one
  /// child per group and the resulting cut misalignment between groups;
  /// 0 = simultaneous requests.
  double round_spread_s = 0;
  /// Stop after this many rounds (0 = unlimited). Used to force equal
  /// checkpoint counts across protocols (paper §5.3's fairness rule).
  int max_rounds = 0;
};

class CheckpointScheduler {
 public:
  /// `issue_round` is called once per round (e.g. request every group, or a
  /// VCL global round).
  CheckpointScheduler(mpi::Runtime& rt, std::function<void()> issue_round,
                      SchedulerOptions options)
      : rt_(&rt), issue_round_(std::move(issue_round)), options_(options) {}

  /// Convenience factory: rounds request every group of a GroupProtocol
  /// with the configured stagger.
  static CheckpointScheduler for_groups(mpi::Runtime& rt,
                                        GroupProtocol& protocol,
                                        SchedulerOptions options);

  /// Convenience factory: rounds are VCL global Chandy-Lamport rounds.
  static CheckpointScheduler for_vcl(mpi::Runtime& rt, VclProtocol& protocol,
                                     SchedulerOptions options);

  /// Arms the first round.
  void start();

  /// Per-group periodic schedules (paper §6: a flaky group can checkpoint
  /// more often than the rest). `interval_s[g]` is group g's period; the
  /// first request for each group fires after one period. Bypasses the
  /// round-based `issue_round` path entirely.
  static void start_per_group(mpi::Runtime& rt, GroupProtocol& protocol,
                              const std::vector<double>& interval_s);

  int rounds_issued() const { return rounds_; }

 private:
  void tick();
  static void group_tick(mpi::Runtime* rt, GroupProtocol* protocol, int group,
                         double interval_s);

  mpi::Runtime* rt_;
  std::function<void()> issue_round_;
  SchedulerOptions options_;
  int rounds_ = 0;
};

}  // namespace gcr::core
