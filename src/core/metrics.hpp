// Metrics collected by the checkpoint protocols — everything the paper's
// figures report (DESIGN.md §9; see docs/BENCHMARKS.md for the figure map).
//
// Checkpoint time is measured per process "from the receipt of the
// checkpoint signal until the process resumes normal execution" (paper §5.1)
// and broken into the four phases of Figure 9. Restart time is measured
// "from the recreation of the process to its return to normal execution".
#pragma once

#include <cstdint>
#include <vector>

#include "mpi/message.hpp"
#include "sim/time.hpp"
#include "trace/record.hpp"

namespace gcr::core {

/// Figure 9's stacked phases, in seconds.
struct PhaseTimes {
  double lock_mpi = 0;      ///< signal receipt -> safe point reached
  double coordination = 0;  ///< log sync + bookmarks + drain + group barrier
  double checkpoint = 0;    ///< image write (BLCR dump)
  double finalize = 0;      ///< completion barrier + cleanup

  double total() const {
    return lock_mpi + coordination + checkpoint + finalize;
  }
  PhaseTimes& operator+=(const PhaseTimes& o) {
    lock_mpi += o.lock_mpi;
    coordination += o.coordination;
    checkpoint += o.checkpoint;
    finalize += o.finalize;
    return *this;
  }
};

struct CkptRecord {
  mpi::RankId rank = 0;
  std::uint64_t epoch = 0;
  sim::Time signal_at = 0;  ///< checkpoint signal (prepare/request) received
  sim::Time begin = 0;      ///< checkpoint work started (safe point)
  sim::Time end = 0;        ///< resumed normal execution
  PhaseTimes phases;
};

struct RestartRecord {
  mpi::RankId rank = 0;
  sim::Time begin = 0;  ///< process recreation started
  sim::Time end = 0;    ///< returned to normal execution
  double image_read_s = 0;
  double exchange_s = 0;  ///< volume exchange + wait for group members
};

struct Metrics {
  std::vector<CkptRecord> ckpts;
  std::vector<RestartRecord> restarts;

  // Message logging (Algorithm 1's inter-group sender logs).
  std::int64_t logged_messages = 0;
  std::int64_t logged_bytes = 0;
  std::int64_t flushed_bytes = 0;

  // Replay during restarts.
  std::int64_t resend_ops = 0;       ///< directed pairs that replayed data
  std::int64_t resend_messages = 0;  ///< individual messages resent
  std::int64_t resend_bytes = 0;

  // Checkpoint rounds that were requested but abandoned (job ended first).
  int aborted_rounds = 0;

  /// Sum over all per-process checkpoint durations (Figures 1, 6a, 11a, 12a).
  double aggregate_ckpt_time_s() const;
  /// Sum of the coordination+lock components only (Figure 1's estimate:
  /// "excluding the time spent in creating the actual checkpoint image").
  double aggregate_coordination_time_s() const;
  /// Sum over all per-process restart durations (Figures 6b, 11b, 12b).
  double aggregate_restart_time_s() const;
  /// Mean per-process phase breakdown (Figure 9).
  PhaseTimes mean_phases() const;
  /// Completed checkpoint rounds (every rank wrote an image).
  int completed_rounds(int nranks) const;
  /// Mean per-process checkpoint duration (Figure 14).
  double mean_ckpt_time_s() const;

  /// Checkpoint windows for timeline rendering (Figure 2).
  std::vector<trace::CkptWindow> ckpt_windows() const;
};

}  // namespace gcr::core
