// Checkpoint-interval planning (paper §6/§7; DESIGN.md §9).
//
// The paper's flexibility claim: "it is possible, for example, to group
// processor nodes that fail more frequently, and select a shorter checkpoint
// interval, in order to increase tolerance to failures" — and its future
// work: "the traces would also give a hint to select a fixed optimal
// checkpoint interval". This module provides the classical first-order
// optimum (Young) and its second-order refinement (Daly), an expected-waste
// model to compare schedules analytically, and a planner that turns
// per-group measured checkpoint costs + per-group MTBFs into a per-group
// interval plan consumable by the CheckpointScheduler.
#pragma once

#include <vector>

#include "core/metrics.hpp"
#include "group/group.hpp"

namespace gcr::core {

/// Young's first-order optimal interval: sqrt(2 * C * MTBF).
double young_interval(double ckpt_cost_s, double mtbf_s);

/// Daly's higher-order estimate; falls back to MTBF when C > MTBF/2.
double daly_interval(double ckpt_cost_s, double mtbf_s);

/// Expected fraction of execution time wasted (checkpoint overhead +
/// expected rework + restart) for a periodic schedule with interval T,
/// checkpoint cost C, restart cost R, and exponential failures with the
/// given MTBF. First-order model (valid for T << MTBF).
double expected_waste_fraction(double interval_s, double ckpt_cost_s,
                               double restart_cost_s, double mtbf_s);

/// Per-group checkpoint plan.
struct GroupIntervalPlan {
  std::vector<double> interval_s;  ///< one entry per group
  double uniform_interval_s = 0;   ///< best single interval for comparison
};

struct GroupReliability {
  double mtbf_s = 0;  ///< mean time between failures of this group
};

/// Extracts the mean per-process checkpoint cost of each group from
/// measured metrics (e.g. a short profiling run with one checkpoint).
/// Groups without records fall back to the global mean (0 if none).
std::vector<double> measured_group_ckpt_cost(const Metrics& metrics,
                                             const group::GroupSet& groups);

/// Plans per-group intervals: group g gets daly(C_g, MTBF_g). The uniform
/// comparison interval uses the aggregate cost and the system MTBF
/// (harmonic combination of group failure rates).
GroupIntervalPlan plan_group_intervals(
    const std::vector<double>& group_ckpt_cost_s,
    const std::vector<GroupReliability>& reliability);

}  // namespace gcr::core
