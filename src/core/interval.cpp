#include "core/interval.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace gcr::core {

double young_interval(double ckpt_cost_s, double mtbf_s) {
  GCR_CHECK(ckpt_cost_s >= 0 && mtbf_s > 0);
  return std::sqrt(2.0 * ckpt_cost_s * mtbf_s);
}

double daly_interval(double ckpt_cost_s, double mtbf_s) {
  GCR_CHECK(ckpt_cost_s >= 0 && mtbf_s > 0);
  if (ckpt_cost_s >= mtbf_s / 2.0) return mtbf_s;
  const double y = std::sqrt(2.0 * ckpt_cost_s * mtbf_s);
  // Daly 2006: T = sqrt(2 C M) * [1 + 1/3 sqrt(C/(2M)) + (1/9)(C/(2M))] - C
  const double r = std::sqrt(ckpt_cost_s / (2.0 * mtbf_s));
  return y * (1.0 + r / 3.0 + r * r / 9.0) - ckpt_cost_s;
}

double expected_waste_fraction(double interval_s, double ckpt_cost_s,
                               double restart_cost_s, double mtbf_s) {
  GCR_CHECK(interval_s > 0 && mtbf_s > 0);
  // Overhead: one checkpoint per interval. Failures arrive at rate 1/MTBF;
  // each loses on average half an interval of work plus the restart.
  const double overhead = ckpt_cost_s / (interval_s + ckpt_cost_s);
  const double per_failure_loss = interval_s / 2.0 + restart_cost_s;
  const double failure_waste = per_failure_loss / mtbf_s;
  return std::min(1.0, overhead + failure_waste);
}

std::vector<double> measured_group_ckpt_cost(const Metrics& metrics,
                                             const group::GroupSet& groups) {
  std::vector<double> sum(static_cast<std::size_t>(groups.num_groups()), 0.0);
  std::vector<int> count(static_cast<std::size_t>(groups.num_groups()), 0);
  double global_sum = 0;
  int global_count = 0;
  for (const CkptRecord& rec : metrics.ckpts) {
    const auto g = static_cast<std::size_t>(groups.group_of(rec.rank));
    sum[g] += rec.phases.total();
    ++count[g];
    global_sum += rec.phases.total();
    ++global_count;
  }
  const double global_mean =
      global_count > 0 ? global_sum / global_count : 0.0;
  std::vector<double> cost(sum.size(), global_mean);
  for (std::size_t g = 0; g < sum.size(); ++g) {
    if (count[g] > 0) cost[g] = sum[g] / count[g];
  }
  return cost;
}

GroupIntervalPlan plan_group_intervals(
    const std::vector<double>& group_ckpt_cost_s,
    const std::vector<GroupReliability>& reliability) {
  GCR_CHECK(group_ckpt_cost_s.size() == reliability.size());
  GCR_CHECK(!group_ckpt_cost_s.empty());
  GroupIntervalPlan plan;
  plan.interval_s.reserve(group_ckpt_cost_s.size());
  double failure_rate = 0;  // combined system failure rate
  double total_cost = 0;
  for (std::size_t g = 0; g < group_ckpt_cost_s.size(); ++g) {
    GCR_CHECK(reliability[g].mtbf_s > 0);
    plan.interval_s.push_back(
        daly_interval(group_ckpt_cost_s[g], reliability[g].mtbf_s));
    failure_rate += 1.0 / reliability[g].mtbf_s;
    total_cost += group_ckpt_cost_s[g];
  }
  // A global (NORM-style) schedule must checkpoint everyone at once and
  // survive the COMBINED failure rate.
  const double system_mtbf = 1.0 / failure_rate;
  const double mean_cost =
      total_cost / static_cast<double>(group_ckpt_cost_s.size());
  plan.uniform_interval_s = daly_interval(mean_cost, system_mtbf);
  return plan;
}

}  // namespace gcr::core
