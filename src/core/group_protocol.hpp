// Group-based checkpoint/restart protocol — the paper's Algorithm 1
// (DESIGN.md §4).
//
// Checkpoints are coordinated *within* each group; across groups there is no
// coordination, only sender-based logging of inter-group messages with
// volume accounting:
//   * on send to an out-of-group peer: log asynchronously; on the first send
//     after a checkpoint, piggyback RR_P (received volume recorded at the
//     last checkpoint) so the peer can garbage-collect its log towards us;
//   * on receive: update R_P; apply piggybacked RR to GC our log;
//   * on a group checkpoint request: sync logs, record RR, coordinate a
//     consistent group snapshot (bookmark + drain + barrier), dump images,
//     barrier, resume — independent of all other groups;
//   * on restart: exchange R/S with every out-of-group peer, replay logged
//     messages the restarting rank lacks, and skip re-sends the peer
//     already received.
//
// NORM (global coordinated ckpt, LAM/MPI) is this protocol with one group:
// no logging, no exchanges. GP1 (uncoordinated + logging) is n groups of 1.
//
// Checkpoint trigger mechanics: system-level checkpointers interrupt a
// process anywhere; our app model snapshots at iteration-boundary safe
// points. To keep group coordination deadlock-free the leader runs a
// prepare/commit round that picks a target iteration I beyond every
// member's current position; members checkpoint exactly at iteration I
// (DESIGN.md §5). Cross-group stalls remain possible and transient — they
// are the waiting the paper measures — but never cyclic.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "ckpt/checkpointer.hpp"
#include "ckpt/image.hpp"
#include "core/metrics.hpp"
#include "core/msglog.hpp"
#include "group/group.hpp"
#include "mpi/hooks.hpp"
#include "mpi/runtime.hpp"
#include "util/rng.hpp"

namespace gcr::core {

/// Models per-process image size (the app's memory footprint).
using ImageSizeFn = std::function<std::int64_t(mpi::RankId)>;

struct GroupProtocolOptions {
  double log_copy_Bps = 800e6;    ///< sender-side async log memcpy rate
  double log_per_msg_s = 3e-6;    ///< per-message logging bookkeeping
  /// If true, the "synchronize message logs" step charges the full unflushed
  /// log to disk at checkpoint time. Default false: the asynchronous logger
  /// flushes in the background (disk bandwidth far exceeds the logging rate
  /// on the modeled cluster), so only accounting is recorded.
  bool sync_flush_at_checkpoint = false;
  double signal_handling_s = 2e-3;///< entering the checkpoint path
  double replay_per_msg_s = 40e-6;///< daemon cost per replayed message
  double exchange_handling_s = 150e-6;  ///< daemon cost per exchange
  int commit_margin = 2;          ///< safe points ahead for the commit target
  /// Single-process (uncoordinated) checkpoints are taken wherever the
  /// signal catches the process, modeled as a per-group random skew of up
  /// to this many safe points; coordinated groups' agreement rounds keep
  /// their cuts within one safe point. The resulting cut misalignment is
  /// what leaves inter-group traffic to be replayed on restart (Figs 7/8),
  /// and why GP1's resend volumes exceed GP's.
  int target_skew_steps = 4;
};

class GroupProtocol : public mpi::Interposer {
 public:
  GroupProtocol(mpi::Runtime& rt, const group::GroupSet& groups,
                ckpt::Checkpointer& checkpointer, ckpt::ImageRegistry& registry,
                ImageSizeFn image_bytes, Metrics& metrics,
                GroupProtocolOptions options = {});

  const group::GroupSet& groups() const { return groups_; }
  Metrics& metrics() { return *metrics_; }

  // ---- mpi::Interposer ----
  sim::Co<bool> before_send(mpi::Rank& rank, mpi::Message& msg) override;
  void on_deliver(mpi::Rank& rank, const mpi::Message& msg) override;
  sim::Co<void> at_safepoint(mpi::Rank& rank) override;
  void rank_started(mpi::Rank& rank) override;
  void rank_finished(mpi::Rank& rank) override;
  void rank_killed(mpi::Rank& rank) override;

  // ---- driver API (the mpirun side) ----
  /// Injects a checkpoint request for one group: a control message from the
  /// driver node to the group leader, which then runs prepare/commit.
  void request_group_checkpoint(int group);

  /// True while the group is restarting (exchange phase).
  bool group_restarting(int group) const;

  // ---- recovery API ----
  /// Before respawn_rank: marks the rank as restoring and installs the
  /// protocol-private state from the image (nullptr = restart from scratch).
  /// `restore_token` identifies the restore operation: every member staged
  /// by one group restore must get the same token (it keys the restart
  /// barrier — an elastic merge can put ranks with different incarnation
  /// counts into one group, so the incarnation cannot key it).
  void stage_restore(mpi::Rank& rank, const ckpt::StoredCheckpoint* image,
                     std::uint64_t restore_token);

  /// Invoked (synchronously, from the last member's restore coroutine)
  /// when a whole group finishes restart preparation. The recovery manager
  /// uses it to free the group's restore slot; an aborted restore never
  /// fires it (the coroutines die with the re-killed ranks).
  void set_restore_done_callback(std::function<void(int group)> fn) {
    restore_done_ = std::move(fn);
  }

  /// Protocol-private per-rank state stored inside checkpoint images.
  struct StateSnapshot {
    std::vector<std::int64_t> rr;
    std::vector<std::uint8_t> first_send;
    MessageLog log;
  };

  /// Message-log bytes currently held by a rank (ablation instrumentation).
  std::int64_t log_bytes(mpi::RankId rank) const;

  // ---- elastic regrouping API (DESIGN.md §16; home engine only) ----
  /// Starts a split transition: until install_groups or end_transition,
  /// before_send logs any message that crosses a group boundary in the
  /// CURRENT *or* the `pending` grouping. This is what makes a later
  /// install sound at any committed cut inside the window: traffic between
  /// a departing rank and its old groupmates is in the sender logs from
  /// the moment the drain began.
  void begin_transition(const group::GroupSet& pending);
  /// Abandons the pending transition (drain aborted or forcibly reclaimed).
  void end_transition();
  bool in_transition() const { return transition_.has_value(); }

  /// True when every listed rank can tolerate a grouping change right now:
  /// alive, not inside a checkpoint round (leader round open, commit
  /// accepted, or mid-coordination) and not restoring. install_groups may
  /// only be called when this holds for every rank whose membership
  /// changes.
  bool quiescent_for_regroup(const std::vector<mpi::RankId>& ranks);

  /// Replaces the current grouping. The old GroupSet is retired, not
  /// destroyed — suspended checkpoint coroutines of unaffected groups hold
  /// references into its member vectors.
  void install_groups(group::GroupSet next);

  /// Marks every (a,b) pair with a in `a` and b in `b` for continued
  /// sender-side logging after a merge install, until the merged group's
  /// first joint commit clears it. Keeps restores sound while the group's
  /// members still hold images from different pre-merge cuts.
  void add_transitional_logging(const std::vector<mpi::RankId>& a,
                                const std::vector<mpi::RankId>& b);

  /// Shard-resident runs spool metrics per rank (the shared Metrics object
  /// cannot be mutated from several shard threads); this merges the spools
  /// in rank order once the run has quiesced. No-op otherwise — unsharded
  /// runs write the shared object directly, preserving record order exactly.
  void finalize_metrics();

 private:
  struct RankState {
    // --- Algorithm 1 data ---
    std::vector<std::int64_t> rr;          ///< RR_X at last checkpoint
    std::vector<std::uint8_t> first_send;  ///< piggyback-pending flags
    MessageLog log;
    std::vector<std::int64_t> skip_bytes;  ///< suppression during re-execution
    /// Peers whose traffic stays logged although they are (now) in-group:
    /// set at a merge install, cleared at the group's first joint commit.
    /// Deliberately NOT reset by stage_restore — the need persists until a
    /// joint cut exists (DESIGN.md §16).
    std::set<mpi::RankId> extra_log;

    // --- checkpoint coordination ---
    bool commit_pending = false;
    std::uint64_t commit_epoch = 0;
    std::uint64_t commit_iteration = 0;
    sim::Time signal_at = 0;        ///< prepare (or request) arrival
    bool in_checkpoint = false;
    std::set<std::uint64_t> aborted;  ///< epochs abandoned mid-round
    std::map<mpi::RankId, std::int64_t> bookmarks;    ///< member S towards me
    /// Incremental drain-predicate state: while a bookmark wait is active,
    /// `bookmark_unmet` counts members whose bookmark is missing or not yet
    /// covered by received bytes, and `bookmark_met` records who was counted
    /// as satisfied. Maintained by the kBookmark and delivery hooks so each
    /// wake evaluates the predicate in O(1) instead of rescanning the group
    /// (O(n) members x O(n) wakes made NORM untenable at 4k ranks).
    bool bookmark_wait_active = false;
    int bookmark_unmet = 0;
    std::set<mpi::RankId> bookmark_met;
    std::map<std::uint64_t, int> barrier_acks;        ///< leader: (key)->count
    std::set<std::uint64_t> barrier_go;               ///< member: keys passed
    std::unique_ptr<sim::Trigger> event;  ///< generic state-change wakeup

    // --- leader round state ---
    bool round_open = false;  ///< leader: a request is being serviced
    std::uint64_t next_epoch = 1;
    std::map<std::uint64_t, std::vector<std::int64_t>> prepare_replies;

    // --- restart ---
    bool restoring = false;
    bool from_image = false;
    std::uint64_t restore_cut = 0;    ///< cut_seq of the restored image (0 = scratch)
    std::uint64_t restore_token = 0;  ///< keys this restore's barrier epoch
    std::vector<std::int64_t> exchange_r;  ///< restored R prefix per peer
    std::int64_t restore_image_bytes = 0;
    /// Out-of-group peers with an exchange request in flight (alive when
    /// asked). A peer that dies mid-exchange moves to `exchange_deferred`.
    std::set<mpi::RankId> exchange_pending;
    /// Out-of-group peers that were dead when we restarted (overlapping
    /// recoveries): the request is re-sent when the peer respawns and the
    /// exchange completes on the daemon path; restart preparation does not
    /// wait for them (deadlock freedom across queued recoveries).
    std::set<mpi::RankId> exchange_deferred;
    /// Auxiliary coroutines acting for this incarnation; killed with the
    /// rank so they never outlive it into a rolled-back state.
    sim::ProcPtr restore_proc;
    std::vector<sim::ProcPtr> serve_procs;

    gcr::Rng jitter_rng{0};

    /// Resident-mode metrics spool (merged by finalize_metrics).
    Metrics spool;
  };

  RankState& state(const mpi::Rank& rank) {
    return *states_[static_cast<std::size_t>(rank.id())];
  }
  /// Where a rank's metrics go: its own spool in resident mode (shard-local
  /// memory), the shared object otherwise.
  Metrics& met(RankState& st) { return rt_->resident() ? st.spool : *metrics_; }
  mpi::RankId leader_of(int group) const {
    return groups_.members(group).front();
  }
  bool is_leader(const mpi::Rank& rank) const {
    return leader_of(groups_.group_of(rank.id())) == rank.id();
  }

  sim::Co<void> daemon_loop(mpi::Rank& rank);
  sim::Co<void> handle_ctrl(mpi::Rank& rank, mpi::Message msg);
  sim::Co<void> run_prepare_round(mpi::Rank& leader);
  sim::Co<void> run_group_checkpoint(mpi::Rank& rank);
  sim::Co<void> run_restore(mpi::Rank& rank);
  sim::Co<void> serve_exchange(mpi::Rank& rank, mpi::Message msg);
  sim::Co<void> replay_to(mpi::Rank& rank, mpi::RankId peer,
                          std::int64_t after);
  /// In-group barrier via leader (ack/go). Returns false if epoch aborted.
  sim::Co<bool> group_barrier(mpi::Rank& rank, std::uint64_t epoch, int phase);
  /// Waits until pred() or the epoch aborts; returns !aborted.
  sim::Co<bool> wait_event(mpi::Rank& rank, std::uint64_t epoch,
                           const std::function<bool()>& pred);
  void wake(mpi::Rank& rank);
  /// Reconciles member `m`'s entry in the incremental drain counter with the
  /// current bookmark/received state. No-op unless a wait is active.
  void note_bookmark_progress(RankState& st, const mpi::Rank& rank,
                              mpi::RankId m);
  std::uint64_t draw_target_skew(RankState& st, bool coordinated);
  /// Re-issues the volume-exchange request of every rank (optionally only
  /// those on `shard_filter`) that had deferred its exchange with `back`.
  void reissue_deferred_exchanges(int shard_filter, mpi::RankId back);
  /// Moves `dead` from exchange_pending to exchange_deferred for every rank
  /// (optionally only those on `shard_filter`) and wakes the waiters.
  void reroute_pending_exchanges(int shard_filter, mpi::RankId dead);

  static std::uint64_t barrier_key(std::uint64_t epoch, int phase) {
    return epoch * 8 + static_cast<std::uint64_t>(phase);
  }

  mpi::Runtime* rt_;
  group::GroupSet groups_;
  /// Pending split grouping while a drain transition is open (see
  /// begin_transition); nullopt almost always.
  std::optional<group::GroupSet> transition_;
  /// Superseded groupings, kept alive because suspended checkpoint
  /// coroutines of unaffected groups hold `const auto&` references into
  /// their member vectors. GroupSet's move ctor moves the inner vectors'
  /// buffers, so those references stay valid across retirement.
  std::vector<std::unique_ptr<group::GroupSet>> retired_groups_;
  ckpt::Checkpointer* checkpointer_;
  ckpt::ImageRegistry* registry_;
  ImageSizeFn image_bytes_;
  Metrics* metrics_;
  GroupProtocolOptions options_;
  std::function<void(int group)> restore_done_;
  std::vector<std::unique_ptr<RankState>> states_;
};

}  // namespace gcr::core
