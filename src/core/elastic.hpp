// Traffic-affinity regroup planning for elastic membership (DESIGN.md §16).
//
// When churn changes the member set (src/sim/churn.hpp driven through the
// RecoveryManager), the partition has to be re-derived: a drained rank is
// split into a singleton before it departs, and a rejoining rank should land
// in the group it actually communicates with — not wherever a static
// strategy once put it. The planner reuses the paper's own machinery for
// that decision: observed app-plane traffic is replayed through the
// Gopalan–Nagarajan DynamicGrouper (group/dynamic.hpp) to find the
// rejoiner's communication component, and the merge target is the current
// group with the highest direct-message affinity inside that component,
// subject to a size cap (unbounded dynamic grouping is exactly the failure
// mode the paper criticizes).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "group/group.hpp"
#include "mpi/hooks.hpp"

namespace gcr::core {

/// Passive tap counting app-plane messages per ordered (src, dst) pair.
/// Suppressed re-sends during replay are counted too: affinity measures who
/// talks to whom, not what reached the wire. Attach via
/// Runtime::add_observer; reads are only meaningful on the home shard
/// between events (the recovery state machine's context).
class TrafficMatrix : public mpi::Observer {
 public:
  explicit TrafficMatrix(int nranks);

  void on_send(const mpi::Rank& rank, const mpi::Message& msg,
               bool transmitted) override;

  /// Messages observed between a and b, either direction.
  std::uint64_t pair_count(mpi::RankId a, mpi::RankId b) const;
  std::uint64_t total() const { return total_; }
  int nranks() const { return nranks_; }

 private:
  int nranks_;
  std::vector<std::uint64_t> counts_;  ///< [src * nranks + dst]
  std::uint64_t total_ = 0;
};

/// Decides where a rejoined singleton should live. Deterministic: ties
/// break toward the lowest group index, and the traffic matrix it reads is
/// a pure function of the (seeded) run so far.
class RegroupPlanner {
 public:
  explicit RegroupPlanner(const TrafficMatrix* traffic);

  /// Returns the index (in `gs`) of the group `rank` should merge into, or
  /// nullopt to stay a singleton. A group qualifies if admitting the rank
  /// keeps it within `max_group_size` (0 = unbounded). Preference order:
  /// highest direct-message affinity; among zero-direct-affinity groups,
  /// largest overlap with the rank's DynamicGrouper component (transitive
  /// communication); no affinity at all → stay singleton.
  std::optional<int> choose_merge_target(mpi::RankId rank,
                                         const group::GroupSet& gs,
                                         int max_group_size) const;

 private:
  const TrafficMatrix* traffic_;
};

}  // namespace gcr::core
