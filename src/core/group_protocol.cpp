#include "core/group_protocol.hpp"

#include <algorithm>
#include <utility>

#include "util/assert.hpp"
#include "util/log.hpp"

namespace gcr::core {
namespace {

/// commit_iteration value meaning "checkpoint at the very next safe point"
/// (single-member groups need no cross-member agreement).
constexpr std::uint64_t kAnyIteration = ~std::uint64_t{0};

/// Epoch namespace for restart barriers (disjoint from checkpoint epochs).
constexpr std::uint64_t kRestartEpochBase = std::uint64_t{1} << 40;

}  // namespace

GroupProtocol::GroupProtocol(mpi::Runtime& rt, const group::GroupSet& groups,
                             ckpt::Checkpointer& checkpointer,
                             ckpt::ImageRegistry& registry,
                             ImageSizeFn image_bytes, Metrics& metrics,
                             GroupProtocolOptions options)
    : rt_(&rt), groups_(groups), checkpointer_(&checkpointer),
      registry_(&registry), image_bytes_(std::move(image_bytes)),
      metrics_(&metrics), options_(options) {
  GCR_CHECK(groups_.nranks() == rt.nranks());
  const int n = rt.nranks();
  states_.reserve(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    auto st = std::make_unique<RankState>();
    st->rr.assign(static_cast<std::size_t>(n), 0);
    st->first_send.assign(static_cast<std::size_t>(n), 0);
    st->skip_bytes.assign(static_cast<std::size_t>(n), 0);
    st->event = std::make_unique<sim::Trigger>(rt.engine_of(r));
    st->jitter_rng = rt.cluster().make_rng(0x6A00 + static_cast<std::uint64_t>(r));
    states_.push_back(std::move(st));
  }
}

void GroupProtocol::wake(mpi::Rank& rank) { state(rank).event->fire(); }

std::uint64_t GroupProtocol::draw_target_skew(RankState& st,
                                              bool coordinated) {
  if (options_.target_skew_steps <= 0) return 0;
  // A coordinated group's cut comes out of the prepare/commit agreement and
  // lands within a safe point or two of the request; an uncoordinated
  // (single-process) checkpoint is taken wherever the signal catches the
  // process, so its cut spreads over the full skew window.
  const int window = coordinated ? 1 : options_.target_skew_steps;
  return st.jitter_rng.next_below(static_cast<std::uint64_t>(window) + 1);
}

std::int64_t GroupProtocol::log_bytes(mpi::RankId rank) const {
  return states_[static_cast<std::size_t>(rank)]->log.total_bytes();
}

void GroupProtocol::finalize_metrics() {
  if (!rt_->resident()) return;
  for (auto& stp : states_) {
    Metrics& sp = stp->spool;
    metrics_->logged_messages += sp.logged_messages;
    metrics_->logged_bytes += sp.logged_bytes;
    metrics_->flushed_bytes += sp.flushed_bytes;
    metrics_->resend_ops += sp.resend_ops;
    metrics_->resend_messages += sp.resend_messages;
    metrics_->resend_bytes += sp.resend_bytes;
    metrics_->aborted_rounds += sp.aborted_rounds;
    for (CkptRecord& r : sp.ckpts) metrics_->ckpts.push_back(std::move(r));
    for (RestartRecord& r : sp.restarts) {
      metrics_->restarts.push_back(std::move(r));
    }
    sp = Metrics{};
  }
  // Restore the unsharded push order — records are pushed at sim time `end`,
  // so the shared vector is sorted by (end, tie: dispatch order). Matching
  // it keeps order-sensitive consumers (floating-point aggregate sums) byte-
  // identical across shard counts.
  const auto by_end_rank = [](const auto& a, const auto& b) {
    return a.end != b.end ? a.end < b.end : a.rank < b.rank;
  };
  std::stable_sort(metrics_->ckpts.begin(), metrics_->ckpts.end(),
                   by_end_rank);
  std::stable_sort(metrics_->restarts.begin(), metrics_->restarts.end(),
                   by_end_rank);
}

// ------------------------------------------------------------- send/deliver

sim::Co<bool> GroupProtocol::before_send(mpi::Rank& rank, mpi::Message& msg) {
  RankState& st = state(rank);
  const bool crossing = !groups_.same_group(msg.src, msg.dst);
  // Elastic transitions log conservatively: during a split transition any
  // message crossing the pending grouping is logged too (the pair will be
  // cross after the install), and after a merge install the formerly-cross
  // pairs keep logging until the first joint commit (extra_log). Both sets
  // are empty in static runs, where `logged == crossing` exactly.
  const bool logged =
      crossing ||
      (transition_ && !transition_->same_group(msg.src, msg.dst)) ||
      st.extra_log.count(msg.dst) > 0;
  if (logged) {
    // Logged even when transmission is suppressed: the receiver has the
    // message, but a *future* failure of the receiver still needs it.
    st.log.append(msg);
    ++met(st).logged_messages;
    met(st).logged_bytes += msg.bytes;
  }
  std::int64_t& skip = st.skip_bytes[static_cast<std::size_t>(msg.dst)];
  if (skip > 0) {
    GCR_CHECK_MSG(msg.bytes <= skip,
                  "re-execution send misaligned with skip volume");
    skip -= msg.bytes;
    co_return false;  // peer already received this message
  }
  if (logged) {
    // Asynchronous sender-side logging still costs a buffer copy.
    co_await sim::delay(
        rt_->engine_of(rank),
        sim::from_seconds(options_.log_per_msg_s +
                          static_cast<double>(msg.bytes) /
                              options_.log_copy_Bps));
    // RR piggybacking (log GC) stays keyed on the CURRENT grouping.
    if (crossing && st.first_send[static_cast<std::size_t>(msg.dst)]) {
      msg.piggyback_rr = st.rr[static_cast<std::size_t>(msg.dst)];
      st.first_send[static_cast<std::size_t>(msg.dst)] = 0;
    }
  }
  co_return true;
}

void GroupProtocol::on_deliver(mpi::Rank& rank, const mpi::Message& msg) {
  RankState& st = state(rank);
  if (msg.piggyback_rr >= 0) {
    st.log.gc(msg.src, msg.piggyback_rr);
  }
  if (st.bookmark_wait_active) note_bookmark_progress(st, rank, msg.src);
  if (st.in_checkpoint) wake(rank);  // drain predicate may now hold
}

void GroupProtocol::note_bookmark_progress(RankState& st,
                                           const mpi::Rank& rank,
                                           mpi::RankId m) {
  if (!st.bookmark_wait_active || m == rank.id()) return;
  const auto it = st.bookmarks.find(m);
  const bool met =
      it != st.bookmarks.end() && rank.recvd_from(m).bytes >= it->second;
  const bool counted = st.bookmark_met.count(m) != 0;
  if (met && !counted) {
    st.bookmark_met.insert(m);
    --st.bookmark_unmet;
  } else if (!met && counted) {
    // A late bookmark re-keyed the requirement upward; re-arm the count.
    st.bookmark_met.erase(m);
    ++st.bookmark_unmet;
  }
}

// ------------------------------------------------------------ daemon / ctrl

void GroupProtocol::rank_started(mpi::Rank& rank) {
  sim::Engine& eng = rt_->engine_of(rank);
  auto proc = eng.spawn("crdaemon" + std::to_string(rank.id()),
                        daemon_loop(rank));
  rt_->set_daemon_proc(rank, std::move(proc));
  RankState& st = state(rank);
  if (st.restoring) {
    st.restore_proc = eng.spawn("restore" + std::to_string(rank.id()),
                                run_restore(rank));
  }
  // Deferred exchanges: any peer that restarted while this rank was down
  // re-issues its volume-exchange request now that we are back, so the
  // pair's replay/skip state converges even though the peer's restart
  // preparation already completed without us. In shard-resident runs a
  // peer's deferred-set lives on the peer's shard: same-shard peers are
  // scanned synchronously, every other shard is reached by a closure posted
  // one lookahead out (ordered after the respawn's incarnation fence, which
  // was posted earlier this event — mailbox send order is preserved).
  if (!rt_->resident()) {
    reissue_deferred_exchanges(/*shard_filter=*/-1, rank.id());
  } else {
    const int home = rt_->shard_of(rank.id());
    reissue_deferred_exchanges(home, rank.id());
    sim::ShardedEngine& sh = rt_->cluster().shards();
    const mpi::RankId back = rank.id();
    for (int s = 0; s < sh.num_shards(); ++s) {
      if (s == home) continue;
      sh.post_at(home, s, sh.shard(home).now() + sh.lookahead(),
                 [this, s, back] { reissue_deferred_exchanges(s, back); });
    }
  }
}

void GroupProtocol::reissue_deferred_exchanges(int shard_filter,
                                               mpi::RankId back) {
  for (int p = 0; p < rt_->nranks(); ++p) {
    if (p == back) continue;
    if (shard_filter >= 0 && rt_->shard_of(p) != shard_filter) continue;
    mpi::Rank& peer = rt_->rank(p);
    RankState& ps = *states_[static_cast<std::size_t>(p)];
    if (!peer.alive() || ps.exchange_deferred.count(back) == 0) continue;
    ps.exchange_deferred.erase(back);
    ps.exchange_pending.insert(back);
    mpi::Message req;
    req.ctrl = mpi::CtrlKind::kExchangeRequest;
    req.ctrl_data = {ps.exchange_r[static_cast<std::size_t>(back)],
                     peer.sent_to(back).bytes};
    rt_->send_ctrl(p, back, req);
  }
}

void GroupProtocol::rank_killed(mpi::Rank& rank) {
  RankState& st = state(rank);
  sim::Engine& eng = rt_->engine_of(rank);
  // Stop auxiliary coroutines still acting for the dead incarnation.
  if (st.restore_proc && st.restore_proc->alive()) {
    eng.kill(*st.restore_proc);
  }
  st.restore_proc.reset();
  for (sim::ProcPtr& p : st.serve_procs) {
    if (p && p->alive()) eng.kill(*p);
  }
  st.serve_procs.clear();
  // Roll back checkpoint state that died with the process: an image whose
  // group commit never happened must not be restored from. (Whether the
  // node's staging-buffer copy of the COMMITTED image survives is the
  // recovery manager's call — faults lose it, voluntary restarts keep it.)
  registry_->discard_staged(rank.id());
  checkpointer_->discard_staged(rank.id());
  if (is_leader(rank) && st.round_open) {
    ++met(st).aborted_rounds;
    st.round_open = false;
  }
  st.commit_pending = false;
  st.in_checkpoint = false;
  st.bookmark_wait_active = false;  // wait coroutine died with the rank
  st.bookmark_unmet = 0;
  st.bookmark_met.clear();
  st.restoring = false;
  st.exchange_pending.clear();
  st.exchange_deferred.clear();
  // Peers mid-restart waiting on our exchange reply must not wait forever:
  // re-route their exchange to the deferred path (re-issued when we
  // respawn) and wake them so their restart preparation can complete.
  // Shard-resident: same-shard peers synchronously, remote shards one
  // lookahead out (after the kill's incarnation fence — same mailbox batch,
  // earlier send). A remote peer that asks us for an exchange inside that
  // window is dropped by the incarnation check and rescued by this closure.
  if (!rt_->resident()) {
    reroute_pending_exchanges(/*shard_filter=*/-1, rank.id());
  } else {
    const int home = rt_->shard_of(rank.id());
    reroute_pending_exchanges(home, rank.id());
    sim::ShardedEngine& sh = rt_->cluster().shards();
    const mpi::RankId dead = rank.id();
    for (int s = 0; s < sh.num_shards(); ++s) {
      if (s == home) continue;
      sh.post_at(home, s, sh.shard(home).now() + sh.lookahead(),
                 [this, s, dead] { reroute_pending_exchanges(s, dead); });
    }
  }
}

void GroupProtocol::reroute_pending_exchanges(int shard_filter,
                                              mpi::RankId dead) {
  for (int p = 0; p < rt_->nranks(); ++p) {
    if (p == dead) continue;
    if (shard_filter >= 0 && rt_->shard_of(p) != shard_filter) continue;
    RankState& ps = *states_[static_cast<std::size_t>(p)];
    if (ps.exchange_pending.erase(dead) > 0) {
      ps.exchange_deferred.insert(dead);
      wake(rt_->rank(p));
    }
  }
}

void GroupProtocol::rank_finished(mpi::Rank& rank) {
  RankState& st = state(rank);
  if (is_leader(rank) && st.round_open) {
    ++met(st).aborted_rounds;
    st.round_open = false;
  }
  if (st.commit_pending) {
    // We accepted a commit but the application ended before reaching the
    // target iteration: abort the epoch so the group does not wait forever.
    const std::uint64_t epoch = st.commit_epoch;
    st.commit_pending = false;
    st.aborted.insert(epoch);
    wake(rank);
    mpi::Message abort;
    abort.ctrl = mpi::CtrlKind::kAbort;
    abort.ctrl_data = {static_cast<std::int64_t>(epoch)};
    const int g = groups_.group_of(rank.id());
    for (mpi::RankId m : groups_.members(g)) {
      if (m != rank.id()) rt_->send_ctrl(rank.id(), m, abort);
    }
  }
}

sim::Co<void> GroupProtocol::daemon_loop(mpi::Rank& rank) {
  // A ctrl backlog drains synchronously: pop() completes without suspending
  // while messages are queued, and symmetric transfer resumes this loop from
  // inside handle_ctrl's final suspend, so every synchronously handled
  // message nests two more native frames. A 4k-rank bookmark storm queues
  // thousands at once — enough to overflow the stack — so bounce through the
  // event queue (delay 0 is a real suspension) every kMaxSyncDrain messages.
  // The bound sits far above any backlog a paper-scale (<= 32 rank) run
  // produces, so their event sequences — and the flat-equivalence goldens —
  // are untouched.
  constexpr int kMaxSyncDrain = 64;
  int burst = 0;
  for (;;) {
    if (rank.ctrl_in().empty()) {
      burst = 0;  // pop() will suspend; resumption starts from a fresh stack
    } else if (++burst >= kMaxSyncDrain) {
      burst = 0;
      co_await sim::delay(rt_->engine_of(rank), sim::Time{0});
    }
    mpi::Message msg = co_await rank.ctrl_in().pop();
    co_await handle_ctrl(rank, std::move(msg));
  }
}

sim::Co<void> GroupProtocol::handle_ctrl(mpi::Rank& rank, mpi::Message msg) {
  RankState& st = state(rank);
  const int g = groups_.group_of(rank.id());
  const auto& members = groups_.members(g);

  switch (msg.ctrl) {
    case mpi::CtrlKind::kCkptRequest: {
      if (!is_leader(rank) || st.round_open) co_return;
      if (rank.finished()) {
        ++met(st).aborted_rounds;
        co_return;
      }
      st.round_open = true;
      st.signal_at = rt_->engine_of(rank).now();
      const std::uint64_t epoch = st.next_epoch++;
      if (members.size() == 1) {
        st.commit_pending = true;
        st.commit_epoch = epoch;
        st.commit_iteration =
            rank.iteration() + 1 + draw_target_skew(st, /*coordinated=*/false);
        co_return;
      }
      mpi::Message prep;
      prep.ctrl = mpi::CtrlKind::kPrepare;
      prep.ctrl_data = {static_cast<std::int64_t>(epoch)};
      for (mpi::RankId m : members) {
        if (m != rank.id()) rt_->send_ctrl(rank.id(), m, prep);
      }
      st.prepare_replies[epoch] = {};
      co_return;
    }

    case mpi::CtrlKind::kPrepare: {
      const auto epoch = static_cast<std::uint64_t>(msg.ctrl_data.at(0));
      st.signal_at = rt_->engine_of(rank).now();
      mpi::Message reply;
      reply.ctrl = mpi::CtrlKind::kPrepareReply;
      reply.ctrl_data = {
          static_cast<std::int64_t>(epoch),
          rank.finished() ? -1
                          : static_cast<std::int64_t>(rank.iteration())};
      rt_->send_ctrl(rank.id(), msg.src, reply);
      co_return;
    }

    case mpi::CtrlKind::kPrepareReply: {
      const auto epoch = static_cast<std::uint64_t>(msg.ctrl_data.at(0));
      auto it = st.prepare_replies.find(epoch);
      if (it == st.prepare_replies.end()) co_return;  // stale
      it->second.push_back(msg.ctrl_data.at(1));
      if (it->second.size() + 1 < members.size()) co_return;
      // All replies in: decide.
      bool anyone_finished = rank.finished();
      std::int64_t max_iter = static_cast<std::int64_t>(rank.iteration());
      for (std::int64_t v : it->second) {
        if (v < 0) anyone_finished = true;
        max_iter = std::max(max_iter, v);
      }
      st.prepare_replies.erase(it);
      if (anyone_finished) {
        ++met(st).aborted_rounds;
        st.aborted.insert(epoch);
        st.round_open = false;
        mpi::Message abort;
        abort.ctrl = mpi::CtrlKind::kAbort;
        abort.ctrl_data = {static_cast<std::int64_t>(epoch)};
        for (mpi::RankId m : members) {
          if (m != rank.id()) rt_->send_ctrl(rank.id(), m, abort);
        }
        co_return;
      }
      const std::uint64_t target =
          static_cast<std::uint64_t>(max_iter) +
          static_cast<std::uint64_t>(options_.commit_margin) +
          draw_target_skew(st, /*coordinated=*/true);
      mpi::Message commit;
      commit.ctrl = mpi::CtrlKind::kCommit;
      commit.ctrl_data = {static_cast<std::int64_t>(epoch),
                          static_cast<std::int64_t>(target)};
      for (mpi::RankId m : members) {
        if (m != rank.id()) rt_->send_ctrl(rank.id(), m, commit);
      }
      st.commit_pending = true;
      st.commit_epoch = epoch;
      st.commit_iteration = target;
      co_return;
    }

    case mpi::CtrlKind::kCommit: {
      const auto epoch = static_cast<std::uint64_t>(msg.ctrl_data.at(0));
      const auto target = static_cast<std::uint64_t>(msg.ctrl_data.at(1));
      if (st.aborted.count(epoch)) co_return;
      if (rank.finished()) {
        // Can no longer participate; abort the epoch group-wide.
        st.aborted.insert(epoch);
        mpi::Message abort;
        abort.ctrl = mpi::CtrlKind::kAbort;
        abort.ctrl_data = {static_cast<std::int64_t>(epoch)};
        for (mpi::RankId m : members) {
          if (m != rank.id()) rt_->send_ctrl(rank.id(), m, abort);
        }
        co_return;
      }
      GCR_CHECK_MSG(rank.iteration() < target,
                    "commit target already passed — raise commit_margin");
      st.commit_pending = true;
      st.commit_epoch = epoch;
      st.commit_iteration = target;
      co_return;
    }

    case mpi::CtrlKind::kAbort: {
      const auto epoch = static_cast<std::uint64_t>(msg.ctrl_data.at(0));
      st.aborted.insert(epoch);
      if (st.commit_pending && st.commit_epoch == epoch) {
        st.commit_pending = false;
      }
      if (is_leader(rank) && st.round_open) {
        ++met(st).aborted_rounds;
        st.round_open = false;
      }
      wake(rank);
      co_return;
    }

    case mpi::CtrlKind::kBookmark: {
      const auto epoch = static_cast<std::uint64_t>(msg.ctrl_data.at(0));
      (void)epoch;  // one round per group at a time; keyed by source
      st.bookmarks[msg.src] = msg.ctrl_data.at(1);
      if (st.bookmark_wait_active) note_bookmark_progress(st, rank, msg.src);
      wake(rank);
      co_return;
    }

    case mpi::CtrlKind::kBarrierAck: {
      const std::uint64_t key =
          barrier_key(static_cast<std::uint64_t>(msg.ctrl_data.at(0)),
                      static_cast<int>(msg.ctrl_data.at(1)));
      ++st.barrier_acks[key];
      wake(rank);
      co_return;
    }

    case mpi::CtrlKind::kBarrierGo: {
      const std::uint64_t key =
          barrier_key(static_cast<std::uint64_t>(msg.ctrl_data.at(0)),
                      static_cast<int>(msg.ctrl_data.at(1)));
      st.barrier_go.insert(key);
      wake(rank);
      co_return;
    }

    case mpi::CtrlKind::kExchangeRequest: {
      // A restarting peer announces its restored volumes. It rolled its
      // receive counters back to ctrl_data[0]; re-base our re-execution
      // skip toward it synchronously — a stale skip from an earlier
      // exchange would suppress sends the rolled-back peer needs again,
      // and the replay below only covers what is already in our log.
      const std::int64_t peer_r = msg.ctrl_data.at(0);
      st.skip_bytes[static_cast<std::size_t>(msg.src)] =
          std::max<std::int64_t>(0, peer_r - rank.sent_to(msg.src).bytes);
      // Served in its own coroutine so the daemon keeps answering other
      // peers; the reply is sent AFTER the replay so the peer's
      // restart-preparation time includes the message resend (paper: GP1
      // restarts are slow and variable because of "resending variable
      // amounts of messages to all other processes"). Recoveries may
      // overlap, so the server handle is tracked and killed with the rank
      // (rank_killed) — a server outliving its incarnation would replay
      // from a rolled-back log.
      std::erase_if(st.serve_procs,
                    [](const sim::ProcPtr& p) { return !p || !p->alive(); });
      st.serve_procs.push_back(
          rt_->engine_of(rank).spawn("exchsrv" + std::to_string(rank.id()),
                                     serve_exchange(rank, std::move(msg))));
      co_return;
    }

    case mpi::CtrlKind::kExchangeReply: {
      const std::int64_t peer_r = msg.ctrl_data.at(0);
      const std::int64_t my_s = rank.sent_to(msg.src).bytes;
      st.skip_bytes[static_cast<std::size_t>(msg.src)] =
          std::max<std::int64_t>(0, peer_r - my_s);
      st.exchange_pending.erase(msg.src);
      // A reply that raced the peer's death still completes the exchange:
      // the replay data preceded it on the wire, and the peer's own restart
      // will re-run the pair's exchange from its side.
      st.exchange_deferred.erase(msg.src);
      wake(rank);
      co_return;
    }

    default:
      co_return;  // other protocols' traffic
  }
}

// ----------------------------------------------------------- waiting helpers

sim::Co<bool> GroupProtocol::wait_event(mpi::Rank& rank, std::uint64_t epoch,
                                        const std::function<bool()>& pred) {
  RankState& st = state(rank);
  for (;;) {
    if (st.aborted.count(epoch)) co_return false;
    if (pred()) co_return true;
    st.event->reset();
    co_await st.event->wait();
  }
}

sim::Co<bool> GroupProtocol::group_barrier(mpi::Rank& rank,
                                           std::uint64_t epoch, int phase) {
  const int g = groups_.group_of(rank.id());
  const auto& members = groups_.members(g);
  if (members.size() == 1) co_return true;
  RankState& st = state(rank);
  const std::uint64_t key = barrier_key(epoch, phase);
  if (is_leader(rank)) {
    const int needed = static_cast<int>(members.size()) - 1;
    const bool ok = co_await wait_event(rank, epoch, [&st, key, needed] {
      auto it = st.barrier_acks.find(key);
      return it != st.barrier_acks.end() && it->second >= needed;
    });
    st.barrier_acks.erase(key);
    if (!ok) co_return false;
    mpi::Message go;
    go.ctrl = mpi::CtrlKind::kBarrierGo;
    go.ctrl_data = {static_cast<std::int64_t>(epoch), phase};
    for (mpi::RankId m : members) {
      if (m != rank.id()) rt_->send_ctrl(rank.id(), m, go);
    }
    co_return true;
  }
  mpi::Message ack;
  ack.ctrl = mpi::CtrlKind::kBarrierAck;
  ack.ctrl_data = {static_cast<std::int64_t>(epoch), phase};
  rt_->send_ctrl(rank.id(), leader_of(g), ack);
  const bool ok = co_await wait_event(
      rank, epoch, [&st, key] { return st.barrier_go.count(key) > 0; });
  st.barrier_go.erase(key);
  co_return ok;
}

// ---------------------------------------------------------------- checkpoint

sim::Co<void> GroupProtocol::at_safepoint(mpi::Rank& rank) {
  RankState& st = state(rank);
  if (!st.commit_pending) co_return;
  if (st.commit_iteration != kAnyIteration &&
      rank.iteration() != st.commit_iteration) {
    GCR_CHECK_MSG(rank.iteration() < st.commit_iteration,
                  "safe point overshot the commit target");
    co_return;
  }
  st.commit_pending = false;
  if (st.aborted.count(st.commit_epoch)) co_return;
  co_await run_group_checkpoint(rank);
}

sim::Co<void> GroupProtocol::run_group_checkpoint(mpi::Rank& rank) {
  RankState& st = state(rank);
  const std::uint64_t epoch = st.commit_epoch;
  const int g = groups_.group_of(rank.id());
  const auto& members = groups_.members(g);
  sim::Engine& eng = rt_->engine_of(rank);

  const sim::Time t_signal = st.signal_at;
  const sim::Time t_safepoint = eng.now();
  st.in_checkpoint = true;

  // ---- lock MPI: quiesce the library (signal handling + OS jitter) ----
  co_await sim::delay(eng, sim::from_seconds(options_.signal_handling_s) +
                               rt_->cluster().draw_jitter(st.jitter_rng));
  const sim::Time t_locked = eng.now();

  // ---- coordination: sync logs, bookmarks, drain, barrier ----

  const std::int64_t flush = st.log.unflushed_bytes();
  if (options_.sync_flush_at_checkpoint) {
    co_await checkpointer_->flush_log(rank.node(), flush);
  }
  st.log.mark_flushed();
  met(st).flushed_bytes += flush;

  mpi::Message bookmark;
  bookmark.ctrl = mpi::CtrlKind::kBookmark;
  for (mpi::RankId m : members) {
    if (m == rank.id()) continue;
    bookmark.ctrl_data = {static_cast<std::int64_t>(epoch),
                          rank.sent_to(m).bytes};
    rt_->send_ctrl(rank.id(), m, bookmark);
  }
  // Seed the incremental drain counter with one scan; from here the
  // kBookmark and delivery hooks keep it exact, so each wake evaluates the
  // predicate in O(1) (the full rescan is quadratic across a round and made
  // NORM — one group of n — untenable at thousands of ranks).
  st.bookmark_met.clear();
  st.bookmark_unmet = 0;
  st.bookmark_wait_active = true;
  for (mpi::RankId m : members) {
    if (m == rank.id()) continue;
    ++st.bookmark_unmet;
    note_bookmark_progress(st, rank, m);
  }
  bool ok = co_await wait_event(rank, epoch, [&] {
#ifndef NDEBUG
    bool full = true;
    for (mpi::RankId m : members) {
      if (m == rank.id()) continue;
      auto it = st.bookmarks.find(m);
      if (it == st.bookmarks.end() ||
          rank.recvd_from(m).bytes < it->second) {  // missing or in transit
        full = false;
        break;
      }
    }
    GCR_ASSERT(full == (st.bookmark_unmet == 0));
#endif
    return st.bookmark_unmet == 0;
  });
  st.bookmark_wait_active = false;
  st.bookmark_met.clear();
  if (ok) ok = co_await group_barrier(rank, epoch, 0);
  const sim::Time t_coordinated = eng.now();

  if (ok) {
    // ---- checkpoint: record RR, snapshot, dump image ----
    const int n = rt_->nranks();
    for (int q = 0; q < n; ++q) {
      st.rr[static_cast<std::size_t>(q)] = rank.recvd_from(q).bytes;
      st.first_send[static_cast<std::size_t>(q)] = 1;
    }
    ckpt::StoredCheckpoint image;
    image.meta.rank = rank.id();
    image.meta.epoch = epoch;
    image.meta.bytes = image_bytes_(rank.id());
    image.meta.written_at = eng.now();
    image.runtime_state = rt_->snapshot_rank(rank);
    image.protocol_state = StateSnapshot{st.rr, st.first_send, st.log};
    // Staged, not yet visible: a failure during the write (or any member's
    // write) discards the stage, so restore never sees a torn image or a
    // group whose members restore from different epochs.
    registry_->stage(std::move(image));
    co_await checkpointer_->stage_image(rank.node(), rank.id(), epoch,
                                        image_bytes_(rank.id()));
    const sim::Time t_image = eng.now();

    // ---- finalize: wait for the whole group, commit, resume ----
    const bool committed = co_await group_barrier(rank, epoch, 1);
    if (committed && is_leader(rank)) {
      // The leader's barrier path has no suspension between the last ack
      // and this point: every member has written and staged, and the whole
      // group's images become visible at one simulated instant — a kill
      // either lands before (nothing committed) or after (all committed).
      registry_->commit_group(members, epoch);
      // Tier residency commits in lockstep; in kDrain mode this also
      // launches each member's background write-behind to the PFS.
      checkpointer_->commit_images(members);
      // A joint committed cut now covers every member pair, so transitional
      // post-merge logging inside this group can stop: any future restore
      // rolls the whole group back to this cut (or a later one) together.
      for (mpi::RankId m : members) {
        RankState& ms = *states_[static_cast<std::size_t>(m)];
        if (ms.extra_log.empty()) continue;
        for (mpi::RankId q : members) ms.extra_log.erase(q);
      }
    } else if (!committed) {
      registry_->discard_staged(rank.id());
      checkpointer_->discard_staged(rank.id());
    }
    const sim::Time t_end = eng.now();

    CkptRecord rec;
    rec.rank = rank.id();
    rec.epoch = epoch;
    rec.signal_at = t_signal;
    rec.begin = t_safepoint;
    rec.end = t_end;
    // The signal->safe-point latency is NOT a pause (the application keeps
    // executing until the cut); per-process checkpoint time covers the pause
    // only, matching the paper's per-phase semantics (Lock MPI is the small
    // quiesce step).
    rec.phases.lock_mpi = sim::to_seconds(t_locked - t_safepoint);
    rec.phases.coordination = sim::to_seconds(t_coordinated - t_locked);
    rec.phases.checkpoint = sim::to_seconds(t_image - t_coordinated);
    rec.phases.finalize = sim::to_seconds(t_end - t_image);
    met(st).ckpts.push_back(rec);
  }
  // Aborted rounds are counted where the leader's round closes without a
  // checkpoint (kAbort delivery / finish paths), not here.

  st.bookmarks.clear();
  st.in_checkpoint = false;
  if (is_leader(rank)) st.round_open = false;
}

// ------------------------------------------------------------------ restart

void GroupProtocol::stage_restore(mpi::Rank& rank,
                                  const ckpt::StoredCheckpoint* image,
                                  std::uint64_t restore_token) {
  RankState& st = state(rank);
  st.restore_token = restore_token;
  const int n = rt_->nranks();
  st.log.clear();
  st.rr.assign(static_cast<std::size_t>(n), 0);
  st.first_send.assign(static_cast<std::size_t>(n), 0);
  st.skip_bytes.assign(static_cast<std::size_t>(n), 0);
  st.commit_pending = false;
  st.in_checkpoint = false;
  st.round_open = false;
  st.bookmarks.clear();
  st.bookmark_wait_active = false;
  st.bookmark_unmet = 0;
  st.bookmark_met.clear();
  st.barrier_acks.clear();
  st.barrier_go.clear();
  st.prepare_replies.clear();
  st.exchange_pending.clear();
  st.exchange_deferred.clear();
  st.serve_procs.clear();   // killed with the previous incarnation
  st.restore_proc.reset();  // ditto
  st.restoring = true;
  // Capture the restored R table NOW: it is a contiguous prefix of every
  // peer stream. Live traffic can slip in between restore and the exchange
  // request (a survivor may stamp the new incarnation before the exchange),
  // and the replay bound must not move past the restored prefix — the
  // runtime's duplicate suppression discards the overlap.
  st.exchange_r.assign(static_cast<std::size_t>(n), 0);
  st.restore_cut = image != nullptr ? image->meta.cut_seq : 0;
  if (image != nullptr) {
    st.from_image = true;
    st.restore_image_bytes = image->meta.bytes;
    const auto& snap =
        std::any_cast<const StateSnapshot&>(image->protocol_state);
    st.rr = snap.rr;
    st.first_send = snap.first_send;
    st.log = snap.log;
    for (std::size_t q = 0; q < snap.rr.size(); ++q) {
      st.exchange_r[q] = image->runtime_state.recvd[q].bytes;
    }
  } else {
    st.from_image = false;
    st.restore_image_bytes = 0;
  }
}

sim::Co<void> GroupProtocol::run_restore(mpi::Rank& rank) {
  RankState& st = state(rank);
  sim::Engine& eng = rt_->engine_of(rank);
  const sim::Time t_begin = eng.now();
  if (st.from_image) {
    co_await checkpointer_->read_image(rank.node(), rank.id(),
                                       st.restore_image_bytes);
  }
  // Restarting nodes are otherwise idle, so only the small fixed relaunch
  // handling cost applies (no OS-contention jitter spikes here).
  co_await sim::delay(eng, sim::from_seconds(options_.signal_handling_s));
  const sim::Time t_loaded = eng.now();

  // Volume exchange with every out-of-group process (Algorithm 1 restart).
  // Peers whose own group is down (recoveries can overlap) cannot answer;
  // waiting for them would deadlock queued recoveries against each other.
  // Their exchange is deferred: restart preparation completes against live
  // peers only, and the request is re-issued when the dead peer respawns
  // (rank_started), completing on the daemon path. Nothing is lost in the
  // meantime — the dead peer cannot send to us anyway, and our re-executed
  // sends toward it are logged for its eventual replay.
  mpi::Message req;
  req.ctrl = mpi::CtrlKind::kExchangeRequest;
  for (int q = 0; q < rt_->nranks(); ++q) {
    if (q == rank.id()) continue;
    if (groups_.same_group(rank.id(), q)) {
      // In-group peers are co-restoring (groups are killed whole). A peer
      // restoring from the SAME committed cut — or both from scratch — is
      // already consistent with us: no exchange, as always. After an
      // elastic merge the group may hold images from different pre-merge
      // cuts; such pairs exchange and replay exactly like out-of-group
      // peers, and the transitional logging window (extra_log) guarantees
      // their logs cover the gap (DESIGN.md §16).
      const RankState& qs = *states_[static_cast<std::size_t>(q)];
      const bool same_cut =
          st.from_image == qs.from_image &&
          (!st.from_image || st.restore_cut == qs.restore_cut);
      if (same_cut) continue;
    }
    if (rt_->peer_alive(rank, q)) {
      req.ctrl_data = {st.exchange_r[static_cast<std::size_t>(q)],
                       rank.sent_to(q).bytes};
      rt_->send_ctrl(rank.id(), q, req);
      st.exchange_pending.insert(q);
    } else {
      st.exchange_deferred.insert(q);
    }
  }
  const std::uint64_t repoch = kRestartEpochBase + st.restore_token;
  co_await wait_event(rank, repoch,
                      [&st] { return st.exchange_pending.empty(); });

  // Wait until all group members finish preparing the restart.
  co_await group_barrier(rank, repoch, 2);

  rank.resume_gate().fire();
  st.restoring = false;

  RestartRecord rec;
  rec.rank = rank.id();
  rec.begin = t_begin;
  rec.end = eng.now();
  rec.image_read_s = sim::to_seconds(t_loaded - t_begin);
  rec.exchange_s = sim::to_seconds(eng.now() - t_loaded);
  met(st).restarts.push_back(rec);

  const int g = groups_.group_of(rank.id());
  if (restore_done_ && !group_restarting(g)) restore_done_(g);
}

sim::Co<void> GroupProtocol::serve_exchange(mpi::Rank& rank,
                                            mpi::Message msg) {
  const std::int64_t peer_r_from_me = msg.ctrl_data.at(0);
  co_await sim::delay(rt_->engine_of(rank),
                      sim::from_seconds(options_.exchange_handling_s));
  co_await replay_to(rank, msg.src, peer_r_from_me);
  mpi::Message reply;
  reply.ctrl = mpi::CtrlKind::kExchangeReply;
  reply.ctrl_data = {rank.recvd_from(msg.src).bytes};
  rt_->send_ctrl(rank.id(), msg.src, reply);
}

sim::Co<void> GroupProtocol::replay_to(mpi::Rank& rank, mpi::RankId peer,
                                       std::int64_t after) {
  RankState& st = state(rank);
  const auto entries = st.log.entries_after(peer, after);
  if (entries.empty()) co_return;
  ++met(st).resend_ops;
  sim::Engine& eng = rt_->engine_of(rank);
  for (const mpi::Message& m : entries) {
    co_await sim::delay(eng, sim::from_seconds(options_.replay_per_msg_s));
    const auto times = rt_->replay_send(rank, m);
    ++met(st).resend_messages;
    met(st).resend_bytes += m.bytes;
    if (times.ticket != 0) {
      co_await rt_->await_egress(eng, times.ticket);
    } else if (times.egress_done > eng.now()) {
      co_await sim::delay(eng, times.egress_done - eng.now());
    }
  }
}

// ------------------------------------------------------- elastic regrouping

void GroupProtocol::begin_transition(const group::GroupSet& pending) {
  GCR_CHECK_MSG(!rt_->resident(),
                "elastic transitions run on the home engine only");
  GCR_CHECK(pending.nranks() == groups_.nranks());
  GCR_CHECK_MSG(!transition_, "a regroup transition is already open");
  transition_ = pending;
}

void GroupProtocol::end_transition() { transition_.reset(); }

bool GroupProtocol::quiescent_for_regroup(
    const std::vector<mpi::RankId>& ranks) {
  for (mpi::RankId r : ranks) {
    if (!rt_->rank(r).alive()) return false;
    const RankState& st = *states_[static_cast<std::size_t>(r)];
    // round_open covers the leader's whole prepare/commit window — including
    // the stretch where members have replied but not yet accepted a commit
    // and so carry no flag of their own; commit_pending covers the
    // accept-to-safepoint window; in_checkpoint the coordination and image
    // write; restoring the restart preparation.
    if (st.round_open || st.commit_pending || st.in_checkpoint ||
        st.restoring) {
      return false;
    }
  }
  return true;
}

void GroupProtocol::install_groups(group::GroupSet next) {
  GCR_CHECK_MSG(!rt_->resident(),
                "elastic regrouping runs on the home engine only");
  GCR_CHECK(next.nranks() == groups_.nranks());
  retired_groups_.push_back(
      std::make_unique<group::GroupSet>(std::move(groups_)));
  groups_ = std::move(next);
  transition_.reset();
}

void GroupProtocol::add_transitional_logging(
    const std::vector<mpi::RankId>& a, const std::vector<mpi::RankId>& b) {
  for (mpi::RankId x : a) {
    for (mpi::RankId y : b) {
      if (x == y) continue;
      states_[static_cast<std::size_t>(x)]->extra_log.insert(y);
      states_[static_cast<std::size_t>(y)]->extra_log.insert(x);
    }
  }
}

// ------------------------------------------------------------------- driver

void GroupProtocol::request_group_checkpoint(int group) {
  mpi::Message req;
  req.ctrl = mpi::CtrlKind::kCkptRequest;
  rt_->send_ctrl_from_driver(leader_of(group), req);
}

bool GroupProtocol::group_restarting(int group) const {
  for (mpi::RankId m : groups_.members(group)) {
    if (states_[static_cast<std::size_t>(m)]->restoring) return true;
  }
  return false;
}

}  // namespace gcr::core
