// MPICH-VCL-style non-blocking coordinated checkpointing (paper §2.2, §5.3;
// DESIGN.md §8).
//
// Chandy–Lamport with remote checkpoint servers: on a checkpoint request
// each process immediately (no safe point, no group coordination)
//   1. stops SENDING (the "short period when the processes are not allowed
//     to send any messages" — in VCL it lasts until the image upload to the
//     remote server completes),
//   2. sends a marker on every channel,
//   3. uploads its image to a shared checkpoint server (records in-channel
//     messages from peers whose marker has not yet arrived into the image),
//   4. resumes sending once the upload is done and all markers arrived.
// Receiving and computing continue throughout — the protocol is
// "non-blocking" — but peers starved of messages stall, and at scale the
// stall cascades (Figure 2's gaps).
//
// Restart is a *global* rollback; because the snapshot cut relies on channel
// recording that we model only as size accounting, restart re-execution is
// not supported for this protocol (the paper never restarts VCL either);
// RecoveryManager refuses accordingly.
#pragma once

#include <cstdint>
#include <memory>
#include <map>
#include <set>
#include <vector>

#include "ckpt/checkpointer.hpp"
#include "core/group_protocol.hpp"  // ImageSizeFn
#include "core/metrics.hpp"
#include "mpi/hooks.hpp"
#include "mpi/runtime.hpp"

namespace gcr::core {

struct VclProtocolOptions {
  double request_handling_s = 2e-3;   ///< signal handling before markers
  double channel_record_Bps = 200e6;  ///< in-channel message recording rate
};

class VclProtocol : public mpi::Interposer {
 public:
  VclProtocol(mpi::Runtime& rt, ckpt::Checkpointer& checkpointer,
              ImageSizeFn image_bytes, Metrics& metrics,
              VclProtocolOptions options = {});

  // ---- mpi::Interposer ----
  sim::Co<bool> before_send(mpi::Rank& rank, mpi::Message& msg) override;
  void on_deliver(mpi::Rank& rank, const mpi::Message& msg) override;
  sim::Co<void> at_safepoint(mpi::Rank& rank) override;
  void rank_started(mpi::Rank& rank) override;

  /// Driver: one Chandy-Lamport round across ALL ranks (VCL is global).
  void request_round();

  bool any_in_checkpoint() const;
  std::int64_t recorded_channel_bytes() const { return recorded_total_; }

 private:
  struct RankState {
    bool in_checkpoint = false;
    bool send_blocked = false;
    std::uint64_t epoch = 0;          ///< round currently/last executed
    std::uint64_t pending_round = 0;  ///< deferred round (arrived mid-ckpt)
    std::map<mpi::RankId, std::uint64_t> marker_round;  ///< peer -> latest
    std::int64_t recorded_bytes = 0;
    sim::Time signal_at = 0;
    std::unique_ptr<sim::Trigger> gate;   ///< released when sends unblock
    std::unique_ptr<sim::Trigger> event;  ///< marker-arrival wakeups
    gcr::Rng jitter_rng{0};
  };

  RankState& state(const mpi::Rank& rank) {
    return *states_[static_cast<std::size_t>(rank.id())];
  }

  sim::Co<void> daemon_loop(mpi::Rank& rank);
  sim::Co<void> run_checkpoint(mpi::Rank& rank);

  mpi::Runtime* rt_;
  ckpt::Checkpointer* checkpointer_;
  ImageSizeFn image_bytes_;
  Metrics* metrics_;
  VclProtocolOptions options_;
  std::vector<std::unique_ptr<RankState>> states_;
  std::int64_t recorded_total_ = 0;
  std::uint64_t round_ = 0;
  // Global-commit bookkeeping: a Chandy-Lamport snapshot is only usable
  // once every rank's piece is stored, so rounds end at global commit.
  std::vector<std::uint64_t> latest_uploaded_;
  std::unique_ptr<sim::Trigger> commit_event_;
};

}  // namespace gcr::core
