#include "util/table.hpp"

#include <algorithm>
#include <cstdio>

#include "util/assert.hpp"

namespace gcr {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  GCR_CHECK(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  GCR_CHECK_MSG(cells.size() == headers_.size(), "row arity mismatch");
  rows_.push_back(std::move(cells));
}

std::string Table::num(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

std::string Table::num(std::int64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
  return buf;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto rule = [&] {
    os << '+';
    for (std::size_t w : widths) {
      for (std::size_t i = 0; i < w + 2; ++i) os << '-';
      os << '+';
    }
    os << '\n';
  };
  auto emit = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << ' ' << cells[c];
      for (std::size_t i = cells[c].size(); i < widths[c] + 1; ++i) os << ' ';
      os << '|';
    }
    os << '\n';
  };
  rule();
  emit(headers_);
  rule();
  for (const auto& row : rows_) emit(row);
  rule();
}

namespace {

void csv_cell(std::ostream& os, const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) {
    os << cell;
    return;
  }
  os << '"';
  for (char ch : cell) {
    if (ch == '"') os << '"';
    os << ch;
  }
  os << '"';
}

}  // namespace

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      csv_cell(os, cells[c]);
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace gcr
