// Tiny command-line flag parser shared by benches and examples.
//
// Supports `--name=value`, `--name value`, and boolean `--name`. Unknown
// flags are an error so typos in experiment sweeps don't silently run the
// default configuration.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace gcr {

class Cli {
 public:
  /// Parses argv; aborts with a message on malformed input.
  Cli(int argc, char** argv);

  /// Declares a flag (for --help and unknown-flag checking) and returns its
  /// value. Declare every flag before calling `finish()`.
  std::string get_string(const std::string& name, const std::string& def,
                         const std::string& help);
  std::int64_t get_int(const std::string& name, std::int64_t def,
                       const std::string& help);
  double get_double(const std::string& name, double def,
                    const std::string& help);
  bool get_bool(const std::string& name, bool def, const std::string& help);

  /// Comma-separated integer list, e.g. --procs=16,32,64.
  std::vector<std::int64_t> get_int_list(const std::string& name,
                                         const std::vector<std::int64_t>& def,
                                         const std::string& help);

  /// Declares the standard `--jobs` flag for campaign-driven benches and
  /// returns its value: campaign worker threads, 0 (the default) meaning
  /// one per hardware thread. Rejects values outside 0..65536.
  int get_jobs();

  /// Declares the standard `--shards` flag (engine shards per simulation;
  /// sim/shard.hpp) and returns its value. 1 (the default) is the literal
  /// single-threaded engine. Rejects values outside 1..64. Note --jobs and
  /// --shards multiply: a campaign runs jobs simulations concurrently, each
  /// of which runs on shards threads.
  int get_shards();

  /// Declares the standard `--reps` flag (campaign repetitions = seeds
  /// 1..n) and returns its value. Rejects values outside 1..1000000 with a
  /// usage error — Scenario aborts on reps < 1, so catch it at the CLI.
  int get_reps(int def);

  /// After all declarations: handles --help (prints usage, exits 0) and
  /// errors out on any flag that was provided but never declared.
  void finish();

 private:
  struct Decl {
    std::string name;
    std::string def;
    std::string help;
  };

  std::string program_;
  std::map<std::string, std::string> values_;
  std::vector<Decl> decls_;
  bool help_requested_ = false;
};

}  // namespace gcr
