#include "util/units.hpp"

#include <cmath>
#include <cstdio>

namespace gcr {

std::string format_double(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

std::string format_bytes(std::int64_t bytes) {
  const double b = static_cast<double>(bytes);
  char buf[64];
  if (bytes < kKiB) {
    std::snprintf(buf, sizeof(buf), "%lld B", static_cast<long long>(bytes));
  } else if (bytes < kMiB) {
    std::snprintf(buf, sizeof(buf), "%.2f KiB", b / static_cast<double>(kKiB));
  } else if (bytes < kGiB) {
    std::snprintf(buf, sizeof(buf), "%.2f MiB", b / static_cast<double>(kMiB));
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f GiB", b / static_cast<double>(kGiB));
  }
  return buf;
}

std::string format_duration_ns(std::int64_t ns) {
  char buf[64];
  const double v = static_cast<double>(ns);
  if (ns >= 1'000'000'000) {
    std::snprintf(buf, sizeof(buf), "%.3f s", v / 1e9);
  } else if (ns >= 1'000'000) {
    std::snprintf(buf, sizeof(buf), "%.3f ms", v / 1e6);
  } else if (ns >= 1'000) {
    std::snprintf(buf, sizeof(buf), "%.3f us", v / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%lld ns", static_cast<long long>(ns));
  }
  return buf;
}

}  // namespace gcr
