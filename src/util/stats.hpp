// Streaming and batch statistics used by the experiment harness.
#pragma once

#include <cstddef>
#include <vector>

namespace gcr {

/// Welford streaming accumulator: mean/variance/min/max without storing
/// samples. Used for per-repetition aggregation in benches.
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double variance() const;  ///< Sample variance (n-1); 0 when n < 2.
  double stddev() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double sum() const { return sum_; }

  /// Merges another accumulator into this one (parallel Welford).
  void merge(const RunningStats& other);

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Returns the p-th percentile (0..100) by linear interpolation on a copy of
/// the data. Empty input returns 0.
double percentile(std::vector<double> samples, double p);

}  // namespace gcr
