// Assertion macros used across the library.
//
// GCR_CHECK is always on (release included): the simulator's correctness
// invariants (volume alignment, FIFO ordering, consistent cuts) are cheap to
// test and catastrophic to violate silently, so they stay enabled.
// GCR_ASSERT compiles out under NDEBUG for hot-path checks.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace gcr {

[[noreturn]] inline void assert_fail(const char* cond, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "GCR assertion failed: %s\n  at %s:%d\n  %s\n", cond,
               file, line, msg ? msg : "");
  std::abort();
}

}  // namespace gcr

#define GCR_CHECK(cond)                                            \
  do {                                                             \
    if (!(cond)) ::gcr::assert_fail(#cond, __FILE__, __LINE__, ""); \
  } while (0)

#define GCR_CHECK_MSG(cond, msg)                                      \
  do {                                                                \
    if (!(cond)) ::gcr::assert_fail(#cond, __FILE__, __LINE__, (msg)); \
  } while (0)

#ifdef NDEBUG
#define GCR_ASSERT(cond) ((void)0)
#else
#define GCR_ASSERT(cond) GCR_CHECK(cond)
#endif
