// Minimal leveled logger.
//
// The simulator is single-threaded, so no synchronization is needed. Level is
// a process-global knob; benches default to `warn` so figure output stays
// clean, tests may raise it to `debug` for failure diagnosis.
#pragma once

#include <cstdarg>
#include <string>

namespace gcr {

enum class LogLevel : int { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Sets the global log threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// printf-style logging. Prefer the GCR_LOG_* macros which skip argument
/// evaluation when the level is disabled.
void log_message(LogLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

/// Parses "trace"/"debug"/"info"/"warn"/"error"/"off"; defaults to kWarn.
LogLevel parse_log_level(const std::string& name);

}  // namespace gcr

#define GCR_LOG_AT(lvl, ...)                                        \
  do {                                                              \
    if (lvl >= ::gcr::log_level()) ::gcr::log_message(lvl, __VA_ARGS__); \
  } while (0)

#define GCR_TRACE(...) GCR_LOG_AT(::gcr::LogLevel::kTrace, __VA_ARGS__)
#define GCR_DEBUG(...) GCR_LOG_AT(::gcr::LogLevel::kDebug, __VA_ARGS__)
#define GCR_INFO(...) GCR_LOG_AT(::gcr::LogLevel::kInfo, __VA_ARGS__)
#define GCR_WARN(...) GCR_LOG_AT(::gcr::LogLevel::kWarn, __VA_ARGS__)
#define GCR_ERROR(...) GCR_LOG_AT(::gcr::LogLevel::kError, __VA_ARGS__)
