#include "util/log.hpp"

#include <cstdio>

namespace gcr {
namespace {

LogLevel g_level = LogLevel::kWarn;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level = level; }

LogLevel log_level() { return g_level; }

void log_message(LogLevel level, const char* fmt, ...) {
  if (level < g_level) return;
  std::fprintf(stderr, "[%s] ", level_name(level));
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

LogLevel parse_log_level(const std::string& name) {
  if (name == "trace") return LogLevel::kTrace;
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  if (name == "off") return LogLevel::kOff;
  return LogLevel::kWarn;
}

}  // namespace gcr
