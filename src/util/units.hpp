// Byte/time units and human-readable formatting.
//
// Simulation time is kept in integer nanoseconds (see sim/time.hpp); these
// helpers convert to/from seconds and format quantities for reports.
#pragma once

#include <cstdint>
#include <string>

namespace gcr {

inline constexpr std::int64_t kKiB = 1024;
inline constexpr std::int64_t kMiB = 1024 * kKiB;
inline constexpr std::int64_t kGiB = 1024 * kMiB;

/// "1.50 MiB", "312 B", ... Power-of-two units.
std::string format_bytes(std::int64_t bytes);

/// "1.234 s", "56.7 ms", "890 us", "12 ns".
std::string format_duration_ns(std::int64_t ns);

/// Fixed-point formatting without locale surprises.
std::string format_double(double value, int decimals);

}  // namespace gcr
