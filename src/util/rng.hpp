// Deterministic pseudo-random number generation.
//
// The simulator must be bit-reproducible across runs and platforms, so we use
// our own xoshiro256** implementation rather than std::mt19937 +
// distribution objects (libstdc++ distributions are not guaranteed stable).
// SplitMix64 seeds the state and derives independent substreams.
#pragma once

#include <cmath>
#include <cstdint>

#include "util/assert.hpp"

namespace gcr {

/// SplitMix64 step; used for seeding and cheap stateless hashing.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Mixes two 64-bit values into one; used to derive per-entity substreams
/// (e.g. per-process jitter streams) from a run seed.
constexpr std::uint64_t mix_seed(std::uint64_t a, std::uint64_t b) {
  std::uint64_t s = a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
  return splitmix64(s);
}

/// xoshiro256** generator with stable cross-platform output.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound), bound > 0. Uses rejection sampling to
  /// avoid modulo bias.
  std::uint64_t next_below(std::uint64_t bound) {
    GCR_ASSERT(bound > 0);
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = next_u64();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_int(std::int64_t lo, std::int64_t hi) {
    GCR_ASSERT(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [lo, hi).
  double next_range(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

  /// Standard normal via Box-Muller (deterministic; no cached spare to keep
  /// the stream position independent of call pattern).
  double next_normal() {
    double u1 = next_double();
    double u2 = next_double();
    if (u1 <= 0.0) u1 = 0x1.0p-53;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

  /// Lognormal with the given log-space mu/sigma. Used by the OS jitter model.
  double next_lognormal(double mu, double sigma) {
    return std::exp(mu + sigma * next_normal());
  }

  /// Exponential with the given mean. Used by the failure injector.
  double next_exponential(double mean) {
    double u = next_double();
    if (u <= 0.0) u = 0x1.0p-53;
    return -mean * std::log(u);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
};

}  // namespace gcr
