#include "util/cli.hpp"

#include <cstdio>
#include <cstdlib>

namespace gcr {
namespace {

[[noreturn]] void usage_error(const std::string& program,
                              const std::string& message) {
  std::fprintf(stderr, "%s: %s\n", program.c_str(), message.c_str());
  std::exit(2);
}

}  // namespace

Cli::Cli(int argc, char** argv) : program_(argc > 0 ? argv[0] : "prog") {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      continue;
    }
    if (arg.rfind("--", 0) != 0) {
      usage_error(program_, "positional arguments are not supported: " + arg);
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";  // bare boolean flag
    }
  }
}

std::string Cli::get_string(const std::string& name, const std::string& def,
                            const std::string& help) {
  decls_.push_back({name, def, help});
  auto it = values_.find(name);
  return it == values_.end() ? def : it->second;
}

std::int64_t Cli::get_int(const std::string& name, std::int64_t def,
                          const std::string& help) {
  const std::string v = get_string(name, std::to_string(def), help);
  char* end = nullptr;
  const long long parsed = std::strtoll(v.c_str(), &end, 10);
  if (end == v.c_str() || *end != '\0') {
    usage_error(program_, "--" + name + " expects an integer, got: " + v);
  }
  return parsed;
}

double Cli::get_double(const std::string& name, double def,
                       const std::string& help) {
  const std::string v = get_string(name, std::to_string(def), help);
  char* end = nullptr;
  const double parsed = std::strtod(v.c_str(), &end);
  if (end == v.c_str() || *end != '\0') {
    usage_error(program_, "--" + name + " expects a number, got: " + v);
  }
  return parsed;
}

bool Cli::get_bool(const std::string& name, bool def, const std::string& help) {
  const std::string v = get_string(name, def ? "true" : "false", help);
  if (v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  usage_error(program_, "--" + name + " expects a boolean, got: " + v);
}

std::vector<std::int64_t> Cli::get_int_list(
    const std::string& name, const std::vector<std::int64_t>& def,
    const std::string& help) {
  std::string def_str;
  for (std::size_t i = 0; i < def.size(); ++i) {
    if (i) def_str += ',';
    def_str += std::to_string(def[i]);
  }
  const std::string v = get_string(name, def_str, help);
  std::vector<std::int64_t> out;
  std::size_t pos = 0;
  while (pos < v.size()) {
    auto comma = v.find(',', pos);
    if (comma == std::string::npos) comma = v.size();
    const std::string item = v.substr(pos, comma - pos);
    char* end = nullptr;
    const long long parsed = std::strtoll(item.c_str(), &end, 10);
    if (end == item.c_str() || *end != '\0') {
      usage_error(program_, "--" + name + " expects integers, got: " + item);
    }
    out.push_back(parsed);
    pos = comma + 1;
  }
  return out;
}

int Cli::get_jobs() {
  const std::int64_t jobs =
      get_int("jobs", 0, "campaign worker threads (0 = all hardware threads)");
  if (jobs < 0 || jobs > 65536) {
    usage_error(program_,
                "--jobs must be in 0..65536 (0 = all hardware threads; each "
                "job runs one simulation, so total threads = jobs x shards)");
  }
  return static_cast<int>(jobs);
}

int Cli::get_shards() {
  const std::int64_t shards =
      get_int("shards", 1, "engine shards per simulation (1 = single-thread)");
  if (shards < 1 || shards > 64) {
    usage_error(program_,
                "--shards must be in 1..64 (threads PER simulation; a "
                "campaign runs jobs x shards threads in total)");
  }
  return static_cast<int>(shards);
}

int Cli::get_reps(int def) {
  const std::int64_t reps = get_int("reps", def, "repetitions (seeds 1..n)");
  if (reps < 1 || reps > 1000000) {
    usage_error(program_, "--reps must be in 1..1000000");
  }
  return static_cast<int>(reps);
}

void Cli::finish() {
  if (help_requested_) {
    std::printf("usage: %s [flags]\n", program_.c_str());
    for (const auto& d : decls_) {
      std::printf("  --%-24s %s (default: %s)\n", d.name.c_str(),
                  d.help.c_str(), d.def.c_str());
    }
    std::exit(0);
  }
  for (const auto& [name, value] : values_) {
    (void)value;
    bool known = false;
    for (const auto& d : decls_) {
      if (d.name == name) {
        known = true;
        break;
      }
    }
    if (!known) usage_error(program_, "unknown flag: --" + name);
  }
}

}  // namespace gcr
