// ASCII table and CSV emission for figure/table reproduction output.
//
// Every bench binary prints its series both as an aligned ASCII table (for
// reading in the terminal) and optionally as CSV (for plotting). Rows are
// strings; numeric columns are pre-formatted by the caller so the table stays
// agnostic about units.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace gcr {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends one row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given number of decimals.
  static std::string num(double value, int decimals = 2);
  static std::string num(std::int64_t value);

  /// Writes an aligned, boxed ASCII rendering.
  void print(std::ostream& os) const;

  /// Writes RFC-4180-ish CSV (quotes cells containing commas/quotes).
  void print_csv(std::ostream& os) const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace gcr
