#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace gcr {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  if (p <= 0.0) return samples.front();
  if (p >= 100.0) return samples.back();
  const double rank = p / 100.0 * static_cast<double>(samples.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= samples.size()) return samples.back();
  return samples[lo] * (1.0 - frac) + samples[lo + 1] * frac;
}

}  // namespace gcr
