// Network topologies: route resolution over explicit link graphs.
//
// A Topology maps a (src, dst) node pair to the ordered set of directed
// physical links the message crosses. The fabric layer (sim/network.hpp)
// models each link as a fair-share contended resource; the topology only
// decides *which* links a transfer occupies. Three implementations:
//
//  - flat:      one egress link per node, the paper's switched-Ethernet
//               model. The fabric never routes through it (Network keeps
//               the legacy NIC arithmetic for bit-reproducibility); it
//               exists so tests and sweeps can treat "flat" uniformly.
//  - fat-tree:  k-ary Clos (Al-Fares layout): k pods of k/2 edge and k/2
//               aggregation switches, (k/2)^2 cores, k^3/4 hosts. Up-path
//               choice is the routing policy: deterministic (dst-hashed,
//               ECMP-like) or adaptive (least-loaded uplink at each stage).
//  - dragonfly: g groups of `a` routers, `p` hosts per router, `h` global
//               channels per router (g = a*h + 1, one channel per peer
//               group). Minimal routing takes the single direct global
//               channel; Valiant detours through a random intermediate
//               group to spread adversarial traffic.
//
// Everything is flat arrays indexed by node/link id — no per-node heap
// objects — so a 64k-host instance costs megabytes, not gigabytes.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "sim/time.hpp"
#include "util/rng.hpp"

namespace gcr::sim {

enum class TopologyKind : std::uint8_t { kFlat, kFatTree, kDragonfly };

enum class FatTreeRouting : std::uint8_t { kDeterministic, kAdaptive };
enum class DragonflyRouting : std::uint8_t { kMinimal, kValiant };

/// Link speed class; per-class bandwidth overrides live in TopologyParams.
enum class LinkClass : std::uint8_t {
  kAccess,  ///< host/terminal links (NIC <-> first switch)
  kFabric,  ///< intra-pod (fat-tree edge<->agg) / intra-group local links
  kGlobal,  ///< fat-tree core links / dragonfly inter-group channels
};

struct TopologyParams {
  TopologyKind kind = TopologyKind::kFlat;

  /// Per-class link bandwidths; 0 inherits NetParams::bandwidth_Bps.
  double access_bandwidth_Bps = 0;
  double fabric_bandwidth_Bps = 0;
  double global_bandwidth_Bps = 0;
  /// Per-link propagation latency (paid once per hop, after the last byte
  /// clears the bottleneck).
  double hop_latency_s = 10e-6;
  /// Messages a node's NIC injects concurrently; later sends queue FIFO at
  /// the sender. 1 mirrors the flat model's serializing NIC.
  int nic_concurrency = 1;

  /// Fat-tree arity (even, >= 4); 0 derives the smallest k whose k^3/4
  /// hosts cover the node count.
  int fattree_k = 0;
  FatTreeRouting fattree_routing = FatTreeRouting::kDeterministic;

  /// Dragonfly shape; 0 derives a balanced instance (a = 2p, h = p) large
  /// enough for the node count.
  int df_routers_per_group = 0;  ///< a
  int df_nodes_per_router = 0;   ///< p
  int df_global_per_router = 0;  ///< h
  DragonflyRouting df_routing = DragonflyRouting::kMinimal;
};

/// An ordered list of directed link ids; value type, never heap-allocated.
struct Route {
  static constexpr int kMaxHops = 8;
  std::array<std::int32_t, kMaxHops> links;
  int nhops = 0;

  void push(std::int32_t link) {
    links[static_cast<std::size_t>(nhops++)] = link;
  }
};

class Topology {
 public:
  virtual ~Topology() = default;

  virtual TopologyKind kind() const = 0;
  /// Hosts addressable as send() endpoints (may exceed the cluster's node
  /// count when the radix rounds up; surplus hosts simply stay idle).
  virtual int num_nodes() const = 0;
  /// Directed physical links (dense ids in [0, num_links)).
  virtual int num_links() const = 0;
  virtual double link_bandwidth_Bps(std::int32_t link) const = 0;
  virtual LinkClass link_class(std::int32_t link) const = 0;

  /// Resolves src -> dst (src != dst) into `out`. `load` is the per-link
  /// admitted-transfer count (adaptive policies read it; others ignore it);
  /// `rng` is drawn only by randomized policies (Valiant), so deterministic
  /// policies leave the stream untouched.
  virtual void resolve(int src, int dst, std::span<const std::int32_t> load,
                       Rng& rng, Route& out) const = 0;

  /// Closed-form minimal hop count (conformance oracle for resolve()).
  virtual int min_hops(int src, int dst) const = 0;

  /// min over all src != dst of min_hops(src, dst): the fewest links any
  /// remote message can traverse. The sharded engine's conservative
  /// lookahead multiplies this by the per-hop latency to bound how soon a
  /// cross-shard effect can land (sim/shard.hpp).
  virtual int min_cross_hops() const = 0;

  /// Human-readable shape summary for bench tables and logs.
  virtual std::string describe() const = 0;
};

/// One egress link per node; resolve() returns that single link. The flat
/// fabric path in Network bypasses this (legacy NIC arithmetic), so the
/// class exists for interface uniformity and tests.
class FlatTopology final : public Topology {
 public:
  explicit FlatTopology(int num_nodes, double bandwidth_Bps);

  TopologyKind kind() const override { return TopologyKind::kFlat; }
  int num_nodes() const override { return num_nodes_; }
  int num_links() const override { return num_nodes_; }
  double link_bandwidth_Bps(std::int32_t) const override { return bw_; }
  LinkClass link_class(std::int32_t) const override {
    return LinkClass::kAccess;
  }
  void resolve(int src, int dst, std::span<const std::int32_t> load, Rng& rng,
               Route& out) const override;
  int min_hops(int src, int dst) const override {
    return src == dst ? 0 : 1;
  }
  int min_cross_hops() const override { return 1; }
  std::string describe() const override;

 private:
  int num_nodes_;
  double bw_;
};

class FatTreeTopology final : public Topology {
 public:
  /// `k` even and >= 4; hosts = k^3/4 must cover `num_nodes`.
  FatTreeTopology(int num_nodes, int k, FatTreeRouting routing,
                  double access_Bps, double fabric_Bps, double core_Bps);

  TopologyKind kind() const override { return TopologyKind::kFatTree; }
  int num_nodes() const override { return hosts_; }
  int num_links() const override { return 6 * hosts_; }
  double link_bandwidth_Bps(std::int32_t link) const override;
  LinkClass link_class(std::int32_t link) const override;
  void resolve(int src, int dst, std::span<const std::int32_t> load, Rng& rng,
               Route& out) const override;
  int min_hops(int src, int dst) const override;
  /// Two hosts under one edge switch: host -> edge -> host.
  int min_cross_hops() const override { return 2; }
  std::string describe() const override;

  int k() const { return k_; }
  int hosts() const { return hosts_; }
  int pod_of(int host) const { return host / (half_ * half_); }
  int edge_of(int host) const { return (host % (half_ * half_)) / half_; }

  // Link-id layout (all directed; H = hosts). Tests assert against these.
  std::int32_t host_up(int h) const { return h; }
  std::int32_t host_down(int h) const { return hosts_ + h; }
  /// Edge switch (pod, e) -> aggregation switch (pod, a).
  std::int32_t edge_agg_up(int pod, int e, int a) const {
    return 2 * hosts_ + ((pod * half_ + e) * half_ + a);
  }
  /// Aggregation switch (pod, a) -> edge switch (pod, e).
  std::int32_t agg_edge_down(int pod, int a, int e) const {
    return 3 * hosts_ + ((pod * half_ + a) * half_ + e);
  }
  /// Aggregation switch (pod, a) -> core (a, j), j in [0, k/2).
  std::int32_t agg_core_up(int pod, int a, int j) const {
    return 4 * hosts_ + ((pod * half_ + a) * half_ + j);
  }
  /// Core (a, j) -> aggregation switch (pod, a).
  std::int32_t core_agg_down(int pod, int a, int j) const {
    return 5 * hosts_ + ((pod * half_ + a) * half_ + j);
  }

 private:
  int k_;
  int half_;  ///< k/2
  int hosts_;
  FatTreeRouting routing_;
  double access_bw_;
  double fabric_bw_;
  double core_bw_;
};

class DragonflyTopology final : public Topology {
 public:
  /// `a` routers/group, `p` hosts/router, `h` global channels/router;
  /// groups g = a*h + 1 (one direct channel per peer group).
  DragonflyTopology(int num_nodes, int a, int p, int h,
                    DragonflyRouting routing, double access_Bps,
                    double local_Bps, double global_Bps);

  TopologyKind kind() const override { return TopologyKind::kDragonfly; }
  int num_nodes() const override { return hosts_; }
  int num_links() const override {
    return 2 * hosts_ + groups_ * a_ * (a_ - 1) + groups_ * a_ * h_;
  }
  double link_bandwidth_Bps(std::int32_t link) const override;
  LinkClass link_class(std::int32_t link) const override;
  void resolve(int src, int dst, std::span<const std::int32_t> load, Rng& rng,
               Route& out) const override;
  int min_hops(int src, int dst) const override;
  /// Two terminals on one router: terminal -> router -> terminal.
  int min_cross_hops() const override { return 2; }
  std::string describe() const override;

  int groups() const { return groups_; }
  int routers_per_group() const { return a_; }
  int nodes_per_router() const { return p_; }
  int global_per_router() const { return h_; }
  int group_of(int node) const { return node / (a_ * p_); }
  int router_of(int node) const { return (node % (a_ * p_)) / p_; }

  std::int32_t terminal_up(int node) const { return node; }
  std::int32_t terminal_down(int node) const { return hosts_ + node; }
  /// Directed local link router rs -> rd (rs != rd) inside group g.
  std::int32_t local_link(int g, int rs, int rd) const {
    return 2 * hosts_ + g * a_ * (a_ - 1) + rs * (a_ - 1) +
           (rd < rs ? rd : rd - 1);
  }
  /// Group g's directed global channel gc in [0, a*h); it lands in group
  /// (g + gc + 1) mod groups and is owned by router gc / h.
  std::int32_t global_link(int g, int gc) const {
    return 2 * hosts_ + groups_ * a_ * (a_ - 1) + g * (a_ * h_) + gc;
  }
  /// Channel index group `from` uses to reach group `to` directly.
  int channel_to(int from, int to) const {
    return (to - from - 1 + groups_) % groups_;
  }
  /// Router in `to` where the direct link from `from` lands (the owner of
  /// the paired reverse channel).
  int landing_router(int from, int to) const {
    return channel_to(to, from) / h_;
  }

 private:
  /// Appends the global-channel segment `from_router`@`gsrc` -> landing
  /// router in `gdst` (local hop to the gateway if needed, then the global
  /// link); returns the landing router index within `gdst`.
  int push_global_segment(int gsrc, int from_router, int gdst,
                          Route& out) const;

  int a_, p_, h_;
  int groups_;
  int hosts_;
  DragonflyRouting routing_;
  double access_bw_;
  double local_bw_;
  double global_bw_;
};

/// Builds the configured topology sized for `num_nodes`; class bandwidths
/// default to `default_bandwidth_Bps` where the params leave them 0.
std::unique_ptr<Topology> make_topology(const TopologyParams& params,
                                        int num_nodes,
                                        double default_bandwidth_Bps);

const char* topology_kind_name(TopologyKind kind);
/// Parses "flat" / "fattree" / "dragonfly"; aborts on anything else.
TopologyKind parse_topology_kind(const std::string& name);

}  // namespace gcr::sim
