#include "sim/network.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace gcr::sim {

Network::SendTimes Network::send(int src_node, int dst_node,
                                 std::int64_t bytes, SmallFn deliver) {
  GCR_CHECK(src_node >= 0 && src_node < num_nodes());
  GCR_CHECK(dst_node >= 0 && dst_node < num_nodes());
  GCR_CHECK(bytes >= 0);
  ++total_messages_;
  total_bytes_ += bytes;

  const Time now = engine_->now();
  if (src_node == dst_node) {
    const Time copy = from_seconds(
        params_.loopback_latency_s +
        static_cast<double>(bytes) / params_.loopback_Bps);
    const Time arrival = now + copy;
    engine_->call_at(arrival, std::move(deliver));
    return {arrival, arrival};
  }

  const Time occupy = from_seconds(
      params_.per_message_s + static_cast<double>(bytes) / params_.bandwidth_Bps);
  Time& nic_free = egress_free_[static_cast<std::size_t>(src_node)];
  const Time depart = std::max(now, nic_free);
  const Time egress_done = depart + occupy;
  nic_free = egress_done;
  const Time arrival = egress_done + from_seconds(params_.latency_s);
  engine_->call_at(arrival, std::move(deliver));
  return {egress_done, arrival};
}

}  // namespace gcr::sim
