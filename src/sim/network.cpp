#include "sim/network.hpp"

#include <algorithm>
#include <utility>

#include "sim/awaitables.hpp"
#include "sim/shard.hpp"
#include "util/assert.hpp"

namespace gcr::sim {

Network::Network(Engine& engine, int num_nodes, const NetParams& params,
                 std::uint64_t routing_seed)
    : engine_(&engine), params_(params), num_nodes_(num_nodes),
      topo_(make_topology(params.topology, num_nodes, params.bandwidth_Bps)),
      routing_rng_(routing_seed),
      egress_free_(static_cast<std::size_t>(num_nodes), 0) {
  GCR_CHECK(params_.topology.nic_concurrency >= 1);
  if (routed()) {
    const auto nlinks = static_cast<std::size_t>(topo_->num_links());
    links_.resize(nlinks);
    for (std::size_t l = 0; l < nlinks; ++l) {
      links_[l].bandwidth_Bps =
          topo_->link_bandwidth_Bps(static_cast<std::int32_t>(l));
    }
    link_active_.assign(nlinks, 0);
    nodes_.resize(static_cast<std::size_t>(num_nodes));
    recip_ = {0.0, 1.0};  // recip_[a] = 1/a; grown as link occupancy grows
    lanes_.resize(1);  // unsharded: every sender shares the home lane
    node_seq_.assign(static_cast<std::size_t>(num_nodes), 0);
  } else {
    // Flat still exposes a (zeroed) load view so introspection is uniform.
    link_active_.assign(static_cast<std::size_t>(topo_->num_links()), 0);
  }
}

void Network::set_shard_router(ShardedEngine* shards,
                               std::vector<int> node_to_shard) {
  GCR_CHECK(shards != nullptr);
  GCR_CHECK(node_to_shard.size() == static_cast<std::size_t>(num_nodes()));
  for (const int s : node_to_shard) {
    GCR_CHECK(s >= 0 && s < shards->num_shards());
  }
  if (routed()) {
    // The contention machine stays whole on the home engine; residency
    // reaches it over the one-hop injection edge. Both directions of that
    // edge post exactly inject_latency() ahead, so the window lookahead
    // must not exceed it (cluster derives the lookahead from
    // min_remote_latency_s == hop_latency_s, matching the floor).
    GCR_CHECK_MSG(&shards->shard(0) == engine_,
                  "routed fabric must live on shard 0 (the home engine)");
    GCR_CHECK(shards->lookahead() <= inject_latency());
    lanes_.resize(static_cast<std::size_t>(shards->num_shards()));
  }
  shards_ = shards;
  node_shard_ = std::move(node_to_shard);
}

Engine& Network::shard_engine(int node) {
  return shards_->shard(node_shard(node));
}

Network::SendTimes Network::send(int src_node, int dst_node,
                                 std::int64_t bytes, SmallFn deliver) {
  GCR_CHECK(src_node >= 0 && src_node < num_nodes());
  GCR_CHECK(dst_node >= 0 && dst_node < num_nodes());
  GCR_CHECK(bytes >= 0);
  total_messages_.fetch_add(1, std::memory_order_relaxed);
  total_bytes_.fetch_add(bytes, std::memory_order_relaxed);

  Engine& src_eng = engine_for(src_node);
  const Time now = src_eng.now();
  if (src_node == dst_node) {
    // Same-node copy bypasses NIC and fabric alike (and, resident, never
    // leaves the node's shard). The 1-tick floor keeps a zero-byte copy
    // from being instantaneous under degenerate (zero latency) configs;
    // defaults are unaffected.
    const Time copy = from_seconds(
        params_.loopback_latency_s +
        static_cast<double>(bytes) / params_.loopback_Bps);
    const Time arrival = now + std::max<Time>(1, copy);
    src_eng.call_at(arrival, std::move(deliver));
    return {arrival, arrival, 0};
  }
  if (!routed()) {
    return send_flat(src_node, dst_node, bytes, std::move(deliver), now);
  }
  return send_routed(src_node, dst_node, bytes, std::move(deliver), now);
}

Network::SendTimes Network::send_flat(int src_node, int dst_node,
                                      std::int64_t bytes, SmallFn deliver,
                                      Time now) {
  const Time occupy = from_seconds(
      params_.per_message_s + static_cast<double>(bytes) / params_.bandwidth_Bps);
  Time& nic_free = egress_free_[static_cast<std::size_t>(src_node)];
  const Time depart = std::max(now, nic_free);
  const Time egress_done = depart + occupy;
  nic_free = egress_done;
  const Time arrival = std::max(egress_done + from_seconds(params_.latency_s),
                                now + 1);
  if (shards_ == nullptr || node_shard(src_node) == node_shard(dst_node)) {
    engine_for(src_node).call_at(arrival, std::move(deliver));
  } else {
    // Lookahead-sound: arrival >= now + latency, and the sharded engine's
    // lookahead is derived from exactly this latency (min_remote_latency_s).
    shards_->post_at(node_shard(src_node), node_shard(dst_node), arrival,
                     std::move(deliver));
  }
  return {egress_done, arrival, 0};
}

Network::SendTimes Network::send_routed(int src_node, int dst_node,
                                        std::int64_t bytes, SmallFn deliver,
                                        Time now) {
  OpSlot* op = alloc_slot(node_shard(src_node));
  op->seq = node_seq_[static_cast<std::size_t>(src_node)]++;
  op->src = src_node;
  op->dst = dst_node;
  op->bytes = bytes;
  op->deliver = std::move(deliver);
  op->egress = nullptr;
  op->pending = true;

  // The injection edge: one hop of wire between this NIC and the fabric.
  // The closure carries only {this, op} — inline in SmallFn — and the op
  // slot carries the payload, so the steady path posts without allocating.
  const Time inject = now + inject_latency();
  post_to_fabric(src_node, inject,
                 SmallFn([this, op] { enqueue_fabric_op(op->src, op->seq, op); }));

  // Uncontended estimates mirroring the routed arithmetic (inject, full-
  // rate drain, then the per-message + remaining-hop delivery delay over a
  // minimal route); the real egress signal is the ticket's trigger, the
  // real arrival is when `deliver` runs.
  const Time est_clear =
      inject + std::max<Time>(1, from_seconds(static_cast<double>(bytes) /
                                              params_.bandwidth_Bps));
  const Time delivery = std::max<Time>(
      1, from_seconds(params_.per_message_s +
                      (topo_->min_hops(src_node, dst_node) - 1) *
                          params_.topology.hop_latency_s));
  return {est_clear + inject_latency(), est_clear + delivery, make_ticket(*op)};
}

Network::OpSlot* Network::alloc_slot(int lane_id) {
  Lane& lane = lanes_[static_cast<std::size_t>(lane_id)];
  if (!lane.free.empty()) {
    OpSlot* s = &lane.slots[lane.free.back()];
    lane.free.pop_back();
    return s;
  }
  GCR_CHECK(lane.slots.size() < (1u << 24) - 1);  // ticket field width
  lane.slots.emplace_back();
  OpSlot& s = lane.slots.back();
  s.lane = static_cast<std::uint16_t>(lane_id);
  s.self = static_cast<std::uint32_t>(lane.slots.size() - 1);
  return &s;
}

void Network::finalize_slot(OpSlot* op) {
  if (op->pending) {
    op->pending = false;
    if (op->egress != nullptr) {
      Trigger* t = std::exchange(op->egress, nullptr);
      t->fire();
    }
  }
  op->deliver = SmallFn();
  ++op->epoch;  // stale tickets stop resolving
  lanes_[op->lane].free.push_back(op->self);
}

const Network::OpSlot* Network::ticket_op(std::uint64_t ticket) const {
  if (ticket == 0) return nullptr;
  const std::size_t lane_id = static_cast<std::size_t>(ticket >> 56);
  const std::uint32_t self =
      (static_cast<std::uint32_t>(ticket >> 32) & 0xffffffu);
  const std::uint32_t epoch = static_cast<std::uint32_t>(ticket);
  if (lane_id >= lanes_.size() || self == 0) return nullptr;
  const Lane& lane = lanes_[lane_id];
  if (self - 1 >= lane.slots.size()) return nullptr;
  const OpSlot& s = lane.slots[self - 1];
  if (s.epoch != epoch) return nullptr;
  return &s;
}

bool Network::egress_pending(std::uint64_t ticket) const {
  const OpSlot* s = ticket_op(ticket);
  return s != nullptr && s->pending;
}

void Network::set_egress_trigger(std::uint64_t ticket, Trigger* t) {
  OpSlot* s = const_cast<OpSlot*>(ticket_op(ticket));
  GCR_CHECK(s != nullptr && s->pending);
  GCR_CHECK(s->egress == nullptr);
  s->egress = t;
}

void Network::clear_egress_trigger(std::uint64_t ticket) {
  OpSlot* s = const_cast<OpSlot*>(ticket_op(ticket));
  if (s != nullptr) s->egress = nullptr;
}

void Network::post_to_fabric(int src_node, Time at, SmallFn fn) {
  const int s = node_shard(src_node);
  if (shards_ == nullptr || s == 0) {
    engine_->call_at(at, std::move(fn));
  } else {
    shards_->post_at(s, 0, at, std::move(fn));
  }
}

void Network::post_from_fabric(int node, Time at, SmallFn fn) {
  const int s = node_shard(node);
  if (shards_ == nullptr || s == 0) {
    engine_->call_at(at, std::move(fn));
  } else {
    shards_->post_at(0, s, at, std::move(fn));
  }
}

void Network::enqueue_fabric_op(std::int32_t src, std::uint64_t seq,
                                OpSlot* slot) {
  pending_ops_.push_back(PendingOp{src, seq, slot});
  if (!flush_scheduled_) {
    flush_scheduled_ = true;
    // Every op targeting this tick is already in the queue (same-shard ops
    // were inserted at earlier ticks, cross-shard ops merged at the window
    // barrier), so a call_at at `now` sequences after all of them and the
    // flush sees the complete tick.
    engine_->call_at(engine_->now(), [this] { flush_fabric_ops(); });
  }
}

void Network::flush_fabric_ops() {
  flush_scheduled_ = false;
  // Canonical admission order: (source node, per-node seq). Arrival order
  // of the ops varies with the shard plan; this order does not, so routing
  // draws, NIC FIFO order and fair-share splits are shard-count-invariant.
  std::sort(pending_ops_.begin(), pending_ops_.end(),
            [](const PendingOp& a, const PendingOp& b) {
              if (a.src != b.src) return a.src < b.src;
              return a.seq < b.seq;
            });
  const Time now = engine_->now();
  for (const PendingOp& op : pending_ops_) {
    if (op.slot == nullptr) {
      do_abort(op.src, op.seq, now);
    } else {
      do_inject(op.slot, now);
    }
  }
  pending_ops_.clear();
  arm_timer();
}

void Network::do_inject(OpSlot* op, Time now) {
  fabric_offered_ += op->bytes;
  const std::uint32_t idx = alloc_transfer();
  Transfer& t = pool_[idx];
  t.src = op->src;
  t.dst = op->dst;
  t.bytes = op->bytes;
  t.remaining = static_cast<double>(op->bytes);
  t.deliver = std::move(op->deliver);
  t.src_seq = op->seq;
  t.op = op;
  t.next_queued = kNil;

  NodeState& ns = nodes_[static_cast<std::size_t>(t.src)];
  if (ns.admitted < params_.topology.nic_concurrency) {
    admit(idx, now);
  } else {
    t.state = XferState::kQueued;
    ++queued_count_;
    if (ns.q_tail == kNil) {
      ns.q_head = ns.q_tail = idx;
    } else {
      pool_[ns.q_tail].next_queued = idx;
      ns.q_tail = idx;
    }
  }
}

std::uint32_t Network::alloc_transfer() {
  if (!free_.empty()) {
    const std::uint32_t idx = free_.back();
    free_.pop_back();
    return idx;
  }
  pool_.emplace_back();
  return static_cast<std::uint32_t>(pool_.size() - 1);
}

void Network::free_transfer(std::uint32_t idx) {
  Transfer& t = pool_[idx];
  t.state = XferState::kFree;
  t.deliver = SmallFn();
  t.op = nullptr;
  t.next_queued = kNil;
  free_.push_back(idx);
}

double Network::compute_rate(const Transfer& t) const {
  // share() everywhere (one multiply by a tabulated reciprocal, never a
  // divide): rates are compared with exact == against link shares, so every
  // producer must use the identical expression.
  double rate = share(static_cast<std::size_t>(t.route.links[0]));
  for (int h = 1; h < t.route.nhops; ++h) {
    const auto l =
        static_cast<std::size_t>(t.route.links[static_cast<std::size_t>(h)]);
    rate = std::min(rate, share(l));
  }
  return rate;
}

void Network::settle(Transfer& t, Time now) {
  if (now > t.last_settle && t.remaining > 0) {
    t.remaining -= to_seconds(now - t.last_settle) * t.rate;
    if (t.remaining < 0) t.remaining = 0;
  }
  t.last_settle = now;
}

void Network::push_estimate(std::uint32_t idx, Time now) {
  Transfer& t = pool_[idx];
  const Time dt = t.remaining <= kDoneEpsBytes
                      ? Time{1}
                      : std::max<Time>(1, from_seconds(t.remaining / t.rate));
  ++t.est_gen;
  t.est_time = now + dt;
  heap_.push_back(HeapEntry{now + dt, heap_seq_++, idx, t.est_gen});
  std::push_heap(heap_.begin(), heap_.end(), HeapCmp{});
  if (heap_.size() > 1024 &&
      heap_.size() > 8 * static_cast<std::size_t>(active_count_)) {
    compact_heap();
  }
}

void Network::compact_heap() {
  // At most one entry per transfer is live (latest generation); everything
  // else is invalidation garbage. Rebuild to bound the heap by the active
  // set, not by the resettle rate.
  std::size_t keep = 0;
  for (std::size_t i = 0; i < heap_.size(); ++i) {
    const Transfer& t = pool_[heap_[i].xfer];
    if (t.state == XferState::kActive && heap_[i].gen == t.est_gen) {
      heap_[keep++] = heap_[i];
    }
  }
  heap_.resize(keep);
  std::make_heap(heap_.begin(), heap_.end(), HeapCmp{});
}

void Network::link_insert(std::int32_t link, std::uint32_t idx, int hop) {
  constexpr int kMax = Route::kMaxHops;
  Transfer& t = pool_[idx];
  const std::uint32_t handle = idx * kMax + static_cast<std::uint32_t>(hop);
  Link& L = links_[static_cast<std::size_t>(link)];
  t.lnext[static_cast<std::size_t>(hop)] = L.head;
  t.lprev[static_cast<std::size_t>(hop)] = kNil;
  if (L.head != kNil) {
    pool_[L.head / kMax].lprev[L.head % kMax] = handle;
  }
  L.head = handle;
  const std::int32_t active = ++link_active_[static_cast<std::size_t>(link)];
  if (static_cast<std::size_t>(active) >= recip_.size()) {
    recip_.push_back(1.0 / static_cast<double>(recip_.size()));
  }
}

void Network::link_remove(std::int32_t link, std::uint32_t idx, int hop) {
  constexpr int kMax = Route::kMaxHops;
  Transfer& t = pool_[idx];
  const auto h = static_cast<std::size_t>(hop);
  const std::uint32_t next = t.lnext[h];
  const std::uint32_t prev = t.lprev[h];
  Link& L = links_[static_cast<std::size_t>(link)];
  if (prev != kNil) {
    pool_[prev / kMax].lnext[prev % kMax] = next;
  } else {
    L.head = next;
  }
  if (next != kNil) pool_[next / kMax].lprev[next % kMax] = prev;
  --link_active_[static_cast<std::size_t>(link)];
  GCR_ASSERT(link_active_[static_cast<std::size_t>(link)] >= 0);
}

void Network::maybe_push(std::uint32_t idx, Time now) {
  Transfer& t = pool_[idx];
  // Entry already due (or overdue): nothing can beat it, and it will
  // re-estimate at fire time anyway. Skips the division on the hot path.
  if (t.est_time <= now + 1) return;
  const Time dt = t.remaining <= kDoneEpsBytes
                      ? Time{1}
                      : std::max<Time>(1, from_seconds(t.remaining / t.rate));
  if (now + dt < t.est_time) push_estimate(idx, now);
}

void Network::resettle_members(std::int32_t link, Time now, std::uint32_t skip,
                               bool inserted) {
  constexpr int kMax = Route::kMaxHops;
  const auto l = static_cast<std::size_t>(link);
  const double new_share = share(l);
  // A member's rate always equaled this link's old share when this link was
  // (one of) its bottleneck(s) — both sides are the same
  // bandwidth * recip[active] product, so the comparison is exact, not a
  // tolerance test.
  double old_share = 0;
  if (!inserted) {
    const auto old_active = static_cast<std::size_t>(link_active_[l] + 1);
    // complete() may re-admit a queued transfer onto this link before its
    // final removal pass runs, restoring the occupancy — old_active then
    // names an occupancy the link never ran at, recip_ has no entry for it,
    // and no member's rate can equal a share that never existed: the pass
    // would match nothing, so skip it.
    if (old_active >= recip_.size()) return;
    old_share = links_[l].bandwidth_Bps * recip_[old_active];
  }
  for (std::uint32_t m = links_[l].head; m != kNil;) {
    const std::uint32_t idx = m / kMax;
    Transfer& u = pool_[idx];
    m = u.lnext[m % kMax];
    if (idx == skip) continue;
    if (inserted) {
      // The share only dropped: the new rate is min(u.rate, new_share), so
      // members bottlenecked elsewhere at or below it are untouched and the
      // rest clamp straight down — no bottleneck search. The slower rate
      // makes the live estimate fire early, which on_timer absorbs.
      if (u.rate <= new_share) continue;
      settle(u, now);
      u.rate = new_share;
    } else {
      // The share only rose: members not bottlenecked here (rate strictly
      // below the old share) cannot be affected. The rest re-derive their
      // bottleneck, and a faster rate must beat the live estimate into the
      // heap or the transfer would be delivered late.
      if (u.rate != old_share) continue;
      settle(u, now);
      const double rate = compute_rate(u);
      if (rate != u.rate) {
        u.rate = rate;
        maybe_push(idx, now);
      }
    }
  }
}

void Network::admit(std::uint32_t idx, Time now) {
  Transfer& t = pool_[idx];
  t.state = XferState::kActive;
  ++active_count_;
  ++nodes_[static_cast<std::size_t>(t.src)].admitted;
  // Routes resolve at admission (not enqueue) so adaptive policies see the
  // load that actually exists when the transfer enters the fabric.
  topo_->resolve(t.src, t.dst, link_active_, routing_rng_, t.route);
  GCR_ASSERT(t.route.nhops >= 1);
  for (int h = 0; h < t.route.nhops; ++h) {
    link_insert(t.route.links[static_cast<std::size_t>(h)], idx, h);
  }
  t.last_settle = now;
  t.rate = compute_rate(t);
  // A zero-byte payload gets a one-tick estimate (push_estimate's floor):
  // completion always flows through the timer, never inline, so a queued
  // chain of empty messages can't recurse complete -> admit -> complete.
  push_estimate(idx, now);
  for (int h = 0; h < t.route.nhops; ++h) {
    resettle_members(t.route.links[static_cast<std::size_t>(h)], now, idx,
                     /*inserted=*/true);
  }
}

void Network::complete(std::uint32_t idx, Time now) {
  Transfer& t = pool_[idx];
  const Route route = t.route;
  const std::int32_t src = t.src;
  for (int h = 0; h < route.nhops; ++h) {
    link_remove(route.links[static_cast<std::size_t>(h)], idx, h);
  }
  --active_count_;
  fabric_delivered_ += t.bytes;

  // The remaining nhops-1 hops plus the per-message cost (the first hop
  // was paid at injection). Cross-node routes have nhops >= 2, so the tail
  // is at least one hop — lookahead-sound toward the destination's shard.
  const Time tail = from_seconds(
      params_.per_message_s +
      static_cast<double>(route.nhops - 1) * params_.topology.hop_latency_s);
  post_from_fabric(t.dst, now + std::max<Time>(1, tail), std::move(t.deliver));
  // The egress-done op returns over the injection edge to the source's
  // shard, where it fires a still-registered trigger and recycles the op
  // slot (finalize_slot is the sole recycler, so a kill-time purge on the
  // owning shard can never race a slot reuse).
  OpSlot* op = t.op;
  post_from_fabric(src, now + inject_latency(),
                   SmallFn([this, op] { finalize_slot(op); }));
  free_transfer(idx);

  NodeState& ns = nodes_[static_cast<std::size_t>(src)];
  --ns.admitted;
  if (ns.q_head != kNil &&
      ns.admitted < params_.topology.nic_concurrency) {
    const std::uint32_t next = ns.q_head;
    ns.q_head = pool_[next].next_queued;
    if (ns.q_head == kNil) ns.q_tail = kNil;
    pool_[next].next_queued = kNil;
    --queued_count_;
    admit(next, now);
  }
  for (int h = 0; h < route.nhops; ++h) {
    resettle_members(route.links[static_cast<std::size_t>(h)], now, kNil,
                     /*inserted=*/false);
  }
}

void Network::arm_timer() {
  while (!heap_.empty()) {
    const HeapEntry& top = heap_.front();
    const Transfer& t = pool_[top.xfer];
    if (t.state == XferState::kActive && top.gen == t.est_gen) break;
    std::pop_heap(heap_.begin(), heap_.end(), HeapCmp{});
    heap_.pop_back();
  }
  if (heap_.empty()) return;
  ++timer_gen_;
  const std::uint64_t gen = timer_gen_;
  engine_->call_at(heap_.front().t, [this, gen] {
    if (gen == timer_gen_) on_timer();
  });
}

void Network::on_timer() {
  const Time now = engine_->now();
  while (!heap_.empty()) {
    const HeapEntry top = heap_.front();
    Transfer& t = pool_[top.xfer];
    if (t.state != XferState::kActive || top.gen != t.est_gen) {
      std::pop_heap(heap_.begin(), heap_.end(), HeapCmp{});
      heap_.pop_back();
      continue;
    }
    if (top.t > now) break;
    std::pop_heap(heap_.begin(), heap_.end(), HeapCmp{});
    heap_.pop_back();
    settle(t, now);
    if (t.remaining <= kDoneEpsBytes) {
      complete(top.xfer, now);
    } else {
      // Tick rounding left a sliver; re-estimate (converges within a tick).
      push_estimate(top.xfer, now);
    }
  }
  arm_timer();
}

void Network::abort_transfers_from(int src_node) {
  GCR_CHECK(src_node >= 0 && src_node < num_nodes());
  if (!routed()) return;
  // Source-side purge, synchronous on the owning shard: pending slots stop
  // resolving for the egress protocol and unhook their triggers (a killed
  // sender's waiters are unwound separately; firing here would wake them).
  // Slots are NOT recycled — each one's fabric-posted finalize op (egress-
  // done for transfers that beat the abort, release for dropped ones) is
  // still in flight and remains the sole recycler.
  Lane& lane = lanes_[static_cast<std::size_t>(node_shard(src_node))];
  for (OpSlot& s : lane.slots) {
    if (s.pending && s.src == src_node) {
      s.pending = false;
      s.egress = nullptr;
    }
  }
  // The abort travels the same injection edge and canonical queue as the
  // sends, keyed by the same per-node counter: the flush orders it after
  // every send the node issued before dying — even same-tick ones — and
  // before anything a respawned incarnation issues.
  const Time now = engine_for(src_node).now();
  const std::uint64_t abort_seq =
      node_seq_[static_cast<std::size_t>(src_node)]++;
  post_to_fabric(src_node, now + inject_latency(),
                 SmallFn([this, src_node, abort_seq] {
                   enqueue_fabric_op(src_node, abort_seq, nullptr);
                 }));
}

void Network::drop_transfer(std::uint32_t idx, Time now) {
  Transfer& t = pool_[idx];
  fabric_dropped_ += t.bytes;
  OpSlot* op = t.op;
  post_from_fabric(t.src, now + inject_latency(),
                   SmallFn([this, op] { finalize_slot(op); }));
  free_transfer(idx);
}

void Network::do_abort(std::int32_t node, std::uint64_t abort_seq, Time now) {
  NodeState& ns = nodes_[static_cast<std::size_t>(node)];

  for (std::uint32_t q = ns.q_head; q != kNil;) {
    const std::uint32_t next = pool_[q].next_queued;
    GCR_ASSERT(pool_[q].src_seq < abort_seq);
    --queued_count_;
    drop_transfer(q, now);
    q = next;
  }
  ns.q_head = ns.q_tail = kNil;

  for (std::uint32_t idx = 0; idx < pool_.size(); ++idx) {
    Transfer& t = pool_[idx];
    if (t.state != XferState::kActive || t.src != node ||
        t.src_seq >= abort_seq) {
      continue;
    }
    const Route route = t.route;
    for (int h = 0; h < route.nhops; ++h) {
      link_remove(route.links[static_cast<std::size_t>(h)], idx, h);
    }
    --active_count_;
    --ns.admitted;
    drop_transfer(idx, now);
    for (int h = 0; h < route.nhops; ++h) {
      resettle_members(route.links[static_cast<std::size_t>(h)], now, kNil,
                       /*inserted=*/false);
    }
  }
  GCR_ASSERT(ns.admitted == 0);
}

}  // namespace gcr::sim
