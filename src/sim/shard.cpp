#include "sim/shard.hpp"

#include <algorithm>
#include <barrier>
#include <thread>
#include <tuple>

#include "util/assert.hpp"

namespace gcr::sim {

ShardedEngine::ShardedEngine(int num_shards, Time lookahead)
    : lookahead_(std::max<Time>(1, lookahead)) {
  GCR_CHECK_MSG(num_shards >= 1, "need at least one shard");
  engines_.reserve(static_cast<std::size_t>(num_shards));
  for (int i = 0; i < num_shards; ++i) {
    engines_.push_back(std::make_unique<Engine>());
  }
  const std::size_t s = static_cast<std::size_t>(num_shards);
  box_.resize(s * s);
  merge_.resize(s);
  next_time_.assign(s, kTimeMax);
  window_until_.assign(s, kTimeMax);
}

ShardedEngine::~ShardedEngine() = default;

void ShardedEngine::post_at(int from, int to, Time t, SmallFn fn) {
  GCR_ASSERT(from >= 0 && from < num_shards());
  GCR_ASSERT(to >= 0 && to < num_shards());
  if (from == to) {
    shard(to).call_at(t, std::move(fn));
    return;
  }
  // The conservative protocol is only sound if a cross-shard effect cannot
  // land inside the destination's current window: arrival must trail the
  // sender's clock by at least the lookahead the horizons were built from.
  GCR_CHECK_MSG(t >= shard(from).now() + lookahead_,
                "cross-shard post violates the lookahead horizon");
  box_[static_cast<std::size_t>(from) * static_cast<std::size_t>(num_shards()) +
       static_cast<std::size_t>(to)]
      .push_back(Msg{t, std::move(fn)});
}

void ShardedEngine::drain_inbox(int dst) {
  const std::size_t s = static_cast<std::size_t>(num_shards());
  std::vector<MergeRef>& refs = merge_[static_cast<std::size_t>(dst)];
  refs.clear();
  for (std::size_t src = 0; src < s; ++src) {
    const std::vector<Msg>& b = box_[src * s + static_cast<std::size_t>(dst)];
    for (std::size_t k = 0; k < b.size(); ++k) {
      refs.push_back(MergeRef{b[k].at, static_cast<std::uint32_t>(src),
                              static_cast<std::uint32_t>(k)});
    }
  }
  if (refs.empty()) return;
  // Deterministic destination sequencing: arrivals merge by (time, source
  // shard, send order), so the seq numbers call_at hands out do not depend
  // on which thread filled which mailbox first.
  std::sort(refs.begin(), refs.end(), [](const MergeRef& a, const MergeRef& b) {
    return std::tie(a.at, a.src, a.idx) < std::tie(b.at, b.src, b.idx);
  });
  Engine& eng = shard(dst);
  for (const MergeRef& r : refs) {
    Msg& m = box_[static_cast<std::size_t>(r.src) * s +
                  static_cast<std::size_t>(dst)][r.idx];
    eng.call_at(m.at, std::move(m.fn));
  }
  for (std::size_t src = 0; src < s; ++src) {
    box_[src * s + static_cast<std::size_t>(dst)].clear();
  }
}

std::uint64_t ShardedEngine::drive(Time until,
                                   const std::function<bool()>* keep_going) {
  const int s = num_shards();
  if (s == 1) {
    // The literal single-threaded path: no threads, no barriers, no
    // mailboxes — byte-identical to driving the Engine directly.
    return keep_going != nullptr ? engines_[0]->run_while(*keep_going)
                                 : engines_[0]->run(until);
  }

  stop_.store(false, std::memory_order_relaxed);
  done_ = false;

  auto completion = [this, until, s]() noexcept {
    Time g = kTimeMax;
    for (const Time t : next_time_) g = std::min(g, t);
    if (g != kTimeMax && g > round_time_) round_time_ = g;
    done_ = g == kTimeMax || g > until ||
            stop_.load(std::memory_order_relaxed);
    // A peer with an empty queue is not necessarily inert: with model state
    // resident on every shard it is usually just blocked on mail this round's
    // window is about to send. The earliest any shard can acquire new work is
    // the globally earliest event plus one lookahead (the mail that wakes
    // it), so an idle peer's sends reach us no earlier than g + 2L. Ignoring
    // idle peers entirely — sound while all model state lived on the home
    // shard — lets a resident shard run ahead to a far-future timer and take
    // the woken peer's replies in its past.
    const Time wake =
        g < kTimeMax - lookahead_ ? g + lookahead_ : kTimeMax;
    for (int i = 0; i < s; ++i) {
      Time h = kTimeMax;
      for (int j = 0; j < s; ++j) {
        if (j != i) h = std::min(h, next_time_[static_cast<std::size_t>(j)]);
      }
      h = std::min(h, wake);
      // Safe horizon: peers' earliest sends arrive >= h + lookahead, so
      // everything strictly before that — i.e. <= h + lookahead - 1 — is
      // causally closed for this shard.
      if (h < kTimeMax - lookahead_) {
        h = h + lookahead_ - 1;
      } else {
        h = kTimeMax;
      }
      window_until_[static_cast<std::size_t>(i)] = std::min(h, until);
    }
  };

  std::barrier plan(s, completion);
  std::barrier<> quiesce(s);
  std::vector<std::uint64_t> processed(static_cast<std::size_t>(s), 0);

  auto worker = [&](int i) {
    Engine& eng = *engines_[static_cast<std::size_t>(i)];
    const std::function<bool()>* pred = i == 0 ? keep_going : nullptr;
    while (true) {
      // Producers quiesced at the previous barrier; merge this round's
      // arrivals, then publish the exact next-event time for the horizon
      // computation in the plan barrier's completion.
      drain_inbox(i);
      next_time_[static_cast<std::size_t>(i)] = eng.next_event_time();
      plan.arrive_and_wait();
      if (done_) break;
      processed[static_cast<std::size_t>(i)] +=
          eng.run_window(window_until_[static_cast<std::size_t>(i)], pred);
      if (pred != nullptr && !(*pred)()) {
        stop_.store(true, std::memory_order_relaxed);
      }
      quiesce.arrive_and_wait();
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(s) - 1);
  for (int i = 1; i < s; ++i) threads.emplace_back(worker, i);
  worker(0);
  for (std::thread& t : threads) t.join();

  std::uint64_t total = 0;
  for (const std::uint64_t n : processed) total += n;
  if (keep_going == nullptr) {
    // Apply Engine::run's end-of-run clock-advance rule per shard (the
    // queues hold nothing at or before `until`, so this dispatches nothing).
    for (const std::unique_ptr<Engine>& e : engines_) total += e->run(until);
  }
  return total;
}

std::uint64_t ShardedEngine::run(Time until) { return drive(until, nullptr); }

std::uint64_t ShardedEngine::run_while(
    const std::function<bool()>& keep_going) {
  return drive(kTimeMax, &keep_going);
}

bool ShardedEngine::idle() const {
  for (const std::unique_ptr<Engine>& e : engines_) {
    if (!e->idle()) return false;
  }
  for (const std::vector<Msg>& b : box_) {
    if (!b.empty()) return false;
  }
  return true;
}

Time ShardedEngine::virtual_now() const {
  Time t = engines_[0]->now();
  if (num_shards() > 1 && round_time_ > t) t = round_time_;
  return t;
}

Time ShardedEngine::max_now() const {
  Time t = 0;
  for (const std::unique_ptr<Engine>& e : engines_) t = std::max(t, e->now());
  return t;
}

std::uint64_t ShardedEngine::events_processed() const {
  std::uint64_t total = 0;
  for (const std::unique_ptr<Engine>& e : engines_) {
    total += e->events_processed();
  }
  return total;
}

}  // namespace gcr::sim
