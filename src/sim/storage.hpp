// Storage devices: local disks, burst buffers, and shared checkpoint/PFS
// servers, with a fair-share contention model.
//
// A device admits up to `concurrency` transfers at once; admitted transfers
// FAIR-SHARE the device bandwidth (each progresses at bandwidth/n while n
// are active, progress resettled on every arrival and departure). Requests
// beyond the admission limit queue FIFO. `concurrency == 1` (the default)
// degenerates to the original strict-FIFO single-slot device and is
// byte-identical to it: the K=1 path posts exactly the same engine events
// as the pre-fair-share implementation, so existing figure campaigns
// reproduce bit-for-bit.
//
// Writers/readers are coroutines; kill-safety is two-layered: a waiter
// killed while queued releases its admission slot (Semaphore protocol), and
// a transfer killed mid-flight is removed from the fair-share set on unwind
// so the survivors immediately speed up (no stranded bandwidth).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/awaitables.hpp"
#include "sim/co.hpp"
#include "sim/engine.hpp"

namespace gcr::sim {

/// Device cost model. One instance describes one physical device (or one
/// server of a striped set); tier composition lives above (ckpt/tiers.hpp).
struct StorageParams {
  double bandwidth_Bps = 50e6;  ///< sustained sequential bandwidth (bytes/s)
  double latency_s = 5e-3;      ///< per-request setup (seek / RPC), serial
  /// Transfers served concurrently; they fair-share `bandwidth_Bps`.
  /// 1 = strict FIFO (the legacy single-slot device, bit-reproducible).
  int concurrency = 1;
};

class StorageDevice {
 public:
  /// `engine` must outlive the device. Negative/zero bandwidth or
  /// concurrency is a configuration bug (asserted in the constructor).
  StorageDevice(Engine& engine, std::string name, const StorageParams& params);

  const std::string& name() const { return name_; }
  const StorageParams& params() const { return params_; }
  /// The engine this device's queueing and timers run on — IO against the
  /// device must be issued from coroutines on this engine.
  Engine& engine() { return *engine_; }

  /// Writes `bytes`; completes when the data is durable on this device.
  /// Queues FIFO behind the admission limit, then fair-shares bandwidth
  /// with the other admitted transfers. Kill-safe: a killed writer frees
  /// its slot and its bandwidth share.
  Co<void> write(std::int64_t bytes) {
    return transfer(bytes, /*is_write=*/true, nullptr);
  }

  /// Like write(), but invokes `on_transfer_start` once the device admits
  /// the transfer (after any queueing) — for callers that model work
  /// blocked only during the physical transfer, not the queue wait.
  Co<void> write(std::int64_t bytes, std::function<void()> on_transfer_start) {
    return transfer(bytes, /*is_write=*/true, std::move(on_transfer_start));
  }

  /// Reads `bytes`; completes when the data is in memory. Same queueing,
  /// fair-share, and kill-safety contract as write().
  Co<void> read(std::int64_t bytes) {
    return transfer(bytes, /*is_write=*/false, nullptr);
  }

  /// Pure duration of one unqueued, uncontended transfer (for analytic
  /// estimates): latency_s + bytes / bandwidth_Bps.
  Time transfer_duration(std::int64_t bytes) const {
    return from_seconds(params_.latency_s +
                        static_cast<double>(bytes) / params_.bandwidth_Bps);
  }

  std::int64_t bytes_written() const { return bytes_written_; }
  std::int64_t bytes_read() const { return bytes_read_; }
  /// Requests waiting for admission (not yet transferring).
  std::size_t queue_length() const { return slot_.queue_length(); }
  /// Transfers currently sharing the device bandwidth.
  int active_transfers() const { return in_flight_; }
  /// High-water mark of concurrently admitted transfers over the run.
  int peak_active_transfers() const { return peak_in_flight_; }

 private:
  /// One admitted transfer in the fair-share set. `remaining` is settled
  /// lazily: it is exact only at settle points (arrival, departure, timer).
  struct Active {
    std::uint64_t id;
    double remaining;  ///< bytes still to move at the last settle point
    Trigger* done;     ///< fired when remaining reaches zero
  };

  /// Removes a killed transfer from the fair-share set on unwind (the
  /// completion path removes it first, making the guard a no-op).
  struct ShareGuard {
    StorageDevice* dev;
    std::uint64_t id;
    ~ShareGuard() { dev->abandon(id); }
  };

  Co<void> transfer(std::int64_t bytes, bool is_write,
                    std::function<void()> on_transfer_start);
  /// Fair-share stream for concurrency > 1: joins the active set, waits for
  /// the settled completion. Caller holds an admission permit throughout.
  Co<void> shared_transfer(std::int64_t bytes);

  /// Advances every active transfer's `remaining` to now at bandwidth/n.
  void settle();
  /// Fires and erases every active transfer whose remaining hit zero.
  void complete_ready();
  /// Arms the completion timer for the smallest remaining transfer;
  /// `resched_gen_` invalidates timers armed before a state change.
  void reschedule();
  void on_timer();
  void abandon(std::uint64_t id);

  Engine* engine_;
  std::string name_;
  StorageParams params_;
  Semaphore slot_;
  std::int64_t bytes_written_ = 0;
  std::int64_t bytes_read_ = 0;
  int in_flight_ = 0;
  int peak_in_flight_ = 0;

  // Fair-share state (empty while concurrency == 1).
  std::vector<Active> active_;
  Time last_settle_ = 0;
  std::uint64_t resched_gen_ = 0;
  std::uint64_t next_xfer_id_ = 1;
};

}  // namespace gcr::sim
