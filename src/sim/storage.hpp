// Storage devices: local disks and shared remote checkpoint servers.
//
// A device serializes requests FIFO (one transfer at a time) — the dominant
// effect when 32 processes funnel checkpoint images into one NFS server.
// Writers/readers are coroutines; a killed waiter releases its slot.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "sim/awaitables.hpp"
#include "sim/co.hpp"
#include "sim/engine.hpp"

namespace gcr::sim {

struct StorageParams {
  double bandwidth_Bps = 50e6;  ///< sustained sequential bandwidth
  double latency_s = 5e-3;      ///< per-request setup (seek / RPC)
};

class StorageDevice {
 public:
  StorageDevice(Engine& engine, std::string name, const StorageParams& params)
      : engine_(&engine), name_(std::move(name)), params_(params),
        slot_(engine, 1) {}

  const std::string& name() const { return name_; }

  /// Writes `bytes`; completes when the data is durable. FIFO-serialized
  /// with all other requests on this device.
  Co<void> write(std::int64_t bytes) {
    return transfer(bytes, /*is_write=*/true, nullptr);
  }

  /// Like write(), but invokes `on_transfer_start` once the device slot is
  /// acquired (after any queueing) — for callers that model work blocked
  /// only during the physical transfer, not the queue wait.
  Co<void> write(std::int64_t bytes, std::function<void()> on_transfer_start) {
    return transfer(bytes, /*is_write=*/true, std::move(on_transfer_start));
  }

  /// Reads `bytes`; completes when the data is in memory.
  Co<void> read(std::int64_t bytes) {
    return transfer(bytes, /*is_write=*/false, nullptr);
  }

  /// Pure duration of one unqueued transfer (for analytic estimates).
  Time transfer_duration(std::int64_t bytes) const {
    return from_seconds(params_.latency_s +
                        static_cast<double>(bytes) / params_.bandwidth_Bps);
  }

  std::int64_t bytes_written() const { return bytes_written_; }
  std::int64_t bytes_read() const { return bytes_read_; }
  std::size_t queue_length() const { return slot_.queue_length(); }

 private:
  Co<void> transfer(std::int64_t bytes, bool is_write,
                    std::function<void()> on_transfer_start);

  Engine* engine_;
  std::string name_;
  StorageParams params_;
  Semaphore slot_;
  std::int64_t bytes_written_ = 0;
  std::int64_t bytes_read_ = 0;
};

}  // namespace gcr::sim
