#include "sim/topology.hpp"

#include <string>

#include "util/assert.hpp"

namespace gcr::sim {
namespace {

double pick_bw(double class_bw, double default_bw) {
  return class_bw > 0 ? class_bw : default_bw;
}

/// Smallest even k >= 4 with k^3/4 hosts >= n.
int derive_fattree_k(int n) {
  for (int k = 4;; k += 2) {
    const long long hosts = static_cast<long long>(k) * k * k / 4;
    if (hosts >= n) return k;
    GCR_CHECK(k < 1024);  // 2^28 hosts; anything past this is a config bug
  }
}

/// Smallest balanced dragonfly (a = 2p, h = p) covering n nodes.
int derive_dragonfly_p(int n) {
  for (int p = 1;; ++p) {
    // hosts = g*a*p with a = 2p, h = p, g = a*h + 1 = 2p^2 + 1.
    const long long g = 2LL * p * p + 1;
    if (g * (2 * p) * p >= n) return p;
    GCR_CHECK(p < 4096);
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Flat

FlatTopology::FlatTopology(int num_nodes, double bandwidth_Bps)
    : num_nodes_(num_nodes), bw_(bandwidth_Bps) {
  GCR_CHECK(num_nodes > 0);
  GCR_CHECK(bandwidth_Bps > 0);
}

void FlatTopology::resolve(int src, [[maybe_unused]] int dst,
                           std::span<const std::int32_t>, Rng&,
                           Route& out) const {
  GCR_ASSERT(src != dst);
  GCR_ASSERT(src >= 0 && src < num_nodes_ && dst >= 0 && dst < num_nodes_);
  out.nhops = 0;
  out.push(src);  // the sender's egress link
}

std::string FlatTopology::describe() const {
  return "flat(nodes=" + std::to_string(num_nodes_) + ")";
}

// ---------------------------------------------------------------------------
// Fat-tree

FatTreeTopology::FatTreeTopology(int num_nodes, int k, FatTreeRouting routing,
                                 double access_Bps, double fabric_Bps,
                                 double core_Bps)
    : k_(k), half_(k / 2), hosts_(k * k * k / 4), routing_(routing),
      access_bw_(access_Bps), fabric_bw_(fabric_Bps), core_bw_(core_Bps) {
  GCR_CHECK(k >= 4 && k % 2 == 0);
  GCR_CHECK(hosts_ >= num_nodes);
  GCR_CHECK(access_bw_ > 0 && fabric_bw_ > 0 && core_bw_ > 0);
}

double FatTreeTopology::link_bandwidth_Bps(std::int32_t link) const {
  switch (link_class(link)) {
    case LinkClass::kAccess: return access_bw_;
    case LinkClass::kFabric: return fabric_bw_;
    case LinkClass::kGlobal: return core_bw_;
  }
  GCR_CHECK(false);
  return 0;
}

LinkClass FatTreeTopology::link_class(std::int32_t link) const {
  GCR_ASSERT(link >= 0 && link < num_links());
  if (link < 2 * hosts_) return LinkClass::kAccess;
  if (link < 4 * hosts_) return LinkClass::kFabric;
  return LinkClass::kGlobal;
}

void FatTreeTopology::resolve(int src, int dst,
                              std::span<const std::int32_t> load, Rng&,
                              Route& out) const {
  GCR_ASSERT(src != dst);
  GCR_ASSERT(src >= 0 && src < hosts_ && dst >= 0 && dst < hosts_);
  out.nhops = 0;
  out.push(host_up(src));
  const int ps = pod_of(src), pd = pod_of(dst);
  const int es = edge_of(src), ed = edge_of(dst);
  if (ps == pd && es == ed) {
    out.push(host_down(dst));
    return;
  }

  // Up-path choice: which aggregation switch (and, cross-pod, which core
  // behind it). Deterministic hashes the destination so any single pair
  // always takes one path (ECMP-style); adaptive takes the least-loaded
  // uplink at each stage, lowest index on ties.
  int a;
  if (routing_ == FatTreeRouting::kDeterministic) {
    a = dst % half_;
  } else {
    a = 0;
    std::int32_t best = load[static_cast<std::size_t>(edge_agg_up(ps, es, 0))];
    for (int cand = 1; cand < half_; ++cand) {
      const std::int32_t l =
          load[static_cast<std::size_t>(edge_agg_up(ps, es, cand))];
      if (l < best) {
        best = l;
        a = cand;
      }
    }
  }
  out.push(edge_agg_up(ps, es, a));

  if (ps != pd) {
    int j;
    if (routing_ == FatTreeRouting::kDeterministic) {
      j = (dst / half_) % half_;
    } else {
      j = 0;
      std::int32_t best =
          load[static_cast<std::size_t>(agg_core_up(ps, a, 0))];
      for (int cand = 1; cand < half_; ++cand) {
        const std::int32_t l =
            load[static_cast<std::size_t>(agg_core_up(ps, a, cand))];
        if (l < best) {
          best = l;
          j = cand;
        }
      }
    }
    out.push(agg_core_up(ps, a, j));
    out.push(core_agg_down(pd, a, j));  // core (a, j) reaches agg a everywhere
  }
  out.push(agg_edge_down(pd, a, ed));
  out.push(host_down(dst));
}

int FatTreeTopology::min_hops(int src, int dst) const {
  if (src == dst) return 0;
  if (pod_of(src) != pod_of(dst)) return 6;
  return edge_of(src) == edge_of(dst) ? 2 : 4;
}

std::string FatTreeTopology::describe() const {
  return "fattree(k=" + std::to_string(k_) +
         ", hosts=" + std::to_string(hosts_) +
         ", links=" + std::to_string(num_links()) + ", " +
         (routing_ == FatTreeRouting::kAdaptive ? "adaptive" : "deterministic") +
         ")";
}

// ---------------------------------------------------------------------------
// Dragonfly

DragonflyTopology::DragonflyTopology(int num_nodes, int a, int p, int h,
                                     DragonflyRouting routing,
                                     double access_Bps, double local_Bps,
                                     double global_Bps)
    : a_(a), p_(p), h_(h), groups_(a * h + 1), hosts_(groups_ * a * p),
      routing_(routing), access_bw_(access_Bps), local_bw_(local_Bps),
      global_bw_(global_Bps) {
  GCR_CHECK(a >= 2 && p >= 1 && h >= 1);
  GCR_CHECK(hosts_ >= num_nodes);
  GCR_CHECK(access_bw_ > 0 && local_bw_ > 0 && global_bw_ > 0);
}

double DragonflyTopology::link_bandwidth_Bps(std::int32_t link) const {
  switch (link_class(link)) {
    case LinkClass::kAccess: return access_bw_;
    case LinkClass::kFabric: return local_bw_;
    case LinkClass::kGlobal: return global_bw_;
  }
  GCR_CHECK(false);
  return 0;
}

LinkClass DragonflyTopology::link_class(std::int32_t link) const {
  GCR_ASSERT(link >= 0 && link < num_links());
  if (link < 2 * hosts_) return LinkClass::kAccess;
  if (link < 2 * hosts_ + groups_ * a_ * (a_ - 1)) return LinkClass::kFabric;
  return LinkClass::kGlobal;
}

int DragonflyTopology::push_global_segment(int gsrc, int from_router, int gdst,
                                           Route& out) const {
  const int gc = channel_to(gsrc, gdst);
  const int gateway = gc / h_;
  if (from_router != gateway) out.push(local_link(gsrc, from_router, gateway));
  out.push(global_link(gsrc, gc));
  return landing_router(gsrc, gdst);
}

void DragonflyTopology::resolve(int src, int dst,
                                std::span<const std::int32_t>, Rng& rng,
                                Route& out) const {
  GCR_ASSERT(src != dst);
  GCR_ASSERT(src >= 0 && src < hosts_ && dst >= 0 && dst < hosts_);
  out.nhops = 0;
  const int gs = group_of(src), gd = group_of(dst);
  const int rs = router_of(src), rd = router_of(dst);
  out.push(terminal_up(src));

  if (gs == gd) {
    if (rs != rd) out.push(local_link(gs, rs, rd));
    out.push(terminal_down(dst));
    return;
  }

  int at_group = gs;
  int at_router = rs;
  if (routing_ == DragonflyRouting::kValiant && groups_ >= 3) {
    // Detour through a uniformly random group other than src's and dst's:
    // draw from [0, g-2) and skip over the excluded pair in ascending order.
    int gm = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(groups_ - 2)));
    const int lo = gs < gd ? gs : gd;
    const int hi = gs < gd ? gd : gs;
    if (gm >= lo) ++gm;
    if (gm >= hi) ++gm;
    at_router = push_global_segment(at_group, at_router, gm, out);
    at_group = gm;
  }
  at_router = push_global_segment(at_group, at_router, gd, out);
  if (at_router != rd) out.push(local_link(gd, at_router, rd));
  out.push(terminal_down(dst));
}

int DragonflyTopology::min_hops(int src, int dst) const {
  if (src == dst) return 0;
  const int gs = group_of(src), gd = group_of(dst);
  const int rs = router_of(src), rd = router_of(dst);
  if (gs == gd) return rs == rd ? 2 : 3;
  const int gateway = channel_to(gs, gd) / h_;
  const int landing = landing_router(gs, gd);
  return 3 + (rs != gateway ? 1 : 0) + (landing != rd ? 1 : 0);
}

std::string DragonflyTopology::describe() const {
  return "dragonfly(a=" + std::to_string(a_) + ", p=" + std::to_string(p_) +
         ", h=" + std::to_string(h_) + ", groups=" + std::to_string(groups_) +
         ", hosts=" + std::to_string(hosts_) + ", " +
         (routing_ == DragonflyRouting::kValiant ? "valiant" : "minimal") +
         ")";
}

// ---------------------------------------------------------------------------
// Factory

std::unique_ptr<Topology> make_topology(const TopologyParams& params,
                                        int num_nodes,
                                        double default_bandwidth_Bps) {
  GCR_CHECK(num_nodes > 0);
  GCR_CHECK(default_bandwidth_Bps > 0);
  const double access = pick_bw(params.access_bandwidth_Bps,
                                default_bandwidth_Bps);
  const double fabric = pick_bw(params.fabric_bandwidth_Bps,
                                default_bandwidth_Bps);
  const double global = pick_bw(params.global_bandwidth_Bps,
                                default_bandwidth_Bps);
  switch (params.kind) {
    case TopologyKind::kFlat:
      return std::make_unique<FlatTopology>(num_nodes, access);
    case TopologyKind::kFatTree: {
      const int k =
          params.fattree_k > 0 ? params.fattree_k : derive_fattree_k(num_nodes);
      return std::make_unique<FatTreeTopology>(
          num_nodes, k, params.fattree_routing, access, fabric, global);
    }
    case TopologyKind::kDragonfly: {
      int a = params.df_routers_per_group;
      int p = params.df_nodes_per_router;
      int h = params.df_global_per_router;
      if (a == 0 && p == 0 && h == 0) {
        p = derive_dragonfly_p(num_nodes);
        a = 2 * p;
        h = p;
      } else {
        if (p == 0) p = 1;
        if (a == 0) a = 2 * p;
        if (h == 0) h = (a + 1) / 2;
      }
      return std::make_unique<DragonflyTopology>(
          num_nodes, a, p, h, params.df_routing, access, fabric, global);
    }
  }
  GCR_CHECK(false);
  return nullptr;
}

const char* topology_kind_name(TopologyKind kind) {
  switch (kind) {
    case TopologyKind::kFlat: return "flat";
    case TopologyKind::kFatTree: return "fattree";
    case TopologyKind::kDragonfly: return "dragonfly";
  }
  return "?";
}

TopologyKind parse_topology_kind(const std::string& name) {
  if (name == "flat") return TopologyKind::kFlat;
  if (name == "fattree" || name == "fat-tree") return TopologyKind::kFatTree;
  if (name == "dragonfly") return TopologyKind::kDragonfly;
  GCR_CHECK(false && "unknown topology (expected flat|fattree|dragonfly)");
  return TopologyKind::kFlat;
}

}  // namespace gcr::sim
