// Basic awaitables: Delay, Trigger, Semaphore, CountBarrier.
//
// Every awaitable that suspends on the engine follows the Waiter protocol
// (sim/engine.hpp): register via suspend_current (a pooled slot, no heap
// traffic), resume through fire / fire_at, and call finish_wait first thing
// in await_resume so kills turn into ProcessKilled unwinds. Handles left in
// wait queues after a kill are detected with waiter_live() — a recycled
// slot's bumped generation reads as dead, so nothing needs shared ownership.
//
// All of these are shard-local: an awaitable holds one Engine& and its
// waiter slot lives in that engine's pool, so waiter and firer must share a
// shard (sim/shard.hpp). To fire a trigger across shards, post_at a
// callback to the owning shard and fire from there.
#pragma once

#include <coroutine>
#include <cstdint>
#include <deque>
#include <vector>

#include "sim/engine.hpp"
#include "util/assert.hpp"

namespace gcr::sim {

/// co_await delay(engine, dt): suspend for dt simulated nanoseconds.
/// dt == 0 still yields through the event queue (fairness point).
/// Negative durations are a bug in the caller's cost model — asserted, not
/// clamped; from_seconds() already clamps floating-point noise to zero.
class Delay {
 public:
  Delay(Engine& engine, Time duration) : engine(engine), duration(duration) {
    GCR_CHECK_MSG(duration >= 0,
                  "negative Delay duration; fix the caller's cost model "
                  "(from_seconds already clamps floating-point noise to 0)");
  }

  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) {
    waiter_ = engine.suspend_current(h);
    engine.fire_at(engine.now() + duration, waiter_);
  }
  void await_resume() { engine.finish_wait(waiter_); }

 private:
  Engine& engine;
  Time duration;
  WaiterHandle waiter_;
};

inline Delay delay(Engine& engine, Time dt) { return Delay{engine, dt}; }

/// Broadcast event. wait() suspends until fire(); if already fired, returns
/// immediately. reset() re-arms (next waiters block again).
class Trigger {
 public:
  explicit Trigger(Engine& engine) : engine_(&engine) {}

  /// True once fire() ran and reset() has not; wait() returns immediately.
  bool fired() const { return fired_; }

  /// Latches the trigger and wakes every current waiter (their resumes
  /// dispatch through the event queue in registration order). Idempotent.
  void fire() {
    fired_ = true;
    for (WaiterHandle w : waiters_) engine_->fire(w);
    waiters_.clear();
  }

  /// Re-arms: later wait() calls block again. Waiters released by an
  /// earlier fire() are unaffected.
  void reset() { fired_ = false; }

  auto wait() {
    struct Awaiter {
      Trigger* trigger;
      WaiterHandle waiter;
      bool await_ready() const noexcept { return trigger->fired_; }
      void await_suspend(std::coroutine_handle<> h) {
        waiter = trigger->engine_->suspend_current(h);
        trigger->waiters_.push_back(waiter);
      }
      void await_resume() {
        if (waiter) trigger->engine_->finish_wait(waiter);
      }
    };
    return Awaiter{this, {}};
  }

 private:
  Engine* engine_;
  bool fired_ = false;
  std::vector<WaiterHandle> waiters_;
};

/// Counting semaphore with FIFO handoff; models serialized resources (disk
/// queues, NIC DMA engines). A waiter killed after being granted a permit
/// but before resuming returns its permit so the resource is not leaked.
class Semaphore {
 public:
  Semaphore(Engine& engine, std::int64_t permits)
      : engine_(&engine), permits_(permits) {}

  /// Permits not currently held (may be claimed by queued waiters on the
  /// next drain).
  std::int64_t available() const { return permits_; }
  /// Waiters suspended in acquire() (stale killed entries included until
  /// a drain skips them).
  std::size_t queue_length() const { return waiters_.size(); }

  /// Returns n permits and hands them to queued live waiters FIFO.
  /// Never blocks; safe to call from non-coroutine code.
  void release(std::int64_t n = 1) {
    permits_ += n;
    drain();
  }

  /// co_await sem.acquire(): suspends until a permit is granted (FIFO).
  /// A waiter killed after the grant but before resuming returns its
  /// permit during the ProcessKilled unwind.
  auto acquire() {
    struct Awaiter {
      Semaphore* sem;
      WaiterHandle waiter;
      bool granted = false;
      bool immediate = false;

      bool await_ready() {
        if (sem->permits_ > 0 && sem->waiters_.empty()) {
          --sem->permits_;
          immediate = true;
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) {
        waiter = sem->engine_->suspend_current(h);
        sem->waiters_.push_back({waiter, &granted});
      }
      void await_resume() {
        if (immediate) return;
        try {
          sem->engine_->finish_wait(waiter);
        } catch (...) {
          if (granted) sem->release(1);  // don't strand the resource
          throw;
        }
        GCR_ASSERT(granted);
      }
    };
    return Awaiter{this, {}};
  }

 private:
  struct Entry {
    WaiterHandle waiter;
    bool* granted;
  };

  void drain() {
    while (permits_ > 0 && !waiters_.empty()) {
      Entry e = waiters_.front();
      waiters_.pop_front();
      if (!engine_->waiter_live(e.waiter)) continue;  // killed while queued
      --permits_;
      *e.granted = true;
      engine_->fire(e.waiter);
    }
  }

  Engine* engine_;
  std::int64_t permits_;
  std::deque<Entry> waiters_;
};

/// RAII permit holder for Semaphore.
/// Usage: co_await sem.acquire(); ... sem.release();  -- or use with_permit.
class ScopedPermit {
 public:
  explicit ScopedPermit(Semaphore& sem) : sem_(&sem) {}
  ScopedPermit(const ScopedPermit&) = delete;
  ScopedPermit& operator=(const ScopedPermit&) = delete;
  ~ScopedPermit() {
    if (sem_) sem_->release(1);
  }

 private:
  Semaphore* sem_;
};

/// Reusable rendezvous for a fixed participant count: the k-th arrival
/// releases everyone and the barrier re-arms for the next generation.
/// NOTE: protocol barriers inside checkpoint coordination use real control
/// messages (costed); this is for tests and intra-node synchronization.
class CountBarrier {
 public:
  CountBarrier(Engine& engine, std::size_t parties)
      : engine_(&engine), parties_(parties), gate_(engine) {
    GCR_CHECK(parties > 0);
  }

  Co<void> arrive_and_wait() {
    Trigger* my_gate = &gate_;
    if (++arrived_ == parties_) {
      arrived_ = 0;
      my_gate->fire();
      my_gate->reset();
      co_return;
    }
    // Trigger generation handling: waiters registered before fire() are all
    // released by it; reset() only affects later arrivals.
    co_await my_gate->wait();
  }

 private:
  Engine* engine_;
  std::size_t parties_;
  std::size_t arrived_ = 0;
  Trigger gate_;
};

}  // namespace gcr::sim
