// Discrete-event engine driving coroutine processes.
//
// Single-threaded. Events are totally ordered by (time, insertion sequence),
// so one seed gives bit-identical runs. Two event kinds share the queue:
// plain callbacks (daemons, request delivery) and waiter resumptions
// (suspended process coroutines).
//
// Kill protocol: processes are never destroyed from the outside. kill() marks
// the process and claims its currently-armed waiter for immediate resumption;
// the awaitable's await_resume sees the flag and throws ProcessKilled, which
// unwinds the coroutine chain (RAII deregisters everything) up to the root
// driver, which reports the exit. See DESIGN.md §2.1.
#pragma once

#include <coroutine>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "sim/co.hpp"
#include "sim/time.hpp"

namespace gcr::sim {

class Engine;

/// One suspended coroutine waiting for a resumption. Exactly one resumption
/// source may "claim" it (fired flag); later sources see fired and back off.
/// Held by shared_ptr so a cancelled timer or channel entry can outlive the
/// coroutine frame safely.
struct Waiter {
  std::coroutine_handle<> handle;
  class Proc* proc = nullptr;
  bool fired = false;
};

using WaiterPtr = std::shared_ptr<Waiter>;

enum class ExitKind { kFinished, kKilled };

/// Execution context of one simulated process (one coroutine chain).
class Proc {
 public:
  Proc(std::uint64_t pid, std::string name) : pid_(pid), name_(std::move(name)) {}

  std::uint64_t pid() const { return pid_; }
  const std::string& name() const { return name_; }
  bool killed() const { return killed_; }
  bool alive() const { return alive_; }

 private:
  friend class Engine;
  std::uint64_t pid_;
  std::string name_;
  bool killed_ = false;
  bool alive_ = true;    // false once the root driver finishes/unwinds
  WaiterPtr active_wait; // innermost armed engine waiter, if suspended
};

using ProcPtr = std::shared_ptr<Proc>;

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  Time now() const { return now_; }
  std::uint64_t events_processed() const { return events_processed_; }

  // --- plain callbacks ---
  void call_at(Time t, std::function<void()> fn);
  void call_after(Time dt, std::function<void()> fn) {
    call_at(now_ + dt, std::move(fn));
  }
  void post(std::function<void()> fn) { call_at(now_, std::move(fn)); }

  // --- process lifecycle ---
  /// Spawns a process executing `body` starting at the current time.
  /// `on_exit` (optional) runs when the body finishes or is killed.
  ProcPtr spawn(std::string name, Co<void> body,
                std::function<void(Proc&, ExitKind)> on_exit = {});

  /// Marks the process killed and arranges for ProcessKilled to be thrown at
  /// its next (immediate) resumption. Idempotent. Must not be called by the
  /// process on itself.
  void kill(Proc& proc);

  /// Number of processes whose root driver has not yet exited.
  std::size_t live_process_count() const { return live_processes_; }

  // --- main loop ---
  /// Runs events until the queue empties or `until` is passed (events at
  /// exactly `until` are executed). Returns number of events processed.
  std::uint64_t run(Time until = kTimeMax);

  /// Runs events while `keep_going()` is true (checked before each event)
  /// and the queue is non-empty. Used to stop at job completion without
  /// draining long-lived daemons' future events.
  std::uint64_t run_while(const std::function<bool()>& keep_going);

  /// True if no events remain.
  bool idle() const { return queue_.empty(); }

  // --- awaitable support (used by awaitables.hpp / channel.hpp etc.) ---
  /// Registers the currently-running process's suspension; returns the waiter
  /// to hand to a resumption source. Works for non-process coroutines too
  /// (proc == nullptr), which are then not killable.
  WaiterPtr suspend_current(std::coroutine_handle<> h);

  /// Claims the waiter and schedules its resumption now. Returns false if it
  /// was already claimed (caller must not consider it woken).
  bool fire(const WaiterPtr& w);

  /// Schedules a resumption attempt at time t (claims at dequeue time).
  void fire_at(Time t, WaiterPtr w);

  /// Called at the top of every await_resume for an engine suspension:
  /// clears the active wait and throws ProcessKilled if the process was
  /// killed while suspended.
  void finish_wait(const WaiterPtr& w);

  /// The process currently executing, or nullptr (callbacks, top level).
  Proc* current() const { return current_; }

  /// Internal: called by the root driver when a process body exits.
  void note_root_exit(Proc& proc, ExitKind kind);

 private:
  struct Event {
    Time at;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct EventOrder {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;  // min-heap on time
      return a.seq > b.seq;                  // FIFO among equal times
    }
  };

  void resume_waiter(const WaiterPtr& w);

  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_pid_ = 1;
  std::uint64_t events_processed_ = 0;
  std::size_t live_processes_ = 0;
  Proc* current_ = nullptr;
  std::priority_queue<Event, std::vector<Event>, EventOrder> queue_;
};

}  // namespace gcr::sim
