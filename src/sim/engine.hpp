// Discrete-event engine driving coroutine processes.
//
// Single-threaded. Events are totally ordered by (time, insertion sequence),
// so one seed gives bit-identical runs. The queue is three structures
// sharing one sequence space: events scheduled at the current timestamp
// (claimed resumes, post(), zero-delay timers — the bulk of channel/protocol
// traffic) go through an O(1) FIFO ring; future events land in a
// hierarchical timing wheel (8 levels x 64 slots, 6 bits of nanoseconds per
// level — O(1) insert, lazily cascaded toward level 0 as the cursor
// advances; see DESIGN.md §15.1); and events beyond the wheel's ~78-hour
// span — or behind its lazily-advanced cursor — overflow into a flat,
// reserve()-able 4-ary min-heap. All three hold 24-byte typed Event records
// — a tagged union of {waiter resume, armed timer, small callback}.
// Dispatch always takes the globally smallest (time, seq), so the split is
// invisible to ordering. Steady-state traffic never touches the allocator:
// waiters live in an engine-owned slot pool recycled through a free list,
// callback captures sit in SmallFn small-buffer storage pooled the same
// way, and wheel slot vectors keep their high-water capacity.
//
// Waiter protocol: a suspended coroutine registers exactly one pooled waiter
// slot and gets back a generation-counted WaiterHandle. Exactly one
// resumption source may claim the slot (fired flag); later sources see
// fired — or, once the slot has been recycled, a bumped generation — and
// back off. fire() claims immediately and resumes through a same-time heap
// entry; fire_at() arms a timer that claims at dispatch.
//
// Kill protocol: processes are never destroyed from the outside. kill()
// marks the process and claims its currently-armed waiter for immediate
// resumption; the awaitable's await_resume sees the flag (finish_wait) and
// throws ProcessKilled, which unwinds the coroutine chain (RAII deregisters
// everything) up to the root driver, which reports the exit. Stale handles
// left behind in channels or semaphore queues are neutralized by the
// generation counter instead of shared ownership. See DESIGN.md §2.1.
#pragma once

#include <array>
#include <coroutine>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/co.hpp"
#include "sim/smallfn.hpp"
#include "sim/time.hpp"

namespace gcr::sim {

class Engine;

/// Generation-counted reference to a pooled waiter slot. Copyable value
/// type; a handle whose slot has since been recycled (generation mismatch)
/// behaves like an already-claimed waiter: fire() returns false,
/// waiter_live() returns false.
struct WaiterHandle {
  static constexpr std::uint32_t kNullSlot = 0xffffffffu;

  std::uint32_t slot = kNullSlot;
  std::uint32_t gen = 0;

  explicit operator bool() const { return slot != kNullSlot; }
  friend bool operator==(const WaiterHandle&, const WaiterHandle&) = default;
};

enum class ExitKind { kFinished, kKilled };

/// Execution context of one simulated process (one coroutine chain).
class Proc {
 public:
  Proc(std::uint64_t pid, std::string name) : pid_(pid), name_(std::move(name)) {}

  std::uint64_t pid() const { return pid_; }
  const std::string& name() const { return name_; }
  bool killed() const { return killed_; }
  bool alive() const { return alive_; }

 private:
  friend class Engine;
  std::uint64_t pid_;
  std::string name_;
  bool killed_ = false;
  bool alive_ = true;          // false once the root driver finishes/unwinds
  WaiterHandle active_wait_;   // innermost armed engine waiter, if suspended
};

using ProcPtr = std::shared_ptr<Proc>;

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulated time (integer nanoseconds since start).
  Time now() const { return now_; }
  /// Events dispatched so far (monotone; perf harness metric).
  std::uint64_t events_processed() const { return events_processed_; }

  /// Pre-sizes the event heap and the waiter/callback pools so a workload
  /// of known scale runs allocation-free from the first event.
  void reserve(std::size_t events, std::size_t waiters);

  // --- plain callbacks ---
  void call_at(Time t, SmallFn fn);
  void call_after(Time dt, SmallFn fn) { call_at(now_ + dt, std::move(fn)); }
  void post(SmallFn fn) { call_at(now_, std::move(fn)); }

  // --- process lifecycle ---
  /// Spawns a process executing `body` starting at the current time.
  /// `on_exit` (optional) runs when the body finishes or is killed.
  ProcPtr spawn(std::string name, Co<void> body,
                std::function<void(Proc&, ExitKind)> on_exit = {});

  /// Marks the process killed and arranges for ProcessKilled to be thrown at
  /// its next (immediate) resumption. Idempotent. Must not be called by the
  /// process on itself.
  void kill(Proc& proc);

  /// Number of processes whose root driver has not yet exited.
  std::size_t live_process_count() const { return live_processes_; }

  // --- main loop ---
  /// Runs events until the queue empties or `until` is passed. Events at
  /// exactly `until` are executed. Returns the number of events processed.
  ///
  /// Clock-advance rule: `until` must not be in the past (asserted). On
  /// return, now() is `until` if the queue drained and `until` is finite;
  /// if events beyond `until` remain, now() stays at the last executed
  /// event's timestamp (or its entry value if nothing ran). A bare run()
  /// (until == kTimeMax) never advances past the last event.
  std::uint64_t run(Time until = kTimeMax);

  /// Runs events while `keep_going()` is true (checked before each event)
  /// and the queue is non-empty. Used to stop at job completion without
  /// draining long-lived daemons' future events.
  std::uint64_t run_while(const std::function<bool()>& keep_going);

  /// Bounded-window variant used by the sharded driver (sim/shard.hpp):
  /// like run(until) but never force-advances now() past the last executed
  /// event, so repeated windows leave the clock exactly where a single
  /// uninterrupted run would. `keep_going` (optional) is checked before
  /// each event, as in run_while.
  std::uint64_t run_window(Time until,
                           const std::function<bool()>* keep_going = nullptr);

  /// Exact timestamp of the earliest pending event, or kTimeMax if idle.
  /// May lazily cascade wheel slots (state mutation invisible to ordering).
  /// The conservative-lookahead horizon computation relies on exactness.
  Time next_event_time();

  /// True if no events remain.
  bool idle() const {
    return heap_.empty() && due_count_ == 0 && wheel_count_ == 0;
  }

  // --- awaitable support (used by awaitables.hpp / channel.hpp etc.) ---
  /// Registers the currently-running process's suspension in the waiter
  /// pool; returns the handle to give to a resumption source. Works for
  /// non-process coroutines too (proc == nullptr), which are then not
  /// killable.
  WaiterHandle suspend_current(std::coroutine_handle<> h);

  /// Claims the waiter and schedules its resumption at the current time
  /// (next in FIFO order). Returns false if it was already claimed or the
  /// slot has been recycled (caller must not consider it woken).
  bool fire(WaiterHandle w);

  /// Arms a timer: a resumption attempt at time t that claims at dispatch.
  void fire_at(Time t, WaiterHandle w);

  /// True if the handle still references its original, unclaimed waiter.
  /// Queues that skip dead entries (channels, semaphores) test this instead
  /// of holding shared ownership of a Waiter object.
  bool waiter_live(WaiterHandle w) const {
    return w.slot < waiter_pool_.size() &&
           waiter_pool_[w.slot].gen == w.gen && !waiter_pool_[w.slot].fired;
  }

  /// Called at the top of every await_resume for an engine suspension:
  /// throws ProcessKilled if the process was killed while suspended. The
  /// waiter slot itself was already recycled when the resume dispatched.
  void finish_wait(WaiterHandle w) {
    (void)w;
    if (current_ && current_->killed_) throw ProcessKilled{};
  }

  /// The process currently executing, or nullptr (callbacks, top level).
  Proc* current() const { return current_; }

  /// Internal: called by the root driver when a process body exits.
  void note_root_exit(Proc& proc, ExitKind kind);

  // --- introspection (tests, stress harnesses) ---
  /// Total waiter slots ever created; stays flat once the pool recycles.
  std::size_t waiter_pool_size() const { return waiter_pool_.size(); }
  std::size_t event_queue_depth() const {
    return heap_.size() + due_count_ + wheel_count_;
  }
  /// Events currently parked in wheel slots (excludes due ring and the
  /// overflow heap).
  std::size_t timer_wheel_depth() const { return wheel_count_; }
  /// Events in the far-future / behind-cursor overflow heap.
  std::size_t overflow_heap_depth() const { return heap_.size(); }

 private:
  enum EventKind : std::uint64_t {
    kCallback = 0,  ///< slot indexes callback_pool_
    kTimer = 1,     ///< armed fire_at: claim waiter at dispatch, else no-op
    kResume = 2,    ///< claimed resume: waiter generation must still match
  };

  /// 24-byte POD queue record; sift operations are plain copies. The kind
  /// tag lives in the low bits of `key` so (at, key) compares exactly like
  /// (at, seq) — the sequence occupies the high bits and is monotone.
  struct Event {
    Time at;
    std::uint64_t key;  ///< (seq << 2) | EventKind
    std::uint32_t slot;
    std::uint32_t gen;
  };

  struct WaiterSlot {
    std::coroutine_handle<> handle{};
    Proc* proc = nullptr;
    std::uint32_t gen = 0;
    bool fired = false;
    std::uint32_t next_free = WaiterHandle::kNullSlot;
  };

  /// (at, key) lexicographic order, written as branch-free boolean algebra:
  /// the min-of-children scans in the heap sift are data-dependent and
  /// mispredict badly as jumps, but compile to setcc/cmov in this form.
  static bool event_before(const Event& a, const Event& b) {
    return (a.at < b.at) | ((a.at == b.at) & (a.key < b.key));
  }
  std::uint64_t next_key(EventKind kind) {
    return (next_seq_++ << 2) | static_cast<std::uint64_t>(kind);
  }
  // --- hierarchical timing wheel (DESIGN.md §15.1) ---
  // Level L buckets nanoseconds by bits [6L, 6L+6); a slot chains the
  // events of one bucket in insertion (= seq) order through an intrusive
  // linked list over a pooled node array, so appends, cascades (relinks,
  // no copies) and pops are O(1) and allocation-free once the pool — one
  // shared arena sized by total pending events, not per slot — is warm.
  // The cursor trails dispatch: it only moves (lazily, during peeks) to
  // the start of the lowest occupied slot, cascading that slot's events
  // one level down. Invariants: every wheel event's time is >= wheel_cur_
  // (late arrivals — only possible behind an advanced cursor — divert to
  // the heap), and each slot chain is seq-sorted (cascade-on-entry
  // delivers a bucket's older events before any direct insert can target
  // it). Level-0 slots hold exactly one absolute nanosecond, so their
  // heads are exact minima.
  static constexpr int kWheelBits = 6;
  static constexpr int kWheelSlots = 1 << kWheelBits;
  static constexpr int kWheelLevels = 8;
  static constexpr std::uint32_t kNilNode = 0xffffffffu;

  struct WheelNode {
    Event ev;
    std::uint32_t next = kNilNode;
  };
  struct WheelSlot {
    std::uint32_t head = kNilNode;
    std::uint32_t tail = kNilNode;
  };

  /// Routes to the due ring (t == now), a wheel slot, or the heap.
  void schedule(Time t, EventKind kind, std::uint32_t slot, std::uint32_t gen);
  void heap_push(const Event& e);
  void heap_pop_top();
  void grow_due(std::size_t capacity_pow2);
  void due_push(const Event& e);
  /// O(1): places e by the highest bit-group where e.at differs from the
  /// cursor; beyond level 7 (or behind the cursor) overflows to the heap.
  void wheel_insert(const Event& e);
  /// Appends pooled node n to the slot its event's time selects against the
  /// current cursor (caller has ruled out the heap cases).
  void wheel_place(std::uint32_t n);
  /// Moves the cursor to t (<= every pending wheel event), cascading the
  /// entered slot at each level the jump crosses, highest level first.
  /// Entering a new top-level window also drains every overflow-heap event
  /// that now fits the wheel span — one batched promotion per cascade tick
  /// instead of a per-entry check on the dispatch path.
  void wheel_advance(Time t);
  /// Batched far-future promotion: pops heap events in (at, seq) order into
  /// the wheel while the top lies inside the span ahead of the cursor.
  void promote_overflow();
  /// Exact earliest wheel event if its time is <= bound, else nullptr.
  /// Cascades as needed; never advances the cursor past `bound`. A
  /// single-event chain in the lowest occupied slot of the lowest occupied
  /// level is already the exact minimum (see the proof in the .cpp), so it
  /// is returned in place instead of being cascaded down level by level.
  const Event* wheel_peek(Time bound);
  /// Removes the event wheel_peek() just returned (the head of the slot the
  /// peek recorded in peek_lvl_/peek_slot_).
  void wheel_pop_front();
  /// Earliest possible wheel event time without cascading: exact when level
  /// 0 is occupied, otherwise the lowest occupied slot's start time.
  Time wheel_lower_bound() const;
  /// Pops the globally smallest event if its time is <= until.
  bool pop_next(Time until, Event& out);
  void dispatch(const Event& ev);
  void resume_slot(std::uint32_t slot);

  WaiterHandle alloc_waiter(std::coroutine_handle<> h, Proc* proc);
  void release_waiter(std::uint32_t slot);

  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_pid_ = 1;
  std::uint64_t events_processed_ = 0;
  std::size_t live_processes_ = 0;
  Proc* current_ = nullptr;

  std::vector<Event> heap_;  ///< 4-ary min-heap: overflow/far-future events

  /// Timing-wheel storage: slot (level, idx) lives at [level*64 + idx];
  /// nodes are pooled and recycled through an intrusive free list.
  std::array<WheelSlot, kWheelLevels * kWheelSlots> wheel_slots_{};
  std::array<std::uint64_t, kWheelLevels> wheel_bmp_{};  ///< slot occupancy
  std::vector<WheelNode> wheel_pool_;
  std::uint32_t wheel_free_ = kNilNode;
  std::size_t wheel_count_ = 0;
  Time wheel_cur_ = 0;
  /// Slot the last successful wheel_peek() found the minimum in; consumed
  /// by wheel_pop_front() (peeks at higher levels no longer force the event
  /// all the way down to level 0 first).
  int peek_lvl_ = 0;
  std::size_t peek_slot_ = 0;

  /// Power-of-two ring of events due at now_; drained (in seq order,
  /// interleaved with same-time wheel/heap entries) before the clock
  /// advances.
  std::vector<Event> due_;
  std::size_t due_head_ = 0;
  std::size_t due_count_ = 0;

  std::vector<WaiterSlot> waiter_pool_;
  std::uint32_t waiter_free_head_ = WaiterHandle::kNullSlot;

  std::vector<SmallFn> callback_pool_;
  std::vector<std::uint32_t> callback_free_;
};

}  // namespace gcr::sim
