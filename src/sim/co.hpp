// Co<T>: lazy child coroutine with symmetric transfer back to the awaiting
// parent. All simulated process code is written as `Co<...>` functions and
// composed with `co_await`.
//
// Semantics:
//  * Lazily started: the child begins executing when the parent co_awaits it.
//  * The Co object owns the child frame; destroying an un-awaited or
//    partially-run Co destroys the frame (this is what unwinds nested calls
//    when a process is killed).
//  * Exceptions propagate to the awaiting parent. `ProcessKilled` is thrown
//    by the engine when a killed process resumes and unwinds the whole chain.
//  * A coroutine chain is pinned to the shard (Engine) it was spawned on;
//    resumption always comes from that engine's dispatch loop, never from
//    another shard's thread (sim/shard.hpp).
#pragma once

#include <coroutine>
#include <exception>
#include <utility>

#include "util/assert.hpp"

namespace gcr::sim {

/// Thrown into a process coroutine at its next resumption after kill().
/// Deliberately not derived from std::exception so generic `catch
/// (std::exception&)` blocks in application code cannot swallow it.
struct ProcessKilled {};

template <class T = void>
class [[nodiscard]] Co;

namespace detail {

struct FinalAwaiter {
  bool await_ready() noexcept { return false; }
  template <class Promise>
  std::coroutine_handle<> await_suspend(
      std::coroutine_handle<Promise> h) noexcept {
    auto continuation = h.promise().continuation;
    return continuation ? continuation : std::noop_coroutine();
  }
  void await_resume() noexcept {}
};

struct CoPromiseBase {
  std::coroutine_handle<> continuation = nullptr;
  std::exception_ptr error;

  std::suspend_always initial_suspend() noexcept { return {}; }
  FinalAwaiter final_suspend() noexcept { return {}; }
  void unhandled_exception() { error = std::current_exception(); }
};

}  // namespace detail

template <class T>
class [[nodiscard]] Co {
 public:
  struct promise_type : detail::CoPromiseBase {
    alignas(T) unsigned char value_buf[sizeof(T)];
    bool has_value = false;

    Co get_return_object() {
      return Co(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    template <class U>
    void return_value(U&& v) {
      ::new (static_cast<void*>(value_buf)) T(std::forward<U>(v));
      has_value = true;
    }
    ~promise_type() {
      if (has_value) value_ptr()->~T();
    }
    T* value_ptr() { return std::launder(reinterpret_cast<T*>(value_buf)); }
  };

  Co(Co&& other) noexcept : handle_(std::exchange(other.handle_, nullptr)) {}
  Co(const Co&) = delete;
  Co& operator=(const Co&) = delete;
  Co& operator=(Co&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  ~Co() { destroy(); }

  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) {
    GCR_ASSERT(handle_ && !handle_.done());
    handle_.promise().continuation = parent;
    return handle_;  // start the child now
  }
  T await_resume() {
    auto& p = handle_.promise();
    if (p.error) std::rethrow_exception(p.error);
    GCR_ASSERT(p.has_value);
    return std::move(*p.value_ptr());
  }

 private:
  friend struct promise_type;
  explicit Co(std::coroutine_handle<promise_type> h) : handle_(h) {}
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }

  std::coroutine_handle<promise_type> handle_ = nullptr;
};

template <>
class [[nodiscard]] Co<void> {
 public:
  struct promise_type : detail::CoPromiseBase {
    Co get_return_object() {
      return Co(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_void() {}
  };

  Co(Co&& other) noexcept : handle_(std::exchange(other.handle_, nullptr)) {}
  Co(const Co&) = delete;
  Co& operator=(const Co&) = delete;
  Co& operator=(Co&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  ~Co() { destroy(); }

  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) {
    GCR_ASSERT(handle_ && !handle_.done());
    handle_.promise().continuation = parent;
    return handle_;
  }
  void await_resume() {
    auto& p = handle_.promise();
    if (p.error) std::rethrow_exception(p.error);
  }

 private:
  friend struct promise_type;
  explicit Co(std::coroutine_handle<promise_type> h) : handle_(h) {}
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }

  std::coroutine_handle<promise_type> handle_ = nullptr;
};

}  // namespace gcr::sim
