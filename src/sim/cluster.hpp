// Cluster: the simulated machine — engine + network + disks + jitter + seed.
//
// One Cluster is one reproducible experiment environment. Every stochastic
// component draws from a substream derived from (run seed, stream id), so
// adding a new consumer never perturbs existing streams.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "sim/jitter.hpp"
#include "sim/network.hpp"
#include "sim/storage.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace gcr::sim {

struct ClusterParams {
  int num_nodes = 16;
  std::uint64_t seed = 1;
  NetParams net;
  StorageParams local_disk{/*bandwidth_Bps=*/100e6, /*latency_s=*/5e-3};
  int num_remote_servers = 0;  ///< checkpoint servers (0 = local disk only)
  StorageParams remote_server{/*bandwidth_Bps=*/12.5e6, /*latency_s=*/10e-3};
  JitterParams jitter;
};

class Cluster {
 public:
  explicit Cluster(const ClusterParams& params)
      : params_(params),
        network_(engine_, params.num_nodes, params.net),
        jitter_(params.jitter) {
    GCR_CHECK(params.num_nodes > 0);
    local_disks_.reserve(static_cast<std::size_t>(params.num_nodes));
    for (int n = 0; n < params.num_nodes; ++n) {
      local_disks_.push_back(std::make_unique<StorageDevice>(
          engine_, "disk" + std::to_string(n), params.local_disk));
    }
    for (int s = 0; s < params.num_remote_servers; ++s) {
      remote_servers_.push_back(std::make_unique<StorageDevice>(
          engine_, "nfs" + std::to_string(s), params.remote_server));
    }
  }

  const ClusterParams& params() const { return params_; }
  Engine& engine() { return engine_; }
  Network& network() { return network_; }
  const JitterModel& jitter_model() const { return jitter_; }

  int num_nodes() const { return params_.num_nodes; }

  StorageDevice& local_disk(int node) {
    GCR_CHECK(node >= 0 && node < num_nodes());
    return *local_disks_[static_cast<std::size_t>(node)];
  }

  bool has_remote_storage() const { return !remote_servers_.empty(); }

  /// The checkpoint server a given node writes to (round-robin assignment,
  /// matching the paper's 4-isolated-server setup).
  StorageDevice& remote_server_for(int node) {
    GCR_CHECK(has_remote_storage());
    return *remote_servers_[static_cast<std::size_t>(node) %
                            remote_servers_.size()];
  }

  /// Deterministic substream for a named consumer.
  Rng make_rng(std::uint64_t stream_id) const {
    return Rng(mix_seed(params_.seed, stream_id));
  }

  /// One jitter sample from the given stream.
  Time draw_jitter(Rng& rng) const { return jitter_.draw(rng); }

 private:
  ClusterParams params_;
  Engine engine_;
  Network network_;
  JitterModel jitter_;
  std::vector<std::unique_ptr<StorageDevice>> local_disks_;
  std::vector<std::unique_ptr<StorageDevice>> remote_servers_;
};

}  // namespace gcr::sim
