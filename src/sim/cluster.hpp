// Cluster: the simulated machine — engine + network + storage + jitter +
// seed.
//
// One Cluster is one reproducible experiment environment. Every stochastic
// component draws from a substream derived from (run seed, stream id), so
// adding a new consumer never perturbs existing streams.
//
// Storage comes in two independent families:
//   * the legacy direct devices — one local disk per node plus optional
//     shared NFS checkpoint servers (the paper's Gideon-300 setup);
//   * the tier hierarchy (enabled by num_burst_buffers > 0) — a per-node
//     memory-speed staging buffer, shared burst buffers, and one parallel
//     file system. Tier *policy* (capacity, eviction, drain, residency)
//     lives in ckpt/tiers.hpp; the cluster only owns the devices.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "sim/jitter.hpp"
#include "sim/network.hpp"
#include "sim/shard.hpp"
#include "sim/storage.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace gcr::sim {

/// Device parameters for the checkpoint tier hierarchy (DESIGN.md §13).
/// Devices are only constructed when `num_burst_buffers > 0`, so the
/// default cluster is structurally identical to the pre-tier one.
struct StorageTierParams {
  /// Per-node staging buffer (page-cache / RAM speed; one per node).
  StorageParams node_buffer{/*bandwidth_Bps=*/2e9, /*latency_s=*/1e-5,
                            /*concurrency=*/1};
  int num_burst_buffers = 0;  ///< 0 = tier hierarchy absent
  /// Shared burst-buffer servers (nodes map round-robin, like NFS).
  StorageParams burst_buffer{/*bandwidth_Bps=*/400e6, /*latency_s=*/1e-3,
                             /*concurrency=*/4};
  /// The parallel file system: one shared device whose `concurrency`
  /// models its stripe width (K writers fair-share the aggregate pipe).
  StorageParams pfs{/*bandwidth_Bps=*/50e6, /*latency_s=*/5e-3,
                    /*concurrency=*/8};
};

struct ClusterParams {
  int num_nodes = 16;
  std::uint64_t seed = 1;
  /// Engine shards (sim/shard.hpp). 1 (default) is the literal
  /// single-threaded engine. With N > 1, the cluster owns N engines driven
  /// in conservative-lookahead windows; model objects currently all live on
  /// the home shard (see DESIGN.md §15.3), so peer shards host only
  /// explicitly-placed work.
  int num_shards = 1;
  /// Conservative-lookahead horizon in seconds; 0 derives the minimum
  /// cross-node latency from `net` (Network::min_remote_latency_s).
  double lookahead_s = 0;
  NetParams net;
  StorageParams local_disk{/*bandwidth_Bps=*/100e6, /*latency_s=*/5e-3};
  int num_remote_servers = 0;  ///< checkpoint servers (0 = local disk only)
  StorageParams remote_server{/*bandwidth_Bps=*/12.5e6, /*latency_s=*/10e-3};
  StorageTierParams tiers;
  JitterParams jitter;
};

class Cluster {
 public:
  explicit Cluster(const ClusterParams& params)
      : params_(params),
        shards_(params.num_shards,
                from_seconds(params.lookahead_s > 0
                                 ? params.lookahead_s
                                 : Network::min_remote_latency_s(params.net))),
        network_(shards_.home(), params.num_nodes, params.net,
                 mix_seed(params.seed, /*stream_id=*/0x726f757465)),
        jitter_(params.jitter) {
    GCR_CHECK(params.num_nodes > 0);
    Engine& engine_ = shards_.home();  // devices all live on the home shard
    local_disks_.reserve(static_cast<std::size_t>(params.num_nodes));
    for (int n = 0; n < params.num_nodes; ++n) {
      local_disks_.push_back(std::make_unique<StorageDevice>(
          engine_, "disk" + std::to_string(n), params.local_disk));
    }
    for (int s = 0; s < params.num_remote_servers; ++s) {
      remote_servers_.push_back(std::make_unique<StorageDevice>(
          engine_, "nfs" + std::to_string(s), params.remote_server));
    }
    if (params.tiers.num_burst_buffers > 0) {
      node_buffers_.reserve(static_cast<std::size_t>(params.num_nodes));
      for (int n = 0; n < params.num_nodes; ++n) {
        node_buffers_.push_back(std::make_unique<StorageDevice>(
            engine_, "nbuf" + std::to_string(n), params.tiers.node_buffer));
      }
      for (int b = 0; b < params.tiers.num_burst_buffers; ++b) {
        burst_buffers_.push_back(std::make_unique<StorageDevice>(
            engine_, "bb" + std::to_string(b), params.tiers.burst_buffer));
      }
      pfs_ = std::make_unique<StorageDevice>(engine_, "pfs", params.tiers.pfs);
    }
  }

  const ClusterParams& params() const { return params_; }
  /// The home shard's engine — where every model object (network, storage,
  /// protocol daemons) lives. Single-shard clusters are exactly the old
  /// single-engine cluster.
  Engine& engine() { return shards_.home(); }
  /// The shard set; drive runs through this so multi-shard clusters get the
  /// windowed coordinator (shards().run_while == engine().run_while at S=1).
  ShardedEngine& shards() { return shards_; }
  Network& network() { return network_; }
  const JitterModel& jitter_model() const { return jitter_; }

  int num_nodes() const { return params_.num_nodes; }

  /// The node's private direct-attached disk.
  StorageDevice& local_disk(int node) {
    GCR_CHECK(node >= 0 && node < num_nodes());
    return *local_disks_[static_cast<std::size_t>(node)];
  }

  /// Shard-resident mode: re-creates each node's private disk bound to the
  /// node's shard engine, so a rank's direct checkpoint IO runs entirely on
  /// its own shard. Only legal before any disk has been used (the devices
  /// are rebuilt with fresh queues). Shared direct devices (NFS) stay home;
  /// resident configs exclude them.
  void rebind_local_disks(const std::vector<int>& node_to_shard) {
    GCR_CHECK(node_to_shard.size() ==
              static_cast<std::size_t>(params_.num_nodes));
    node_shard_ = node_to_shard;
    for (int n = 0; n < params_.num_nodes; ++n) {
      Engine& eng = shards_.shard(node_to_shard[static_cast<std::size_t>(n)]);
      local_disks_[static_cast<std::size_t>(n)] =
          std::make_unique<StorageDevice>(eng, "disk" + std::to_string(n),
                                          params_.local_disk);
    }
  }

  /// Shard-resident tiered storage: re-creates each node's staging buffer
  /// bound to the node's shard engine, so the memory-speed image copy (and
  /// a warm-restart read) runs on the rank's own shard. The shared tiers
  /// (burst buffers, PFS) stay home — ckpt::TierStore reaches them through
  /// its canonical op queue (DESIGN.md §15.3). No-op without a tier
  /// hierarchy; only legal before any buffer has been used.
  void rebind_node_buffers(const std::vector<int>& node_to_shard) {
    GCR_CHECK(node_to_shard.size() ==
              static_cast<std::size_t>(params_.num_nodes));
    node_shard_ = node_to_shard;
    if (!has_tiered_storage()) return;
    for (int n = 0; n < params_.num_nodes; ++n) {
      Engine& eng = shards_.shard(node_to_shard[static_cast<std::size_t>(n)]);
      node_buffers_[static_cast<std::size_t>(n)] =
          std::make_unique<StorageDevice>(eng, "nbuf" + std::to_string(n),
                                          params_.tiers.node_buffer);
    }
  }

  /// The shard owning a node's model objects (0 for every node until a
  /// resident plan rebinds devices).
  int node_shard(int node) const {
    GCR_CHECK(node >= 0 && node < num_nodes());
    return node_shard_.empty() ? 0
                               : node_shard_[static_cast<std::size_t>(node)];
  }

  bool has_remote_storage() const { return !remote_servers_.empty(); }

  /// The checkpoint server a given node writes to (round-robin assignment,
  /// matching the paper's 4-isolated-server setup).
  StorageDevice& remote_server_for(int node) {
    GCR_CHECK(has_remote_storage());
    return *remote_servers_[static_cast<std::size_t>(node) %
                            remote_servers_.size()];
  }

  /// True when the burst-buffer/PFS tier hierarchy was configured.
  bool has_tiered_storage() const { return pfs_ != nullptr; }

  /// The node's memory-speed staging buffer (tier hierarchy only).
  StorageDevice& node_buffer(int node) {
    GCR_CHECK(has_tiered_storage());
    GCR_CHECK(node >= 0 && node < num_nodes());
    return *node_buffers_[static_cast<std::size_t>(node)];
  }

  /// The shared burst buffer a given node stages into (round-robin).
  StorageDevice& burst_buffer_for(int node) {
    GCR_CHECK(has_tiered_storage());
    return *burst_buffers_[static_cast<std::size_t>(node) %
                           burst_buffers_.size()];
  }

  /// The parallel file system (tier hierarchy only; one shared device).
  StorageDevice& pfs() {
    GCR_CHECK(has_tiered_storage());
    return *pfs_;
  }

  /// Deterministic substream for a named consumer.
  Rng make_rng(std::uint64_t stream_id) const {
    return Rng(mix_seed(params_.seed, stream_id));
  }

  /// One jitter sample from the given stream.
  Time draw_jitter(Rng& rng) const { return jitter_.draw(rng); }

 private:
  ClusterParams params_;
  std::vector<int> node_shard_;  ///< empty until a resident plan is set
  /// Declared before every device so the engines are destroyed last.
  ShardedEngine shards_;
  Network network_;
  JitterModel jitter_;
  std::vector<std::unique_ptr<StorageDevice>> local_disks_;
  std::vector<std::unique_ptr<StorageDevice>> remote_servers_;
  std::vector<std::unique_ptr<StorageDevice>> node_buffers_;
  std::vector<std::unique_ptr<StorageDevice>> burst_buffers_;
  std::unique_ptr<StorageDevice> pfs_;
};

}  // namespace gcr::sim
