#include "sim/storage.hpp"

#include "util/assert.hpp"

namespace gcr::sim {

Co<void> StorageDevice::transfer(std::int64_t bytes, bool is_write,
                                 std::function<void()> on_transfer_start) {
  GCR_CHECK(bytes >= 0);
  co_await slot_.acquire();
  ScopedPermit permit(slot_);
  if (on_transfer_start) on_transfer_start();
  co_await delay(*engine_, transfer_duration(bytes));
  if (is_write) {
    bytes_written_ += bytes;
  } else {
    bytes_read_ += bytes;
  }
}

}  // namespace gcr::sim
