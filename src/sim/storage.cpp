#include "sim/storage.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace gcr::sim {
namespace {

/// Completion threshold in bytes. Timer timestamps are integer nanoseconds,
/// so a settled `remaining` can carry sub-byte floating-point residue from
/// the rounded firing time; anything below half a byte is done. A residue
/// above the threshold (timer rounded short) re-arms a 1 ns timer — bounded
/// and deterministic.
constexpr double kDoneEps = 0.5;

}  // namespace

StorageDevice::StorageDevice(Engine& engine, std::string name,
                             const StorageParams& params)
    : engine_(&engine), name_(std::move(name)), params_(params),
      slot_(engine, params.concurrency) {
  GCR_CHECK_MSG(params_.bandwidth_Bps > 0, "storage bandwidth must be > 0");
  GCR_CHECK_MSG(params_.concurrency >= 1, "storage concurrency must be >= 1");
}

Co<void> StorageDevice::transfer(std::int64_t bytes, bool is_write,
                                 std::function<void()> on_transfer_start) {
  GCR_CHECK(bytes >= 0);
  co_await slot_.acquire();
  ScopedPermit permit(slot_);
  ++in_flight_;
  peak_in_flight_ = std::max(peak_in_flight_, in_flight_);
  struct FlightGuard {
    int* counter;
    ~FlightGuard() { --*counter; }
  } flight{&in_flight_};
  if (on_transfer_start) on_transfer_start();
  if (params_.concurrency == 1) {
    // Legacy strict-FIFO path: one delay while holding the single slot.
    // This posts exactly the events the pre-fair-share device posted, so
    // K=1 configurations reproduce historical outputs bit-for-bit.
    co_await delay(*engine_, transfer_duration(bytes));
  } else {
    // Per-request setup is serial work on the requester's side of the
    // pipe; only the byte stream itself is shared.
    co_await delay(*engine_, from_seconds(params_.latency_s));
    co_await shared_transfer(bytes);
  }
  if (is_write) {
    bytes_written_ += bytes;
  } else {
    bytes_read_ += bytes;
  }
}

Co<void> StorageDevice::shared_transfer(std::int64_t bytes) {
  Trigger done(*engine_);
  settle();
  complete_ready();
  const std::uint64_t id = next_xfer_id_++;
  active_.push_back({id, static_cast<double>(bytes), &done});
  ++resched_gen_;
  reschedule();
  ShareGuard guard{this, id};
  co_await done.wait();
}

void StorageDevice::settle() {
  const Time now = engine_->now();
  if (!active_.empty() && now > last_settle_) {
    const double moved = to_seconds(now - last_settle_) * params_.bandwidth_Bps /
                         static_cast<double>(active_.size());
    for (Active& a : active_) a.remaining -= moved;
  }
  last_settle_ = now;
}

void StorageDevice::complete_ready() {
  for (std::size_t i = 0; i < active_.size();) {
    if (active_[i].remaining <= kDoneEps) {
      Trigger* done = active_[i].done;
      active_.erase(active_.begin() + static_cast<std::ptrdiff_t>(i));
      done->fire();
    } else {
      ++i;
    }
  }
}

void StorageDevice::reschedule() {
  if (active_.empty()) return;
  double min_remaining = active_.front().remaining;
  for (const Active& a : active_) {
    min_remaining = std::min(min_remaining, a.remaining);
  }
  const double rate =
      params_.bandwidth_Bps / static_cast<double>(active_.size());
  const Time dt =
      std::max<Time>(1, from_seconds(std::max(0.0, min_remaining) / rate));
  engine_->call_at(engine_->now() + dt, [this, gen = resched_gen_] {
    if (gen == resched_gen_) on_timer();
  });
}

void StorageDevice::on_timer() {
  settle();
  complete_ready();
  ++resched_gen_;
  reschedule();
}

void StorageDevice::abandon(std::uint64_t id) {
  auto it = std::find_if(active_.begin(), active_.end(),
                         [id](const Active& a) { return a.id == id; });
  if (it == active_.end()) return;  // completed normally
  settle();
  active_.erase(it);
  complete_ready();  // survivors may round down to done at the new rate
  ++resched_gen_;
  reschedule();
}

}  // namespace gcr::sim
