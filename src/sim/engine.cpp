#include "sim/engine.hpp"

#include <utility>

#include "util/assert.hpp"
#include "util/log.hpp"

namespace gcr::sim {
namespace {

/// Eagerly-destroyed top-level coroutine that drives one process body.
/// initial_suspend is suspend_always (the engine schedules the first resume);
/// final_suspend is suspend_never so the frame frees itself on completion.
struct RootTask {
  struct promise_type {
    RootTask get_return_object() {
      return {std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception() {
      GCR_CHECK_MSG(false,
                    "exception escaped a simulated process; application "
                    "coroutines must only exit normally or via kill()");
    }
  };
  std::coroutine_handle<promise_type> handle;
};

}  // namespace

// Defined outside the anonymous namespace so it can be declared a friend if
// ever needed; only used by Engine::spawn.
static RootTask root_driver(Engine& eng, ProcPtr proc, Co<void> body,
                            std::function<void(Proc&, ExitKind)> on_exit) {
  ExitKind kind = ExitKind::kFinished;
  if (!proc->killed()) {
    try {
      co_await std::move(body);
    } catch (const ProcessKilled&) {
      kind = ExitKind::kKilled;
    }
  } else {
    kind = ExitKind::kKilled;  // killed before the first instruction ran
  }
  eng.note_root_exit(*proc, kind);
  if (on_exit) on_exit(*proc, kind);
}

void Engine::call_at(Time t, std::function<void()> fn) {
  GCR_ASSERT(t >= now_);
  queue_.push(Event{t, next_seq_++, std::move(fn)});
}

ProcPtr Engine::spawn(std::string name, Co<void> body,
                      std::function<void(Proc&, ExitKind)> on_exit) {
  auto proc = std::make_shared<Proc>(next_pid_++, std::move(name));
  ++live_processes_;
  RootTask root =
      root_driver(*this, proc, std::move(body), std::move(on_exit));
  auto w = std::make_shared<Waiter>();
  w->handle = root.handle;
  w->proc = proc.get();
  proc->active_wait = w;
  fire_at(now_, std::move(w));
  return proc;
}

void Engine::kill(Proc& proc) {
  GCR_CHECK_MSG(&proc != current_, "a process must not kill itself");
  if (proc.killed_ || !proc.alive_) return;
  proc.killed_ = true;
  if (proc.active_wait && !proc.active_wait->fired) {
    fire(proc.active_wait);
  }
  // If there is no active wait the process has been spawned but its start
  // event is still queued as a fired=false waiter... that case is covered:
  // the start waiter IS the active wait. A live process is always either
  // running (excluded above) or suspended with an active wait.
}

void Engine::note_root_exit(Proc& proc, ExitKind kind) {
  (void)kind;
  proc.alive_ = false;
  proc.active_wait.reset();
  GCR_ASSERT(live_processes_ > 0);
  --live_processes_;
}

std::uint64_t Engine::run(Time until) {
  std::uint64_t processed = 0;
  while (!queue_.empty() && queue_.top().at <= until) {
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    GCR_ASSERT(ev.at >= now_);
    now_ = ev.at;
    ev.fn();
    ++processed;
    ++events_processed_;
  }
  if (queue_.empty() && now_ < until && until != kTimeMax) now_ = until;
  return processed;
}

std::uint64_t Engine::run_while(const std::function<bool()>& keep_going) {
  std::uint64_t processed = 0;
  while (!queue_.empty() && keep_going()) {
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    GCR_ASSERT(ev.at >= now_);
    now_ = ev.at;
    ev.fn();
    ++processed;
    ++events_processed_;
  }
  return processed;
}

WaiterPtr Engine::suspend_current(std::coroutine_handle<> h) {
  auto w = std::make_shared<Waiter>();
  w->handle = h;
  w->proc = current_;
  if (current_) current_->active_wait = w;
  return w;
}

bool Engine::fire(const WaiterPtr& w) {
  if (w->fired) return false;
  w->fired = true;
  WaiterPtr keep = w;  // keep alive until the resume executes
  post([this, keep] { resume_waiter(keep); });
  return true;
}

void Engine::fire_at(Time t, WaiterPtr w) {
  call_at(t, [this, w = std::move(w)] {
    if (w->fired) return;  // claimed by another source (e.g. kill)
    w->fired = true;
    resume_waiter(w);
  });
}

void Engine::finish_wait(const WaiterPtr& w) {
  if (w->proc && w->proc->killed_) throw ProcessKilled{};
}

void Engine::resume_waiter(const WaiterPtr& w) {
  GCR_ASSERT(w->fired);
  Proc* prev = current_;
  current_ = w->proc;
  if (w->proc && w->proc->active_wait == w) w->proc->active_wait.reset();
  w->handle.resume();
  current_ = prev;
}

}  // namespace gcr::sim
