#include "sim/engine.hpp"

#include <algorithm>
#include <bit>
#include <utility>

#include "util/assert.hpp"
#include "util/log.hpp"

namespace gcr::sim {
namespace {

/// Eagerly-destroyed top-level coroutine that drives one process body.
/// initial_suspend is suspend_always (the engine schedules the first resume);
/// final_suspend is suspend_never so the frame frees itself on completion.
struct RootTask {
  struct promise_type {
    RootTask get_return_object() {
      return {std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception() {
      GCR_CHECK_MSG(false,
                    "exception escaped a simulated process; application "
                    "coroutines must only exit normally or via kill()");
    }
  };
  std::coroutine_handle<promise_type> handle;
};

}  // namespace

// Defined outside the anonymous namespace so it can be declared a friend if
// ever needed; only used by Engine::spawn.
static RootTask root_driver(Engine& eng, ProcPtr proc, Co<void> body,
                            std::function<void(Proc&, ExitKind)> on_exit) {
  ExitKind kind = ExitKind::kFinished;
  if (!proc->killed()) {
    try {
      co_await std::move(body);
    } catch (const ProcessKilled&) {
      kind = ExitKind::kKilled;
    }
  } else {
    kind = ExitKind::kKilled;  // killed before the first instruction ran
  }
  eng.note_root_exit(*proc, kind);
  if (on_exit) on_exit(*proc, kind);
}

// ---------------------------------------------------------- event queues

// 4-ary heap: half the depth of a binary heap and all four children on one
// or two cache lines (24-byte PODs), which wins on the pop-heavy dispatch
// loop even though each level compares up to four children.
namespace {
constexpr std::size_t kHeapArity = 4;
}

void Engine::heap_push(const Event& e) {
  heap_.push_back(e);
  std::size_t i = heap_.size() - 1;
  // Hole-based sift-up: shift parents down, write the new event once.
  while (i > 0) {
    const std::size_t parent = (i - 1) / kHeapArity;
    if (!event_before(e, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

void Engine::heap_pop_top() {
  const Event last = heap_.back();
  heap_.pop_back();
  const std::size_t n = heap_.size();
  if (n == 0) return;
  // Floyd's bottom-up deletion: walk the hole down along min-children to a
  // leaf comparing only siblings, then sift the displaced last element up
  // from there. `last` came off the bottom, so it almost never rises —
  // this skips the compare-against-last at every level of the plain
  // sift-down, the hottest loop in the engine.
  std::size_t hole = 0;
  while (true) {
    const std::size_t first = kHeapArity * hole + 1;
    if (first + kHeapArity <= n) {
      // All four children present: pairwise tree reduction keeps the
      // dependency chain at two compares instead of a three-long scan.
      const std::size_t a =
          first + (event_before(heap_[first + 1], heap_[first]) ? 1 : 0);
      const std::size_t b =
          first + 2 + (event_before(heap_[first + 3], heap_[first + 2]) ? 1 : 0);
      const std::size_t child = event_before(heap_[b], heap_[a]) ? b : a;
      heap_[hole] = heap_[child];
      hole = child;
    } else if (first < n) {
      std::size_t child = first;
      for (std::size_t c = first + 1; c < n; ++c) {
        if (event_before(heap_[c], heap_[child])) child = c;
      }
      heap_[hole] = heap_[child];
      hole = child;
    } else {
      break;
    }
  }
  while (hole > 0) {
    const std::size_t parent = (hole - 1) / kHeapArity;
    if (!event_before(last, heap_[parent])) break;
    heap_[hole] = heap_[parent];
    hole = parent;
  }
  heap_[hole] = last;
}

void Engine::grow_due(std::size_t capacity_pow2) {
  if (capacity_pow2 <= due_.size()) return;
  // Unwrap the ring into the bigger buffer in order.
  std::vector<Event> bigger(capacity_pow2);
  for (std::size_t k = 0; k < due_count_; ++k) {
    bigger[k] = due_[(due_head_ + k) & (due_.size() - 1)];
  }
  due_ = std::move(bigger);
  due_head_ = 0;
}

void Engine::due_push(const Event& e) {
  if (due_count_ == due_.size()) {
    grow_due(due_.empty() ? 64 : due_.size() * 2);
  }
  due_[(due_head_ + due_count_) & (due_.size() - 1)] = e;
  ++due_count_;
}

void Engine::schedule(Time t, EventKind kind, std::uint32_t slot,
                      std::uint32_t gen) {
  const Event e{t, next_key(kind), slot, gen};
  if (t == now_) {
    due_push(e);
  } else {
    wheel_insert(e);
  }
}

// -------------------------------------------------- hierarchical timing wheel

void Engine::wheel_place(std::uint32_t n) {
  const Event& e = wheel_pool_[n].ev;
  const std::uint64_t d = static_cast<std::uint64_t>(e.at) ^
                          static_cast<std::uint64_t>(wheel_cur_);
  int lvl = 0;
  if (d != 0) lvl = (63 - std::countl_zero(d)) / kWheelBits;
  const std::size_t idx = (static_cast<std::uint64_t>(e.at) >>
                           (kWheelBits * lvl)) &
                          (kWheelSlots - 1);
  WheelSlot& slot = wheel_slots_[static_cast<std::size_t>(lvl) * kWheelSlots +
                                 idx];
  wheel_pool_[n].next = kNilNode;
  if (slot.head == kNilNode) {
    slot.head = slot.tail = n;
    wheel_bmp_[static_cast<std::size_t>(lvl)] |= std::uint64_t{1} << idx;
  } else {
    wheel_pool_[slot.tail].next = n;
    slot.tail = n;
  }
}

void Engine::wheel_insert(const Event& e) {
  if (e.at < wheel_cur_) {
    // Behind the lazily-advanced cursor (but still >= now_): the wheel's
    // placement rule would wrap, so the heap absorbs it. Rare — only
    // possible in the gap a speculative peek opened past now_, or for a
    // cross-shard arrival injected behind an advanced cursor.
    heap_push(e);
    return;
  }
  const std::uint64_t d = static_cast<std::uint64_t>(e.at) ^
                          static_cast<std::uint64_t>(wheel_cur_);
  if ((d >> (kWheelBits * kWheelLevels)) != 0) {
    heap_push(e);  // beyond the wheel span: far-future overflow tier
    return;
  }
  std::uint32_t n;
  if (wheel_free_ != kNilNode) {
    n = wheel_free_;
    wheel_free_ = wheel_pool_[n].next;
    wheel_pool_[n].ev = e;
  } else {
    n = static_cast<std::uint32_t>(wheel_pool_.size());
    wheel_pool_.push_back(WheelNode{e, kNilNode});
  }
  wheel_place(n);
  ++wheel_count_;
}

void Engine::wheel_advance(Time t) {
  const std::uint64_t diff = static_cast<std::uint64_t>(wheel_cur_) ^
                             static_cast<std::uint64_t>(t);
  wheel_cur_ = t;
  if ((diff >> kWheelBits) == 0) return;  // same level-0 window
  int top = (63 - std::countl_zero(diff)) / kWheelBits;
  if (top > kWheelLevels - 1) top = kWheelLevels - 1;
  // Cascade-on-entry, highest level first: a level's entered slot is
  // re-scattered one level down before that lower level's own entered slot
  // is processed, so every event lands (in seq order) before dispatch can
  // reach it. Cascading relinks pooled nodes — no copies, no allocation.
  for (int lvl = top; lvl >= 1; --lvl) {
    const std::size_t idx = (static_cast<std::uint64_t>(t) >>
                             (kWheelBits * lvl)) &
                            (kWheelSlots - 1);
    if ((wheel_bmp_[static_cast<std::size_t>(lvl)] &
         (std::uint64_t{1} << idx)) == 0) {
      continue;
    }
    WheelSlot& slot =
        wheel_slots_[static_cast<std::size_t>(lvl) * kWheelSlots + idx];
    std::uint32_t n = slot.head;
    slot.head = slot.tail = kNilNode;
    wheel_bmp_[static_cast<std::size_t>(lvl)] &= ~(std::uint64_t{1} << idx);
    while (n != kNilNode) {
      const std::uint32_t next = wheel_pool_[n].next;
      // The target is strictly below lvl (the entered slot's bucket now
      // matches the cursor at lvl), so re-placement never revisits this
      // chain and never overflows to the heap.
      wheel_place(n);
      n = next;
    }
  }
  if ((diff >> (kWheelBits * (kWheelLevels - 1))) != 0) {
    // The cursor entered a new top-level window, so overflow events parked
    // beyond the old span may now fit: drain them in one batch here rather
    // than testing span membership per entry on the dispatch path.
    promote_overflow();
  }
}

void Engine::promote_overflow() {
  // Same-timestamp safety: an event can only reach the wheel while a
  // same-time sibling sits in the heap if the sibling entered the heap
  // beyond-span and the wheel insert happened within-span — but the cursor
  // advance that changed the span boundary ran this promotion first, so the
  // heap (popped in (at, seq) order) always lands before later inserts and
  // slot chains stay seq-sorted.
  while (!heap_.empty()) {
    const Event top = heap_.front();
    if (top.at < wheel_cur_) break;  // behind-cursor overflow stays heaped
    const std::uint64_t d = static_cast<std::uint64_t>(top.at) ^
                            static_cast<std::uint64_t>(wheel_cur_);
    if ((d >> (kWheelBits * kWheelLevels)) != 0) break;  // still beyond span
    heap_pop_top();
    wheel_insert(top);
  }
}

auto Engine::wheel_peek(Time bound) -> const Event* {
  // Minimum-slot argument (used by both return paths below): within a
  // level every event shares the cursor's digits above that level (inserts
  // match the cursor at insert time, and the cursor only ever changes its
  // digit at the lowest occupied level, whose entered slot is cascaded), so
  // slots at one level are totally ordered by index and any event at a
  // higher level exceeds the cursor's digit there. Hence every event in the
  // lowest occupied slot of the lowest occupied level precedes every other
  // wheel event.
  while (wheel_count_ != 0) {
    if (wheel_bmp_[0] != 0) {
      // Level-0 slots hold one exact nanosecond each, chained in seq
      // order, so the lowest occupied head is the wheel's true minimum.
      const int s = std::countr_zero(wheel_bmp_[0]);
      peek_lvl_ = 0;
      peek_slot_ = static_cast<std::size_t>(s);
      const Event& front = wheel_pool_[wheel_slots_[peek_slot_].head].ev;
      return front.at <= bound ? &front : nullptr;
    }
    int lvl = 1;
    while (wheel_bmp_[static_cast<std::size_t>(lvl)] == 0) ++lvl;
    const int s =
        std::countr_zero(wheel_bmp_[static_cast<std::size_t>(lvl)]);
    const std::size_t slot_idx =
        static_cast<std::size_t>(lvl) * kWheelSlots +
        static_cast<std::size_t>(s);
    const WheelSlot& slot = wheel_slots_[slot_idx];
    if (slot.head == slot.tail) {
      // A single-event chain in the minimum slot IS the wheel minimum: pop
      // it from right here instead of cascading it one level at a time down
      // to level 0 (which costs a bitmap walk + relink per level and made
      // sparse far-future populations ~10x slower than the dense rows).
      peek_lvl_ = lvl;
      peek_slot_ = slot_idx;
      const Event& front = wheel_pool_[slot.head].ev;
      return front.at <= bound ? &front : nullptr;
    }
    const int shift = kWheelBits * (lvl + 1);
    const std::uint64_t base = static_cast<std::uint64_t>(wheel_cur_) >>
                               shift << shift;
    const Time slot_start = static_cast<Time>(
        base | (static_cast<std::uint64_t>(s) << (kWheelBits * lvl)));
    if (slot_start > bound) return nullptr;  // min is certainly > bound
    wheel_advance(slot_start);
  }
  return nullptr;
}

void Engine::wheel_pop_front() {
  WheelSlot& slot = wheel_slots_[peek_slot_];
  const std::uint32_t n = slot.head;
  slot.head = wheel_pool_[n].next;
  if (slot.head == kNilNode) {
    slot.tail = kNilNode;
    wheel_bmp_[static_cast<std::size_t>(peek_lvl_)] &=
        ~(std::uint64_t{1} << (peek_slot_ & (kWheelSlots - 1)));
  }
  wheel_pool_[n].next = wheel_free_;
  wheel_free_ = n;
  --wheel_count_;
}

Time Engine::wheel_lower_bound() const {
  if (wheel_count_ == 0) return kTimeMax;
  if (wheel_bmp_[0] != 0) {
    const int s = std::countr_zero(wheel_bmp_[0]);
    return wheel_pool_[wheel_slots_[static_cast<std::size_t>(s)].head].ev.at;
  }
  int lvl = 1;
  while (wheel_bmp_[static_cast<std::size_t>(lvl)] == 0) ++lvl;
  const int s = std::countr_zero(wheel_bmp_[static_cast<std::size_t>(lvl)]);
  const int shift = kWheelBits * (lvl + 1);
  const std::uint64_t base = static_cast<std::uint64_t>(wheel_cur_) >> shift
                             << shift;
  return static_cast<Time>(
      base | (static_cast<std::uint64_t>(s) << (kWheelBits * lvl)));
}

bool Engine::pop_next(Time until, Event& out) {
  // Candidate from the O(1) peeks first (due front, heap top), then ask the
  // wheel for anything earlier. Bounding the wheel peek by the candidate
  // keeps cascades from running past the next dispatch, which in turn
  // guarantees the cursor never overtakes an event we are about to execute.
  const Event* cand = nullptr;
  bool cand_due = false;
  if (due_count_ != 0) {
    cand = &due_[due_head_];
    cand_due = true;
  }
  if (!heap_.empty() &&
      (cand == nullptr || event_before(heap_.front(), *cand))) {
    cand = &heap_.front();
    cand_due = false;
  }
  Time bound = until;
  if (cand != nullptr && cand->at < bound) bound = cand->at;
  const Event* w = wheel_peek(bound);
  const bool take_wheel =
      w != nullptr && (cand == nullptr || event_before(*w, *cand));
  const Event* best = take_wheel ? w : cand;
  if (best == nullptr || best->at > until) return false;
  out = *best;
  if (take_wheel) {
    wheel_pop_front();
  } else if (cand_due) {
    due_head_ = (due_head_ + 1) & (due_.size() - 1);
    --due_count_;
  } else {
    heap_pop_top();
  }
  return true;
}

void Engine::reserve(std::size_t events, std::size_t waiters) {
  heap_.reserve(events);
  // The due ring must also cover `events`: a same-timestamp burst (e.g. a
  // Trigger broadcast fanout) routes every resume through it.
  grow_due(std::bit_ceil(std::max<std::size_t>(events, 64)));
  // One shared node arena serves every wheel slot, so pre-sizing it by the
  // workload's concurrent pending events makes the wheel allocation-free
  // regardless of how those events distribute across slots.
  wheel_pool_.reserve(events);
  waiter_pool_.reserve(waiters);
  callback_pool_.reserve(events);
  callback_free_.reserve(events);
}

// ----------------------------------------------------------- waiter pool

WaiterHandle Engine::alloc_waiter(std::coroutine_handle<> h, Proc* proc) {
  std::uint32_t slot;
  if (waiter_free_head_ != WaiterHandle::kNullSlot) {
    slot = waiter_free_head_;
    waiter_free_head_ = waiter_pool_[slot].next_free;
  } else {
    slot = static_cast<std::uint32_t>(waiter_pool_.size());
    waiter_pool_.emplace_back();
  }
  WaiterSlot& s = waiter_pool_[slot];
  s.handle = h;
  s.proc = proc;
  s.fired = false;
  return WaiterHandle{slot, s.gen};
}

void Engine::release_waiter(std::uint32_t slot) {
  WaiterSlot& s = waiter_pool_[slot];
  ++s.gen;  // invalidate every outstanding handle to this slot
  s.handle = nullptr;
  s.proc = nullptr;
  s.next_free = waiter_free_head_;
  waiter_free_head_ = slot;
}

// -------------------------------------------------------------- scheduling

void Engine::call_at(Time t, SmallFn fn) {
  GCR_ASSERT(t >= now_);
  std::uint32_t slot;
  if (!callback_free_.empty()) {
    slot = callback_free_.back();
    callback_free_.pop_back();
    callback_pool_[slot] = std::move(fn);
  } else {
    slot = static_cast<std::uint32_t>(callback_pool_.size());
    callback_pool_.push_back(std::move(fn));
  }
  schedule(t, kCallback, slot, 0);
}

WaiterHandle Engine::suspend_current(std::coroutine_handle<> h) {
  const WaiterHandle w = alloc_waiter(h, current_);
  if (current_) current_->active_wait_ = w;
  return w;
}

bool Engine::fire(WaiterHandle w) {
  if (!waiter_live(w)) return false;
  waiter_pool_[w.slot].fired = true;
  schedule(now_, kResume, w.slot, w.gen);  // always O(1): same-time ring
  return true;
}

void Engine::fire_at(Time t, WaiterHandle w) {
  GCR_ASSERT(t >= now_);
  GCR_ASSERT(w.slot < waiter_pool_.size());
  schedule(t, kTimer, w.slot, w.gen);
}

// ------------------------------------------------------- process lifecycle

ProcPtr Engine::spawn(std::string name, Co<void> body,
                      std::function<void(Proc&, ExitKind)> on_exit) {
  auto proc = std::make_shared<Proc>(next_pid_++, std::move(name));
  ++live_processes_;
  RootTask root =
      root_driver(*this, proc, std::move(body), std::move(on_exit));
  const WaiterHandle w = alloc_waiter(root.handle, proc.get());
  proc->active_wait_ = w;
  fire_at(now_, w);
  return proc;
}

void Engine::kill(Proc& proc) {
  GCR_CHECK_MSG(&proc != current_, "a process must not kill itself");
  if (proc.killed_ || !proc.alive_) return;
  proc.killed_ = true;
  // Claims the currently-armed waiter unless another source already did (a
  // stale or claimed handle makes fire() a no-op). A live process is always
  // either running (excluded above) or suspended with an active wait — the
  // spawn start waiter covers the killed-before-start case.
  fire(proc.active_wait_);
}

void Engine::note_root_exit(Proc& proc, ExitKind kind) {
  (void)kind;
  proc.alive_ = false;
  proc.active_wait_ = WaiterHandle{};
  GCR_ASSERT(live_processes_ > 0);
  --live_processes_;
}

// ---------------------------------------------------------------- dispatch

void Engine::resume_slot(std::uint32_t slot) {
  WaiterSlot& s = waiter_pool_[slot];
  GCR_ASSERT(s.fired);
  const std::coroutine_handle<> h = s.handle;
  Proc* const proc = s.proc;
  if (proc && proc->active_wait_ == WaiterHandle{slot, s.gen}) {
    proc->active_wait_ = WaiterHandle{};
  }
  // Recycle before resuming: outstanding handles are invalidated by the
  // generation bump, and an immediate re-suspension typically gets this
  // same (cache-hot) slot back off the free list.
  release_waiter(slot);
  Proc* const prev = current_;
  current_ = proc;
  h.resume();
  current_ = prev;
}

void Engine::dispatch(const Event& ev) {
  switch (static_cast<EventKind>(ev.key & 3)) {
    case kCallback: {
      // Move out and free the slot first: the callback may re-enter
      // call_at and grow or reuse the pool.
      SmallFn fn = std::move(callback_pool_[ev.slot]);
      callback_free_.push_back(ev.slot);
      fn();
      return;
    }
    case kTimer: {
      WaiterSlot& s = waiter_pool_[ev.slot];
      if (s.gen != ev.gen || s.fired) return;  // cancelled or claimed
      s.fired = true;
      resume_slot(ev.slot);
      return;
    }
    case kResume: {
      // The claim (fired=true) pins the slot until this event runs, so the
      // generation must still match.
      GCR_ASSERT(waiter_pool_[ev.slot].gen == ev.gen);
      resume_slot(ev.slot);
      return;
    }
  }
}

std::uint64_t Engine::run(Time until) {
  GCR_ASSERT(until >= now_);  // the clock never moves backwards
  std::uint64_t processed = 0;
  Event ev;
  while (pop_next(until, ev)) {
    GCR_ASSERT(ev.at >= now_);
    now_ = ev.at;
    dispatch(ev);
    ++processed;
    ++events_processed_;
  }
  if (idle() && now_ < until && until != kTimeMax) now_ = until;
  return processed;
}

std::uint64_t Engine::run_while(const std::function<bool()>& keep_going) {
  std::uint64_t processed = 0;
  Event ev;
  // Same predicate order as run(): emptiness first, keep_going second, so
  // the predicate is never consulted once the queue has drained.
  while (!idle() && keep_going() && pop_next(kTimeMax, ev)) {
    GCR_ASSERT(ev.at >= now_);
    now_ = ev.at;
    dispatch(ev);
    ++processed;
    ++events_processed_;
  }
  return processed;
}

std::uint64_t Engine::run_window(Time until,
                                 const std::function<bool()>* keep_going) {
  // `until` may lie behind now() (a shard ahead of a peer's horizon gets an
  // empty window); pop_next then finds nothing, which is the right answer.
  std::uint64_t processed = 0;
  Event ev;
  while ((keep_going == nullptr || (!idle() && (*keep_going)())) &&
         pop_next(until, ev)) {
    GCR_ASSERT(ev.at >= now_);
    now_ = ev.at;
    dispatch(ev);
    ++processed;
    ++events_processed_;
  }
  return processed;
}

Time Engine::next_event_time() {
  Time best = kTimeMax;
  if (due_count_ != 0) best = due_[due_head_].at;
  if (!heap_.empty() && heap_.front().at < best) best = heap_.front().at;
  // Bounding by the due/heap minimum keeps the cascade work no larger than
  // the next pop would do anyway; a nullptr answer proves the wheel's
  // minimum is later than `best`, so `best` is already exact.
  if (const Event* w = wheel_peek(best); w != nullptr && w->at < best) {
    best = w->at;
  }
  return best;
}

}  // namespace gcr::sim
