#include "sim/churn.hpp"

#include <algorithm>
#include <fstream>
#include <istream>
#include <queue>
#include <sstream>
#include <utility>

#include "util/assert.hpp"

namespace gcr::sim {
namespace {

/// Min-heap ordering by (time, node, kind): node and kind break time ties
/// so the event order is independent of heap internals. A node's drain and
/// its own rejoin can never tie (outage_s > 0 is enforced), so kind only
/// orders distinct nodes' coincident events.
struct LaterEvent {
  bool operator()(const ChurnEvent& a, const ChurnEvent& b) const {
    if (a.at_s != b.at_s) return a.at_s > b.at_s;
    if (a.node != b.node) return a.node > b.node;
    return static_cast<int>(a.kind) > static_cast<int>(b.kind);
  }
};

using EventHeap =
    std::priority_queue<ChurnEvent, std::vector<ChurnEvent>, LaterEvent>;

/// Cluster-wide Poisson drain/reclaim arrivals with paired rejoins. One
/// shared stream (id num_nodes, matching BurstFaultModel's convention)
/// drives both the arrival times and the node choices, so the history is a
/// function of the seed alone. Arrivals may target a node that is still
/// down from an earlier event — the recovery layer absorbs those, exactly
/// as fault models may re-kill an already-dead node.
class PoissonChurnModel : public ChurnModel {
 public:
  PoissonChurnModel(ChurnModelKind kind, double mtbd_s, double outage_s,
                    double warning_s)
      : kind_(kind), mtbd_s_(mtbd_s), outage_s_(outage_s),
        warning_s_(warning_s) {
    GCR_CHECK_MSG(mtbd_s > 0, "churn model: drain_mtbd_s must be positive");
    GCR_CHECK_MSG(outage_s > 0, "churn model: outage_s must be positive");
    GCR_CHECK_MSG(warning_s >= 0, "churn model: warning_s must be >= 0");
  }

  const char* name() const override { return churn_model_name(kind_); }

  void bind(int num_nodes,
            const std::function<Rng(std::uint64_t)>& rng_for) override {
    GCR_CHECK(num_nodes > 0 && num_nodes_ == 0);
    num_nodes_ = num_nodes;
    rng_ = rng_for(static_cast<std::uint64_t>(num_nodes));
    next_arrival_at_ = rng_.next_exponential(mtbd_s_);
  }

  std::optional<ChurnEvent> next() override {
    GCR_CHECK_MSG(num_nodes_ > 0, "ChurnModel::bind was never called");
    // An arrival at time T only produces events at >= T (its rejoin lands
    // later), so the buffer head is final once the next arrival lies
    // beyond it.
    while (buffer_.empty() || next_arrival_at_ <= buffer_.top().at_s) {
      expand_arrival(next_arrival_at_);
      next_arrival_at_ += rng_.next_exponential(mtbd_s_);
    }
    ChurnEvent ev = buffer_.top();
    buffer_.pop();
    return ev;
  }

 private:
  void expand_arrival(double at_s) {
    const int node = static_cast<int>(
        rng_.next_below(static_cast<std::uint64_t>(num_nodes_)));
    const bool spot = kind_ == ChurnModelKind::kSpot;
    const ChurnEventKind kind =
        spot ? ChurnEventKind::kReclaim : ChurnEventKind::kDrain;
    const double down_at = spot ? at_s + warning_s_ : at_s;
    buffer_.push({at_s, node, kind, spot ? warning_s_ : 0.0});
    buffer_.push({down_at + outage_s_, node, ChurnEventKind::kJoin, 0.0});
  }

  ChurnModelKind kind_;
  double mtbd_s_;
  double outage_s_;
  double warning_s_;
  int num_nodes_ = 0;
  Rng rng_{0};
  double next_arrival_at_ = 0;
  EventHeap buffer_;
};

/// Rolling upgrade: node i drains at start + i*step and rejoins outage_s
/// later — one deterministic sweep visiting every node exactly once. With
/// step > outage at most one node is out at a time (the classic rolling
/// restart); smaller steps model aggressive rollouts with overlapping
/// outages.
class RollingChurnModel : public ChurnModel {
 public:
  RollingChurnModel(double start_s, double step_s, double outage_s)
      : start_s_(start_s), step_s_(step_s), outage_s_(outage_s) {
    GCR_CHECK_MSG(start_s >= 0, "churn model: rolling_start_s must be >= 0");
    GCR_CHECK_MSG(step_s > 0, "churn model: rolling_step_s must be positive");
    GCR_CHECK_MSG(outage_s > 0, "churn model: outage_s must be positive");
  }

  const char* name() const override {
    return churn_model_name(ChurnModelKind::kRolling);
  }

  void bind(int num_nodes,
            const std::function<Rng(std::uint64_t)>& rng_for) override {
    (void)rng_for;  // the sweep is deterministic by construction
    GCR_CHECK(num_nodes > 0 && heap_.empty());
    for (int n = 0; n < num_nodes; ++n) {
      const double drain_at = start_s_ + n * step_s_;
      heap_.push({drain_at, n, ChurnEventKind::kDrain, 0.0});
      heap_.push({drain_at + outage_s_, n, ChurnEventKind::kJoin, 0.0});
    }
  }

  std::optional<ChurnEvent> next() override {
    if (heap_.empty()) return std::nullopt;
    ChurnEvent ev = heap_.top();
    heap_.pop();
    return ev;
  }

 private:
  double start_s_;
  double step_s_;
  double outage_s_;
  EventHeap heap_;
};

/// Replays an explicit schedule. Events targeting nodes outside the bound
/// machine are dropped at bind (a trace from a bigger cluster shrinks).
class TraceChurnModel : public ChurnModel {
 public:
  explicit TraceChurnModel(std::vector<ChurnEvent> schedule)
      : schedule_(std::move(schedule)) {
    GCR_CHECK_MSG(!schedule_.empty(),
                  "churn model: trace schedule is empty (no schedule given "
                  "and no trace_path set?)");
    std::stable_sort(schedule_.begin(), schedule_.end(),
                     [](const ChurnEvent& a, const ChurnEvent& b) {
                       return a.at_s < b.at_s;
                     });
  }

  const char* name() const override {
    return churn_model_name(ChurnModelKind::kTrace);
  }

  void bind(int num_nodes,
            const std::function<Rng(std::uint64_t)>& rng_for) override {
    (void)rng_for;  // replay is deterministic by construction
    GCR_CHECK(num_nodes > 0);
    schedule_.erase(std::remove_if(schedule_.begin(), schedule_.end(),
                                   [num_nodes](const ChurnEvent& ev) {
                                     return ev.node < 0 ||
                                            ev.node >= num_nodes;
                                   }),
                    schedule_.end());
  }

  std::optional<ChurnEvent> next() override {
    if (pos_ >= schedule_.size()) return std::nullopt;
    return schedule_[pos_++];
  }

 private:
  std::vector<ChurnEvent> schedule_;
  std::size_t pos_ = 0;
};

}  // namespace

const char* churn_event_name(ChurnEventKind kind) {
  switch (kind) {
    case ChurnEventKind::kDrain: return "drain";
    case ChurnEventKind::kReclaim: return "reclaim";
    case ChurnEventKind::kJoin: return "join";
  }
  return "?";
}

const char* churn_model_name(ChurnModelKind kind) {
  switch (kind) {
    case ChurnModelKind::kNone: return "none";
    case ChurnModelKind::kDrains: return "drains";
    case ChurnModelKind::kSpot: return "spot";
    case ChurnModelKind::kRolling: return "rolling";
    case ChurnModelKind::kTrace: return "trace";
  }
  return "?";
}

std::unique_ptr<ChurnModel> make_churn_model(const ChurnModelParams& params) {
  switch (params.kind) {
    case ChurnModelKind::kNone:
      return nullptr;
    case ChurnModelKind::kDrains:
      return std::make_unique<PoissonChurnModel>(
          ChurnModelKind::kDrains, params.drain_mtbd_s, params.outage_s,
          /*warning_s=*/0.0);
    case ChurnModelKind::kSpot:
      return std::make_unique<PoissonChurnModel>(
          ChurnModelKind::kSpot, params.drain_mtbd_s, params.outage_s,
          params.warning_s);
    case ChurnModelKind::kRolling:
      return std::make_unique<RollingChurnModel>(
          params.rolling_start_s, params.rolling_step_s, params.outage_s);
    case ChurnModelKind::kTrace:
      return std::make_unique<TraceChurnModel>(
          !params.schedule.empty() ? params.schedule
                                   : load_churn_trace(params.trace_path));
  }
  GCR_CHECK_MSG(false, "unknown churn model kind");
  return nullptr;  // unreachable
}

std::vector<ChurnEvent> parse_churn_trace(std::istream& in) {
  std::vector<ChurnEvent> events;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    std::istringstream fields(line);
    ChurnEvent ev;
    std::string kind;
    std::string trailing;
    // Anything non-blank must parse fully: a typo'd line silently dropped
    // would make the experiment run a different churn history than the
    // file says.
    bool ok = static_cast<bool>(fields >> ev.at_s >> kind >> ev.node) &&
              ev.at_s >= 0;
    if (ok) {
      if (kind == "drain") {
        ev.kind = ChurnEventKind::kDrain;
      } else if (kind == "reclaim") {
        ev.kind = ChurnEventKind::kReclaim;
        ok = static_cast<bool>(fields >> ev.warning_s) && ev.warning_s >= 0;
      } else if (kind == "join") {
        ev.kind = ChurnEventKind::kJoin;
      } else {
        ok = false;
      }
    }
    ok = ok && !(fields >> trailing);
    if (!ok) {
      GCR_CHECK_MSG(false,
                    ("churn trace line " + std::to_string(lineno) +
                     ": expected \"time_s drain|join node\" or "
                     "\"time_s reclaim node warning_s\"")
                        .c_str());
    }
    events.push_back(ev);
  }
  return events;
}

std::vector<ChurnEvent> load_churn_trace(const std::string& path) {
  std::ifstream in(path);
  GCR_CHECK_MSG(in.good(), ("cannot open churn trace: " + path).c_str());
  return parse_churn_trace(in);
}

}  // namespace gcr::sim
