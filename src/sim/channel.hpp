// Channel<T>: unbounded FIFO with awaitable pop.
//
// The MiniMPI runtime uses channels for per-rank delivery queues and the
// protocol daemons use them for control traffic. Values pushed while a
// receiver waits are handed over directly; a receiver killed while waiting
// leaves a stale handle (claimed or generation-bumped) that later pushes
// skip over via Engine::waiter_live.
//
// Shard-local: a channel binds one Engine, so producer and consumer must
// live on the same shard (sim/shard.hpp). Cross-shard traffic goes through
// ShardedEngine::post_at, whose delivery callback may then push into a
// destination-shard channel.
#pragma once

#include <coroutine>
#include <deque>
#include <utility>

#include "sim/engine.hpp"
#include "util/assert.hpp"

namespace gcr::sim {

template <class T>
class Channel {
 public:
  explicit Channel(Engine& engine) : engine_(&engine) {}
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Queued (undelivered) values; waiters are not counted.
  std::size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }

  /// Delivers a value: wakes the oldest live waiter or queues the value.
  /// Never blocks (the channel is unbounded).
  void push(T value) {
    while (!waiters_.empty()) {
      Entry e = std::move(waiters_.front());
      waiters_.pop_front();
      // A killed waiter's slot was recycled (generation bump); skip it.
      if (!engine_->waiter_live(e.waiter)) continue;
      *e.slot = std::move(value);
      const bool claimed = engine_->fire(e.waiter);
      GCR_ASSERT(claimed);
      (void)claimed;
      return;
    }
    items_.push_back(std::move(value));
  }

  /// Removes all queued values (used when a rank is torn down).
  void clear() { items_.clear(); }

  /// Snapshot access for checkpointing the queue contents.
  const std::deque<T>& items() const { return items_; }

  /// co_await channel.pop() -> T. Suspends until a value is available;
  /// FIFO among waiters. A waiter killed while suspended unwinds with
  /// ProcessKilled and its stale queue entry is skipped by later pushes.
  auto pop() {
    struct Awaiter {
      Channel* channel;
      T value{};
      bool immediate = false;
      WaiterHandle waiter;

      bool await_ready() {
        if (!channel->items_.empty() && channel->waiters_.empty()) {
          value = std::move(channel->items_.front());
          channel->items_.pop_front();
          immediate = true;
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) {
        waiter = channel->engine_->suspend_current(h);
        channel->waiters_.push_back({waiter, &value});
      }
      T await_resume() {
        if (!immediate) channel->engine_->finish_wait(waiter);
        return std::move(value);
      }
    };
    return Awaiter{this, {}, false, {}};
  }

 private:
  struct Entry {
    WaiterHandle waiter;
    T* slot;
  };

  Engine* engine_;
  std::deque<T> items_;
  std::deque<Entry> waiters_;
};

}  // namespace gcr::sim
