// Pluggable node-fault models (DESIGN.md §9).
//
// A FaultModel is a deterministic generator of node-level fault events: a
// stream of (time, node) pairs in nondecreasing time order, drawn from
// seeded substreams so one run seed gives one fault history regardless of
// what else the simulation does. The recovery layer (core/recovery.hpp)
// maps each node fault to the checkpoint group hosting that node's rank and
// drives the kill/restore machinery; this layer knows nothing about groups
// or protocols.
//
// Built-in models:
//   * exponential — independent per-node Poisson processes (the classic
//     memoryless MTBF model; what most checkpoint-interval theory assumes);
//   * weibull     — per-node renewal process with Weibull inter-arrivals.
//     shape < 1 reproduces the infant-mortality/bursty hazard measured in
//     real HPC failure traces; shape > 1 models wear-out; shape == 1 is
//     exponential;
//   * burst       — spatially correlated failures: cluster-wide burst
//     arrivals, each taking down a run of adjacent nodes within a short
//     window (switch/PDU/rack faults — many groups can be down at once);
//   * trace       — replay of an explicit schedule, inline or parsed from a
//     file of "time_s node" lines (real failure logs, directed tests).
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace gcr::sim {

/// One node failure: the node dies at `at_s` (seconds of simulated time).
struct FaultEvent {
  double at_s = 0;
  int node = 0;
};

enum class FaultModelKind { kNone, kExponential, kWeibull, kBurst, kTrace };

/// Stable short name ("exp", "weibull", "burst", "trace") for tables/CSV.
const char* fault_model_name(FaultModelKind kind);

/// Construction parameters for the built-in models. Only the fields of the
/// selected `kind` are read; everything is sweepable as a scenario axis.
struct FaultModelParams {
  FaultModelKind kind = FaultModelKind::kNone;

  // kExponential / kWeibull: per-node renewal processes.
  double mtbf_s = 3600.0;      ///< mean time between failures of ONE node
  double weibull_shape = 0.7;  ///< <1 bursty hazard, 1 = exponential, >1 wear-out

  // kBurst: cluster-wide burst arrivals hitting adjacent nodes.
  double burst_mtbf_s = 3600.0;  ///< mean time between burst events
  int burst_max_nodes = 4;       ///< burst size is uniform in 1..max
  double burst_spread_s = 0.25;  ///< window over which one burst's kills land

  // kTrace: explicit schedule. `schedule` wins if non-empty; otherwise
  // `trace_path` is loaded at model construction.
  std::vector<FaultEvent> schedule;
  std::string trace_path;
};

/// Generator interface. bind() is called exactly once before the first
/// next(); `rng_for` returns a deterministic Rng substream per stream id
/// (models use ids 0..num_nodes-1 for per-node processes and ids >=
/// num_nodes for shared processes, so streams never collide).
class FaultModel {
 public:
  virtual ~FaultModel() = default;

  virtual const char* name() const = 0;
  virtual void bind(int num_nodes,
                    const std::function<Rng(std::uint64_t)>& rng_for) = 0;

  /// Next fault event; times are nondecreasing across calls. nullopt once
  /// the stream is exhausted (renewal models never exhaust — the consumer
  /// stops pulling when the job finishes).
  virtual std::optional<FaultEvent> next() = 0;
};

/// Builds the model described by `params`; nullptr for kNone. Aborts on
/// invalid parameters (non-positive scales, empty trace).
std::unique_ptr<FaultModel> make_fault_model(const FaultModelParams& params);

/// Parses a fault trace: one "time_s node" pair per line, '#' starts a
/// comment, blank lines ignored. Aborts on malformed input. The result is
/// NOT sorted — make_fault_model sorts its copy.
std::vector<FaultEvent> parse_fault_trace(std::istream& in);

/// parse_fault_trace on the contents of `path`; aborts if unreadable.
std::vector<FaultEvent> load_fault_trace(const std::string& path);

}  // namespace gcr::sim
