// OS jitter model (DESIGN.md §2.2).
//
// Commodity Linux 2.4 nodes exhibit scheduling noise: most interruptions are
// milliseconds, but page-outs, kswapd and cron produce occasional
// 100 ms – 1.5 s stragglers. Coordination steps (barrier arrival, signal
// handling) each draw one sample; a barrier over n processes therefore costs
// the *maximum* of n draws — which is why global coordination is spiky and
// grows with scale while per-group coordination stays flat (paper Figs 1, 5,
// 6). Modeled as lognormal body + uniform spike mixture.
#pragma once

#include "sim/time.hpp"
#include "util/rng.hpp"

namespace gcr::sim {

struct JitterParams {
  double median_s = 2e-3;       ///< lognormal median
  double sigma = 0.8;           ///< lognormal shape
  double spike_prob = 0.05;     ///< probability of a heavy straggler
  double spike_min_s = 0.10;    ///< uniform spike lower bound (seconds)
  double spike_max_s = 6.00;    ///< uniform spike upper bound (seconds)
  bool enabled = true;          ///< false: draw() returns 0 without consuming RNG
};

class JitterModel {
 public:
  explicit JitterModel(const JitterParams& params = {}) : params_(params) {}

  const JitterParams& params() const { return params_; }

  /// One coordination-step delay sample from the given process's stream.
  Time draw(gcr::Rng& rng) const {
    if (!params_.enabled) return 0;
    // Consume both variates unconditionally so the stream position does not
    // depend on the spike branch (keeps substreams comparable across runs).
    const double spike_roll = rng.next_double();
    const double body = rng.next_lognormal(std::log(params_.median_s),
                                           params_.sigma);
    if (spike_roll < params_.spike_prob) {
      const double spike =
          params_.spike_min_s +
          (params_.spike_max_s - params_.spike_min_s) * rng.next_double();
      return from_seconds(body + spike);
    }
    return from_seconds(body);
  }

 private:
  JitterParams params_;
};

}  // namespace gcr::sim
