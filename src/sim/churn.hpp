// Pluggable cluster-churn models (DESIGN.md §16).
//
// A ChurnModel is the membership-dynamics sibling of FaultModel
// (sim/faults.hpp): a deterministic generator of *planned* node events —
// drains, spot/preemptible reclaims with a warning window, and rejoins —
// in nondecreasing time order, drawn from seeded substreams. Faults are
// surprises the protocol must absorb; churn is advance notice it may
// exploit (checkpoint-on-warning, clean handoff). The recovery layer
// (core/recovery.hpp) maps each node event to the checkpoint group hosting
// that node's rank and drives the drain/reclaim/rejoin state machines;
// this layer knows nothing about groups or protocols.
//
// Built-in models:
//   * drains  — cluster-wide Poisson process of planned drains, each
//     picking a uniform node; the node rejoins after `outage_s`
//     (maintenance reboots, capacity rebalancing);
//   * spot    — same arrival process, but each drain is a preemptible-VM
//     reclaim carrying `warning_s` of advance notice before the node is
//     forcibly killed (EC2 spot / GCE preemptible semantics);
//   * rolling — a rolling upgrade: node i drains at start_s + i*step_s and
//     rejoins outage_s later, visiting every node exactly once;
//   * trace   — replay of an explicit schedule, inline or parsed from a
//     file of "time_s kind node [warning_s]" lines.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace gcr::sim {

enum class ChurnEventKind {
  kDrain,    ///< planned drain: graceful exit, no deadline
  kReclaim,  ///< forced reclaim: the node dies warning_s after this event
  kJoin,     ///< a previously departed node comes back
};

/// Stable short name ("drain", "reclaim", "join") for traces/tables.
const char* churn_event_name(ChurnEventKind kind);

/// One membership event: `node` drains/reclaims/joins at `at_s` (seconds
/// of simulated time). `warning_s` is meaningful for kReclaim only: the
/// node survives until at_s + warning_s, then is killed regardless.
struct ChurnEvent {
  double at_s = 0;
  int node = 0;
  ChurnEventKind kind = ChurnEventKind::kDrain;
  double warning_s = 0;
};

enum class ChurnModelKind { kNone, kDrains, kSpot, kRolling, kTrace };

/// Stable short name ("drains", "spot", "rolling", "trace") for tables/CSV.
const char* churn_model_name(ChurnModelKind kind);

/// Construction parameters for the built-in models. Only the fields of the
/// selected `kind` are read; everything is sweepable as a scenario axis.
struct ChurnModelParams {
  ChurnModelKind kind = ChurnModelKind::kNone;

  // kDrains / kSpot: cluster-wide Poisson arrivals of drain/reclaim events.
  double drain_mtbd_s = 600.0;  ///< mean time between drains (whole cluster)
  double outage_s = 30.0;       ///< drain-to-rejoin gap (all models)
  double warning_s = 15.0;      ///< kSpot: reclaim notice before the kill

  // kRolling: sequential sweep over every node.
  double rolling_start_s = 60.0;  ///< first node drains here
  double rolling_step_s = 60.0;   ///< gap between successive node drains

  // kTrace: explicit schedule. `schedule` wins if non-empty; otherwise
  // `trace_path` is loaded at model construction.
  std::vector<ChurnEvent> schedule;
  std::string trace_path;
};

/// Generator interface; the contract mirrors FaultModel exactly. bind() is
/// called once before the first next(); `rng_for` returns a deterministic
/// Rng substream per stream id (ids 0..num_nodes-1 are reserved for
/// per-node processes, ids >= num_nodes for shared processes).
class ChurnModel {
 public:
  virtual ~ChurnModel() = default;

  virtual const char* name() const = 0;
  virtual void bind(int num_nodes,
                    const std::function<Rng(std::uint64_t)>& rng_for) = 0;

  /// Next churn event; times are nondecreasing across calls. nullopt once
  /// the stream is exhausted (the Poisson models never exhaust — the
  /// consumer stops pulling when the job finishes).
  virtual std::optional<ChurnEvent> next() = 0;
};

/// Builds the model described by `params`; nullptr for kNone. Aborts on
/// invalid parameters (non-positive rates, empty trace).
std::unique_ptr<ChurnModel> make_churn_model(const ChurnModelParams& params);

/// Parses a churn trace: one "time_s kind node [warning_s]" line per event
/// with kind in {drain, reclaim, join}; '#' starts a comment, blank lines
/// ignored. Aborts on malformed input. The result is NOT sorted —
/// make_churn_model sorts its copy.
std::vector<ChurnEvent> parse_churn_trace(std::istream& in);

/// parse_churn_trace on the contents of `path`; aborts if unreadable.
std::vector<ChurnEvent> load_churn_trace(const std::string& path);

}  // namespace gcr::sim
