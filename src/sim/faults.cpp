#include "sim/faults.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <istream>
#include <queue>
#include <sstream>
#include <utility>

#include "util/assert.hpp"

namespace gcr::sim {
namespace {

/// Min-heap ordering by (time, node): node breaks time ties so the event
/// order is independent of heap internals.
struct LaterEvent {
  bool operator()(const FaultEvent& a, const FaultEvent& b) const {
    return a.at_s > b.at_s || (a.at_s == b.at_s && a.node > b.node);
  }
};

using EventHeap =
    std::priority_queue<FaultEvent, std::vector<FaultEvent>, LaterEvent>;

/// Independent per-node renewal processes; Weibull inter-arrivals with
/// shape 1 degenerate to exponential. The scale is derived so `mtbf_s` is
/// the actual mean inter-arrival: scale = mtbf / Gamma(1 + 1/shape).
class RenewalFaultModel : public FaultModel {
 public:
  RenewalFaultModel(FaultModelKind kind, double mtbf_s, double shape)
      : kind_(kind), shape_(shape) {
    GCR_CHECK_MSG(mtbf_s > 0, "fault model: mtbf_s must be positive");
    GCR_CHECK_MSG(shape > 0, "fault model: weibull_shape must be positive");
    scale_ = mtbf_s / std::tgamma(1.0 + 1.0 / shape);
  }

  const char* name() const override { return fault_model_name(kind_); }

  void bind(int num_nodes,
            const std::function<Rng(std::uint64_t)>& rng_for) override {
    GCR_CHECK(num_nodes > 0 && rngs_.empty());
    rngs_.reserve(static_cast<std::size_t>(num_nodes));
    for (int n = 0; n < num_nodes; ++n) {
      rngs_.push_back(rng_for(static_cast<std::uint64_t>(n)));
      heap_.push({draw_wait(rngs_.back()), n});
    }
  }

  std::optional<FaultEvent> next() override {
    GCR_CHECK_MSG(!rngs_.empty(), "FaultModel::bind was never called");
    FaultEvent ev = heap_.top();
    heap_.pop();
    Rng& rng = rngs_[static_cast<std::size_t>(ev.node)];
    heap_.push({ev.at_s + draw_wait(rng), ev.node});
    return ev;
  }

 private:
  double draw_wait(Rng& rng) {
    // Weibull inverse CDF: scale * (-ln U)^(1/shape). With shape == 1 this
    // is exactly Rng::next_exponential's formula, so the exponential model
    // shares the code path bit-for-bit.
    double u = rng.next_double();
    if (u <= 0.0) u = 0x1.0p-53;
    return scale_ * std::pow(-std::log(u), 1.0 / shape_);
  }

  FaultModelKind kind_;
  double shape_;
  double scale_;
  std::vector<Rng> rngs_;
  EventHeap heap_;
};

/// Spatially correlated bursts: a single cluster-wide Poisson process of
/// burst events; each burst picks a uniform origin node and a uniform size
/// in 1..burst_max_nodes and takes down the run of adjacent nodes
/// [origin, origin+size) (clamped at the machine edge), spread over
/// burst_spread_s. The origin dies at the burst instant; companions follow
/// at uniform offsets within the window, so recoveries genuinely overlap.
class BurstFaultModel : public FaultModel {
 public:
  BurstFaultModel(double burst_mtbf_s, int burst_max_nodes, double spread_s)
      : burst_mtbf_s_(burst_mtbf_s), burst_max_nodes_(burst_max_nodes),
        spread_s_(spread_s) {
    GCR_CHECK_MSG(burst_mtbf_s > 0,
                  "fault model: burst_mtbf_s must be positive");
    GCR_CHECK_MSG(burst_max_nodes >= 1,
                  "fault model: burst_max_nodes must be >= 1");
    GCR_CHECK_MSG(spread_s >= 0, "fault model: burst_spread_s must be >= 0");
  }

  const char* name() const override {
    return fault_model_name(FaultModelKind::kBurst);
  }

  void bind(int num_nodes,
            const std::function<Rng(std::uint64_t)>& rng_for) override {
    GCR_CHECK(num_nodes > 0 && num_nodes_ == 0);
    num_nodes_ = num_nodes;
    // Stream id num_nodes: disjoint from the per-node id convention so a
    // future hybrid model can combine both without stream collisions.
    rng_ = rng_for(static_cast<std::uint64_t>(num_nodes));
    next_burst_at_ = rng_.next_exponential(burst_mtbf_s_);
  }

  std::optional<FaultEvent> next() override {
    GCR_CHECK_MSG(num_nodes_ > 0, "FaultModel::bind was never called");
    // A burst at time T only produces events at >= T, so the buffer head is
    // final once the next burst arrival lies beyond it.
    while (buffer_.empty() || next_burst_at_ <= buffer_.top().at_s) {
      expand_burst(next_burst_at_);
      next_burst_at_ += rng_.next_exponential(burst_mtbf_s_);
    }
    FaultEvent ev = buffer_.top();
    buffer_.pop();
    return ev;
  }

 private:
  void expand_burst(double at_s) {
    const int origin = static_cast<int>(
        rng_.next_below(static_cast<std::uint64_t>(num_nodes_)));
    const int size = static_cast<int>(
        1 + rng_.next_below(static_cast<std::uint64_t>(burst_max_nodes_)));
    for (int i = 0; i < size && origin + i < num_nodes_; ++i) {
      const double offset = i == 0 ? 0.0 : rng_.next_double() * spread_s_;
      buffer_.push({at_s + offset, origin + i});
    }
  }

  double burst_mtbf_s_;
  int burst_max_nodes_;
  double spread_s_;
  int num_nodes_ = 0;
  Rng rng_{0};
  double next_burst_at_ = 0;
  EventHeap buffer_;
};

/// Replays an explicit schedule. Faults targeting nodes outside the bound
/// machine are dropped at bind (a trace from a bigger cluster shrinks).
class TraceFaultModel : public FaultModel {
 public:
  explicit TraceFaultModel(std::vector<FaultEvent> schedule)
      : schedule_(std::move(schedule)) {
    GCR_CHECK_MSG(!schedule_.empty(),
                  "fault model: trace schedule is empty (no schedule given "
                  "and no trace_path set?)");
    std::stable_sort(schedule_.begin(), schedule_.end(),
                     [](const FaultEvent& a, const FaultEvent& b) {
                       return a.at_s < b.at_s;
                     });
  }

  const char* name() const override {
    return fault_model_name(FaultModelKind::kTrace);
  }

  void bind(int num_nodes,
            const std::function<Rng(std::uint64_t)>& rng_for) override {
    (void)rng_for;  // replay is deterministic by construction
    GCR_CHECK(num_nodes > 0);
    schedule_.erase(std::remove_if(schedule_.begin(), schedule_.end(),
                                   [num_nodes](const FaultEvent& ev) {
                                     return ev.node < 0 ||
                                            ev.node >= num_nodes;
                                   }),
                    schedule_.end());
  }

  std::optional<FaultEvent> next() override {
    if (pos_ >= schedule_.size()) return std::nullopt;
    return schedule_[pos_++];
  }

 private:
  std::vector<FaultEvent> schedule_;
  std::size_t pos_ = 0;
};

}  // namespace

const char* fault_model_name(FaultModelKind kind) {
  switch (kind) {
    case FaultModelKind::kNone: return "none";
    case FaultModelKind::kExponential: return "exp";
    case FaultModelKind::kWeibull: return "weibull";
    case FaultModelKind::kBurst: return "burst";
    case FaultModelKind::kTrace: return "trace";
  }
  return "?";
}

std::unique_ptr<FaultModel> make_fault_model(const FaultModelParams& params) {
  switch (params.kind) {
    case FaultModelKind::kNone:
      return nullptr;
    case FaultModelKind::kExponential:
      return std::make_unique<RenewalFaultModel>(FaultModelKind::kExponential,
                                                 params.mtbf_s, 1.0);
    case FaultModelKind::kWeibull:
      return std::make_unique<RenewalFaultModel>(
          FaultModelKind::kWeibull, params.mtbf_s, params.weibull_shape);
    case FaultModelKind::kBurst:
      return std::make_unique<BurstFaultModel>(
          params.burst_mtbf_s, params.burst_max_nodes, params.burst_spread_s);
    case FaultModelKind::kTrace:
      return std::make_unique<TraceFaultModel>(
          !params.schedule.empty() ? params.schedule
                                   : load_fault_trace(params.trace_path));
  }
  GCR_CHECK_MSG(false, "unknown fault model kind");
  return nullptr;  // unreachable
}

std::vector<FaultEvent> parse_fault_trace(std::istream& in) {
  std::vector<FaultEvent> events;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    std::istringstream fields(line);
    FaultEvent ev;
    std::string trailing;
    // Anything non-blank must parse fully: a typo'd line silently dropped
    // would make the experiment run a different fault history than the
    // file says.
    const bool ok = static_cast<bool>(fields >> ev.at_s >> ev.node) &&
                    !(fields >> trailing) && ev.at_s >= 0;
    if (!ok) {
      GCR_CHECK_MSG(false, ("fault trace line " + std::to_string(lineno) +
                            ": expected \"time_s node\"")
                               .c_str());
    }
    events.push_back(ev);
  }
  return events;
}

std::vector<FaultEvent> load_fault_trace(const std::string& path) {
  std::ifstream in(path);
  GCR_CHECK_MSG(in.good(),
                ("cannot open fault trace: " + path).c_str());
  return parse_fault_trace(in);
}

}  // namespace gcr::sim
