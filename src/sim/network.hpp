// Network model: per-node NIC egress serialization + propagation latency.
//
// Calibrated for the Gideon 300 cluster's switched Fast Ethernet: each node
// owns a full-duplex 100 Mb/s port; the switch is non-blocking, so the
// first-order contention effect is serialization at the sender's NIC. A
// message departs when the NIC is free, occupies it for `per_message +
// bytes/bandwidth`, and arrives `latency` after the occupation ends.
// Same-node transfers bypass the NIC (memory copy).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace gcr::sim {

struct NetParams {
  double latency_s = 70e-6;        ///< one-way wire+switch latency
  double bandwidth_Bps = 12.5e6;   ///< per-NIC egress bandwidth (100 Mb/s)
  double per_message_s = 10e-6;    ///< fixed per-message wire/stack cost
  double loopback_Bps = 400e6;     ///< same-node copy bandwidth (P4-era)
  double loopback_latency_s = 2e-6;
};

class Network {
 public:
  Network(Engine& engine, int num_nodes, const NetParams& params)
      : engine_(&engine), params_(params),
        egress_free_(static_cast<std::size_t>(num_nodes), 0) {}

  /// Nodes with their own NIC (valid src/dst range for send()).
  int num_nodes() const { return static_cast<int>(egress_free_.size()); }

  struct SendTimes {
    Time egress_done;  ///< when the sender's buffer is reusable
    Time arrival;      ///< when `deliver` runs at the destination
  };

  /// Schedules an asynchronous transfer; `deliver` runs at arrival time.
  /// The caller decides whether to block until egress_done (rendezvous data)
  /// or continue immediately (eager small messages).
  SendTimes send(int src_node, int dst_node, std::int64_t bytes,
                 SmallFn deliver);

  /// Pure timing query (no event scheduled, no NIC occupied).
  Time transfer_duration(std::int64_t bytes) const {
    return from_seconds(params_.per_message_s +
                        static_cast<double>(bytes) / params_.bandwidth_Bps +
                        params_.latency_s);
  }

  /// Cumulative payload bytes ever passed to send() (monotone).
  std::int64_t total_bytes() const { return total_bytes_; }
  /// Cumulative send() calls (monotone).
  std::int64_t total_messages() const { return total_messages_; }

 private:
  Engine* engine_;
  NetParams params_;
  std::vector<Time> egress_free_;  ///< per-node NIC next-free time
  std::int64_t total_bytes_ = 0;
  std::int64_t total_messages_ = 0;
};

}  // namespace gcr::sim
