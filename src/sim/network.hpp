// Network model: flat per-node NIC serialization, or a routed multi-link
// fabric with per-link fair-share contention.
//
// Flat (the default) is the paper's switched-Fast-Ethernet model: each node
// owns a full-duplex port, the switch is non-blocking, so the only
// contention is serialization at the sender's NIC. A message departs when
// the NIC is free, occupies it for `per_message + bytes/bandwidth`, and
// arrives `latency` after the occupation ends. This path is bit-identical
// to the pre-topology implementation: same arithmetic, same engine events.
//
// Routed topologies (fat-tree, dragonfly — sim/topology.hpp) model every
// directed physical link as a fair-share contended resource, reusing the
// resettling protocol proven in sim::StorageDevice: a transfer's rate is
// its *bottleneck* share, min over route links of bandwidth/active; each
// membership change settles the affected transfers' progress at the old
// rate and re-splits from now. Completion estimates live in a lazy min-heap
// invalidated by per-transfer generations; a single generation-guarded
// engine timer fires the earliest one. Each sender NIC admits
// `nic_concurrency` transfers; later sends queue FIFO at the sender, which
// keeps the active set (and the per-event resettle cost) bounded by nodes,
// not by outstanding messages. The steady path allocates nothing: transfers
// recycle through a pooled free list, link membership is intrusive, and the
// heap reuses its buffer.
//
// Kill protocol: abort_transfers_from(node) drops the node's queued and
// in-flight transfers (deliver/egress callbacks destroyed, survivors
// resettled to reclaim the bandwidth) — mirroring StorageDevice's
// ShareGuard release so a killed sender never strands link shares.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "sim/engine.hpp"
#include "sim/time.hpp"
#include "sim/topology.hpp"

namespace gcr::sim {

class ShardedEngine;
class Trigger;

struct NetParams {
  double latency_s = 70e-6;        ///< one-way wire+switch latency (flat)
  double bandwidth_Bps = 12.5e6;   ///< per-NIC egress bandwidth (100 Mb/s)
  double per_message_s = 10e-6;    ///< fixed per-message wire/stack cost
  double loopback_Bps = 400e6;     ///< same-node copy bandwidth (P4-era)
  double loopback_latency_s = 2e-6;
  /// Fabric shape + routing policy; kFlat selects the legacy model above.
  TopologyParams topology;
};

class Network {
 public:
  /// `routing_seed` feeds randomized routing policies (dragonfly Valiant);
  /// deterministic policies never draw from it.
  Network(Engine& engine, int num_nodes, const NetParams& params,
          std::uint64_t routing_seed = 0x6e6574);

  /// Nodes with their own NIC (valid src/dst range for send()).
  int num_nodes() const { return num_nodes_; }
  /// True when a multi-link topology routes transfers (not kFlat).
  bool routed() const { return topo_->kind() != TopologyKind::kFlat; }
  const Topology& topology() const { return *topo_; }

  struct SendTimes {
    Time egress_done;  ///< when the sender's buffer is reusable
    Time arrival;      ///< when `deliver` runs at the destination
    /// Nonzero for a routed fabric transfer: a handle for the egress-wait
    /// protocol below. 0 for flat and loopback sends (their egress_done is
    /// already exact).
    std::uint64_t ticket = 0;
  };

  /// Schedules an asynchronous transfer; `deliver` runs at arrival time.
  /// The returned times are exact for flat/loopback but uncontended
  /// *estimates* under routing, because a routed completion depends on
  /// future contention — block on the ticket (below) for the real signal.
  SendTimes send(int src_node, int dst_node, std::int64_t bytes,
                 SmallFn deliver);

  /// Shard-resident mode (flat fabric only): partitions the per-node NIC
  /// state by shard. Each node's sends must thereafter be issued from
  /// `node_to_shard[node]`'s thread — that shard exclusively owns the
  /// node's `egress_free_` slot and its clock drives the send arithmetic.
  /// Same-shard deliveries stay on the owning engine's fast call_at path;
  /// cross-shard deliveries go through `shards->post_at`, which is
  /// lookahead-sound because a flat arrival always trails the sender's
  /// clock by at least the wire latency the lookahead was derived from.
  /// The routed fabric's link/heap state is a single shared resettling
  /// machine and stays whole on one engine — never sharded (checked).
  void set_shard_router(ShardedEngine* shards, std::vector<int> node_to_shard);

  // ---- Egress-wait protocol (routed transfers only) ----
  // A sender that must block until its buffer drains registers a Trigger
  // against the ticket; the fabric fires it at bottleneck completion (the
  // same instant the arrival event is scheduled). The registration follows
  // StorageDevice's Active::done idiom: the *waiter* owns the trigger and
  // must clear the registration on unwind (kill-safety) — tickets are
  // generation-checked, so clearing after completion or abort is a no-op.

  /// True while the ticket's transfer is still queued or in flight.
  bool egress_pending(std::uint64_t ticket) const;
  /// Registers `t` to fire at the ticket's completion. The ticket must be
  /// pending; the trigger must outlive the wait (stack + RAII clear).
  void set_egress_trigger(std::uint64_t ticket, Trigger* t);
  /// Unregisters; safe on completed/aborted/reused tickets.
  void clear_egress_trigger(std::uint64_t ticket);

  /// Drops every queued and in-flight transfer originating at `src_node`:
  /// callbacks are destroyed (never fire), survivors sharing links speed
  /// up. Messages that already cleared their bottleneck (deliver event
  /// scheduled) still arrive — the wire cannot be recalled. No-op for flat,
  /// whose NIC timestamps model no recallable in-flight state.
  void abort_transfers_from(int src_node);

  /// Lower bound on the time any message between two distinct nodes spends
  /// in flight — the sharded engine's conservative lookahead (sim/shard.hpp).
  /// Flat: the wire latency. Routed: fewest cross-node hops times the
  /// per-hop latency (queueing and serialization only add to that).
  double min_remote_latency_s() const {
    return routed()
               ? topo_->min_cross_hops() * params_.topology.hop_latency_s
               : params_.latency_s;
  }
  /// Same bound derived from parameters alone, for use before a Network
  /// exists (cluster construction orders shards before the fabric). Routed
  /// topologies all satisfy min_cross_hops >= 2.
  static double min_remote_latency_s(const NetParams& p) {
    return p.topology.kind == TopologyKind::kFlat
               ? p.latency_s
               : 2.0 * p.topology.hop_latency_s;
  }

  /// Pure timing query (no event scheduled, no NIC occupied): the flat
  /// uncontended transfer time. Under routing this is an estimate.
  Time transfer_duration(std::int64_t bytes) const {
    return from_seconds(params_.per_message_s +
                        static_cast<double>(bytes) / params_.bandwidth_Bps +
                        params_.latency_s);
  }

  /// Cumulative payload bytes ever passed to send() (monotone; exact once
  /// the run quiesces — mid-run cross-shard reads see a relaxed snapshot).
  std::int64_t total_bytes() const {
    return total_bytes_.load(std::memory_order_relaxed);
  }
  /// Cumulative send() calls (monotone).
  std::int64_t total_messages() const {
    return total_messages_.load(std::memory_order_relaxed);
  }

  // Fabric accounting (routed transfers only; loopback and flat excluded).
  // Conservation invariant, checked by the torture suite:
  //   offered == delivered + dropped + (bytes still queued or in flight).
  std::int64_t fabric_bytes_offered() const { return fabric_offered_; }
  std::int64_t fabric_bytes_delivered() const { return fabric_delivered_; }
  std::int64_t fabric_bytes_dropped() const { return fabric_dropped_; }

  /// Transfers currently fair-sharing links / waiting for NIC admission.
  int active_transfers() const { return active_count_; }
  int queued_transfers() const { return queued_count_; }
  /// Admitted transfers currently crossing `link`.
  std::int32_t link_active(std::int32_t link) const {
    return link_active_[static_cast<std::size_t>(link)];
  }
  std::span<const std::int32_t> link_load() const { return link_active_; }

 private:
  static constexpr std::uint32_t kNil = 0xffffffffu;
  static constexpr double kDoneEpsBytes = 0.5;

  enum class XferState : std::uint8_t { kFree, kQueued, kActive };

  /// One routed transfer. `remaining` is settled lazily (exact only at its
  /// own settle points); link membership is an intrusive doubly-linked list
  /// per hop so joins/leaves never allocate.
  struct Transfer {
    double remaining = 0;    ///< bytes left at last_settle
    double rate = 0;         ///< bottleneck share, bytes/s
    Time last_settle = 0;
    std::int64_t bytes = 0;
    std::int32_t src = -1;
    std::int32_t dst = -1;
    std::uint32_t est_gen = 0;  ///< invalidates stale heap estimates
    Time est_time = 0;          ///< fire time of the live heap entry
    std::uint32_t epoch = 0;    ///< slot-reuse guard for tickets
    XferState state = XferState::kFree;
    Route route;
    SmallFn deliver;
    Trigger* egress = nullptr;  ///< fired at completion, if registered
    std::uint32_t next_queued = kNil;  ///< sender FIFO chain
    std::array<std::uint32_t, Route::kMaxHops> lnext;  ///< member handles
    std::array<std::uint32_t, Route::kMaxHops> lprev;
  };

  struct Link {
    double bandwidth_Bps = 0;
    std::uint32_t head = kNil;  ///< first member handle
  };

  /// Per-sender NIC admission: `admitted` in flight, the rest chained FIFO.
  struct NodeState {
    std::int32_t admitted = 0;
    std::uint32_t q_head = kNil;
    std::uint32_t q_tail = kNil;
  };

  /// Lazy completion estimate; stale when gen != transfer's est_gen.
  struct HeapEntry {
    Time t;
    std::uint64_t seq;  ///< push order, breaks same-tick ties
    std::uint32_t xfer;
    std::uint32_t gen;
  };
  struct HeapCmp {
    bool operator()(const HeapEntry& x, const HeapEntry& y) const {
      if (x.t != y.t) return x.t > y.t;
      return x.seq > y.seq;
    }
  };

  SendTimes send_flat(int src_node, int dst_node, std::int64_t bytes,
                      SmallFn deliver, Time now);
  /// The engine whose clock and queue serve `node` (home unless a shard
  /// router is installed).
  Engine& engine_for(int node) {
    return shards_ == nullptr ? *engine_ : shard_engine(node);
  }
  Engine& shard_engine(int node);
  int node_shard(int node) const {
    return node_shard_.empty() ? 0
                               : node_shard_[static_cast<std::size_t>(node)];
  }
  SendTimes send_routed(int src_node, int dst_node, std::int64_t bytes,
                        SmallFn deliver, Time now);
  std::uint64_t make_ticket(std::uint32_t idx) const {
    return (static_cast<std::uint64_t>(idx + 1) << 32) | pool_[idx].epoch;
  }
  /// Resolves a ticket to a live transfer slot, or kNil if stale.
  std::uint32_t ticket_slot(std::uint64_t ticket) const;

  /// Current fair share of one link: bandwidth * 1/active, via the
  /// reciprocal table (multiply, not divide — this runs ~1e9 times in a
  /// 4k-rank coordination storm). All rate producers use this exact
  /// expression so rate == share comparisons stay bitwise-exact.
  double share(std::size_t link) const {
    return links_[link].bandwidth_Bps *
           recip_[static_cast<std::size_t>(link_active_[link])];
  }

  std::uint32_t alloc_transfer();
  void free_transfer(std::uint32_t idx);
  void admit(std::uint32_t idx, Time now);
  void complete(std::uint32_t idx, Time now);
  /// Advances `remaining` to `now` at the pre-change rate.
  void settle(Transfer& t, Time now);
  double compute_rate(const Transfer& t) const;
  void push_estimate(std::uint32_t idx, Time now);
  /// Pushes a fresh estimate only if it beats the live entry; a live entry
  /// that fires early is harmless (on_timer re-estimates), one that fires
  /// late would deliver late, so only improvements need the heap.
  void maybe_push(std::uint32_t idx, Time now);
  /// Settles and re-rates the affected members of `link` after a membership
  /// change (skip = the transfer that triggered it, already fresh).
  /// `inserted` tells which direction the link's share moved: an insert can
  /// only clamp members down to the new share (no bottleneck search, no
  /// heap traffic — their live estimates just fire early), a removal
  /// re-derives the bottleneck for exactly the members this link was
  /// bottlenecking.
  void resettle_members(std::int32_t link, Time now, std::uint32_t skip,
                        bool inserted);
  void link_insert(std::int32_t link, std::uint32_t idx, int hop);
  void link_remove(std::int32_t link, std::uint32_t idx, int hop);
  void arm_timer();
  void on_timer();
  void compact_heap();

  Engine* engine_;
  NetParams params_;
  int num_nodes_;
  std::unique_ptr<Topology> topo_;
  Rng routing_rng_;
  std::vector<Time> egress_free_;  ///< flat path: per-node NIC next-free
  /// Resident-mode routing (null/empty = everything on `engine_`).
  ShardedEngine* shards_ = nullptr;
  std::vector<int> node_shard_;

  // Fabric state (sized only under routing).
  std::vector<Link> links_;
  std::vector<std::int32_t> link_active_;
  std::vector<double> recip_;  ///< recip_[a] == 1.0/a, up to peak occupancy
  std::vector<Transfer> pool_;
  std::vector<std::uint32_t> free_;
  std::vector<NodeState> nodes_;
  std::vector<HeapEntry> heap_;
  std::uint64_t heap_seq_ = 0;
  std::uint64_t timer_gen_ = 0;
  int active_count_ = 0;
  int queued_count_ = 0;

  std::atomic<std::int64_t> total_bytes_{0};
  std::atomic<std::int64_t> total_messages_{0};
  std::int64_t fabric_offered_ = 0;
  std::int64_t fabric_delivered_ = 0;
  std::int64_t fabric_dropped_ = 0;
};

}  // namespace gcr::sim
