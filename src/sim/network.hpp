// Network model: flat per-node NIC serialization, or a routed multi-link
// fabric with per-link fair-share contention.
//
// Flat (the default) is the paper's switched-Fast-Ethernet model: each node
// owns a full-duplex port, the switch is non-blocking, so the only
// contention is serialization at the sender's NIC. A message departs when
// the NIC is free, occupies it for `per_message + bytes/bandwidth`, and
// arrives `latency` after the occupation ends. This path is bit-identical
// to the pre-topology implementation: same arithmetic, same engine events.
//
// Routed topologies (fat-tree, dragonfly — sim/topology.hpp) model every
// directed physical link as a fair-share contended resource, reusing the
// resettling protocol proven in sim::StorageDevice: a transfer's rate is
// its *bottleneck* share, min over route links of bandwidth/active; each
// membership change settles the affected transfers' progress at the old
// rate and re-splits from now. Completion estimates live in a lazy min-heap
// invalidated by per-transfer generations; a single generation-guarded
// engine timer fires the earliest one. Each sender NIC admits
// `nic_concurrency` transfers; later sends queue FIFO at the sender, which
// keeps the active set (and the per-event resettle cost) bounded by nodes,
// not by outstanding messages. The steady path allocates nothing: transfers
// recycle through a pooled free list, link membership is intrusive, and the
// heap reuses its buffer.
//
// Shard residency (DESIGN.md §15.3): the contention machine itself is one
// shared resettling state and stays whole on the home engine. Senders on
// peer shards reach it over a fixed *injection edge* — the first hop of
// every route, modeled as one hop_latency_s of wire between the sender's
// NIC and the fabric (so an uncontended message still totals
// per_message + nhops*hop end to end: one hop at injection, nhops-1 at
// delivery). Each send writes a source-shard-owned op slot and posts a
// 16-byte inject op to the home shard at t + hop; the fabric batches every
// op landing on one tick and admits them in canonical (source node, send
// seq) order, so admission order — and with it routing RNG draws and
// fair-share splits — is independent of shard count. Completion posts the
// delivery to the destination's shard and an egress-done op back to the
// source's shard (both >= one hop in the future, which is exactly the
// sharded engine's lookahead). Slots are recycled only by those
// fabric-posted finalize ops, on the owning shard, so the steady path
// stays allocation-free and single-writer throughout.
//
// Kill protocol: abort_transfers_from(node) synchronously silences the
// node's pending op slots (shard-local: triggers unhook, tickets stop
// resolving), then sends an abort op through the same canonical queue; the
// fabric drops the node's queued and in-flight transfers when it arrives
// (survivors resettled to reclaim the bandwidth). Transfers that clear
// their bottleneck before the abort op lands still deliver — the wire
// cannot be recalled.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <span>
#include <vector>

#include "sim/engine.hpp"
#include "sim/time.hpp"
#include "sim/topology.hpp"

namespace gcr::sim {

class ShardedEngine;
class Trigger;

struct NetParams {
  double latency_s = 70e-6;        ///< one-way wire+switch latency (flat)
  double bandwidth_Bps = 12.5e6;   ///< per-NIC egress bandwidth (100 Mb/s)
  double per_message_s = 10e-6;    ///< fixed per-message wire/stack cost
  double loopback_Bps = 400e6;     ///< same-node copy bandwidth (P4-era)
  double loopback_latency_s = 2e-6;
  /// Fabric shape + routing policy; kFlat selects the legacy model above.
  TopologyParams topology;
};

class Network {
 public:
  /// `routing_seed` feeds randomized routing policies (dragonfly Valiant);
  /// deterministic policies never draw from it.
  Network(Engine& engine, int num_nodes, const NetParams& params,
          std::uint64_t routing_seed = 0x6e6574);

  /// Nodes with their own NIC (valid src/dst range for send()).
  int num_nodes() const { return num_nodes_; }
  /// True when a multi-link topology routes transfers (not kFlat).
  bool routed() const { return topo_->kind() != TopologyKind::kFlat; }
  const Topology& topology() const { return *topo_; }

  struct SendTimes {
    Time egress_done;  ///< when the sender's buffer is reusable
    Time arrival;      ///< when `deliver` runs at the destination
    /// Nonzero for a routed fabric transfer: a handle for the egress-wait
    /// protocol below. 0 for flat and loopback sends (their egress_done is
    /// already exact).
    std::uint64_t ticket = 0;
  };

  /// Schedules an asynchronous transfer; `deliver` runs at arrival time.
  /// The returned times are exact for flat/loopback but uncontended
  /// *estimates* under routing, because a routed completion depends on
  /// future contention — block on the ticket (below) for the real signal.
  SendTimes send(int src_node, int dst_node, std::int64_t bytes,
                 SmallFn deliver);

  /// Shard-resident mode. Each node's sends must thereafter be issued from
  /// `node_to_shard[node]`'s thread — that shard exclusively owns the
  /// node's NIC timestamp (flat), op lane and send-seq counter (routed),
  /// and its clock drives the send arithmetic. Flat: same-shard deliveries
  /// stay on the owning engine's fast call_at path; cross-shard deliveries
  /// go through `shards->post_at`, lookahead-sound because a flat arrival
  /// always trails the sender's clock by at least the wire latency the
  /// lookahead was derived from. Routed: the contention machine stays
  /// whole on the home engine (shard 0 — checked) and peer shards reach it
  /// over the one-hop injection edge (see the header comment), so every
  /// cross-shard post is at least hop_latency_s — the routed lookahead —
  /// in the future.
  void set_shard_router(ShardedEngine* shards, std::vector<int> node_to_shard);

  // ---- Egress-wait protocol (routed transfers only) ----
  // A sender that must block until its buffer drains registers a Trigger
  // against the ticket; the fabric fires it at bottleneck completion (the
  // same instant the arrival event is scheduled). The registration follows
  // StorageDevice's Active::done idiom: the *waiter* owns the trigger and
  // must clear the registration on unwind (kill-safety) — tickets are
  // generation-checked, so clearing after completion or abort is a no-op.

  /// True while the ticket's transfer is still queued or in flight.
  bool egress_pending(std::uint64_t ticket) const;
  /// Registers `t` to fire at the ticket's completion. The ticket must be
  /// pending; the trigger must outlive the wait (stack + RAII clear).
  void set_egress_trigger(std::uint64_t ticket, Trigger* t);
  /// Unregisters; safe on completed/aborted/reused tickets.
  void clear_egress_trigger(std::uint64_t ticket);

  /// Drops every queued and in-flight transfer originating at `src_node`:
  /// callbacks are destroyed (never fire), survivors sharing links speed
  /// up. Messages that already cleared their bottleneck (deliver event
  /// scheduled) still arrive — the wire cannot be recalled. No-op for flat,
  /// whose NIC timestamps model no recallable in-flight state.
  void abort_transfers_from(int src_node);

  /// Lower bound on the time any cross-shard edge of a message spends in
  /// flight — the sharded engine's conservative lookahead (sim/shard.hpp).
  /// Flat: the wire latency (sender shard -> destination shard direct).
  /// Routed: ONE hop_latency_s — the injection edge between a sender's NIC
  /// and the fabric's home shard, which is also the tightest fabric-side
  /// post (egress-done ops return after exactly one hop; deliveries cross
  /// at least the route's remaining nhops-1 >= 1 hops).
  double min_remote_latency_s() const {
    return routed() ? params_.topology.hop_latency_s : params_.latency_s;
  }
  /// Same bound derived from parameters alone, for use before a Network
  /// exists (cluster construction orders shards before the fabric).
  static double min_remote_latency_s(const NetParams& p) {
    return p.topology.kind == TopologyKind::kFlat
               ? p.latency_s
               : p.topology.hop_latency_s;
  }

  /// Fixed delay of the routed injection edge (and of the egress-done
  /// return): one hop_latency_s, floored at one tick so a zero-latency
  /// test config still satisfies the sharded engine's clamped minimum
  /// lookahead. Admission state (link_active / active_transfers /
  /// queued_transfers) becomes visible only after this edge crosses.
  Time inject_latency() const {
    return std::max<Time>(1, from_seconds(params_.topology.hop_latency_s));
  }

  /// Pure timing query (no event scheduled, no NIC occupied): the flat
  /// uncontended transfer time. Under routing this is an estimate.
  Time transfer_duration(std::int64_t bytes) const {
    return from_seconds(params_.per_message_s +
                        static_cast<double>(bytes) / params_.bandwidth_Bps +
                        params_.latency_s);
  }

  /// Cumulative payload bytes ever passed to send() (monotone; exact once
  /// the run quiesces — mid-run cross-shard reads see a relaxed snapshot).
  std::int64_t total_bytes() const {
    return total_bytes_.load(std::memory_order_relaxed);
  }
  /// Cumulative send() calls (monotone).
  std::int64_t total_messages() const {
    return total_messages_.load(std::memory_order_relaxed);
  }

  // Fabric accounting (routed transfers only; loopback and flat excluded).
  // Conservation invariant, checked by the torture suite:
  //   offered == delivered + dropped + (bytes still queued or in flight).
  std::int64_t fabric_bytes_offered() const { return fabric_offered_; }
  std::int64_t fabric_bytes_delivered() const { return fabric_delivered_; }
  std::int64_t fabric_bytes_dropped() const { return fabric_dropped_; }

  /// Transfers currently fair-sharing links / waiting for NIC admission.
  int active_transfers() const { return active_count_; }
  int queued_transfers() const { return queued_count_; }
  /// Admitted transfers currently crossing `link`.
  std::int32_t link_active(std::int32_t link) const {
    return link_active_[static_cast<std::size_t>(link)];
  }
  std::span<const std::int32_t> link_load() const { return link_active_; }

 private:
  static constexpr std::uint32_t kNil = 0xffffffffu;
  static constexpr double kDoneEpsBytes = 0.5;

  enum class XferState : std::uint8_t { kFree, kQueued, kActive };

  /// Source-shard-owned handle for one routed send. The content fields
  /// (seq/src/dst/bytes/deliver) are written by the sender before the
  /// inject op is posted and consumed exactly once by the fabric when the
  /// op lands (the post's happens-before covers the read); the control
  /// fields (pending/egress/epoch) are touched ONLY by the owning shard —
  /// by the sender, by abort purges, and by the fabric-posted finalize op
  /// that runs back on that shard and is the sole recycler.
  struct OpSlot {
    SmallFn deliver;
    std::uint64_t seq = 0;      ///< per-source-node send order
    Trigger* egress = nullptr;  ///< fired when the egress-done op lands
    std::int64_t bytes = 0;
    std::int32_t src = -1;
    std::int32_t dst = -1;
    std::uint32_t epoch = 0;  ///< slot-reuse guard for tickets
    std::uint32_t self = 0;   ///< index within the lane
    std::uint16_t lane = 0;   ///< owning shard's lane
    bool pending = false;     ///< send issued, egress-done not yet landed
  };

  /// Per-shard slot arena. A deque keeps element addresses stable while
  /// the owning shard appends, so the fabric can hold bare OpSlot*s across
  /// the cross-shard edge without ever touching the container.
  struct Lane {
    std::deque<OpSlot> slots;
    std::vector<std::uint32_t> free;
  };

  /// One fabric op awaiting the canonical per-tick flush: an injection
  /// (slot != nullptr) or a source abort (slot == nullptr).
  struct PendingOp {
    std::int32_t src;
    std::uint64_t seq;
    OpSlot* slot;
  };

  /// One routed transfer. `remaining` is settled lazily (exact only at its
  /// own settle points); link membership is an intrusive doubly-linked list
  /// per hop so joins/leaves never allocate.
  struct Transfer {
    double remaining = 0;    ///< bytes left at last_settle
    double rate = 0;         ///< bottleneck share, bytes/s
    Time last_settle = 0;
    std::int64_t bytes = 0;
    std::int32_t src = -1;
    std::int32_t dst = -1;
    std::uint32_t est_gen = 0;  ///< invalidates stale heap estimates
    Time est_time = 0;          ///< fire time of the live heap entry
    std::uint64_t src_seq = 0;  ///< injection order key (abort guard)
    OpSlot* op = nullptr;       ///< source-side slot, for finalize posts
    XferState state = XferState::kFree;
    Route route;
    SmallFn deliver;
    std::uint32_t next_queued = kNil;  ///< sender FIFO chain
    std::array<std::uint32_t, Route::kMaxHops> lnext;  ///< member handles
    std::array<std::uint32_t, Route::kMaxHops> lprev;
  };

  struct Link {
    double bandwidth_Bps = 0;
    std::uint32_t head = kNil;  ///< first member handle
  };

  /// Per-sender NIC admission: `admitted` in flight, the rest chained FIFO.
  struct NodeState {
    std::int32_t admitted = 0;
    std::uint32_t q_head = kNil;
    std::uint32_t q_tail = kNil;
  };

  /// Lazy completion estimate; stale when gen != transfer's est_gen.
  struct HeapEntry {
    Time t;
    std::uint64_t seq;  ///< push order, breaks same-tick ties
    std::uint32_t xfer;
    std::uint32_t gen;
  };
  struct HeapCmp {
    bool operator()(const HeapEntry& x, const HeapEntry& y) const {
      if (x.t != y.t) return x.t > y.t;
      return x.seq > y.seq;
    }
  };

  SendTimes send_flat(int src_node, int dst_node, std::int64_t bytes,
                      SmallFn deliver, Time now);
  /// The engine whose clock and queue serve `node` (home unless a shard
  /// router is installed).
  Engine& engine_for(int node) {
    return shards_ == nullptr ? *engine_ : shard_engine(node);
  }
  Engine& shard_engine(int node);
  int node_shard(int node) const {
    return node_shard_.empty() ? 0
                               : node_shard_[static_cast<std::size_t>(node)];
  }
  SendTimes send_routed(int src_node, int dst_node, std::int64_t bytes,
                        SmallFn deliver, Time now);
  static std::uint64_t make_ticket(const OpSlot& s) {
    return (static_cast<std::uint64_t>(s.lane) << 56) |
           (static_cast<std::uint64_t>(s.self + 1) << 32) | s.epoch;
  }
  /// Resolves a ticket to its live op slot, or nullptr if stale. Reads
  /// slot control state, so: owning shard only.
  const OpSlot* ticket_op(std::uint64_t ticket) const;
  OpSlot* alloc_slot(int lane_id);
  /// Egress-done / release landing on the owning shard: fires a still-
  /// registered trigger and recycles the slot (the only recycler).
  void finalize_slot(OpSlot* op);
  /// Posts `fn` from `node`'s shard to the fabric's home shard.
  void post_to_fabric(int src_node, Time at, SmallFn fn);
  /// Posts `fn` from the fabric's home shard to `node`'s shard.
  void post_from_fabric(int node, Time at, SmallFn fn);
  /// Fabric side: queues an op for the canonical flush of the current tick.
  void enqueue_fabric_op(std::int32_t src, std::uint64_t seq, OpSlot* slot);
  /// Runs after every op targeting this tick is queued (call_at at `now`
  /// sequences behind them); admits/aborts in (source node, seq) order.
  void flush_fabric_ops();
  void do_inject(OpSlot* op, Time now);
  void do_abort(std::int32_t node, std::uint64_t abort_seq, Time now);
  /// Drops one queued-or-active transfer at the fabric: accounts the bytes,
  /// frees the pool slot, and posts the release op to the source's shard.
  void drop_transfer(std::uint32_t idx, Time now);

  /// Current fair share of one link: bandwidth * 1/active, via the
  /// reciprocal table (multiply, not divide — this runs ~1e9 times in a
  /// 4k-rank coordination storm). All rate producers use this exact
  /// expression so rate == share comparisons stay bitwise-exact.
  double share(std::size_t link) const {
    return links_[link].bandwidth_Bps *
           recip_[static_cast<std::size_t>(link_active_[link])];
  }

  std::uint32_t alloc_transfer();
  void free_transfer(std::uint32_t idx);
  void admit(std::uint32_t idx, Time now);
  void complete(std::uint32_t idx, Time now);
  /// Advances `remaining` to `now` at the pre-change rate.
  void settle(Transfer& t, Time now);
  double compute_rate(const Transfer& t) const;
  void push_estimate(std::uint32_t idx, Time now);
  /// Pushes a fresh estimate only if it beats the live entry; a live entry
  /// that fires early is harmless (on_timer re-estimates), one that fires
  /// late would deliver late, so only improvements need the heap.
  void maybe_push(std::uint32_t idx, Time now);
  /// Settles and re-rates the affected members of `link` after a membership
  /// change (skip = the transfer that triggered it, already fresh).
  /// `inserted` tells which direction the link's share moved: an insert can
  /// only clamp members down to the new share (no bottleneck search, no
  /// heap traffic — their live estimates just fire early), a removal
  /// re-derives the bottleneck for exactly the members this link was
  /// bottlenecking.
  void resettle_members(std::int32_t link, Time now, std::uint32_t skip,
                        bool inserted);
  void link_insert(std::int32_t link, std::uint32_t idx, int hop);
  void link_remove(std::int32_t link, std::uint32_t idx, int hop);
  void arm_timer();
  void on_timer();
  void compact_heap();

  Engine* engine_;
  NetParams params_;
  int num_nodes_;
  std::unique_ptr<Topology> topo_;
  Rng routing_rng_;
  std::vector<Time> egress_free_;  ///< flat path: per-node NIC next-free
  /// Resident-mode routing (null/empty = everything on `engine_`).
  ShardedEngine* shards_ = nullptr;
  std::vector<int> node_shard_;

  // Fabric state (sized only under routing).
  std::vector<Link> links_;
  std::vector<std::int32_t> link_active_;
  std::vector<double> recip_;  ///< recip_[a] == 1.0/a, up to peak occupancy
  std::vector<Transfer> pool_;
  std::vector<std::uint32_t> free_;
  std::vector<NodeState> nodes_;
  std::deque<Lane> lanes_;  ///< one op-slot arena per shard (one unsharded)
  std::vector<std::uint64_t> node_seq_;  ///< per-node send/abort order
  std::vector<PendingOp> pending_ops_;   ///< fabric ops awaiting this tick's flush
  bool flush_scheduled_ = false;
  std::vector<HeapEntry> heap_;
  std::uint64_t heap_seq_ = 0;
  std::uint64_t timer_gen_ = 0;
  int active_count_ = 0;
  int queued_count_ = 0;

  std::atomic<std::int64_t> total_bytes_{0};
  std::atomic<std::int64_t> total_messages_{0};
  std::int64_t fabric_offered_ = 0;
  std::int64_t fabric_delivered_ = 0;
  std::int64_t fabric_dropped_ = 0;
};

}  // namespace gcr::sim
