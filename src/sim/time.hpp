// Simulation time.
//
// Time is integer nanoseconds since simulation start. Integer ticks keep the
// event order total and bit-reproducible; doubles are only used at the edges
// (cost models, report output).
#pragma once

#include <cstdint>
#include <limits>

namespace gcr::sim {

using Time = std::int64_t;  // nanoseconds

inline constexpr Time kTimeMax = std::numeric_limits<Time>::max();

inline constexpr Time operator""_ns(unsigned long long v) {
  return static_cast<Time>(v);
}
inline constexpr Time operator""_us(unsigned long long v) {
  return static_cast<Time>(v) * 1'000;
}
inline constexpr Time operator""_ms(unsigned long long v) {
  return static_cast<Time>(v) * 1'000'000;
}
inline constexpr Time operator""_s(unsigned long long v) {
  return static_cast<Time>(v) * 1'000'000'000;
}

/// Converts seconds (double) to ticks, rounding to nearest; negative durations
/// clamp to zero (cost models occasionally produce tiny negatives from
/// floating-point noise).
inline constexpr Time from_seconds(double seconds) {
  if (seconds <= 0.0) return 0;
  return static_cast<Time>(seconds * 1e9 + 0.5);
}

/// Ticks to seconds (report output / cost-model edges only; simulation
/// arithmetic stays in integer ticks).
inline constexpr double to_seconds(Time t) {
  return static_cast<double>(t) / 1e9;
}

}  // namespace gcr::sim
