// SmallFn: move-only callable with small-buffer-optimized storage, the
// payload type of the engine's typed event queue.
//
// The common engine callbacks (timer lambdas, delivery thunks capturing a
// couple of pointers) fit in the 48-byte inline buffer and cost zero heap
// allocations to enqueue; oversized captures (e.g. a full Message copy on
// the network delivery path) fall back to one heap allocation, exactly like
// std::function but without its copyability requirement or 16-byte SBO
// limit. Relocation (vector growth, pool reuse) is a flat function-pointer
// call on a 3-entry ops table.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace gcr::sim {

class SmallFn {
 public:
  static constexpr std::size_t kInlineBytes = 48;

  SmallFn() = default;

  template <class F,
            class D = std::decay_t<F>,
            class = std::enable_if_t<!std::is_same_v<D, SmallFn> &&
                                     std::is_invocable_r_v<void, D&>>>
  SmallFn(F&& f) {  // NOLINT(google-explicit-constructor): drop-in for
                    // std::function at call_at/post call sites
    if constexpr (fits_inline<D>()) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else {
      ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(f)));
      ops_ = &kHeapOps<D>;
    }
  }

  SmallFn(SmallFn&& other) noexcept { move_from(other); }
  SmallFn& operator=(SmallFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;
  ~SmallFn() { reset(); }

  explicit operator bool() const { return ops_ != nullptr; }

  void operator()() { ops_->invoke(buf_); }

 private:
  struct Ops {
    void (*invoke)(void* obj);
    /// Move-constructs into `dst` from `src` and destroys `src`.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* obj) noexcept;
  };

  template <class D>
  static constexpr bool fits_inline() {
    return sizeof(D) <= kInlineBytes &&
           alignof(D) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<D>;
  }

  template <class D>
  static D* as(void* obj) {
    return std::launder(static_cast<D*>(obj));
  }

  template <class D>
  static constexpr Ops kInlineOps = {
      [](void* obj) { (*as<D>(obj))(); },
      [](void* dst, void* src) noexcept {
        D* s = as<D>(src);
        ::new (dst) D(std::move(*s));
        s->~D();
      },
      [](void* obj) noexcept { as<D>(obj)->~D(); },
  };

  // Heap fallback stores a single D* in the buffer; the pointer itself is
  // trivially destructible, so relocate/destroy only manage the pointee.
  template <class D>
  static constexpr Ops kHeapOps = {
      [](void* obj) { (**as<D*>(obj))(); },
      [](void* dst, void* src) noexcept { ::new (dst) D*(*as<D*>(src)); },
      [](void* obj) noexcept { delete *as<D*>(obj); },
  };

  void move_from(SmallFn& other) noexcept {
    if (other.ops_) {
      other.ops_->relocate(buf_, other.buf_);
      ops_ = std::exchange(other.ops_, nullptr);
    }
  }

  void reset() noexcept {
    if (ops_) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  const Ops* ops_ = nullptr;
  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
};

}  // namespace gcr::sim
