// Sharded parallel event engine: S single-threaded Engines advanced in
// conservative-lookahead windows on S threads (DESIGN.md §15).
//
// Protocol (synchronous windowed, YAWNS-style): each round, every shard
// publishes the exact timestamp of its earliest pending event (T_i, kTimeMax
// when idle); a barrier completion computes per-shard horizons
//
//   U_i = min_{j != i} (T_j) + lookahead - 1
//
// and each shard dispatches its events with time <= U_i in parallel. The
// lookahead L is the minimum cross-shard delivery latency (derived from the
// network fabric, clamped to >= 1 ns), so nothing a peer does this round can
// schedule work on shard i at or before U_i — every cross-shard message
// sent from time T_j arrives at >= T_j + L > U_i. Idle shards publish
// kTimeMax and therefore never constrain anyone: a run whose activity lives
// on one shard executes in a single unbounded window.
//
// Cross-shard traffic goes through per-(src,dst) SPSC mailboxes: the source
// thread appends during its window (it is the only writer), a barrier
// separates the window from the drain, and the destination merges all of
// its inboxes sorted by (arrival time, source shard, send order) before
// re-entering its engine through call_at. Destination sequence numbers are
// therefore assigned in a deterministic order — dispatch is bit-identical
// for a given shard count regardless of thread scheduling, and workloads
// whose cross-shard sends carry fixed arrival times replay byte-identically
// across shard counts.
//
// num_shards() == 1 is the literal existing single-threaded path: run and
// run_while forward straight to Engine with no threads, no barriers and no
// mailboxes.
//
// Waiter handles, channels and awaitables stay shard-local (they hold a
// reference to one Engine); the only legal cross-shard edge is post_at.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/engine.hpp"
#include "sim/smallfn.hpp"
#include "sim/time.hpp"

namespace gcr::sim {

class ShardedEngine {
 public:
  /// `lookahead` is the conservative horizon increment: the minimum time a
  /// cross-shard message spends in flight. Clamped to >= 1 ns — a zero
  /// lookahead cannot order sender and receiver and would deadlock the
  /// window protocol.
  explicit ShardedEngine(int num_shards, Time lookahead = 1);
  ~ShardedEngine();
  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  int num_shards() const { return static_cast<int>(engines_.size()); }
  Time lookahead() const { return lookahead_; }

  /// Shard s's engine. Model objects built against shard(s) (channels,
  /// awaitables, storage devices) are owned by that shard's thread during
  /// run — they must not be touched from another shard.
  Engine& shard(int s) { return *engines_[static_cast<std::size_t>(s)]; }
  const Engine& shard(int s) const {
    return *engines_[static_cast<std::size_t>(s)];
  }
  /// The coordinator shard (shard 0): hosts run_while predicates and, until
  /// the model layers are partitioned, the experiment's rank processes.
  Engine& home() { return *engines_[0]; }

  /// Schedules `fn` on shard `to` at absolute time t. Same-shard calls
  /// forward to call_at unrestricted. Cross-shard calls must respect the
  /// lookahead (t >= shard(from).now() + lookahead, checked) and must be
  /// made from shard `from`'s thread (its window) or while no run is in
  /// progress.
  void post_at(int from, int to, Time t, SmallFn fn);

  /// Runs all shards until every queue drains or every next event lies
  /// beyond `until`. Events at exactly `until` execute. Applies Engine::
  /// run's clock-advance rule per shard on return. Returns total events.
  std::uint64_t run(Time until = kTimeMax);

  /// Runs while `keep_going()` is true, evaluated on shard 0 between its
  /// events (the existing run_while contract). When it turns false, peer
  /// shards finish their in-flight window (conservative: those events are
  /// concurrent with the stop decision) and the run returns.
  std::uint64_t run_while(const std::function<bool()>& keep_going);

  /// True when every shard's queue and every mailbox is empty.
  bool idle() const;
  /// Sum of events dispatched across shards (monotone).
  std::uint64_t events_processed() const;
  /// Events dispatched by one shard (monotone) — the occupancy counter that
  /// proves a shard executed work rather than idling through the windows.
  std::uint64_t shard_events(int s) const {
    return engines_[static_cast<std::size_t>(s)]->events_processed();
  }

  /// Lower bound on the global simulated time: the latest window-plan time
  /// (the minimum next-event time across shards, computed under the round
  /// barrier), never behind the home shard's clock. With one shard this is
  /// exactly home().now(). Safe to read from shard 0's thread mid-run (the
  /// barrier orders the write) and from the driving thread between runs;
  /// deadline watchdogs must use this rather than home().now(), whose clock
  /// freezes while activity lives on peer shards.
  Time virtual_now() const;
  /// Max of the shard clocks — the earliest instant that is in no shard's
  /// past. Only meaningful between runs (single-threaded caller); timers
  /// that must be schedulable on every shard (whole-application restarts)
  /// anchor here.
  Time max_now() const;

 private:
  struct Msg {
    Time at;
    SmallFn fn;
  };

  std::uint64_t drive(Time until, const std::function<bool()>* keep_going);
  void drain_inbox(int dst);

  Time lookahead_;
  std::vector<std::unique_ptr<Engine>> engines_;
  /// box_[src * S + dst]: appended by src's thread during a window, drained
  /// by dst's thread after the quiesce barrier (barrier gives happens-
  /// before, so plain vectors are race-free).
  std::vector<std::vector<Msg>> box_;
  /// Merge staging: (at, src, send index) keys sorted before insertion.
  struct MergeRef {
    Time at;
    std::uint32_t src;
    std::uint32_t idx;
  };
  std::vector<std::vector<MergeRef>> merge_;   // per dst, reused
  std::vector<Time> next_time_;                // T_i, barrier-synced
  std::vector<Time> window_until_;             // U_i, barrier-synced
  std::atomic<bool> stop_{false};              // pred turned false
  bool done_ = false;                          // barrier completion verdict
  Time round_time_ = 0;  // last round's global min next-event time (g)
};

}  // namespace gcr::sim
