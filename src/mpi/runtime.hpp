// MiniMPI runtime: rank management, matched point-to-point transport with
// FIFO ordering per pair, tree-based collectives, and the lifecycle
// operations (kill / snapshot / restore / respawn) the checkpoint protocols
// orchestrate.
//
// Apps are coroutines `Co<void> body(AppHandle)`; every MPI call is a
// co_await. One rank maps to one cluster node (paper setup); the last
// cluster node is reserved for the checkpoint driver ("mpirun").
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "mpi/hooks.hpp"
#include "mpi/message.hpp"
#include "mpi/rank.hpp"
#include "sim/cluster.hpp"
#include "sim/co.hpp"

namespace gcr::mpi {

struct RuntimeOptions {
  double cpu_send_overhead_s = 20e-6;  ///< per-send stack/syscall CPU cost
  double cpu_recv_overhead_s = 15e-6;  ///< per-recv matching/copy CPU cost
  bool verify_delivery = true;  ///< assert seq/checksum invariants on consume
};

class Runtime;

/// What an application body receives: its rank plus the MPI-like call
/// surface. Thin value wrapper so app code reads naturally.
class AppHandle {
 public:
  AppHandle(Runtime& rt, Rank& rank) : rt_(&rt), rank_(&rank) {}

  Rank& rank() const { return *rank_; }
  RankId id() const;
  int nranks() const;
  std::uint64_t start_iteration() const;

  /// Blocking send of `bytes` to dst (returns when the buffer is reusable).
  sim::Co<void> send(RankId dst, int tag, std::int64_t bytes);
  /// Blocking matched receive.
  sim::Co<Message> recv(RankId src, int tag);
  /// Simultaneous exchange (isend + recv + wait) — deadlock-free pairwise.
  sim::Co<Message> sendrecv(RankId dst, int stag, std::int64_t sbytes,
                            RankId src, int rtag);
  /// Models `seconds` of local computation.
  sim::Co<void> compute(double seconds);
  /// Current simulated time on this rank's engine (its shard when
  /// resident). Open-loop workloads use this to sleep until the next
  /// scheduled arrival instead of a fixed per-iteration compute.
  double now_s() const;
  /// Safe point: top of an app iteration; checkpoints execute here.
  sim::Co<void> safepoint(std::uint64_t iteration);

  // Collectives (built on p2p, so protocol hooks see every hop).
  sim::Co<void> barrier();
  sim::Co<void> bcast(RankId root, std::int64_t bytes);
  sim::Co<void> reduce(RankId root, std::int64_t bytes);
  sim::Co<void> allreduce(std::int64_t bytes);
  sim::Co<void> gather(RankId root, std::int64_t bytes_per_rank);
  sim::Co<void> alltoall(std::int64_t bytes_per_pair);

 private:
  Runtime* rt_;
  Rank* rank_;
};

using AppBody = std::function<sim::Co<void>(AppHandle)>;

class Runtime {
 public:
  Runtime(sim::Cluster& cluster, int nranks, RuntimeOptions options = {});

  sim::Cluster& cluster() { return *cluster_; }
  sim::Engine& engine() { return cluster_->engine(); }
  /// The engine a rank's coroutines, channels and timers run on: its shard
  /// in resident mode, the home shard otherwise. Everything rank-scoped
  /// (spawns, delays, waiter handles) must go through this, never engine().
  sim::Engine& engine_of(RankId id) {
    return resident_ ? cluster_->shards().shard(shard_of(id))
                     : cluster_->engine();
  }
  sim::Engine& engine_of(const Rank& rank) { return engine_of(rank.id()); }
  int nranks() const { return static_cast<int>(ranks_.size()); }
  Rank& rank(RankId id) { return *ranks_[static_cast<std::size_t>(id)]; }
  const RuntimeOptions& options() const { return options_; }

  /// Node index reserved for the checkpoint driver (mpirun).
  int driver_node() const { return nranks(); }

  void set_protocol(Interposer* protocol) { protocol_ = protocol; }
  Interposer* protocol() const { return protocol_; }
  void add_observer(Observer* obs) { observers_.push_back(obs); }

  /// Installs the application and spawns all ranks (fresh start).
  void start_app(AppBody body);

  /// True once every rank's app body returned normally. Resident mode reads
  /// a home-shard mirror that trails each finish by the lookahead: the
  /// run_while predicate (and the driver's scheduler) then never observes a
  /// peer shard's sim-future, so the verdict is deterministic. Wall-clock
  /// results come from finish_time(), which is exact either way.
  bool job_finished() const {
    if (resident_) return finished_view_home_ == nranks();
    return finished_ranks_.load(std::memory_order_relaxed) == nranks();
  }
  sim::Trigger& job_done() { return *job_done_; }
  /// Latest per-rank local time at which an app body returned — the job's
  /// modeled completion instant (identical to engine().now() at the moment
  /// the single-shard run_while predicate stops the run).
  sim::Time finish_time() const {
    return finish_time_.load(std::memory_order_relaxed);
  }

  // ---- p2p / compute (called via AppHandle) ----
  sim::Co<void> send(Rank& rank, RankId dst, int tag, std::int64_t bytes);
  sim::Co<Message> recv(Rank& rank, RankId src, int tag);
  sim::Co<Message> sendrecv(Rank& rank, RankId dst, int stag,
                            std::int64_t sbytes, RankId src, int rtag);
  sim::Co<void> compute(Rank& rank, double seconds);
  sim::Co<void> safepoint(Rank& rank, std::uint64_t iteration);

  // ---- collectives ----
  sim::Co<void> barrier(Rank& rank);
  sim::Co<void> bcast(Rank& rank, RankId root, std::int64_t bytes);
  sim::Co<void> reduce(Rank& rank, RankId root, std::int64_t bytes);
  sim::Co<void> allreduce(Rank& rank, std::int64_t bytes);
  sim::Co<void> gather(Rank& rank, RankId root, std::int64_t bytes_per_rank);
  sim::Co<void> alltoall(Rank& rank, std::int64_t bytes_per_pair);

  // ---- control plane (used by protocols and the checkpoint driver) ----
  /// Sends a control message from one rank's daemon to another rank's
  /// daemon. Pays normal network costs; never logged or counted.
  void send_ctrl(RankId src_rank, RankId dst, Message msg);
  /// Control message from the driver node (mpirun).
  void send_ctrl_from_driver(RankId dst, Message msg);

  /// Re-sends a logged app-plane message (sender-based replay). Bypasses the
  /// protocol's before_send (it IS the protocol acting) and does not bump
  /// the sender's S counters (they already account for the original send).
  /// Returns the network send times so the caller can pace replay: exact
  /// egress under the flat model, a ticket to block on under routing.
  sim::Network::SendTimes replay_send(Rank& sender, const Message& original);

  /// Blocks until the ticket's transfer clears its bottleneck (routed
  /// fabrics). No-op for a zero ticket or an already-completed transfer;
  /// kill-safe (the registration is cleared on unwind). `eng` must be the
  /// sending rank's engine — the ticket's slot is shard-resident there.
  sim::Co<void> await_egress(sim::Engine& eng, std::uint64_t ticket);

  /// True when the cluster routes transfers over a multi-link topology —
  /// callers then pace sends via await_egress instead of egress timestamps.
  bool routed_network() { return cluster_->network().routed(); }

  // ---- lifecycle (used by protocols / recovery orchestration) ----
  /// Captures the runtime-visible state of a rank (at a safe point).
  RankSnapshot snapshot_rank(const Rank& rank) const;

  /// Kills the app and daemon coroutines; the rank stops receiving.
  void kill_rank(Rank& rank);

  /// Prepares a new incarnation: bumps the incarnation, clears all volatile
  /// state, closes the resume gate. Call restore_rank (or leave zeroed for a
  /// from-scratch restart) and then respawn_rank.
  void begin_restart(Rank& rank);

  /// Installs snapshot state into the (reset) rank.
  void restore_rank(Rank& rank, const RankSnapshot& snap);

  /// Spawns the daemon (via protocol->rank_started) and the app coroutine;
  /// the app waits on the resume gate, which the protocol fires when the
  /// restart preparation (exchange/replay setup) is complete.
  void respawn_rank(Rank& rank);

  /// Registers the daemon coroutine handle so kill_rank can reach it.
  void set_daemon_proc(Rank& rank, sim::ProcPtr proc);

  /// Lets a protocol mark a finished rank as running again (used only by
  /// whole-application restart experiments).
  void clear_finished(Rank& rank);

  /// Internal: invoked by the app wrapper coroutine.
  sim::Co<void> run_app_body(Rank& rank);
  void note_app_finished(Rank& rank);

  /// Diagnostic dump of every rank's communication state (blocked receives,
  /// queue depths, counters) — for debugging stuck simulations.
  void debug_dump(std::ostream& os) const;

  /// Total app-plane bytes/messages ever sent (for reports).
  std::int64_t app_bytes_sent() const {
    return app_bytes_sent_.load(std::memory_order_relaxed);
  }
  std::int64_t app_messages_sent() const {
    return app_messages_sent_.load(std::memory_order_relaxed);
  }

  // ---- shard placement (DESIGN.md §15.3) ----
  /// Installs a rank -> engine-shard plan (exp::plan_rank_shards keeps
  /// checkpoint groups whole). With `resident` true and a multi-shard
  /// cluster, the plan is *applied*: every rank's object, coroutines,
  /// channels and gates are rebuilt on its shard's engine, the network's
  /// per-node NIC state is partitioned by shard, and each node's local disk
  /// moves to its shard. Must run before the protocol is constructed and
  /// before start_app (engine bindings are fixed at construction). With
  /// `resident` false (or one shard) the plan stays placement metadata and
  /// the runtime is byte-identical to the unsharded build.
  void set_shard_plan(std::vector<int> plan, bool resident = false);
  /// The planned shard for a rank; 0 (the home shard) when no plan is set.
  int shard_of(RankId rank) const;
  /// True when ranks actually execute on their planned shards.
  bool resident() const { return resident_; }

  /// A reader-shard-consistent view of whether rank q is alive: exact for
  /// same-shard peers, and a lookahead-lagged mirror for cross-shard peers
  /// (liveness fences are posted at +lookahead by kill/restart/respawn).
  /// Identical to rank(q).alive() outside resident mode.
  bool peer_alive(const Rank& reader, RankId q) const;

 private:
  friend class AppHandle;

  void deliver(Message msg);
  /// Incarnation of rank r as observed from `shard` (exact when r lives
  /// there, mirrored otherwise). Message incarnation stamps and delivery
  /// checks go through this so no shard ever reads a peer shard's
  /// sim-future; the mirror lags by at most the lookahead, and both
  /// resulting divergences are absorbed (extra deliveries by duplicate
  /// suppression, early drops by sender-log replay).
  std::uint32_t incarnation_view(int shard, RankId r) const;
  /// Publishes a rank's (incarnation, alive) to every other shard's mirror
  /// at now + lookahead; no-op outside resident mode.
  void broadcast_peer_view(const Rank& rank);
  /// Posts a finished-rank count delta to the home-shard mirror.
  void note_finished_delta(const Rank& rank, int delta);
  bool is_duplicate(const Rank& rank, const Message& msg) const;
  void match_or_buffer(Rank& rank, Message msg);
  sim::Co<Message> wait_match(Rank& rank, RankId src, int tag);
  void verify_consume(Rank& rank, const Message& msg);
  void spawn_app_coroutine(Rank& rank);
  /// Assigns seq/cum_bytes/checksum and bumps the sender's S table.
  void stamp_outgoing(Rank& rank, Message& msg);
  /// Common transmit path; returns the network send times (see send()).
  sim::Network::SendTimes transmit(const Message& msg);

  sim::Cluster* cluster_;
  RuntimeOptions options_;
  Interposer* protocol_ = nullptr;
  std::vector<Observer*> observers_;
  std::vector<std::unique_ptr<Rank>> ranks_;
  AppBody app_body_;
  std::atomic<int> finished_ranks_{0};
  std::unique_ptr<sim::Trigger> job_done_;
  std::atomic<std::int64_t> app_bytes_sent_{0};
  std::atomic<std::int64_t> app_messages_sent_{0};
  std::vector<int> shard_plan_;  // empty = every rank on the home shard
  bool resident_ = false;
  /// Per-shard mirror of every rank's lifecycle state (resident mode):
  /// peer_view_[shard][rank]. Written only by the owning shard's fences
  /// (through the mailboxes), read only by `shard`'s thread.
  struct PeerView {
    std::uint32_t inc = 0;
    bool alive = true;
  };
  std::vector<std::vector<PeerView>> peer_view_;
  /// Home-shard mirror of finished_ranks_ (resident mode; home-thread only).
  int finished_view_home_ = 0;
  std::atomic<sim::Time> finish_time_{0};
};

}  // namespace gcr::mpi
