#include "mpi/runtime.hpp"

#include <ostream>
#include <utility>

#include "util/assert.hpp"
#include "util/log.hpp"

namespace gcr::mpi {

namespace {

// Collective tags live far above the application tag space.
constexpr int kTagBarrier = 1 << 20;
constexpr int kTagBcast = (1 << 20) + 1;
constexpr int kTagReduce = (1 << 20) + 2;
constexpr int kTagGather = (1 << 20) + 3;
constexpr int kTagAlltoall = (1 << 20) + 4;

// Small on-wire payloads for synchronization-only messages.
constexpr std::int64_t kSyncBytes = 8;

// Per-message framing bytes added on the wire (headers, TCP/IP overhead).
constexpr std::int64_t kWireHeaderBytes = 64;

// Receives match the NEXT message in the per-pair sequence, not the first
// tag match in arrival order: replayed (old-seq) messages may arrive after
// newer live traffic, and per-pair FIFO consumption is the protocol's
// correctness anchor. The tag is cross-checked once the in-sequence message
// is selected (a mismatch means the application violated the non-overtaking
// contract).
bool is_next_in_sequence(const Message& msg, RankId src,
                         std::uint64_t consumed) {
  return msg.src == src && msg.seq == consumed + 1;
}

void check_tag(const Message& msg, int tag) {
  GCR_CHECK_MSG(tag == kAnyTag || msg.tag == tag,
                "recv tag does not match the next in-sequence message; the "
                "application consumes out of per-pair send order");
}

}  // namespace

// ---------------------------------------------------------------- AppHandle

RankId AppHandle::id() const { return rank_->id(); }
int AppHandle::nranks() const { return rank_->nranks(); }
std::uint64_t AppHandle::start_iteration() const {
  return rank_->start_iteration();
}
sim::Co<void> AppHandle::send(RankId dst, int tag, std::int64_t bytes) {
  return rt_->send(*rank_, dst, tag, bytes);
}
sim::Co<Message> AppHandle::recv(RankId src, int tag) {
  return rt_->recv(*rank_, src, tag);
}
sim::Co<Message> AppHandle::sendrecv(RankId dst, int stag, std::int64_t sbytes,
                                     RankId src, int rtag) {
  return rt_->sendrecv(*rank_, dst, stag, sbytes, src, rtag);
}
sim::Co<void> AppHandle::compute(double seconds) {
  return rt_->compute(*rank_, seconds);
}
double AppHandle::now_s() const {
  return sim::to_seconds(rt_->engine_of(*rank_).now());
}
sim::Co<void> AppHandle::safepoint(std::uint64_t iteration) {
  return rt_->safepoint(*rank_, iteration);
}
sim::Co<void> AppHandle::barrier() { return rt_->barrier(*rank_); }
sim::Co<void> AppHandle::bcast(RankId root, std::int64_t bytes) {
  return rt_->bcast(*rank_, root, bytes);
}
sim::Co<void> AppHandle::reduce(RankId root, std::int64_t bytes) {
  return rt_->reduce(*rank_, root, bytes);
}
sim::Co<void> AppHandle::allreduce(std::int64_t bytes) {
  return rt_->allreduce(*rank_, bytes);
}
sim::Co<void> AppHandle::gather(RankId root, std::int64_t bytes_per_rank) {
  return rt_->gather(*rank_, root, bytes_per_rank);
}
sim::Co<void> AppHandle::alltoall(std::int64_t bytes_per_pair) {
  return rt_->alltoall(*rank_, bytes_per_pair);
}

// ------------------------------------------------------------------ Runtime

Runtime::Runtime(sim::Cluster& cluster, int nranks, RuntimeOptions options)
    : cluster_(&cluster), options_(options) {
  GCR_CHECK(nranks > 0);
  // One rank per node; the driver (mpirun) needs one extra node.
  GCR_CHECK_MSG(cluster.num_nodes() >= nranks + 1,
                "cluster must have nranks + 1 nodes (last is the driver)");
  ranks_.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    ranks_.push_back(
        std::make_unique<Rank>(cluster.engine(), r, /*node=*/r, nranks));
  }
  job_done_ = std::make_unique<sim::Trigger>(cluster.engine());
}

void Runtime::start_app(AppBody body) {
  app_body_ = std::move(body);
  for (auto& rank : ranks_) {
    rank->resume_gate_.fire();  // fresh start: no restart preparation
    if (protocol_) protocol_->rank_started(*rank);
    spawn_app_coroutine(*rank);
  }
}

namespace {

sim::Co<void> app_wrapper(Runtime* rt, Rank* r) {
  co_await r->resume_gate().wait();
  co_await rt->run_app_body(*r);
  rt->note_app_finished(*r);
}

}  // namespace

sim::Co<void> Runtime::run_app_body(Rank& rank) {
  return app_body_(AppHandle(*this, rank));
}

void Runtime::note_app_finished(Rank& rank) {
  rank.finished_ = true;
  const int done = finished_ranks_.fetch_add(1, std::memory_order_relaxed) + 1;
  // The job's completion instant is the max over ranks of the local finish
  // time — exact and shard-count-independent, unlike the home clock, which
  // freezes while activity lives on peer shards.
  const sim::Time t = engine_of(rank).now();
  sim::Time cur = finish_time_.load(std::memory_order_relaxed);
  while (t > cur &&
         !finish_time_.compare_exchange_weak(cur, t,
                                             std::memory_order_relaxed)) {
  }
  note_finished_delta(rank, 1);
  if (protocol_) protocol_->rank_finished(rank);
  if (done == nranks() && !resident_) job_done_->fire();
}

void Runtime::note_finished_delta(const Rank& rank, int delta) {
  if (!resident_) return;
  sim::ShardedEngine& sh = cluster_->shards();
  const int from = shard_of(rank.id());
  const int n = nranks();
  sh.post_at(from, /*to=*/0, sh.shard(from).now() + sh.lookahead(),
             [this, delta, n] {
               finished_view_home_ += delta;
               if (finished_view_home_ == n) job_done_->fire();
             });
}

void Runtime::spawn_app_coroutine(Rank& rank) {
  rank.app_proc_ = engine_of(rank).spawn("rank" + std::to_string(rank.id()),
                                         app_wrapper(this, &rank));
}

// ------------------------------------------------------------------- p2p

void Runtime::stamp_outgoing(Rank& rank, Message& msg) {
  auto& sv = rank.sent_[static_cast<std::size_t>(msg.dst)];
  sv.bytes += msg.bytes;
  sv.count += 1;
  msg.seq = sv.count;
  msg.cum_bytes = sv.bytes;
  msg.checksum = message_checksum(msg.src, msg.dst, msg.seq);
  app_messages_sent_.fetch_add(1, std::memory_order_relaxed);
  app_bytes_sent_.fetch_add(msg.bytes, std::memory_order_relaxed);
}

sim::Network::SendTimes Runtime::transmit(const Message& msg) {
  const int src_node = msg.src == kExternalSource
                           ? driver_node()
                           : ranks_[static_cast<std::size_t>(msg.src)]->node();
  const int dst_node = ranks_[static_cast<std::size_t>(msg.dst)]->node();
  Message copy = msg;
  return cluster_->network().send(
      src_node, dst_node, msg.bytes + kWireHeaderBytes,
      [this, m = std::move(copy)]() mutable { deliver(std::move(m)); });
}

sim::Co<void> Runtime::await_egress(sim::Engine& eng, std::uint64_t ticket) {
  sim::Network& net = cluster_->network();
  if (ticket == 0 || !net.egress_pending(ticket)) co_return;
  // RAII unregistration mirrors StorageDevice's ShareGuard: if the waiting
  // coroutine is killed mid-wait, the fabric must not fire into a dead
  // stack frame. Clearing a completed/aborted ticket is a no-op.
  //
  // `eng` must be the CALLER's engine: the ticket's slot lives on the
  // sending rank's shard, and the egress-done op fires the trigger from
  // that shard — a home-engine trigger would be a cross-shard write.
  struct EgressGuard {
    sim::Network* net;
    std::uint64_t ticket;
    ~EgressGuard() { net->clear_egress_trigger(ticket); }
  };
  sim::Trigger egress(eng);
  EgressGuard guard{&net, ticket};
  net.set_egress_trigger(ticket, &egress);
  co_await egress.wait();
}

sim::Co<void> Runtime::send(Rank& rank, RankId dst, int tag,
                            std::int64_t bytes) {
  GCR_CHECK(dst >= 0 && dst < nranks());
  GCR_CHECK(bytes >= 0);
  co_await compute(rank, options_.cpu_send_overhead_s);
  Message msg;
  msg.src = rank.id();
  msg.dst = dst;
  msg.tag = tag;
  msg.bytes = bytes;
  msg.src_inc = rank.incarnation_;
  msg.dst_inc = incarnation_view(shard_of(rank.id()), dst);
  stamp_outgoing(rank, msg);
  bool transmit_it = true;
  if (protocol_) transmit_it = co_await protocol_->before_send(rank, msg);
  for (Observer* obs : observers_) obs->on_send(rank, msg, transmit_it);
  if (transmit_it) {
    const auto times = transmit(msg);
    if (times.ticket != 0) {
      co_await await_egress(engine_of(rank), times.ticket);
    } else {
      sim::Engine& eng = engine_of(rank);
      const sim::Time now = eng.now();
      if (times.egress_done > now) {
        co_await sim::delay(eng, times.egress_done - now);
      }
    }
  }
}

sim::Co<Message> Runtime::sendrecv(Rank& rank, RankId dst, int stag,
                                   std::int64_t sbytes, RankId src, int rtag) {
  co_await compute(rank, options_.cpu_send_overhead_s);
  Message msg;
  msg.src = rank.id();
  msg.dst = dst;
  msg.tag = stag;
  msg.bytes = sbytes;
  msg.src_inc = rank.incarnation_;
  msg.dst_inc = incarnation_view(shard_of(rank.id()), dst);
  stamp_outgoing(rank, msg);
  bool transmit_it = true;
  if (protocol_) transmit_it = co_await protocol_->before_send(rank, msg);
  for (Observer* obs : observers_) obs->on_send(rank, msg, transmit_it);
  sim::Network::SendTimes times{0, 0, 0};
  if (transmit_it) times = transmit(msg);
  Message in = co_await recv(rank, src, rtag);
  if (times.ticket != 0) {
    co_await await_egress(engine_of(rank), times.ticket);
  } else {
    sim::Engine& eng = engine_of(rank);
    const sim::Time now = eng.now();
    if (times.egress_done > now) {
      co_await sim::delay(eng, times.egress_done - now);
    }
  }
  co_return in;
}

sim::Co<Message> Runtime::recv(Rank& rank, RankId src, int tag) {
  GCR_CHECK(src >= 0 && src < nranks());
  Message msg = co_await wait_match(rank, src, tag);
  co_await compute(rank, options_.cpu_recv_overhead_s);
  verify_consume(rank, msg);
  for (Observer* obs : observers_) obs->on_consume(rank, msg);
  co_return msg;
}

sim::Co<Message> Runtime::wait_match(Rank& rank, RankId src, int tag) {
  const std::uint64_t consumed =
      rank.consumed_[static_cast<std::size_t>(src)];
  for (auto it = rank.pending_.begin(); it != rank.pending_.end(); ++it) {
    if (is_next_in_sequence(*it, src, consumed)) {
      check_tag(*it, tag);
      Message msg = std::move(*it);
      rank.pending_.erase(it);
      co_return msg;
    }
  }
  GCR_CHECK_MSG(!rank.waiting_.has_value(),
                "only one outstanding blocking recv per rank");
  struct RecvAwaiter {
    sim::Engine* eng;
    Rank* rank;
    RankId src;
    int tag;
    Message msg{};
    sim::WaiterHandle waiter;

    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      waiter = eng->suspend_current(h);
      rank->waiting_ = Rank::WaitingRecv{src, tag, waiter, &msg};
    }
    Message await_resume() {
      // On a kill-unwind the matcher never ran; clear our registration.
      if (rank->waiting_ && rank->waiting_->waiter == waiter) {
        rank->waiting_.reset();
      }
      eng->finish_wait(waiter);
      return std::move(msg);
    }
  };
  co_return co_await RecvAwaiter{&engine_of(rank), &rank, src, tag, {}, {}};
}

void Runtime::verify_consume(Rank& rank, const Message& msg) {
  auto& consumed = rank.consumed_[static_cast<std::size_t>(msg.src)];
  ++consumed;
  if (!options_.verify_delivery) return;
  GCR_CHECK_MSG(msg.seq == consumed,
                "per-pair delivery order violated (lost/dup/reordered)");
  GCR_CHECK_MSG(msg.checksum == message_checksum(msg.src, msg.dst, msg.seq),
                "message checksum mismatch after replay");
}

void Runtime::deliver(Message msg) {
  Rank& dst = *ranks_[static_cast<std::size_t>(msg.dst)];
  // Stale incarnation or dead destination: the wire data is lost (connection
  // reset); sender-based logs cover re-delivery after restart. The sender's
  // incarnation is judged from the receiver shard's view — never a peer
  // shard's sim-future.
  if (!dst.alive_ || msg.dst_inc != dst.incarnation_) return;
  if (msg.src != kExternalSource &&
      msg.src_inc != incarnation_view(shard_of(msg.dst), msg.src)) {
    return;
  }
  if (msg.is_ctrl()) {
    dst.ctrl_in_.push(std::move(msg));
    return;
  }
  // Exactly-once delivery across restarts: a live message that raced a
  // restart's volume exchange is also covered by the sender-log replay;
  // keep whichever copy arrives first, drop the other (no R update).
  if (is_duplicate(dst, msg)) return;
  auto& rv = dst.recvd_[static_cast<std::size_t>(msg.src)];
  rv.bytes += msg.bytes;
  rv.count += 1;
  for (Observer* obs : observers_) obs->on_deliver(dst, msg);
  if (protocol_) protocol_->on_deliver(dst, msg);
  match_or_buffer(dst, std::move(msg));
}

bool Runtime::is_duplicate(const Rank& rank, const Message& msg) const {
  if (msg.seq <= rank.consumed_[static_cast<std::size_t>(msg.src)]) {
    return true;
  }
  for (const Message& p : rank.pending_) {
    if (p.src == msg.src && p.seq == msg.seq) return true;
  }
  return false;
}

void Runtime::match_or_buffer(Rank& rank, Message msg) {
  sim::Engine& eng = engine_of(rank);
  if (rank.waiting_ && eng.waiter_live(rank.waiting_->waiter) &&
      is_next_in_sequence(
          msg, rank.waiting_->src,
          rank.consumed_[static_cast<std::size_t>(rank.waiting_->src)])) {
    check_tag(msg, rank.waiting_->tag);
    auto waiting = *rank.waiting_;
    rank.waiting_.reset();
    *waiting.slot = std::move(msg);
    const bool claimed = eng.fire(waiting.waiter);
    GCR_CHECK(claimed);
    return;
  }
  rank.pending_.push_back(std::move(msg));
}

sim::Co<void> Runtime::compute(Rank& rank, double seconds) {
  co_await sim::delay(engine_of(rank), sim::from_seconds(seconds));
}

sim::Co<void> Runtime::safepoint(Rank& rank, std::uint64_t iteration) {
  rank.iteration_ = iteration;
  if (protocol_) co_await protocol_->at_safepoint(rank);
}

// -------------------------------------------------------------- collectives

sim::Co<void> Runtime::barrier(Rank& rank) {
  // Dissemination barrier: log2(p) rounds of simultaneous exchanges.
  const int p = nranks();
  for (int mask = 1; mask < p; mask <<= 1) {
    const RankId to = (rank.id() + mask) % p;
    const RankId from = (rank.id() - mask % p + p) % p;
    (void)co_await sendrecv(rank, to, kTagBarrier, kSyncBytes, from,
                            kTagBarrier);
  }
}

sim::Co<void> Runtime::bcast(Rank& rank, RankId root, std::int64_t bytes) {
  // MPICH-style binomial broadcast.
  const int p = nranks();
  const int relative = (rank.id() - root + p) % p;
  int mask = 1;
  while (mask < p) {
    if (relative & mask) {
      RankId src = rank.id() - mask;
      if (src < 0) src += p;
      (void)co_await recv(rank, src, kTagBcast);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (relative + mask < p) {
      RankId dst = rank.id() + mask;
      if (dst >= p) dst -= p;
      co_await send(rank, dst, kTagBcast, bytes);
    }
    mask >>= 1;
  }
}

sim::Co<void> Runtime::reduce(Rank& rank, RankId root, std::int64_t bytes) {
  // Binomial reduction tree (commutative combine; payload size constant).
  const int p = nranks();
  const int relative = (rank.id() - root + p) % p;
  int mask = 1;
  while (mask < p) {
    if ((relative & mask) == 0) {
      const int src_rel = relative | mask;
      if (src_rel < p) {
        (void)co_await recv(rank, (src_rel + root) % p, kTagReduce);
      }
    } else {
      co_await send(rank, ((relative & ~mask) + root) % p, kTagReduce, bytes);
      break;
    }
    mask <<= 1;
  }
}

sim::Co<void> Runtime::allreduce(Rank& rank, std::int64_t bytes) {
  co_await reduce(rank, 0, bytes);
  co_await bcast(rank, 0, bytes);
}

sim::Co<void> Runtime::gather(Rank& rank, RankId root,
                              std::int64_t bytes_per_rank) {
  // Binomial gather: forwarded payload grows with the subtree.
  const int p = nranks();
  const int relative = (rank.id() - root + p) % p;
  std::int64_t accumulated = bytes_per_rank;
  int mask = 1;
  while (mask < p) {
    if ((relative & mask) == 0) {
      const int src_rel = relative | mask;
      if (src_rel < p) {
        Message m = co_await recv(rank, (src_rel + root) % p, kTagGather);
        accumulated += m.bytes;
      }
    } else {
      co_await send(rank, ((relative & ~mask) + root) % p, kTagGather,
                    accumulated);
      break;
    }
    mask <<= 1;
  }
}

sim::Co<void> Runtime::alltoall(Rank& rank, std::int64_t bytes_per_pair) {
  // Ring-pairwise exchange; works for any process count.
  const int p = nranks();
  for (int step = 1; step < p; ++step) {
    const RankId to = (rank.id() + step) % p;
    const RankId from = (rank.id() - step + p) % p;
    (void)co_await sendrecv(rank, to, kTagAlltoall, bytes_per_pair, from,
                            kTagAlltoall);
  }
}

// ------------------------------------------------------------ control plane

void Runtime::send_ctrl(RankId src_rank, RankId dst, Message msg) {
  GCR_CHECK(msg.is_ctrl());
  msg.src = src_rank;
  msg.dst = dst;
  // The driver runs on the home shard; rank daemons stamp from their own
  // shard's view.
  const int view = src_rank == kExternalSource ? 0 : shard_of(src_rank);
  msg.src_inc = src_rank == kExternalSource
                    ? 0
                    : ranks_[static_cast<std::size_t>(src_rank)]->incarnation_;
  msg.dst_inc = incarnation_view(view, dst);
  if (msg.bytes == 0) {
    msg.bytes =
        kSyncBytes + static_cast<std::int64_t>(msg.ctrl_data.size()) * 8;
  }
  transmit(msg);
}

void Runtime::send_ctrl_from_driver(RankId dst, Message msg) {
  send_ctrl(kExternalSource, dst, std::move(msg));
}

sim::Network::SendTimes Runtime::replay_send(Rank& sender,
                                             const Message& original) {
  Message msg = original;
  msg.is_replay = true;
  msg.piggyback_rr = -1;
  msg.src_inc = sender.incarnation_;
  msg.dst_inc = incarnation_view(shard_of(sender.id()), msg.dst);
  return transmit(msg);
}

// --------------------------------------------------------------- lifecycle

RankSnapshot Runtime::snapshot_rank(const Rank& rank) const {
  RankSnapshot snap;
  snap.iteration = rank.iteration_;
  snap.sent = rank.sent_;
  snap.recvd = rank.recvd_;
  snap.consumed = rank.consumed_;
  snap.pending = rank.pending_;
  return snap;
}

void Runtime::kill_rank(Rank& rank) {
  GCR_CHECK(rank.alive_);
  rank.alive_ = false;
  // Resident mode: this must run on the rank's shard (recovery posts its
  // kill orders there); publish the death to peer shards' views first so
  // the fence sequences before any protocol fixup posted below.
  broadcast_peer_view(rank);
  // Drop the node's queued/in-flight fabric transfers *before* unwinding
  // its coroutines, so no completion can fire into a stack being torn
  // down, and survivors reclaim the dead sender's link shares. Flat no-op.
  cluster_->network().abort_transfers_from(rank.node());
  if (rank.app_proc_ && rank.app_proc_->alive()) {
    engine_of(rank).kill(*rank.app_proc_);
  }
  if (rank.daemon_proc_ && rank.daemon_proc_->alive()) {
    engine_of(rank).kill(*rank.daemon_proc_);
  }
  if (protocol_) protocol_->rank_killed(rank);
}

void Runtime::begin_restart(Rank& rank) {
  GCR_CHECK_MSG(!rank.alive_, "kill_rank must precede begin_restart");
  ++rank.incarnation_;
  broadcast_peer_view(rank);
  rank.pending_.clear();
  rank.waiting_.reset();
  rank.ctrl_in_.clear();
  rank.resume_gate_.reset();
  for (auto& v : rank.sent_) v = PeerVolume{};
  for (auto& v : rank.recvd_) v = PeerVolume{};
  for (auto& c : rank.consumed_) c = 0;
  rank.iteration_ = 0;
  rank.start_iteration_ = 0;
  if (rank.finished_) {
    rank.finished_ = false;
    finished_ranks_.fetch_sub(1, std::memory_order_relaxed);
    note_finished_delta(rank, -1);
  }
}

void Runtime::restore_rank(Rank& rank, const RankSnapshot& snap) {
  GCR_CHECK(!rank.alive_);
  rank.iteration_ = snap.iteration;
  rank.start_iteration_ = snap.iteration;
  rank.sent_ = snap.sent;
  rank.recvd_ = snap.recvd;
  rank.consumed_ = snap.consumed;
  rank.pending_ = snap.pending;
}

void Runtime::respawn_rank(Rank& rank) {
  GCR_CHECK(!rank.alive_);
  rank.alive_ = true;
  // View fence first: a peer acting on the protocol's started fixup (posted
  // after this, same mailbox batch) already sees the new incarnation alive.
  broadcast_peer_view(rank);
  if (protocol_) protocol_->rank_started(rank);
  spawn_app_coroutine(rank);
}

void Runtime::set_daemon_proc(Rank& rank, sim::ProcPtr proc) {
  rank.daemon_proc_ = std::move(proc);
}

void Runtime::debug_dump(std::ostream& os) const {
  for (const auto& rank : ranks_) {
    os << "rank " << rank->id() << ": alive=" << rank->alive_
       << " finished=" << rank->finished_ << " inc=" << rank->incarnation_
       << " iter=" << rank->iteration_ << " pending=" << rank->pending_.size();
    if (rank->waiting_) {
      os << " BLOCKED-RECV(src=" << rank->waiting_->src
         << " tag=" << rank->waiting_->tag << " consumed="
         << rank->consumed_[static_cast<std::size_t>(rank->waiting_->src)]
         << ")";
    }
    os << " gate_open=" << rank->resume_gate_.fired() << '\n';
    if (!rank->pending_.empty()) {
      os << "  pending:";
      for (const Message& m : rank->pending_) {
        os << " (src=" << m.src << " seq=" << m.seq << " tag=" << m.tag
           << (m.is_replay ? " R" : "") << ")";
      }
      os << '\n';
    }
  }
}

void Runtime::clear_finished(Rank& rank) {
  if (rank.finished_) {
    rank.finished_ = false;
    finished_ranks_.fetch_sub(1, std::memory_order_relaxed);
    note_finished_delta(rank, -1);
  }
}

void Runtime::set_shard_plan(std::vector<int> plan, bool resident) {
  GCR_CHECK_MSG(plan.size() == ranks_.size(),
                "shard plan must cover every rank");
  const int shards = cluster_->shards().num_shards();
  for (const int s : plan) {
    GCR_CHECK_MSG(s >= 0 && s < shards, "shard plan names a missing shard");
  }
  shard_plan_ = std::move(plan);
  resident_ = resident && shards > 1;
  if (!resident_) return;

  GCR_CHECK_MSG(protocol_ == nullptr && !app_body_,
                "a resident plan must be installed before the protocol is "
                "constructed and before start_app (engine bindings are fixed "
                "at construction)");
  // Rebuild every rank on its shard's engine: the control channel, resume
  // gate and (later) coroutines all bind to the owning engine.
  const int n = nranks();
  for (int r = 0; r < n; ++r) {
    ranks_[static_cast<std::size_t>(r)] =
        std::make_unique<Rank>(engine_of(r), r, /*node=*/r, n);
  }
  peer_view_.assign(static_cast<std::size_t>(shards),
                    std::vector<PeerView>(static_cast<std::size_t>(n)));
  finished_view_home_ = 0;
  // Nodes follow their ranks; the driver's NIC stays on the home shard.
  std::vector<int> node_shard(static_cast<std::size_t>(cluster_->num_nodes()),
                              0);
  for (int r = 0; r < n; ++r) {
    node_shard[static_cast<std::size_t>(r)] = shard_of(r);
  }
  cluster_->network().set_shard_router(&cluster_->shards(), node_shard);
  cluster_->rebind_local_disks(node_shard);
  cluster_->rebind_node_buffers(node_shard);
}

int Runtime::shard_of(RankId rank) const {
  GCR_ASSERT(rank >= 0 && rank < nranks());
  if (shard_plan_.empty()) return 0;
  return shard_plan_[static_cast<std::size_t>(rank)];
}

std::uint32_t Runtime::incarnation_view(int shard, RankId r) const {
  if (!resident_ || shard == shard_of(r)) {
    return ranks_[static_cast<std::size_t>(r)]->incarnation_;
  }
  return peer_view_[static_cast<std::size_t>(shard)][static_cast<std::size_t>(r)]
      .inc;
}

bool Runtime::peer_alive(const Rank& reader, RankId q) const {
  const int shard = shard_of(reader.id());
  if (!resident_ || shard == shard_of(q)) {
    return ranks_[static_cast<std::size_t>(q)]->alive();
  }
  return peer_view_[static_cast<std::size_t>(shard)][static_cast<std::size_t>(q)]
      .alive;
}

void Runtime::broadcast_peer_view(const Rank& rank) {
  if (!resident_) return;
  sim::ShardedEngine& sh = cluster_->shards();
  const int from = shard_of(rank.id());
  const sim::Time at = sh.shard(from).now() + sh.lookahead();
  const PeerView pv{rank.incarnation_, rank.alive_};
  const auto r = static_cast<std::size_t>(rank.id());
  for (int s = 0; s < sh.num_shards(); ++s) {
    if (s == from) continue;
    sh.post_at(from, s, at, [this, s, r, pv] {
      peer_view_[static_cast<std::size_t>(s)][r] = pv;
    });
  }
}

}  // namespace gcr::mpi
