// Per-rank runtime state.
//
// A Rank owns everything the MiniMPI layer knows about one MPI process:
// volume counters (the paper's R_X / S_X tables), the delivered-but-
// unconsumed message queue (snapshotted into checkpoint images, like the
// in-kernel socket buffers BLCR captures), the single outstanding blocking
// receive, the control-plane channel served by the protocol daemon, and
// incarnation/lifecycle flags used across failures and restarts.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "mpi/message.hpp"
#include "sim/awaitables.hpp"
#include "sim/channel.hpp"
#include "sim/engine.hpp"

namespace gcr::mpi {

/// One direction of traffic bookkeeping towards one peer.
struct PeerVolume {
  std::int64_t bytes = 0;   ///< cumulative app-plane bytes
  std::uint64_t count = 0;  ///< app-plane message count (== last seq)
};

/// The runtime-visible state captured by a checkpoint (the modeled
/// equivalent of a BLCR process image, minus the app's own memory which is
/// represented by the app's iteration counter and memory-size model).
struct RankSnapshot {
  std::uint64_t iteration = 0;          ///< app progress at the safe point
  std::vector<PeerVolume> sent;         ///< S_X table
  std::vector<PeerVolume> recvd;        ///< R_X table
  std::vector<std::uint64_t> consumed;  ///< per-src consumed seq (verification)
  std::deque<Message> pending;          ///< delivered, unconsumed messages
};

class Rank {
 public:
  Rank(sim::Engine& engine, RankId id, int node, int nranks)
      : engine_(&engine), id_(id), node_(node), ctrl_in_(engine),
        resume_gate_(engine), sent_(static_cast<std::size_t>(nranks)),
        recvd_(static_cast<std::size_t>(nranks)),
        consumed_(static_cast<std::size_t>(nranks), 0) {}

  RankId id() const { return id_; }
  int node() const { return node_; }
  /// The engine this rank's coroutines and channels are bound to — the
  /// owning shard's engine under a resident plan, the home engine otherwise.
  /// Observers use it to stamp trace records with the rank's own clock.
  sim::Engine& engine() const { return *engine_; }
  int nranks() const { return static_cast<int>(sent_.size()); }

  std::uint32_t incarnation() const { return incarnation_; }
  bool alive() const { return alive_; }
  bool finished() const { return finished_; }

  /// App progress marker; updated at each safe point, restored on restart.
  std::uint64_t iteration() const { return iteration_; }
  void set_iteration(std::uint64_t it) { iteration_ = it; }

  /// Where the app must resume from (0 on a fresh start).
  std::uint64_t start_iteration() const { return start_iteration_; }

  const PeerVolume& sent_to(RankId peer) const {
    return sent_[static_cast<std::size_t>(peer)];
  }
  const PeerVolume& recvd_from(RankId peer) const {
    return recvd_[static_cast<std::size_t>(peer)];
  }

  /// Control-plane delivery queue, served by the protocol daemon.
  sim::Channel<Message>& ctrl_in() { return ctrl_in_; }

  /// Closed while a restart is being prepared; the app coroutine waits on it
  /// before (re)executing.
  sim::Trigger& resume_gate() { return resume_gate_; }

  std::size_t pending_count() const { return pending_.size(); }

 private:
  friend class Runtime;

  sim::Engine* engine_;
  RankId id_;
  int node_;
  std::uint32_t incarnation_ = 0;
  bool alive_ = true;
  bool finished_ = false;
  std::uint64_t iteration_ = 0;
  std::uint64_t start_iteration_ = 0;

  sim::Channel<Message> ctrl_in_;
  sim::Trigger resume_gate_;

  // Volume tables, dense by peer rank.
  std::vector<PeerVolume> sent_;
  std::vector<PeerVolume> recvd_;
  std::vector<std::uint64_t> consumed_;

  // Delivered app messages not yet consumed by the app.
  std::deque<Message> pending_;

  // The single outstanding blocking receive (the app coroutine is
  // sequential, so there is at most one).
  struct WaitingRecv {
    RankId src;
    int tag;
    sim::WaiterHandle waiter;
    Message* slot;
  };
  std::optional<WaitingRecv> waiting_;

  // Live coroutine handles for kill().
  sim::ProcPtr app_proc_;
  sim::ProcPtr daemon_proc_;
};

}  // namespace gcr::mpi
