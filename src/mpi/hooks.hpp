// Interposition interfaces — the analogue of LAM/MPI's CRTCP/CRMPI SSI
// modules (DESIGN.md §3). A checkpoint protocol installs ONE Interposer;
// passive Observers (the communication tracer, test probes) may be attached
// in any number.
#pragma once

#include "mpi/message.hpp"
#include "sim/co.hpp"

namespace gcr::mpi {

class Rank;

/// Passive taps on the message path; must not block or mutate.
class Observer {
 public:
  virtual ~Observer() = default;
  /// After the send-side bookkeeping, whether or not transmission happens
  /// (suppressed re-sends are reported with transmitted=false).
  virtual void on_send(const Rank& rank, const Message& msg, bool transmitted) {
    (void)rank; (void)msg; (void)transmitted;
  }
  /// At delivery to the destination node (before matching).
  virtual void on_deliver(const Rank& rank, const Message& msg) {
    (void)rank; (void)msg;
  }
  /// When the application's recv returns the message.
  virtual void on_consume(const Rank& rank, const Message& msg) {
    (void)rank; (void)msg;
  }
};

/// Active protocol hook. Exactly one may be installed on a Runtime.
class Interposer {
 public:
  virtual ~Interposer() = default;

  /// Called for every app-plane send after seq/cum_bytes are assigned and
  /// counters bumped, before transmission. May co_await (logging cost, send
  /// gates), may set msg.piggyback_rr, and decides transmission:
  /// return false to suppress the physical send (skip during re-execution).
  virtual sim::Co<bool> before_send(Rank& rank, Message& msg) = 0;

  /// Called at delivery of every app-plane message (after R counters).
  /// Non-blocking (runs inside the network delivery callback).
  virtual void on_deliver(Rank& rank, const Message& msg) = 0;

  /// Called when the app reaches a safe point (top of an iteration). The
  /// protocol may run a whole checkpoint here before returning.
  virtual sim::Co<void> at_safepoint(Rank& rank) = 0;

  /// Called when a rank (re)starts, before the app coroutine runs; the
  /// protocol spawns its per-rank daemon here.
  virtual void rank_started(Rank& rank) = 0;

  /// Called when the app coroutine of a rank finishes normally.
  virtual void rank_finished(Rank& rank) { (void)rank; }

  /// Called after a rank is killed (failure injection), once its app and
  /// daemon coroutines are down. The protocol must stop any auxiliary
  /// coroutines still acting for the dead incarnation (restore drivers,
  /// exchange servers), roll back uncommitted checkpoint state, and unblock
  /// peers waiting on the dead rank. Non-blocking.
  virtual void rank_killed(Rank& rank) { (void)rank; }
};

}  // namespace gcr::mpi
