// Message model for the MiniMPI runtime.
//
// Messages carry modeled sizes (bytes drive timing) plus bookkeeping the
// checkpoint protocols need: per-pair sequence numbers, cumulative volume
// (the paper's R/S accounting unit), incarnation stamps for dropping
// stale in-flight traffic across restarts, and an optional piggybacked RR
// value (Algorithm 1's garbage-collection hint). A deterministic checksum
// lets tests verify that replay reproduces the failure-free delivery
// sequence exactly.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace gcr::mpi {

using RankId = int;

/// Sent by the checkpoint driver ("mpirun") rather than a rank.
inline constexpr RankId kExternalSource = -1;

inline constexpr int kAnyTag = -1;

/// Control-plane message kinds (daemon-to-daemon / driver-to-daemon).
enum class CtrlKind : std::uint8_t {
  kNone = 0,
  // Group protocol checkpoint coordination:
  kCkptRequest,   ///< driver -> group leader: checkpoint this group
  kPrepare,       ///< leader -> member: report your iteration  [epoch]
  kPrepareReply,  ///< member -> leader: [epoch, iteration | -1 if finished]
  kCommit,        ///< leader -> member: checkpoint at iteration [epoch, iter]
  kAbort,         ///< member -> group: abandon epoch [epoch]
  kBookmark,      ///< member -> member: my S towards you [epoch, bytes]
  kBarrierAck,    ///< member -> leader [epoch, phase]
  kBarrierGo,     ///< leader -> member [epoch, phase]
  // Restart:
  kExchangeRequest,  ///< restarting -> peer: [my R from you, my S to you]
  kExchangeReply,    ///< peer -> restarting: [my R from you]
  // VCL protocol:
  kVclRequest,  ///< driver -> every rank: start a Chandy-Lamport round
  kVclMarker,   ///< rank -> rank: marker on the channel
};

struct Message {
  RankId src = kExternalSource;
  RankId dst = 0;
  int tag = 0;
  std::int64_t bytes = 0;  ///< modeled payload size (drives all timing)

  // --- app-plane bookkeeping (unused for ctrl messages) ---
  std::uint64_t seq = 0;      ///< 1-based per (src,dst) app-message ordinal
  std::int64_t cum_bytes = 0; ///< cumulative src->dst volume incl. this msg
  std::uint64_t checksum = 0; ///< deterministic content hash for verification
  bool is_replay = false;     ///< resent from a sender-side message log
  std::int64_t piggyback_rr = -1;  ///< RR_p piggybacked value; -1 = none

  // --- incarnation stamps (stale in-flight traffic is dropped) ---
  std::uint32_t src_inc = 0;
  std::uint32_t dst_inc = 0;

  // --- control plane ---
  CtrlKind ctrl = CtrlKind::kNone;
  std::vector<std::int64_t> ctrl_data;  ///< kind-specific payload

  bool is_ctrl() const { return ctrl != CtrlKind::kNone; }
};

/// Deterministic checksum both endpoints can compute independently; replay
/// must deliver a message with exactly this value.
inline std::uint64_t message_checksum(RankId src, RankId dst,
                                      std::uint64_t seq) {
  return mix_seed(mix_seed(static_cast<std::uint64_t>(src) + 0x51ed2701,
                           static_cast<std::uint64_t>(dst) + 0x9d3fca11),
                  seq);
}

}  // namespace gcr::mpi
