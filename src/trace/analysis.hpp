// Trace analysis: pair-volume aggregation (the preprocessing step of the
// paper's Algorithm 2) and communication matrices.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/record.hpp"

namespace gcr::trace {

/// Aggregated traffic between one unordered pair of ranks: the tuple
/// (P = {a,b}, N = count, S = size) from Algorithm 2's preprocessing.
struct PairVolume {
  mpi::RankId a = 0;  ///< smaller rank of the pair
  mpi::RankId b = 0;  ///< larger rank of the pair
  std::uint64_t count = 0;
  std::int64_t bytes = 0;
};

/// Builds the (pair, count, size) list from send records, sorted descending
/// by size, then count, then pair (the exact ordering Algorithm 2 requires).
std::vector<PairVolume> aggregate_pairs(const Trace& trace);

/// nranks x nranks matrix of bytes sent (row = source, column = destination).
std::vector<std::vector<std::int64_t>> comm_matrix(const Trace& trace,
                                                   int nranks);

/// Total bytes on send records.
std::int64_t total_send_bytes(const Trace& trace);

}  // namespace gcr::trace
