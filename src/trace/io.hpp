// Trace file IO.
//
// Text format, one record per line:
//   <time_ns> <kind:S|D|C> <rank> <peer> <tag> <bytes>
// Lines starting with '#' are comments. This is the artifact a profiling run
// writes and the group-formation tool reads back.
#pragma once

#include <iosfwd>
#include <string>

#include "trace/record.hpp"

namespace gcr::trace {

void write_trace(std::ostream& os, const Trace& trace);
Trace read_trace(std::istream& is);

/// Convenience file wrappers; return false / empty on IO failure.
bool save_trace(const std::string& path, const Trace& trace);
Trace load_trace(const std::string& path, bool* ok = nullptr);

}  // namespace gcr::trace
