#include "trace/analysis.hpp"

#include <algorithm>
#include <map>
#include <utility>

#include "util/assert.hpp"

namespace gcr::trace {

std::vector<PairVolume> aggregate_pairs(const Trace& trace) {
  std::map<std::pair<mpi::RankId, mpi::RankId>, PairVolume> acc;
  for (const TraceRecord& rec : trace) {
    if (rec.kind != EventKind::kSend) continue;
    const mpi::RankId a = std::min(rec.rank, rec.peer);
    const mpi::RankId b = std::max(rec.rank, rec.peer);
    if (a == b) continue;  // self-sends are irrelevant for grouping
    PairVolume& pv = acc[{a, b}];
    pv.a = a;
    pv.b = b;
    pv.count += 1;
    pv.bytes += rec.bytes;
  }
  std::vector<PairVolume> out;
  out.reserve(acc.size());
  for (auto& [key, pv] : acc) out.push_back(pv);
  std::sort(out.begin(), out.end(), [](const PairVolume& x, const PairVolume& y) {
    if (x.bytes != y.bytes) return x.bytes > y.bytes;    // size desc
    if (x.count != y.count) return x.count > y.count;    // then count desc
    if (x.a != y.a) return x.a < y.a;                    // then pair asc
    return x.b < y.b;
  });
  return out;
}

std::vector<std::vector<std::int64_t>> comm_matrix(const Trace& trace,
                                                   int nranks) {
  GCR_CHECK(nranks > 0);
  std::vector<std::vector<std::int64_t>> m(
      static_cast<std::size_t>(nranks),
      std::vector<std::int64_t>(static_cast<std::size_t>(nranks), 0));
  for (const TraceRecord& rec : trace) {
    if (rec.kind != EventKind::kSend) continue;
    if (rec.rank < 0 || rec.rank >= nranks) continue;
    if (rec.peer < 0 || rec.peer >= nranks) continue;
    m[static_cast<std::size_t>(rec.rank)][static_cast<std::size_t>(rec.peer)] +=
        rec.bytes;
  }
  return m;
}

std::int64_t total_send_bytes(const Trace& trace) {
  std::int64_t total = 0;
  for (const TraceRecord& rec : trace) {
    if (rec.kind == EventKind::kSend) total += rec.bytes;
  }
  return total;
}

}  // namespace gcr::trace
