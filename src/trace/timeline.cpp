#include "trace/timeline.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "util/assert.hpp"
#include "util/units.hpp"

namespace gcr::trace {
namespace {

bool is_activity(EventKind kind) {
  return kind == EventKind::kSend || kind == EventKind::kDeliver;
}

}  // namespace

std::string render_timeline(const Trace& trace,
                            const std::vector<CkptWindow>& windows,
                            const TimelineOptions& options) {
  GCR_CHECK(options.columns > 0);
  sim::Time end = options.end;
  if (end == 0) {
    for (const TraceRecord& rec : trace) end = std::max(end, rec.time);
    for (const CkptWindow& w : windows) end = std::max(end, w.end);
  }
  if (end <= options.begin) return "(empty timeline)\n";

  std::vector<mpi::RankId> ranks = options.ranks;
  if (ranks.empty()) {
    std::set<mpi::RankId> seen;
    for (const TraceRecord& rec : trace) {
      seen.insert(rec.rank);
      if (seen.size() >= 4) break;
    }
    ranks.assign(seen.begin(), seen.end());
  }
  if (ranks.empty()) return "(no ranks)\n";

  const double span = static_cast<double>(end - options.begin);
  const int cols = options.columns;
  auto bin_of = [&](sim::Time t) -> int {
    if (t < options.begin || t >= end) return -1;
    return static_cast<int>(static_cast<double>(t - options.begin) / span *
                            cols);
  };

  // activity[rank][bin], ckpt[rank][bin]
  std::map<mpi::RankId, std::vector<bool>> activity;
  std::map<mpi::RankId, std::vector<bool>> in_ckpt;
  for (mpi::RankId r : ranks) {
    activity[r].assign(static_cast<std::size_t>(cols), false);
    in_ckpt[r].assign(static_cast<std::size_t>(cols), false);
  }
  for (const TraceRecord& rec : trace) {
    if (!is_activity(rec.kind)) continue;
    auto it = activity.find(rec.rank);
    if (it == activity.end()) continue;
    const int bin = bin_of(rec.time);
    if (bin >= 0 && bin < cols) it->second[static_cast<std::size_t>(bin)] = true;
  }
  for (const CkptWindow& w : windows) {
    auto it = in_ckpt.find(w.rank);
    if (it == in_ckpt.end()) continue;
    int b0 = bin_of(std::max(w.begin, options.begin));
    int b1 = bin_of(std::min(w.end, end - 1));
    if (b0 < 0) b0 = 0;
    if (b1 < 0) b1 = cols - 1;
    for (int b = b0; b <= b1 && b < cols; ++b) {
      it->second[static_cast<std::size_t>(b)] = true;
    }
  }

  std::string out;
  out += "time: " + gcr::format_duration_ns(options.begin) + " .. " +
         gcr::format_duration_ns(end) + "  ('.'=idle '#'=msgs '-'=ckpt gap "
         "'C'=ckpt+msgs)\n";
  for (mpi::RankId r : ranks) {
    char label[16];
    std::snprintf(label, sizeof(label), "P%-3d |", r);
    out += label;
    for (int b = 0; b < cols; ++b) {
      const bool act = activity[r][static_cast<std::size_t>(b)];
      const bool ck = in_ckpt[r][static_cast<std::size_t>(b)];
      out += ck ? (act ? 'C' : '-') : (act ? '#' : '.');
    }
    out += "|\n";
  }
  return out;
}

double gap_fraction(const Trace& trace, const std::vector<CkptWindow>& windows,
                    double bins_per_second) {
  if (windows.empty()) return 0.0;
  GCR_CHECK(bins_per_second > 0);
  const sim::Time bin_ns = sim::from_seconds(1.0 / bins_per_second);
  // Per-rank activity bins.
  std::map<mpi::RankId, std::set<std::int64_t>> active_bins;
  for (const TraceRecord& rec : trace) {
    if (!is_activity(rec.kind)) continue;
    active_bins[rec.rank].insert(rec.time / bin_ns);
  }
  std::int64_t cells = 0;
  std::int64_t gap_cells = 0;
  for (const CkptWindow& w : windows) {
    const auto it = active_bins.find(w.rank);
    for (std::int64_t b = w.begin / bin_ns; b <= (w.end - 1) / bin_ns; ++b) {
      ++cells;
      const bool active = it != active_bins.end() && it->second.count(b) > 0;
      if (!active) ++gap_cells;
    }
  }
  if (cells == 0) return 0.0;
  return static_cast<double>(gap_cells) / static_cast<double>(cells);
}

}  // namespace gcr::trace
