// Trace records produced by the communication tracer.
//
// The paper's group formation (Algorithm 2) consumes send records of the
// form (source, destination, size); the timeline diagrams (Figure 2) also
// use delivery events and checkpoint windows.
#pragma once

#include <cstdint>
#include <vector>

#include "mpi/message.hpp"
#include "sim/time.hpp"

namespace gcr::trace {

enum class EventKind : std::uint8_t {
  kSend = 0,
  kDeliver = 1,
  kConsume = 2,
};

struct TraceRecord {
  sim::Time time = 0;
  EventKind kind = EventKind::kSend;
  mpi::RankId rank = 0;  ///< the rank where the event happened
  mpi::RankId peer = 0;  ///< the other endpoint
  int tag = 0;
  std::int64_t bytes = 0;
};

/// One checkpoint window on one rank, for timeline overlays.
struct CkptWindow {
  mpi::RankId rank = 0;
  sim::Time begin = 0;
  sim::Time end = 0;
};

using Trace = std::vector<TraceRecord>;

}  // namespace gcr::trace
