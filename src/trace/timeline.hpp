// ASCII timeline rendering (paper Figure 2).
//
// Rows are processes, columns are time bins. Glyphs:
//   '.'  no activity
//   '#'  message activity (send/deliver) in the bin
//   '-'  inside a checkpoint window, NO activity  -> a "gap" (blocked)
//   'C'  inside a checkpoint window, WITH activity -> progress during ckpt
// The paper's observation: with a non-blocking coordinated protocol at small
// scale, checkpoint windows are full of 'C' (progress); at large scale they
// turn into '-' runs (the application is effectively paused).
#pragma once

#include <string>
#include <vector>

#include "trace/record.hpp"

namespace gcr::trace {

struct TimelineOptions {
  sim::Time begin = 0;
  sim::Time end = 0;          ///< 0 = max record time
  int columns = 100;
  std::vector<mpi::RankId> ranks;  ///< empty = first 4 ranks seen
};

/// Renders the trace + checkpoint windows as multi-line ASCII art.
std::string render_timeline(const Trace& trace,
                            const std::vector<CkptWindow>& windows,
                            const TimelineOptions& options);

/// Fraction of (rank, bin) cells inside checkpoint windows that have no
/// message activity — the paper's "gap" measure. Computed over ALL ranks
/// appearing in `windows`, at `bins_per_second` resolution.
double gap_fraction(const Trace& trace, const std::vector<CkptWindow>& windows,
                    double bins_per_second = 10.0);

}  // namespace gcr::trace
