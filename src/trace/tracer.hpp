// Light-weight MPI communication tracer (paper §3.2 / §4).
//
// Attaches to the MiniMPI runtime as a passive Observer — the analogue of
// linking the tracer library into the application for a profiling run. The
// collected send records feed Algorithm 2 (group formation); the full event
// stream feeds the timeline renderer.
#pragma once

#include "mpi/hooks.hpp"
#include "mpi/rank.hpp"
#include "trace/record.hpp"

namespace gcr::trace {

class Tracer : public mpi::Observer {
 public:
  /// If `sends_only` is true, only send events are kept (cheapest mode,
  /// sufficient for group formation).
  explicit Tracer(bool sends_only = false) : sends_only_(sends_only) {}

  void on_send(const mpi::Rank& rank, const mpi::Message& msg,
               bool transmitted) override {
    // Suppressed re-sends never reach the wire; profiling runs are
    // failure-free anyway, so drop them for fidelity.
    if (!transmitted) return;
    records_.push_back(TraceRecord{rank_time(), EventKind::kSend, rank.id(),
                                   msg.dst, msg.tag, msg.bytes});
  }

  void on_deliver(const mpi::Rank& rank, const mpi::Message& msg) override {
    if (sends_only_) return;
    records_.push_back(TraceRecord{rank_time(), EventKind::kDeliver, rank.id(),
                                   msg.src, msg.tag, msg.bytes});
  }

  void on_consume(const mpi::Rank& rank, const mpi::Message& msg) override {
    if (sends_only_) return;
    records_.push_back(TraceRecord{rank_time(), EventKind::kConsume, rank.id(),
                                   msg.src, msg.tag, msg.bytes});
  }

  /// The engine the times come from; set once before the run.
  void attach_clock(const sim::Engine& engine) { engine_ = &engine; }

  const Trace& records() const { return records_; }
  Trace take() { return std::move(records_); }
  void clear() { records_.clear(); }

 private:
  sim::Time rank_time() const { return engine_ ? engine_->now() : 0; }

  bool sends_only_;
  const sim::Engine* engine_ = nullptr;
  Trace records_;
};

}  // namespace gcr::trace
