// Light-weight MPI communication tracer (paper §3.2 / §4).
//
// Attaches to the MiniMPI runtime as a passive Observer — the analogue of
// linking the tracer library into the application for a profiling run. The
// collected send records feed Algorithm 2 (group formation); the full event
// stream feeds the timeline renderer.
//
// Shard residency (DESIGN.md §15.3): observer hooks fire on the shard that
// owns the rank, so records land in PER-RANK buffers stamped with the
// rank's own engine clock — no cross-shard writes, no shared append. The
// merged view is produced on demand in the canonical (time, rank,
// per-rank append order) order; that order is a pure function of each
// rank's deterministic execution, so it is identical at every --shards
// (the merge runs even single-sharded, keeping outputs byte-identical
// across shard counts). Every downstream consumer (pair aggregation,
// timeline binning) is order-independent within a tick anyway; the
// canonical order exists so the raw trace bytes are reproducible too.
#pragma once

#include <algorithm>
#include <cstddef>

#include "mpi/hooks.hpp"
#include "mpi/rank.hpp"
#include "trace/record.hpp"

namespace gcr::trace {

class Tracer : public mpi::Observer {
 public:
  /// If `sends_only` is true, only send events are kept (cheapest mode,
  /// sufficient for group formation).
  explicit Tracer(bool sends_only = false) : sends_only_(sends_only) {}

  /// Pre-sizes the per-rank buffers. REQUIRED before a sharded run: the
  /// observer hooks append from their ranks' shards concurrently, which is
  /// only safe once the outer vector no longer reallocates. Unsharded
  /// callers may skip it (buffers grow lazily on one thread).
  void prepare(int nranks) {
    if (static_cast<std::size_t>(nranks) > per_rank_.size()) {
      per_rank_.resize(static_cast<std::size_t>(nranks));
    }
  }

  void on_send(const mpi::Rank& rank, const mpi::Message& msg,
               bool transmitted) override {
    // Suppressed re-sends never reach the wire; profiling runs are
    // failure-free anyway, so drop them for fidelity.
    if (!transmitted) return;
    buf(rank).push_back(TraceRecord{rank.engine().now(), EventKind::kSend,
                                    rank.id(), msg.dst, msg.tag, msg.bytes});
  }

  void on_deliver(const mpi::Rank& rank, const mpi::Message& msg) override {
    if (sends_only_) return;
    buf(rank).push_back(TraceRecord{rank.engine().now(), EventKind::kDeliver,
                                    rank.id(), msg.src, msg.tag, msg.bytes});
  }

  void on_consume(const mpi::Rank& rank, const mpi::Message& msg) override {
    if (sends_only_) return;
    buf(rank).push_back(TraceRecord{rank.engine().now(), EventKind::kConsume,
                                    rank.id(), msg.src, msg.tag, msg.bytes});
  }

  /// The merged trace in canonical (time, rank, append) order. Call only
  /// after the run quiesced (a barrier orders all shard appends before it).
  Trace records() const { return merged(); }
  Trace take() {
    Trace out = merged();
    clear();
    return out;
  }
  void clear() {
    for (Trace& t : per_rank_) t.clear();
  }

 private:
  Trace& buf(const mpi::Rank& rank) {
    const auto id = static_cast<std::size_t>(rank.id());
    if (id >= per_rank_.size()) per_rank_.resize(id + 1);  // unsharded only
    return per_rank_[id];
  }

  Trace merged() const {
    Trace out;
    std::size_t total = 0;
    for (const Trace& t : per_rank_) total += t.size();
    out.reserve(total);
    // Concatenating in rank order and stable-sorting by (time, rank)
    // leaves each rank's append order as the final tiebreak.
    for (const Trace& t : per_rank_) out.insert(out.end(), t.begin(), t.end());
    std::stable_sort(out.begin(), out.end(),
                     [](const TraceRecord& a, const TraceRecord& b) {
                       if (a.time != b.time) return a.time < b.time;
                       return a.rank < b.rank;
                     });
    return out;
  }

  bool sends_only_;
  std::vector<Trace> per_rank_;
};

}  // namespace gcr::trace
