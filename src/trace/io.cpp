#include "trace/io.hpp"

#include <fstream>
#include <sstream>

#include "util/log.hpp"

namespace gcr::trace {
namespace {

char kind_char(EventKind kind) {
  switch (kind) {
    case EventKind::kSend: return 'S';
    case EventKind::kDeliver: return 'D';
    case EventKind::kConsume: return 'C';
  }
  return '?';
}

bool parse_kind(char ch, EventKind* out) {
  switch (ch) {
    case 'S': *out = EventKind::kSend; return true;
    case 'D': *out = EventKind::kDeliver; return true;
    case 'C': *out = EventKind::kConsume; return true;
    default: return false;
  }
}

}  // namespace

void write_trace(std::ostream& os, const Trace& trace) {
  os << "# gcr trace v1: time_ns kind rank peer tag bytes\n";
  for (const TraceRecord& rec : trace) {
    os << rec.time << ' ' << kind_char(rec.kind) << ' ' << rec.rank << ' '
       << rec.peer << ' ' << rec.tag << ' ' << rec.bytes << '\n';
  }
}

Trace read_trace(std::istream& is) {
  Trace trace;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    TraceRecord rec;
    char kind_ch = 0;
    if (!(ls >> rec.time >> kind_ch >> rec.rank >> rec.peer >> rec.tag >>
          rec.bytes)) {
      GCR_WARN("skipping malformed trace line: %s", line.c_str());
      continue;
    }
    if (!parse_kind(kind_ch, &rec.kind)) {
      GCR_WARN("skipping trace line with unknown kind: %s", line.c_str());
      continue;
    }
    trace.push_back(rec);
  }
  return trace;
}

bool save_trace(const std::string& path, const Trace& trace) {
  std::ofstream os(path);
  if (!os) return false;
  write_trace(os, trace);
  return static_cast<bool>(os);
}

Trace load_trace(const std::string& path, bool* ok) {
  std::ifstream is(path);
  if (!is) {
    if (ok) *ok = false;
    return {};
  }
  if (ok) *ok = true;
  return read_trace(is);
}

}  // namespace gcr::trace
