#include "apps/simple.hpp"

#include <algorithm>
#include <memory>
#include <vector>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace gcr::apps {
namespace {

constexpr int kTagRing = 40;
constexpr int kTagHalo = 41;
constexpr int kTagPair = 42;

sim::Co<void> ring_body(std::shared_ptr<RingParams> p, int nranks,
                        mpi::AppHandle h) {
  const mpi::RankId next = (h.id() + 1) % nranks;
  const mpi::RankId prev = (h.id() + nranks - 1) % nranks;
  for (std::uint64_t it = h.start_iteration(); it < p->iterations; ++it) {
    co_await h.safepoint(it);
    if (nranks > 1) {
      (void)co_await h.sendrecv(next, kTagRing, p->bytes, prev, kTagRing);
    }
    co_await h.compute(p->compute_s);
  }
  co_await h.safepoint(p->iterations);
}

sim::Co<void> stencil_body(std::shared_ptr<Stencil1dParams> p, int nranks,
                           mpi::AppHandle h) {
  const int width = p->cluster_width > 0 ? p->cluster_width : nranks;
  const int block = h.id() / width;
  const int lo = block * width;
  const int hi = std::min(nranks, lo + width) - 1;
  const bool has_left = h.id() > lo;
  const bool has_right = h.id() < hi;
  for (std::uint64_t it = h.start_iteration(); it < p->iterations; ++it) {
    co_await h.safepoint(it);
    // Left-to-right then right-to-left half-exchanges keep per-pair FIFO
    // order identical on both sides without needing sendrecv.
    if (has_right) co_await h.send(h.id() + 1, kTagHalo, p->halo_bytes);
    if (has_left) {
      (void)co_await h.recv(h.id() - 1, kTagHalo);
      co_await h.send(h.id() - 1, kTagHalo, p->halo_bytes);
    }
    if (has_right) (void)co_await h.recv(h.id() + 1, kTagHalo);
    co_await h.compute(p->compute_s);
  }
  co_await h.safepoint(p->iterations);
}

sim::Co<void> pairs_body(std::shared_ptr<RandomPairsParams> p, int nranks,
                         mpi::AppHandle h) {
  for (std::uint64_t it = h.start_iteration(); it < p->iterations; ++it) {
    co_await h.safepoint(it);
    // All ranks compute the same deterministic pairing for this iteration.
    gcr::Rng rng(gcr::mix_seed(p->seed, it));
    std::vector<int> perm(static_cast<std::size_t>(nranks));
    for (int i = 0; i < nranks; ++i) perm[static_cast<std::size_t>(i)] = i;
    for (int i = nranks - 1; i > 0; --i) {
      const int j = static_cast<int>(rng.next_below(
          static_cast<std::uint64_t>(i) + 1));
      std::swap(perm[static_cast<std::size_t>(i)],
                perm[static_cast<std::size_t>(j)]);
    }
    // perm[2k] <-> perm[2k+1] exchange; odd rank count leaves one idle.
    mpi::RankId partner = h.id();
    for (int k = 0; k + 1 < nranks; k += 2) {
      if (perm[static_cast<std::size_t>(k)] == h.id()) {
        partner = perm[static_cast<std::size_t>(k + 1)];
      } else if (perm[static_cast<std::size_t>(k + 1)] == h.id()) {
        partner = perm[static_cast<std::size_t>(k)];
      }
    }
    if (partner != h.id()) {
      (void)co_await h.sendrecv(partner, kTagPair, p->bytes, partner,
                                kTagPair);
    }
    co_await h.compute(p->compute_s);
  }
  co_await h.safepoint(p->iterations);
}

}  // namespace

AppSpec make_ring(int nranks, const RingParams& params) {
  auto p = std::make_shared<RingParams>(params);
  AppSpec spec;
  spec.name = "ring";
  spec.iterations = params.iterations;
  const std::int64_t mem = params.mem_bytes;
  spec.image_bytes = [mem](mpi::RankId) { return mem; };
  spec.body = [p, nranks](mpi::AppHandle h) { return ring_body(p, nranks, h); };
  return spec;
}

AppSpec make_stencil1d(int nranks, const Stencil1dParams& params) {
  auto p = std::make_shared<Stencil1dParams>(params);
  AppSpec spec;
  spec.name = "stencil1d";
  spec.iterations = params.iterations;
  const std::int64_t mem = params.mem_bytes;
  spec.image_bytes = [mem](mpi::RankId) { return mem; };
  spec.body = [p, nranks](mpi::AppHandle h) {
    return stencil_body(p, nranks, h);
  };
  return spec;
}

AppSpec make_random_pairs(int nranks, const RandomPairsParams& params) {
  auto p = std::make_shared<RandomPairsParams>(params);
  AppSpec spec;
  spec.name = "random_pairs";
  spec.iterations = params.iterations;
  const std::int64_t mem = params.mem_bytes;
  spec.image_bytes = [mem](mpi::RankId) { return mem; };
  spec.body = [p, nranks](mpi::AppHandle h) {
    return pairs_body(p, nranks, h);
  };
  return spec;
}

}  // namespace gcr::apps
