// Long-running elastic service workload (DESIGN.md §16).
//
// Unlike the batch apps (HPL/CG/SP), the service serves an OPEN-LOOP
// request stream: each rank's request arrival times are drawn up front
// from a seeded Poisson process, so load keeps arriving on the wall clock
// whether or not the service is keeping up — an outage builds a backlog
// that must drain at the service rate, which is exactly what availability
// and tail-latency metrics are supposed to expose. Each request may
// consult a peer replica (in-block sendrecv) or a remote partition
// (cross-block sendrecv), then computes for the service time; its
// completion is recorded against the scheduled arrival, and the SLO
// accounting in apps::ServiceStats is derived after the run.
//
// One request is one protocol iteration (safepoint), so checkpoints land
// between requests and a restore re-executes the requests after the cut;
// re-executed completions overwrite earlier ones, charging each request
// the full delay it actually experienced.
#pragma once

#include <cstdint>

#include "apps/app.hpp"

namespace gcr::apps {

struct ServiceParams {
  std::uint64_t requests = 200;     ///< per-rank request count
  double arrival_rate_hz = 2.0;     ///< per-rank mean arrival rate (Poisson)
  double service_s = 0.05;          ///< per-request compute time
  std::int64_t request_bytes = 4096;  ///< peer-consult payload
  int partner_every = 4;   ///< every k-th request consults a peer replica
  int cross_every = 16;    ///< every k-th request consults a remote partition
  int cluster_width = 0;   ///< replica-block width (0 = one global block)
  double slo_s = 0.5;      ///< latency SLO threshold (arrival -> completion)
  std::int64_t mem_bytes = 64ll << 20;  ///< checkpoint image size per rank
  std::uint64_t seed = 1;  ///< arrival-process seed (substream per rank)
};

/// Builds the service app for `nranks` ranks. The returned spec's
/// `service_stats` hook snapshots request-level latency/SLO stats from the
/// recorded completions (call it after the run; calling it mid-run gives
/// the stats of what has completed so far).
AppSpec make_service(int nranks, const ServiceParams& params);

}  // namespace gcr::apps
