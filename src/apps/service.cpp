#include "apps/service.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace gcr::apps {
namespace {

constexpr int kTagPeer = 50;
constexpr int kTagCross = 51;
constexpr double kNotDone = -1.0;

/// Shared across all rank bodies of one experiment. Arrival times are
/// precomputed at spec construction, so the request schedule is a function
/// of (seed, nranks) alone — faults, churn and restarts cannot perturb it
/// (that is what makes the stream open-loop). Completion slots are
/// preallocated per rank; in shard-resident runs each rank writes only its
/// own vector, so shard threads never share a cache line's worth of
/// request state with another rank's writer.
struct ServiceState {
  ServiceParams p;
  std::vector<std::vector<double>> arrival;   ///< [rank][request] seconds
  std::vector<std::vector<double>> done;      ///< [rank][request] seconds
};

sim::Co<void> service_body(std::shared_ptr<ServiceState> s, int nranks,
                           mpi::AppHandle h) {
  const ServiceParams& p = s->p;
  const int width =
      p.cluster_width > 0 ? std::min(p.cluster_width, nranks) : nranks;
  const int lo = (h.id() / width) * width;
  const int bs = std::min(nranks, lo + width) - lo;
  const mpi::RankId peer_next = lo + (h.id() - lo + 1) % bs;
  const mpi::RankId peer_prev = lo + (h.id() - lo + bs - 1) % bs;
  const mpi::RankId cross_next = (h.id() + width) % nranks;
  const mpi::RankId cross_prev = (h.id() + nranks - width) % nranks;
  auto& arrival = s->arrival[static_cast<std::size_t>(h.id())];
  auto& done = s->done[static_cast<std::size_t>(h.id())];
  for (std::uint64_t it = h.start_iteration(); it < p.requests; ++it) {
    co_await h.safepoint(it);
    // Open-loop admission: sleep until the scheduled arrival. After a
    // restart the clock is usually past the arrival already — the backlog
    // is served immediately, back to back.
    const double wait = arrival[static_cast<std::size_t>(it)] - h.now_s();
    if (wait > 0) co_await h.compute(wait);
    // Fan-out: periodic peer-replica consult inside the block, rarer
    // cross-partition consult. Every rank runs the same request index, so
    // the shifted-ring exchanges pair up deterministically.
    if (bs > 1 && p.partner_every > 0 && it % p.partner_every == 0) {
      (void)co_await h.sendrecv(peer_next, kTagPeer, p.request_bytes,
                                peer_prev, kTagPeer);
    } else if (width < nranks && p.cross_every > 0 &&
               it % p.cross_every == 0) {
      (void)co_await h.sendrecv(cross_next, kTagCross, p.request_bytes,
                                cross_prev, kTagCross);
    }
    co_await h.compute(p.service_s);
    // Re-execution after a restore overwrites the earlier completion: the
    // request is charged for the outage it actually sat through.
    done[static_cast<std::size_t>(it)] = h.now_s();
  }
  co_await h.safepoint(p.requests);
}

ServiceStats snapshot_stats(const ServiceState& s) {
  ServiceStats st;
  std::vector<double> latencies;
  for (std::size_t r = 0; r < s.done.size(); ++r) {
    for (std::size_t i = 0; i < s.done[r].size(); ++i) {
      ++st.requests;
      const double d = s.done[r][i];
      if (d == kNotDone) continue;
      ++st.completed;
      const double lat = d - s.arrival[r][i];
      latencies.push_back(lat);
      if (lat > s.p.slo_s) ++st.slo_misses;
    }
  }
  if (st.requests > 0) {
    st.slo_miss_rate =
        static_cast<double>(st.slo_misses + (st.requests - st.completed)) /
        static_cast<double>(st.requests);
  }
  if (latencies.empty()) return st;
  std::sort(latencies.begin(), latencies.end());
  double sum = 0;
  for (double l : latencies) sum += l;
  st.mean_latency_s = sum / static_cast<double>(latencies.size());
  st.max_latency_s = latencies.back();
  // Nearest-rank quantiles: ceil(q*n) - 1, clamped.
  const auto at = [&](double q) {
    const auto n = static_cast<double>(latencies.size());
    const auto idx = static_cast<std::size_t>(
        std::min(n - 1.0, std::max(0.0, std::ceil(q * n) - 1.0)));
    return latencies[idx];
  };
  st.p50_latency_s = at(0.50);
  st.p99_latency_s = at(0.99);
  st.p999_latency_s = at(0.999);
  return st;
}

}  // namespace

AppSpec make_service(int nranks, const ServiceParams& params) {
  GCR_CHECK(nranks > 0);
  GCR_CHECK_MSG(params.arrival_rate_hz > 0,
                "service: arrival_rate_hz must be positive");
  GCR_CHECK_MSG(params.service_s >= 0, "service: service_s must be >= 0");
  GCR_CHECK_MSG(params.slo_s > 0, "service: slo_s must be positive");
  auto state = std::make_shared<ServiceState>();
  state->p = params;
  state->arrival.resize(static_cast<std::size_t>(nranks));
  state->done.resize(static_cast<std::size_t>(nranks));
  const double mean_gap = 1.0 / params.arrival_rate_hz;
  for (int r = 0; r < nranks; ++r) {
    auto& arr = state->arrival[static_cast<std::size_t>(r)];
    arr.reserve(params.requests);
    Rng rng(mix_seed(params.seed, 0x5E21C0DEull + static_cast<std::uint64_t>(r)));
    double t = 0;
    for (std::uint64_t i = 0; i < params.requests; ++i) {
      t += rng.next_exponential(mean_gap);
      arr.push_back(t);
    }
    state->done[static_cast<std::size_t>(r)].assign(params.requests, kNotDone);
  }
  AppSpec spec;
  spec.name = "service";
  spec.iterations = params.requests;
  const std::int64_t mem = params.mem_bytes;
  spec.image_bytes = [mem](mpi::RankId) { return mem; };
  spec.body = [state, nranks](mpi::AppHandle h) {
    return service_body(state, nranks, h);
  };
  spec.service_stats = [state] { return snapshot_stats(*state); };
  return spec;
}

}  // namespace gcr::apps
