// HPL (High-Performance Linpack) skeleton workload.
//
// Reproduces HPL's process-grid communication structure on a P×Q grid with
// row-major rank mapping (rank = row*Q + col), per the paper's setup
// (N=20000/56000, NB=120, P=8). Each of the N/NB iterations:
//   1. panel factorization inside the panel-owning process COLUMN
//      (column-broadcast of the factored panel block),
//   2. panel broadcast along every process ROW,
//   3. U broadcast along every process COLUMN (row swaps),
//   4. trailing-matrix update (compute).
// Column traffic dominates (step 1+3), which is why trace-driven group
// formation discovers the grid columns {r : r mod Q == c} — exactly the
// paper's Table 1.
//
// Only the communication/computation *structure* is executed; no numerics.
// Memory model: 8·N²/nranks + runtime base (drives image sizes).
#pragma once

#include <cstdint>

#include "apps/app.hpp"

namespace gcr::apps {

struct HplParams {
  std::int64_t n = 20000;       ///< matrix order
  std::int64_t nb = 120;        ///< block size
  int grid_rows = 8;            ///< P (paper fixes P=8)
  double flops_per_s = 1.8e9;   ///< sustained per-process rate (P4 2.0 GHz)
  std::int64_t base_mem_bytes = 12 * 1024 * 1024;  ///< runtime footprint
};

/// Process-grid geometry helpers (row-major mapping).
struct HplGrid {
  int p = 0;  ///< rows
  int q = 0;  ///< cols
  int row_of(mpi::RankId r) const { return r / q; }
  int col_of(mpi::RankId r) const { return r % q; }
  mpi::RankId at(int row, int col) const { return row * q + col; }
};

/// Chooses P×Q for nranks: P = min(grid_rows, largest divisor <= grid_rows).
HplGrid hpl_grid(int nranks, int grid_rows);

/// Builds the runnable spec for `nranks` processes.
AppSpec make_hpl(int nranks, const HplParams& params = {});

}  // namespace gcr::apps
