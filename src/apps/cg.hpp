// NPB CG (Conjugate Gradient) skeleton workload.
//
// NPB CG partitions the sparse matrix over a num_proc_rows × num_proc_cols
// grid (both powers of two). Every inner CG iteration does a transpose-
// reduce exchange along the process row (large messages) plus global dot
// products (tiny allreduces) — "non-stop message transfers throughout the
// execution; the application can not progress when there is no message"
// (paper §2.2). That property is what turns VCL's no-send windows into the
// Figure 2 gap cascades.
//
// Class C: na=150000, nonzer=15, 75 outer iterations.
#pragma once

#include <cstdint>

#include "apps/app.hpp"

namespace gcr::apps {

struct CgParams {
  std::int64_t na = 150000;   ///< matrix order (Class C)
  int nonzer = 15;            ///< nonzeros parameter (Class C)
  int outer_iters = 75;       ///< safe-point granularity
  int inner_steps = 26;       ///< CG steps per outer iteration (NPB: ~26)
  int allreduce_every = 3;    ///< global dot product every k-th step
  /// Per-step traffic in local-vector volumes: the transpose-reduce moves
  /// q, then z/r updates and the irregular indexed gathers move several
  /// more vector-lengths across the row (calibrated so Class C execution
  /// times on Fast Ethernet land in the paper's range).
  double exchange_volume_factor = 7.0;
  /// Sparse matvec runs memory-bound on a P4 (~10% of peak).
  double flops_per_s = 150e6;
  std::int64_t base_mem_bytes = 6 * 1024 * 1024;
};

/// nranks must be a power of two (NPB restriction).
AppSpec make_cg(int nranks, const CgParams& params = {});

}  // namespace gcr::apps
