// Small synthetic workloads for tests, examples, and ablations.
#pragma once

#include <cstdint>

#include "apps/app.hpp"

namespace gcr::apps {

struct RingParams {
  std::uint64_t iterations = 50;
  std::int64_t bytes = 64 * 1024;
  double compute_s = 0.01;  ///< per-iteration compute per rank
  std::int64_t mem_bytes = 8 * 1024 * 1024;
};

/// Each iteration: send to (r+1)%n, receive from (r-1+n)%n, compute.
AppSpec make_ring(int nranks, const RingParams& params = {});

struct Stencil1dParams {
  std::uint64_t iterations = 50;
  std::int64_t halo_bytes = 32 * 1024;
  double compute_s = 0.01;
  std::int64_t mem_bytes = 8 * 1024 * 1024;
  int cluster_width = 0;  ///< >0: ranks only talk within blocks of this width
};

/// Non-periodic 1-D halo exchange; with cluster_width set, communication is
/// confined to disjoint blocks — a workload with an obvious best grouping.
AppSpec make_stencil1d(int nranks, const Stencil1dParams& params = {});

struct RandomPairsParams {
  std::uint64_t iterations = 40;
  std::int64_t bytes = 16 * 1024;
  double compute_s = 0.005;
  std::uint64_t seed = 42;
  std::int64_t mem_bytes = 4 * 1024 * 1024;
};

/// Deterministic random pairing each iteration (all ranks paired up via a
/// seeded shuffle); stresses group formation with unstructured traffic.
AppSpec make_random_pairs(int nranks, const RandomPairsParams& params = {});

}  // namespace gcr::apps
