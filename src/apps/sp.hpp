// NPB SP (Scalar Penta-diagonal) skeleton workload.
//
// SP runs on a square process count (NPB restriction: 64, 81, 100, 121 in
// the paper). Modeled as a 2-D decomposition with ADI sweeps: every
// iteration exchanges faces with the x-neighbors (heavier) and y-neighbors
// (lighter), then computes. X-direction traffic is dominant, so trace-driven
// group formation discovers the process rows.
//
// Class C: 162³ grid, 400 iterations (we default to fewer modeled safe
// points with proportionally larger per-iteration work to keep event counts
// tractable; total compute/communication volumes are preserved).
#pragma once

#include <cstdint>

#include "apps/app.hpp"

namespace gcr::apps {

struct SpParams {
  int grid_points = 162;       ///< Class C problem size per dimension
  int niter = 400;             ///< NPB iteration count (Class C)
  int modeled_iters = 100;     ///< safe points; work scaled by niter/modeled
  double flops_per_s = 100e6;  ///< stencil sweeps are memory-bound on a P4
  std::int64_t base_mem_bytes = 12 * 1024 * 1024;
};

/// nranks must be a perfect square.
AppSpec make_sp(int nranks, const SpParams& params = {});

}  // namespace gcr::apps
