#include "apps/hpl.hpp"

#include <algorithm>
#include <memory>
#include <vector>

#include "apps/patterns.hpp"
#include "util/assert.hpp"

namespace gcr::apps {
namespace {

constexpr int kTagPanelFact = 10;
constexpr int kTagPanelBcast = 11;
constexpr int kTagUBcast = 12;

struct HplShared {
  HplParams params;
  HplGrid grid;
  std::uint64_t iters;
  // Precomputed member lists per grid row / column.
  std::vector<std::vector<mpi::RankId>> row_members;
  std::vector<std::vector<mpi::RankId>> col_members;
};

// One HPL iteration is four safe-point steps (panel factorization, panel
// broadcast, U broadcast, update). Step-level safe points keep checkpoint
// trigger latency well below one iteration, approximating a system-level
// checkpointer that can interrupt at any MPI call.
sim::Co<void> hpl_body(std::shared_ptr<HplShared> sh, mpi::AppHandle h) {
  const HplGrid& g = sh->grid;
  const HplParams& prm = sh->params;
  const int myrow = g.row_of(h.id());
  const int mycol = g.col_of(h.id());
  const auto& my_row = sh->row_members[static_cast<std::size_t>(myrow)];
  const auto& my_col = sh->col_members[static_cast<std::size_t>(mycol)];

  const std::uint64_t total_steps = sh->iters * 4;
  for (std::uint64_t s = h.start_iteration(); s < total_steps; ++s) {
    co_await h.safepoint(s);
    const std::uint64_t k = s / 4;
    const int step = static_cast<int>(s % 4);
    const std::int64_t trailing =
        prm.n - static_cast<std::int64_t>(k) * prm.nb;
    const std::int64_t rows_loc = std::max<std::int64_t>(
        1, (trailing + g.p - 1) / g.p);
    const std::int64_t cols_loc = std::max<std::int64_t>(
        1, (trailing + g.q - 1) / g.q);
    const int panel_col = static_cast<int>(k) % g.q;
    const int pivot_row = static_cast<int>(k) % g.p;

    switch (step) {
      case 0:
        // Panel factorization inside the panel-owning process column:
        // factor + column-broadcast of the panel block.
        if (mycol == panel_col) {
          co_await h.compute(static_cast<double>(prm.nb) * prm.nb *
                             static_cast<double>(rows_loc) / prm.flops_per_s);
          co_await bcast_subset(h, my_col, pivot_row, rows_loc * prm.nb * 8,
                                kTagPanelFact);
        }
        break;
      case 1:
        // Panel broadcast along every process row.
        co_await bcast_subset(h, my_row, panel_col, rows_loc * prm.nb * 8,
                              kTagPanelBcast);
        break;
      case 2:
        // U broadcast (row swaps) along every process column.
        co_await bcast_subset(h, my_col, pivot_row, cols_loc * prm.nb * 8,
                              kTagUBcast);
        break;
      case 3:
        // Trailing update: 2·NB·rows·cols flops per process.
        co_await h.compute(2.0 * static_cast<double>(prm.nb) *
                           static_cast<double>(rows_loc) *
                           static_cast<double>(cols_loc) / prm.flops_per_s);
        break;
    }
  }
  co_await h.safepoint(total_steps);
}

}  // namespace

HplGrid hpl_grid(int nranks, int grid_rows) {
  GCR_CHECK(nranks > 0 && grid_rows > 0);
  int p = std::min(grid_rows, nranks);
  while (p > 1 && nranks % p != 0) --p;
  return HplGrid{p, nranks / p};
}

AppSpec make_hpl(int nranks, const HplParams& params) {
  auto sh = std::make_shared<HplShared>();
  sh->params = params;
  sh->grid = hpl_grid(nranks, params.grid_rows);
  sh->iters = static_cast<std::uint64_t>(params.n / params.nb);
  sh->row_members.resize(static_cast<std::size_t>(sh->grid.p));
  sh->col_members.resize(static_cast<std::size_t>(sh->grid.q));
  for (int r = 0; r < nranks; ++r) {
    sh->row_members[static_cast<std::size_t>(sh->grid.row_of(r))].push_back(r);
    sh->col_members[static_cast<std::size_t>(sh->grid.col_of(r))].push_back(r);
  }

  AppSpec spec;
  spec.name = "hpl";
  spec.iterations = sh->iters * 4;
  const std::int64_t mem =
      8 * params.n * params.n / nranks + params.base_mem_bytes;
  spec.image_bytes = [mem](mpi::RankId) { return mem; };
  spec.body = [sh](mpi::AppHandle h) { return hpl_body(sh, h); };
  return spec;
}

}  // namespace gcr::apps
