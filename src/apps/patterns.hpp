// Communication-pattern helpers for application skeletons: collectives over
// arbitrary rank subsets (process rows/columns of a grid), built on the
// runtime's p2p so every hop passes through the protocol hooks.
//
// Application contract (required by the checkpoint protocols; the safe-point
// trigger these feed is DESIGN.md §5):
//  * call `co_await h.safepoint(k)` at the TOP of iteration k, before any
//    communication of that iteration, and once more after the last
//    iteration;
//  * per peer, receive messages in the order the peer sends them (standard
//    non-overtaking discipline) — the runtime asserts this.
#pragma once

#include <cstdint>
#include <vector>

#include "mpi/runtime.hpp"

namespace gcr::apps {

/// Binomial broadcast over an explicit member list (e.g. one process row).
/// `root_index` indexes into `members`. Every member must call this with the
/// same arguments.
sim::Co<void> bcast_subset(mpi::AppHandle& h,
                           const std::vector<mpi::RankId>& members,
                           int root_index, std::int64_t bytes, int tag);

/// Index of `rank` in `members`; -1 if absent.
int index_in(const std::vector<mpi::RankId>& members, mpi::RankId rank);

}  // namespace gcr::apps
