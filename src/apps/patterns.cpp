#include "apps/patterns.hpp"

#include "util/assert.hpp"

namespace gcr::apps {

int index_in(const std::vector<mpi::RankId>& members, mpi::RankId rank) {
  for (std::size_t i = 0; i < members.size(); ++i) {
    if (members[i] == rank) return static_cast<int>(i);
  }
  return -1;
}

sim::Co<void> bcast_subset(mpi::AppHandle& h,
                           const std::vector<mpi::RankId>& members,
                           int root_index, std::int64_t bytes, int tag) {
  const int p = static_cast<int>(members.size());
  const int me = index_in(members, h.id());
  GCR_CHECK_MSG(me >= 0, "bcast_subset caller must be a member");
  GCR_CHECK(root_index >= 0 && root_index < p);
  const int relative = (me - root_index + p) % p;
  int mask = 1;
  while (mask < p) {
    if (relative & mask) {
      int src = me - mask;
      if (src < 0) src += p;
      (void)co_await h.recv(members[static_cast<std::size_t>(src)], tag);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (relative + mask < p) {
      int dst = me + mask;
      if (dst >= p) dst -= p;
      co_await h.send(members[static_cast<std::size_t>(dst)], tag, bytes);
    }
    mask >>= 1;
  }
}

}  // namespace gcr::apps
