#include "apps/sp.hpp"

#include <cmath>
#include <memory>

#include "util/assert.hpp"

namespace gcr::apps {
namespace {

constexpr int kTagXSweep = 30;
constexpr int kTagYSweep = 31;

struct SpShared {
  SpParams params;
  int side = 0;  ///< sqrt(nranks)
  std::int64_t x_face_bytes = 0;
  std::int64_t y_face_bytes = 0;
  double compute_per_iter_s = 0;
  std::uint64_t iters = 0;
};

sim::Co<void> sp_body(std::shared_ptr<SpShared> sh, mpi::AppHandle h) {
  const int side = sh->side;
  const int myrow = h.id() / side;
  const int mycol = h.id() % side;
  // Periodic neighbors (multi-partition sweeps wrap around).
  const mpi::RankId xplus = myrow * side + (mycol + 1) % side;
  const mpi::RankId xminus = myrow * side + (mycol + side - 1) % side;
  const mpi::RankId yplus = ((myrow + 1) % side) * side + mycol;
  const mpi::RankId yminus = ((myrow + side - 1) % side) * side + mycol;

  // Safe points at each ADI sweep (3 per iteration).
  const std::uint64_t total_steps = sh->iters * 3;
  for (std::uint64_t s = h.start_iteration(); s < total_steps; ++s) {
    co_await h.safepoint(s);
    switch (static_cast<int>(s % 3)) {
      case 0:
        // x-sweep: exchange with x-neighbors (dominant traffic), twice
        // (forward and backward substitution).
        for (int phase = 0; phase < 2; ++phase) {
          if (side > 1) {
            (void)co_await h.sendrecv(xplus, kTagXSweep, sh->x_face_bytes,
                                      xminus, kTagXSweep);
            (void)co_await h.sendrecv(xminus, kTagXSweep, sh->x_face_bytes,
                                      xplus, kTagXSweep);
          }
          co_await h.compute(sh->compute_per_iter_s / 6.0);
        }
        break;
      case 1:
        // y-sweep: lighter exchange with y-neighbors.
        if (side > 1) {
          (void)co_await h.sendrecv(yplus, kTagYSweep, sh->y_face_bytes,
                                    yminus, kTagYSweep);
          (void)co_await h.sendrecv(yminus, kTagYSweep, sh->y_face_bytes,
                                    yplus, kTagYSweep);
        }
        co_await h.compute(sh->compute_per_iter_s / 3.0);
        break;
      case 2:
        // z-sweep is local in this decomposition.
        co_await h.compute(sh->compute_per_iter_s / 3.0);
        break;
    }
  }
  co_await h.safepoint(total_steps);
}

}  // namespace

AppSpec make_sp(int nranks, const SpParams& params) {
  const int side = static_cast<int>(std::lround(std::sqrt(nranks)));
  GCR_CHECK_MSG(side * side == nranks, "NPB SP requires a square rank count");
  auto sh = std::make_shared<SpShared>();
  sh->params = params;
  sh->side = side;
  sh->iters = static_cast<std::uint64_t>(params.modeled_iters);

  const double gp = static_cast<double>(params.grid_points);
  const double scale = static_cast<double>(params.niter) /
                       static_cast<double>(params.modeled_iters);
  // Face: gp * (gp/side) cells, 5 solution variables, 8 bytes; x gets 2x.
  sh->x_face_bytes =
      static_cast<std::int64_t>(gp * gp / side * 5 * 8 * scale / 4);
  sh->y_face_bytes = sh->x_face_bytes / 2;

  // SP-C: ~900 flops per grid point per iteration.
  const double flops_per_iter = gp * gp * gp * 900.0 * scale;
  sh->compute_per_iter_s = flops_per_iter / static_cast<double>(nranks) /
                           params.flops_per_s;

  AppSpec spec;
  spec.name = "sp";
  spec.iterations = sh->iters * 3;
  const std::int64_t mem = static_cast<std::int64_t>(gp * gp * gp) * 15 * 8 /
                               nranks +
                           params.base_mem_bytes;
  spec.image_bytes = [mem](mpi::RankId) { return mem; };
  spec.body = [sh](mpi::AppHandle h) { return sp_body(sh, h); };
  return spec;
}

}  // namespace gcr::apps
