// Application specification: what the experiment harness needs to run a
// workload under any checkpoint protocol.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "mpi/runtime.hpp"

namespace gcr::apps {

struct AppSpec {
  std::string name;
  mpi::AppBody body;                                 ///< per-rank coroutine
  std::function<std::int64_t(mpi::RankId)> image_bytes;  ///< memory model
  std::uint64_t iterations = 0;  ///< safe points per rank (informational)
};

}  // namespace gcr::apps
