// Application specification: what the experiment harness needs to run a
// workload under any checkpoint protocol.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "mpi/runtime.hpp"

namespace gcr::apps {

/// Request-level outcome of a service workload (apps/service.hpp), filled
/// after the run from the recorded arrival/completion times. Latency is
/// measured from the scheduled (open-loop) arrival to final completion, so
/// a restart that re-executes a request charges the request for the whole
/// outage. `slo_miss_rate` is the fraction of ISSUED requests that did not
/// complete within the SLO — late completions and never-completed requests
/// both count, so a truncated run cannot hide misses.
struct ServiceStats {
  std::uint64_t requests = 0;   ///< issued across all ranks
  std::uint64_t completed = 0;  ///< served at least once (final re-execution)
  std::uint64_t slo_misses = 0; ///< completed later than the SLO threshold
  double slo_miss_rate = 0;     ///< (slo_misses + never-completed) / requests
  double mean_latency_s = 0;    ///< over completed requests
  double p50_latency_s = 0;
  double p99_latency_s = 0;
  double p999_latency_s = 0;
  double max_latency_s = 0;
};

struct AppSpec {
  std::string name;
  mpi::AppBody body;                                 ///< per-rank coroutine
  std::function<std::int64_t(mpi::RankId)> image_bytes;  ///< memory model
  std::uint64_t iterations = 0;  ///< safe points per rank (informational)
  /// Set only by service workloads: snapshots request-level stats from the
  /// app's recorded arrival/completion times. Called by the experiment
  /// harness after the run; null for batch apps.
  std::function<ServiceStats()> service_stats;
};

}  // namespace gcr::apps
