#include "apps/cg.hpp"

#include <memory>

#include "util/assert.hpp"

namespace gcr::apps {
namespace {

constexpr int kTagTranspose = 20;

bool is_pow2(int v) { return v > 0 && (v & (v - 1)) == 0; }

int ilog2(int v) {
  int l = 0;
  while ((1 << (l + 1)) <= v) ++l;
  return l;
}

struct CgShared {
  CgParams params;
  int nranks = 0;
  int npcols = 0;  ///< power of two, low bits of the rank
  int nprows = 0;
  std::int64_t exchange_bytes = 0;
  double compute_per_step_s = 0;
};

// Safe points at every inner CG step (matvec + transpose exchange + dot):
// CG's communication is continuous, so fine-grained safe points mirror a
// checkpointer that can interrupt at any MPI call.
sim::Co<void> cg_body(std::shared_ptr<CgShared> sh, mpi::AppHandle h) {
  const int log_cols = ilog2(sh->npcols);
  const std::uint64_t total_steps =
      static_cast<std::uint64_t>(sh->params.outer_iters) *
      static_cast<std::uint64_t>(sh->params.inner_steps);
  for (std::uint64_t s = h.start_iteration(); s < total_steps; ++s) {
    co_await h.safepoint(s);
    // Local sparse matvec portion.
    co_await h.compute(sh->compute_per_step_s);
    // Transpose-reduce along the process row: pairwise exchange with
    // partners differing in one column bit (recursive halving).
    for (int j = 0; j < log_cols; ++j) {
      const mpi::RankId partner = h.id() ^ (1 << j);
      (void)co_await h.sendrecv(partner, kTagTranspose, sh->exchange_bytes,
                                partner, kTagTranspose);
    }
    // Global dot product (rho / alpha) — tiny but global. The transpose
    // exchanges dominate the traffic; dots are less frequent.
    if (sh->params.allreduce_every > 0 &&
        s % static_cast<std::uint64_t>(sh->params.allreduce_every) == 0) {
      co_await h.allreduce(8);
    }
  }
  co_await h.safepoint(total_steps);
}

}  // namespace

AppSpec make_cg(int nranks, const CgParams& params) {
  GCR_CHECK_MSG(is_pow2(nranks), "NPB CG requires a power-of-two rank count");
  auto sh = std::make_shared<CgShared>();
  sh->params = params;
  sh->nranks = nranks;
  const int l2 = ilog2(nranks);
  sh->npcols = 1 << ((l2 + 1) / 2);
  sh->nprows = nranks / sh->npcols;
  // Each rank owns na/nprows rows; the transpose exchange moves the local
  // vector segment (na/npcols doubles) across the row in log steps.
  sh->exchange_bytes = static_cast<std::int64_t>(
      params.exchange_volume_factor * 8.0 *
      static_cast<double>(params.na) / sh->npcols);

  // Flops: nnz ~ na*(nonzer+1)^2 per matvec, split across ranks and inner
  // steps within an outer iteration.
  const double nnz = static_cast<double>(params.na) *
                     static_cast<double>((params.nonzer + 1)) *
                     static_cast<double>((params.nonzer + 1));
  const double flops_per_outer = 2.0 * nnz * 26.0 /  // 26 CG steps per NPB iter
                                 static_cast<double>(params.inner_steps);
  sh->compute_per_step_s =
      flops_per_outer / static_cast<double>(nranks) / params.flops_per_s;

  AppSpec spec;
  spec.name = "cg";
  spec.iterations = static_cast<std::uint64_t>(params.outer_iters) *
                    static_cast<std::uint64_t>(params.inner_steps);
  const std::int64_t matrix_bytes =
      static_cast<std::int64_t>(nnz) * 12;  // values + indices
  const std::int64_t vectors_bytes = 10 * 8 * params.na;
  const std::int64_t mem =
      (matrix_bytes + vectors_bytes) / nranks + params.base_mem_bytes;
  spec.image_bytes = [mem](mpi::RankId) { return mem; };
  spec.body = [sh](mpi::AppHandle h) { return cg_body(sh, h); };
  return spec;
}

}  // namespace gcr::apps
