// GroupSet: a partition of ranks into checkpoint groups.
//
// The unit of coordination in the paper: checkpoints are coordinated within
// a group; only messages crossing group boundaries are logged.
#pragma once

#include <string>
#include <vector>

#include "mpi/message.hpp"

namespace gcr::group {

class GroupSet {
 public:
  GroupSet() = default;

  /// Builds from explicit member lists; validates that the groups form a
  /// partition of 0..nranks-1 (aborts otherwise).
  GroupSet(int nranks, std::vector<std::vector<mpi::RankId>> groups);

  int nranks() const { return nranks_; }
  int num_groups() const { return static_cast<int>(groups_.size()); }

  const std::vector<mpi::RankId>& members(int group) const {
    return groups_[static_cast<std::size_t>(group)];
  }

  /// Group index of a rank.
  int group_of(mpi::RankId rank) const {
    return group_of_[static_cast<std::size_t>(rank)];
  }

  /// True if both ranks are in the same group (their traffic is NOT logged).
  bool same_group(mpi::RankId a, mpi::RankId b) const {
    return group_of(a) == group_of(b);
  }

  std::size_t largest_group_size() const;
  std::size_t smallest_group_size() const;

  /// Human-readable summary, e.g. "{0,4,8} {1,5} {2,6} ...".
  std::string to_string() const;

  bool operator==(const GroupSet& other) const {
    return nranks_ == other.nranks_ && groups_ == other.groups_;
  }

 private:
  int nranks_ = 0;
  std::vector<std::vector<mpi::RankId>> groups_;
  std::vector<int> group_of_;
};

}  // namespace gcr::group
