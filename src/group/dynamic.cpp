#include "group/dynamic.hpp"

#include <map>

#include "util/assert.hpp"

namespace gcr::group {

DynamicGrouper::DynamicGrouper(int nranks)
    : parent_(static_cast<std::size_t>(nranks)), groups_(nranks) {
  GCR_CHECK(nranks > 0);
  for (int r = 0; r < nranks; ++r) parent_[static_cast<std::size_t>(r)] = r;
}

int DynamicGrouper::find(int r) const {
  while (parent_[static_cast<std::size_t>(r)] != r) {
    // Path halving.
    parent_[static_cast<std::size_t>(r)] =
        parent_[static_cast<std::size_t>(parent_[static_cast<std::size_t>(r)])];
    r = parent_[static_cast<std::size_t>(r)];
  }
  return r;
}

void DynamicGrouper::on_message(mpi::RankId src, mpi::RankId dst) {
  const int a = find(src);
  const int b = find(dst);
  if (a == b) return;
  parent_[static_cast<std::size_t>(b)] = a;
  --groups_;
}

int DynamicGrouper::num_groups() const { return groups_; }

GroupSet DynamicGrouper::current() const {
  std::map<int, std::vector<mpi::RankId>> byroot;
  const int n = static_cast<int>(parent_.size());
  for (int r = 0; r < n; ++r) byroot[find(r)].push_back(r);
  std::vector<std::vector<mpi::RankId>> groups;
  groups.reserve(byroot.size());
  for (auto& [root, members] : byroot) groups.push_back(std::move(members));
  return GroupSet(n, std::move(groups));
}

DynamicReplayResult replay_dynamic(int nranks, const trace::Trace& trace) {
  DynamicGrouper grouper(nranks);
  std::int64_t collapse_at = -1;
  std::int64_t sends = 0;
  for (const trace::TraceRecord& rec : trace) {
    if (rec.kind != trace::EventKind::kSend) continue;
    ++sends;
    grouper.on_message(rec.rank, rec.peer);
    if (collapse_at < 0 && grouper.num_groups() == 1) collapse_at = sends;
  }
  return DynamicReplayResult{grouper.current(), collapse_at};
}

}  // namespace gcr::group
