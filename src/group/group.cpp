#include "group/group.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace gcr::group {

GroupSet::GroupSet(int nranks, std::vector<std::vector<mpi::RankId>> groups)
    : nranks_(nranks), groups_(std::move(groups)),
      group_of_(static_cast<std::size_t>(nranks), -1) {
  GCR_CHECK(nranks > 0);
  for (auto& g : groups_) std::sort(g.begin(), g.end());
  // Canonical group order: by smallest member.
  std::sort(groups_.begin(), groups_.end(),
            [](const auto& a, const auto& b) { return a.front() < b.front(); });
  int covered = 0;
  for (std::size_t gi = 0; gi < groups_.size(); ++gi) {
    GCR_CHECK_MSG(!groups_[gi].empty(), "empty group");
    for (mpi::RankId r : groups_[gi]) {
      GCR_CHECK_MSG(r >= 0 && r < nranks, "rank out of range in group");
      GCR_CHECK_MSG(group_of_[static_cast<std::size_t>(r)] == -1,
                    "rank appears in two groups");
      group_of_[static_cast<std::size_t>(r)] = static_cast<int>(gi);
      ++covered;
    }
  }
  GCR_CHECK_MSG(covered == nranks, "groups must cover every rank");
}

std::size_t GroupSet::largest_group_size() const {
  std::size_t best = 0;
  for (const auto& g : groups_) best = std::max(best, g.size());
  return best;
}

std::size_t GroupSet::smallest_group_size() const {
  std::size_t best = groups_.empty() ? 0 : groups_.front().size();
  for (const auto& g : groups_) best = std::min(best, g.size());
  return best;
}

std::string GroupSet::to_string() const {
  std::string out;
  for (const auto& g : groups_) {
    out += '{';
    for (std::size_t i = 0; i < g.size(); ++i) {
      if (i) out += ',';
      out += std::to_string(g[i]);
    }
    out += "} ";
  }
  if (!out.empty()) out.pop_back();
  return out;
}

}  // namespace gcr::group
