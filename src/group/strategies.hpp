// Canned grouping strategies used throughout the paper's evaluation
// (DESIGN.md §7; mode glossary in README.md):
//   NORM  — one global group (original LAM/MPI coordinated checkpoint)
//   GP1   — one process per group (uncoordinated + full message logging)
//   GPk   — k groups of sequential ranks (the "ad-hoc" GP4 baseline)
//   round-robin — rank r in group r % k (what Algorithm 2 discovers for
//                 HPL's row-major P×Q grids, Table 1)
#pragma once

#include "group/group.hpp"

namespace gcr::group {

/// One group containing every rank.
GroupSet make_norm(int nranks);

/// Every rank is its own group.
GroupSet make_gp1(int nranks);

/// k groups of contiguous ranks (sizes differ by at most one).
GroupSet make_sequential(int nranks, int k);

/// k groups, rank r assigned to group r % k.
GroupSet make_round_robin(int nranks, int k);

/// Groups of exactly `width` consecutive ranks (last may be smaller).
GroupSet make_blocks(int nranks, int width);

// Partition surgery for elastic regrouping (DESIGN.md §16). Both keep the
// relative order of untouched groups, so repeated operations compose
// deterministically.

/// Moves `rank` out of its group into a new singleton appended as the last
/// group. If `rank` is already a singleton, returns the partition unchanged.
GroupSet split_rank(const GroupSet& gs, mpi::RankId rank);

/// Merges singleton `rank` into group `target` (members stay sorted) and
/// drops the emptied singleton. Aborts if `rank` is not a singleton or
/// `target` is its own group.
GroupSet merge_rank(const GroupSet& gs, mpi::RankId rank, int target);

}  // namespace gcr::group
