#include "group/strategies.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace gcr::group {

GroupSet make_norm(int nranks) {
  std::vector<mpi::RankId> all;
  all.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) all.push_back(r);
  return GroupSet(nranks, {std::move(all)});
}

GroupSet make_gp1(int nranks) {
  std::vector<std::vector<mpi::RankId>> groups;
  groups.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) groups.push_back({r});
  return GroupSet(nranks, std::move(groups));
}

GroupSet make_sequential(int nranks, int k) {
  GCR_CHECK(k > 0 && k <= nranks);
  std::vector<std::vector<mpi::RankId>> groups(static_cast<std::size_t>(k));
  // Distribute sizes as evenly as possible: first (nranks % k) groups get
  // one extra member.
  const int base = nranks / k;
  const int extra = nranks % k;
  int next = 0;
  for (int g = 0; g < k; ++g) {
    const int size = base + (g < extra ? 1 : 0);
    for (int i = 0; i < size; ++i) {
      groups[static_cast<std::size_t>(g)].push_back(next++);
    }
  }
  GCR_CHECK(next == nranks);
  return GroupSet(nranks, std::move(groups));
}

GroupSet make_round_robin(int nranks, int k) {
  GCR_CHECK(k > 0 && k <= nranks);
  std::vector<std::vector<mpi::RankId>> groups(static_cast<std::size_t>(k));
  for (int r = 0; r < nranks; ++r) {
    groups[static_cast<std::size_t>(r % k)].push_back(r);
  }
  return GroupSet(nranks, std::move(groups));
}

GroupSet split_rank(const GroupSet& gs, mpi::RankId rank) {
  const int from = gs.group_of(rank);
  if (gs.members(from).size() == 1) return gs;
  std::vector<std::vector<mpi::RankId>> groups;
  groups.reserve(static_cast<std::size_t>(gs.num_groups()) + 1);
  for (int g = 0; g < gs.num_groups(); ++g) {
    std::vector<mpi::RankId> m = gs.members(g);
    if (g == from) {
      m.erase(std::remove(m.begin(), m.end(), rank), m.end());
    }
    groups.push_back(std::move(m));
  }
  groups.push_back({rank});
  return GroupSet(gs.nranks(), std::move(groups));
}

GroupSet merge_rank(const GroupSet& gs, mpi::RankId rank, int target) {
  const int from = gs.group_of(rank);
  GCR_CHECK_MSG(gs.members(from).size() == 1,
                "merge_rank: rank is not a singleton");
  GCR_CHECK(target >= 0 && target < gs.num_groups() && target != from);
  std::vector<std::vector<mpi::RankId>> groups;
  groups.reserve(static_cast<std::size_t>(gs.num_groups()) - 1);
  for (int g = 0; g < gs.num_groups(); ++g) {
    if (g == from) continue;
    std::vector<mpi::RankId> m = gs.members(g);
    if (g == target) {
      m.insert(std::upper_bound(m.begin(), m.end(), rank), rank);
    }
    groups.push_back(std::move(m));
  }
  return GroupSet(gs.nranks(), std::move(groups));
}

GroupSet make_blocks(int nranks, int width) {
  GCR_CHECK(width > 0);
  std::vector<std::vector<mpi::RankId>> groups;
  for (int start = 0; start < nranks; start += width) {
    std::vector<mpi::RankId> g;
    for (int r = start; r < nranks && r < start + width; ++r) g.push_back(r);
    groups.push_back(std::move(g));
  }
  return GroupSet(nranks, std::move(groups));
}

}  // namespace gcr::group
