#include "group/groupfile.hpp"

#include <fstream>
#include <sstream>
#include <vector>

#include "util/log.hpp"

namespace gcr::group {

void write_groupfile(std::ostream& os, const GroupSet& groups) {
  os << "# gcr group definition v1\n";
  os << "nranks " << groups.nranks() << '\n';
  for (int g = 0; g < groups.num_groups(); ++g) {
    os << "group";
    for (mpi::RankId r : groups.members(g)) os << ' ' << r;
    os << '\n';
  }
}

std::optional<GroupSet> read_groupfile(std::istream& is) {
  int nranks = -1;
  std::vector<std::vector<mpi::RankId>> groups;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string keyword;
    ls >> keyword;
    if (keyword == "nranks") {
      if (!(ls >> nranks) || nranks <= 0) {
        GCR_WARN("groupfile: bad nranks line: %s", line.c_str());
        return std::nullopt;
      }
    } else if (keyword == "group") {
      std::vector<mpi::RankId> members;
      mpi::RankId r;
      while (ls >> r) members.push_back(r);
      if (members.empty()) {
        GCR_WARN("groupfile: empty group line");
        return std::nullopt;
      }
      groups.push_back(std::move(members));
    } else {
      GCR_WARN("groupfile: unknown keyword: %s", keyword.c_str());
      return std::nullopt;
    }
  }
  if (nranks <= 0 || groups.empty()) return std::nullopt;
  // Validate coverage before constructing (GroupSet aborts on violations).
  std::vector<int> seen(static_cast<std::size_t>(nranks), 0);
  for (const auto& g : groups) {
    for (mpi::RankId r : g) {
      if (r < 0 || r >= nranks || seen[static_cast<std::size_t>(r)]++) {
        GCR_WARN("groupfile: invalid or duplicate rank %d", r);
        return std::nullopt;
      }
    }
  }
  for (int c : seen) {
    if (!c) {
      GCR_WARN("groupfile: not all ranks covered");
      return std::nullopt;
    }
  }
  return GroupSet(nranks, std::move(groups));
}

bool save_groupfile(const std::string& path, const GroupSet& groups) {
  std::ofstream os(path);
  if (!os) return false;
  write_groupfile(os, groups);
  return static_cast<bool>(os);
}

std::optional<GroupSet> load_groupfile(const std::string& path) {
  std::ifstream is(path);
  if (!is) return std::nullopt;
  return read_groupfile(is);
}

}  // namespace gcr::group
