// Group definition files (DESIGN.md §7).
//
// The workflow in the paper (Figure 4): a profiling run produces a trace,
// the analyzer produces a *group definition file*, and subsequent production
// runs read it at process start ("Read group definitions" in Algorithm 1).
//
// Format (text):
//   # comments
//   nranks <n>
//   group <rank> <rank> ...
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "group/group.hpp"

namespace gcr::group {

void write_groupfile(std::ostream& os, const GroupSet& groups);

/// Returns nullopt on malformed input.
std::optional<GroupSet> read_groupfile(std::istream& is);

bool save_groupfile(const std::string& path, const GroupSet& groups);
std::optional<GroupSet> load_groupfile(const std::string& path);

}  // namespace gcr::group
