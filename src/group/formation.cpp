#include "group/formation.hpp"

#include <cmath>
#include <unordered_map>

#include "util/assert.hpp"

namespace gcr::group {

int default_max_group_size(int nranks) {
  GCR_CHECK(nranks > 0);
  const int g = static_cast<int>(std::sqrt(static_cast<double>(nranks)));
  return g < 2 ? 2 : g;
}

GroupSet form_groups(int nranks, const std::vector<trace::PairVolume>& pairs,
                     const FormationOptions& options) {
  GCR_CHECK(nranks > 0);
  const int max_size = options.max_group_size > 0
                           ? options.max_group_size
                           : default_max_group_size(nranks);
  GCR_CHECK_MSG(max_size >= 1, "max group size must be positive");

  // Output list M, with group_index[rank] implementing find(P, M).
  // Merged-away entries are tombstoned (empty).
  std::vector<std::vector<mpi::RankId>> groups;
  std::vector<int> group_index(static_cast<std::size_t>(nranks), -1);

  auto group_size = [&](int gi) {
    return static_cast<int>(groups[static_cast<std::size_t>(gi)].size());
  };
  auto add_rank = [&](int gi, mpi::RankId r) {
    groups[static_cast<std::size_t>(gi)].push_back(r);
    group_index[static_cast<std::size_t>(r)] = gi;
  };

  for (const trace::PairVolume& pv : pairs) {
    GCR_CHECK(pv.a >= 0 && pv.a < nranks && pv.b >= 0 && pv.b < nranks);
    const int g1 = group_index[static_cast<std::size_t>(pv.a)];
    const int g2 = group_index[static_cast<std::size_t>(pv.b)];
    if (g1 == -1 && g2 == -1) {
      // New two-process group (only if a pair fits at all).
      if (max_size >= 2) {
        groups.emplace_back();
        add_rank(static_cast<int>(groups.size()) - 1, pv.a);
        add_rank(static_cast<int>(groups.size()) - 1, pv.b);
      }
    } else if (g2 == -1) {
      if (group_size(g1) + 1 <= max_size) add_rank(g1, pv.b);
    } else if (g1 == -1) {
      if (group_size(g2) + 1 <= max_size) add_rank(g2, pv.a);
    } else if (g1 == g2) {
      // Both already together: nothing to do (volumes just accumulate).
    } else if (group_size(g1) + group_size(g2) <= max_size) {
      // Merge the two groups (R1 <- R1 + R2 + Li; delete R2).
      for (mpi::RankId r : groups[static_cast<std::size_t>(g2)]) {
        add_rank(g1, r);
      }
      groups[static_cast<std::size_t>(g2)].clear();  // tombstone
    }
  }

  // Ungrouped ranks (no qualifying traffic) stay as singleton groups.
  std::vector<std::vector<mpi::RankId>> result;
  for (auto& g : groups) {
    if (!g.empty()) result.push_back(std::move(g));
  }
  for (mpi::RankId r = 0; r < nranks; ++r) {
    if (group_index[static_cast<std::size_t>(r)] == -1) {
      result.push_back({r});
    }
  }
  return GroupSet(nranks, std::move(result));
}

GroupSet form_groups_from_trace(int nranks, const trace::Trace& trace,
                                const FormationOptions& options) {
  return form_groups(nranks, trace::aggregate_pairs(trace), options);
}

}  // namespace gcr::group
