// Algorithm 2: trace-assisted group formation (DESIGN.md §7).
//
// Input: aggregated pair volumes (trace/analysis.hpp), sorted descending by
// size then count. Each pair is merged into the output group list under a
// maximum group size G (default ⌊√n⌋). Ranks that never communicate stay in
// singleton groups (the paper: "unrelated groups without any message
// transfers should not be merged").
#pragma once

#include <vector>

#include "group/group.hpp"
#include "trace/analysis.hpp"

namespace gcr::group {

struct FormationOptions {
  /// Maximum group size G; 0 means the paper's default ⌊√nranks⌋.
  int max_group_size = 0;
};

/// The paper's default bound: ⌊√n⌋, but at least 2 so pairs can form.
int default_max_group_size(int nranks);

/// Runs Algorithm 2 on pre-aggregated pair volumes (must already be sorted
/// as produced by trace::aggregate_pairs). Ranks not covered by any tuple
/// become singleton groups.
GroupSet form_groups(int nranks, const std::vector<trace::PairVolume>& pairs,
                     const FormationOptions& options = {});

/// Convenience: aggregate a raw trace, then form groups.
GroupSet form_groups_from_trace(int nranks, const trace::Trace& trace,
                                const FormationOptions& options = {});

}  // namespace gcr::group
