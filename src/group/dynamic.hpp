// Gopalan–Nagarajan dynamic dependent process groups (related work, paper
// §6; DESIGN.md §7): processes/groups are merged whenever one sends a
// message to the other, with NO size bound. The paper's criticism — "all
// processes may eventually form a single group when there is a sequence of
// messages linking up all the processes" — is demonstrated by the
// ablation_dynamic_grouping bench using this implementation.
#pragma once

#include <vector>

#include "group/group.hpp"
#include "trace/record.hpp"

namespace gcr::group {

/// Online union-find merging on communication events.
class DynamicGrouper {
 public:
  explicit DynamicGrouper(int nranks);

  /// Observes one message; merges the endpoint groups.
  void on_message(mpi::RankId src, mpi::RankId dst);

  /// Current number of distinct groups.
  int num_groups() const;

  /// Snapshot of the current grouping.
  GroupSet current() const;

 private:
  int find(int r) const;

  mutable std::vector<int> parent_;
  int groups_;
};

/// Replays a trace's sends through the dynamic grouper and returns the final
/// grouping plus the number of messages after which everything collapsed
/// into one group (-1 if it never fully collapsed).
struct DynamicReplayResult {
  GroupSet final_groups;
  std::int64_t messages_until_collapse = -1;
};
DynamicReplayResult replay_dynamic(int nranks, const trace::Trace& trace);

}  // namespace gcr::group
