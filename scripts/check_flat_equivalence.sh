#!/usr/bin/env sh
# Flat-model regression gate: the default (kFlat) topology must reproduce
# the pre-topology network model BYTE-identically — same arithmetic, same
# engine event sequence, so the historical figure outputs cannot drift.
#
# Compares fig05/fig13 campaign output at a fixed small sweep against the
# committed goldens (tests/golden/*.txt, captured from the pre-topology
# tree). Registered as a ctest target when GCR_BUILD_BENCH=ON.
#
# Usage: check_flat_equivalence.sh <fig05-binary> <fig13-binary> <golden-dir>
set -eu

fig05=$1
fig13=$2
golden=$3

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

"$fig05" --procs 16,32 --reps 2 --jobs 4 > "$tmp/fig05.txt"
"$fig13" --procs 16,32 --reps 2 --jobs 4 > "$tmp/fig13.txt"

diff -u "$golden/fig05_procs16_32_reps2.txt" "$tmp/fig05.txt"
diff -u "$golden/fig13_procs16_32_reps2.txt" "$tmp/fig13.txt"
echo "flat-equivalence: BYTE-IDENTICAL"
