#!/usr/bin/env sh
# Shard-count regression gate: the sharded engine (sim/shard.hpp) must be
# BIT-deterministic across shard counts — `--shards 1` is the literal
# single-threaded engine (so it must match the committed goldens exactly),
# and `--shards 2` / `--shards 4` drive the same runs through the windowed
# multi-thread coordinator and must reproduce the very same bytes.
#
# Compares fig05/fig13 campaign output at the flat-equivalence sweep for
# S in {1, 2, 4} against tests/golden/*.txt and against each other.
# Registered as a ctest target when GCR_BUILD_BENCH=ON.
#
# Usage: check_shard_equivalence.sh <fig05-binary> <fig13-binary> <golden-dir>
set -eu

fig05=$1
fig13=$2
golden=$3

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

for s in 1 2 4; do
  "$fig05" --procs 16,32 --reps 2 --jobs 4 --shards "$s" > "$tmp/fig05_s$s.txt"
  "$fig13" --procs 16,32 --reps 2 --jobs 4 --shards "$s" > "$tmp/fig13_s$s.txt"
done

# Every shard count must reproduce the committed single-threaded goldens.
for s in 1 2 4; do
  diff -u "$golden/fig05_procs16_32_reps2.txt" "$tmp/fig05_s$s.txt"
  diff -u "$golden/fig13_procs16_32_reps2.txt" "$tmp/fig13_s$s.txt"
done

echo "shard-equivalence: BYTE-IDENTICAL for shards 1, 2, 4"
