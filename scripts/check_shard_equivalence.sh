#!/usr/bin/env sh
# Shard-count regression gate: the sharded engine (sim/shard.hpp) must be
# BIT-deterministic across shard counts — `--shards 1` is the literal
# single-threaded engine (so it must match the committed goldens exactly),
# and `--shards 2` / `--shards 4` drive the same runs through the windowed
# multi-thread coordinator and must reproduce the very same bytes.
#
# Four campaigns cover the widened residency gate (DESIGN.md §15.3):
#   fig05 — group protocol, flat fabric, direct local storage (resident)
#   fig13 — VCL + remote storage (legitimately DENIED: demoted to one
#           shard, so matching the golden proves the demotion is harmless)
#   scale — routed fabrics (fat-tree adaptive, dragonfly) resident
#   tiers — burst-buffer/drain storage resident (+ mid-run group failure;
#           its direct-remote cells are denied and demoted)
#
# Registered as a ctest target when GCR_BUILD_BENCH=ON.
#
# Usage: check_shard_equivalence.sh <fig05-binary> <fig13-binary> \
#            <scale-binary> <tiers-binary> <golden-dir>
set -eu

fig05=$1
fig13=$2
scale=$3
tiers=$4
golden=$5

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

for s in 1 2 4; do
  "$fig05" --procs 16,32 --reps 2 --jobs 4 --shards "$s" > "$tmp/fig05_s$s.txt"
  "$fig13" --procs 16,32 --reps 2 --jobs 4 --shards "$s" > "$tmp/fig13_s$s.txt"
  "$scale" --procs 16,32 --topologies fattree,dragonfly --modes NORM,GP \
      --reps 2 --jobs 4 --shards "$s" > "$tmp/scale_s$s.txt"
  "$tiers" --procs 16 --reps 2 --jobs 4 --shards "$s" \
      > "$tmp/tiers_s$s.txt" 2>/dev/null  # demotion warnings are expected
done

# Every shard count must reproduce the committed single-threaded goldens.
for s in 1 2 4; do
  diff -u "$golden/fig05_procs16_32_reps2.txt" "$tmp/fig05_s$s.txt"
  diff -u "$golden/fig13_procs16_32_reps2.txt" "$tmp/fig13_s$s.txt"
  diff -u "$golden/scale_extrapolation_procs16_32_reps2.txt" "$tmp/scale_s$s.txt"
  diff -u "$golden/ablation_tiers_procs16_reps2.txt" "$tmp/tiers_s$s.txt"
done

echo "shard-equivalence: BYTE-IDENTICAL for shards 1, 2, 4"
