#!/usr/bin/env python3
"""Markdown link, anchor, and DESIGN.md-section checker.

Fails (exit 1) on:
  * a relative markdown link whose target file does not exist;
  * a link anchor (``file.md#anchor`` or ``#anchor``) with no matching
    heading in the target file (GitHub slug rules: lowercase, spaces to
    dashes, punctuation dropped);
  * a ``DESIGN.md §N[.M]`` reference — in the docs OR anywhere under
    src/ bench/ tests/ examples/ — naming a section that DESIGN.md does
    not define.

Run from anywhere: paths resolve relative to the repository root. CI and
scripts/check.sh run this on every push, so a renumbered section or a
renamed doc cannot leave dangling references behind.
"""

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

DOC_FILES = [ROOT / "README.md", ROOT / "DESIGN.md",
             *sorted((ROOT / "docs").glob("*.md"))]
SOURCE_DIRS = ["src", "bench", "tests", "examples", "scripts"]

LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*)$")
SECTION_REF_RE = re.compile(r"DESIGN\.md\s+§([0-9]+(?:\.[0-9]+)?)")
SECTION_DEF_RE = re.compile(r"^#{2,3}\s+([0-9]+(?:\.[0-9]+)?)[.\s]")
FENCE_RE = re.compile(r"^(```|~~~)")


def github_slug(heading: str) -> str:
    """GitHub's anchor slug: strip markup-ish punctuation, dash the spaces."""
    text = re.sub(r"[`*_]", "", heading.strip()).lower()
    text = re.sub(r"[^\w\- ]", "", text, flags=re.UNICODE)
    return text.replace(" ", "-")


def md_lines(path: Path):
    """Document lines with fenced code blocks blanked (links/refs inside
    code samples are illustrative, not contracts)."""
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            yield ""
            continue
        yield "" if in_fence else line


def anchors_of(path: Path) -> set:
    out = set()
    for line in md_lines(path):
        m = HEADING_RE.match(line)
        if m:
            out.add(github_slug(m.group(2)))
    return out


def design_sections() -> set:
    out = set()
    for line in (ROOT / "DESIGN.md").read_text(encoding="utf-8").splitlines():
        m = SECTION_DEF_RE.match(line)
        if m:
            out.add(m.group(1))
    return out


def check_links(errors: list) -> None:
    anchor_cache = {}
    for doc in DOC_FILES:
        for lineno, line in enumerate(md_lines(doc), 1):
            for target in LINK_RE.findall(line):
                if target.startswith(("http://", "https://", "mailto:")):
                    continue
                path_part, _, anchor = target.partition("#")
                dest = (doc.parent / path_part).resolve() if path_part else doc
                if not dest.exists():
                    errors.append(f"{doc.relative_to(ROOT)}:{lineno}: "
                                  f"dangling link target '{target}'")
                    continue
                if anchor and dest.suffix == ".md":
                    if dest not in anchor_cache:
                        anchor_cache[dest] = anchors_of(dest)
                    if anchor not in anchor_cache[dest]:
                        errors.append(f"{doc.relative_to(ROOT)}:{lineno}: "
                                      f"dangling anchor '#{anchor}' "
                                      f"(no such heading in {dest.name})")


def check_section_refs(errors: list) -> None:
    sections = design_sections()
    files = list(DOC_FILES)
    for d in SOURCE_DIRS:
        files += sorted((ROOT / d).rglob("*"))
    for f in files:
        if not f.is_file() or f.suffix in {".png", ".pdf"}:
            continue
        try:
            text = f.read_text(encoding="utf-8")
        except (UnicodeDecodeError, OSError):
            continue
        for lineno, line in enumerate(text.splitlines(), 1):
            for sec in SECTION_REF_RE.findall(line):
                if sec not in sections:
                    errors.append(f"{f.relative_to(ROOT)}:{lineno}: "
                                  f"DESIGN.md §{sec} does not exist")


def main() -> int:
    errors = []
    check_links(errors)
    check_section_refs(errors)
    for e in errors:
        print(f"check_docs: {e}", file=sys.stderr)
    if errors:
        print(f"check_docs: {len(errors)} error(s)", file=sys.stderr)
        return 1
    ndocs = len(DOC_FILES)
    print(f"check_docs: OK ({ndocs} docs, "
          f"{len(design_sections())} DESIGN.md sections)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
