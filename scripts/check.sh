#!/usr/bin/env sh
# Tier-1 verification: configure, build, and run the full test suite.
# Mirrors ROADMAP.md's verify line exactly; CI runs the same steps.
set -eu
cd "$(dirname "$0")/.."
# Documentation gate: dangling markdown links/anchors and stale
# `DESIGN.md §` references fail the build (skipped if python3 is absent).
if command -v python3 >/dev/null 2>&1; then
  python3 scripts/check_docs.py
else
  echo "check.sh: python3 not found, skipping scripts/check_docs.py" >&2
fi
# Bench ON so the golden regression gates (ctest: flat_equivalence and
# shard_equivalence; scripts/check_flat_equivalence.sh and
# scripts/check_shard_equivalence.sh) build and run with the suite.
cmake -B build -S . -DGCR_BUILD_BENCH=ON && cmake --build build -j && cd build && ctest --output-on-failure -j
# Explicit gates on the randomized torture harnesses (also part of the
# ctest run above; CI additionally runs them under ASan+UBSan).
# fault_torture_test carries both the fault-only seeds and the churn
# torture (drains / reclaims / rolling restarts layered on faults).
./fault_torture_test
./topology_torture_test
# Elastic-service gates (DESIGN.md §16): churn semantics (drain != failure,
# checkpoint-on-warning, rolling coverage, rejoin + merge) and the service
# app's SLO/latency accounting incl. its shard-residency equivalence.
./churn_test
./service_app_test
# Explicit shard-determinism gate (also the shard_equivalence ctest): all
# four campaigns must match the committed goldens byte-for-byte at
# --shards 1, 2, and 4 — with the rank layer shard-resident, this is the
# primary equivalence proof for DESIGN.md §15.3.
sh ../scripts/check_shard_equivalence.sh \
  bench/fig05_execution_time bench/fig13_scale_vcl \
  bench/fig_scale_extrapolation bench/ablation_storage_tiers \
  ../tests/golden
