#!/usr/bin/env sh
# Tier-1 verification: configure, build, and run the full test suite.
# Mirrors ROADMAP.md's verify line exactly; CI runs the same steps.
set -eu
cd "$(dirname "$0")/.."
# Documentation gate: dangling markdown links/anchors and stale
# `DESIGN.md §` references fail the build (skipped if python3 is absent).
if command -v python3 >/dev/null 2>&1; then
  python3 scripts/check_docs.py
else
  echo "check.sh: python3 not found, skipping scripts/check_docs.py" >&2
fi
cmake -B build -S . && cmake --build build -j && cd build && ctest --output-on-failure -j
# Explicit gate on the randomized fault-torture harness (also part of the
# ctest run above; CI additionally runs it seed-by-seed under ASan+UBSan).
./fault_torture_test
