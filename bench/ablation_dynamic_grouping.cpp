// Ablation A2: Gopalan-Nagarajan dynamic dependent process groups (paper
// §6). Merging on every communication collapses to ONE global group as soon
// as a chain of messages links all processes — losing every benefit of
// grouping. Algorithm 2's bounded merge keeps groups small on the same
// traces.
#include "apps/cg.hpp"
#include "apps/hpl.hpp"
#include "apps/simple.hpp"
#include "bench_common.hpp"
#include "group/dynamic.hpp"

using namespace gcr;

namespace {

struct Workload {
  const char* name;
  exp::AppFactory app;
};

std::vector<Workload> workloads() {
  std::vector<Workload> out;
  out.push_back({"hpl", [](int nr) { return apps::make_hpl(nr); }});
  out.push_back({"cg", [](int nr) {
                   apps::CgParams p;
                   p.outer_iters = 10;
                   return apps::make_cg(nr, p);
                 }});
  out.push_back({"stencil-blocks", [](int nr) {
                   apps::Stencil1dParams p;
                   p.cluster_width = 4;
                   p.iterations = 20;
                   return apps::make_stencil1d(nr, p);
                 }});
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const int n = static_cast<int>(cli.get_int("procs", 32, "process count"));
  const bool csv = cli.get_bool("csv", false, "emit CSV");
  const int jobs = cli.get_jobs();
  cli.finish();

  const std::vector<Workload> loads = workloads();

  exp::Scenario sc;
  sc.name = "dynamic-grouping";
  sc.axes = {exp::SweepAxis::indices("workload", loads.size())};
  sc.reps = 1;
  sc.job = [n, &loads](const exp::SweepPoint& point, exp::Collector& col) {
    const Workload& w = loads[static_cast<std::size_t>(
        point.get_int("workload"))];
    const trace::Trace trace = exp::profile_app(w.app, n);
    const group::DynamicReplayResult dyn = group::replay_dynamic(n, trace);
    const group::GroupSet algo2 = group::form_groups_from_trace(n, trace);
    col.add("dynamic_groups", dyn.final_groups.num_groups());
    col.add("collapse_msgs",
            static_cast<double>(dyn.messages_until_collapse));
    col.add("algo2_groups", algo2.num_groups());
    col.add("algo2_largest", static_cast<double>(algo2.largest_group_size()));
  };
  const exp::CampaignResult camp = exp::run_campaign(sc, {jobs});

  Table t({"workload", "dynamic_groups", "collapse_after_msgs",
           "algo2_groups", "algo2_largest"});
  for (std::size_t i = 0; i < loads.size(); ++i) {
    auto stat = [&](const char* metric) {
      return static_cast<std::int64_t>(camp.stat(i, metric).mean());
    };
    t.add_row({loads[i].name, Table::num(stat("dynamic_groups")),
               Table::num(stat("collapse_msgs")),
               Table::num(stat("algo2_groups")),
               Table::num(stat("algo2_largest"))});
  }
  bench::emit(
      "Ablation A2 - dynamic merging vs Algorithm 2. Expect: dynamic "
      "grouping collapses to 1 group on HPL/CG (global chains); Algorithm 2 "
      "keeps bounded groups; only truly disjoint traffic (stencil blocks) "
      "stays partitioned under dynamic merging",
      t, csv, camp.unfinished_runs);
  return 0;
}
