// Ablation A2: Gopalan-Nagarajan dynamic dependent process groups (paper
// §6). Merging on every communication collapses to ONE global group as soon
// as a chain of messages links all processes — losing every benefit of
// grouping. Algorithm 2's bounded merge keeps groups small on the same
// traces.
#include "apps/cg.hpp"
#include "apps/hpl.hpp"
#include "apps/simple.hpp"
#include "bench_common.hpp"
#include "group/dynamic.hpp"
#include "group/formation.hpp"

using namespace gcr;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const int n = static_cast<int>(cli.get_int("procs", 32, "process count"));
  const bool csv = cli.get_bool("csv", false, "emit CSV");
  cli.finish();

  struct Workload {
    const char* name;
    exp::AppFactory app;
  };
  std::vector<Workload> workloads;
  workloads.push_back({"hpl", [](int nr) { return apps::make_hpl(nr); }});
  workloads.push_back({"cg", [](int nr) {
                         apps::CgParams p;
                         p.outer_iters = 10;
                         return apps::make_cg(nr, p);
                       }});
  workloads.push_back({"stencil-blocks", [](int nr) {
                         apps::Stencil1dParams p;
                         p.cluster_width = 4;
                         p.iterations = 20;
                         return apps::make_stencil1d(nr, p);
                       }});

  Table t({"workload", "dynamic_groups", "collapse_after_msgs",
           "algo2_groups", "algo2_largest"});
  for (const Workload& w : workloads) {
    const trace::Trace trace = exp::profile_app(w.app, n);
    const group::DynamicReplayResult dyn = group::replay_dynamic(n, trace);
    const group::GroupSet algo2 = group::form_groups_from_trace(n, trace);
    t.add_row({w.name,
               Table::num(static_cast<std::int64_t>(dyn.final_groups.num_groups())),
               Table::num(dyn.messages_until_collapse),
               Table::num(static_cast<std::int64_t>(algo2.num_groups())),
               Table::num(static_cast<std::int64_t>(algo2.largest_group_size()))});
  }
  bench::emit(
      "Ablation A2 - dynamic merging vs Algorithm 2. Expect: dynamic "
      "grouping collapses to 1 group on HPL/CG (global chains); Algorithm 2 "
      "keeps bounded groups; only truly disjoint traffic (stencil blocks) "
      "stays partitioned under dynamic merging",
      t, csv);
  return 0;
}
