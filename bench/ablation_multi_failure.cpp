// Ablation A5: protocol comparison under CONCURRENT failures — the regime
// the paper's evaluation (single isolated group failures) never reaches.
//
// Sweeps the pluggable fault models (sim/faults.hpp) against NORM/GP/GP1:
//   exp      independent per-node exponential faults,
//   weibull  bursty hazard (shape < 1, as measured in real HPC traces),
//   burst    spatially correlated multi-node bursts (several groups down at
//            once; recoveries queue and exchanges defer),
//   trace    replay of an explicit schedule — by default a built-in
//            schedule with same-instant and mid-recovery faults; pass
//            --trace FILE to replay a real failure log ("time_s node"
//            lines).
//
// Expect: GP's damage is one group per fault, so it rides out overlapping
// recoveries (some arrivals are even absorbed by an already-down group);
// NORM restarts everything on every fault and thrashes when faults cluster.
// The `ovl` columns count overlap events: arrivals absorbed by a down group
// plus restores aborted by a re-failure.
#include "apps/hpl.hpp"
#include "bench_common.hpp"
#include "sim/faults.hpp"

using namespace gcr;
using bench::Mode;

namespace {

/// Fault-kind list from a comma-separated --fault-models value.
std::vector<sim::FaultModelKind> parse_kinds(const std::string& csv) {
  std::vector<sim::FaultModelKind> kinds;
  std::size_t start = 0;
  while (start <= csv.size()) {
    std::size_t end = csv.find(',', start);
    if (end == std::string::npos) end = csv.size();
    const std::string name = csv.substr(start, end - start);
    bool found = false;
    for (sim::FaultModelKind k :
         {sim::FaultModelKind::kExponential, sim::FaultModelKind::kWeibull,
          sim::FaultModelKind::kBurst, sim::FaultModelKind::kTrace}) {
      if (name == sim::fault_model_name(k)) {
        kinds.push_back(k);
        found = true;
      }
    }
    GCR_CHECK_MSG(found, ("unknown fault model: " + name).c_str());
    start = end + 1;
  }
  return kinds;
}

/// Built-in trace: two same-instant pair failures, a fault landing inside
/// the previous recovery window, and a late isolated fault.
std::vector<sim::FaultEvent> demo_schedule(int nranks) {
  const int q = nranks / 4;
  return {{60.0, 0},       {60.0, 2 * q},  {61.0, q},
          {130.0, 0},      {130.5, 1},     {200.0, 3 * q}};
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const int n = static_cast<int>(cli.get_int("procs", 32, "process count"));
  const double interval =
      cli.get_double("interval", 30.0, "ckpt period (s)");
  const double mtbf =
      cli.get_double("mtbf", 2000.0, "per-node MTBF (s; exp/weibull)");
  const double shape =
      cli.get_double("shape", 0.7, "weibull shape (<1 = bursty hazard)");
  const double burst_mtbf =
      cli.get_double("burst-mtbf", 120.0, "mean time between bursts (s)");
  const int burst_max = static_cast<int>(
      cli.get_int("burst-max", 4, "max adjacent nodes per burst"));
  const double burst_spread =
      cli.get_double("burst-spread", 0.25, "burst kill window (s)");
  const std::string trace_path = cli.get_string(
      "trace", "", "fault trace file for the trace model (default: built-in)");
  const std::vector<sim::FaultModelKind> kinds = parse_kinds(cli.get_string(
      "fault-models", "exp,weibull,burst,trace", "models to sweep"));
  const int reps = cli.get_reps(3);
  const bool csv = cli.get_bool("csv", false, "emit CSV");
  const int jobs = cli.get_jobs();
  cli.finish();

  apps::HplParams hpl;
  exp::AppFactory app = [hpl](int nr) { return apps::make_hpl(nr, hpl); };
  auto cache = std::make_shared<bench::GroupCache>(app, hpl.grid_rows);
  const std::vector<Mode> modes{Mode::kGp, Mode::kGp1, Mode::kNorm};

  sim::FaultModelParams base;
  base.mtbf_s = mtbf;
  base.weibull_shape = shape;
  base.burst_mtbf_s = burst_mtbf;
  base.burst_max_nodes = burst_max;
  base.burst_spread_s = burst_spread;
  if (!trace_path.empty()) {
    base.trace_path = trace_path;
  } else {
    base.schedule = demo_schedule(n);
  }

  exp::Scenario sc;
  sc.name = "hpl/multi-failure";
  sc.axes = {exp::fault_kind_axis(kinds), bench::mode_axis(modes)};
  sc.reps = reps;
  sc.config = [n, app, cache, interval, base](const exp::SweepPoint& point) {
    exp::ExperimentConfig cfg;
    cfg.app = app;
    cfg.nranks = n;
    cfg.seed = point.seed;
    cfg.groups = cache->get(bench::mode_at(point), n);
    cfg.checkpoints = true;
    cfg.schedule.first_at_s = interval;
    cfg.schedule.interval_s = interval;
    cfg.schedule.round_spread_s = 0.4;
    cfg.fault_model = base;
    cfg.fault_model.kind = exp::fault_kind_at(point);
    return cfg;
  };
  sc.collect = [](const exp::SweepPoint&, const exp::ExperimentResult& res,
                  exp::Collector& col) {
    col.add("exec", res.exec_time_s);
    col.add("fails", res.failures_injected);
    col.add("overlap", res.failures_absorbed + res.recoveries_aborted);
  };
  const exp::CampaignResult camp = exp::run_campaign(sc, {jobs});
  auto stat = [&](std::size_t ki, Mode m, const char* metric, int decimals) {
    return bench::cell_mean(
        camp.stat(sc.cell_index({ki, bench::mode_index(modes, m)}), metric),
        decimals);
  };

  Table t({"model", "GP_exec_s", "GP_fails", "GP_ovl", "GP1_exec_s",
           "GP1_fails", "GP1_ovl", "NORM_exec_s", "NORM_fails", "NORM_ovl"});
  for (std::size_t k = 0; k < kinds.size(); ++k) {
    t.add_row({sim::fault_model_name(kinds[k]),
               stat(k, Mode::kGp, "exec", 1), stat(k, Mode::kGp, "fails", 1),
               stat(k, Mode::kGp, "overlap", 1),
               stat(k, Mode::kGp1, "exec", 1), stat(k, Mode::kGp1, "fails", 1),
               stat(k, Mode::kGp1, "overlap", 1),
               stat(k, Mode::kNorm, "exec", 1),
               stat(k, Mode::kNorm, "fails", 1),
               stat(k, Mode::kNorm, "overlap", 1)});
  }
  bench::emit(
      "Ablation A5 - time-to-completion under concurrent failures "
      "(exp/weibull/burst/trace fault models, HPL). Expect: GP degrades "
      "gracefully when faults overlap (per-group damage, queued "
      "recoveries); NORM restarts the world on every fault",
      t, csv, camp.unfinished_runs);
  return 0;
}
