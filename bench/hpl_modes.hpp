// Shared scenario for the paper's HPL experiments (Figures 5-9): one
// checkpoint at t=60 s, optional immediate whole-application restart after
// the run (paper §5.1's measurement protocol), swept over process counts
// and the four grouping modes, averaged over seeds.
#pragma once

#include "apps/hpl.hpp"
#include "bench_common.hpp"

namespace gcr::bench {

struct HplSweepOptions {
  std::vector<std::int64_t> procs{16, 32, 48, 64, 80, 96, 112, 128};
  std::vector<Mode> modes{Mode::kGp, Mode::kGp1, Mode::kGp4, Mode::kNorm};
  int reps = 5;
  double ckpt_at_s = 60.0;
  double round_spread_s = 0.4;  ///< mpirun per-group propagation window
  bool restart_after_finish = true;
  int shards = 1;  ///< engine shards per simulation (Cli::get_shards)
  /// Injected group failures (default none — the paper's figures are
  /// failure-free). CI's shard-TSan e2e uses this to drive kill/restore
  /// across the resident-shard edge.
  std::vector<exp::FailurePlan> failures;
  apps::HplParams hpl{};
};

/// Declarative procs × modes × seeds sweep; `collect` receives every
/// finished run (watchdog-tripped runs are counted by the campaign runner
/// instead). Cells are (procs index, mode index), row-major.
template <class Fn>
exp::Scenario hpl_scenario(std::string name, const HplSweepOptions& opt,
                           Fn collect) {
  const apps::HplParams hpl = opt.hpl;
  exp::AppFactory app = [hpl](int nr) { return apps::make_hpl(nr, hpl); };
  // GP: trace-derived groups with G = grid rows (the paper matches P=8);
  // shared across jobs so the profiling run happens once per process count.
  auto cache = std::make_shared<GroupCache>(app, /*gp_max_size=*/hpl.grid_rows);

  exp::Scenario sc;
  sc.name = std::move(name);
  sc.axes = {exp::SweepAxis::ints("procs", opt.procs), mode_axis(opt.modes)};
  sc.reps = opt.reps;
  sc.config = [opt, app, cache](const exp::SweepPoint& point) {
    exp::ExperimentConfig cfg;
    cfg.app = app;
    cfg.nranks = static_cast<int>(point.get_int("procs"));
    cfg.seed = point.seed;
    cfg.groups = cache->get(mode_at(point), cfg.nranks);
    cfg.checkpoints = true;
    cfg.schedule.first_at_s = opt.ckpt_at_s;
    cfg.schedule.round_spread_s = opt.round_spread_s;
    cfg.restart_after_finish = opt.restart_after_finish;
    cfg.shards = opt.shards;
    cfg.failures = opt.failures;
    return cfg;
  };
  sc.collect = [collect](const exp::SweepPoint& point,
                         const exp::ExperimentResult& res,
                         exp::Collector& col) {
    collect(static_cast<int>(point.get_int("procs")), mode_at(point), res,
            col);
  };
  return sc;
}

}  // namespace gcr::bench
