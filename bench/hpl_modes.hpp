// Shared driver for the paper's HPL experiments (Figures 5-9): one
// checkpoint at t=60 s, immediate whole-application restart after the run
// (paper §5.1's measurement protocol), swept over process counts and the
// four grouping modes, averaged over seeds.
#pragma once

#include "apps/hpl.hpp"
#include "bench_common.hpp"

namespace gcr::bench {

struct HplSweepOptions {
  std::vector<std::int64_t> procs{16, 32, 48, 64, 80, 96, 112, 128};
  int reps = 5;
  double ckpt_at_s = 60.0;
  double round_spread_s = 0.4;  ///< mpirun per-group propagation window
  bool restart_after_finish = true;
  apps::HplParams hpl{};
};

/// Runs one (n, mode, seed) experiment.
inline exp::ExperimentResult run_hpl_once(const HplSweepOptions& opt, int n,
                                          Mode mode, std::uint64_t seed) {
  apps::HplParams hpl = opt.hpl;
  exp::AppFactory app = [hpl](int nr) { return apps::make_hpl(nr, hpl); };
  exp::ExperimentConfig cfg;
  cfg.app = app;
  cfg.nranks = n;
  cfg.seed = seed;
  // GP: trace-derived groups with G = grid rows (the paper matches P=8).
  cfg.groups = groups_for(mode, n, app, /*gp_max_size=*/hpl.grid_rows);
  cfg.checkpoints = true;
  cfg.schedule.first_at_s = opt.ckpt_at_s;
  cfg.schedule.round_spread_s = opt.round_spread_s;
  cfg.restart_after_finish = opt.restart_after_finish;
  return exp::run_experiment(cfg);
}

/// Sweeps procs x modes, handing every seed's result to `consume(n, mode,
/// result)`.
template <class Fn>
void sweep_hpl(const HplSweepOptions& opt, Fn&& consume) {
  for (std::int64_t n64 : opt.procs) {
    const int n = static_cast<int>(n64);
    for (Mode mode : {Mode::kGp, Mode::kGp1, Mode::kGp4, Mode::kNorm}) {
      for (int rep = 1; rep <= opt.reps; ++rep) {
        consume(n, mode,
                run_hpl_once(opt, n, mode, static_cast<std::uint64_t>(rep)));
      }
    }
  }
}

}  // namespace gcr::bench
