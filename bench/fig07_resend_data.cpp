// Figure 7: total amount of data to resend during a whole-application
// restart (KB), HPL, modes GP / GP1 / GP4 (NORM resends nothing).
//
// Paper shape: GP low and stable; GP1 largest and most variable; GP4 in
// between, scaling steadily.
#include "hpl_modes.hpp"

using namespace gcr;
using bench::Mode;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  bench::HplSweepOptions opt;
  opt.procs = cli.get_int_list("procs", opt.procs, "process counts");
  opt.reps = cli.get_reps(5);
  const bool csv = cli.get_bool("csv", false, "emit CSV");
  const int jobs = cli.get_jobs();
  cli.finish();

  const exp::Scenario sc = bench::hpl_scenario(
      "hpl/resend-data", opt,
      [](int, Mode, const exp::ExperimentResult& res, exp::Collector& col) {
        col.add("resend_kb",
                static_cast<double>(res.metrics.resend_bytes) / 1024.0);
      });
  const exp::CampaignResult camp = exp::run_campaign(sc, {jobs});
  auto resend = [&](std::size_t ni, Mode m) {
    return camp.stat(sc.cell_index({ni, bench::mode_index(opt.modes, m)}),
                     "resend_kb");
  };

  Table t({"procs", "GP_KB", "GP1_KB", "GP4_KB", "GP1_max_KB"});
  for (std::size_t i = 0; i < opt.procs.size(); ++i) {
    t.add_row({Table::num(opt.procs[i]),
               bench::cell_mean(resend(i, Mode::kGp), 0),
               bench::cell_mean(resend(i, Mode::kGp1), 0),
               bench::cell_mean(resend(i, Mode::kGp4), 0),
               bench::cell_max(resend(i, Mode::kGp1), 0)});
  }
  bench::emit(
      "Figure 7 - data resent on restart (HPL). Expect: GP lowest/stable, "
      "GP1 largest/variable (NORM = 0 by construction)",
      t, csv, camp.unfinished_runs);
  return 0;
}
