// Figure 7: total amount of data to resend during a whole-application
// restart (KB), HPL, modes GP / GP1 / GP4 (NORM resends nothing).
//
// Paper shape: GP low and stable; GP1 largest and most variable; GP4 in
// between, scaling steadily.
#include <map>

#include "hpl_modes.hpp"

using namespace gcr;
using bench::Mode;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  bench::HplSweepOptions opt;
  opt.procs = cli.get_int_list("procs", opt.procs, "process counts");
  opt.reps = static_cast<int>(cli.get_int("reps", 5, "repetitions"));
  const bool csv = cli.get_bool("csv", false, "emit CSV");
  cli.finish();

  std::map<std::pair<int, Mode>, RunningStats> resend;
  bench::sweep_hpl(opt, [&](int n, Mode m, const exp::ExperimentResult& res) {
    resend[{n, m}].add(static_cast<double>(res.metrics.resend_bytes) / 1024.0);
  });

  Table t({"procs", "GP_KB", "GP1_KB", "GP4_KB", "GP1_max_KB"});
  for (std::int64_t n64 : opt.procs) {
    const int n = static_cast<int>(n64);
    t.add_row({Table::num(static_cast<std::int64_t>(n)),
               Table::num(resend[{n, Mode::kGp}].mean(), 0),
               Table::num(resend[{n, Mode::kGp1}].mean(), 0),
               Table::num(resend[{n, Mode::kGp4}].mean(), 0),
               Table::num(resend[{n, Mode::kGp1}].max(), 0)});
  }
  bench::emit(
      "Figure 7 - data resent on restart (HPL). Expect: GP lowest/stable, "
      "GP1 largest/variable (NORM = 0 by construction)",
      t, csv);
  return 0;
}
