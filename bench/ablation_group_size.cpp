// Ablation A1: maximum group size G (paper §3.2's discussion).
//
// The paper argues G should adapt to the network: larger groups reduce the
// amount of message logging but coordinate more processes per checkpoint;
// on slow networks large groups also have more in-transit data to clear.
// This sweep quantifies the trade-off on HPL for the default (Fast
// Ethernet) and a 10x faster network.
#include "apps/hpl.hpp"
#include "bench_common.hpp"

using namespace gcr;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const int n = static_cast<int>(cli.get_int("procs", 64, "process count"));
  const auto sizes = cli.get_int_list("sizes", {1, 2, 4, 8, 16, 32, 64},
                                      "max group sizes (must divide procs)");
  const int reps = cli.get_reps(3);
  const bool csv = cli.get_bool("csv", false, "emit CSV");
  const int jobs = cli.get_jobs();
  cli.finish();

  std::vector<std::int64_t> valid_sizes;
  for (std::int64_t g : sizes) {
    if (g > 0 && n % g == 0) valid_sizes.push_back(g);
  }

  exp::Scenario sc;
  sc.name = "hpl/group-size";
  sc.axes = {exp::SweepAxis::reals("net_scale", {1.0, 10.0}),
             exp::SweepAxis::ints("max_G", valid_sizes)};
  sc.reps = reps;
  sc.config = [n](const exp::SweepPoint& point) {
    const double bw_scale = point.get("net_scale");
    const int g = static_cast<int>(point.get_int("max_G"));
    exp::ExperimentConfig cfg;
    cfg.app = [](int nr) { return apps::make_hpl(nr); };
    cfg.nranks = n;
    cfg.seed = point.seed;
    cfg.groups = group::make_round_robin(n, n / g);
    cfg.net_bandwidth_Bps = 12.5e6 * bw_scale;
    cfg.net_latency_s = 70e-6 / bw_scale;
    cfg.checkpoints = true;
    cfg.schedule.first_at_s = 60.0;
    cfg.schedule.round_spread_s = 0.4;
    cfg.restart_after_finish = true;
    return cfg;
  };
  sc.collect = [](const exp::SweepPoint&, const exp::ExperimentResult& res,
                  exp::Collector& col) {
    col.add("exec", res.exec_time_s);
    col.add("ckpt", res.metrics.aggregate_ckpt_time_s());
    col.add("logged_mb", static_cast<double>(res.metrics.logged_bytes) / 1e6);
    col.add("restart", res.restart_aggregate_s);
  };
  const exp::CampaignResult camp = exp::run_campaign(sc, {jobs});

  Table t({"max_G", "net", "exec_s", "agg_ckpt_s", "logged_MB",
           "agg_restart_s"});
  for (std::size_t bi = 0; bi < 2; ++bi) {
    for (std::size_t gi = 0; gi < valid_sizes.size(); ++gi) {
      const std::size_t cell = sc.cell_index({bi, gi});
      t.add_row({Table::num(valid_sizes[gi]), bi ? "fast" : "ethernet",
                 bench::cell_mean(camp.stat(cell, "exec"), 1),
                 bench::cell_mean(camp.stat(cell, "ckpt"), 1),
                 bench::cell_mean(camp.stat(cell, "logged_mb"), 1),
                 bench::cell_mean(camp.stat(cell, "restart"), 1)});
    }
  }
  bench::emit(
      "Ablation A1 - max group size sweep (HPL). Expect: logging shrinks "
      "with G; coordination grows with G; best G larger on faster networks",
      t, csv, camp.unfinished_runs);
  return 0;
}
