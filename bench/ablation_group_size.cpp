// Ablation A1: maximum group size G (paper §3.2's discussion).
//
// The paper argues G should adapt to the network: larger groups reduce the
// amount of message logging but coordinate more processes per checkpoint;
// on slow networks large groups also have more in-transit data to clear.
// This sweep quantifies the trade-off on HPL for the default (Fast
// Ethernet) and a 10x faster network.
#include <map>

#include "apps/hpl.hpp"
#include "bench_common.hpp"

using namespace gcr;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const int n = static_cast<int>(cli.get_int("procs", 64, "process count"));
  const auto sizes = cli.get_int_list("sizes", {1, 2, 4, 8, 16, 32, 64},
                                      "max group sizes (must divide procs)");
  const int reps = static_cast<int>(cli.get_int("reps", 3, "repetitions"));
  const bool csv = cli.get_bool("csv", false, "emit CSV");
  cli.finish();

  exp::AppFactory app = [](int nr) { return apps::make_hpl(nr); };

  Table t({"max_G", "net", "exec_s", "agg_ckpt_s", "logged_MB",
           "agg_restart_s"});
  for (double bw_scale : {1.0, 10.0}) {
    for (std::int64_t g64 : sizes) {
      const int g = static_cast<int>(g64);
      if (n % g != 0) continue;
      const group::GroupSet groups = group::make_round_robin(n, n / g);
      RunningStats exec, ckpt, logged, restart;
      for (int rep = 1; rep <= reps; ++rep) {
        exp::ExperimentConfig cfg;
        cfg.app = app;
        cfg.nranks = n;
        cfg.seed = static_cast<std::uint64_t>(rep);
        cfg.groups = groups;
        cfg.net_bandwidth_Bps = 12.5e6 * bw_scale;
        cfg.net_latency_s = 70e-6 / bw_scale;
        cfg.checkpoints = true;
        cfg.schedule.first_at_s = 60.0;
        cfg.schedule.round_spread_s = 0.4;
        cfg.restart_after_finish = true;
        exp::ExperimentResult res = exp::run_experiment(cfg);
        exec.add(res.exec_time_s);
        ckpt.add(res.metrics.aggregate_ckpt_time_s());
        logged.add(static_cast<double>(res.metrics.logged_bytes) / 1e6);
        restart.add(res.restart_aggregate_s);
      }
      t.add_row({Table::num(g64), bw_scale > 1 ? "fast" : "ethernet",
                 Table::num(exec.mean(), 1), Table::num(ckpt.mean(), 1),
                 Table::num(logged.mean(), 1), Table::num(restart.mean(), 1)});
    }
  }
  bench::emit(
      "Ablation A1 - max group size sweep (HPL). Expect: logging shrinks "
      "with G; coordination grows with G; best G larger on faster networks",
      t, csv);
  return 0;
}
