// Engine micro-benchmark: events per wall-second on the simulator's hot
// paths, with no external dependencies so the target always builds.
//
// Workloads:
//   * callback_storm  — self-rescheduling periodic callbacks (the daemon
//                       pattern), raw queue push/pop/dispatch cost
//   * timer_storm     — N processes sleeping on staggered Delays (the
//                       suspend/fire_at/resume cycle every compute() pays)
//   * timer_cancel    — timers armed and claimed by a competing Trigger, so
//                       every round recycles a cancelled waiter slot
//   * ping_pong       — channel handoff pairs (the per-rank delivery idiom)
//   * spawn_kill      — process churn: spawn, let run, kill half while queued
//   * link_contention — routed fat-tree transfers fair-sharing uplinks: the
//                       settle/re-rate/heap cycle every membership change
//                       pays on a contended fabric
//   * wheel_churn     — a hot short-period storm with a growing population
//                       of far-future timers parked in the wheel's upper
//                       levels; O(1) insert/dispatch means the rate stays
//                       flat as the resident count grows
//   * far_future_cascade — events log-spread across the wheel's full 2^48 ns
//                       span, so dispatch pays worst-case level cascades
//   * shard_scaling   — per-shard callback storms plus a cross-shard token
//                       ring through the windowed coordinator
//                       (sim/shard.hpp), at 1/2/4/8 shards
//
// Output is one JSON object per line (events = Engine::events_processed()
// delta; rate = events / wall second), plus a trailing summary object.
// `--out FILE` additionally persists the JSON lines (BENCH_engine.json at
// the repo root is the committed reference capture). CI uploads the JSON as
// the perf-smoke artifact; docs/BENCHMARKS.md records reference numbers.
#include <array>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "sim/awaitables.hpp"
#include "sim/channel.hpp"
#include "sim/engine.hpp"
#include "sim/network.hpp"
#include "sim/shard.hpp"
#include "util/cli.hpp"

namespace {

using namespace gcr;
using sim::Co;
using sim::Engine;
using sim::Time;

double now_seconds() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch())
      .count();
}

struct Result {
  std::uint64_t events = 0;
  double seconds = 0;
};

/// Runs `body` (which builds and drains one engine) `reps` times and keeps
/// the best rate — micro-runs on a shared machine are noisy in one
/// direction only.
template <class Body>
Result best_of(int reps, const Body& body) {
  Result best;
  for (int r = 0; r < reps; ++r) {
    const double t0 = now_seconds();
    const std::uint64_t events = body();
    const double dt = now_seconds() - t0;
    if (best.seconds == 0 || events / dt > best.events / best.seconds) {
      best = {events, dt};
    }
  }
  return best;
}

std::string g_json;  // mirror of stdout for --out

void emit(const std::string& name, const Result& r) {
  char line[256];
  std::snprintf(
      line, sizeof(line),
      "{\"bench\":\"%s\",\"events\":%llu,\"seconds\":%.6f,"
      "\"events_per_sec\":%.0f}\n",
      name.c_str(), static_cast<unsigned long long>(r.events), r.seconds,
      r.seconds > 0 ? static_cast<double>(r.events) / r.seconds : 0.0);
  std::fputs(line, stdout);
  g_json += line;
}

// ------------------------------------------------------------- workloads

std::uint64_t callback_storm(int outstanding, int rounds) {
  // The daemon pattern: a bounded set of periodic callbacks, each
  // rescheduling itself with a staggered period (so the heap reorders, not
  // just FIFO-pops). Queue depth stays at `outstanding`, like the recovery
  // timers and scheduler ticks of a real campaign job.
  Engine eng;
  long sink = 0;
  struct Tick {
    Engine* eng;
    long* sink;
    int left;
    void operator()() {
      ++*sink;
      if (left > 0) {
        eng->call_at(eng->now() + 1 + left % 7, Tick{eng, sink, left - 1});
      }
    }
  };
  for (int i = 0; i < outstanding; ++i) {
    eng.call_at(i % 64, Tick{&eng, &sink, rounds - 1});
  }
  eng.run();
  if (sink != static_cast<long>(outstanding) * rounds) std::abort();
  return eng.events_processed();
}

Co<void> sleeper(Engine& eng, Time dt, int rounds) {
  for (int i = 0; i < rounds; ++i) co_await sim::delay(eng, dt);
}

std::uint64_t timer_storm(int procs, int rounds) {
  Engine eng;
  for (int p = 0; p < procs; ++p) {
    // Staggered periods force heap reordering, not just FIFO pops.
    eng.spawn("t", sleeper(eng, 1 + p % 7, rounds));
  }
  eng.run();
  return eng.events_processed();
}

std::uint64_t timer_cancel(int rounds) {
  // A daemon alternates trigger waits with short sleeps while callbacks fire
  // the trigger each round; every round arms and then recycles a waiter, so
  // the pool's free list (not just heap push/pop) is on the clock.
  Engine eng;
  sim::Trigger t(eng);
  auto racer = [](Engine& e, sim::Trigger& tr, int n) -> Co<void> {
    for (int i = 0; i < n; ++i) {
      co_await tr.wait();
      tr.reset();
      co_await sim::delay(e, 1);
    }
  };
  eng.spawn("racer", racer(eng, t, rounds));
  for (int i = 0; i < rounds; ++i) {
    eng.call_at(2 * i, [&t] { t.fire(); });
  }
  eng.run();
  return eng.events_processed();
}

Co<void> echo(sim::Channel<int>& in, sim::Channel<int>& out, int rounds) {
  for (int i = 0; i < rounds; ++i) out.push(co_await in.pop());
}

Co<void> drive(sim::Channel<int>& out, sim::Channel<int>& in, int rounds) {
  for (int i = 0; i < rounds; ++i) {
    out.push(i);
    (void)co_await in.pop();
  }
}

std::uint64_t ping_pong(int pairs, int rounds) {
  Engine eng;
  std::vector<std::unique_ptr<sim::Channel<int>>> chans;
  for (int p = 0; p < pairs; ++p) {
    chans.push_back(std::make_unique<sim::Channel<int>>(eng));
    chans.push_back(std::make_unique<sim::Channel<int>>(eng));
    auto& a = *chans[chans.size() - 2];
    auto& b = *chans[chans.size() - 1];
    eng.spawn("echo", echo(a, b, rounds));
    eng.spawn("drive", drive(a, b, rounds));
  }
  eng.run();
  return eng.events_processed();
}

std::uint64_t spawn_kill(int waves, int procs_per_wave) {
  Engine eng;
  std::uint64_t killed = 0;
  for (int w = 0; w < waves; ++w) {
    const Time base = w * 100;
    eng.call_at(base, [&eng, &killed, procs_per_wave] {
      std::vector<sim::ProcPtr> wave;
      wave.reserve(static_cast<std::size_t>(procs_per_wave));
      for (int i = 0; i < procs_per_wave; ++i) {
        wave.push_back(eng.spawn("w", sleeper(eng, 10, 3)));
      }
      // Kill every other process while its first timer is still queued.
      for (int i = 0; i < procs_per_wave; i += 2) {
        eng.kill(*wave[static_cast<std::size_t>(i)]);
        ++killed;
      }
    });
  }
  eng.run();
  if (killed == 0) std::abort();
  return eng.events_processed();
}

std::uint64_t link_contention(int nodes, int rounds) {
  // Every node streams to the node halfway across a fat-tree, so the core
  // uplinks stay saturated and every completion re-rates the survivors
  // sharing its links — the fabric's hot path (settle, bottleneck re-split,
  // heap push, generation-guarded timer) with zero steady-state allocation.
  Engine eng;
  sim::NetParams np;
  np.topology.kind = sim::TopologyKind::kFatTree;
  np.topology.fattree_routing = sim::FatTreeRouting::kAdaptive;
  sim::Network net(eng, nodes, np);
  long delivered = 0;
  struct Stream {
    Engine* eng;
    sim::Network* net;
    long* delivered;
    int src, dst, left;
    void operator()() {
      ++*delivered;
      if (left > 0) {
        net->send(src, dst, 40 * 1024, Stream{eng, net, delivered, src, dst,
                                              left - 1});
      }
    }
  };
  for (int s = 0; s < nodes; ++s) {
    const int d = (s + nodes / 2) % nodes;
    net.send(s, d, 40 * 1024, Stream{&eng, &net, &delivered, s, d, rounds - 1});
  }
  eng.run();
  if (delivered != static_cast<long>(nodes) * rounds) std::abort();
  return eng.events_processed();
}

std::uint64_t wheel_churn(int pending, int outstanding, int rounds) {
  // `pending` far-future timers parked across the wheel's upper levels stay
  // resident while a short-period storm churns level 0 below them. With
  // O(1) wheel inserts and pops the measured rate is flat in `pending`; a
  // comparison-based heap would pay log(pending) per storm event.
  Engine eng;
  // Pre-size the pools: the row measures steady-state churn, not the pool's
  // first-growth allocations while parking the pending population.
  eng.reserve(static_cast<std::size_t>(pending) +
                  static_cast<std::size_t>(outstanding) * 2,
              16);
  const Time horizon = 1'000'000;  // the storm lives in [0, horizon]
  for (int i = 0; i < pending; ++i) {
    eng.call_at(
        horizon + 1 + (static_cast<Time>(i) * 104'729) % (Time{1} << 40),
        [] {});
  }
  long sink = 0;
  struct Tick {
    Engine* eng;
    long* sink;
    int left;
    void operator()() {
      ++*sink;
      if (left > 0) {
        eng->call_at(eng->now() + 1 + left % 7, Tick{eng, sink, left - 1});
      }
    }
  };
  for (int i = 0; i < outstanding; ++i) {
    eng.call_at(i % 64, Tick{&eng, &sink, rounds - 1});
  }
  const std::uint64_t before = eng.events_processed();
  const std::uint64_t storm = eng.run(horizon);  // parked timers stay parked
  if (before != 0 || sink != static_cast<long>(outstanding) * rounds) {
    std::abort();
  }
  return storm;
}

std::uint64_t far_future_cascade(int count) {
  // Events log-spread across (almost) the wheel's whole 2^48 ns span:
  // popping them drags chains down through every level, the worst case for
  // the lazy cascade.
  Engine eng;
  std::uint64_t x = 0x9e3779b97f4a7c15ull;
  for (int i = 0; i < count; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    eng.call_at(1 + (x % ((Time{1} << 47))), [] {});
  }
  eng.run();
  return eng.events_processed();
}

std::uint64_t far_future_overflow(int count) {
  // Events log-spread beyond the wheel's 2^48 ns span park in the overflow
  // heap; the cursor's march through top-level windows promotes them into
  // the wheel in batches (one drain per window entered), not one span test
  // per dispatched event. Pairs with far_future_cascade: that row is the
  // in-span worst case, this one guards the beyond-span population.
  Engine eng;
  std::uint64_t x = 0x2545F4914F6CDD1Dull;
  for (int i = 0; i < count; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    eng.call_at(1 + (x % ((Time{1} << 52))), [] {});
  }
  eng.run();
  return eng.events_processed();
}

std::uint64_t shard_scaling(int shards, int outstanding, int rounds) {
  // One callback storm per shard (independent work, the parallel payoff)
  // plus a cross-shard token ring so every window boundary, barrier, and
  // mailbox merge in the coordinator is on the clock. Work scales with the
  // shard count, so events/second measures parallel throughput directly.
  sim::ShardedEngine se(shards, /*lookahead=*/1'000);
  std::array<long, 64> sink{};
  struct Tick {
    Engine* eng;
    long* sink;
    int left;
    void operator()() {
      ++*sink;
      if (left > 0) {
        eng->call_at(eng->now() + 1 + left % 7, Tick{eng, sink, left - 1});
      }
    }
  };
  for (int s = 0; s < shards; ++s) {
    Engine& eng = se.shard(s);
    for (int i = 0; i < outstanding; ++i) {
      eng.call_at(i % 64, Tick{&eng, &sink[static_cast<std::size_t>(s)],
                               rounds - 1});
    }
  }
  struct Ring {
    sim::ShardedEngine* se;
    int left;
    void arrive(int s) {
      if (left-- <= 0) return;
      const int next = (s + 1) % se->num_shards();
      se->post_at(s, next, se->shard(s).now() + 10'000,
                  [this, next] { arrive(next); });
    }
  };
  Ring ring{&se, 200};
  se.post_at(0, 0, 1, [&ring] { ring.arrive(0); });
  se.run();
  for (int s = 0; s < shards; ++s) {
    if (sink[static_cast<std::size_t>(s)] !=
        static_cast<long>(outstanding) * rounds) {
      std::abort();
    }
  }
  return se.events_processed();
}

std::uint64_t shard_parallel_ranks(int shards, int ranks_per_shard,
                                   int rounds, int burst,
                                   std::vector<std::uint64_t>* occupancy) {
  // Rank-like actors resident on every shard, the shape the model layer has
  // once `exp::plan_rank_shards` places ranks: each actor runs a burst of
  // local self-rescheduling callbacks on its own shard's engine (intra-shard
  // storm), then hands off to its counterpart on the next shard through the
  // windowed mailbox (cross-shard ring). Unlike shard_scaling's token ring —
  // whose storms are pre-seeded and whose ring carries no work — here the
  // cross-shard edge *carries the work forward*, so the row measures
  // parallel dispatch of model events, not coordinator overhead. Occupancy
  // (events dispatched per shard) comes back via `occupancy` and lands in
  // the JSON row; every shard busy is the tentpole's proof obligation.
  sim::ShardedEngine se(shards, /*lookahead=*/1'000);
  struct Actor {
    sim::ShardedEngine* se;
    int shard;
    int left;  // ring handoffs remaining
    int burst;
    int burst_left = 0;
    void start_round() {
      burst_left = burst;
      step();
    }
    void step() {
      Engine& eng = se->shard(shard);
      if (burst_left-- > 0) {
        eng.call_at(eng.now() + 1 + burst_left % 7, [this] { step(); });
        return;
      }
      if (left-- <= 0) return;
      const int next = (shard + 1) % se->num_shards();
      // The actor migrates: subsequent bursts run on the successor shard.
      se->post_at(shard, next, eng.now() + se->lookahead(), [this, next] {
        shard = next;
        start_round();
      });
    }
  };
  std::vector<std::unique_ptr<Actor>> actors;
  for (int s = 0; s < shards; ++s) {
    for (int r = 0; r < ranks_per_shard; ++r) {
      actors.push_back(
          std::make_unique<Actor>(Actor{&se, s, rounds, burst}));
      Actor* a = actors.back().get();
      se.shard(s).call_at(r % 16, [a] { a->start_round(); });
    }
  }
  se.run();
  for (const auto& a : actors) {
    if (a->left != -1 || a->burst_left != -1) std::abort();
  }
  if (occupancy != nullptr) {
    occupancy->clear();
    for (int s = 0; s < shards; ++s) occupancy->push_back(se.shard_events(s));
  }
  return se.events_processed();
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const int scale =
      static_cast<int>(cli.get_int("scale", 1, "workload multiplier"));
  const int reps = static_cast<int>(
      cli.get_int("repeat", 3, "timed repetitions (best kept)"));
  const std::string out =
      cli.get_string("out", "", "also write the JSON lines to this file");
  cli.finish();

  std::uint64_t total_events = 0;
  double total_seconds = 0;
  auto record = [&](const std::string& name, const Result& r) {
    emit(name, r);
    total_events += r.events;
    total_seconds += r.seconds;
  };

  record("callback_storm",
         best_of(reps, [&] { return callback_storm(512, 800 * scale); }));
  record("timer_storm",
         best_of(reps, [&] { return timer_storm(1000, 200 * scale); }));
  record("timer_cancel",
         best_of(reps, [&] { return timer_cancel(100000 * scale); }));
  record("ping_pong",
         best_of(reps, [&] { return ping_pong(500, 200 * scale); }));
  record("spawn_kill",
         best_of(reps, [&] { return spawn_kill(2000 * scale, 50); }));
  record("link_contention",
         best_of(reps, [&] { return link_contention(128, 400 * scale); }));
  // Timer-wheel rows: flat rates across the pending sweep demonstrate the
  // O(1) claim (a heap would decay logarithmically in the resident count).
  for (const int pending : {1'000, 10'000, 100'000}) {
    record("wheel_churn_p" + std::to_string(pending),
           best_of(reps,
                   [&] { return wheel_churn(pending, 512, 2000 * scale); }));
  }
  record("far_future_cascade",
         best_of(reps, [&] { return far_future_cascade(200'000 * scale); }));
  record("far_future_overflow",
         best_of(reps, [&] { return far_future_overflow(200'000 * scale); }));
  // Shard rows: per-shard work is constant, so events/second measures the
  // coordinator's parallel throughput. On a single hardware thread the rows
  // stay roughly flat (the structural overhead of windows + barriers); the
  // >= 1.5x at 4 shards acceptance figure is for a multi-core host.
  for (const int shards : {1, 2, 4, 8}) {
    record("shard_scaling_s" + std::to_string(shards),
           best_of(reps,
                   [&] { return shard_scaling(shards, 512, 400 * scale); }));
  }
  // Resident-rank rows: the cross-shard ring carries the work, so these
  // measure parallel dispatch of model events (and the occupancy vector
  // proves peer shards executed them). Same caveat as shard_scaling on a
  // single hardware thread.
  for (const int shards : {1, 2, 4}) {
    std::vector<std::uint64_t> occupancy;
    const Result r = best_of(reps, [&] {
      return shard_parallel_ranks(shards, 64, 40 * scale, 16, &occupancy);
    });
    std::string occ = "[";
    for (std::size_t s = 0; s < occupancy.size(); ++s) {
      if (s != 0) occ += ",";
      occ += std::to_string(occupancy[s]);
    }
    occ += "]";
    char pline[320];
    std::snprintf(
        pline, sizeof(pline),
        "{\"bench\":\"shard_parallel_ranks_s%d\",\"events\":%llu,"
        "\"seconds\":%.6f,\"events_per_sec\":%.0f,\"shard_events\":%s}\n",
        shards, static_cast<unsigned long long>(r.events), r.seconds,
        r.seconds > 0 ? static_cast<double>(r.events) / r.seconds : 0.0,
        occ.c_str());
    std::fputs(pline, stdout);
    g_json += pline;
    total_events += r.events;
    total_seconds += r.seconds;
  }

  char line[256];
  std::snprintf(
      line, sizeof(line),
      "{\"bench\":\"TOTAL\",\"events\":%llu,\"seconds\":%.6f,"
      "\"events_per_sec\":%.0f}\n",
      static_cast<unsigned long long>(total_events), total_seconds,
      total_seconds > 0 ? static_cast<double>(total_events) / total_seconds
                        : 0.0);
  std::fputs(line, stdout);
  g_json += line;
  if (!out.empty()) {
    if (std::FILE* f = std::fopen(out.c_str(), "w")) {
      std::fputs(g_json.c_str(), f);
      std::fclose(f);
    } else {
      std::fprintf(stderr, "micro_engine: cannot write %s\n", out.c_str());
      return 1;
    }
  }
  return 0;
}
