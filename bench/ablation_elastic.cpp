// Ablation: elastic service under churn — grouping mode × churn model ×
// storage tier (DESIGN.md §16).
//
// A long-running service app (apps/service.hpp: open-loop seeded arrival
// stream, per-request SLO) runs with periodic checkpoints while a churn
// model (sim/churn.hpp) drains, reclaims and rejoins nodes: drains exit
// through a committed checkpoint (clean handoff), spot reclaims get a
// warning window that may or may not suffice, rolling visits every node
// once, and every departed node rejoins and is merged back by the
// traffic-affinity planner (core/elastic.hpp). Cells report availability,
// SLO-miss rate and tail latency next to the churn books.
//
// Expected shape: NORM pays the most per churn event (every drain commits
// the whole cluster's images and every departure splits the global group),
// GP1 pays the least coordination but logs everything; GP sits between.
// Spot reclaims under the drain tier commit faster, so a given warning
// window converts more reclaims from forced (group failure) to clean
// (checkpoint-on-warning) than the direct device does — availability and
// tail latency follow.
#include "apps/service.hpp"
#include "bench_common.hpp"
#include "sim/churn.hpp"

using namespace gcr;
using bench::Mode;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const int procs =
      static_cast<int>(cli.get_int("procs", 16, "process count"));
  const int reps = cli.get_reps(3);
  const bool csv = cli.get_bool("csv", false, "emit CSV");
  const int jobs = cli.get_jobs();
  const std::int64_t requests =
      cli.get_int("requests", 400, "requests per rank");
  const double rate_hz = cli.get_double("rate", 4.0, "arrivals per second");
  const double slo_s = cli.get_double("slo", 0.5, "per-request SLO (s)");
  const double ckpt_first = cli.get_double("first-at", 5.0, "first ckpt (s)");
  const double ckpt_every = cli.get_double("interval", 10.0, "ckpt period (s)");
  const double mtbd = cli.get_double("mtbd", 40.0,
                                     "mean time between drains/reclaims (s)");
  const double outage = cli.get_double("outage", 12.0,
                                       "departure-to-rejoin gap (s)");
  const double warning = cli.get_double("warning", 5.0,
                                        "spot reclaim notice (s)");
  cli.finish();

  const std::vector<Mode> modes{Mode::kNorm, Mode::kGp, Mode::kGp1};
  const std::vector<sim::ChurnModelKind> churns{sim::ChurnModelKind::kDrains,
                                                sim::ChurnModelKind::kSpot,
                                                sim::ChurnModelKind::kRolling};
  const std::vector<ckpt::StorageMode> storages{ckpt::StorageMode::kDirect,
                                                ckpt::StorageMode::kDrain};

  apps::ServiceParams sp;
  sp.requests = static_cast<std::uint64_t>(requests);
  sp.arrival_rate_hz = rate_hz;
  sp.slo_s = slo_s;
  sp.cluster_width = 4;  // blocks of replicas + rare cross-block traffic
  exp::AppFactory app = [sp](int nr) { return apps::make_service(nr, sp); };
  auto cache = std::make_shared<bench::GroupCache>(app, sp.cluster_width);

  exp::Scenario sc;
  sc.name = "ablation/elastic";
  sc.axes = {bench::mode_axis(modes), exp::churn_kind_axis(churns),
             exp::storage_mode_axis(storages)};
  sc.reps = reps;
  sc.config = [&](const exp::SweepPoint& point) {
    exp::ExperimentConfig cfg;
    cfg.app = app;
    cfg.nranks = procs;
    cfg.seed = point.seed;
    cfg.groups = cache->get(bench::mode_at(point), procs);
    cfg.checkpoints = true;
    cfg.schedule.first_at_s = ckpt_first;
    cfg.schedule.interval_s = ckpt_every;
    cfg.schedule.round_spread_s = 0.2;
    cfg.storage.mode = exp::storage_mode_at(point);
    cfg.churn.kind = exp::churn_kind_at(point);
    cfg.churn.drain_mtbd_s = mtbd;
    cfg.churn.outage_s = outage;
    cfg.churn.warning_s = warning;
    // Rolling sweep sized so every node is visited inside the nominal
    // service window (requests / rate seconds of arrivals).
    const double horizon =
        static_cast<double>(requests) / rate_hz;
    cfg.churn.rolling_start_s = 0.1 * horizon;
    cfg.churn.rolling_step_s =
        0.8 * horizon / static_cast<double>(procs);
    cfg.recovery.detect_s = 0.5;
    cfg.recovery.relaunch_s = 0.5;
    return cfg;
  };
  sc.collect = [](const exp::SweepPoint&, const exp::ExperimentResult& res,
                  exp::Collector& col) {
    col.add("exec", res.exec_time_s);
    col.add("avail", res.availability);
    col.add("slo_miss", res.service ? res.service->slo_miss_rate : 0.0);
    col.add("p50_ms", res.service ? res.service->p50_latency_s * 1e3 : 0.0);
    col.add("p99_ms", res.service ? res.service->p99_latency_s * 1e3 : 0.0);
    col.add("drains", static_cast<double>(res.drains_completed));
    col.add("recl_clean", static_cast<double>(res.reclaims_clean));
    col.add("recl_forced", static_cast<double>(res.reclaims_forced));
    col.add("joins", static_cast<double>(res.joins_completed));
    col.add("merges", static_cast<double>(res.merges_installed));
    col.add("failures", static_cast<double>(res.failures_injected));
  };

  const exp::CampaignResult camp = exp::run_campaign(sc, {jobs});

  Table t({"mode", "churn", "storage", "exec_s", "avail", "slo_miss",
           "p50_ms", "p99_ms", "drains", "recl_c", "recl_f", "joins",
           "merges", "fails"});
  for (std::size_t mi = 0; mi < modes.size(); ++mi) {
    for (std::size_t ci = 0; ci < churns.size(); ++ci) {
      for (std::size_t si = 0; si < storages.size(); ++si) {
        const std::size_t cell = sc.cell_index({mi, ci, si});
        t.add_row({bench::mode_name(modes[mi]),
                   sim::churn_model_name(churns[ci]),
                   ckpt::storage_mode_name(storages[si]),
                   bench::cell_mean(camp.stat(cell, "exec"), 1),
                   bench::cell_mean(camp.stat(cell, "avail"), 4),
                   bench::cell_mean(camp.stat(cell, "slo_miss"), 4),
                   bench::cell_mean(camp.stat(cell, "p50_ms"), 1),
                   bench::cell_mean(camp.stat(cell, "p99_ms"), 1),
                   bench::cell_mean(camp.stat(cell, "drains"), 1),
                   bench::cell_mean(camp.stat(cell, "recl_clean"), 1),
                   bench::cell_mean(camp.stat(cell, "recl_forced"), 1),
                   bench::cell_mean(camp.stat(cell, "joins"), 1),
                   bench::cell_mean(camp.stat(cell, "merges"), 1),
                   bench::cell_mean(camp.stat(cell, "failures"), 1)});
      }
    }
  }
  bench::emit(
      "Ablation - elastic service under churn (mode x churn model x "
      "storage tier). Expect: clean drains cost availability only for the "
      "outage; spot warnings convert to clean exits when the storage tier "
      "commits inside the window; NORM pays whole-cluster coordination per "
      "event",
      t, csv, camp.unfinished_runs);
  return 0;
}
