// Figure 8: number of resend operations to complete a restart (directed
// peer pairs that replayed data), HPL, modes GP / GP1 / GP4.
//
// Paper shape: GP1 most and most variable; GP and GP4 scale steadily and
// stay low.
#include "hpl_modes.hpp"

using namespace gcr;
using bench::Mode;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  bench::HplSweepOptions opt;
  opt.procs = cli.get_int_list("procs", opt.procs, "process counts");
  opt.reps = cli.get_reps(5);
  const bool csv = cli.get_bool("csv", false, "emit CSV");
  const int jobs = cli.get_jobs();
  cli.finish();

  const exp::Scenario sc = bench::hpl_scenario(
      "hpl/resend-ops", opt,
      [](int, Mode, const exp::ExperimentResult& res, exp::Collector& col) {
        col.add("ops", static_cast<double>(res.metrics.resend_ops));
        col.add("msgs", static_cast<double>(res.metrics.resend_messages));
      });
  const exp::CampaignResult camp = exp::run_campaign(sc, {jobs});
  auto stat = [&](std::size_t ni, Mode m, const char* metric) {
    return bench::cell_mean(
        camp.stat(sc.cell_index({ni, bench::mode_index(opt.modes, m)}),
                  metric),
        1);
  };

  Table t({"procs", "GP_ops", "GP1_ops", "GP4_ops", "GP_msgs", "GP1_msgs",
           "GP4_msgs"});
  for (std::size_t i = 0; i < opt.procs.size(); ++i) {
    t.add_row({Table::num(opt.procs[i]), stat(i, Mode::kGp, "ops"),
               stat(i, Mode::kGp1, "ops"), stat(i, Mode::kGp4, "ops"),
               stat(i, Mode::kGp, "msgs"), stat(i, Mode::kGp1, "msgs"),
               stat(i, Mode::kGp4, "msgs")});
  }
  bench::emit(
      "Figure 8 - resend operations on restart (HPL). Expect: GP1 most and "
      "most variable",
      t, csv, camp.unfinished_runs);
  return 0;
}
