// Figure 8: number of resend operations to complete a restart (directed
// peer pairs that replayed data), HPL, modes GP / GP1 / GP4.
//
// Paper shape: GP1 most and most variable; GP and GP4 scale steadily and
// stay low.
#include <map>

#include "hpl_modes.hpp"

using namespace gcr;
using bench::Mode;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  bench::HplSweepOptions opt;
  opt.procs = cli.get_int_list("procs", opt.procs, "process counts");
  opt.reps = static_cast<int>(cli.get_int("reps", 5, "repetitions"));
  const bool csv = cli.get_bool("csv", false, "emit CSV");
  cli.finish();

  std::map<std::pair<int, Mode>, RunningStats> ops;
  std::map<std::pair<int, Mode>, RunningStats> msgs;
  bench::sweep_hpl(opt, [&](int n, Mode m, const exp::ExperimentResult& res) {
    ops[{n, m}].add(static_cast<double>(res.metrics.resend_ops));
    msgs[{n, m}].add(static_cast<double>(res.metrics.resend_messages));
  });

  Table t({"procs", "GP_ops", "GP1_ops", "GP4_ops", "GP_msgs", "GP1_msgs",
           "GP4_msgs"});
  for (std::int64_t n64 : opt.procs) {
    const int n = static_cast<int>(n64);
    t.add_row({Table::num(static_cast<std::int64_t>(n)),
               Table::num(ops[{n, Mode::kGp}].mean(), 1),
               Table::num(ops[{n, Mode::kGp1}].mean(), 1),
               Table::num(ops[{n, Mode::kGp4}].mean(), 1),
               Table::num(msgs[{n, Mode::kGp}].mean(), 1),
               Table::num(msgs[{n, Mode::kGp1}].mean(), 1),
               Table::num(msgs[{n, Mode::kGp4}].mean(), 1)});
  }
  bench::emit(
      "Figure 8 - resend operations on restart (HPL). Expect: GP1 most and "
      "most variable",
      t, csv);
  return 0;
}
