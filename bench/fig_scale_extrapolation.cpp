// Scale extrapolation: the Figure 5/13 story pushed past the paper's
// 32-node Gideon cluster, on modeled fabrics the paper could only
// speculate about.
//
// One checkpoint round over a block-local stencil, swept across process
// counts x fabric topology (flat switch, fat-tree, dragonfly) x protocol
// mode. Expected shape: NORM's global coordination (all-to-all bookmarks,
// global drain + barrier) grows superlinearly with scale while GP's
// group-local coordination stays flat, so the NORM-GP gap widens with
// procs on every fabric — and widens faster on routed fabrics, where the
// bookmark storm also contends for shared uplinks.
//
// GP here uses the stencil's natural block grouping (make_blocks matching
// cluster_width) rather than trace-derived formation: profiling a 4k-rank
// trace is exactly the cost the paper's Algorithm 2 amortizes away, and
// for a block-local stencil the derived answer IS the block partition.
#include <algorithm>
#include <string>
#include <vector>

#include "apps/simple.hpp"
#include "bench_common.hpp"

using namespace gcr;
using bench::Mode;

namespace {

constexpr int kBlockWidth = 8;  ///< stencil locality = GP group width

exp::AppFactory make_app() {
  return [](int nranks) {
    apps::Stencil1dParams p;
    p.iterations = 40;
    p.halo_bytes = 32 * 1024;
    p.compute_s = 0.005;
    p.mem_bytes = 4 * 1024 * 1024;
    p.cluster_width = kBlockWidth;
    return apps::make_stencil1d(nranks, p);
  };
}

group::GroupSet groups_for_scale(Mode mode, int nranks) {
  switch (mode) {
    case Mode::kGp: return group::make_blocks(nranks, kBlockWidth);
    case Mode::kGp1: return group::make_gp1(nranks);
    case Mode::kGp4: return group::make_sequential(nranks, 4);
    case Mode::kNorm: return group::make_norm(nranks);
  }
  return group::make_norm(nranks);
}

Mode parse_mode(const std::string& name) {
  if (name == "GP") return Mode::kGp;
  if (name == "GP1") return Mode::kGp1;
  if (name == "GP4") return Mode::kGp4;
  if (name == "NORM") return Mode::kNorm;
  GCR_CHECK_MSG(false, "unknown mode (want GP, GP1, GP4, or NORM)");
  return Mode::kNorm;  // unreachable
}

std::vector<std::string> split_list(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == ',') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const std::vector<std::int64_t> procs =
      cli.get_int_list("procs", {128, 512, 1024}, "process counts");
  const std::string topo_arg = cli.get_string(
      "topologies", "flat,fattree,dragonfly", "fabric kinds (comma list)");
  const std::string mode_arg =
      cli.get_string("modes", "NORM,GP,GP1", "protocol modes (comma list)");
  const int reps = cli.get_reps(3);
  const bool csv = cli.get_bool("csv", false, "emit CSV");
  const int jobs = cli.get_jobs();
  const int shards = cli.get_shards();
  cli.finish();

  std::vector<sim::TopologyKind> topos;
  for (const std::string& t : split_list(topo_arg)) {
    topos.push_back(sim::parse_topology_kind(t));
  }
  std::vector<Mode> modes;
  for (const std::string& m : split_list(mode_arg)) {
    modes.push_back(parse_mode(m));
  }
  GCR_CHECK(!topos.empty() && !modes.empty());

  const exp::AppFactory app = make_app();

  exp::Scenario sc;
  sc.name = "scale/extrapolation";
  sc.axes = {exp::SweepAxis::ints("procs", procs), exp::topology_axis(topos),
             bench::mode_axis(modes)};
  sc.reps = reps;
  sc.config = [&](const exp::SweepPoint& point) {
    const int n = static_cast<int>(point.get_int("procs"));
    exp::ExperimentConfig config;
    config.app = app;
    config.nranks = n;
    config.seed = point.seed;
    config.groups = groups_for_scale(bench::mode_at(point), n);
    config.topology.kind = exp::topology_kind_at(point);
    // Adaptive (least-loaded) fat-tree uplinks: the bookmark storm is the
    // exact hotspot adaptive routing exists for. Dragonfly stays minimal.
    config.topology.fattree_routing = sim::FatTreeRouting::kAdaptive;
    // Group-resident shards: routed fabrics pass the residency gate, so
    // every topology in the sweep parallelizes (byte-identically) when
    // --shards > 1.
    config.shards = shards;
    config.checkpoints = true;
    config.schedule.first_at_s = 0.1;  // inside the ~0.4 s stencil run
    config.schedule.max_rounds = 1;
    // NORM's commit fan-out is O(n) control messages serialized at the
    // leader's NIC; past ~2k ranks it crosses more safe points than the
    // default margin of 2, so widen the target window with scale (while
    // keeping the target inside the stencil's 40 iterations).
    config.protocol_options.commit_margin = std::max(2, n / 256);
    return config;
  };
  sc.collect = [](const exp::SweepPoint&, const exp::ExperimentResult& res,
                  exp::Collector& col) {
    col.add("exec", res.exec_time_s);
    col.add("coord", res.metrics.mean_phases().coordination);
  };

  const exp::CampaignResult camp = exp::run_campaign(sc, {jobs});

  auto stat = [&](std::size_t pi, std::size_t ti, std::size_t mi,
                  const char* metric) -> const RunningStats& {
    return camp.stat(sc.cell_index({pi, ti, mi}), metric);
  };

  for (std::size_t ti = 0; ti < topos.size(); ++ti) {
    std::vector<std::string> headers = {"procs"};
    for (Mode m : modes) {
      headers.push_back(std::string(bench::mode_name(m)) + "_s");
    }
    for (Mode m : modes) {
      headers.push_back(std::string(bench::mode_name(m)) + "_coord_s");
    }
    Table t(headers);
    for (std::size_t pi = 0; pi < procs.size(); ++pi) {
      std::vector<std::string> row = {Table::num(procs[pi])};
      for (std::size_t mi = 0; mi < modes.size(); ++mi) {
        row.push_back(bench::cell_mean(stat(pi, ti, mi, "exec"), 2));
      }
      for (std::size_t mi = 0; mi < modes.size(); ++mi) {
        row.push_back(bench::cell_mean(stat(pi, ti, mi, "coord"), 4));
      }
      t.add_row(row);
    }
    bench::emit("Scale extrapolation - one checkpoint round, " +
                    std::string(sim::topology_kind_name(topos[ti])) +
                    " fabric. Expect: NORM coordination grows with procs, "
                    "GP stays flat",
                t, csv, camp.unfinished_runs);
  }
  return 0;
}
