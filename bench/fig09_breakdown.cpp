// Figure 9: average per-process checkpoint time broken into Lock MPI /
// Coordination / Checkpoint / Finalize, at 16 and 128 processes, all modes.
//
// Paper shapes: the image ("Checkpoint") phase is mode-independent and
// SHRINKS with scale (memory per process shrinks); NORM's coordination
// grows so much at 128 that it dominates; with a good grouping (GP) the
// overhead stays minimal.
#include <map>

#include "hpl_modes.hpp"

using namespace gcr;
using bench::Mode;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  bench::HplSweepOptions opt;
  opt.procs = cli.get_int_list("procs", {16, 128}, "process counts");
  opt.reps = static_cast<int>(cli.get_int("reps", 5, "repetitions"));
  const bool csv = cli.get_bool("csv", false, "emit CSV");
  cli.finish();
  opt.restart_after_finish = false;

  struct Acc {
    RunningStats lock, coord, img, fin;
  };
  std::map<std::pair<int, Mode>, Acc> acc;
  bench::sweep_hpl(opt, [&](int n, Mode m, const exp::ExperimentResult& res) {
    const core::PhaseTimes ph = res.metrics.mean_phases();
    Acc& a = acc[{n, m}];
    a.lock.add(ph.lock_mpi);
    a.coord.add(ph.coordination);
    a.img.add(ph.checkpoint);
    a.fin.add(ph.finalize);
  });

  Table t({"procs", "mode", "lock_mpi_s", "coordination_s", "checkpoint_s",
           "finalize_s", "total_s"});
  for (std::int64_t n64 : opt.procs) {
    const int n = static_cast<int>(n64);
    for (Mode m : {Mode::kGp, Mode::kGp1, Mode::kGp4, Mode::kNorm}) {
      const Acc& a = acc[{n, m}];
      const double total =
          a.lock.mean() + a.coord.mean() + a.img.mean() + a.fin.mean();
      t.add_row({Table::num(static_cast<std::int64_t>(n)),
                 bench::mode_name(m), Table::num(a.lock.mean(), 3),
                 Table::num(a.coord.mean(), 3), Table::num(a.img.mean(), 3),
                 Table::num(a.fin.mean(), 3), Table::num(total, 3)});
    }
  }
  bench::emit(
      "Figure 9 - checkpoint time breakdown. Expect: image phase equal "
      "across modes and smaller at 128; NORM coordination dominates at 128",
      t, csv);
  return 0;
}
