// Figure 9: average per-process checkpoint time broken into Lock MPI /
// Coordination / Checkpoint / Finalize, at 16 and 128 processes, all modes.
//
// Paper shapes: the image ("Checkpoint") phase is mode-independent and
// SHRINKS with scale (memory per process shrinks); NORM's coordination
// grows so much at 128 that it dominates; with a good grouping (GP) the
// overhead stays minimal.
#include "hpl_modes.hpp"

using namespace gcr;
using bench::Mode;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  bench::HplSweepOptions opt;
  opt.procs = cli.get_int_list("procs", {16, 128}, "process counts");
  opt.reps = cli.get_reps(5);
  const bool csv = cli.get_bool("csv", false, "emit CSV");
  const int jobs = cli.get_jobs();
  cli.finish();
  opt.restart_after_finish = false;

  const exp::Scenario sc = bench::hpl_scenario(
      "hpl/ckpt-breakdown", opt,
      [](int, Mode, const exp::ExperimentResult& res, exp::Collector& col) {
        const core::PhaseTimes ph = res.metrics.mean_phases();
        col.add("lock", ph.lock_mpi);
        col.add("coord", ph.coordination);
        col.add("img", ph.checkpoint);
        col.add("fin", ph.finalize);
      });
  const exp::CampaignResult camp = exp::run_campaign(sc, {jobs});

  Table t({"procs", "mode", "lock_mpi_s", "coordination_s", "checkpoint_s",
           "finalize_s", "total_s"});
  for (std::size_t i = 0; i < opt.procs.size(); ++i) {
    for (std::size_t mi = 0; mi < opt.modes.size(); ++mi) {
      const std::size_t cell = sc.cell_index({i, mi});
      const RunningStats& lock = camp.stat(cell, "lock");
      const RunningStats& coord = camp.stat(cell, "coord");
      const RunningStats& img = camp.stat(cell, "img");
      const RunningStats& fin = camp.stat(cell, "fin");
      const std::string total =
          lock.count() ? Table::num(lock.mean() + coord.mean() + img.mean() +
                                        fin.mean(),
                                    3)
                       : std::string("n/a");
      t.add_row({Table::num(opt.procs[i]), bench::mode_name(opt.modes[mi]),
                 bench::cell_mean(lock, 3), bench::cell_mean(coord, 3),
                 bench::cell_mean(img, 3), bench::cell_mean(fin, 3), total});
    }
  }
  bench::emit(
      "Figure 9 - checkpoint time breakdown. Expect: image phase equal "
      "across modes and smaller at 128; NORM coordination dominates at 128",
      t, csv, camp.unfinished_runs);
  return 0;
}
