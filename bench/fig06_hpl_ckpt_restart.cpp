// Figure 6: summed per-process checkpoint time (6a) and restart time (6b),
// HPL, 16-128 processes.
//
// Paper shapes: (6a) GP ~ GP1, flat with scale; GP4 above them; NORM high,
// rising, spiky. (6b) NORM lowest (no resends), GP slightly above, GP1
// highest and most variable (resends to everyone).
#include "hpl_modes.hpp"

using namespace gcr;
using bench::Mode;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  bench::HplSweepOptions opt;
  opt.procs = cli.get_int_list("procs", opt.procs, "process counts");
  opt.reps = cli.get_reps(5);
  const bool csv = cli.get_bool("csv", false, "emit CSV");
  const int jobs = cli.get_jobs();
  cli.finish();

  const exp::Scenario sc = bench::hpl_scenario(
      "hpl/ckpt-restart", opt,
      [](int, Mode, const exp::ExperimentResult& res, exp::Collector& col) {
        col.add("ckpt", res.metrics.aggregate_ckpt_time_s());
        col.add("restart", res.restart_aggregate_s);
      });
  const exp::CampaignResult camp = exp::run_campaign(sc, {jobs});
  auto stat = [&](std::size_t ni, Mode m, const char* metric) {
    return camp.stat(sc.cell_index({ni, bench::mode_index(opt.modes, m)}),
                     metric);
  };

  auto table_for = [&](const char* metric) {
    Table t({"procs", "GP_s", "GP1_s", "GP4_s", "NORM_s", "NORM_max_s"});
    for (std::size_t i = 0; i < opt.procs.size(); ++i) {
      t.add_row({Table::num(opt.procs[i]),
                 bench::cell_mean(stat(i, Mode::kGp, metric), 1),
                 bench::cell_mean(stat(i, Mode::kGp1, metric), 1),
                 bench::cell_mean(stat(i, Mode::kGp4, metric), 1),
                 bench::cell_mean(stat(i, Mode::kNorm, metric), 1),
                 bench::cell_max(stat(i, Mode::kNorm, metric), 1)});
    }
    return t;
  };

  bench::emit(
      "Figure 6a - summed checkpoint time (HPL). Expect: GP ~ GP1 flat; "
      "NORM rising and spiky",
      table_for("ckpt"), csv, camp.unfinished_runs);
  bench::emit(
      "Figure 6b - summed restart time (HPL). Expect: NORM lowest, GP "
      "slightly above, GP1 highest/variable",
      table_for("restart"), csv, camp.unfinished_runs);
  return 0;
}
