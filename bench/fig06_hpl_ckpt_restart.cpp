// Figure 6: summed per-process checkpoint time (6a) and restart time (6b),
// HPL, 16-128 processes.
//
// Paper shapes: (6a) GP ~ GP1, flat with scale; GP4 above them; NORM high,
// rising, spiky. (6b) NORM lowest (no resends), GP slightly above, GP1
// highest and most variable (resends to everyone).
#include <map>

#include "hpl_modes.hpp"

using namespace gcr;
using bench::Mode;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  bench::HplSweepOptions opt;
  opt.procs = cli.get_int_list("procs", opt.procs, "process counts");
  opt.reps = static_cast<int>(cli.get_int("reps", 5, "repetitions"));
  const bool csv = cli.get_bool("csv", false, "emit CSV");
  cli.finish();

  std::map<std::pair<int, Mode>, RunningStats> ckpt, restart;
  bench::sweep_hpl(opt, [&](int n, Mode m, const exp::ExperimentResult& res) {
    ckpt[{n, m}].add(res.metrics.aggregate_ckpt_time_s());
    restart[{n, m}].add(res.restart_aggregate_s);
  });

  auto table_for = [&](std::map<std::pair<int, Mode>, RunningStats>& data) {
    Table t({"procs", "GP_s", "GP1_s", "GP4_s", "NORM_s", "NORM_max_s"});
    for (std::int64_t n64 : opt.procs) {
      const int n = static_cast<int>(n64);
      t.add_row({Table::num(static_cast<std::int64_t>(n)),
                 Table::num(data[{n, Mode::kGp}].mean(), 1),
                 Table::num(data[{n, Mode::kGp1}].mean(), 1),
                 Table::num(data[{n, Mode::kGp4}].mean(), 1),
                 Table::num(data[{n, Mode::kNorm}].mean(), 1),
                 Table::num(data[{n, Mode::kNorm}].max(), 1)});
    }
    return t;
  };

  bench::emit(
      "Figure 6a - summed checkpoint time (HPL). Expect: GP ~ GP1 flat; "
      "NORM rising and spiky",
      table_for(ckpt), csv);
  bench::emit(
      "Figure 6b - summed restart time (HPL). Expect: NORM lowest, GP "
      "slightly above, GP1 highest/variable",
      table_for(restart), csv);
  return 0;
}
