// Figure 12: NPB SP Class C — summed checkpoint (12a) and restart (12b)
// times for square process counts 64, 81, 100, 121 (GP4 omitted, as in the
// paper: "not appropriate for SP's system size").
//
// Paper shapes: same story as CG — GP's checkpoint ~ GP1 and below NORM;
// GP's restart ~ NORM, GP1 higher and more variable.
#include <map>

#include "apps/sp.hpp"
#include "bench_common.hpp"

using namespace gcr;
using bench::Mode;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const auto procs = cli.get_int_list("procs", {64, 81, 100, 121}, "counts");
  const int reps = static_cast<int>(cli.get_int("reps", 3, "repetitions"));
  const bool csv = cli.get_bool("csv", false, "emit CSV");
  cli.finish();

  exp::AppFactory app = [](int nr) { return apps::make_sp(nr); };

  std::map<std::pair<int, Mode>, RunningStats> ckpt, restart;
  for (std::int64_t n64 : procs) {
    const int n = static_cast<int>(n64);
    for (Mode mode : {Mode::kGp, Mode::kGp1, Mode::kNorm}) {
      const group::GroupSet groups = bench::groups_for(mode, n, app);
      for (int rep = 1; rep <= reps; ++rep) {
        exp::ExperimentConfig cfg;
        cfg.app = app;
        cfg.nranks = n;
        cfg.seed = static_cast<std::uint64_t>(rep);
        cfg.groups = groups;
        cfg.checkpoints = true;
        cfg.schedule.first_at_s = 60.0;
        cfg.schedule.round_spread_s = 0.4;
        cfg.restart_after_finish = true;
        exp::ExperimentResult res = exp::run_experiment(cfg);
        ckpt[{n, mode}].add(res.metrics.aggregate_ckpt_time_s());
        restart[{n, mode}].add(res.restart_aggregate_s);
      }
    }
  }

  auto table_for = [&](std::map<std::pair<int, Mode>, RunningStats>& data) {
    Table t({"procs", "GP_s", "GP1_s", "NORM_s"});
    for (std::int64_t n64 : procs) {
      const int n = static_cast<int>(n64);
      t.add_row({Table::num(static_cast<std::int64_t>(n)),
                 Table::num(data[{n, Mode::kGp}].mean(), 1),
                 Table::num(data[{n, Mode::kGp1}].mean(), 1),
                 Table::num(data[{n, Mode::kNorm}].mean(), 1)});
    }
    return t;
  };
  bench::emit("Figure 12a - SP Class C summed checkpoint time", table_for(ckpt),
              csv);
  bench::emit("Figure 12b - SP Class C summed restart time", table_for(restart),
              csv);
  return 0;
}
