// Figure 12: NPB SP Class C — summed checkpoint (12a) and restart (12b)
// times for square process counts 64, 81, 100, 121 (GP4 omitted, as in the
// paper: "not appropriate for SP's system size").
//
// Paper shapes: same story as CG — GP's checkpoint ~ GP1 and below NORM;
// GP's restart ~ NORM, GP1 higher and more variable.
#include "apps/sp.hpp"
#include "bench_common.hpp"

using namespace gcr;
using bench::Mode;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const auto procs = cli.get_int_list("procs", {64, 81, 100, 121}, "counts");
  const int reps = cli.get_reps(3);
  const bool csv = cli.get_bool("csv", false, "emit CSV");
  const int jobs = cli.get_jobs();
  cli.finish();

  exp::AppFactory app = [](int nr) { return apps::make_sp(nr); };
  auto cache = std::make_shared<bench::GroupCache>(app);
  const std::vector<Mode> modes{Mode::kGp, Mode::kGp1, Mode::kNorm};

  exp::Scenario sc;
  sc.name = "sp/ckpt-restart";
  sc.axes = {exp::SweepAxis::ints("procs", procs), bench::mode_axis(modes)};
  sc.reps = reps;
  sc.config = [app, cache](const exp::SweepPoint& point) {
    exp::ExperimentConfig cfg;
    cfg.app = app;
    cfg.nranks = static_cast<int>(point.get_int("procs"));
    cfg.seed = point.seed;
    cfg.groups = cache->get(bench::mode_at(point), cfg.nranks);
    cfg.checkpoints = true;
    cfg.schedule.first_at_s = 60.0;
    cfg.schedule.round_spread_s = 0.4;
    cfg.restart_after_finish = true;
    return cfg;
  };
  sc.collect = [](const exp::SweepPoint&, const exp::ExperimentResult& res,
                  exp::Collector& col) {
    col.add("ckpt", res.metrics.aggregate_ckpt_time_s());
    col.add("restart", res.restart_aggregate_s);
  };
  const exp::CampaignResult camp = exp::run_campaign(sc, {jobs});

  auto table_for = [&](const char* metric) {
    Table t({"procs", "GP_s", "GP1_s", "NORM_s"});
    for (std::size_t i = 0; i < procs.size(); ++i) {
      std::vector<std::string> row{Table::num(procs[i])};
      for (std::size_t mi = 0; mi < modes.size(); ++mi) {
        row.push_back(
            bench::cell_mean(camp.stat(sc.cell_index({i, mi}), metric), 1));
      }
      t.add_row(row);
    }
    return t;
  };
  bench::emit("Figure 12a - SP Class C summed checkpoint time",
              table_for("ckpt"), csv, camp.unfinished_runs);
  bench::emit("Figure 12b - SP Class C summed restart time",
              table_for("restart"), csv, camp.unfinished_runs);
  return 0;
}
