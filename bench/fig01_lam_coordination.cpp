// Figure 1: checkpoint coordination time in HPL with LAM/MPI.
//
// Paper: the aggregate (summed over processes) time spent coordinating ONE
// global checkpoint, excluding the image write, for HPL runs of 12..68
// processes. Shape to reproduce: gradual growth with process count, with
// large spikes at some scales caused by unexpected per-node delays.
#include "apps/hpl.hpp"
#include "bench_common.hpp"

using namespace gcr;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const auto procs = cli.get_int_list(
      "procs", {12, 16, 20, 24, 28, 32, 36, 40, 44, 48, 52, 56, 60, 64, 68},
      "process counts");
  const int reps = static_cast<int>(cli.get_int("reps", 5, "repetitions"));
  const bool csv = cli.get_bool("csv", false, "emit CSV");
  cli.finish();

  Table table({"procs", "aggregate_coordination_s(mean)", "min", "max"});
  for (std::int64_t n64 : procs) {
    const int n = static_cast<int>(n64);
    exp::AppFactory app = [](int nr) { return apps::make_hpl(nr); };
    RunningStats agg = bench::over_seeds(reps, [&](std::uint64_t seed) {
      exp::ExperimentConfig cfg;
      cfg.app = app;
      cfg.nranks = n;
      cfg.seed = seed;
      cfg.groups = group::make_norm(n);  // LAM/MPI: one global group
      cfg.checkpoints = true;
      cfg.schedule.first_at_s = 60.0;
      exp::ExperimentResult res = exp::run_experiment(cfg);
      return res.metrics.aggregate_coordination_time_s();
    });
    table.add_row({Table::num(static_cast<std::int64_t>(n)),
                   Table::num(agg.mean(), 1), Table::num(agg.min(), 1),
                   Table::num(agg.max(), 1)});
  }
  bench::emit(
      "Figure 1 - aggregate coordination time of one global checkpoint "
      "(HPL, NORM). Expect: growth with n, spiky (OS stragglers)",
      table, csv);
  return 0;
}
