// Figure 1: checkpoint coordination time in HPL with LAM/MPI.
//
// Paper: the aggregate (summed over processes) time spent coordinating ONE
// global checkpoint, excluding the image write, for HPL runs of 12..68
// processes. Shape to reproduce: gradual growth with process count, with
// large spikes at some scales caused by unexpected per-node delays.
#include "apps/hpl.hpp"
#include "bench_common.hpp"

using namespace gcr;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const auto procs = cli.get_int_list(
      "procs", {12, 16, 20, 24, 28, 32, 36, 40, 44, 48, 52, 56, 60, 64, 68},
      "process counts");
  const int reps = cli.get_reps(5);
  const bool csv = cli.get_bool("csv", false, "emit CSV");
  const int jobs = cli.get_jobs();
  cli.finish();

  exp::Scenario sc;
  sc.name = "hpl/lam-coordination";
  sc.axes = {exp::SweepAxis::ints("procs", procs)};
  sc.reps = reps;
  sc.config = [](const exp::SweepPoint& point) {
    exp::ExperimentConfig cfg;
    cfg.app = [](int nr) { return apps::make_hpl(nr); };
    cfg.nranks = static_cast<int>(point.get_int("procs"));
    cfg.seed = point.seed;
    cfg.groups = group::make_norm(cfg.nranks);  // LAM/MPI: one global group
    cfg.checkpoints = true;
    cfg.schedule.first_at_s = 60.0;
    return cfg;
  };
  sc.collect = [](const exp::SweepPoint&, const exp::ExperimentResult& res,
                  exp::Collector& col) {
    col.add("coord", res.metrics.aggregate_coordination_time_s());
  };
  const exp::CampaignResult camp = exp::run_campaign(sc, {jobs});

  Table table({"procs", "aggregate_coordination_s(mean)", "min", "max"});
  for (std::size_t i = 0; i < procs.size(); ++i) {
    const RunningStats& agg = camp.stat(i, "coord");
    table.add_row({Table::num(procs[i]), bench::cell_mean(agg, 1),
                   bench::cell_min(agg, 1), bench::cell_max(agg, 1)});
  }
  bench::emit(
      "Figure 1 - aggregate coordination time of one global checkpoint "
      "(HPL, NORM). Expect: growth with n, spiky (OS stragglers)",
      table, csv, camp.unfinished_runs);
  return 0;
}
