// Table 1: group formation for HPL, 32 processes (P x Q = 8 x 4).
//
// Paper: trace analysis yields Q=4 groups of P=8 ranks each, in round-robin
// rank order: {0,4,8,...,28}, {1,5,...,29}, {2,6,...,30}, {3,7,...,31} —
// matching the process grid's columns.
//
// One derivation, no sweep — but it still runs as a (single-job) campaign
// so the whole bench layer shares one declarative entry point.
#include "apps/hpl.hpp"
#include "bench_common.hpp"
#include "group/groupfile.hpp"

using namespace gcr;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const int n = static_cast<int>(cli.get_int("procs", 32, "process count"));
  const int max_size =
      static_cast<int>(cli.get_int("max-group-size", 8, "G (paper: P=8)"));
  const bool csv = cli.get_bool("csv", false, "emit CSV");
  const int jobs = cli.get_jobs();
  cli.finish();

  exp::Scenario sc;
  sc.name = "hpl/group-formation";
  sc.reps = 1;
  sc.job = [n, max_size](const exp::SweepPoint&, exp::Collector& col) {
    exp::AppFactory app = [](int nr) { return apps::make_hpl(nr); };
    const group::GroupSet groups = exp::derive_groups(app, n, max_size);
    for (int g = 0; g < groups.num_groups(); ++g) {
      std::string ranks;
      for (mpi::RankId r : groups.members(g)) {
        if (!ranks.empty()) ranks += ", ";
        ranks += std::to_string(r);
      }
      col.add_text(std::move(ranks));
    }
    const group::GroupSet expected =
        group::make_round_robin(n, n / max_size);
    col.add("match", groups == expected ? 1.0 : 0.0);
  };
  const exp::CampaignResult camp = exp::run_campaign(sc, {jobs});

  Table table({"group", "process ranks"});
  const auto& texts = camp.cells[0].texts;
  for (std::size_t g = 0; g < texts.size(); ++g) {
    table.add_row({Table::num(static_cast<std::int64_t>(g + 1)), texts[g]});
  }
  bench::emit("Table 1 - trace-assisted group formation for HPL " +
                  std::to_string(n) + " procs. Expect: Q groups of P ranks, "
                  "round-robin (grid columns)",
              table, csv);

  const bool match = camp.stat(0, "match").mean() == 1.0;
  std::printf("matches paper's round-robin grouping: %s\n",
              match ? "YES" : "no");
  return match ? 0 : 1;
}
