// Figure 11: NPB CG Class C — summed checkpoint (11a) and restart (11b)
// times for 16..128 processes (powers of two; GP4 included as in the paper).
//
// Paper shapes: like HPL — GP's checkpoint cost ~ GP1's and far below NORM;
// GP's restart ~ NORM's and less variable than GP1's.
#include "apps/cg.hpp"
#include "bench_common.hpp"

using namespace gcr;
using bench::Mode;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const auto procs = cli.get_int_list("procs", {16, 32, 64, 128}, "counts");
  const int reps = cli.get_reps(3);
  const bool csv = cli.get_bool("csv", false, "emit CSV");
  const int jobs = cli.get_jobs();
  cli.finish();

  exp::AppFactory app = [](int nr) { return apps::make_cg(nr); };
  auto cache = std::make_shared<bench::GroupCache>(app);
  const std::vector<Mode> modes{Mode::kGp, Mode::kGp1, Mode::kGp4,
                                Mode::kNorm};

  exp::Scenario sc;
  sc.name = "cg/ckpt-restart";
  sc.axes = {exp::SweepAxis::ints("procs", procs), bench::mode_axis(modes)};
  sc.reps = reps;
  sc.config = [app, cache](const exp::SweepPoint& point) {
    exp::ExperimentConfig cfg;
    cfg.app = app;
    cfg.nranks = static_cast<int>(point.get_int("procs"));
    cfg.seed = point.seed;
    cfg.groups = cache->get(bench::mode_at(point), cfg.nranks);
    cfg.checkpoints = true;
    cfg.schedule.first_at_s = 60.0;
    cfg.schedule.round_spread_s = 0.4;
    cfg.restart_after_finish = true;
    return cfg;
  };
  sc.collect = [](const exp::SweepPoint&, const exp::ExperimentResult& res,
                  exp::Collector& col) {
    col.add("ckpt", res.metrics.aggregate_ckpt_time_s());
    col.add("restart", res.restart_aggregate_s);
  };
  const exp::CampaignResult camp = exp::run_campaign(sc, {jobs});

  auto table_for = [&](const char* metric) {
    Table t({"procs", "GP_s", "GP1_s", "GP4_s", "NORM_s"});
    for (std::size_t i = 0; i < procs.size(); ++i) {
      std::vector<std::string> row{Table::num(procs[i])};
      for (std::size_t mi = 0; mi < modes.size(); ++mi) {
        row.push_back(
            bench::cell_mean(camp.stat(sc.cell_index({i, mi}), metric), 1));
      }
      t.add_row(row);
    }
    return t;
  };
  bench::emit("Figure 11a - CG Class C summed checkpoint time. Expect: GP ~ "
              "GP1 << NORM at scale",
              table_for("ckpt"), csv, camp.unfinished_runs);
  bench::emit("Figure 11b - CG Class C summed restart time. Expect: GP ~ "
              "NORM, GP1 above",
              table_for("restart"), csv, camp.unfinished_runs);
  return 0;
}
