// Figure 11: NPB CG Class C — summed checkpoint (11a) and restart (11b)
// times for 16..128 processes (powers of two; GP4 included as in the paper).
//
// Paper shapes: like HPL — GP's checkpoint cost ~ GP1's and far below NORM;
// GP's restart ~ NORM's and less variable than GP1's.
#include <map>

#include "apps/cg.hpp"
#include "bench_common.hpp"

using namespace gcr;
using bench::Mode;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const auto procs = cli.get_int_list("procs", {16, 32, 64, 128}, "counts");
  const int reps = static_cast<int>(cli.get_int("reps", 3, "repetitions"));
  const bool csv = cli.get_bool("csv", false, "emit CSV");
  cli.finish();

  exp::AppFactory app = [](int nr) { return apps::make_cg(nr); };

  std::map<std::pair<int, Mode>, RunningStats> ckpt, restart;
  for (std::int64_t n64 : procs) {
    const int n = static_cast<int>(n64);
    for (Mode mode : {Mode::kGp, Mode::kGp1, Mode::kGp4, Mode::kNorm}) {
      const group::GroupSet groups = bench::groups_for(mode, n, app);
      for (int rep = 1; rep <= reps; ++rep) {
        exp::ExperimentConfig cfg;
        cfg.app = app;
        cfg.nranks = n;
        cfg.seed = static_cast<std::uint64_t>(rep);
        cfg.groups = groups;
        cfg.checkpoints = true;
        cfg.schedule.first_at_s = 60.0;
        cfg.schedule.round_spread_s = 0.4;
        cfg.restart_after_finish = true;
        exp::ExperimentResult res = exp::run_experiment(cfg);
        ckpt[{n, mode}].add(res.metrics.aggregate_ckpt_time_s());
        restart[{n, mode}].add(res.restart_aggregate_s);
      }
    }
  }

  auto table_for = [&](std::map<std::pair<int, Mode>, RunningStats>& data) {
    Table t({"procs", "GP_s", "GP1_s", "GP4_s", "NORM_s"});
    for (std::int64_t n64 : procs) {
      const int n = static_cast<int>(n64);
      t.add_row({Table::num(static_cast<std::int64_t>(n)),
                 Table::num(data[{n, Mode::kGp}].mean(), 1),
                 Table::num(data[{n, Mode::kGp1}].mean(), 1),
                 Table::num(data[{n, Mode::kGp4}].mean(), 1),
                 Table::num(data[{n, Mode::kNorm}].mean(), 1)});
    }
    return t;
  };
  bench::emit("Figure 11a - CG Class C summed checkpoint time. Expect: GP ~ "
              "GP1 << NORM at scale",
              table_for(ckpt), csv);
  bench::emit("Figure 11b - CG Class C summed restart time. Expect: GP ~ "
              "NORM, GP1 above",
              table_for(restart), csv);
  return 0;
}
