// Figure 13: effect of scale with remote checkpoint storage — GP vs
// MPICH-VCL, CG Class C, 16..128 processes, equal checkpoint counts.
//
// Paper: VCL checkpoints every 120 s; GP is forced to the same NUMBER of
// checkpoints (their execution times differ). Expect: GP's total execution
// time clearly below VCL's, with the gap growing with scale.
//
// Each (procs, seed) job chains three runs — VCL, a GP probe without
// checkpoints, then the fairness-matched GP run — so it uses the campaign's
// `job` hook instead of the one-config path.
#include <algorithm>

#include "apps/cg.hpp"
#include "bench_common.hpp"

using namespace gcr;
using bench::Mode;

namespace {

exp::ExperimentConfig make_config(const exp::AppFactory& app, int n,
                                  bool use_vcl,
                                  const std::optional<group::GroupSet>& groups,
                                  double first_at, double interval,
                                  int max_rounds, std::uint64_t seed,
                                  int shards) {
  exp::ExperimentConfig cfg;
  cfg.app = app;
  cfg.nranks = n;
  cfg.seed = seed;
  cfg.shards = shards;
  cfg.remote_storage = true;  // 4 shared checkpoint servers
  cfg.checkpoints = true;
  cfg.schedule.first_at_s = first_at;
  cfg.schedule.interval_s = interval;
  cfg.schedule.max_rounds = max_rounds;
  if (use_vcl) {
    cfg.protocol = exp::ProtocolKind::kVcl;
  } else {
    cfg.groups = groups;
    cfg.schedule.round_spread_s = 0.4;
  }
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const auto procs = cli.get_int_list("procs", {16, 32, 64, 128}, "counts");
  const double vcl_interval =
      cli.get_double("interval", 120.0, "VCL ckpt period (s)");
  const int reps = cli.get_reps(3);
  const bool csv = cli.get_bool("csv", false, "emit CSV");
  const int jobs = cli.get_jobs();
  const int shards = cli.get_shards();
  cli.finish();

  exp::AppFactory app = [](int nr) { return apps::make_cg(nr); };
  auto cache = std::make_shared<bench::GroupCache>(app);

  exp::Scenario sc;
  sc.name = "cg/scale-vcl";
  sc.axes = {exp::SweepAxis::ints("procs", procs)};
  sc.reps = reps;
  sc.job = [app, cache, vcl_interval, shards](const exp::SweepPoint& point,
                                              exp::Collector& col) {
    const int n = static_cast<int>(point.get_int("procs"));
    const group::GroupSet& gp_groups = cache->get(Mode::kGp, n);
    const exp::ExperimentResult vcl =
        col.run(make_config(app, n, /*use_vcl=*/true, std::nullopt,
                            vcl_interval, vcl_interval, 0, point.seed, shards));
    // A watchdog-tripped run reports an abort horizon, not an execution
    // time, and poisons the fairness chain derived from it — drop the
    // whole (n, seed) job (no samples at all, so the GP and VCL columns
    // always average over the same seeds), matching the runner's
    // config-path behavior.
    if (!vcl.finished) return;
    // Force GP to the same checkpoint count by adapting the interval to
    // ITS expected execution time and capping the rounds (the paper's
    // fairness rule: "GP is then forced to take the same number of
    // checkpoints by using a different checkpoint interval").
    const int target = std::max(1, vcl.checkpoints_completed);
    const exp::ExperimentResult gp_probe =
        col.run(make_config(app, n, false, gp_groups, 1e9, 0, 0, point.seed,
                            shards));  // no ckpts
    if (!gp_probe.finished) return;
    const double gp_interval =
        gp_probe.exec_time_s / static_cast<double>(target + 1);
    const exp::ExperimentResult gp =
        col.run(make_config(app, n, false, gp_groups, gp_interval,
                            gp_interval, target, point.seed, shards));
    if (!gp.finished) return;
    col.add("vcl_exec", vcl.exec_time_s);
    col.add("vcl_ckpts", vcl.checkpoints_completed);
    col.add("gp_exec", gp.exec_time_s);
    col.add("gp_ckpts", gp.checkpoints_completed);
  };
  const exp::CampaignResult camp = exp::run_campaign(sc, {jobs});

  Table t({"procs", "GP_exec_s", "GP_ckpts", "VCL_exec_s", "VCL_ckpts"});
  for (std::size_t i = 0; i < procs.size(); ++i) {
    t.add_row({Table::num(procs[i]),
               bench::cell_mean(camp.stat(i, "gp_exec"), 1),
               bench::cell_mean(camp.stat(i, "gp_ckpts"), 1),
               bench::cell_mean(camp.stat(i, "vcl_exec"), 1),
               bench::cell_mean(camp.stat(i, "vcl_ckpts"), 1)});
  }
  bench::emit(
      "Figure 13 - GP vs MPICH-VCL at scale (CG Class C, remote storage, "
      "equal checkpoint counts). Expect: GP's edge grows with scale",
      t, csv, camp.unfinished_runs);
  return 0;
}
