// Figure 13: effect of scale with remote checkpoint storage — GP vs
// MPICH-VCL, CG Class C, 16..128 processes, equal checkpoint counts.
//
// Paper: VCL checkpoints every 120 s; GP is forced to the same NUMBER of
// checkpoints (their execution times differ). Expect: GP's total execution
// time clearly below VCL's, with the gap growing with scale.
#include <map>

#include "apps/cg.hpp"
#include "bench_common.hpp"

using namespace gcr;
using bench::Mode;

namespace {

exp::ExperimentResult run_once(const exp::AppFactory& app, int n,
                               bool use_vcl,
                               const std::optional<group::GroupSet>& groups,
                               double first_at, double interval,
                               int max_rounds, std::uint64_t seed) {
  exp::ExperimentConfig cfg;
  cfg.app = app;
  cfg.nranks = n;
  cfg.seed = seed;
  cfg.remote_storage = true;  // 4 shared checkpoint servers
  cfg.checkpoints = true;
  cfg.schedule.first_at_s = first_at;
  cfg.schedule.interval_s = interval;
  cfg.schedule.max_rounds = max_rounds;
  if (use_vcl) {
    cfg.protocol = exp::ProtocolKind::kVcl;
  } else {
    cfg.groups = groups;
    cfg.schedule.round_spread_s = 0.4;
  }
  return exp::run_experiment(cfg);
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const auto procs = cli.get_int_list("procs", {16, 32, 64, 128}, "counts");
  const double vcl_interval =
      cli.get_double("interval", 120.0, "VCL ckpt period (s)");
  const int reps = static_cast<int>(cli.get_int("reps", 3, "repetitions"));
  const bool csv = cli.get_bool("csv", false, "emit CSV");
  cli.finish();

  exp::AppFactory app = [](int nr) { return apps::make_cg(nr); };

  Table t({"procs", "GP_exec_s", "GP_ckpts", "VCL_exec_s", "VCL_ckpts"});
  for (std::int64_t n64 : procs) {
    const int n = static_cast<int>(n64);
    const group::GroupSet gp_groups = bench::groups_for(Mode::kGp, n, app);
    RunningStats gp_exec, vcl_exec, gp_ckpts, vcl_ckpts;
    for (int rep = 1; rep <= reps; ++rep) {
      const auto seed = static_cast<std::uint64_t>(rep);
      exp::ExperimentResult vcl = run_once(app, n, /*use_vcl=*/true,
                                           std::nullopt, vcl_interval,
                                           vcl_interval, 0, seed);
      vcl_exec.add(vcl.exec_time_s);
      vcl_ckpts.add(vcl.checkpoints_completed);
      // Force GP to the same checkpoint count by adapting the interval to
      // ITS expected execution time and capping the rounds (the paper's
      // fairness rule: "GP is then forced to take the same number of
      // checkpoints by using a different checkpoint interval").
      const int target = std::max(1, vcl.checkpoints_completed);
      exp::ExperimentResult gp_probe = run_once(app, n, false, gp_groups,
                                                1e9, 0, 0, seed);  // no ckpts
      const double gp_interval =
          gp_probe.exec_time_s / static_cast<double>(target + 1);
      exp::ExperimentResult gp = run_once(app, n, false, gp_groups,
                                          gp_interval, gp_interval, target,
                                          seed);
      gp_exec.add(gp.exec_time_s);
      gp_ckpts.add(gp.checkpoints_completed);
    }
    t.add_row({Table::num(static_cast<std::int64_t>(n)),
               Table::num(gp_exec.mean(), 1), Table::num(gp_ckpts.mean(), 1),
               Table::num(vcl_exec.mean(), 1),
               Table::num(vcl_ckpts.mean(), 1)});
  }
  bench::emit(
      "Figure 13 - GP vs MPICH-VCL at scale (CG Class C, remote storage, "
      "equal checkpoint counts). Expect: GP's edge grows with scale",
      t, csv);
  return 0;
}
