// Ablation: checkpoint storage tiers — direct device vs burst buffer vs
// burst buffer + async drain (DESIGN.md §13), across grouping modes.
//
// NORM/GP/GP1 × direct-PFS/bb/drain on the HPL workload with periodic
// checkpoints and one injected mid-run group failure, so every cell
// exercises the full write path (stage → commit → write-behind) AND the
// restore path (the failed group's ranks read from the fastest tier still
// holding their committed image — the killed nodes' staging buffers are
// lost, so tier modes restore from the burst buffer). "direct" writes
// every image straight into one PFS-speed shared device (fair-share,
// stripe-width concurrency); the tier modes put the burst buffer in front
// of that same PFS.
//
// Expected shape: burst-buffer commits cut the checkpoint (image-write)
// phase well below the direct-device time — the paper's storage-funnel
// bottleneck — while the drain mode keeps that gain and adds PFS
// durability in the background; restores in tier modes are served at
// burst-buffer speed instead of the slow shared device.
#include "bench_common.hpp"
#include "hpl_modes.hpp"

using namespace gcr;
using bench::Mode;

namespace {

exp::StorageConfig storage_config(ckpt::StorageMode mode, double bb_mbps,
                                  double pfs_mbps, double capacity_mb) {
  exp::StorageConfig s;
  s.mode = mode;
  s.burst_buffer_Bps = bb_mbps * 1e6;
  s.pfs_Bps = pfs_mbps * 1e6;
  s.burst_buffer_capacity_bytes = capacity_mb * 1e6;
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const int procs =
      static_cast<int>(cli.get_int("procs", 16, "process count"));
  const int reps = cli.get_reps(3);
  const bool csv = cli.get_bool("csv", false, "emit CSV");
  const int jobs = cli.get_jobs();
  const int shards = cli.get_shards();
  const double ckpt_first = cli.get_double("first-at", 60.0, "first ckpt (s)");
  const double ckpt_every = cli.get_double("interval", 120.0, "ckpt period (s)");
  const double fail_at = cli.get_double("fail-at", 200.0,
                                        "group-0 failure time (s; <=0 = none)");
  const double bb_mbps = cli.get_double("bb-mbps", 400.0,
                                        "burst-buffer ingest (MB/s)");
  const double pfs_mbps = cli.get_double("pfs-mbps", 50.0,
                                         "PFS drain bandwidth (MB/s)");
  const double capacity_mb = cli.get_double(
      "bb-capacity-mb", 8000.0, "aggregate burst-buffer capacity (MB)");
  cli.finish();

  const std::vector<Mode> modes{Mode::kNorm, Mode::kGp, Mode::kGp1};
  const std::vector<ckpt::StorageMode> storages{
      ckpt::StorageMode::kDirect, ckpt::StorageMode::kBurstBuffer,
      ckpt::StorageMode::kDrain};

  apps::HplParams hpl;
  exp::AppFactory app = [hpl](int nr) { return apps::make_hpl(nr, hpl); };
  auto cache = std::make_shared<bench::GroupCache>(app, hpl.grid_rows);

  exp::Scenario sc;
  sc.name = "ablation/storage-tiers";
  sc.axes = {bench::mode_axis(modes), exp::storage_mode_axis(storages)};
  sc.reps = reps;
  sc.config = [&](const exp::SweepPoint& point) {
    exp::ExperimentConfig cfg;
    cfg.app = app;
    cfg.nranks = procs;
    cfg.seed = point.seed;
    cfg.groups = cache->get(bench::mode_at(point), procs);
    cfg.checkpoints = true;
    cfg.schedule.first_at_s = ckpt_first;
    cfg.schedule.interval_s = ckpt_every;
    cfg.schedule.round_spread_s = 0.4;
    // Tier modes pass the residency gate (the home arbiter is reached over
    // the ±L control edge); the direct cell stays remote-storage-bound and
    // is demoted to one shard — loudly, and surfaced in the result.
    cfg.shards = shards;
    const ckpt::StorageMode storage = exp::storage_mode_at(point);
    cfg.storage = storage_config(storage, bb_mbps, pfs_mbps, capacity_mb);
    if (storage == ckpt::StorageMode::kDirect) {
      // Direct-PFS: every image funnels straight into one shared device at
      // PFS speed with fair-share contention — the storage bottleneck the
      // tier modes are built to absorb.
      cfg.remote_storage = true;
      cfg.remote_servers = 1;
      cfg.remote_bandwidth_Bps = pfs_mbps * 1e6;
      cfg.storage.direct_concurrency = cfg.storage.pfs_concurrency;
    }
    if (fail_at > 0) cfg.failures.push_back({/*group=*/0, /*at_s=*/fail_at});
    return cfg;
  };
  sc.collect = [](const exp::SweepPoint&, const exp::ExperimentResult& res,
                  exp::Collector& col) {
    col.add("exec", res.exec_time_s);
    double image_s = 0;
    for (const auto& rec : res.metrics.ckpts) image_s += rec.phases.checkpoint;
    col.add("image_s",
            res.metrics.ckpts.empty()
                ? 0.0
                : image_s / static_cast<double>(res.metrics.ckpts.size()));
    double restore_s = 0;
    for (const auto& rec : res.metrics.restarts) {
      restore_s += sim::to_seconds(rec.end - rec.begin);
    }
    col.add("restore_s",
            res.metrics.restarts.empty()
                ? 0.0
                : restore_s / static_cast<double>(res.metrics.restarts.size()));
    col.add("drains", static_cast<double>(res.tier_stats.drains_completed));
    col.add("evictions", static_cast<double>(res.tier_stats.evictions));
    col.add("reads_bb", static_cast<double>(res.tier_stats.reads_bb));
    col.add("reads_pfs", static_cast<double>(res.tier_stats.reads_pfs));
    col.add("bb_peak_mb", res.tier_stats.bb_bytes_peak / 1e6);
  };

  const exp::CampaignResult camp = exp::run_campaign(sc, {jobs});

  Table t({"mode", "storage", "exec_s", "image_s", "restore_s", "drains",
           "evict", "reads_bb", "reads_pfs", "bb_peak_MB"});
  for (std::size_t mi = 0; mi < modes.size(); ++mi) {
    for (std::size_t si = 0; si < storages.size(); ++si) {
      const std::size_t cell = sc.cell_index({mi, si});
      t.add_row({bench::mode_name(modes[mi]),
                 ckpt::storage_mode_name(storages[si]),
                 bench::cell_mean(camp.stat(cell, "exec"), 1),
                 bench::cell_mean(camp.stat(cell, "image_s"), 2),
                 bench::cell_mean(camp.stat(cell, "restore_s"), 2),
                 bench::cell_mean(camp.stat(cell, "drains"), 1),
                 bench::cell_mean(camp.stat(cell, "evictions"), 1),
                 bench::cell_mean(camp.stat(cell, "reads_bb"), 1),
                 bench::cell_mean(camp.stat(cell, "reads_pfs"), 1),
                 bench::cell_mean(camp.stat(cell, "bb_peak_mb"), 0)});
    }
  }
  bench::emit(
      "Ablation - checkpoint storage tiers (direct vs burst buffer vs "
      "bb+drain). Expect: tier modes cut the image phase and serve "
      "post-failure restores from the burst buffer",
      t, csv, camp.unfinished_runs);
  return 0;
}
