// Ablation A3: throughput under failures vs checkpoint interval — the
// paper's motivation in one experiment ("the proposed solution ... performs
// more checkpoints within the execution ... reducing work loss due to
// rollback recovery").
//
// One group fails mid-run; we sweep the checkpoint interval and compare
// total time-to-completion for GP vs NORM. Frequent NORM checkpoints cost
// global coordination; frequent GP checkpoints are cheap, so GP tolerates a
// short interval (small work loss) without slowing down.
#include <map>

#include "apps/hpl.hpp"
#include "bench_common.hpp"

using namespace gcr;
using bench::Mode;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const int n = static_cast<int>(cli.get_int("procs", 32, "process count"));
  const auto intervals =
      cli.get_int_list("intervals", {15, 30, 60, 120}, "ckpt periods (s)");
  const double fail_at = cli.get_double("fail-at", 130.0, "failure time (s)");
  const int reps = static_cast<int>(cli.get_int("reps", 3, "repetitions"));
  const bool csv = cli.get_bool("csv", false, "emit CSV");
  cli.finish();

  apps::HplParams hpl;
  exp::AppFactory app = [hpl](int nr) { return apps::make_hpl(nr, hpl); };
  const group::GroupSet gp_groups =
      bench::groups_for(Mode::kGp, n, app, hpl.grid_rows);

  Table t({"interval_s", "GP_exec_s", "GP_ckpts", "NORM_exec_s",
           "NORM_ckpts"});
  for (std::int64_t interval : intervals) {
    std::map<Mode, RunningStats> exec, counts;
    for (Mode mode : {Mode::kGp, Mode::kNorm}) {
      for (int rep = 1; rep <= reps; ++rep) {
        exp::ExperimentConfig cfg;
        cfg.app = app;
        cfg.nranks = n;
        cfg.seed = static_cast<std::uint64_t>(rep);
        cfg.groups = mode == Mode::kGp ? gp_groups : group::make_norm(n);
        cfg.checkpoints = true;
        cfg.schedule.first_at_s = static_cast<double>(interval);
        cfg.schedule.interval_s = static_cast<double>(interval);
        cfg.schedule.round_spread_s = 0.4;
        cfg.failures = {{0, fail_at}};
        exp::ExperimentResult res = exp::run_experiment(cfg);
        exec[mode].add(res.exec_time_s);
        counts[mode].add(res.checkpoints_completed);
      }
    }
    t.add_row({Table::num(interval), Table::num(exec[Mode::kGp].mean(), 1),
               Table::num(counts[Mode::kGp].mean(), 1),
               Table::num(exec[Mode::kNorm].mean(), 1),
               Table::num(counts[Mode::kNorm].mean(), 1)});
  }
  bench::emit(
      "Ablation A3 - time-to-completion with one mid-run group failure vs "
      "checkpoint interval (HPL). Expect: GP benefits from short intervals "
      "(cheap checkpoints, less lost work); NORM pays for them",
      t, csv);
  return 0;
}
