// Ablation A3: throughput under failures vs checkpoint interval — the
// paper's motivation in one experiment ("the proposed solution ... performs
// more checkpoints within the execution ... reducing work loss due to
// rollback recovery").
//
// One group fails mid-run; we sweep the checkpoint interval and compare
// total time-to-completion for GP vs NORM. Frequent NORM checkpoints cost
// global coordination; frequent GP checkpoints are cheap, so GP tolerates a
// short interval (small work loss) without slowing down.
#include "apps/hpl.hpp"
#include "bench_common.hpp"

using namespace gcr;
using bench::Mode;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const int n = static_cast<int>(cli.get_int("procs", 32, "process count"));
  const auto intervals =
      cli.get_int_list("intervals", {15, 30, 60, 120}, "ckpt periods (s)");
  const double fail_at = cli.get_double("fail-at", 130.0, "failure time (s)");
  const int reps = cli.get_reps(3);
  const bool csv = cli.get_bool("csv", false, "emit CSV");
  const int jobs = cli.get_jobs();
  cli.finish();

  apps::HplParams hpl;
  exp::AppFactory app = [hpl](int nr) { return apps::make_hpl(nr, hpl); };
  auto cache = std::make_shared<bench::GroupCache>(app, hpl.grid_rows);
  const std::vector<Mode> modes{Mode::kGp, Mode::kNorm};

  exp::Scenario sc;
  sc.name = "hpl/failure-intervals";
  sc.axes = {exp::SweepAxis::ints("interval", intervals),
             bench::mode_axis(modes)};
  sc.reps = reps;
  sc.config = [n, app, cache, fail_at](const exp::SweepPoint& point) {
    exp::ExperimentConfig cfg;
    cfg.app = app;
    cfg.nranks = n;
    cfg.seed = point.seed;
    cfg.groups = cache->get(bench::mode_at(point), n);
    cfg.checkpoints = true;
    cfg.schedule.first_at_s = point.get("interval");
    cfg.schedule.interval_s = point.get("interval");
    cfg.schedule.round_spread_s = 0.4;
    // One scheduled node fault via the fault-model subsystem; the node of
    // group 0's first rank maps back to group 0 for every grouping mode.
    cfg.fault_model.kind = sim::FaultModelKind::kTrace;
    cfg.fault_model.schedule = {{fail_at, cfg.groups->members(0).front()}};
    return cfg;
  };
  sc.collect = [](const exp::SweepPoint&, const exp::ExperimentResult& res,
                  exp::Collector& col) {
    col.add("exec", res.exec_time_s);
    col.add("ckpts", res.checkpoints_completed);
  };
  const exp::CampaignResult camp = exp::run_campaign(sc, {jobs});
  auto stat = [&](std::size_t ii, Mode m, const char* metric) {
    return bench::cell_mean(
        camp.stat(sc.cell_index({ii, bench::mode_index(modes, m)}), metric),
        1);
  };

  Table t({"interval_s", "GP_exec_s", "GP_ckpts", "NORM_exec_s",
           "NORM_ckpts"});
  for (std::size_t i = 0; i < intervals.size(); ++i) {
    t.add_row({Table::num(intervals[i]), stat(i, Mode::kGp, "exec"),
               stat(i, Mode::kGp, "ckpts"), stat(i, Mode::kNorm, "exec"),
               stat(i, Mode::kNorm, "ckpts")});
  }
  bench::emit(
      "Ablation A3 - time-to-completion with one mid-run group failure vs "
      "checkpoint interval (HPL). Expect: GP benefits from short intervals "
      "(cheap checkpoints, less lost work); NORM pays for them",
      t, csv, camp.unfinished_runs);
  return 0;
}
