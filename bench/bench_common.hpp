// Shared helpers for the figure-reproduction benches.
//
// Every bench declares a Scenario (exp/scenario.hpp), runs it on the
// campaign worker pool (exp/campaign.hpp, `--jobs`), and prints (a) the
// paper's expected qualitative shape, (b) a table of measured values, and
// optionally CSV (--csv).
//
// Parallelism knobs multiply: `--jobs J` runs J simulations concurrently
// and `--shards S` (where a bench declares it; Cli::get_shards) gives each
// simulation S engine threads, so the process uses up to J*S threads. Use
// --jobs for throughput across a sweep and --shards for latency of a
// single big run; outputs are byte-identical either way. Modes follow the paper's notation: GP
// (trace-derived groups), GP1 (uncoordinated + logging), GP4 (ad-hoc 4
// sequential-rank groups), NORM (global coordinated).
#pragma once

#include <cstdio>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "exp/campaign.hpp"
#include "exp/experiment.hpp"
#include "exp/scenario.hpp"
#include "group/formation.hpp"
#include "group/strategies.hpp"
#include "util/assert.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace gcr::bench {

enum class Mode { kGp, kGp1, kGp4, kNorm };

inline const char* mode_name(Mode m) {
  switch (m) {
    case Mode::kGp: return "GP";
    case Mode::kGp1: return "GP1";
    case Mode::kGp4: return "GP4";
    case Mode::kNorm: return "NORM";
  }
  return "?";
}

/// The paper's group formations. GP derives groups from a profiling trace
/// (Algorithm 2) with the given max group size (0 = default floor(sqrt n)).
inline group::GroupSet groups_for(Mode mode, int nranks,
                                  const exp::AppFactory& app,
                                  int gp_max_size = 0) {
  switch (mode) {
    case Mode::kGp: return exp::derive_groups(app, nranks, gp_max_size);
    case Mode::kGp1: return group::make_gp1(nranks);
    case Mode::kGp4: return group::make_sequential(nranks, 4);
    case Mode::kNorm: return group::make_norm(nranks);
  }
  return group::make_norm(nranks);
}

/// Thread-safe memoized `groups_for` for campaign jobs: GP's profiling run
/// is expensive and deterministic per (mode, nranks), so concurrent jobs
/// share one derivation — the first job to need a key computes it, later
/// ones wait on it, and distinct keys derive in parallel.
class GroupCache {
 public:
  explicit GroupCache(exp::AppFactory app, int gp_max_size = 0)
      : app_(std::move(app)), gp_max_size_(gp_max_size) {}

  const group::GroupSet& get(Mode mode, int nranks) {
    Entry* entry;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto& slot = entries_[{static_cast<int>(mode), nranks}];
      if (!slot) slot = std::make_unique<Entry>();
      entry = slot.get();
    }
    std::call_once(entry->once, [&] {
      entry->groups = groups_for(mode, nranks, app_, gp_max_size_);
    });
    return entry->groups;
  }

 private:
  struct Entry {
    std::once_flag once;
    group::GroupSet groups;
  };
  exp::AppFactory app_;
  int gp_max_size_;
  std::mutex mu_;
  std::map<std::pair<int, int>, std::unique_ptr<Entry>> entries_;
};

/// Sweep axis over the paper's modes (values are the Mode enum, so points
/// round-trip through `mode_at`).
inline exp::SweepAxis mode_axis(const std::vector<Mode>& modes) {
  exp::SweepAxis axis;
  axis.name = "mode";
  for (Mode m : modes) {
    axis.values.push_back(static_cast<double>(static_cast<int>(m)));
  }
  return axis;
}

inline Mode mode_at(const exp::SweepPoint& point) {
  return static_cast<Mode>(point.get_int("mode"));
}

/// Position of a mode within a mode axis (for CampaignResult cell lookups).
inline std::size_t mode_index(const std::vector<Mode>& modes, Mode m) {
  for (std::size_t i = 0; i < modes.size(); ++i) {
    if (modes[i] == m) return i;
  }
  GCR_CHECK_MSG(false, "mode not in this sweep");
  return 0;  // unreachable
}

/// Table cells from campaign aggregates. A cell whose every run tripped the
/// watchdog has no samples; printing its 0.0 default would be
/// indistinguishable from a real measurement, so render "n/a" instead.
inline std::string cell_mean(const RunningStats& s, int decimals) {
  return s.count() ? Table::num(s.mean(), decimals) : std::string("n/a");
}
inline std::string cell_min(const RunningStats& s, int decimals) {
  return s.count() ? Table::num(s.min(), decimals) : std::string("n/a");
}
inline std::string cell_max(const RunningStats& s, int decimals) {
  return s.count() ? Table::num(s.max(), decimals) : std::string("n/a");
}

/// Prints the table and optional CSV, with a header naming the experiment.
/// A positive `unfinished_runs` (from CampaignResult) adds a warning line:
/// those runs hit the watchdog and are NOT part of the averages.
inline void emit(const std::string& title, const Table& table, bool csv,
                 int unfinished_runs = 0) {
  std::printf("== %s ==\n", title.c_str());
  table.print(std::cout);
  if (csv) {
    std::printf("-- csv --\n");
    table.print_csv(std::cout);
  }
  if (unfinished_runs > 0) {
    std::printf(
        "WARNING: %d run(s) tripped the watchdog (finished == false) and "
        "are excluded from the averages above\n",
        unfinished_runs);
  }
  std::printf("\n");
}

}  // namespace gcr::bench
