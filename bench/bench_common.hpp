// Shared helpers for the figure-reproduction benches.
//
// Every bench prints (a) the paper's expected qualitative shape, (b) a table
// of measured values, and optionally CSV (--csv). Modes follow the paper's
// notation: GP (trace-derived groups), GP1 (uncoordinated + logging),
// GP4 (ad-hoc 4 sequential-rank groups), NORM (global coordinated).
#pragma once

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "exp/experiment.hpp"
#include "group/formation.hpp"
#include "group/strategies.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace gcr::bench {

enum class Mode { kGp, kGp1, kGp4, kNorm };

inline const char* mode_name(Mode m) {
  switch (m) {
    case Mode::kGp: return "GP";
    case Mode::kGp1: return "GP1";
    case Mode::kGp4: return "GP4";
    case Mode::kNorm: return "NORM";
  }
  return "?";
}

/// The paper's group formations. GP derives groups from a profiling trace
/// (Algorithm 2) with the given max group size (0 = default floor(sqrt n)).
inline group::GroupSet groups_for(Mode mode, int nranks,
                                  const exp::AppFactory& app,
                                  int gp_max_size = 0) {
  switch (mode) {
    case Mode::kGp: return exp::derive_groups(app, nranks, gp_max_size);
    case Mode::kGp1: return group::make_gp1(nranks);
    case Mode::kGp4: return group::make_sequential(nranks, 4);
    case Mode::kNorm: return group::make_norm(nranks);
  }
  return group::make_norm(nranks);
}

/// Repetition driver: runs `make_result` for seeds 1..reps and accumulates
/// the value it returns.
template <class Fn>
RunningStats over_seeds(int reps, Fn&& make_result) {
  RunningStats stats;
  for (int rep = 1; rep <= reps; ++rep) {
    stats.add(make_result(static_cast<std::uint64_t>(rep)));
  }
  return stats;
}

/// Prints the table and optional CSV, with a header naming the experiment.
inline void emit(const std::string& title, const Table& table, bool csv) {
  std::printf("== %s ==\n", title.c_str());
  table.print(std::cout);
  if (csv) {
    std::printf("-- csv --\n");
    table.print_csv(std::cout);
  }
  std::printf("\n");
}

}  // namespace gcr::bench
