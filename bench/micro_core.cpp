// M1: google-benchmark microbenchmarks for the hot paths of the simulator
// and protocol substrates: event engine throughput, channel handoffs,
// message-log append/GC, Algorithm 2 formation, and end-to-end simulated
// events per wall second.
#include <benchmark/benchmark.h>

#include "apps/simple.hpp"
#include "core/msglog.hpp"
#include "exp/experiment.hpp"
#include "group/formation.hpp"
#include "group/strategies.hpp"
#include "sim/channel.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"

namespace {

using namespace gcr;

void BM_EngineCallbackThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine eng;
    const int events = static_cast<int>(state.range(0));
    int fired = 0;
    for (int i = 0; i < events; ++i) {
      eng.call_at(i, [&fired] { ++fired; });
    }
    eng.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EngineCallbackThroughput)->Arg(1 << 12)->Arg(1 << 16);

sim::Co<void> chan_echo(sim::Channel<int>& in, sim::Channel<int>& out,
                        int rounds) {
  for (int i = 0; i < rounds; ++i) {
    out.push(co_await in.pop());
  }
}

sim::Co<void> chan_drive(sim::Channel<int>& out, sim::Channel<int>& in,
                         int rounds) {
  for (int i = 0; i < rounds; ++i) {
    out.push(i);
    (void)co_await in.pop();
  }
}

void BM_ChannelPingPong(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine eng;
    sim::Channel<int> a(eng), b(eng);
    const int rounds = static_cast<int>(state.range(0));
    eng.spawn("echo", chan_echo(a, b, rounds));
    eng.spawn("drive", chan_drive(a, b, rounds));
    eng.run();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 2);
}
BENCHMARK(BM_ChannelPingPong)->Arg(1 << 10)->Arg(1 << 14);

void BM_MessageLogAppendGc(benchmark::State& state) {
  const int peers = 16;
  for (auto _ : state) {
    core::MessageLog log;
    std::vector<std::int64_t> cum(peers, 0);
    for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
      mpi::Message m;
      m.src = 0;
      m.dst = i % peers;
      m.bytes = 512;
      cum[static_cast<std::size_t>(m.dst)] += m.bytes;
      m.cum_bytes = cum[static_cast<std::size_t>(m.dst)];
      m.seq = static_cast<std::uint64_t>(i / peers + 1);
      log.append(m);
      if (i % 1024 == 1023) {
        log.gc(i % peers, cum[static_cast<std::size_t>(i % peers)] / 2);
      }
    }
    benchmark::DoNotOptimize(log.total_bytes());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MessageLogAppendGc)->Arg(1 << 14);

void BM_FormationAlgorithm2(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(42);
  trace::Trace trace;
  for (int i = 0; i < n * 200; ++i) {
    trace.push_back(trace::TraceRecord{
        0, trace::EventKind::kSend,
        static_cast<mpi::RankId>(rng.next_below(static_cast<std::uint64_t>(n))),
        static_cast<mpi::RankId>(rng.next_below(static_cast<std::uint64_t>(n))),
        0, static_cast<std::int64_t>(rng.next_below(100000))});
  }
  for (auto _ : state) {
    auto groups = group::form_groups_from_trace(n, trace);
    benchmark::DoNotOptimize(groups.num_groups());
  }
}
BENCHMARK(BM_FormationAlgorithm2)->Arg(32)->Arg(128)->Arg(512);

void BM_EndToEndSimulatedRing(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::uint64_t events = 0;
  for (auto _ : state) {
    exp::ExperimentConfig cfg;
    cfg.app = [](int nr) {
      apps::RingParams p;
      p.iterations = 50;
      p.compute_s = 0.001;
      return apps::make_ring(nr, p);
    };
    cfg.nranks = n;
    cfg.groups = group::make_round_robin(n, std::max(1, n / 4));
    cfg.checkpoints = true;
    cfg.schedule.first_at_s = 0.02;
    cfg.jitter = false;
    exp::ExperimentResult res = exp::run_experiment(cfg);
    events += static_cast<std::uint64_t>(res.app_messages);
    benchmark::DoNotOptimize(res.exec_time_s);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_EndToEndSimulatedRing)->Arg(16)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
