// Ablation A4: per-group checkpoint intervals planned from measured costs
// and per-group MTBFs (paper §6: "group processor nodes that fail more
// frequently, and select a shorter checkpoint interval ... The above listed
// works do not support such feature"; §7: traces "give a hint to select a
// fixed optimal checkpoint interval").
//
// One flaky group fails randomly (short MTBF); the others are reliable. We
// compare three schedules under identical failure streams:
//   uniform-short : everyone checkpoints at the flaky group's pace
//   uniform-long  : everyone checkpoints at the reliable groups' pace
//   planned       : per-group Daly intervals from measured ckpt costs
#include "apps/hpl.hpp"
#include "bench_common.hpp"
#include "core/interval.hpp"

using namespace gcr;
using bench::Mode;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const int n = static_cast<int>(cli.get_int("procs", 32, "process count"));
  const double flaky_mtbf =
      cli.get_double("flaky-mtbf", 90.0, "MTBF of group 0 (s)");
  const double solid_mtbf =
      cli.get_double("solid-mtbf", 3600.0, "MTBF of the other groups (s)");
  const int reps = cli.get_reps(3);
  const bool csv = cli.get_bool("csv", false, "emit CSV");
  const int jobs = cli.get_jobs();
  cli.finish();

  apps::HplParams hpl;
  exp::AppFactory app = [hpl](int nr) { return apps::make_hpl(nr, hpl); };
  const group::GroupSet groups =
      bench::groups_for(Mode::kGp, n, app, hpl.grid_rows);
  const int ngroups = groups.num_groups();

  // Measure per-group checkpoint cost with one profiling checkpoint.
  exp::ExperimentConfig probe;
  probe.app = app;
  probe.nranks = n;
  probe.groups = groups;
  probe.checkpoints = true;
  probe.schedule.first_at_s = 30.0;
  exp::ExperimentResult probe_res = exp::run_experiment(probe);
  const std::vector<double> cost =
      core::measured_group_ckpt_cost(probe_res.metrics, groups);

  std::vector<core::GroupReliability> rel(
      static_cast<std::size_t>(ngroups), core::GroupReliability{solid_mtbf});
  rel[0].mtbf_s = flaky_mtbf;
  const core::GroupIntervalPlan plan = core::plan_group_intervals(cost, rel);
  std::printf("measured ckpt cost/group ~%.2fs; planned intervals: flaky "
              "%.0fs, solid %.0fs, uniform %.0fs\n\n",
              cost[0], plan.interval_s[0], plan.interval_s.back(),
              plan.uniform_interval_s);

  std::vector<double> mtbf(static_cast<std::size_t>(ngroups), solid_mtbf);
  mtbf[0] = flaky_mtbf;

  struct Schedule {
    const char* name;
    std::vector<double> intervals;
  };
  std::vector<Schedule> schedules;
  schedules.push_back({"uniform-short",
                       std::vector<double>(static_cast<std::size_t>(ngroups),
                                           plan.interval_s[0])});
  schedules.push_back({"uniform-long",
                       std::vector<double>(static_cast<std::size_t>(ngroups),
                                           plan.interval_s.back())});
  schedules.push_back({"planned", plan.interval_s});

  exp::Scenario sc;
  sc.name = "hpl/planned-intervals";
  sc.axes = {exp::SweepAxis::indices("schedule", schedules.size())};
  sc.reps = reps;
  sc.config = [n, app, &groups, &schedules, &mtbf](
                  const exp::SweepPoint& point) {
    exp::ExperimentConfig cfg;
    cfg.app = app;
    cfg.nranks = n;
    cfg.seed = point.seed;
    cfg.groups = groups;
    cfg.per_group_intervals =
        schedules[static_cast<std::size_t>(point.get_int("schedule"))]
            .intervals;
    cfg.random_failure_mtbf_s = mtbf;
    return cfg;
  };
  sc.collect = [](const exp::SweepPoint&, const exp::ExperimentResult& res,
                  exp::Collector& col) {
    col.add("exec", res.exec_time_s);
    col.add("records", static_cast<double>(res.metrics.ckpts.size()));
    col.add("fails", res.failures_injected);
    col.add("agg", res.metrics.aggregate_ckpt_time_s());
  };
  const exp::CampaignResult camp = exp::run_campaign(sc, {jobs});

  Table t({"schedule", "exec_s", "ckpt_records", "failures", "agg_ckpt_s"});
  for (std::size_t i = 0; i < schedules.size(); ++i) {
    t.add_row({schedules[i].name, bench::cell_mean(camp.stat(i, "exec"), 1),
               bench::cell_mean(camp.stat(i, "records"), 0),
               bench::cell_mean(camp.stat(i, "fails"), 1),
               bench::cell_mean(camp.stat(i, "agg"), 1)});
  }
  bench::emit(
      "Ablation A4 - per-group planned intervals under a flaky group. "
      "Expect: planned ~ matches the best uniform schedule or beats both "
      "(short protection where failures are, low overhead elsewhere)",
      t, csv, camp.unfinished_runs);
  return 0;
}
